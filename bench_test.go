// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations of the design choices DESIGN.md calls
// out. Custom metrics carry the reproduced numbers:
//
//	go test -bench=. -benchmem
//
// Table/figure benches report the regenerated values (ratios as "x_iso",
// bounds as "cycles"); ablation benches report the bound each variant
// produces so the cost of dropping information is visible in the output.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
)

var benchLat = platform.TC27xLatencies()

// BenchmarkTable2Calibration regenerates Table 2: per-target maximum
// latencies and minimum stall cycles via calibration microbenchmarks.
// Each iteration gets a fresh engine so the memo cache cannot turn later
// iterations into lookups.
func BenchmarkTable2Calibration(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.NewRunner(campaign.New(0)).CalibrateTable2(context.Background(), benchLat)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.CsCo >= 0 {
			b.ReportMetric(float64(r.CsCo), fmt.Sprintf("cs_%s_co", r.Target))
		}
		if r.CsDa >= 0 {
			b.ReportMetric(float64(r.CsDa), fmt.Sprintf("cs_%s_da", r.Target))
		}
	}
}

// BenchmarkTable3Validation regenerates Table 3: the architectural
// placement-constraint matrix, measured as the cost of validating a full
// deployment against it.
func BenchmarkTable3Validation(b *testing.B) {
	allowed := 0
	for i := 0; i < b.N; i++ {
		allowed = 0
		for _, o := range platform.Ops {
			for _, t := range platform.Targets {
				for _, c := range []bool{true, false} {
					if platform.ValidatePlacement(o, platform.Placement{Target: t, Cacheable: c}) == nil {
						allowed++
					}
				}
			}
		}
	}
	// Table 3 has 11 allowed cells out of 16 (code never on dfl, data
	// only cacheable in pflash, never cacheable on dfl).
	b.ReportMetric(float64(allowed), "allowed_cells")
}

// benchReadings are fixed Scenario-1-consistent readings used by the
// model-construction benchmarks (5+5 code requests to pf0/pf1 per kilocycle
// scale, 10 lmu data requests — the same shape the simulator produces).
func benchReadings(scale int64) (a, c dsu.Readings) {
	a = dsu.Readings{CCNT: 1000 * scale, PM: 10 * scale, PS: 60 * scale, DS: 100 * scale}
	c = dsu.Readings{CCNT: 1000 * scale, PM: 8 * scale, PS: 48 * scale, DS: 70 * scale}
	return a, c
}

// BenchmarkTable5Tailoring regenerates Table 5: constructing and solving
// the tailored ILP-PTAC model for both scenarios.
func BenchmarkTable5Tailoring(b *testing.B) {
	for _, sc := range []core.Scenario{core.Scenario1(), core.Scenario2()} {
		b.Run(sc.Name, func(b *testing.B) {
			a, c := benchReadings(100)
			if sc.CacheableDataFloor {
				a.DMC, c.DMC = 500, 300
			}
			in := core.Input{A: a, B: []dsu.Readings{c}, Lat: &benchLat, Scenario: sc}
			var est core.Estimate
			for i := 0; i < b.N; i++ {
				var err error
				est, err = core.ILPPTAC(in, core.PTACOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
			// Node count is the cost driver behind the ns/op above: the
			// BENCH_<pr>.json trajectory tracks it so a solver regression
			// that doubles the tree stays visible even when wall time hides
			// inside machine noise.
			b.ReportMetric(float64(est.Nodes), "nodes")
			// Warm-start effectiveness: the fraction of B&B nodes whose LP
			// re-solve reused the parent basis. Rate metrics (suffix
			// "_rate") gate higher-is-better in scripts/benchgate, so a
			// change that silently falls back to cold solves fails CI even
			// if wall time hides in noise.
			b.ReportMetric(float64(est.WarmStarts)/float64(max(est.Nodes, 1)), "warm_start_rate")
		})
	}
}

// BenchmarkTable5Parallel is the concurrency axis of the Table 5 solve:
// the same tailored ILP-PTAC models solved with the branch & bound worker
// pool at the machine's full width. The timed loop is the parallel solve;
// a sequential (Workers=1) baseline is measured outside the timer in the
// same process and reported as speedup_x = sequential ns/op ÷ parallel
// ns/op, so the trajectory records how much the extra cores actually buy
// on the minting machine (the metric gates higher-is-better in
// scripts/benchgate; run with -cpu 1,2,4 for the full matrix). The bound
// must be identical either way — that is the solver's determinism
// contract, and the benchmark fails if it drifts.
func BenchmarkTable5Parallel(b *testing.B) {
	for _, sc := range []core.Scenario{core.Scenario1(), core.Scenario2()} {
		b.Run(sc.Name, func(b *testing.B) {
			// Read GOMAXPROCS inside the leaf: -cpu re-runs the leaf at
			// each width, and the outer function's value would be stale.
			workers := runtime.GOMAXPROCS(0)
			a, c := benchReadings(100)
			if sc.CacheableDataFloor {
				a.DMC, c.DMC = 500, 300
			}
			in := core.Input{A: a, B: []dsu.Readings{c}, Lat: &benchLat, Scenario: sc}

			// Sequential baseline, outside the timer: enough iterations
			// to steady the measurement without dominating the run.
			seqIters := b.N
			if seqIters > 8 {
				seqIters = 8
			}
			var seqEst core.Estimate
			seqStart := time.Now()
			for i := 0; i < seqIters; i++ {
				var err error
				seqEst, err = core.ILPPTAC(in, core.PTACOptions{SolverWorkers: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			seqNs := float64(time.Since(seqStart).Nanoseconds()) / float64(seqIters)

			var est core.Estimate
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				est, err = core.ILPPTAC(in, core.PTACOptions{SolverWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if est.ContentionCycles != seqEst.ContentionCycles {
				b.Fatalf("parallel bound %d != sequential bound %d — determinism contract broken",
					est.ContentionCycles, seqEst.ContentionCycles)
			}
			parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if parNs > 0 {
				b.ReportMetric(seqNs/parNs, "speedup_x")
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
		})
	}
}

// BenchmarkTable6Counters regenerates Table 6: the debug-counter readings
// of the application and the H-Load contender under both scenarios.
func BenchmarkTable6Counters(b *testing.B) {
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		b.Run(fmt.Sprintf("scenario%d", sc), func(b *testing.B) {
			var app dsu.Readings
			for i := 0; i < b.N; i++ {
				var err error
				app, _, err = experiments.NewRunner(campaign.New(0)).Table6Readings(context.Background(), benchLat, sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(app.PM), "app_PM")
			b.ReportMetric(float64(app.PS), "app_PS")
			b.ReportMetric(float64(app.DS), "app_DS")
			b.ReportMetric(float64(app.DMD), "app_DMD")
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4 cell by cell: observed slowdown and
// both model predictions, normalised to isolation, per scenario and
// contender load.
func BenchmarkFigure4(b *testing.B) {
	rows, err := experiments.NewRunner(campaign.New(0)).Figure4(context.Background(), benchLat)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(fmt.Sprintf("scenario%d/%s", row.Scenario, row.Level), func(b *testing.B) {
			var g experiments.Figure4Row
			for i := 0; i < b.N; i++ {
				g, err = experiments.NewRunner(campaign.New(0)).Figure4Cell(context.Background(), benchLat, row.Scenario, row.Level)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(g.ObservedRatio(), "observed_x")
			b.ReportMetric(g.ILP.Ratio(), "ilp_x")
			b.ReportMetric(g.FTC.Ratio(), "ftc_x")
		})
	}
}

// --- Ablations (DESIGN.md "Design choices worth ablating") ---

// BenchmarkAblationStallMode compares the paper's literal equality stall
// decomposition (Eq. 20-23) against the always-sound budget relaxation on
// simulator-consistent readings: the bounds must coincide, the equality
// variant costing slightly more solve time.
func BenchmarkAblationStallMode(b *testing.B) {
	a, c := benchReadings(50)
	in := core.Input{A: a, B: []dsu.Readings{c}, Lat: &benchLat, Scenario: core.Scenario1()}
	for _, mode := range []core.StallMode{core.StallBudget, core.StallExact} {
		b.Run(mode.String(), func(b *testing.B) {
			var est core.Estimate
			for i := 0; i < b.N; i++ {
				var err error
				est, err = core.ILPPTAC(in, core.PTACOptions{StallMode: mode})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
		})
	}
}

// BenchmarkAblationContenderInfo quantifies the value of the contender
// constraints (Eq. 22-23): dropping them makes the ILP fully
// time-composable and visibly looser (§3.5).
func BenchmarkAblationContenderInfo(b *testing.B) {
	a, c := benchReadings(50)
	// A light contender makes the information gap large.
	c.PM, c.PS, c.DS = c.PM/4, c.PS/4, c.DS/4
	in := core.Input{A: a, B: []dsu.Readings{c}, Lat: &benchLat, Scenario: core.Scenario1()}
	for _, drop := range []bool{false, true} {
		name := "with-contender-info"
		if drop {
			name = "fully-time-composable"
		}
		b.Run(name, func(b *testing.B) {
			var est core.Estimate
			for i := 0; i < b.N; i++ {
				var err error
				est, err = core.ILPPTAC(in, core.PTACOptions{DropContenderInfo: drop})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
		})
	}
}

// BenchmarkAblationScenarioTailoring quantifies the value of the Table 5
// counter constraints: the generic deployment-only scenario against the
// fully tailored one. The readings follow the real-hardware shape of the
// paper's Table 6 — per-request stalls well above the Table 2 minima — so
// that the stall budget alone wildly over-counts code requests and the
// PCACHE_MISS equality has something to correct.
func BenchmarkAblationScenarioTailoring(b *testing.B) {
	a := dsu.Readings{CCNT: 500000, PM: 1000, PS: 14500, DS: 50000}
	c := dsu.Readings{CCNT: 500000, PM: 800, PS: 11600, DS: 35000}
	scenarios := map[string]core.Scenario{
		"tailored": core.Scenario1(),
		"generic":  core.GenericScenario(platform.Scenario1()),
	}
	for _, name := range []string{"tailored", "generic"} {
		sc := scenarios[name]
		b.Run(name, func(b *testing.B) {
			in := core.Input{A: a, B: []dsu.Readings{c}, Lat: &benchLat, Scenario: sc}
			var est core.Estimate
			for i := 0; i < b.N; i++ {
				var err error
				est, err = core.ILPPTAC(in, core.PTACOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
		})
	}
}

// BenchmarkAblationFSBReduction compares the crossbar-aware fTC bound with
// its single-bus (FSB) collapse (§4.3): the crossbar model is never looser.
func BenchmarkAblationFSBReduction(b *testing.B) {
	a, c := benchReadings(50)
	in := core.Input{A: a, B: []dsu.Readings{c}, Lat: &benchLat, Scenario: core.Scenario1()}
	b.Run("crossbar-fTC", func(b *testing.B) {
		var est core.Estimate
		for i := 0; i < b.N; i++ {
			var err error
			est, err = core.FTC(in)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
	})
	b.Run("fsb-fTC", func(b *testing.B) {
		var est core.Estimate
		for i := 0; i < b.N; i++ {
			var err error
			est, err = core.FTCFSB(in)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(est.ContentionCycles), "bound_cycles")
	})
}

// BenchmarkAblationMinStallDivisor compares the per-operation minimum
// stall divisors of Eq. 2-3 (code 6, data 10 on the TC27x) against a
// single global minimum (6): the global divisor inflates the data request
// bound and with it the fTC contention bound.
func BenchmarkAblationMinStallDivisor(b *testing.B) {
	a, _ := benchReadings(50)
	b.Run("per-operation", func(b *testing.B) {
		var nCo, nDa int64
		for i := 0; i < b.N; i++ {
			nCo, nDa = core.AccessBounds(a, &benchLat)
		}
		bound := nCo*benchLat.MaxLatencyFor(platform.Code) + nDa*benchLat.MaxLatencyFor(platform.Data)
		b.ReportMetric(float64(bound), "bound_cycles")
	})
	b.Run("global", func(b *testing.B) {
		csMin := benchLat.MinStallFor(platform.Code) // 6, the global minimum
		if d := benchLat.MinStallFor(platform.Data); d < csMin {
			csMin = d
		}
		var nCo, nDa int64
		for i := 0; i < b.N; i++ {
			nCo = (a.PS + csMin - 1) / csMin
			nDa = (a.DS + csMin - 1) / csMin
		}
		bound := nCo*benchLat.MaxLatencyFor(platform.Code) + nDa*benchLat.MaxLatencyFor(platform.Data)
		b.ReportMetric(float64(bound), "bound_cycles")
	})
}

// BenchmarkTable2PrefetchLMin regenerates the lmin column of Table 2: the
// best-case end-to-end latency of a sequential stream with the flash
// prefetch buffers active (paper: 12 cycles on pf vs lmax 16).
func BenchmarkTable2PrefetchLMin(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.NewRunner(campaign.New(0)).CalibrateTable2(context.Background(), benchLat)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.LMinCo >= 0 {
			b.ReportMetric(float64(r.LMinCo), fmt.Sprintf("lmin_%s_co", r.Target))
		}
	}
}

// BenchmarkAblationEnforcement compares the measurement-based ILP bound
// against the knowledge-free enforcement bound (paper ref [16]) at
// increasing contender stall quotas.
func BenchmarkAblationEnforcement(b *testing.B) {
	for _, quota := range []int64{600, 3000, 15000} {
		b.Run(fmt.Sprintf("quota-%d", quota), func(b *testing.B) {
			var bound int64
			for i := 0; i < b.N; i++ {
				bound = core.EnforcedContentionBound(quota, &benchLat)
			}
			b.ReportMetric(float64(bound), "bound_cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures the substrate itself: simulated
// cycles per second for a contended two-core run, the number that bounds
// every experiment's wall-clock cost.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		app, err := workload.ControlLoop(workload.AppConfig{Scenario: workload.Scenario1, Core: 1, Iterations: 100})
		if err != nil {
			b.Fatal(err)
		}
		cont, err := workload.Contender(workload.ContenderConfig{Level: workload.HLoad, Scenario: workload.Scenario1, Core: 2, Bursts: 2000})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(benchLat, map[int]sim.Task{
			1: {Kind: tricore.TC16P, Src: app},
			2: {Kind: tricore.TC16P, Src: cont},
		}, 1, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkEvaluationCampaign regenerates the paper's full measured
// evaluation (Table 2, Table 6, Figure 4, the OEM sweep) on one shared
// campaign engine per iteration — the whole-paper cost a CI run or an
// interactive session pays, with isolation baselines deduplicated across
// artefacts. The memo counters are reported so cache effectiveness is
// visible next to the wall-clock.
func BenchmarkEvaluationCampaign(b *testing.B) {
	ctx := context.Background()
	var stats campaign.Stats
	for i := 0; i < b.N; i++ {
		eng := campaign.New(0)
		r := experiments.NewRunner(eng)
		if _, err := r.CalibrateTable2(ctx, benchLat); err != nil {
			b.Fatal(err)
		}
		for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
			if _, _, err := r.Table6Readings(ctx, benchLat, sc); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := r.Figure4(ctx, benchLat); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Sweep(ctx, benchLat, experiments.Grid{}); err != nil {
			b.Fatal(err)
		}
		stats = eng.Stats()
	}
	b.ReportMetric(float64(stats.SimRuns), "sim_runs")
	b.ReportMetric(float64(stats.IsolationHits), "memo_hits")
}

// benchServeConfig turns on the observability costs a production daemon
// pays — persisted metrics history on a fast cadence and a slow-request
// threshold low enough that tail sampling stores a trace for essentially
// every request — so the serving benchmarks gate the instrumented path,
// not an idealized one. The logger is leveled above Warn: with a
// microsecond threshold every request is "slow", and formatting a
// slow-request warning per request would measure the logger, not the
// server.
func benchServeConfig(b *testing.B, cfg service.Config) service.Config {
	cfg.ObsDir = b.TempDir()
	cfg.HistoryInterval = 250 * time.Millisecond
	cfg.SlowRequestThreshold = time.Microsecond
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	return cfg
}

// shutdownAfter stops the server once the benchmark (including its
// reporting) is done. Leaking servers across samples would let each
// abandoned history sampler keep snapshotting and evaluating SLOs on
// its 250ms tick, silently taxing every later benchmark in the run.
func shutdownAfter(b *testing.B, srv *service.Server) {
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	})
}

// BenchmarkWCETServiceBatch drives the wcetd serving layer end to end:
// concurrent 16-request batches, drawn from a small pool of distinct
// queries, against one server — the OEM integration stream the service
// subsystem exists for. Reports sustained items/sec and the
// canonical-request cache hit rate (duplicate submissions must be served
// without re-solving the ILP).
func BenchmarkWCETServiceBatch(b *testing.B) {
	srv := service.New(benchServeConfig(b, service.Config{MaxInFlight: 256, QueueDepth: 1024}), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	shutdownAfter(b, srv)

	batch := service.BatchRequest{}
	for j := 0; j < 16; j++ {
		batch.Requests = append(batch.Requests, service.Request{
			Scenario: 1,
			Analysed: dsu.Readings{CCNT: 157800 + int64(j%8)*1000, PS: 18000, DS: 27000, PM: 3000},
			Contenders: []dsu.Readings{
				{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
			},
		})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()

	st := srv.StatsSnapshot()
	if st.BatchItems > 0 {
		b.ReportMetric(float64(st.BatchItems)/b.Elapsed().Seconds(), "items/s")
	}
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		b.ReportMetric(float64(st.Cache.Hits)/float64(lookups), "cache_hit_rate")
	}
}

// BenchmarkCacheHitParallel hammers one already-cached request from every
// proc at once: after a single priming miss, each iteration is a full
// HTTP round-trip that must be answered from the sharded result cache
// without re-solving. This is the serving hot path the shard-per-lock
// cache exists for — run with -cpu 1,2,4 to see the single-mutex ceiling
// it replaced.
func BenchmarkCacheHitParallel(b *testing.B) {
	srv := service.New(benchServeConfig(b, service.Config{MaxInFlight: 256, QueueDepth: 1024}), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	shutdownAfter(b, srv)

	body, err := json.Marshal(service.Request{
		Scenario: 1,
		Analysed: dsu.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		Contenders: []dsu.Readings{
			{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Prime the cache: exactly one miss, everything timed below is a hit.
	resp, err := http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
	st := srv.StatsSnapshot()
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		rate := float64(st.Cache.Hits) / float64(lookups)
		b.ReportMetric(rate, "cache_hit_rate")
		// At real benchtimes the single priming miss vanishes into the
		// noise floor; only tiny -benchtime 1x runs legitimately sit
		// below it.
		if b.N >= 100 && rate < 0.99 {
			b.Errorf("cache_hit_rate = %.3f, want ~1.0 (one priming miss)", rate)
		}
	}
}

// BenchmarkCampaignJob drives one complete campaign job through the full
// wire stack per iteration: POST the grid to /v2/campaigns, follow the
// SSE progress stream until the terminal state event, fetch the
// content-verified artifact, and answer one interactive /v1/wcet request
// while the job's cells are draining through the engine at background
// priority. ns/op is the end-to-end cost of a 24-cell server-side sweep
// — admission, background scheduling, per-cell checkpoint encode, event
// fan-out, SSE delivery and artifact verification all inside the timed
// region — so a regression anywhere in the jobs pipeline (or a priority
// inversion that stalls the interleaved interactive request) moves the
// gated p50. cells/s reports sweep throughput; cache_hit_rate gates the
// interactive hits served mid-job.
func BenchmarkCampaignJob(b *testing.B) {
	// Job lifecycle logs would interleave with the benchmark result line
	// in `go test` output (which merges the binary's stderr) and break
	// benchstat/benchgate parsing — discard them.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := service.New(service.Config{MaxInFlight: 256, QueueDepth: 1024, MaxJobs: 1 << 20, Logger: quiet}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()

	// 2 scenarios × 3 levels × 4 perturbations × 1 model = 24 cells, the
	// same grid shape scripts/serve_smoke.sh round-trips. Short cells
	// keep one job's wall time in calibration range; isolation baselines
	// memoize on the shared engine, so after the first job every
	// iteration pays the same steady-state cost.
	spec := []byte(`{"grid":{"models":["ftc"],"appIterations":60,"perturbations":[
		{},
		{"name":"up10","scalePercent":110},
		{"name":"up20","scalePercent":120},
		{"name":"down10","scalePercent":90}
	]}}`)

	interactive, err := json.Marshal(service.Request{
		Scenario: 1,
		Analysed: dsu.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		Contenders: []dsu.Readings{
			{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Prime the result cache: the in-loop interactive request measures
	// the hit path an integrator's repeated what-if queries see.
	resp, err := http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader(interactive))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	runJob := func() {
		resp, err := http.Post(ts.URL+"/v2/campaigns", "application/json", bytes.NewReader(spec))
		if err != nil {
			b.Fatal(err)
		}
		var job struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || job.ID == "" {
			b.Fatalf("campaign submit: status %d, id %q", resp.StatusCode, job.ID)
		}

		// One interactive round-trip while the job drains: priority
		// admission must serve it without waiting for the sweep.
		resp, err = http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader(interactive))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("interactive request under campaign load: status %d", resp.StatusCode)
		}

		// The SSE stream ends itself after the terminal state event;
		// reading it to EOF is the wire-level "wait for done".
		resp, err = http.Get(ts.URL + "/v2/campaigns/" + job.ID + "/stream")
		if err != nil {
			b.Fatal(err)
		}
		stream, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Contains(stream, []byte(`"state":"done"`)) {
			b.Fatalf("campaign stream ended without a done state:\n%s", stream)
		}

		resp, err = http.Get(ts.URL + "/v2/campaigns/" + job.ID + "/artifact")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("campaign artifact: status %d", resp.StatusCode)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runJob()
	}
	b.StopTimer()

	b.ReportMetric(float64(24*b.N)/b.Elapsed().Seconds(), "cells/s")
	st := srv.StatsSnapshot()
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		b.ReportMetric(float64(st.Cache.Hits)/float64(lookups), "cache_hit_rate")
	}
}

// BenchmarkServeSaturated saturates one server with 4× GOMAXPROCS
// clients mixing single-shot requests from a pool of distinct queries —
// more clients than cores, the oversubscribed posture a shared analysis
// service actually runs at. Unlike BenchmarkCacheHitParallel this stream
// is a hit/miss mix, so it exercises the cache's write path (CLOCK
// eviction, shard routing) and the solver pool under contention, not
// just shard reads.
func BenchmarkServeSaturated(b *testing.B) {
	srv := service.New(benchServeConfig(b, service.Config{
		MaxInFlight:   256,
		QueueDepth:    1024,
		SolverWorkers: runtime.GOMAXPROCS(0),
	}), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	shutdownAfter(b, srv)

	const pool = 64
	bodies := make([][]byte, pool)
	for j := range bodies {
		var err error
		bodies[j], err = json.Marshal(service.Request{
			Scenario: 1,
			Analysed: dsu.Readings{CCNT: 157800 + int64(j)*500, PS: 18000, DS: 27000, PM: 3000},
			Contenders: []dsu.Readings{
				{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}

	var seq atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4) // 4× GOMAXPROCS client goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := bodies[int(seq.Add(1))%pool]
			resp, err := http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
	st := srv.StatsSnapshot()
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		b.ReportMetric(float64(st.Cache.Hits)/float64(lookups), "cache_hit_rate")
	}
	if b.N > 2*pool && st.Cache.Hits == 0 {
		b.Error("saturated stream never hit the cache")
	}
}
