# CI and local workflows invoke identical commands: .github/workflows/ci.yml
# runs exactly these targets' recipes.

GO ?= go

.PHONY: all build test race bench fmt lint serve-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

# serve-smoke = start wcetd, POST a single and a batch request, assert
# 200 + expected fields, SIGTERM, assert clean shutdown.
serve-smoke:
	bash scripts/serve_smoke.sh

# lint = vet + gofmt diff check (fails if any file needs formatting).
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
