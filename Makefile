# CI and local workflows invoke identical commands: .github/workflows/ci.yml
# runs exactly these targets' recipes.

GO ?= go
STATICCHECK ?= staticcheck
GOVULNCHECK ?= govulncheck

.PHONY: all build test race bench bench-gate profile fmt lint vuln serve-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-gate = run the cold-solve benchmarks (repeated samples), aggregate
# into bench.json, and fail on p50/allocs regression against the last
# committed BENCH_<pr>.json trajectory point. Tune with BENCH_GATE_* (see
# scripts/bench_gate.sh and docs/BENCHMARKING.md).
bench-gate:
	bash scripts/bench_gate.sh

# profile = CPU + mutex profiles of the two hot paths this repo optimises:
# the parallel branch & bound solve (BenchmarkTable5Parallel/scenario2) and
# the saturated serving loop (BenchmarkServeSaturated). Profiles land in
# profiles/; inspect with `go tool pprof profiles/solve_cpu.out`. The mutex
# profile is the one to read after a cache-sharding or incumbent-lock
# change — it shows exactly which lock the workers queued on.
PROFILE_BENCHTIME ?= 2s
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkTable5Parallel/scenario2' \
		-benchtime $(PROFILE_BENCHTIME) \
		-cpuprofile profiles/solve_cpu.out \
		-mutexprofile profiles/solve_mutex.out \
		-o profiles/repro.test .
	$(GO) test -run '^$$' -bench 'BenchmarkServeSaturated' \
		-benchtime $(PROFILE_BENCHTIME) \
		-cpuprofile profiles/serve_cpu.out \
		-mutexprofile profiles/serve_mutex.out \
		-o profiles/repro.test .

fmt:
	gofmt -w .

# serve-smoke = start wcetd, POST a single and a batch request, assert
# 200 + expected fields, SIGTERM, assert clean shutdown; then the
# campaign-job durability round trip: submit a sweep, SIGKILL the daemon
# mid-job, restart, assert checkpoint resume and a byte-identical artifact.
serve-smoke:
	bash scripts/serve_smoke.sh

# lint = vet + gofmt diff check (fails if any file needs formatting) +
# metric-naming conventions + staticcheck. staticcheck is skipped with a
# notice when the binary is not on PATH (the offline dev container); CI
# installs it and always runs it.
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	bash scripts/metrics_lint.sh
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "lint: $(STATICCHECK) not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" >&2; \
	fi

# vuln = known-vulnerability scan of the module and its (std-only)
# dependency graph. Same skip policy as staticcheck.
vuln:
	@if command -v $(GOVULNCHECK) >/dev/null 2>&1; then \
		$(GOVULNCHECK) ./...; \
	else \
		echo "vuln: $(GOVULNCHECK) not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)" >&2; \
	fi
