// Integration walks the system-level story the paper's introduction
// motivates: an OEM must verify, before assembling the system, that a
// periodic task set stays schedulable on core 1 once a co-runner lands on
// core 2 — and what it costs to guarantee that with each instrument:
//
//  1. fTC WCETs: valid against any co-runner, but so pessimistic the set
//     may look unschedulable;
//  2. ILP-PTAC WCETs: tighter, valid for the characterised contender set;
//  3. enforcement (paper ref [16]): an RTOS stall quota on the contender
//     caps interference by construction, with a bound needing no
//     contender characterisation at all.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
	"repro/wcet"
)

func main() {
	lat := platform.TC27xLatencies()

	// Measure three periodic control tasks in isolation (different sizes
	// of the same control-loop shape).
	type spec struct {
		name   string
		iters  int
		period int64
	}
	specs := []spec{
		{"airbag-monitor", 40, 90_000},
		{"cruise-control", 100, 210_000},
		{"diagnostics", 160, 620_000},
	}
	var isoReadings []wcet.Readings
	for _, s := range specs {
		src, err := workload.ControlLoop(workload.AppConfig{Scenario: workload.Scenario1, Core: 1, Iterations: s.iters})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunIsolation(lat, 1, sim.Task{Kind: tricore.TC16P, Src: src}, sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		isoReadings = append(isoReadings, res.Readings[1])
		fmt.Printf("%-15s isolation %7d cycles (period %d)\n", s.name, res.Readings[1].CCNT, s.period)
	}

	// The contender the supplier on core 2 announced: an M-Load profile.
	contSrc, err := workload.Contender(workload.ContenderConfig{Level: workload.MLoad, Scenario: workload.Scenario1, Core: 2, Bursts: 600})
	if err != nil {
		log.Fatal(err)
	}
	contIso, err := sim.RunIsolation(lat, 2, sim.Task{Kind: tricore.TC16P, Src: contSrc}, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	contR := contIso.Readings[2]
	fmt.Printf("%-15s isolation %7d cycles (announced co-runner)\n\n", "contender", contR.CCNT)

	// Build the task set under each WCET instrument and run RTA.
	analyse := func(label string, bound func(wcet.Readings) int64) {
		tasks := make([]rta.Task, len(specs))
		for i, s := range specs {
			tasks[i] = rta.Task{Name: s.name, WCET: bound(isoReadings[i]), Period: s.period, Priority: i}
		}
		res, err := rta.Analyze(tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (utilization %.2f):\n", label, rta.Utilization(tasks))
		for _, r := range res {
			verdict := "meets deadline"
			if !r.Schedulable {
				verdict = "DEADLINE MISS"
			}
			fmt.Printf("  %-15s response %8d  %s\n", r.Task, r.Response, verdict)
		}
		fmt.Println()
	}

	an, err := wcet.NewAnalyzer(wcet.WithScenario(wcet.Scenario1()))
	if err != nil {
		log.Fatal(err)
	}
	modelBound := func(model string, r wcet.Readings) int64 {
		res, err := an.Analyze(context.Background(), wcet.Request{
			Analysed:   r,
			Contenders: []wcet.Readings{contR},
			Models:     []string{model},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Estimates[0].WCET()
	}
	analyse("1) fTC WCETs (any co-runner)", func(r wcet.Readings) int64 {
		return modelBound("ftc", r)
	})
	analyse("2) ILP-PTAC WCETs (characterised co-runner)", func(r wcet.Readings) int64 {
		return modelBound("ilpPtac", r)
	})

	// 3) Enforcement: pick a quota for the contender and bound the
	// interference without knowing anything about it.
	const quota = 1500
	bound := wcet.EnforcedContentionBound(quota, &lat)
	analyse(fmt.Sprintf("3) enforcement WCETs (contender stall quota %d)", quota), func(r wcet.Readings) int64 {
		return r.CCNT + bound
	})

	// Validate the enforcement claim on the simulator.
	app, err := workload.ControlLoop(workload.AppConfig{Scenario: workload.Scenario1, Core: 1, Iterations: specs[1].iters})
	if err != nil {
		log.Fatal(err)
	}
	contSrc.Reset()
	multi, err := sim.Run(lat, map[int]sim.Task{
		1: {Kind: tricore.TC16P, Src: app},
		2: {Kind: tricore.TC16P, Src: contSrc},
	}, 1, sim.Config{StallBudgets: map[int]int64{2: quota}})
	if err != nil {
		log.Fatal(err)
	}
	slow := multi.Cycles - isoReadings[1].CCNT
	fmt.Printf("enforced co-run of %s: slowdown %d cycles, bound %d — %v\n",
		specs[1].name, slow, bound, slow <= bound)
}
