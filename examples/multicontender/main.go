// Multicontender exercises the model extension the paper sketches in §2
// ("this model can be easily extended to consider more contenders at the
// same time"): the application on core 1 faces contenders on BOTH other
// cores — an M-Load on the second 1.6P and an L-Load on the 1.6E — and the
// models charge one round-robin delay per contender per request.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
	"repro/wcet"
)

func main() {
	lat := platform.TC27xLatencies()

	app, err := workload.ControlLoop(workload.AppConfig{Scenario: workload.Scenario1, Core: 1, Iterations: 200})
	if err != nil {
		log.Fatal(err)
	}
	iso, err := sim.RunIsolation(lat, 1, sim.Task{Kind: tricore.TC16P, Src: app}, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	appR := iso.Readings[1]
	fmt.Println("application in isolation:", appR)

	// Two contenders, measured in isolation on their own cores.
	contenders := []struct {
		core  int
		kind  tricore.Kind
		level workload.Level
	}{
		{core: 2, kind: tricore.TC16P, level: workload.MLoad},
		{core: 0, kind: tricore.TC16E, level: workload.LLoad},
	}
	var contReadings []wcet.Readings
	tasks := map[int]sim.Task{1: {Kind: tricore.TC16P, Src: app}}
	for _, c := range contenders {
		src, err := workload.Contender(workload.ContenderConfig{
			Level: c.level, Scenario: workload.Scenario1, Core: c.core, Bursts: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.RunIsolation(lat, c.core, sim.Task{Kind: c.kind, Src: src}, sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("contender on core %d (%v, %v): %v\n", c.core, c.kind, c.level, r.Readings[c.core])
		contReadings = append(contReadings, r.Readings[c.core])
		src.Reset()
		tasks[c.core] = sim.Task{Kind: c.kind, Src: src}
	}

	an, err := wcet.NewAnalyzer(wcet.WithScenario(wcet.Scenario1()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Analyze(context.Background(), wcet.Request{
		Analysed:   appR,
		Contenders: contReadings,
		Models:     []string{"ilpPtac", "ftc"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ilpE, _ := res.Estimate("ilpPtac")
	ftcE, _ := res.Estimate("ftc")
	fmt.Println("\ntwo-contender bounds:")
	fmt.Println("  ", ilpE)
	fmt.Println("  ", ftcE)

	// Deployment-time truth: all three cores running.
	app.Reset()
	multi, err := sim.Run(lat, tasks, 1, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved with both contenders: %d cycles (x%.3f), true wait %d cycles\n",
		multi.Cycles, float64(multi.Cycles)/float64(appR.CCNT), multi.TotalWait(1))
	switch {
	case multi.Cycles > ilpE.WCET():
		fmt.Println("BOUND VIOLATION — bug")
	default:
		fmt.Println("observed <= ILP-PTAC <= fTC holds with multiple contenders")
	}
}
