// Explore demonstrates the design-space exploration use case from the
// paper's introduction: an OEM hands a software provider a time budget;
// the provider, long before integration, sweeps candidate deployment
// configurations and candidate co-runner loads and checks which
// combinations keep the contention-aware WCET inside the budget.
//
// "Flexibility and adaptability of the model ... provides a powerful and
// reactive method for OEM and SWPs to explore and evaluate different
// scheduling allocations and deployment scenarios with respect to the
// expected contention they will suffer during operation, before actual
// integration." (§4.2)
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/platform"
)

func main() {
	lat := platform.TC27xLatencies()

	// The OEM's budget for this task, in cycles.
	const budget = 340_000

	points, err := experiments.Sweep(lat, 300)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("time budget: %d cycles\n\n", budget)
	fmt.Printf("%-10s %-9s %12s %12s %12s  %s\n",
		"deploy", "co-load", "isolation", "ILP WCET", "fTC WCET", "verdict")
	for _, p := range points {
		fmt.Printf("scenario%-2d %-9s %12d %12d %12d  %s\n",
			p.Scenario, p.Level, p.IsolationCycles, p.ILP.WCET(), p.FTC.WCET(), p.Judge(budget))
	}

	fmt.Println("\nreading: where fTC overshoots the budget, the tighter ILP-PTAC bound")
	fmt.Println("can still certify the allocation — the value of partial time-composability")
}
