// Service walkthrough: the OEM integration stream the paper motivates,
// end to end over HTTP — a software provider submits a batch of
// debug-counter readings for its task portfolio to a running wcetd, reads
// back fTC and ILP-PTAC bounds plus an RTA schedulability verdict, a
// second identical submission is answered from the canonical-request
// cache without re-solving anything (watch the hit counter move), and the
// versioned v2 API then serves an arbitrary subset of the registered
// contention models — here the FSB-collapse bound /v1 never exposed.
//
// The daemon here is started in-process for a self-contained example; in
// production it is `go run ./cmd/wcetd -addr :8080` and the HTTP calls
// are identical.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/dsu"
	"repro/internal/service"
)

func main() {
	// Step 0 — an OEM operator starts the analysis service.
	srv := service.New(service.Config{}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("wcetd serving on", base)

	// Step 1 — a provider has measured its tasks in isolation on the
	// TC27x (or ran them through internal/sim) and holds DSU readings.
	// It submits the whole portfolio as one batch. The first task also
	// asks for a schedulability verdict on its target core, using the
	// ILP-PTAC bound as its WCET next to an already-integrated 50k-cycle
	// control task.
	contender := dsu.Readings{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000}
	batch := service.BatchRequest{Requests: []service.Request{
		{
			Scenario:   1,
			Analysed:   dsu.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
			Contenders: []dsu.Readings{contender},
			RTA: &service.RTARequest{
				Task: service.RTATask{Name: "airbagCtl", PeriodCycles: 2_000_000, Priority: 2},
				Others: []service.RTATask{
					{Name: "cruiseCtl", WCETCycles: 50_000, PeriodCycles: 500_000, Priority: 1},
				},
			},
		},
		{
			Scenario:   1,
			Analysed:   dsu.Readings{CCNT: 301000, PS: 40000, DS: 51000, PM: 6100},
			Contenders: []dsu.Readings{contender},
		},
	}}

	results := submit(base, batch)
	for i, item := range results.Results {
		if item.Error != "" {
			log.Fatalf("task %d rejected: %s", i, item.Error)
		}
		r := item.Response
		fmt.Printf("task %d: isolation %d cycles, fTC wcet %d (x%.2f), ILP-PTAC wcet %d (x%.2f)\n",
			i, r.FTC.IsolationCycles, r.FTC.WCETCycles, r.FTC.Ratio, r.ILP.WCETCycles, r.ILP.Ratio)
		if r.RTA != nil {
			fmt.Printf("task %d: RTA with %s WCET %d: utilization %.2f, schedulable=%t\n",
				i, r.RTA.Model, r.RTA.WCETCycles, r.RTA.Utilization, r.RTA.Schedulable)
		}
	}

	// Step 2 — the provider re-runs its integration pipeline; the
	// identical submission costs zero solver time.
	submit(base, batch)
	var stats service.Stats
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("after resubmission: cache hits=%d misses=%d (batch items served: %d)\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.BatchItems)

	// Step 3 — the v2 API is generic over the model registry: discover
	// what this daemon serves, then request exactly one model — here the
	// front-side-bus collapse, which /v1 cannot produce at all.
	var models service.V2ModelsResponse
	getJSON(base+"/v2/models", &models)
	names := make([]string, len(models.Models))
	for i, m := range models.Models {
		names[i] = m.Name
	}
	fmt.Printf("registered models: %v\n", names)

	v2 := service.V2Request{
		Scenario:   1,
		Models:     []string{"ftcFsb"},
		Analysed:   dsu.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		Contenders: []dsu.Readings{contender},
	}
	body, err := json.Marshal(v2)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v2/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("/v2/analyze rejected: %s", resp.Status)
	}
	var v2out service.V2Response
	if err := json.NewDecoder(resp.Body).Decode(&v2out); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for _, e := range v2out.Estimates {
		fmt.Printf("v2 %s (%s): wcet %d cycles (x%.2f)\n", e.Name, e.Model, e.WCETCycles, e.Ratio)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func submit(base string, batch service.BatchRequest) service.BatchResponse {
	body, err := json.Marshal(batch)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("batch rejected: %s", resp.Status)
	}
	var out service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
