// Quickstart: the complete pre-integration workflow of the paper in ~60
// lines — measure a task and its future contender in isolation on the
// (simulated) TC27x, feed the debug-counter readings to the contention
// models, and get contention-aware WCET bounds without ever co-running
// the tasks.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
	"repro/wcet"
)

func main() {
	lat := platform.TC27xLatencies()

	// Step 1 — build the task under analysis: a small control loop
	// deployed per the paper's Scenario 1 (code in PFlash, shared data in
	// the LMU).
	app, err := workload.ControlLoop(workload.AppConfig{
		Scenario:   workload.Scenario1,
		Core:       1,
		Iterations: 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2 — measure it in isolation: this is what a software provider
	// can do long before integration.
	iso, err := sim.RunIsolation(lat, 1, sim.Task{Kind: tricore.TC16P, Src: app}, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	appReadings := iso.Readings[1]
	fmt.Println("task under analysis, in isolation:")
	fmt.Println("  ", appReadings)

	// Step 3 — measure the expected contender in isolation too.
	cont, err := workload.Contender(workload.ContenderConfig{
		Level: workload.MLoad, Scenario: workload.Scenario1, Core: 2, Bursts: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	contIso, err := sim.RunIsolation(lat, 2, sim.Task{Kind: tricore.TC16P, Src: cont}, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	contReadings := contIso.Readings[2]
	fmt.Println("contender, in isolation:")
	fmt.Println("  ", contReadings)

	// Step 4 — bound the multicore WCET from those readings alone,
	// through the public SDK facade (the same call the wcetd service and
	// the experiment campaigns make).
	an, err := wcet.NewAnalyzer(
		wcet.WithScenario(wcet.Scenario1()),
		wcet.WithModels("ftc", "ilpPtac"),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Analyze(context.Background(), wcet.Request{
		Analysed:   appReadings,
		Contenders: []wcet.Readings{contReadings},
	})
	if err != nil {
		log.Fatal(err)
	}
	ftcBound, _ := res.Estimate("ftc")
	ilpBound, _ := res.Estimate("ilpPtac")
	fmt.Println("\ncontention-aware WCET bounds:")
	fmt.Println("  ", ftcBound)
	fmt.Println("  ", ilpBound)

	// Step 5 — deployment-time check (normally impossible pre-
	// integration; the simulator lets us verify the bounds hold).
	app.Reset()
	cont.Reset()
	multi, err := sim.Run(lat, map[int]sim.Task{
		1: {Kind: tricore.TC16P, Src: app},
		2: {Kind: tricore.TC16P, Src: cont},
	}, 1, sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved co-scheduled execution: %d cycles (x%.2f of isolation)\n",
		multi.Cycles, float64(multi.Cycles)/float64(appReadings.CCNT))
	if multi.Cycles <= ilpBound.WCET() && ilpBound.WCET() <= ftcBound.WCET() {
		fmt.Println("observed <= ILP-PTAC <= fTC: bounds hold, ILP is tighter")
	} else {
		fmt.Println("BOUND VIOLATION — this would be a bug")
	}
}
