// Cruisecontrol reproduces the paper's full evaluation (§4.2) as a
// narrated walkthrough: the cruise-control-style application under both
// deployment scenarios, stressed by the H-, M- and L-Load contenders,
// with the fTC and ILP-PTAC predictions assessed against execution in
// isolation and against the observed co-scheduled runs.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/workload"
)

func main() {
	lat := platform.TC27xLatencies()

	fmt.Println("Cruise-control evaluation (paper §4.2, Figure 4)")
	fmt.Println("application: signal acquisition -> control computation -> status update")
	fmt.Println()

	rows, err := experiments.Figure4(lat)
	if err != nil {
		log.Fatal(err)
	}

	var lastScenario workload.Scenario
	for _, r := range rows {
		if r.Scenario != lastScenario {
			lastScenario = r.Scenario
			fmt.Printf("--- Scenario %d ---\n", r.Scenario)
			switch r.Scenario {
			case workload.Scenario1:
				fmt.Println("code in pf0/pf1 (cacheable), shared data in lmu (non-cacheable)")
			case workload.Scenario2:
				fmt.Println("code in pf0/pf1, data in lmu ($ and n$), constants in pf0/pf1 ($)")
			}
			fmt.Printf("isolation execution time: %d cycles\n\n", r.IsolationCycles)
		}
		fmt.Printf("%s contender:\n", r.Level)
		fmt.Printf("  observed co-scheduled:   x%.3f (%d extra cycles, all arbitration wait)\n",
			r.ObservedRatio(), r.TrueContention)
		fmt.Printf("  ILP-PTAC prediction:     x%.3f (+%d cycles bound)\n", r.ILP.Ratio(), r.ILP.ContentionCycles)
		fmt.Printf("  fTC prediction:          x%.3f (+%d cycles bound)\n", r.FTC.Ratio(), r.FTC.ContentionCycles)
		if r.ILP.WCET() >= r.ObservedCycles && r.FTC.WCET() >= r.ILP.WCET() {
			fmt.Println("  sound: observed <= ILP-PTAC <= fTC")
		} else {
			fmt.Println("  BOUND ORDERING VIOLATED — bug")
		}
		fmt.Println()
	}

	fmt.Println("published reference (paper Figure 4):")
	for _, ref := range experiments.PaperFigure4Values {
		fmt.Printf("  Sc%d: ILP ranges %.2f (L) to %.2f (H); fTC stuck at %.2f regardless of load\n",
			ref.Scenario, ref.ILPLow, ref.ILPHigh, ref.FTC)
	}
	fmt.Println("\nthe fTC model cannot benefit from contender information; the ILP model")
	fmt.Println("adapts to the load the co-runner puts on shared resources (paper §4.2)")
}
