// Package repro is a from-scratch Go reproduction of "Modelling Multicore
// Contention on the AURIX™ TC27x" (Díaz, Mezzetti, Kosmidis, Abella,
// Cazorla — DAC 2018): measurement-based multicore-contention WCET models
// driven exclusively by Debug Support Unit counters, evaluated on a
// cycle-level simulator of the TC27x memory system standing in for the
// paper's silicon testbed.
//
// The library lives under internal/: the paper's contribution in
// internal/core, and every substrate it depends on (platform description,
// SRI crossbar, TriCore cores, caches, DSU counters, simulation harness,
// LP/ILP solver, workload generators, experiment drivers) alongside it.
// Executables live under cmd/, runnable walkthroughs under examples/, and
// the benchmark harness regenerating every table and figure of the paper's
// evaluation is bench_test.go in this directory.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
