// Package repro is a from-scratch Go reproduction of "Modelling Multicore
// Contention on the AURIX™ TC27x" (Díaz, Mezzetti, Kosmidis, Abella,
// Cazorla — DAC 2018): measurement-based multicore-contention WCET models
// driven exclusively by Debug Support Unit counters, evaluated on a
// cycle-level simulator of the TC27x memory system standing in for the
// paper's silicon testbed.
//
// The public SDK lives in wcet/ (import repro/wcet): a pluggable
// ContentionModel interface, a concurrency-safe model registry with the
// paper's models pre-registered (ftc, ilpPtac, ftcFsb, templatePtac,
// ideal), and an Analyzer facade the serving, CLI and experiment layers
// all build on — adding a model or platform is a registration, not a
// cross-cutting edit.
//
// The implementation lives under internal/: the paper's contribution in
// internal/core, and every substrate it depends on (platform description,
// SRI crossbar, TriCore cores, caches, DSU counters, simulation harness,
// LP/ILP solver, workload generators, experiment drivers) alongside it.
// The evaluation itself runs as campaigns on internal/campaign, a
// parallel experiment engine: independent measurement cells fan out
// across a worker pool, isolation baselines are memoized across cells
// and artefacts, and results are assembled in stable input order so a
// parallel campaign is byte-identical to a serial one. The drivers in
// internal/experiments (Table 2 calibration, Table 6 readings, Figure 4,
// the multi-dimensional OEM design-space sweep) all go through it.
// internal/service is the serving layer over the SDK: the
// request/response API shared by the cmd/wcet CLI and the cmd/wcetd
// HTTP daemon (the frozen /v1 pair and the registry-generic /v2),
// canonical-request result caching, and admission control, with batch
// requests fanned out across the campaign engine's pool.
// Executables live under cmd/, runnable walkthroughs under examples/, and
// the benchmark harness regenerating every table and figure of the paper's
// evaluation is bench_test.go in this directory.
//
// See README.md for the tour and for how to run the experiments and the
// CI gates (build, vet, gofmt, race tests, bench smoke — make mirrors
// the workflow exactly).
package repro
