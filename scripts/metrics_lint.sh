#!/usr/bin/env bash
# metrics_lint.sh — static check of metric naming conventions.
#
# Scans every non-test .go file for telemetry registrations (calls on a
# registry receiver: telemetry.Default(), reg, *.reg) and enforces the
# Prometheus naming rules this repo follows:
#
#   * counters end in _total
#   * histograms carry a base-unit suffix (_seconds or _bytes)
#   * gauges do NOT end in _total (that suffix promises monotonicity)
#   * info metrics end in _info
#   * every name is lower_snake_case: [a-z][a-z0-9_]*
#
# Exit 0 when clean; prints one line per violation and exits 1 otherwise.
# CI runs this in the build job; `make lint` runs it locally.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
violation() {
  echo "metrics-lint: $1" >&2
  fail=1
}

# Registration sites: <file>:<line>:<kind>:<name>. The receiver filter
# (Default()/reg) keeps logger.Info(...) calls out of the Info matches.
sites=$(grep -rn --include='*.go' --exclude='*_test.go' \
  -E '(telemetry\.Default\(\)|[[:alnum:]_.]*reg)\.(Counter|CounterVec|Gauge|GaugeFunc|Histogram|HistogramVec|Info)\("[^"]+"' . \
  | sed -E 's#^\./(.+):([0-9]+):.*\.(Counter|CounterVec|Gauge|GaugeFunc|Histogram|HistogramVec|Info)\("([^"]+)".*#\1:\2:\3:\4#' \
  | grep -E '^[^:]+:[0-9]+:[A-Za-z]+:' || true)

if [ -z "$sites" ]; then
  echo "metrics-lint: found no metric registrations — the scan pattern is broken" >&2
  exit 1
fi

count=0
while IFS=: read -r file line kind name; do
  count=$((count + 1))
  where="$file:$line"

  if ! printf '%s' "$name" | grep -qE '^[a-z][a-z0-9_]*$'; then
    violation "$where: $kind \"$name\" is not lower_snake_case"
    continue
  fi

  case "$kind" in
  Counter | CounterVec)
    case "$name" in
    *_total) ;;
    *) violation "$where: counter \"$name\" must end in _total" ;;
    esac
    ;;
  Histogram | HistogramVec)
    case "$name" in
    *_seconds | *_bytes) ;;
    *) violation "$where: histogram \"$name\" needs a base-unit suffix (_seconds or _bytes)" ;;
    esac
    ;;
  Gauge | GaugeFunc)
    case "$name" in
    *_total) violation "$where: gauge \"$name\" must not end in _total (reserved for counters)" ;;
    esac
    ;;
  Info)
    case "$name" in
    *_info) ;;
    *) violation "$where: info metric \"$name\" must end in _info" ;;
    esac
    ;;
  esac
done <<<"$sites"

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "metrics-lint: OK ($count registrations checked)"
