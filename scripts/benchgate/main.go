// Command benchgate parses `go test -bench` output into the repository's
// BENCH_<pr>.json trajectory format and gates the current run against the
// last committed trajectory point. scripts/bench_gate.sh drives both modes
// and is the one harness every committed BENCH file is produced by, so a
// diff between two trajectory points is always apples to apples.
//
// Usage:
//
//	benchgate parse -in raw.txt -out bench.json [-pr N] [-count C] [-benchtime D]
//	benchgate gate -current bench.json [-dir .]
//
// parse aggregates repeated samples of each benchmark (the -count runs)
// into p50/p99 ns/op plus the median of allocs/op, B/op, and every custom
// metric (bound_cycles, nodes, ...). CPU-count suffixes ("-8") are
// stripped from benchmark names so trajectory points from machines with
// different core counts stay comparable.
//
// gate finds the highest-numbered BENCH_*.json in -dir and fails (exit 1)
// when the current run regresses a shared benchmark's cold-solve p50
// ns/op — or its allocs/op, which is machine-independent and therefore
// catches real regressions even on noisy runners — by more than the
// threshold. BENCH_GATE_THRESHOLD configures the threshold: values below 1
// are fractions ("0.15"), values 1 and above are percent ("15", the
// default).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's aggregated trajectory entry.
type Bench struct {
	Samples  int                `json:"samples"`
	P50NsOp  float64            `json:"p50_ns_op"`
	P99NsOp  float64            `json:"p99_ns_op"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	BytesOp  float64            `json:"bytes_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<pr>.json schema.
type File struct {
	Schema    int    `json:"schema"`
	PR        int    `json:"pr,omitempty"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Count     int    `json:"count"`
	Benchtime string `json:"benchtime,omitempty"`
	// Notes carries free-form provenance (e.g. the pre-change baseline a
	// trajectory point was measured against).
	Notes      []string         `json:"notes,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: benchgate parse|gate [flags]")
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	default:
		fatalf("benchgate: unknown command %q (want parse or gate)", os.Args[1])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// benchLine matches one result line of -bench output:
//
//	BenchmarkTable5Tailoring/scenario1-8  123  10523 ns/op  2617 B/op  13 allocs/op  20500 bound_cycles ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "", "raw `go test -bench` output (default stdin)")
	out := fs.String("out", "", "output JSON path (default stdout)")
	pr := fs.Int("pr", 0, "PR number to record (0 omits it)")
	count := fs.Int("count", 0, "-count the run used (recorded for provenance)")
	benchtime := fs.String("benchtime", "", "-benchtime the run used (recorded for provenance)")
	note := fs.String("note", "", "free-form provenance note")
	fs.Parse(args)

	var raw []byte
	var err error
	if *in == "" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*in)
	}
	if err != nil {
		fatalf("benchgate: reading input: %v", err)
	}

	samples := map[string][]map[string]float64{}
	var order []string
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		vals := map[string]float64{}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			vals[fields[i+1]] = v
		}
		if _, ok := vals["ns/op"]; !ok {
			continue
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], vals)
	}
	if len(samples) == 0 {
		fatalf("benchgate: no benchmark results found in input")
	}

	f := File{
		Schema:     1,
		PR:         *pr,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Count:      *count,
		Benchtime:  *benchtime,
		Benchmarks: map[string]Bench{},
	}
	if *note != "" {
		f.Notes = []string{*note}
	}
	for _, name := range order {
		runs := samples[name]
		b := Bench{
			Samples: len(runs),
			P50NsOp: quantile(collect(runs, "ns/op"), 0.50),
			P99NsOp: quantile(collect(runs, "ns/op"), 0.99),
		}
		if a := collect(runs, "allocs/op"); len(a) > 0 {
			b.AllocsOp = quantile(a, 0.50)
		}
		if by := collect(runs, "B/op"); len(by) > 0 {
			b.BytesOp = quantile(by, 0.50)
		}
		for unit := range runs[0] {
			switch unit {
			case "ns/op", "allocs/op", "B/op", "MB/s":
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = quantile(collect(runs, unit), 0.50)
		}
		f.Benchmarks[name] = b
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("benchgate: %v", err)
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks, %d samples each)\n", *out, len(f.Benchmarks), len(samples[order[0]]))
}

func collect(runs []map[string]float64, unit string) []float64 {
	var xs []float64
	for _, r := range runs {
		if v, ok := r[unit]; ok {
			xs = append(xs, v)
		}
	}
	return xs
}

// quantile returns the q-quantile of xs via the nearest-rank method; with
// the usual five samples p50 is the median and p99 the maximum.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q*float64(len(s)) + 0.5)
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// benchFile matches committed trajectory points (BENCH_6.json, ...).
var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func cmdGate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	current := fs.String("current", "", "JSON of the current run (required)")
	dir := fs.String("dir", ".", "directory holding committed BENCH_*.json files")
	fs.Parse(args)
	if *current == "" {
		fatalf("benchgate gate: -current is required")
	}

	threshold := 0.15
	if env := os.Getenv("BENCH_GATE_THRESHOLD"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v <= 0 {
			fatalf("benchgate: bad BENCH_GATE_THRESHOLD %q", env)
		}
		if v >= 1 {
			v /= 100
		}
		threshold = v
	}

	cur, err := loadFile(*current)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	ref, refPath, err := latestCommitted(*dir, *current)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	if ref == nil {
		fmt.Printf("benchgate: no committed BENCH_*.json in %s — nothing to gate against (first trajectory point)\n", *dir)
		return
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := ref.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatalf("benchgate: %s and %s share no benchmarks", *current, refPath)
	}

	var failures []string
	fmt.Printf("benchgate: gating %s against %s (threshold %.0f%%)\n", *current, refPath, threshold*100)
	for _, name := range names {
		c, r := cur.Benchmarks[name], ref.Benchmarks[name]
		verdict := "ok"
		if c.P50NsOp > r.P50NsOp*(1+threshold) {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: cold-solve p50 %.0f ns/op vs committed %.0f (+%.1f%%)",
				name, c.P50NsOp, r.P50NsOp, 100*(c.P50NsOp/r.P50NsOp-1)))
		}
		// allocs/op is deterministic per build, so it gates at the same
		// threshold but is immune to machine noise: a regression here is
		// always real.
		if r.AllocsOp > 0 && c.AllocsOp > r.AllocsOp*(1+threshold) {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs committed %.0f",
				name, c.AllocsOp, r.AllocsOp))
		}
		// Rate metrics ("*_rate": cache_hit_rate, warm_start_rate, ...)
		// are effectiveness fractions, so they gate in the opposite
		// direction: the run fails when the current rate falls more than
		// the threshold below the committed one. speedup_x (parallel
		// branch & bound vs sequential, BenchmarkTable5Parallel) gates
		// the same way — losing it means the worker pool stopped paying
		// for itself on multi-core runners. Ratios like ilp_x are
		// reproduced paper values, not effectiveness — informational.
		for unit, rv := range r.Metrics {
			if !(strings.HasSuffix(unit, "_rate") || unit == "speedup_x") || rv <= 0 {
				continue
			}
			cv, ok := c.Metrics[unit]
			if !ok {
				continue
			}
			if cv < rv*(1-threshold) {
				verdict = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %s %.3f vs committed %.3f (-%.1f%%)",
					name, unit, cv, rv, 100*(1-cv/rv)))
			}
		}
		fmt.Printf("  %-55s p50 %12.0f ns/op  (ref %12.0f)  allocs %6.0f (ref %6.0f)  %s\n",
			name, c.P50NsOp, r.P50NsOp, c.AllocsOp, r.AllocsOp, verdict)
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		fmt.Fprintf(os.Stderr, "  (threshold %.0f%%; tune with BENCH_GATE_THRESHOLD — see docs/BENCHMARKING.md)\n", threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func loadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// latestCommitted returns the highest-numbered BENCH_<n>.json in dir,
// skipping the file being gated (so re-gating a fresh BENCH_7.json in a
// working tree that already contains it compares against BENCH_6.json).
func latestCommitted(dir, current string) (*File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	curAbs, _ := filepath.Abs(current)
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if abs, _ := filepath.Abs(p); abs == curAbs {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			best, bestN = p, n
		}
	}
	if bestN < 0 {
		return nil, "", nil
	}
	f, err := loadFile(best)
	return f, best, err
}
