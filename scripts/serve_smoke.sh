#!/usr/bin/env bash
# wcetd smoke test: start the daemon, POST one single and one batch
# request, assert 200 + expected fields on both, POST a /v2/analyze
# request selecting a single model and assert exactly that model's
# estimate comes back, assert /v2/tables lists the seeded default table,
# round-trip a simulator-emitted calibration batch through /v2/calibrate,
# check live stats and the /v2/models listing, then SIGTERM and assert a
# clean (exit 0, drained) shutdown.
#
# A second phase exercises the campaign-job durability contract over the
# wire: start wcetd with a persistent -data dir, submit a 24-cell sweep,
# SIGKILL the daemon mid-job, restart it over the same dirs, and assert
# the job resumes from its checkpoint, finishes, and serves an artifact
# byte-identical to `cmd/experiments -only sweep -json` for the same grid.
#
# A third phase exercises the observability layer: metrics history fills
# and is queryable, a traced request's stored trace is retrievable by ID,
# an induced latency SLO burn (nanosecond target) produces an `event:
# alert` SSE frame, and both history and traces survive SIGKILL + restart.
#
# `make serve-smoke` and CI's wcetd-smoke job both run exactly this.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${WCETD_ADDR:-127.0.0.1:18327}"
BIN="$(mktemp -d)/wcetd"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/wcetd

# -solver-workers 2 so the smoke also proves the parallel branch & bound
# serves byte-identical answers and reports its telemetry.
"$BIN" -addr "$ADDR" -solver-workers 2 &
PID=$!
cleanup() {
  kill "$PID" 2>/dev/null || true
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "serve-smoke: wcetd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null

echo "serve-smoke: single estimate"
single=$(curl -fsS -X POST "http://$ADDR/v1/wcet" -d '{
  "scenario": 1,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}')
echo "$single" | grep -q '"ftc"'
echo "$single" | grep -q '"ilpPtac"'
echo "$single" | grep -q '"wcetCycles"'

echo "serve-smoke: batch"
batch=$(curl -fsS -X POST "http://$ADDR/v1/batch" -d '{
  "requests": [
    {
      "scenario": 1,
      "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
      "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
    },
    {
      "scenario": 2,
      "analysed":   {"CCNT": 301000, "PS": 40000, "DS": 51000, "PM": 6100, "DMC": 1200, "DMD": 400},
      "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
    }
  ]
}')
echo "$batch" | grep -q '"results"'
echo "$batch" | grep -q '"ilpPtac"'
if echo "$batch" | grep -q '"error"'; then
  echo "serve-smoke: batch contained errors:" >&2
  echo "$batch" >&2
  exit 1
fi

echo "serve-smoke: v2 single-model selection"
v2=$(curl -fsS -X POST "http://$ADDR/v2/analyze" -d '{
  "scenario": 1,
  "models": ["ftcFsb"],
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}')
echo "$v2" | grep -q '"estimates"'
echo "$v2" | grep -q '"name": "ftcFsb"'
echo "$v2" | grep -q '"wcetCycles"'
# Only the selected model may be present.
if echo "$v2" | grep -q '"name": "ilpPtac"'; then
  echo "serve-smoke: /v2/analyze returned an unselected model:" >&2
  echo "$v2" >&2
  exit 1
fi
if [ "$(echo "$v2" | grep -c '"name":')" -ne 1 ]; then
  echo "serve-smoke: /v2/analyze returned more than the one selected model:" >&2
  echo "$v2" >&2
  exit 1
fi

echo "serve-smoke: v2 tables list the seeded default"
tables=$(curl -fsS "http://$ADDR/v2/tables")
echo "$tables" | grep -q '"serving"'
echo "$tables" | grep -q 'tc27x/default'
serving=$(echo "$tables" | grep -o '"serving": "[0-9a-f]*"' | head -1 | grep -o '[0-9a-f]\{64\}')
if [ -z "$serving" ]; then
  echo "serve-smoke: /v2/tables serving id missing:" >&2
  echo "$tables" >&2
  exit 1
fi

echo "serve-smoke: v2 calibrate round-trip (simulator-emitted readings)"
cal=$(go run ./cmd/aurixsim -emit-readings -accesses 200 \
  | curl -fsS -X POST "http://$ADDR/v2/calibrate" --data-binary @-)
echo "$cal" | grep -q '"converged": true'
echo "$cal" | grep -q '"table"'
echo "$cal" | grep -q '"drift"'
# Calibrating the unchanged platform must reproduce the serving table:
# same content address, no drift.
if ! echo "$cal" | grep -q "\"id\": \"$serving\""; then
  echo "serve-smoke: calibrated table does not match the serving default:" >&2
  echo "$cal" >&2
  exit 1
fi
if echo "$cal" | grep -q '"drifted": true'; then
  echo "serve-smoke: unchanged platform reported drift:" >&2
  echo "$cal" >&2
  exit 1
fi

echo "serve-smoke: v2 model listing"
models=$(curl -fsS "http://$ADDR/v2/models")
echo "$models" | grep -q '"ftc"'
echo "$models" | grep -q '"ilpPtac"'
echo "$models" | grep -q '"templatePtac"'

echo "serve-smoke: stats"
stats=$(curl -fsS "http://$ADDR/v1/stats")
echo "$stats" | grep -q '"hits"'
echo "$stats" | grep -q '"misses"'
echo "$stats" | grep -q '"maxInFlight"'

echo "serve-smoke: metrics exposition"
# Re-post the first request so the result cache provably has a hit, then
# scrape /metrics and assert the key series exist with sane values.
curl -fsS -X POST "http://$ADDR/v1/wcet" -d '{
  "scenario": 1,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}' >/dev/null
metrics=$(curl -fsS "http://$ADDR/metrics")
for series in wcetd_requests_total wcetd_cache_hits_total wcetd_cache_shard_contention_total \
              solver_warm_starts_total solver_ilp_solves_total solver_bb_workers \
              solver_bb_steals_total analyzer_estimates_total campaign_cells_total; do
  if ! echo "$metrics" | grep -q "^# TYPE $series "; then
    echo "serve-smoke: /metrics missing $series" >&2
    exit 1
  fi
done
v1_requests=$(echo "$metrics" | grep '^wcetd_requests_total{endpoint="v1_wcet"}' | awk '{print $2}')
if [ -z "$v1_requests" ] || [ "$v1_requests" -lt 2 ]; then
  echo "serve-smoke: wcetd_requests_total{endpoint=\"v1_wcet\"} = '$v1_requests', want >= 2" >&2
  exit 1
fi
cache_hits=$(echo "$metrics" | grep '^wcetd_cache_hits_total ' | awk '{print $2}')
if [ -z "$cache_hits" ] || [ "$cache_hits" -lt 1 ]; then
  echo "serve-smoke: wcetd_cache_hits_total = '$cache_hits', want >= 1 (a request was repeated)" >&2
  exit 1
fi
ilp_solves=$(echo "$metrics" | grep '^solver_ilp_solves_total ' | awk '{print $2}')
if [ -z "$ilp_solves" ] || [ "$ilp_solves" -lt 1 ]; then
  echo "serve-smoke: solver_ilp_solves_total = '$ilp_solves', want >= 1" >&2
  exit 1
fi

echo "serve-smoke: request tracing"
# A body no earlier step submitted, so the trace walks the full miss path
# (cache → admission → evaluate → per-model solves), not a cache hit.
traced=$(curl -fsS -D /tmp/serve_smoke_headers.$$ -X POST "http://$ADDR/v1/wcet" \
  -H 'X-Wcet-Trace: 1' -d '{
  "scenario": 2,
  "analysed":   {"CCNT": 302500, "PS": 40000, "DS": 51000, "PM": 6100, "DMC": 1200, "DMD": 400},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}')
grep -qi '^X-Wcet-Trace-Id:' /tmp/serve_smoke_headers.$$ || {
  echo "serve-smoke: traced response missing X-Wcet-Trace-Id header" >&2
  rm -f /tmp/serve_smoke_headers.$$
  exit 1
}
rm -f /tmp/serve_smoke_headers.$$
echo "$traced" | grep -q '"trace"'
echo "$traced" | grep -q '"response"'
echo "$traced" | grep -q '"spans"'
echo "$traced" | grep -q '"name":"model:ilpPtac"'
# The inline response must still carry the analysis payload.
echo "$traced" | grep -q '"ilpPtac"'

echo "serve-smoke: parallel solver + sharded cache telemetry"
# The traced scenario2 request above ran a big enough branch & bound tree
# for the parallel phase to engage (the daemon runs -solver-workers 2),
# so the worker gauge must report the configured width and the per-shard
# contention series must expose at least shard 0.
metrics=$(curl -fsS "http://$ADDR/metrics")
bb_workers=$(echo "$metrics" | grep '^solver_bb_workers ' | awk '{print $2}')
if [ "$bb_workers" != "2" ]; then
  echo "serve-smoke: solver_bb_workers = '$bb_workers', want 2" >&2
  exit 1
fi
if ! echo "$metrics" | grep -q '^wcetd_cache_shard_contention_total{shard="0"}'; then
  echo "serve-smoke: /metrics missing per-shard wcetd_cache_shard_contention_total series" >&2
  exit 1
fi

echo "serve-smoke: dashboard + stats stream"
curl -fsS "http://$ADDR/v2/dashboard" | grep -q '/v2/stats/stream'
# The stream never ends on its own; cap it with -m and swallow curl's
# timeout exit — the assertion is that an SSE stats event arrived.
(curl -fsS -m 3 -N "http://$ADDR/v2/stats/stream?interval=100" 2>/dev/null || true) \
  | head -3 | grep -q '^event: stats'

echo "serve-smoke: graceful shutdown"
kill -TERM "$PID"
# wait returns wcetd's exit status: 0 only if it drained and exited
# cleanly on SIGTERM rather than being killed by it.
wait "$PID"

# --- Phase 2: campaign jobs survive SIGKILL ------------------------------
# A fresh daemon with persistent dirs. -workers 2 leaves exactly one
# background slot, so the 24-cell job takes long enough to be killed
# mid-flight deterministically.
DATA="$(dirname "$BIN")/data"
WORK="$(dirname "$BIN")"

wait_health() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$1" 2>/dev/null; then
      echo "serve-smoke: wcetd died during startup" >&2
      exit 1
    fi
    sleep 0.1
  done
  curl -fsS "http://$ADDR/healthz" >/dev/null
}

job_status() {
  curl -fsS "http://$ADDR/v2/campaigns/$JOB_ID"
}

echo "serve-smoke: campaign submit"
"$BIN" -addr "$ADDR" -data "$DATA" -workers 2 &
PID=$!
wait_health "$PID"

# 2 scenarios x 3 levels x 4 perturbations x 1 model = 24 cells. The
# perturbations and iteration count are mirrored exactly by the offline
# cmd/experiments invocation below, which must produce the same bytes.
submitted=$(curl -fsS -X POST "http://$ADDR/v2/campaigns" -d '{
  "grid": {
    "models": ["ftc"],
    "appIterations": 600,
    "perturbations": [
      {},
      {"name": "up10",   "scalePercent": 110},
      {"name": "up20",   "scalePercent": 120},
      {"name": "down10", "scalePercent": 90}
    ]
  }
}')
echo "$submitted" | grep -q '"totalCells": 24'
JOB_ID=$(echo "$submitted" | grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4)
if [ -z "$JOB_ID" ]; then
  echo "serve-smoke: campaign submit returned no job id:" >&2
  echo "$submitted" >&2
  exit 1
fi

# Stream progress concurrently; the capture ends when the daemon is
# killed, and must contain at least one per-cell SSE event by then.
STREAM="$WORK/stream.txt"
(curl -fsS -m 60 -N "http://$ADDR/v2/campaigns/$JOB_ID/stream" >"$STREAM" 2>/dev/null || true) &
STREAM_PID=$!

echo "serve-smoke: campaign kill -9 mid-job"
killed_status=""
for _ in $(seq 1 600); do
  killed_status=$(job_status)
  done_cells=$(echo "$killed_status" | grep -o '"doneCells": [0-9]*' | grep -o '[0-9]*' || true)
  if [ "${done_cells:-0}" -ge 1 ]; then
    break
  fi
  sleep 0.05
done
if [ "${done_cells:-0}" -lt 1 ]; then
  echo "serve-smoke: campaign made no progress before kill:" >&2
  echo "$killed_status" >&2
  exit 1
fi
# The job must still be running when the daemon dies — that is what makes
# the restart below a genuine checkpoint resume, not a reload of a done job.
echo "$killed_status" | grep -q '"state": "running"'
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true
grep -q '^event: cell' "$STREAM"

echo "serve-smoke: campaign resume after restart"
"$BIN" -addr "$ADDR" -data "$DATA" -workers 2 &
PID=$!
wait_health "$PID"

# The restarted daemon must have picked the job up from its checkpoint...
metrics=$(curl -fsS "http://$ADDR/metrics")
resumed=$(echo "$metrics" | grep '^jobs_resumed_total ' | awk '{print $2}' || true)
if [ -z "$resumed" ] || [ "$resumed" -lt 1 ]; then
  echo "serve-smoke: jobs_resumed_total = '$resumed', want >= 1 after restart" >&2
  exit 1
fi
restored=$(echo "$metrics" | grep '^jobs_cells_restored_total ' | awk '{print $2}' || true)
if [ -z "$restored" ] || [ "$restored" -lt 1 ]; then
  echo "serve-smoke: jobs_cells_restored_total = '$restored', want >= 1 (checkpointed cells must not re-solve)" >&2
  exit 1
fi

# ...and drive it to completion.
final=""
for _ in $(seq 1 1200); do
  final=$(job_status)
  if echo "$final" | grep -q '"state": "done"'; then
    break
  fi
  if echo "$final" | grep -Eq '"state": "(failed|canceled)"'; then
    echo "serve-smoke: resumed campaign ended badly:" >&2
    echo "$final" >&2
    exit 1
  fi
  sleep 0.1
done
echo "$final" | grep -q '"state": "done"'
echo "$final" | grep -q '"doneCells": 24'

echo "serve-smoke: campaign stream replay across restart"
# A full replay (everything after event 0) must deliver all 24 cell
# events plus the terminal state event, then end the stream on its own.
replay="$WORK/replay.txt"
curl -fsS -m 30 -N "http://$ADDR/v2/campaigns/$JOB_ID/stream?lastEventId=0" >"$replay"
cells=$(grep -c '^event: cell' "$replay" || true)
if [ "$cells" -ne 24 ]; then
  echo "serve-smoke: stream replay carried $cells cell events, want 24" >&2
  exit 1
fi
grep -q '^event: state' "$replay"
grep -q '"state":"done"' "$replay"

echo "serve-smoke: campaign artifact byte-identical to offline sweep"
curl -fsS "http://$ADDR/v2/campaigns/$JOB_ID/artifact" >"$WORK/artifact.json"
go run ./cmd/experiments -only sweep -models ftc -app-iterations 600 \
  -perturb up10:+10,up20:+20,down10:-10 -json "$WORK/reference.json" >/dev/null
if ! cmp -s "$WORK/artifact.json" "$WORK/reference.json"; then
  echo "serve-smoke: resumed campaign artifact differs from the offline sweep" >&2
  diff "$WORK/artifact.json" "$WORK/reference.json" | head -20 >&2 || true
  exit 1
fi

echo "serve-smoke: campaign daemon graceful shutdown"
kill -TERM "$PID"
wait "$PID"

# --- Phase 3: observability — history, traces, SLO burn, kill -9 ---------
# A daemon over the same persistent -data dir with a fast sampling cadence
# and one deliberately impossible latency SLO: a nanosecond p99 target the
# very first real request violates, so the burn-rate alert fires
# deterministically within a few evaluation ticks.
SLO_CFG="$WORK/slo_smoke.json"
cat >"$SLO_CFG" <<'EOF'
{
  "objectives": [
    {
      "name": "smoke-latency",
      "kind": "latency",
      "goal": 0.99,
      "series": "wcetd_request_seconds{endpoint=\"v1_wcet\"}_p99",
      "targetSeconds": 0.000000001
    }
  ]
}
EOF

echo "serve-smoke: observability daemon"
"$BIN" -addr "$ADDR" -data "$DATA" -history-interval 200ms -slo-config "$SLO_CFG" &
PID=$!
wait_health "$PID"

echo "serve-smoke: traced request stored and retrievable by id"
curl -fsS -D "$WORK/obs_headers" -X POST "http://$ADDR/v1/wcet" \
  -H 'X-Wcet-Trace: 1' -d '{
  "scenario": 1,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}' >/dev/null
TRACE_ID=$(grep -i '^X-Wcet-Trace-Id:' "$WORK/obs_headers" | tr -d '\r' | awk '{print $2}')
if [ -z "$TRACE_ID" ]; then
  echo "serve-smoke: traced response missing X-Wcet-Trace-Id header" >&2
  exit 1
fi
stored=$(curl -fsS "http://$ADDR/v2/traces/$TRACE_ID")
echo "$stored" | grep -q '"sampled": "header"'
echo "$stored" | grep -q '"endpoint": "v1_wcet"'
# ...and the search endpoint lists it.
curl -fsS "http://$ADDR/v2/traces?endpoint=v1_wcet" | grep -q "\"id\": \"$TRACE_ID\""

echo "serve-smoke: metrics history fills"
points=0
for _ in $(seq 1 100); do
  hist=$(curl -fsS "http://$ADDR/v2/metrics/history?series=wcetd_requests_total*")
  points=$(echo "$hist" | grep -c '"t":' || true)
  if [ "$points" -ge 2 ]; then
    break
  fi
  sleep 0.1
done
if [ "$points" -lt 2 ]; then
  echo "serve-smoke: /v2/metrics/history stayed empty ($points points):" >&2
  echo "$hist" >&2
  exit 1
fi
# The history listing names the request counter family.
curl -fsS "http://$ADDR/v2/metrics/history" | grep -q '"wcetd_requests_total'

echo "serve-smoke: induced SLO burn fires"
fired=""
for _ in $(seq 1 150); do
  fired=$(curl -fsS "http://$ADDR/v2/alerts")
  if echo "$fired" | grep -q '"slo": "smoke-latency"'; then
    break
  fi
  sleep 0.1
done
if ! echo "$fired" | grep -q '"slo": "smoke-latency"'; then
  echo "serve-smoke: latency SLO never fired:" >&2
  echo "$fired" >&2
  exit 1
fi
# The stats stream replays active alerts on connect, so a fresh
# subscriber must see an `event: alert` frame immediately.
(curl -fsS -m 3 -N "http://$ADDR/v2/stats/stream?interval=100" 2>/dev/null || true) \
  >"$WORK/obs_stream.txt"
if ! grep -q '^event: alert' "$WORK/obs_stream.txt"; then
  echo "serve-smoke: stats stream carried no alert frame:" >&2
  head -20 "$WORK/obs_stream.txt" >&2
  exit 1
fi
grep -A1 '^event: alert' "$WORK/obs_stream.txt" | grep -q 'smoke-latency'

echo "serve-smoke: observability kill -9 + restart preserves history and traces"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
# The restart samples only once an hour, so everything it serves below
# was replayed from the checksummed on-disk segments, not re-collected.
"$BIN" -addr "$ADDR" -data "$DATA" -history-interval 1h &
PID=$!
wait_health "$PID"
hist2=$(curl -fsS "http://$ADDR/v2/metrics/history?series=wcetd_requests_total*")
points2=$(echo "$hist2" | grep -c '"t":' || true)
if [ "$points2" -lt 2 ]; then
  echo "serve-smoke: restarted daemon replayed only $points2 history points:" >&2
  echo "$hist2" >&2
  exit 1
fi
restored_trace=$(curl -fsS "http://$ADDR/v2/traces/$TRACE_ID")
echo "$restored_trace" | grep -q '"sampled": "header"'

echo "serve-smoke: observability daemon graceful shutdown"
kill -TERM "$PID"
wait "$PID"

echo "serve-smoke: OK"
