#!/usr/bin/env bash
# bench_gate.sh — the one harness behind every committed BENCH_<pr>.json
# trajectory point and the CI regression gate. It runs the solver-path
# benchmarks with repeated samples, aggregates them into bench.json via
# scripts/benchgate, and fails when the run regresses against the last
# committed BENCH_*.json beyond the noise threshold.
#
# Environment knobs:
#   BENCH_GATE_COUNT      repeated samples per benchmark (default 5)
#   BENCH_GATE_BENCHTIME  -benchtime per sample (default 1s)
#   BENCH_GATE_PATTERN    -bench regexp (default: the cold-solve paths
#                         BenchmarkTable5Tailoring and BenchmarkFigure4,
#                         plus the concurrency trajectory —
#                         BenchmarkTable5Parallel, BenchmarkCacheHitParallel,
#                         BenchmarkServeSaturated and BenchmarkCampaignJob,
#                         the interactive-latency-under-background-jobs
#                         guarantee)
#   BENCH_GATE_OUT        aggregated JSON output (default bench.json)
#   BENCH_GATE_THRESHOLD  regression tolerance, percent or fraction
#                         (default 15; read by scripts/benchgate gate)
#   BENCH_GATE_PR         PR number to stamp into the JSON (optional; set
#                         when minting a BENCH_<pr>.json trajectory point)
#   BENCH_GATE_NOTE       free-form provenance note recorded in the JSON
#                         (e.g. the core count the point was minted on)
#   BENCH_GATE_SKIP_GATE  set to 1 to only produce the JSON (minting mode)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_GATE_COUNT:-5}"
BENCHTIME="${BENCH_GATE_BENCHTIME:-1s}"
PATTERN="${BENCH_GATE_PATTERN:-^(BenchmarkTable5Tailoring|BenchmarkFigure4|BenchmarkTable5Parallel|BenchmarkCacheHitParallel|BenchmarkServeSaturated|BenchmarkCampaignJob)\$}"
OUT="${BENCH_GATE_OUT:-bench.json}"
PR="${BENCH_GATE_PR:-0}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench_gate: running $PATTERN (count=$COUNT, benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$raw"

go run ./scripts/benchgate parse \
  -in "$raw" -out "$OUT" -pr "$PR" -count "$COUNT" -benchtime "$BENCHTIME" \
  -note "${BENCH_GATE_NOTE:-}"

if [ "${BENCH_GATE_SKIP_GATE:-0}" = "1" ]; then
  echo "bench_gate: gate skipped (BENCH_GATE_SKIP_GATE=1)" >&2
  exit 0
fi
go run ./scripts/benchgate gate -current "$OUT"
