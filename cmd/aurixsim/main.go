// Command aurixsim runs workloads on the simulated AURIX TC27x and prints
// the DSU debug-counter readings the paper's measurement protocol
// collects, plus simulator-only ground truth (per-target access counts and
// arbitration waits).
//
// Usage:
//
//	aurixsim -workload app -scenario 1 -iterations 300
//	aurixsim -workload app -contender hload          # co-scheduled run
//	aurixsim -workload mload -bursts 500
//	aurixsim -emit-readings -accesses 1000           # calibration batch JSON
//
// -emit-readings runs the Table-2 calibration microbenchmarks (every
// access path, prefetch buffers off and on) and prints the raw samples as
// JSON — the exact payload wcetd's POST /v2/calibrate ingests:
//
//	aurixsim -emit-readings | curl -X POST --data-binary @- \
//	    http://127.0.0.1:8080/v2/calibrate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/calib"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
	"repro/internal/workload"
)

func main() {
	var (
		wl         = flag.String("workload", "app", "workload on the analysed core: app, hload, mload, lload")
		scenario   = flag.Int("scenario", 1, "deployment scenario (1 or 2)")
		iterations = flag.Int("iterations", 300, "control-loop iterations for the app workload")
		bursts     = flag.Int("bursts", 1000, "bursts for contender workloads")
		contender  = flag.String("contender", "", "optional co-runner on core 2: hload, mload, lload")
		record     = flag.String("record", "", "write the analysed workload's trace to this file and exit")
		replay     = flag.String("replay", "", "run a previously recorded trace file instead of a generated workload")
		emit       = flag.Bool("emit-readings", false, "run the calibration microbenchmarks and print the sample batch as JSON (wcetd /v2/calibrate input)")
		accesses   = flag.Int("accesses", 1000, "with -emit-readings: back-to-back accesses per microbenchmark run")
	)
	flag.Parse()

	lat := platform.TC27xLatencies()

	if *emit {
		batch, err := calib.MeasureBatch(lat, *accesses, 1)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(batch); err != nil {
			fail(err)
		}
		return
	}

	sc := workload.Scenario(*scenario)
	if err := sc.Validate(); err != nil {
		fail(err)
	}

	var appSrc trace.Source
	var err error
	if *replay != "" {
		f, ferr := os.Open(*replay)
		if ferr != nil {
			fail(ferr)
		}
		appSrc, err = trace.Decode(f)
		f.Close()
	} else {
		appSrc, err = buildWorkload(*wl, sc, *iterations, *bursts, 1)
	}
	if err != nil {
		fail(err)
	}
	if *record != "" {
		f, ferr := os.Create(*record)
		if ferr != nil {
			fail(ferr)
		}
		if err := trace.Encode(f, appSrc); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s\n", *record)
		return
	}
	tasks := map[int]sim.Task{1: {Kind: tricore.TC16P, Src: appSrc}}

	if *contender != "" {
		contSrc, err := buildWorkload(*contender, sc, *iterations, *bursts, 2)
		if err != nil {
			fail(err)
		}
		tasks[2] = sim.Task{Kind: tricore.TC16P, Src: contSrc}
	}

	res, err := sim.Run(lat, tasks, 1, sim.Config{})
	if err != nil {
		fail(err)
	}

	fmt.Printf("analysed core finished at cycle %d\n\n", res.Cycles)
	cores := make([]int, 0, len(res.Readings))
	for idx := range res.Readings {
		cores = append(cores, idx)
	}
	sort.Ints(cores)
	for _, idx := range cores {
		printCore(idx, res)
	}
}

func buildWorkload(name string, sc workload.Scenario, iterations, bursts, core int) (trace.Source, error) {
	switch name {
	case "app":
		return workload.ControlLoop(workload.AppConfig{Scenario: sc, Core: core, Iterations: iterations})
	case "hload":
		return workload.Contender(workload.ContenderConfig{Level: workload.HLoad, Scenario: sc, Core: core, Bursts: bursts})
	case "mload":
		return workload.Contender(workload.ContenderConfig{Level: workload.MLoad, Scenario: sc, Core: core, Bursts: bursts})
	case "lload":
		return workload.Contender(workload.ContenderConfig{Level: workload.LLoad, Scenario: sc, Core: core, Bursts: bursts})
	default:
		return nil, fmt.Errorf("unknown workload %q (want app, hload, mload or lload)", name)
	}
}

func printCore(idx int, res sim.Result) {
	r := res.Readings[idx]
	fmt.Printf("core %d (done=%v)\n", idx, res.Done[idx])
	fmt.Printf("  DSU: %v\n", r)
	printGroundTruth(idx, res)
	fmt.Println()
}

func printGroundTruth(idx int, res sim.Result) {
	ptac := res.PTAC[idx]
	if len(ptac) == 0 {
		fmt.Println("  SRI: no traffic")
		return
	}
	keys := make([]platform.TargetOp, 0, len(ptac))
	for k := range ptac {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Target != keys[j].Target {
			return keys[i].Target < keys[j].Target
		}
		return keys[i].Op < keys[j].Op
	})
	fmt.Printf("  SRI transactions (simulator ground truth):")
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, ptac[k])
	}
	fmt.Println()
	fmt.Printf("  arbitration wait: %d cycles\n", res.TotalWait(idx))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aurixsim:", err)
	os.Exit(1)
}
