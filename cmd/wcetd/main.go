// Command wcetd serves contention-aware WCET analysis over HTTP/JSON —
// the integration workflow at OEM scale: many software providers submit
// DSU readings for their tasks and read back fTC and ILP-PTAC bounds
// (optionally with an RTA schedulability verdict), concurrently.
//
// Endpoints:
//
//	POST /v1/wcet   one request (the cmd/wcet wire format); the response
//	                body is byte-identical to cmd/wcet's stdout for the
//	                same input
//	POST /v1/batch  {"requests": [...]}: fans out across the campaign
//	                worker pool, results in request order
//	GET  /v1/stats  admission-control and cache counters
//	POST /v2/analyze  registry-generic analysis: the caller selects any
//	                subset of registered contention models by name
//	                ({"models": ["ilpPtac", "ftcFsb"], ...}) and gets
//	                exactly those estimates back, in request order
//	GET  /v2/models list of registered models and their aliases
//	GET  /v2/tables list stored latency-table versions, refs and the
//	                serving default; POST registers a new table
//	GET  /v2/tables/{ref}          one table by ref or content address
//	POST /v2/tables/{ref}/promote  atomically hot-swap the serving default
//	POST /v2/calibrate             streaming calibration: DSU readings in,
//	                candidate table + drift report out
//	POST /v2/campaigns             submit an asynchronous grid-sweep
//	                campaign job (validated pre-admission, runs at
//	                background priority on the shared worker pool);
//	                GET lists jobs
//	GET  /v2/campaigns/{id}           job status and progress
//	GET  /v2/campaigns/{id}/artifact  finished, content-verified results
//	GET  /v2/campaigns/{id}/stream    per-cell progress over SSE
//	                (Last-Event-ID resumes after a disconnect or restart)
//	DELETE /v2/campaigns/{id}         cancel
//	GET  /v2/metrics/history?series=&from=&to=&step=  retained metrics
//	                history (checksummed on-disk ring under <data>/obs,
//	                tiered raw → 10s → 1m downsampling, survives kill -9)
//	GET  /v2/alerts active and recently resolved SLO burn-rate alerts
//	GET  /v2/traces?endpoint=&min_ms=&since=  stored trace search
//	                (client-requested traces plus tail-sampled slow and
//	                error requests)
//	GET  /v2/traces/{id}  one stored trace's span tree
//	GET  /healthz   liveness, build identity and uptime
//
// Campaign jobs checkpoint every completed cell under -jobs-dir
// (default: <data>/jobs) and resume from the checkpoint after a crash
// or restart; a resumed job's artifact is byte-identical to an
// uninterrupted run's.
//
// Latency tables are versioned, content-addressed artifacts: -data
// persists them (and their refs) across restarts, and a recalibrated
// table can be registered and promoted on the live daemon — subsequent
// analysis evaluates under it with no restart.
//
// Identical requests are served from a sharded canonical-request result
// cache, so repeat submissions cost zero solver time. Admission control
// bounds concurrent work (-max-inflight), queues a bounded overflow
// (-queue), and times requests out (-timeout). -solver-workers widens
// the ILP branch & bound across cores without changing a single wire
// byte. SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tabstore"
	"repro/wcet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "batch worker-pool width (0 = GOMAXPROCS)")
	solverWorkers := flag.Int("solver-workers", 1, "branch & bound workers per ILP solve (1 = sequential; bounds are identical either way)")
	cacheEntries := flag.Int("cache", 1024, "canonical-request cache capacity (entries)")
	maxInFlight := flag.Int("max-inflight", 64, "admission-control concurrency limit")
	queueDepth := flag.Int("queue", 256, "admission queue depth beyond the concurrency limit")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout (queue wait included)")
	maxBody := flag.Int64("max-body", 8<<20, "request body size limit in bytes")
	maxBatch := flag.Int("max-batch", 4096, "maximum requests per batch")
	dataDir := flag.String("data", "", "latency-table store directory (empty: in-memory, tables are lost on exit)")
	jobsDir := flag.String("jobs-dir", "", "campaign-job persistence directory (empty: <data>/jobs, or in-memory when -data is empty too)")
	maxJobs := flag.Int("max-jobs", 16, "maximum concurrently admitted campaign jobs")
	tableRef := flag.String("table", "tc27x/default", "table ref to serve under at startup")
	slowReq := flag.Duration("slow-request", time.Second, "log requests slower than this with their trace (negative disables)")
	ops := flag.Bool("ops", false, "expose net/http/pprof under /debug/pprof/ and run the continuous profiler")
	obsDir := flag.String("obs-dir", "", "observability persistence directory for metrics history, stored traces and profiles (empty: <data>/obs, or in-memory when -data is empty too)")
	historyInterval := flag.Duration("history-interval", 5*time.Second, "metrics-history sampling cadence")
	sloConfig := flag.String("slo-config", "", "JSON file defining SLO objectives (empty: built-in defaults)")
	traceEntries := flag.Int("trace-store", 512, "stored-trace retention (entries)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "wcetd")
	slog.SetDefault(logger)

	store, err := tabstore.Open(*dataDir)
	if err != nil {
		fail(logger, err)
	}
	// Campaign jobs and observability state persist next to the table
	// store by default, so one -data flag gives the whole daemon durable
	// state.
	if *jobsDir == "" && *dataDir != "" {
		*jobsDir = filepath.Join(*dataDir, "jobs")
	}
	if *obsDir == "" && *dataDir != "" {
		*obsDir = filepath.Join(*dataDir, "obs")
	}
	var objectives []obs.Objective
	if *sloConfig != "" {
		if objectives, err = obs.LoadObjectives(*sloConfig); err != nil {
			fail(logger, fmt.Errorf("-slo-config: %w", err))
		}
	}
	// The service seeds "tc27x/default" itself; any other startup ref
	// must already exist in the store — fail with a usage error rather
	// than the service's construction panic.
	if *tableRef != "tc27x/default" {
		if _, _, err := store.Resolve(*tableRef); err != nil {
			fail(logger, fmt.Errorf("-table: %w", err))
		}
	}

	srv := service.New(service.Config{
		Workers:              *workers,
		SolverWorkers:        *solverWorkers,
		CacheEntries:         *cacheEntries,
		MaxInFlight:          *maxInFlight,
		QueueDepth:           *queueDepth,
		RequestTimeout:       *timeout,
		MaxBodyBytes:         *maxBody,
		MaxBatchItems:        *maxBatch,
		TableStore:           store,
		DefaultTableRef:      *tableRef,
		JobsDir:              *jobsDir,
		MaxJobs:              *maxJobs,
		SlowRequestThreshold: *slowReq,
		Logger:               logger,
		EnableOps:            *ops,
		ObsDir:               *obsDir,
		HistoryInterval:      *historyInterval,
		SLOObjectives:        objectives,
		TraceStoreEntries:    *traceEntries,
	}, nil)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(logger, err)
	}
	logger.Info("listening", "addr", ln.Addr().String())
	logger.Info("serving models", "models", strings.Join(wcet.DefaultRegistry().Names(), ", "))
	logger.Info("serving table", "ref", *tableRef, "id", srv.StatsSnapshot().ServingTable)
	if *jobsDir != "" {
		logger.Info("campaign jobs persisted", "dir", *jobsDir, "maxJobs", *maxJobs)
	} else {
		logger.Info("campaign jobs in-memory (no -data/-jobs-dir)", "maxJobs", *maxJobs)
	}
	if *obsDir != "" {
		logger.Info("observability persisted", "dir", *obsDir, "historyInterval", *historyInterval, "traceStore", *traceEntries)
	} else {
		logger.Info("observability in-memory (no -data/-obs-dir)", "historyInterval", *historyInterval)
	}
	if *sloConfig != "" {
		logger.Info("slo objectives loaded", "path", *sloConfig, "count", len(objectives))
	}
	if *ops {
		logger.Info("pprof enabled", "path", "/debug/pprof/", "profiler", *obsDir != "")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure (Shutdown yields
		// ErrServerClosed, but only after we ask for it below).
		fail(logger, err)
	case <-ctx.Done():
	}

	logger.Info("draining")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fail(logger, fmt.Errorf("shutdown: %w", err))
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		fail(logger, err)
	}
	srv.LogSummary()
	logger.Info("shut down cleanly")
}

func fail(logger *slog.Logger, err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
