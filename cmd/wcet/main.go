// Command wcet computes contention-aware WCET estimates from debug-counter
// readings, exactly as an integrator would at a pre-integration design
// stage: feed it the isolation measurements of the task under analysis and
// of its contenders, get back the fTC and ILP-PTAC bounds.
//
// Input is JSON on stdin (or -in file):
//
//	{
//	  "scenario": 1,
//	  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
//	  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
//	}
//
// Output is JSON on stdout with both estimates. Exit status 1 on invalid
// input. An optional "rta" object adds a schedulability verdict; see
// internal/service for the full request schema.
//
// The request/response types, validation, evaluation and encoding are
// internal/service's — the same code path cmd/wcetd serves over HTTP, so
// for the same input both emit byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/service"
)

func main() {
	inPath := flag.String("in", "", "read the request from this file instead of stdin")
	flag.Parse()

	var rd io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rd = f
	}
	if err := service.RunCLI(rd, os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wcet:", err)
	os.Exit(1)
}
