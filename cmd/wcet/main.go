// Command wcet computes contention-aware WCET estimates from debug-counter
// readings, exactly as an integrator would at a pre-integration design
// stage: feed it the isolation measurements of the task under analysis and
// of its contenders, get back the fTC and ILP-PTAC bounds.
//
// Input is JSON on stdin (or -in file):
//
//	{
//	  "scenario": 1,
//	  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
//	  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
//	}
//
// Output is JSON on stdout with both estimates. Exit status 1 on invalid
// input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
)

type request struct {
	Scenario   int            `json:"scenario"`
	Analysed   dsu.Readings   `json:"analysed"`
	Contenders []dsu.Readings `json:"contenders"`
	// StallMode is "budget" (default) or "exact".
	StallMode string `json:"stallMode,omitempty"`
	// DropContenderInfo computes the fully time-composable ILP variant.
	DropContenderInfo bool `json:"dropContenderInfo,omitempty"`
}

type estimateOut struct {
	Model            string  `json:"model"`
	IsolationCycles  int64   `json:"isolationCycles"`
	ContentionCycles int64   `json:"contentionCycles"`
	WCETCycles       int64   `json:"wcetCycles"`
	Ratio            float64 `json:"ratio"`
}

type response struct {
	FTC estimateOut `json:"ftc"`
	ILP estimateOut `json:"ilpPtac"`
}

func main() {
	inPath := flag.String("in", "", "read the request from this file instead of stdin")
	flag.Parse()

	var rd io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rd = f
	}
	var req request
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(fmt.Errorf("parsing request: %w", err))
	}

	lat := platform.TC27xLatencies()
	var sc core.Scenario
	switch req.Scenario {
	case 1:
		sc = core.Scenario1()
	case 2:
		sc = core.Scenario2()
	default:
		fail(fmt.Errorf("scenario must be 1 or 2, got %d", req.Scenario))
	}
	var mode core.StallMode
	switch req.StallMode {
	case "", "budget":
		mode = core.StallBudget
	case "exact":
		mode = core.StallExact
	default:
		fail(fmt.Errorf("stallMode must be budget or exact, got %q", req.StallMode))
	}

	in := core.Input{A: req.Analysed, B: req.Contenders, Lat: &lat, Scenario: sc}
	ftcE, err := core.FTC(in)
	if err != nil {
		fail(err)
	}
	ilpE, err := core.ILPPTAC(in, core.PTACOptions{
		StallMode:         mode,
		DropContenderInfo: req.DropContenderInfo,
	})
	if err != nil {
		fail(err)
	}

	out := response{FTC: toOut(ftcE), ILP: toOut(ilpE)}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}

func toOut(e core.Estimate) estimateOut {
	return estimateOut{
		Model:            e.Model,
		IsolationCycles:  e.IsolationCycles,
		ContentionCycles: e.ContentionCycles,
		WCETCycles:       e.WCET(),
		Ratio:            e.Ratio(),
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wcet:", err)
	os.Exit(1)
}
