// Command wcet computes contention-aware WCET estimates from debug-counter
// readings, exactly as an integrator would at a pre-integration design
// stage: feed it the isolation measurements of the task under analysis and
// of its contenders, get back contention-aware bounds.
//
// Input is JSON on stdin (or -in file):
//
//	{
//	  "scenario": 1,
//	  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
//	  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
//	}
//
// By default the output is the frozen v1 response with the fTC and
// ILP-PTAC bounds — byte-identical to wcetd's POST /v1/wcet for the same
// input. With -models, the CLI speaks the v2 wire format instead: it
// accepts the richer /v2/analyze request shape (templates, exact PTACs)
// and emits exactly the selected models' estimates, matching POST
// /v2/analyze byte for byte. -list prints the registered models. Exit
// status 1 on invalid input. An optional "rta" object adds a
// schedulability verdict; see internal/service for the full schema.
//
// The request/response types, validation, evaluation and encoding are
// internal/service's over the repro/wcet SDK — the same code path cmd/wcetd
// serves over HTTP, so for the same input both emit byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/service"
	"repro/wcet"
)

func main() {
	inPath := flag.String("in", "", "read the request from this file instead of stdin")
	models := flag.String("models", "", "emit the v2 response for these registered models, comma-separated (e.g. ilpPtac,ftcFsb)")
	list := flag.Bool("list", false, "list the registered contention models and exit")
	flag.Parse()

	if *list {
		reg := wcet.DefaultRegistry()
		for _, name := range reg.Names() {
			if aliases := reg.Aliases(name); len(aliases) > 0 {
				fmt.Printf("%s (aliases: %s)\n", name, strings.Join(aliases, ", "))
			} else {
				fmt.Println(name)
			}
		}
		return
	}

	var rd io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rd = f
	}

	if *models != "" {
		var names []string
		for _, m := range strings.Split(*models, ",") {
			if m = strings.TrimSpace(m); m != "" {
				names = append(names, m)
			}
		}
		if err := service.RunCLIV2(rd, os.Stdout, names); err != nil {
			fail(err)
		}
		return
	}
	if err := service.RunCLI(rd, os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wcet:", err)
	os.Exit(1)
}
