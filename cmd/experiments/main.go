// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated TC27x and prints them side by side
// with the published values. All artefacts run on one shared campaign
// engine, so isolation baselines are measured once per process no matter
// how many artefacts reuse them.
//
// Usage:
//
//	experiments                    # everything
//	experiments -only table2       # one artefact: table2, table3, table5,
//	                               # table6, figure4, sweep
//	experiments -workers 1         # serial campaign (default: all cores)
//	experiments -only sweep -perturb slow10:+10,fast10:-10
//	                               # sweep extra latency-table variants
//	experiments -only sweep -models ftc,ftcFsb,ilpPtac
//	                               # sweep any registered contention models
//	experiments -only sweep -store ./tables -tables tc27x/default,tc27x/respin
//	                               # sweep stored latency-table versions
//	experiments -stats             # campaign engine counters on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/tabstore"
	"repro/internal/workload"
	"repro/wcet"
)

func main() {
	only := flag.String("only", "", "regenerate a single artefact: table2, table3, table5, table6, figure4, sweep")
	workers := flag.Int("workers", 0, "campaign worker-pool width; 0 means all cores")
	solverWorkers := flag.Int("solver-workers", 1, "branch & bound workers per ILP solve (1 = sequential; artefacts are identical either way)")
	perturb := flag.String("perturb", "", "extra sweep latency perturbations, comma-separated name:±pct (e.g. slow10:+10,fast10:-10)")
	models := flag.String("models", "", "sweep these registered contention models, comma-separated (default ilpPtac,ftc)")
	tables := flag.String("tables", "", "sweep these stored latency-table versions (refs or IDs from -store), comma-separated")
	storeDir := flag.String("store", "", "table store directory resolving -tables")
	jsonOut := flag.String("json", "", `write the sweep artefact as deterministic JSON to this file ("-" = stdout) — byte-identical to a wcetd campaign artifact for the same grid`)
	appIters := flag.Int("app-iterations", experiments.AppIterations, "analysed application iterations per sweep cell")
	stats := flag.Bool("stats", false, "print campaign engine counters on exit")
	flag.Parse()

	perts, err := parsePerturbations(*perturb)
	if err != nil {
		fail(err)
	}
	if *perturb != "" && *only != "" && *only != "sweep" {
		fail(fmt.Errorf("-perturb only applies to the sweep artefact, not %q", *only))
	}
	if *models != "" && *only != "" && *only != "sweep" {
		fail(fmt.Errorf("-models only applies to the sweep artefact, not %q", *only))
	}
	if *tables != "" && *only != "" && *only != "sweep" {
		fail(fmt.Errorf("-tables only applies to the sweep artefact, not %q", *only))
	}
	if *jsonOut != "" && *only != "sweep" {
		fail(fmt.Errorf("-json only applies to the sweep artefact; run with -only sweep"))
	}
	var tableList []string
	if *tables != "" {
		if *storeDir == "" {
			fail(fmt.Errorf("-tables requires -store"))
		}
		for _, tb := range strings.Split(*tables, ",") {
			if tb = strings.TrimSpace(tb); tb != "" {
				tableList = append(tableList, tb)
			}
		}
	}
	var store *tabstore.Store
	if *storeDir != "" {
		if store, err = tabstore.Open(*storeDir); err != nil {
			fail(err)
		}
	}
	var modelList []string
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			if m = strings.TrimSpace(m); m != "" {
				modelList = append(modelList, m)
			}
		}
	}

	ctx := context.Background()
	experiments.SetSolverWorkers(*solverWorkers)
	runner := experiments.NewRunner(campaign.New(*workers))
	lat := platform.TC27xLatencies()
	artefacts := map[string]func(context.Context, experiments.Runner, platform.LatencyTable) error{
		"table2":  table2,
		"table3":  table3,
		"table5":  table5,
		"table6":  table6,
		"figure4": figure4,
		"sweep":   sweepArtefact(perts, modelList, tableList, store, *appIters, *jsonOut),
	}
	run := func(name string) {
		if err := artefacts[name](ctx, runner, lat); err != nil {
			fail(err)
		}
	}
	if *only != "" {
		if _, ok := artefacts[*only]; !ok {
			fail(fmt.Errorf("unknown artefact %q", *only))
		}
		run(*only)
	} else {
		for _, name := range []string{"table2", "table3", "table5", "table6", "figure4", "sweep"} {
			run(name)
			fmt.Println()
		}
	}
	if *stats {
		s := runner.Engine().Stats()
		fmt.Printf("campaign: %d workers, %d sim runs, %d isolation memo hits / %d misses\n",
			runner.Engine().Workers(), s.SimRuns, s.IsolationHits, s.IsolationMisses)
	}
}

// parsePerturbations turns "slow10:+10,fast10:-10" into scale
// perturbations; the unperturbed base table is always swept first.
func parsePerturbations(spec string) ([]experiments.Perturbation, error) {
	perts := []experiments.Perturbation{{}}
	if spec == "" {
		return perts, nil
	}
	seen := map[string]bool{"base": true} // "base" labels the unperturbed table in the output
	for _, item := range strings.Split(spec, ",") {
		name, pctStr, ok := strings.Cut(item, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("perturbation %q: want name:±pct", item)
		}
		if seen[name] {
			return nil, fmt.Errorf("perturbation %q: name %q already taken", item, name)
		}
		seen[name] = true
		pct, err := strconv.ParseInt(strings.TrimPrefix(pctStr, "+"), 10, 64)
		if err != nil || pct <= -100 || pct > 1000 {
			return nil, fmt.Errorf("perturbation %q: percentage must be in (-100, 1000], got %q", item, pctStr)
		}
		perts = append(perts, experiments.ScaleLatencies(name, 100+pct, 100))
	}
	return perts, nil
}

func table2(ctx context.Context, r experiments.Runner, lat platform.LatencyTable) error {
	rows, err := r.CalibrateTable2(ctx, lat)
	if err != nil {
		return err
	}
	fmt.Println("== Table 2: per-target latency and minimum stall cycles ==")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "target", "lmax(co)", "lmax(da)", "cs(co)", "cs(da)")
	for _, r := range rows {
		fmt.Printf("%-8s %10s %10s %10s %10s\n", r.Target, dash(r.LCo), dash(r.LDa), dash(r.CsCo), dash(r.CsDa))
	}
	fmt.Println("paper:   lmu 11/11 cs 11/10 | pf 16/16 cs 6/11 | dfl -/43 cs -/42")
	return nil
}

func table3(context.Context, experiments.Runner, platform.LatencyTable) error {
	fmt.Println("== Table 3: architectural constraints on code/data placement ==")
	fmt.Printf("%-10s %-6s %-6s %-6s %-6s\n", "", "pf0", "pf1", "dfl", "lmu")
	for _, row := range []struct {
		name      string
		op        platform.Op
		cacheable bool
	}{
		{"code $", platform.Code, true},
		{"code n$", platform.Code, false},
		{"data $", platform.Data, true},
		{"data n$", platform.Data, false},
	} {
		fmt.Printf("%-10s", row.name)
		for _, t := range platform.Targets {
			mark := "ok"
			if err := platform.ValidatePlacement(row.op, platform.Placement{Target: t, Cacheable: row.cacheable}); err != nil {
				mark = "no"
			}
			fmt.Printf(" %-6s", mark)
		}
		fmt.Println()
	}
	return nil
}

func table5(context.Context, experiments.Runner, platform.LatencyTable) error {
	fmt.Println("== Table 5: ILP-PTAC tailoring per scenario ==")
	for _, sc := range []wcet.Scenario{wcet.Scenario1(), wcet.Scenario2()} {
		fmt.Printf("%s: deploy=%v\n", sc.Name, sc.Deploy)
		fmt.Printf("  pinned to zero:")
		for _, to := range platform.AccessPairs() {
			if !sc.Deploy.MayAccess(to.Target, to.Op) {
				fmt.Printf(" n[%s]=0", to)
			}
		}
		fmt.Println()
		if sc.CodeCountExact {
			fmt.Println("  sum of code PTACs = PCACHE_MISS (exact)")
		}
		if sc.CacheableDataFloor {
			fmt.Println("  sum of data PTACs >= DCACHE_MISS_CLEAN + DCACHE_MISS_DIRTY")
		}
	}
	return nil
}

func table6(ctx context.Context, r experiments.Runner, lat platform.LatencyTable) error {
	fmt.Println("== Table 6: debug-counter readings (app on core 1, H-Load on core 2) ==")
	fmt.Printf("%-4s %-7s %10s %8s %8s %10s %10s\n", "", "", "PM", "DMC", "DMD", "PS", "DS")
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		app, cont, err := r.Table6Readings(ctx, lat, sc)
		if err != nil {
			return err
		}
		fmt.Printf("Sc%-3d %-6s %10d %8d %8d %10d %10d\n", sc, "Core1", app.PM, app.DMC, app.DMD, app.PS, app.DS)
		fmt.Printf("%-4s %-6s %10d %8d %8d %10d %10d\n", "", "Core2", cont.PM, cont.DMC, cont.DMD, cont.PS, cont.DS)
	}
	fmt.Println("paper shape: DMD = 0 everywhere; DMC = 0 in Sc1, > 0 in Sc2")
	return nil
}

func figure4(ctx context.Context, r experiments.Runner, lat platform.LatencyTable) error {
	rows, err := r.Figure4(ctx, lat)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4: model predictions w.r.t. execution in isolation ==")
	fmt.Printf("%-4s %-8s %10s %10s %10s %10s\n", "", "", "observed", "ILP-PTAC", "fTC", "true wait")
	for _, r := range rows {
		fmt.Printf("Sc%-3d %-8s %9.3fx %9.3fx %9.3fx %10d\n",
			r.Scenario, r.Level, r.ObservedRatio(), r.ILP.Ratio(), r.FTC.Ratio(), r.TrueContention)
	}
	fmt.Println()
	for _, ref := range experiments.PaperFigure4Values {
		fmt.Printf("paper Sc%d: ILP %.2f-%.2f (L to H), fTC %.2f\n", ref.Scenario, ref.ILPLow, ref.ILPHigh, ref.FTC)
	}
	return nil
}

func sweepArtefact(perts []experiments.Perturbation, models, tables []string, store *tabstore.Store, appIters int, jsonOut string) func(context.Context, experiments.Runner, platform.LatencyTable) error {
	return func(ctx context.Context, r experiments.Runner, lat platform.LatencyTable) error {
		points, err := r.Sweep(ctx, lat, experiments.Grid{
			AppIterations: appIters,
			Perturbations: perts,
			Models:        models,
			Tables:        tables,
			Store:         store,
		})
		if err != nil {
			return err
		}
		if jsonOut != "" {
			// The artifact encoding is shared with the jobs subsystem, so
			// this file is byte-identical to what wcetd serves for the
			// same grid over the same base table.
			data, err := experiments.EncodeArtifact(experiments.WirePoints(points))
			if err != nil {
				return err
			}
			if jsonOut == "-" {
				_, err = os.Stdout.Write(data)
			} else {
				err = os.WriteFile(jsonOut, data, 0o644)
			}
			if err != nil {
				return err
			}
			if jsonOut != "-" {
				fmt.Printf("sweep artefact written to %s\n", jsonOut)
			}
			return nil
		}
		fmt.Println("== Design-space sweep (pre-integration, isolation measurements only) ==")
		fmt.Printf("%-10s %-10s %-8s %12s", "platform", "deploy", "co-load", "isolation")
		// The sweep is generic over the model registry: one WCET column
		// per model the grid evaluated (the default grid prints the
		// paper's ILP-PTAC and fTC pair).
		if len(points) > 0 {
			for _, e := range points[0].Estimates {
				fmt.Printf(" %12s", e.Name+" WCET")
			}
		}
		fmt.Println()
		for _, p := range points {
			name := p.Perturbation
			if name == "" {
				name = "base"
			}
			// Stored-table cells carry the ref; perturbations stack on top.
			if p.Table != "" {
				if p.Perturbation == "" {
					name = p.Table
				} else {
					name = p.Table + "+" + p.Perturbation
				}
			}
			fmt.Printf("%-10s scenario%-2d %-8s %12d", name, p.Scenario, p.Level, p.IsolationCycles)
			for _, e := range p.Estimates {
				fmt.Printf(" %12d", e.WCET())
			}
			fmt.Println()
		}
		return nil
	}
}

func dash(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
