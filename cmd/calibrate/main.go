// Command calibrate regenerates the paper's Table 2 on the simulated
// TC27x: for every SRI target it measures, with single-access-type
// microbenchmarks run in isolation, the end-to-end transaction latency and
// the minimum pipeline-stall cycles per request, separately for code and
// data operations.
//
// Usage:
//
//	calibrate
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/platform"
)

func main() {
	flag.Parse()
	lat := platform.TC27xLatencies()
	rows, err := experiments.CalibrateTable2(lat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	fmt.Println("Table 2: latency (max/min) and minimum stall cycles per SRI target")
	fmt.Println("(measured on the simulator with calibration microbenchmarks; lmin with")
	fmt.Println("the flash prefetch buffers active on a sequential stream)")
	fmt.Println()
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n",
		"target", "lmax(co)", "lmax(da)", "lmin(co)", "lmin(da)", "cs(co)", "cs(da)")
	for _, r := range rows {
		fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n", r.Target,
			dash(r.LCo), dash(r.LDa), dash(r.LMinCo), dash(r.LMinDa), dash(r.CsCo), dash(r.CsDa))
	}
	fmt.Println()
	fmt.Println("Paper reference (Table 2): lmu lmax 11 lmin 11 cs 11/10;")
	fmt.Println("                           pf  lmax 16 lmin 12 cs 6/11;")
	fmt.Println("                           dfl lmax 43 lmin 43 cs -/42")
	fmt.Printf("Dirty LMU miss latency (bracketed in the paper): %d cycles\n", platform.TC27xLMUDirtyMissLatency)
}

func dash(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}
