// Command calibrate regenerates the paper's Table 2 on the simulated
// TC27x — for every SRI target the end-to-end transaction latency
// (max/min) and the minimum pipeline-stall cycles per request, measured
// with single-access-type microbenchmarks in isolation — and manages the
// result as a lifecycle artifact: it can emit the table in the store's
// machine-readable interchange format, register it in a versioned table
// store, and diff it against a reference characterisation.
//
// Usage:
//
//	calibrate                                   # human-readable Table 2
//	calibrate -json                             # interchange-format JSON on stdout
//	calibrate -out table.json                   # write interchange JSON to a file
//	calibrate -store ./tables -ref tc27x/lab    # register in a store under a ref
//	calibrate -compare tc27x -tolerance 0.05    # drift report vs the shipped table
//	calibrate -store ./tables -compare tc27x/prod
//
// -compare resolves against the store when -store is given, accepts the
// builtin name "tc27x", and otherwise reads an interchange-format file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/calib"
	"repro/internal/platform"
	"repro/internal/tabstore"
)

func main() {
	var (
		accesses  = flag.Int("accesses", 1000, "back-to-back accesses per microbenchmark run")
		jsonOut   = flag.Bool("json", false, "emit the calibrated table as interchange-format JSON on stdout")
		out       = flag.String("out", "", "write the interchange-format JSON to this file")
		storeDir  = flag.String("store", "", "register the calibrated table in the table store at this directory")
		ref       = flag.String("ref", "", "with -store: name (or retarget) this ref at the calibrated table")
		compare   = flag.String("compare", "", "drift report against this reference: a store ref/ID, the builtin \"tc27x\", or an interchange-format file")
		tolerance = flag.Float64("tolerance", 0, fmt.Sprintf("relative drift tolerance for -compare (0 selects %.2f)", calib.DefaultTolerance))
	)
	flag.Parse()

	var store *tabstore.Store
	if *storeDir != "" {
		var err error
		if store, err = tabstore.Open(*storeDir); err != nil {
			fail(err)
		}
	}
	if *ref != "" && store == nil {
		fail(fmt.Errorf("-ref requires -store"))
	}

	// Measure through the streaming estimator — the same ingestion path
	// wcetd's /v2/calibrate runs, so CLI and service cannot drift.
	batch, err := calib.MeasureBatch(platform.TC27xLatencies(), *accesses, 1)
	if err != nil {
		fail(err)
	}
	eng := calib.New(calib.Config{})
	if err := eng.Ingest(batch); err != nil {
		fail(err)
	}
	table, err := eng.Table()
	if err != nil {
		fail(err)
	}
	id := tabstore.TableID(table)

	encoded, err := json.MarshalIndent(tabstore.Encode(table), "", "  ")
	if err != nil {
		fail(err)
	}
	encoded = append(encoded, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, encoded, 0o644); err != nil {
			fail(err)
		}
	}
	if *jsonOut {
		os.Stdout.Write(encoded)
	} else {
		printHuman(eng.Report())
		fmt.Printf("\ntable id: %s\n", id)
	}

	if store != nil {
		storedID, err := store.Put(table)
		if err != nil {
			fail(err)
		}
		if *ref != "" {
			if err := store.SetRef(*ref, storedID); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "calibrate: registered %s as %s in %s\n", storedID, *ref, *storeDir)
		} else {
			fmt.Fprintf(os.Stderr, "calibrate: registered %s in %s\n", storedID, *storeDir)
		}
	}

	if *compare != "" {
		reference, label, err := resolveReference(store, *compare)
		if err != nil {
			fail(err)
		}
		printDrift(calib.Drift(table, reference, *tolerance), label)
	}
}

// resolveReference loads the -compare target: store ref/ID first (when a
// store is open), then the builtin table, then an interchange file.
func resolveReference(store *tabstore.Store, spec string) (platform.LatencyTable, string, error) {
	if store != nil {
		if lt, id, err := store.Resolve(spec); err == nil {
			return lt, fmt.Sprintf("%s (%s)", spec, id), nil
		}
	}
	if spec == "tc27x" {
		return platform.TC27xLatencies(), "builtin tc27x", nil
	}
	raw, err := os.ReadFile(spec)
	if err != nil {
		return platform.LatencyTable{}, "", fmt.Errorf("compare target %q is neither a store ref, the builtin \"tc27x\", nor a readable file: %w", spec, err)
	}
	var tj tabstore.TableJSON
	if err := json.Unmarshal(raw, &tj); err != nil {
		return platform.LatencyTable{}, "", fmt.Errorf("parsing %s: %w", spec, err)
	}
	lt, err := tabstore.Decode(tj)
	if err != nil {
		return platform.LatencyTable{}, "", fmt.Errorf("%s: %w", spec, err)
	}
	return lt, spec, nil
}

// printHuman renders the classic Table 2 view from the engine's report.
func printHuman(rep calib.Report) {
	byPath := make(map[string]calib.PathReport, len(rep.Paths))
	for _, p := range rep.Paths {
		byPath[p.Path] = p
	}
	fmt.Println("Table 2: latency (max/min) and minimum stall cycles per SRI target")
	fmt.Println("(measured on the simulator with calibration microbenchmarks; lmin with")
	fmt.Println("the flash prefetch buffers active on a sequential stream)")
	fmt.Println()
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n",
		"target", "lmax(co)", "lmax(da)", "lmin(co)", "lmin(da)", "cs(co)", "cs(da)")
	for _, tgt := range platform.Targets {
		co, okCo := byPath[platform.TargetOp{Target: tgt, Op: platform.Code}.String()]
		da, okDa := byPath[platform.TargetOp{Target: tgt, Op: platform.Data}.String()]
		col := func(ok bool, v int64) string {
			if !ok || v < 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n", tgt,
			col(okCo, co.LMax), col(okDa, da.LMax),
			col(okCo, co.LMin), col(okDa, da.LMin),
			col(okCo, co.Stall), col(okDa, da.Stall))
	}
	fmt.Println()
	fmt.Println("Paper reference (Table 2): lmu lmax 11 lmin 11 cs 11/10;")
	fmt.Println("                           pf  lmax 16 lmin 12 cs 6/11;")
	fmt.Println("                           dfl lmax 43 lmin 43 cs -/42")
	fmt.Printf("Dirty LMU miss latency (bracketed in the paper): %d cycles\n", platform.TC27xLMUDirtyMissLatency)
}

// printDrift writes to stderr so -json -compare keeps stdout parseable
// (stdout carries only the interchange-format table).
func printDrift(rep calib.DriftReport, label string) {
	verdict := "within tolerance"
	if rep.Drifted {
		verdict = "DRIFTED"
	}
	fmt.Fprintf(os.Stderr, "\ndrift vs %s (tolerance %.2f): %s\n", label, rep.Tolerance, verdict)
	for _, f := range rep.Fields {
		mark := " "
		if f.Exceeds {
			mark = "!"
		}
		pct := 100 * f.RelDelta
		if f.Candidate < f.Reference {
			pct = -pct
		}
		fmt.Fprintf(os.Stderr, "  %s %-8s %-6s %d -> %d (%+.1f%%)\n", mark, f.Path, f.Field, f.Reference, f.Candidate, pct)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
