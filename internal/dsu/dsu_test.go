package dsu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterNames(t *testing.T) {
	want := map[Counter]string{
		CCNT:            "CCNT",
		PMemStall:       "PMEM_STALL",
		DMemStall:       "DMEM_STALL",
		PCacheMiss:      "PCACHE_MISS",
		DCacheMissClean: "DCACHE_MISS_CLEAN",
		DCacheMissDirty: "DCACHE_MISS_DIRTY",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Counter(42).String() != "Counter(42)" {
		t.Error("invalid counter name")
	}
}

func TestBankAddReadReset(t *testing.T) {
	var b Bank
	b.Add(CCNT, 100)
	b.Add(CCNT, 50)
	b.Add(PMemStall, 7)
	if got := b.Read(CCNT); got != 150 {
		t.Errorf("CCNT = %d, want 150", got)
	}
	if got := b.Read(PMemStall); got != 7 {
		t.Errorf("PMEM_STALL = %d, want 7", got)
	}
	if got := b.Read(DMemStall); got != 0 {
		t.Errorf("untouched counter = %d", got)
	}
	b.Reset()
	if b.Read(CCNT) != 0 || b.Read(PMemStall) != 0 {
		t.Error("Reset left residue")
	}
}

func TestBankPanics(t *testing.T) {
	var b Bank
	for name, f := range map[string]func(){
		"bad counter add":  func() { b.Add(Counter(99), 1) },
		"bad counter read": func() { b.Read(Counter(-1)) },
		"negative add":     func() { b.Add(CCNT, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSnapshot(t *testing.T) {
	var b Bank
	b.Add(CCNT, 1000)
	b.Add(PMemStall, 10)
	b.Add(DMemStall, 20)
	b.Add(PCacheMiss, 3)
	b.Add(DCacheMissClean, 4)
	b.Add(DCacheMissDirty, 5)
	r := b.Snapshot()
	want := Readings{CCNT: 1000, PS: 10, DS: 20, PM: 3, DMC: 4, DMD: 5}
	if r != want {
		t.Errorf("Snapshot = %+v, want %+v", r, want)
	}
}

func TestReadingsValidate(t *testing.T) {
	good := Readings{CCNT: 100, PS: 40, DS: 50}
	if err := good.Validate(); err != nil {
		t.Errorf("valid readings rejected: %v", err)
	}
	// Table 6 rows must validate.
	sc1core1 := Readings{PM: 236544, DMC: 0, DMD: 0, PS: 3421242, DS: 8345056, CCNT: 20000000}
	if err := sc1core1.Validate(); err != nil {
		t.Errorf("Table 6 style readings rejected: %v", err)
	}
	// A zero CCNT disables the cross-counter plausibility checks (deltas
	// of a free-running bank may legitimately have CCNT = 0 only when
	// everything else is zero too, but calibration code snapshots partial
	// banks).
	if err := (Readings{PM: 3}).Validate(); err != nil {
		t.Errorf("partial readings with CCNT=0 rejected: %v", err)
	}
	bad := []Readings{
		{CCNT: -1},
		{PS: -5},
		{DS: -1},
		{PM: -2},
		{DMC: -3},
		{DMD: -4},
		{CCNT: 10, PS: 8, DS: 5},   // combined stalls exceed cycles
		{CCNT: 10, PS: 11},         // PMEM_STALL alone exceeds cycles
		{CCNT: 10, DS: 12},         // DMEM_STALL alone exceeds cycles
		{CCNT: 10, PM: 11},         // more I-cache misses than cycles
		{CCNT: 10, DMC: 6, DMD: 5}, // more D-cache misses than cycles
		{CCNT: 10, DMC: 11},        // clean misses alone exceed cycles
		{CCNT: 10, DMD: 12},        // dirty misses alone exceed cycles
		// Each addend short of overflowing alone; the sum would wrap
		// negative if summed unchecked.
		{CCNT: 10, DMC: 1 << 62, DMD: 1 << 62},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid readings %+v accepted", r)
		}
	}
}

func TestReadingsSub(t *testing.T) {
	end := Readings{CCNT: 100, PS: 10, DS: 20, PM: 3, DMC: 2, DMD: 1}
	start := Readings{CCNT: 40, PS: 4, DS: 8, PM: 1, DMC: 1, DMD: 0}
	got := end.Sub(start)
	want := Readings{CCNT: 60, PS: 6, DS: 12, PM: 2, DMC: 1, DMD: 1}
	if got != want {
		t.Errorf("Sub = %+v, want %+v", got, want)
	}
}

// TestReadingsSubUnderflow pins the contract calibration relies on when
// diffing snapshots from untrusted input: Sub does not mask underflow —
// a start snapshot ahead of the end snapshot (swapped arguments, or a
// wrapped hardware counter) yields a negative delta, and Validate on the
// delta flags it even when both raw snapshots validate individually.
func TestReadingsSubUnderflow(t *testing.T) {
	end := Readings{CCNT: 100, PS: 10, DS: 20, PM: 3, DMC: 2, DMD: 1}
	start := Readings{CCNT: 400, PS: 40, DS: 80, PM: 10, DMC: 4, DMD: 2}
	if err := end.Validate(); err != nil {
		t.Fatalf("end snapshot: %v", err)
	}
	if err := start.Validate(); err != nil {
		t.Fatalf("start snapshot: %v", err)
	}

	got := end.Sub(start)
	want := Readings{CCNT: -300, PS: -30, DS: -60, PM: -7, DMC: -2, DMD: -1}
	if got != want {
		t.Errorf("underflowed Sub = %+v, want %+v", got, want)
	}
	if err := got.Validate(); err == nil {
		t.Error("Validate accepted a fully negative delta")
	}

	// A single wrapped counter: CCNT moved forward but PS went backwards
	// (e.g. the PS counter was reprogrammed mid-window). The delta must
	// fail validation even though every other field is plausible.
	end = Readings{CCNT: 500, PS: 5, DS: 80, PM: 10, DMC: 4, DMD: 2}
	partial := end.Sub(start)
	if partial.CCNT != 100 || partial.PS != -35 {
		t.Fatalf("partial delta = %+v", partial)
	}
	if err := partial.Validate(); err == nil || !strings.Contains(err.Error(), "PS") {
		t.Errorf("Validate on a single wrapped counter: %v", err)
	}
}

// TestReadingsSubWraparound documents the int64 edge: deltas of a counter
// that wrapped the full int64 range overflow Go's subtraction in the same
// direction the hardware wrapped, so the result is negative and
// detectable — Sub never silently normalises.
func TestReadingsSubWraparound(t *testing.T) {
	end := Readings{CCNT: math.MinInt64 + 5}
	start := Readings{CCNT: math.MaxInt64 - 4}
	got := end.Sub(start)
	// Two's-complement wrap: the "true" 10-cycle advance reappears.
	if got.CCNT != 10 {
		t.Fatalf("wrapped CCNT delta = %d, want 10 (two's-complement)", got.CCNT)
	}
	// But a wrapped *end* snapshot is itself invalid input — negative
	// CCNT — so the untrusted-input path rejects it before Sub matters.
	if err := end.Validate(); err == nil {
		t.Error("Validate accepted a negative (wrapped) CCNT snapshot")
	}

	// Near-max values that have not wrapped subtract exactly.
	end = Readings{CCNT: math.MaxInt64}
	start = Readings{CCNT: math.MaxInt64 - 7}
	if got := end.Sub(start); got.CCNT != 7 {
		t.Fatalf("near-max delta = %d, want 7", got.CCNT)
	}
}

func TestReadingsString(t *testing.T) {
	r := Readings{CCNT: 9, PS: 1, DS: 2, PM: 3, DMC: 4, DMD: 5}
	want := "PM=3 DMC=4 DMD=5 PS=1 DS=2 CCNT=9"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: Snapshot after a series of Adds equals the sum per counter, and
// Sub(Snapshot, earlier) is consistent with the increments in between.
func TestSnapshotDeltaProperty(t *testing.T) {
	f := func(incs []uint16) bool {
		var b Bank
		var mid Readings
		half := len(incs) / 2
		for i, v := range incs {
			if i == half {
				mid = b.Snapshot()
			}
			b.Add(Counter(int(v)%int(NumCounters)), int64(v%97))
		}
		if half == 0 {
			mid = Readings{}
		}
		delta := b.Snapshot().Sub(mid)
		var wantCCNT int64
		for i, v := range incs {
			if i >= half && Counter(int(v)%int(NumCounters)) == CCNT {
				wantCCNT += int64(v % 97)
			}
		}
		return delta.CCNT == wantCCNT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
