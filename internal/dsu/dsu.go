// Package dsu models the Debug Support Unit counters of the TC27x that the
// paper's contention models consume: the cycle counter CCNT, the pipeline
// stall counters PMEM_STALL and DMEM_STALL (cycles stalled on the program
// and data memory interfaces), and the cache-miss counters PCACHE_MISS,
// DCACHE_MISS_CLEAN and DCACHE_MISS_DIRTY.
//
// These six counters are the *only* channel through which the analytical
// models may observe a task — exactly the industrial constraint the paper
// works under (information available via standard DSU, not simulator-only
// metrics). The simulator drives them from core events; tests may also
// construct Readings literals directly from the paper's Table 6.
package dsu

import "fmt"

// Counter identifies one DSU debug counter.
type Counter int

const (
	// CCNT is the on-chip cycle counter.
	CCNT Counter = iota
	// PMemStall counts cycles the pipeline stalled on the program memory
	// interface (PMEM_STALL).
	PMemStall
	// DMemStall counts cycles the pipeline stalled on the data memory
	// interface (DMEM_STALL).
	DMemStall
	// PCacheMiss counts instruction-cache misses (PCACHE_MISS).
	PCacheMiss
	// DCacheMissClean counts data-cache misses with a clean victim
	// (DCACHE_MISS_CLEAN).
	DCacheMissClean
	// DCacheMissDirty counts data-cache misses that evicted a dirty line
	// (DCACHE_MISS_DIRTY).
	DCacheMissDirty
	// NumCounters is the number of modelled counters.
	NumCounters
)

// String returns the TC27x manual's name for the counter.
func (c Counter) String() string {
	switch c {
	case CCNT:
		return "CCNT"
	case PMemStall:
		return "PMEM_STALL"
	case DMemStall:
		return "DMEM_STALL"
	case PCacheMiss:
		return "PCACHE_MISS"
	case DCacheMissClean:
		return "DCACHE_MISS_CLEAN"
	case DCacheMissDirty:
		return "DCACHE_MISS_DIRTY"
	default:
		return fmt.Sprintf("Counter(%d)", int(c))
	}
}

// Bank is one core's set of debug counters.
type Bank struct {
	vals [NumCounters]int64
}

// Add increments counter c by n; n may be any non-negative amount.
func (b *Bank) Add(c Counter, n int64) {
	if c < 0 || c >= NumCounters {
		panic(fmt.Sprintf("dsu: bad counter %d", int(c)))
	}
	if n < 0 {
		panic(fmt.Sprintf("dsu: negative increment %d for %s", n, c))
	}
	b.vals[c] += n
}

// Read returns the current value of counter c.
func (b *Bank) Read(c Counter) int64 {
	if c < 0 || c >= NumCounters {
		panic(fmt.Sprintf("dsu: bad counter %d", int(c)))
	}
	return b.vals[c]
}

// Reset zeroes every counter, as reprogramming the DSU between measurement
// runs would.
func (b *Bank) Reset() { b.vals = [NumCounters]int64{} }

// Snapshot captures the full counter state as Readings.
func (b *Bank) Snapshot() Readings {
	return Readings{
		CCNT: b.vals[CCNT],
		PS:   b.vals[PMemStall],
		DS:   b.vals[DMemStall],
		PM:   b.vals[PCacheMiss],
		DMC:  b.vals[DCacheMissClean],
		DMD:  b.vals[DCacheMissDirty],
	}
}

// Readings is one end-to-end measurement of a task in isolation: the
// counter values the paper tabulates (Table 4 naming: PS, DS, PM, DMC,
// DMD) plus the cycle count.
type Readings struct {
	// CCNT is the observed execution time in cycles.
	CCNT int64
	// PS is PMEM_STALL: cycles stalled on the program memory interface.
	PS int64
	// DS is DMEM_STALL: cycles stalled on the data memory interface.
	DS int64
	// PM is PCACHE_MISS: instruction cache misses.
	PM int64
	// DMC is DCACHE_MISS_CLEAN: clean data-cache misses.
	DMC int64
	// DMD is DCACHE_MISS_DIRTY: dirty data-cache misses.
	DMD int64
}

// Validate rejects obviously impossible readings: negative counts, stall
// cycles exceeding total cycles, and event counts that cannot fit in the
// observed execution time (every cache miss costs at least one cycle, so
// no miss counter can exceed CCNT).
func (r Readings) Validate() error {
	for _, c := range [...]struct {
		name string
		v    int64
	}{
		{"CCNT", r.CCNT}, {"PS", r.PS}, {"DS", r.DS},
		{"PM", r.PM}, {"DMC", r.DMC}, {"DMD", r.DMD},
	} {
		if c.v < 0 {
			return fmt.Errorf("dsu: negative %s counter %d in %v", c.name, c.v, r)
		}
	}
	if r.CCNT == 0 {
		return nil
	}
	if r.PS > r.CCNT {
		return fmt.Errorf("dsu: PMEM_STALL %d exceeds CCNT %d", r.PS, r.CCNT)
	}
	if r.DS > r.CCNT {
		return fmt.Errorf("dsu: DMEM_STALL %d exceeds CCNT %d", r.DS, r.CCNT)
	}
	if r.PS+r.DS > r.CCNT {
		return fmt.Errorf("dsu: stall cycles %d+%d exceed CCNT %d", r.PS, r.DS, r.CCNT)
	}
	if r.PM > r.CCNT {
		return fmt.Errorf("dsu: PCACHE_MISS %d exceeds CCNT %d", r.PM, r.CCNT)
	}
	// Individual bounds before the sum: with both addends <= CCNT the sum
	// cannot overflow int64.
	if r.DMC > r.CCNT {
		return fmt.Errorf("dsu: DCACHE_MISS_CLEAN %d exceeds CCNT %d", r.DMC, r.CCNT)
	}
	if r.DMD > r.CCNT {
		return fmt.Errorf("dsu: DCACHE_MISS_DIRTY %d exceeds CCNT %d", r.DMD, r.CCNT)
	}
	if r.DMC+r.DMD > r.CCNT {
		return fmt.Errorf("dsu: data-cache misses %d+%d exceed CCNT %d", r.DMC, r.DMD, r.CCNT)
	}
	return nil
}

// Sub returns the counter deltas r - start, for deriving per-phase
// measurements from two snapshots of a free-running bank.
//
// Sub does not mask underflow: if any counter of start exceeds r's — the
// snapshots were swapped, or a hardware counter wrapped between them —
// the delta goes negative, and Validate on the result reports it. Callers
// diffing snapshots from untrusted input (the calibration wire path) must
// validate the delta, not the raw snapshots: two individually-plausible
// snapshots can still produce an impossible phase measurement.
func (r Readings) Sub(start Readings) Readings {
	return Readings{
		CCNT: r.CCNT - start.CCNT,
		PS:   r.PS - start.PS,
		DS:   r.DS - start.DS,
		PM:   r.PM - start.PM,
		DMC:  r.DMC - start.DMC,
		DMD:  r.DMD - start.DMD,
	}
}

// String renders the readings in Table 6 column order.
func (r Readings) String() string {
	return fmt.Sprintf("PM=%d DMC=%d DMD=%d PS=%d DS=%d CCNT=%d", r.PM, r.DMC, r.DMD, r.PS, r.DS, r.CCNT)
}
