package workload

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
)

// This file adds two further automotive workload archetypes beyond the
// paper's control loop, so the models can be exercised on access-pattern
// shapes the evaluation section does not cover — in particular the data
// flash path (dfl), whose 43-cycle transactions dominate the fTC data
// term but never appear in the paper's two scenarios.

// EngineControlConfig sizes an engine-management archetype: a crank-
// synchronous interrupt burst (tight scratchpad code, a few shared-state
// updates) followed by a background segment that walks calibration maps
// stored in the data flash.
type EngineControlConfig struct {
	// Core is the core the task runs on.
	Core int
	// Revolutions is the number of crank periods to generate.
	Revolutions int
	// MapLookups is the number of data-flash calibration lookups per
	// revolution.
	MapLookups int
}

// EngineControl generates the archetype. Its defining property for the
// models: a significant dfl/da PTAC component, making l^{dfl,da} = 43 the
// binding latency rather than an fTC artefact.
func EngineControl(cfg EngineControlConfig) (trace.Source, error) {
	if cfg.Core < 0 || cfg.Core > 2 {
		return nil, fmt.Errorf("workload: core %d out of range", cfg.Core)
	}
	if cfg.Revolutions <= 0 {
		return nil, fmt.Errorf("workload: revolutions must be positive, got %d", cfg.Revolutions)
	}
	if cfg.MapLookups < 0 {
		return nil, fmt.Errorf("workload: negative map lookups %d", cfg.MapLookups)
	}

	var accs []trace.Access
	var lookup uint32
	for rev := 0; rev < cfg.Revolutions; rev++ {
		// Crank interrupt: scratchpad-resident handler, a sensor read and
		// an actuator write through the shared LMU buffer.
		for i := 0; i < 8; i++ {
			accs = append(accs, trace.Access{Gap: 2, Kind: trace.Fetch,
				Addr: platform.PSPRAddr(cfg.Core, uint32(i)*lineSize)})
		}
		accs = append(accs, trace.Access{Gap: 1, Kind: trace.Load, Addr: lmuShared(uint32(rev))})
		accs = append(accs, trace.Access{Gap: 1, Kind: trace.Store, Addr: lmuShared(uint32(rev) + 1024)})

		// Background segment: calibration-map lookups in the data flash
		// (non-cacheable by architecture, Table 3) interleaved with
		// PFlash-resident interpolation code.
		for i := 0; i < cfg.MapLookups; i++ {
			accs = append(accs, trace.Access{Gap: 6, Kind: trace.Load,
				Addr: platform.DFlashBase + (lookup*4)%platform.DFlashSize})
			lookup++
			accs = append(accs, trace.Access{Gap: 3, Kind: trace.Fetch, Addr: pf0Code(cfg.Core, lookup)})
		}
	}
	return trace.NewSlice(accs), nil
}

// EngineControlDeployment is the deployment the archetype implies: code in
// pf0 (cacheable), working data in the lmu (non-cacheable), calibration
// maps in the data flash.
func EngineControlDeployment() platform.Deployment {
	return platform.Deployment{
		Code: []platform.Placement{{Target: platform.PF0, Cacheable: true}},
		Data: []platform.Placement{{Target: platform.LMU, Cacheable: false}, {Target: platform.DFL, Cacheable: false}},
	}
}

// ADASStreamConfig sizes a driver-assistance streaming archetype: frames
// of sensor samples are pulled from the shared LMU, filtered with
// coefficient tables in cacheable PFlash, and written back.
type ADASStreamConfig struct {
	// Core is the core the task runs on.
	Core int
	// Frames is the number of frames to process.
	Frames int
	// SamplesPerFrame is the size of each frame.
	SamplesPerFrame int
}

// ADASStream generates the archetype. Its defining property: data traffic
// dominated by the lmu with a cacheable pf coefficient stream — a
// Scenario-2-like mix at much higher data rate than the control loop.
func ADASStream(cfg ADASStreamConfig) (trace.Source, error) {
	if cfg.Core < 0 || cfg.Core > 2 {
		return nil, fmt.Errorf("workload: core %d out of range", cfg.Core)
	}
	if cfg.Frames <= 0 || cfg.SamplesPerFrame <= 0 {
		return nil, fmt.Errorf("workload: frames (%d) and samples (%d) must be positive", cfg.Frames, cfg.SamplesPerFrame)
	}

	var accs []trace.Access
	var coeff uint32
	for f := 0; f < cfg.Frames; f++ {
		for s := 0; s < cfg.SamplesPerFrame; s++ {
			idx := uint32(f*cfg.SamplesPerFrame + s)
			accs = append(accs, trace.Access{Gap: 1, Kind: trace.Load, Addr: lmuShared(idx)})
			if s%4 == 0 {
				// Fresh coefficient line from the cacheable pf pool.
				accs = append(accs, trace.Access{Gap: 1, Kind: trace.Load,
					Addr: pfConst(cfg.Core, f%2, coeff)})
				coeff++
			}
			// Filter kernel: scratchpad code with compute gaps.
			accs = append(accs, trace.Access{Gap: 4, Kind: trace.Fetch,
				Addr: platform.PSPRAddr(cfg.Core, (idx%64)*lineSize)})
			accs = append(accs, trace.Access{Gap: 1, Kind: trace.Store, Addr: lmuShared(idx + 4096)})
		}
	}
	return trace.NewSlice(accs), nil
}

// ADASStreamDeployment is the deployment the archetype implies.
func ADASStreamDeployment() platform.Deployment {
	return platform.Deployment{
		Code: []platform.Placement{{Target: platform.PF0, Cacheable: true}, {Target: platform.PF1, Cacheable: true}},
		Data: []platform.Placement{{Target: platform.LMU, Cacheable: false}, {Target: platform.PF0, Cacheable: true}, {Target: platform.PF1, Cacheable: true}},
	}
}
