package workload

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
)

// Level is a contender intensity: the paper's H-Load, M-Load and L-Load
// benchmarks generate a decreasing number of accesses to the SRI.
type Level int

const (
	// HLoad hammers the SRI back to back.
	HLoad Level = iota
	// MLoad interleaves SRI accesses with moderate local computation.
	MLoad
	// LLoad touches the SRI sparsely.
	LLoad
)

// String names the level as the paper does.
func (l Level) String() string {
	switch l {
	case HLoad:
		return "H-Load"
	case MLoad:
		return "M-Load"
	case LLoad:
		return "L-Load"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels lists all contender intensities in decreasing order of load.
var Levels = []Level{HLoad, MLoad, LLoad}

// AccessesPerBurst returns how many SRI accesses one burst of this level
// performs, so callers can size a contender to a target SRI request count.
func (l Level) AccessesPerBurst() int {
	_, sriN, _, err := l.params()
	if err != nil {
		panic(err)
	}
	return sriN
}

// LoadFraction is the contender's total SRI request count as a fraction of
// the analysed application's: the knob that makes H-, M- and L-Load put "an
// increasing number of accesses to the SRI" (§4.2). H-Load saturates the
// analysed task's window; M and L stay below its own demand.
func (l Level) LoadFraction() float64 {
	switch l {
	case HLoad:
		return 2.0
	case MLoad:
		return 0.75
	case LLoad:
		return 0.45
	default:
		panic(fmt.Sprintf("workload: unknown level %d", int(l)))
	}
}

// params returns (gap, sriPerBurst, localPerBurst): the compute gap between
// accesses, how many SRI accesses each burst performs, and how much local
// scratchpad work separates bursts.
func (l Level) params() (gap int64, sriPerBurst, localPerBurst int, err error) {
	switch l {
	case HLoad:
		return 0, 8, 1, nil
	case MLoad:
		return 4, 4, 6, nil
	case LLoad:
		return 12, 2, 16, nil
	default:
		return 0, 0, 0, fmt.Errorf("workload: unknown level %d", int(l))
	}
}

// ContenderConfig sizes a contender benchmark.
type ContenderConfig struct {
	// Level is the load intensity.
	Level Level
	// Scenario picks the deployment variant (contenders deploy like the
	// analysed application, §4.1).
	Scenario Scenario
	// Core is the core the contender runs on.
	Core int
	// Bursts is the number of access bursts; size it so the contender's
	// isolation run outlasts the analysed task's contended run, keeping
	// its isolation readings a valid bound on the load it generates
	// inside the analysis window.
	Bursts int
}

// Contender generates an H/M/L-Load benchmark: bursts of SRI traffic
// (code fetches streaming through PFlash plus data accesses to the shared
// LMU buffer, and for Scenario 2 also constant reads from PFlash)
// interleaved with local scratchpad work.
func Contender(cfg ContenderConfig) (trace.Source, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	if cfg.Bursts <= 0 {
		return nil, fmt.Errorf("workload: bursts must be positive, got %d", cfg.Bursts)
	}
	if cfg.Core < 0 || cfg.Core > 2 {
		return nil, fmt.Errorf("workload: core %d out of range", cfg.Core)
	}
	gap, sriN, localN, err := cfg.Level.params()
	if err != nil {
		return nil, err
	}

	var accs []trace.Access
	var codeCursor, constCursor uint32
	for b := 0; b < cfg.Bursts; b++ {
		for i := 0; i < sriN; i++ {
			// Rotate the access pattern across bursts so that levels with
			// short bursts still mix code and data traffic.
			switch (b*sriN + i) % 4 {
			case 0, 1: // code fetch streaming through PFlash
				addr := pf0Code(cfg.Core, codeCursor)
				if codeCursor%2 == 1 {
					addr = pf1Code(cfg.Core, codeCursor)
				}
				codeCursor++
				accs = append(accs, trace.Access{Gap: gap, Kind: trace.Fetch, Addr: addr})
			case 2: // shared-buffer read
				accs = append(accs, trace.Access{Gap: gap, Kind: trace.Load, Addr: lmuShared(uint32(b*sriN + i))})
			case 3: // shared-buffer write, or a constant read in Scenario 2
				if cfg.Scenario == Scenario2 && b%2 == 1 {
					accs = append(accs, trace.Access{Gap: gap, Kind: trace.Load, Addr: pfConst(cfg.Core, b%2, constCursor)})
					constCursor++
				} else {
					accs = append(accs, trace.Access{Gap: gap, Kind: trace.Store, Addr: lmuShared(uint32(b*sriN + i))})
				}
			}
		}
		for i := 0; i < localN; i++ {
			accs = append(accs, trace.Access{Gap: 2, Kind: trace.Load,
				Addr: platform.DSPRAddr(cfg.Core, (uint32(b*localN+i)*4)%8192)})
		}
	}
	return trace.NewSlice(accs), nil
}
