package workload

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
)

// MicrobenchConfig describes one calibration microbenchmark in the style
// of [10]: a known number of accesses of a single (target, operation) kind,
// so that dividing the observed counter deltas by the access count yields
// the per-request latency and minimum stall of that path (Table 2).
type MicrobenchConfig struct {
	Target platform.Target
	Op     platform.Op
	// Write makes the data accesses stores rather than loads; ignored for
	// code.
	Write bool
	// N is the number of accesses.
	N int
	// Gap inserts compute cycles between accesses; calibration uses 0 to
	// measure back-to-back requests, contention studies may space them.
	Gap int64
	// Core selects the issuing core's address carving.
	Core int
}

// Microbench builds the calibration trace. Accesses use non-cacheable
// addressing (or line-striding where only cacheable segments exist) so that
// every access becomes an SRI transaction — the microbenchmark's defining
// property is that its SRI request count is known by construction.
func Microbench(cfg MicrobenchConfig) (trace.Source, error) {
	if !platform.CanAccess(cfg.Target, cfg.Op) {
		return nil, fmt.Errorf("workload: no %s path to %s", cfg.Op, cfg.Target)
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: access count must be positive, got %d", cfg.N)
	}
	if cfg.Core < 0 || cfg.Core > 2 {
		return nil, fmt.Errorf("workload: core %d out of range", cfg.Core)
	}

	kind := trace.Fetch
	if cfg.Op == platform.Data {
		kind = trace.Load
		if cfg.Write {
			kind = trace.Store
		}
	}

	addr := func(i uint32) uint32 {
		switch cfg.Target {
		case platform.PF0:
			return platform.Uncached(platform.PFlash0Base + uint32(cfg.Core)*pfCodeRegion + (i*lineSize)%pfCodeRegion)
		case platform.PF1:
			return platform.Uncached(platform.PFlash1Base + uint32(cfg.Core)*pfCodeRegion + (i*lineSize)%pfCodeRegion)
		case platform.DFL:
			return platform.DFlashBase + (i*4)%platform.DFlashSize
		case platform.LMU:
			return platform.Uncached(platform.LMUBase) + (i*4)%lmuUncachedSize
		default:
			panic(fmt.Sprintf("workload: bad target %v", cfg.Target))
		}
	}

	accs := make([]trace.Access, cfg.N)
	for i := range accs {
		accs[i] = trace.Access{Gap: cfg.Gap, Kind: kind, Addr: addr(uint32(i))}
	}
	return trace.NewSlice(accs), nil
}
