package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
)

func TestEngineControlValidation(t *testing.T) {
	if _, err := EngineControl(EngineControlConfig{Core: 7, Revolutions: 1}); err == nil {
		t.Error("core 7 accepted")
	}
	if _, err := EngineControl(EngineControlConfig{Core: 1, Revolutions: 0}); err == nil {
		t.Error("zero revolutions accepted")
	}
	if _, err := EngineControl(EngineControlConfig{Core: 1, Revolutions: 1, MapLookups: -1}); err == nil {
		t.Error("negative lookups accepted")
	}
}

func TestEngineControlHitsDataFlash(t *testing.T) {
	src, err := EngineControl(EngineControlConfig{Core: 1, Revolutions: 20, MapLookups: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(src)
	dfl := st.SRI[platform.TargetOp{Target: platform.DFL, Op: platform.Data}]
	if dfl != 100 {
		t.Errorf("dfl data accesses = %d, want 100 (20 revs x 5 lookups)", dfl)
	}
	if err := EngineControlDeployment().Validate(); err != nil {
		t.Errorf("implied deployment invalid: %v", err)
	}
}

func TestADASStreamValidation(t *testing.T) {
	if _, err := ADASStream(ADASStreamConfig{Core: 4, Frames: 1, SamplesPerFrame: 1}); err == nil {
		t.Error("core 4 accepted")
	}
	if _, err := ADASStream(ADASStreamConfig{Core: 1, Frames: 0, SamplesPerFrame: 1}); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestADASStreamShape(t *testing.T) {
	src, err := ADASStream(ADASStreamConfig{Core: 1, Frames: 4, SamplesPerFrame: 16})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(src)
	lmu := st.SRI[platform.TargetOp{Target: platform.LMU, Op: platform.Data}]
	if lmu != 4*16*2 { // one load + one store per sample
		t.Errorf("lmu data accesses = %d, want 128", lmu)
	}
	if st.SRI[platform.TargetOp{Target: platform.DFL, Op: platform.Data}] != 0 {
		t.Error("ADAS stream touches dfl")
	}
	if err := ADASStreamDeployment().Validate(); err != nil {
		t.Errorf("implied deployment invalid: %v", err)
	}
}

// TestArchetypeSoundnessEndToEnd runs both archetypes against an H-Load
// contender and checks the full model chain on deployments the paper's
// evaluation does not cover — notably the dfl path, whose 43-cycle
// transactions are the worst on the platform.
func TestArchetypeSoundnessEndToEnd(t *testing.T) {
	lat := platform.TC27xLatencies()
	cases := []struct {
		name   string
		build  func() (trace.Source, error)
		deploy platform.Deployment
	}{
		{
			name: "engine-control",
			build: func() (trace.Source, error) {
				return EngineControl(EngineControlConfig{Core: 1, Revolutions: 50, MapLookups: 4})
			},
			deploy: EngineControlDeployment(),
		},
		{
			name: "adas-stream",
			build: func() (trace.Source, error) {
				return ADASStream(ADASStreamConfig{Core: 1, Frames: 10, SamplesPerFrame: 32})
			},
			deploy: ADASStreamDeployment(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			appSrc, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			iso, err := sim.RunIsolation(lat, 1, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			// Contender: engine control on core 2 as well, stressing dfl
			// and lmu together.
			contSrc, err := EngineControl(EngineControlConfig{Core: 2, Revolutions: 100, MapLookups: 4})
			if err != nil {
				t.Fatal(err)
			}
			contIso, err := sim.RunIsolation(lat, 2, sim.Task{Kind: tricore.TC16P, Src: contSrc}, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}

			// Union deployment so the scenario covers both tasks' paths.
			union := platform.Deployment{
				Code: append(append([]platform.Placement{}, tc.deploy.Code...), EngineControlDeployment().Code...),
				Data: append(append([]platform.Placement{}, tc.deploy.Data...), EngineControlDeployment().Data...),
			}
			in := core.Input{
				A:        iso.Readings[1],
				B:        []dsu.Readings{contIso.Readings[2]},
				Lat:      &lat,
				Scenario: core.GenericScenario(union),
			}
			ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ftcE, err := core.FTC(in)
			if err != nil {
				t.Fatal(err)
			}

			appSrc.Reset()
			contSrc.Reset()
			multi, err := sim.Run(lat, map[int]sim.Task{
				1: {Kind: tricore.TC16P, Src: appSrc},
				2: {Kind: tricore.TC16P, Src: contSrc},
			}, 1, sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if multi.Cycles > ilpE.WCET() {
				t.Errorf("observed %d exceeds ILP WCET %d", multi.Cycles, ilpE.WCET())
			}
			if ilpE.WCET() > ftcE.WCET() {
				t.Errorf("ILP %d above fTC %d", ilpE.WCET(), ftcE.WCET())
			}
		})
	}
}
