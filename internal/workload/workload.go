// Package workload generates the task access streams of the paper's
// evaluation: the control-loop application under analysis (an automotive
// cruise-control-style acquire/compute/update loop over two medium-size
// data structures), the H-Load / M-Load / L-Load contender benchmarks that
// put increasing pressure on the SRI, and the calibration microbenchmarks
// of [10] used to derive the per-target latency and minimum-stall figures
// of Table 2.
//
// The paper runs compiled binaries on silicon; these generators produce
// deterministic traces with the same access-pattern *shape* — which SRI
// targets are hit, with what operation mix and density — which is all the
// contention models can observe through the DSU counters.
package workload

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
)

// Per-core address-space carving, so tasks on different cores never share
// cache-relevant state accidentally (the shared LMU data region is shared
// on purpose — its timing is all that matters, coherence is out of scope,
// as in the paper).
const (
	// pfCodeRegion is the per-core code footprint in each PFlash bank.
	pfCodeRegion uint32 = 96 * 1024
	// pfConstRegion is the per-core constant-data footprint in PFlash
	// (Scenario 2).
	pfConstRegion uint32 = 32 * 1024
	// pfConstBase is the offset of constant pools inside each bank.
	pfConstBase uint32 = 512 * 1024
	// lmuUncachedSize is the shared non-cacheable LMU window.
	lmuUncachedSize uint32 = 8 * 1024
	// lmuCachedBase/Size is the cacheable LMU window (Scenario 2).
	lmuCachedBase uint32 = 16 * 1024
	lmuCachedSize uint32 = 8 * 1024
	lineSize      uint32 = 32
)

// pf0Code returns the i-th code line address of core's pf0 footprint
// (cacheable).
func pf0Code(core int, i uint32) uint32 {
	return platform.PFlash0Base + uint32(core)*pfCodeRegion + (i*lineSize)%pfCodeRegion
}

// pf1Code is the pf1 analogue of pf0Code.
func pf1Code(core int, i uint32) uint32 {
	return platform.PFlash1Base + uint32(core)*pfCodeRegion + (i*lineSize)%pfCodeRegion
}

// pfConst returns the i-th constant-pool word in the given bank.
func pfConst(core int, bank int, i uint32) uint32 {
	base := platform.PFlash0Base
	if bank == 1 {
		base = platform.PFlash1Base
	}
	return base + pfConstBase + uint32(core)*pfConstRegion + (i*lineSize)%pfConstRegion
}

// lmuShared returns the i-th word of the shared non-cacheable LMU buffer.
func lmuShared(i uint32) uint32 {
	return platform.Uncached(platform.LMUBase) + (i*4)%lmuUncachedSize
}

// lmuCached returns the i-th word of the cacheable LMU region, striding
// whole lines so reuse is controlled by the caller's index sequence.
func lmuCached(i uint32) uint32 {
	return platform.LMUBase + lmuCachedBase + (i*lineSize)%lmuCachedSize
}

// Scenario selects the deployment variant of the generated workloads,
// matching Figure 3 of the paper.
type Scenario int

const (
	// Scenario1: cacheable code in pf0/pf1, non-cacheable shared data in
	// the lmu.
	Scenario1 Scenario = 1
	// Scenario2: cacheable code in pf0/pf1, lmu data cacheable and
	// non-cacheable, constant cacheable data in pf0/pf1.
	Scenario2 Scenario = 2
)

// Validate checks the scenario tag.
func (s Scenario) Validate() error {
	if s != Scenario1 && s != Scenario2 {
		return fmt.Errorf("workload: unknown scenario %d", int(s))
	}
	return nil
}

// AppConfig sizes the control-loop application.
type AppConfig struct {
	// Scenario picks the deployment variant.
	Scenario Scenario
	// Core is the core the app will run on (selects its address carving).
	Core int
	// Iterations is the number of control-loop iterations.
	Iterations int
}

// ControlLoop generates the application under analysis: per iteration it
// acquires sensor signals (reads from the shared LMU buffer), runs the
// control computation (code partly in the local scratchpad, partly
// streaming through a PFlash footprint larger than the I-cache, so code
// fetches keep reaching the SRI), and updates the actuator state (writes
// to the shared LMU buffer). Scenario 2 additionally reads calibration
// constants from cacheable PFlash and filtered samples from cacheable LMU.
func ControlLoop(cfg AppConfig) (trace.Source, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("workload: iterations must be positive, got %d", cfg.Iterations)
	}
	if cfg.Core < 0 || cfg.Core > 2 {
		return nil, fmt.Errorf("workload: core %d out of range", cfg.Core)
	}

	var accs []trace.Access
	var codeCursor, constCursor, sampleCursor uint32
	for it := 0; it < cfg.Iterations; it++ {
		// Phase 1 — signal acquisition: six sensor words from the shared
		// non-cacheable LMU buffer.
		for i := 0; i < 6; i++ {
			accs = append(accs, trace.Access{Gap: 2, Kind: trace.Load, Addr: lmuShared(uint32(it*6 + i))})
		}

		// Phase 2 — computation. The loop body alternates
		// scratchpad-resident helpers with PFlash-resident control code.
		// The PFlash footprint (2 x 96 KiB walked line by line) exceeds
		// the 16 KiB I-cache, so its fetches miss persistently.
		for i := 0; i < 10; i++ {
			// Scratchpad code: three lines of local helpers.
			for j := 0; j < 3; j++ {
				accs = append(accs, trace.Access{Gap: 5, Kind: trace.Fetch,
					Addr: platform.PSPRAddr(cfg.Core, (uint32(i*3+j)*lineSize)%4096)})
			}
			// PFlash control code, alternating banks.
			addr := pf0Code(cfg.Core, codeCursor)
			if codeCursor%2 == 1 {
				addr = pf1Code(cfg.Core, codeCursor)
			}
			codeCursor++
			accs = append(accs, trace.Access{Gap: 3, Kind: trace.Fetch, Addr: addr})

			if cfg.Scenario == Scenario2 {
				// Calibration constants from cacheable PFlash; the pool
				// exceeds the 8 KiB D-cache, so reads keep missing.
				accs = append(accs, trace.Access{Gap: 2, Kind: trace.Load,
					Addr: pfConst(cfg.Core, i%2, constCursor)})
				constCursor++
				// Filtered samples from cacheable LMU: a small ring that
				// mostly hits, with a fresh line every few iterations.
				accs = append(accs, trace.Access{Gap: 2, Kind: trace.Load,
					Addr: lmuCached(sampleCursor / 4)})
				sampleCursor++
			}
			// Local working-set accesses in the data scratchpad.
			accs = append(accs, trace.Access{Gap: 1, Kind: trace.Load,
				Addr: platform.DSPRAddr(cfg.Core, (uint32(i)*64)%8192)})
		}

		// Phase 3 — status update: three actuator words to the shared
		// non-cacheable LMU buffer.
		for i := 0; i < 3; i++ {
			accs = append(accs, trace.Access{Gap: 2, Kind: trace.Store, Addr: lmuShared(uint32(it*3 + i + 4096))})
		}
	}
	return trace.NewSlice(accs), nil
}
