package workload

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
)

func TestScenarioValidate(t *testing.T) {
	if err := Scenario1.Validate(); err != nil {
		t.Error(err)
	}
	if err := Scenario2.Validate(); err != nil {
		t.Error(err)
	}
	if err := Scenario(3).Validate(); err == nil {
		t.Error("scenario 3 validated")
	}
}

func TestLevelString(t *testing.T) {
	if HLoad.String() != "H-Load" || MLoad.String() != "M-Load" || LLoad.String() != "L-Load" {
		t.Error("level strings")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("fallback level string")
	}
}

func TestControlLoopValidation(t *testing.T) {
	if _, err := ControlLoop(AppConfig{Scenario: Scenario(7), Core: 1, Iterations: 1}); err == nil {
		t.Error("bad scenario accepted")
	}
	if _, err := ControlLoop(AppConfig{Scenario: Scenario1, Core: 1, Iterations: 0}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := ControlLoop(AppConfig{Scenario: Scenario1, Core: 5, Iterations: 1}); err == nil {
		t.Error("core 5 accepted")
	}
}

func TestControlLoopScenario1Shape(t *testing.T) {
	src, err := ControlLoop(AppConfig{Scenario: Scenario1, Core: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(src)
	if st.Invalid != 0 {
		t.Fatalf("trace touches unmapped addresses: %v", st)
	}
	// Scenario 1 address mix: code in pf0/pf1 (cacheable), data only in
	// non-cacheable lmu; nothing on dfl, no data in pf.
	if st.SRI[platform.TargetOp{Target: platform.DFL, Op: platform.Data}] != 0 {
		t.Error("scenario 1 trace touches dfl")
	}
	if st.SRI[platform.TargetOp{Target: platform.PF0, Op: platform.Data}] != 0 ||
		st.SRI[platform.TargetOp{Target: platform.PF1, Op: platform.Data}] != 0 {
		t.Error("scenario 1 trace reads data from pflash")
	}
	if st.SRI[platform.TargetOp{Target: platform.LMU, Op: platform.Code}] != 0 {
		t.Error("scenario 1 trace fetches code from lmu")
	}
	if st.SRI[platform.TargetOp{Target: platform.PF0, Op: platform.Code}] == 0 ||
		st.SRI[platform.TargetOp{Target: platform.PF1, Op: platform.Code}] == 0 {
		t.Error("scenario 1 trace missing pflash code")
	}
	// 6 acquisition loads + 3 update stores per iteration.
	if st.SRI[platform.TargetOp{Target: platform.LMU, Op: platform.Data}] != 10*(6+3) {
		t.Errorf("lmu data accesses = %d, want 90", st.SRI[platform.TargetOp{Target: platform.LMU, Op: platform.Data}])
	}
	if st.Scratchpad == 0 {
		t.Error("no scratchpad traffic — part of the footprint must be local")
	}
}

func TestControlLoopScenario2AddsPFConstants(t *testing.T) {
	src, err := ControlLoop(AppConfig{Scenario: Scenario2, Core: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(src)
	pfData := st.SRI[platform.TargetOp{Target: platform.PF0, Op: platform.Data}] +
		st.SRI[platform.TargetOp{Target: platform.PF1, Op: platform.Data}]
	if pfData == 0 {
		t.Error("scenario 2 trace has no pflash constant reads")
	}
	if st.SRI[platform.TargetOp{Target: platform.DFL, Op: platform.Data}] != 0 {
		t.Error("scenario 2 trace touches dfl")
	}
}

func TestControlLoopDeterministic(t *testing.T) {
	a, err := ControlLoop(AppConfig{Scenario: Scenario2, Core: 1, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ControlLoop(AppConfig{Scenario: Scenario2, Core: 1, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := trace.Collect(a), trace.Collect(b)
	if len(xs) != len(ys) {
		t.Fatalf("lengths differ: %d vs %d", len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestContenderValidation(t *testing.T) {
	if _, err := Contender(ContenderConfig{Level: Level(9), Scenario: Scenario1, Core: 2, Bursts: 1}); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := Contender(ContenderConfig{Level: HLoad, Scenario: Scenario(0), Core: 2, Bursts: 1}); err == nil {
		t.Error("bad scenario accepted")
	}
	if _, err := Contender(ContenderConfig{Level: HLoad, Scenario: Scenario1, Core: 2, Bursts: 0}); err == nil {
		t.Error("zero bursts accepted")
	}
	if _, err := Contender(ContenderConfig{Level: HLoad, Scenario: Scenario1, Core: 9, Bursts: 1}); err == nil {
		t.Error("core 9 accepted")
	}
}

// sriDensity runs the trace in isolation and returns SRI stall cycles per
// executed cycle — the "load on shared resources" the paper's levels vary.
func sriDensity(t *testing.T, src trace.Source) float64 {
	t.Helper()
	res, err := sim.RunIsolation(platform.TC27xLatencies(), 2, sim.Task{Kind: tricore.TC16P, Src: src}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Readings[2]
	return float64(r.PS+r.DS) / float64(r.CCNT)
}

func TestContenderLoadOrdering(t *testing.T) {
	var density [3]float64
	for i, lv := range Levels {
		src, err := Contender(ContenderConfig{Level: lv, Scenario: Scenario1, Core: 2, Bursts: 200})
		if err != nil {
			t.Fatal(err)
		}
		density[i] = sriDensity(t, src)
	}
	if !(density[0] > density[1] && density[1] > density[2]) {
		t.Errorf("SRI stall density not decreasing H>M>L: %v", density)
	}
}

func TestContenderScenario2HasPFConstants(t *testing.T) {
	src, err := Contender(ContenderConfig{Level: MLoad, Scenario: Scenario2, Core: 2, Bursts: 50})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(src)
	pfData := st.SRI[platform.TargetOp{Target: platform.PF0, Op: platform.Data}] +
		st.SRI[platform.TargetOp{Target: platform.PF1, Op: platform.Data}]
	if pfData == 0 {
		t.Error("scenario 2 contender reads no pflash constants")
	}
}

func TestMicrobenchValidation(t *testing.T) {
	if _, err := Microbench(MicrobenchConfig{Target: platform.DFL, Op: platform.Code, N: 1}); err == nil {
		t.Error("dfl/co accepted")
	}
	if _, err := Microbench(MicrobenchConfig{Target: platform.LMU, Op: platform.Data, N: 0}); err == nil {
		t.Error("zero accesses accepted")
	}
	if _, err := Microbench(MicrobenchConfig{Target: platform.LMU, Op: platform.Data, N: 1, Core: 7}); err == nil {
		t.Error("core 7 accepted")
	}
}

func TestMicrobenchEveryAccessReachesSRI(t *testing.T) {
	lat := platform.TC27xLatencies()
	for _, to := range platform.AccessPairs() {
		src, err := Microbench(MicrobenchConfig{Target: to.Target, Op: to.Op, N: 50, Core: 1})
		if err != nil {
			t.Fatalf("%s: %v", to, err)
		}
		res, err := sim.RunIsolation(lat, 1, sim.Task{Kind: tricore.TC16P, Src: src}, sim.Config{})
		if err != nil {
			t.Fatalf("%s: %v", to, err)
		}
		if got := res.PTAC[1][to]; got != 50 {
			t.Errorf("%s: %d SRI transactions, want 50", to, got)
		}
		// The observed stall per access must equal Table 2's cs exactly
		// (this is the calibration methodology that regenerates Table 2).
		r := res.Readings[1]
		stall := r.PS
		if to.Op == platform.Data {
			stall = r.DS
		}
		if want := 50 * lat.MinStall(to.Target, to.Op); stall != want {
			t.Errorf("%s: stall = %d, want %d", to, stall, want)
		}
	}
}

func TestMicrobenchStores(t *testing.T) {
	src, err := Microbench(MicrobenchConfig{Target: platform.LMU, Op: platform.Data, Write: true, N: 10, Core: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(src)
	if st.Stores != 10 || st.Loads != 0 {
		t.Errorf("stores=%d loads=%d, want 10/0", st.Stores, st.Loads)
	}
}
