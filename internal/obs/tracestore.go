package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// StoredTrace is one finished request trace at rest: the wire-form span
// tree plus the request metadata the search index filters on.
type StoredTrace struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	// DurationMs duplicates the root span's duration in the unit the
	// search API filters on.
	DurationMs float64 `json:"durationMs"`
	// UnixMs is the request's completion time.
	UnixMs int64 `json:"unixMs"`
	// Sampled says why the trace was kept: "header" (client asked),
	// "slow" (tail-sampled on latency) or "error" (status >= 500).
	Sampled string               `json:"sampled"`
	Trace   *telemetry.TraceJSON `json:"trace"`
}

// TraceSummary is the search-result form: everything but the span tree.
type TraceSummary struct {
	ID         string  `json:"id"`
	Endpoint   string  `json:"endpoint"`
	Status     int     `json:"status"`
	DurationMs float64 `json:"durationMs"`
	UnixMs     int64   `json:"unixMs"`
	Sampled    string  `json:"sampled"`
}

// TraceStore is a bounded ring of stored traces with an in-memory index,
// persisted through a checksummed segment log so stored traces survive
// kill -9. Safe for concurrent use. An empty dir is memory-only.
type TraceStore struct {
	mu  sync.RWMutex
	log *segLog
	// ring holds the most recent maxEntries traces, oldest first.
	ring       []*StoredTrace
	byID       map[string]*StoredTrace
	maxEntries int
	// Dropped counts unverifiable lines discarded at startup.
	Dropped int
}

// OpenTraceStore opens (or creates) the store under dir, retaining at
// most maxEntries traces (minimum 16).
func OpenTraceStore(dir string, maxEntries int) (*TraceStore, error) {
	if maxEntries < 16 {
		maxEntries = 16
	}
	ts := &TraceStore{maxEntries: maxEntries, byID: make(map[string]*StoredTrace)}
	if dir == "" {
		return ts, nil
	}
	maxLines := maxEntries / 8
	if maxLines < 32 {
		maxLines = 32
	}
	log, recs, dropped, err := openSegLog(dir, "trace", maxLines, maxEntries/maxLines+2)
	if err != nil {
		return nil, err
	}
	ts.log = log
	ts.Dropped = dropped
	for _, rec := range recs {
		var st StoredTrace
		if json.Unmarshal(rec.Data, &st) != nil || st.ID == "" || st.Trace == nil {
			ts.Dropped++
			continue
		}
		ts.insert(&st)
	}
	return ts, nil
}

// insert adds one trace to the ring and index, evicting the oldest past
// capacity. Caller holds the lock (or is still single-threaded in Open).
func (ts *TraceStore) insert(st *StoredTrace) {
	ts.ring = append(ts.ring, st)
	ts.byID[st.ID] = st
	if over := len(ts.ring) - ts.maxEntries; over > 0 {
		for _, old := range ts.ring[:over] {
			// Only unindex if the ID still maps to the evicted entry (a
			// replayed duplicate ID must not orphan the live one).
			if ts.byID[old.ID] == old {
				delete(ts.byID, old.ID)
			}
		}
		ts.ring = append(ts.ring[:0:0], ts.ring[over:]...)
	}
}

// Put stores one finished trace. The on-disk ring reclaims old segments
// on rotation; the in-memory ring evicts immediately.
func (ts *TraceStore) Put(st *StoredTrace) error {
	if st == nil || st.ID == "" || st.Trace == nil {
		return nil
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.insert(st)
	return ts.log.append(st.UnixMs, data)
}

// Get returns a stored trace by ID, or nil.
func (ts *TraceStore) Get(id string) *StoredTrace {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.byID[id]
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.ring)
}

// Query returns summaries of retained traces matching the filters,
// newest first, capped at limit (<=0 means 100). endpoint "" matches
// all; minMs <= 0 matches all durations; since <= 0 matches all times.
func (ts *TraceStore) Query(endpoint string, minMs float64, since int64, limit int) []TraceSummary {
	if limit <= 0 {
		limit = 100
	}
	ts.mu.RLock()
	var out []TraceSummary
	for i := len(ts.ring) - 1; i >= 0 && len(out) < limit; i-- {
		st := ts.ring[i]
		if endpoint != "" && !strings.EqualFold(st.Endpoint, endpoint) {
			continue
		}
		if minMs > 0 && st.DurationMs < minMs {
			continue
		}
		if since > 0 && st.UnixMs < since {
			continue
		}
		out = append(out, TraceSummary{
			ID: st.ID, Endpoint: st.Endpoint, Status: st.Status,
			DurationMs: st.DurationMs, UnixMs: st.UnixMs, Sampled: st.Sampled,
		})
	}
	ts.mu.RUnlock()
	// The ring is append-ordered; a replayed store already is too, but
	// sort defensively so the API contract (newest first) always holds.
	sort.SliceStable(out, func(i, j int) bool { return out[i].UnixMs > out[j].UnixMs })
	return out
}

// Close syncs and closes the segment log.
func (ts *TraceStore) Close() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.log.close()
}
