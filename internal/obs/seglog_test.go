package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestSegLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, dropped, err := openSegLog(dir, "seg", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || dropped != 0 {
		t.Fatalf("fresh log: recs=%d dropped=%d", len(recs), dropped)
	}
	for i := 0; i < 6; i++ {
		if err := l.append(int64(i), []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	l.close()

	_, recs, dropped, err = openSegLog(dir, "seg", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(recs) != 6 {
		t.Fatalf("len(recs) = %d, want 6", len(recs))
	}
	for i, rec := range recs {
		if rec.T != int64(i) {
			t.Fatalf("rec[%d].T = %d", i, rec.T)
		}
	}
}

func TestSegLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := openSegLog(dir, "seg", 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.append(int64(i), []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	l.close()

	// Simulate a torn append: a partial line with no newline.
	seg := filepath.Join(dir, "seg-00000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"t":99,"d":{"v":`)
	f.Close()
	before, _ := os.Stat(seg)

	l2, recs, dropped, err := openSegLog(dir, "seg", 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("len(recs) = %d, want 3 (torn tail dropped)", len(recs))
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends resume cleanly on the truncated file.
	if err := l2.append(100, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	l2.close()
	_, recs, _, err = openSegLog(dir, "seg", 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].T != 100 {
		t.Fatalf("after resume: %d recs, last T %d", len(recs), recs[len(recs)-1].T)
	}
}

func TestSegLogCorruptMiddleStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := openSegLog(dir, "seg", 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.append(int64(i), []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	l.close()

	// Flip a byte inside the second line's checksum region.
	seg := filepath.Join(dir, "seg-00000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, dropped, err := openSegLog(dir, "seg", 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 3 {
		t.Fatalf("corrupt line not dropped: %d recs", len(recs))
	}
	if dropped == 0 {
		t.Fatal("dropped = 0, want > 0")
	}
}

func TestSegLogRingReclaims(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := openSegLog(dir, "seg", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.append(int64(i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	l.close()
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(names) > 2 {
		t.Fatalf("ring kept %d segments, want <= 2", len(names))
	}
	_, recs, _, err := openSegLog(dir, "seg", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only the newest records survive, and the newest of all is present.
	if len(recs) == 0 || recs[len(recs)-1].T != 9 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestSegLogNilAndMemoryOnly(t *testing.T) {
	var l *segLog
	if err := l.append(1, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	l.close()
	mem := &segLog{}
	if err := mem.append(1, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	mem.close()
}
