package obs

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler captures CPU and heap pprof snapshots into a bounded ring
// directory: on a timer, and immediately when triggered (the server
// triggers it on SLO burn), so the profile from an incident exists
// without an operator attached. Files are named
// <kind>-<unix-ms>-<reason>.pprof; the oldest beyond the ring bound are
// deleted after each capture.
type Profiler struct {
	dir      string
	interval time.Duration
	cpuDur   time.Duration
	maxFiles int
	logger   *slog.Logger

	mu        sync.Mutex // serializes captures (one CPU profile at a time)
	capturing bool

	trigger chan string
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewProfiler builds a profiler writing into dir. interval is the
// periodic capture cadence (minimum 10s); maxFiles bounds the ring
// (minimum 4). The profiler is idle until Start.
func NewProfiler(dir string, interval time.Duration, maxFiles int, logger *slog.Logger) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating profile dir: %w", err)
	}
	if interval < 10*time.Second {
		interval = 10 * time.Second
	}
	if maxFiles < 4 {
		maxFiles = 4
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Profiler{
		dir:      dir,
		interval: interval,
		cpuDur:   2 * time.Second,
		maxFiles: maxFiles,
		logger:   logger,
		trigger:  make(chan string, 4),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the capture loop.
func (p *Profiler) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(p.interval)
		defer tick.Stop()
		for {
			select {
			case <-p.done:
				return
			case <-tick.C:
				p.Capture("periodic")
			case reason := <-p.trigger:
				p.Capture(reason)
			}
		}
	}()
}

// TriggerBurn requests an immediate capture tagged with reason (an SLO
// name); never blocks — a capture already in flight covers the incident.
func (p *Profiler) TriggerBurn(reason string) {
	select {
	case p.trigger <- "burn-" + sanitizeReason(reason):
	default:
	}
}

// sanitizeReason keeps profile filenames shell- and glob-safe.
func sanitizeReason(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 40; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Capture takes one CPU profile (cpuDur long) and one heap snapshot,
// then reclaims the ring. A capture already in progress (including an
// external `go tool pprof` holding the CPU profiler) downgrades to a
// heap-only snapshot rather than failing.
func (p *Profiler) Capture(reason string) {
	p.mu.Lock()
	if p.capturing {
		p.mu.Unlock()
		return
	}
	p.capturing = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.capturing = false
		p.mu.Unlock()
	}()

	stamp := time.Now().UnixMilli()
	cpuPath := filepath.Join(p.dir, fmt.Sprintf("cpu-%d-%s.pprof", stamp, reason))
	if f, err := os.Create(cpuPath); err == nil {
		if err := pprof.StartCPUProfile(f); err != nil {
			// Someone else (an attached operator) owns the CPU profiler;
			// their capture covers the window.
			f.Close()
			os.Remove(cpuPath)
		} else {
			select {
			case <-time.After(p.cpuDur):
			case <-p.done:
			}
			pprof.StopCPUProfile()
			f.Close()
		}
	} else {
		p.logger.Warn("profiler cpu capture failed", "err", err)
	}

	heapPath := filepath.Join(p.dir, fmt.Sprintf("heap-%d-%s.pprof", stamp, reason))
	if f, err := os.Create(heapPath); err == nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			p.logger.Warn("profiler heap capture failed", "err", err)
		}
		f.Close()
	} else {
		p.logger.Warn("profiler heap capture failed", "err", err)
	}

	p.reclaim()
}

// reclaim deletes the oldest profiles beyond the ring bound, ordering by
// the embedded capture timestamp so cpu/heap pairs age out together.
func (p *Profiler) reclaim() {
	names, err := filepath.Glob(filepath.Join(p.dir, "*.pprof"))
	if err != nil || len(names) <= p.maxFiles {
		return
	}
	stamp := func(name string) string {
		parts := strings.SplitN(filepath.Base(name), "-", 3)
		if len(parts) < 2 {
			return ""
		}
		return fmt.Sprintf("%020s", parts[1])
	}
	sort.Slice(names, func(i, j int) bool { return stamp(names[i]) < stamp(names[j]) })
	for _, name := range names[:len(names)-p.maxFiles] {
		_ = os.Remove(name)
	}
}

// Close stops the loop and waits for any in-flight capture.
func (p *Profiler) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	p.wg.Wait()
}
