package obs

import (
	"math"
	"testing"
	"time"
)

func testTiers() []TierSpec {
	return []TierSpec{
		{Name: "raw", Step: 0, Retain: 100},
		{Name: "10s", Step: 10 * time.Second, Retain: 100},
	}
}

func TestTSDBAppendQuery(t *testing.T) {
	db, err := OpenTSDB("", testTiers())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Append(int64(1000*i), map[string]float64{"a": float64(i), "b": 10}); err != nil {
			t.Fatal(err)
		}
	}
	pts := db.Query("a", 0, 0, 0)
	if len(pts) != 5 {
		t.Fatalf("len = %d, want 5", len(pts))
	}
	if pts[4].V != 4 {
		t.Fatalf("last = %v", pts[4])
	}
	// Range query.
	pts = db.Query("a", 1000, 3000, 0)
	if len(pts) != 3 || pts[0].T != 1000 || pts[2].T != 3000 {
		t.Fatalf("range query: %+v", pts)
	}
	// Unknown series.
	if pts := db.Query("zzz", 0, 0, 0); len(pts) != 0 {
		t.Fatalf("unknown series returned %d points", len(pts))
	}
}

func TestTSDBPrefixSumAndMultiPattern(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	snap := map[string]float64{
		`req{endpoint="a"}`: 3,
		`req{endpoint="b"}`: 4,
		"other":             100,
	}
	if err := db.Append(1000, snap); err != nil {
		t.Fatal(err)
	}
	pts := db.Query("req*", 0, 0, 0)
	if len(pts) != 1 || pts[0].V != 7 {
		t.Fatalf("prefix sum: %+v", pts)
	}
	pts = db.Query(multiPattern([]string{"req*", "other"}), 0, 0, 0)
	if len(pts) != 1 || pts[0].V != 107 {
		t.Fatalf("multi pattern: %+v", pts)
	}
}

func TestTSDBDownsamplingTiers(t *testing.T) {
	db, _ := OpenTSDB("", []TierSpec{
		{Name: "raw", Step: 0, Retain: 4},
		{Name: "10s", Step: 10 * time.Second, Retain: 100},
	})
	// 60 samples at 1s cadence; raw retains ~the last few, the 10s tier
	// keeps one in ten and covers the whole window.
	for i := 0; i < 60; i++ {
		if err := db.Append(int64(1000*i), map[string]float64{"a": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pts := db.Query("a", 0, 0, 0)
	if len(pts) < 6 {
		t.Fatalf("merged query too small: %d", len(pts))
	}
	if pts[0].T > 10_000 {
		t.Fatalf("coarse tier did not preserve old samples: first T = %d", pts[0].T)
	}
	if pts[len(pts)-1].T != 59_000 {
		t.Fatalf("newest sample missing: last T = %d", pts[len(pts)-1].T)
	}
	// Step reduction.
	stepped := db.Query("a", 0, 0, 30_000)
	if len(stepped) > 3 {
		t.Fatalf("step reduction kept %d points", len(stepped))
	}
}

func TestTSDBPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenTSDB(dir, testTiers())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Append(int64(1000*i), map[string]float64{"c": float64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate kill -9 (OS has the bytes; fds just vanish).
	db2, err := OpenTSDB(dir, testTiers())
	if err != nil {
		t.Fatal(err)
	}
	pts := db2.Query("c", 0, 0, 0)
	if len(pts) != 20 {
		t.Fatalf("replayed %d points, want 20", len(pts))
	}
	if pts[19].V != 190 {
		t.Fatalf("last = %+v", pts[19])
	}
	// Appends continue after the replayed window.
	if err := db2.Append(30_000, map[string]float64{"c": 300}); err != nil {
		t.Fatal(err)
	}
	if pts := db2.Query("c", 0, 0, 0); len(pts) != 21 {
		t.Fatalf("after resume: %d points", len(pts))
	}
	db2.Close()
}

func TestTSDBSkipsNaNAndBackwardsClock(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	if err := db.Append(5000, map[string]float64{"a": 1, "bad": math.NaN(), "inf": math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(4000, map[string]float64{"a": 2}); err != nil {
		t.Fatal(err)
	}
	if got := db.Series(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("series = %v", got)
	}
	if pts := db.Query("a", 0, 0, 0); len(pts) != 1 || pts[0].V != 1 {
		t.Fatalf("backwards clock sample not skipped: %+v", pts)
	}
}

func TestTSDBIncreaseCounterResetSafe(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	vals := []float64{10, 20, 35, 5, 15} // reset between 35 and 5
	for i, v := range vals {
		if err := db.Append(int64(1000*(i+1)), map[string]float64{"ctr": v}); err != nil {
			t.Fatal(err)
		}
	}
	inc, ok := db.Increase("ctr", 0, 0)
	if !ok {
		t.Fatal("Increase not ok")
	}
	if inc != 35 { // 10+15 before the reset, +10 after
		t.Fatalf("inc = %v, want 35", inc)
	}
	if _, ok := db.Increase("missing", 0, 0); ok {
		t.Fatal("Increase ok on missing series")
	}
}

func TestTSDBViolationFractionAndMax(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	for i, v := range []float64{0.1, 0.2, 2.0, 3.0} {
		if err := db.Append(int64(1000*(i+1)), map[string]float64{"p99": v}); err != nil {
			t.Fatal(err)
		}
	}
	frac, ok := db.ViolationFraction("p99", 0, 0, func(v float64) bool { return v > 1 })
	if !ok || frac != 0.5 {
		t.Fatalf("frac = %v ok=%v", frac, ok)
	}
	max, ok := db.Max("p99", 0, 0)
	if !ok || max != 3.0 {
		t.Fatalf("max = %v ok=%v", max, ok)
	}
	if db.OldestUnixMs() != 1000 {
		t.Fatalf("oldest = %d", db.OldestUnixMs())
	}
}

func TestTSDBRetentionBounded(t *testing.T) {
	db, _ := OpenTSDB("", []TierSpec{{Name: "raw", Step: 0, Retain: 10}})
	for i := 0; i < 1000; i++ {
		if err := db.Append(int64(i), map[string]float64{"a": 1}); err != nil {
			t.Fatal(err)
		}
	}
	if pts := db.Query("a", 0, 0, 0); len(pts) > 13 {
		t.Fatalf("retention not enforced: %d points in memory", len(pts))
	}
}
