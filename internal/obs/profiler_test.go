package obs

import (
	"path/filepath"
	"testing"
	"time"
)

func TestProfilerCaptureAndReclaim(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(dir, time.Hour, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.cpuDur = 10 * time.Millisecond
	defer p.Close()

	p.Capture("test")
	names, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(names) != 2 {
		t.Fatalf("capture wrote %d files, want cpu+heap", len(names))
	}

	// Ring bound: repeated captures must not grow past maxFiles.
	for i := 0; i < 4; i++ {
		time.Sleep(2 * time.Millisecond) // distinct stamps
		p.Capture("more")
	}
	names, _ = filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(names) > 4 {
		t.Fatalf("ring kept %d files, want <= 4", len(names))
	}
}

func TestProfilerTriggerBurn(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(dir, time.Hour, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.cpuDur = 10 * time.Millisecond
	p.Start()
	defer p.Close()

	p.TriggerBurn("latency p99/page!")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		names, _ := filepath.Glob(filepath.Join(dir, "*burn-latency_p99_page_.pprof"))
		if len(names) >= 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	t.Fatalf("burn capture never landed; dir has %v", names)
}
