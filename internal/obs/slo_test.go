package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seedAvailability appends total/bad counter samples at a 5s cadence:
// pairs of (total, bad) cumulative values starting at t0.
func seedAvailability(t *testing.T, db *TSDB, t0 int64, pairs [][2]float64) int64 {
	t.Helper()
	ts := t0
	for _, p := range pairs {
		if err := db.Append(ts, map[string]float64{"total": p[0], "bad": p[1]}); err != nil {
			t.Fatal(err)
		}
		ts += 5000
	}
	return ts - 5000
}

func availObjective() Objective {
	return Objective{
		Name: "avail", Kind: "availability", Goal: 0.999,
		Bad: []string{"bad"}, Total: []string{"total"}, MinEvents: 10,
	}
}

func TestSLOAvailabilityBurnFiresAndResolves(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	var fired []Alert
	eng, err := NewEngine(db, []Objective{availObjective()}, func(a Alert) { fired = append(fired, a) })
	if err != nil {
		t.Fatal(err)
	}

	// Bad phase: 10% of requests rejected — burn 100x a 0.1% budget.
	pairs := make([][2]float64, 13)
	for i := range pairs {
		pairs[i] = [2]float64{float64(100 * i), float64(10 * i)}
	}
	last := seedAvailability(t, db, 0, pairs)

	active := eng.Evaluate(last)
	if len(active) != 2 {
		t.Fatalf("active = %+v, want page+ticket", active)
	}
	if len(fired) != 2 {
		t.Fatalf("onFire called %d times, want 2", len(fired))
	}
	for _, a := range active {
		if a.SLO != "avail" || a.BurnShort < 14.4 {
			t.Fatalf("alert = %+v", a)
		}
	}

	// Recovery: zero bad growth for longer than the page's short window.
	good := make([][2]float64, 120)
	for i := range good {
		good[i] = [2]float64{1200 + float64(100*i), 120}
	}
	last = seedAvailability(t, db, 65_000, good)
	active = eng.Evaluate(last)
	for _, a := range active {
		if a.Severity == "page" {
			t.Fatalf("page still firing after recovery: %+v", a)
		}
	}
	_, resolved := eng.Alerts()
	if len(resolved) == 0 {
		t.Fatal("no resolved alerts recorded")
	}
}

func TestSLOMinEventsSuppresses(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	eng, _ := NewEngine(db, []Objective{availObjective()}, nil)
	// 100% bad, but only 4 total events — below MinEvents.
	seedAvailability(t, db, 0, [][2]float64{{0, 0}, {2, 2}, {4, 4}})
	if active := eng.Evaluate(10_000); len(active) != 0 {
		t.Fatalf("fired below MinEvents: %+v", active)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	obj := Objective{
		Name: "lat", Kind: "latency", Goal: 0.99,
		Series: "p99_seconds", TargetSeconds: 0.5,
	}
	eng, _ := NewEngine(db, []Objective{obj}, nil)
	for i := 0; i < 12; i++ {
		if err := db.Append(int64(5000*(i+1)), map[string]float64{"p99_seconds": 2.0}); err != nil {
			t.Fatal(err)
		}
	}
	active := eng.Evaluate(60_000)
	if len(active) == 0 {
		t.Fatal("latency SLO did not fire with every sample over target")
	}
}

func TestSLORateMinActivityGate(t *testing.T) {
	db, _ := OpenTSDB("", testTiers())
	obj := Objective{
		Name: "thr", Kind: "rate_min", Goal: 0.99,
		Series: "cells_total", RatePerSecond: 10, ActivityGate: "active",
	}
	eng, _ := NewEngine(db, []Objective{obj}, nil)

	// Idle: counter flat but gate zero — must not fire.
	for i := 0; i < 12; i++ {
		if err := db.Append(int64(5000*(i+1)), map[string]float64{"cells_total": 0, "active": 0}); err != nil {
			t.Fatal(err)
		}
	}
	if active := eng.Evaluate(60_000); len(active) != 0 {
		t.Fatalf("rate_min fired while gated off: %+v", active)
	}

	// Active but slow: gate up, growth far below 10/s — fires.
	for i := 12; i < 24; i++ {
		if err := db.Append(int64(5000*(i+1)), map[string]float64{"cells_total": float64(i), "active": 1}); err != nil {
			t.Fatal(err)
		}
	}
	if active := eng.Evaluate(120_000); len(active) == 0 {
		t.Fatal("rate_min did not fire while active and slow")
	}
}

func TestSLOBurnOverrides(t *testing.T) {
	obj := availObjective()
	obj.FastBurn = 1000 // impossible threshold
	db, _ := OpenTSDB("", testTiers())
	eng, _ := NewEngine(db, []Objective{obj}, nil)
	pairs := make([][2]float64, 13)
	for i := range pairs {
		pairs[i] = [2]float64{float64(100 * i), float64(10 * i)}
	}
	last := seedAvailability(t, db, 0, pairs)
	for _, a := range eng.Evaluate(last) {
		if a.Severity == "page" {
			t.Fatalf("page fired despite FastBurn override: %+v", a)
		}
	}
}

func TestDefaultObjectivesValid(t *testing.T) {
	for _, o := range DefaultObjectives() {
		if err := o.Validate(); err != nil {
			t.Errorf("default objective %q invalid: %v", o.Name, err)
		}
	}
}

func TestLoadObjectives(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "slo.json")
	os.WriteFile(good, []byte(`{"objectives":[
		{"name":"a","kind":"availability","goal":0.99,"bad":["b"],"total":["t"]},
		{"name":"l","kind":"latency","goal":0.9,"series":"s","targetSeconds":0.1}
	]}`), 0o644)
	objs, err := LoadObjectives(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("len = %d", len(objs))
	}

	cases := map[string]string{
		"empty.json":   `{"objectives":[]}`,
		"badkind.json": `{"objectives":[{"name":"x","kind":"zzz","goal":0.5}]}`,
		"badgoal.json": `{"objectives":[{"name":"x","kind":"latency","goal":1.5,"series":"s","targetSeconds":1}]}`,
		"dup.json": `{"objectives":[
			{"name":"x","kind":"latency","goal":0.9,"series":"s","targetSeconds":1},
			{"name":"x","kind":"latency","goal":0.9,"series":"s","targetSeconds":1}]}`,
		"unknown.json": `{"objectives":[{"name":"x","kind":"latency","goal":0.9,"series":"s","targetSeconds":1,"bogus":true}]}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(body), 0o644)
		if _, err := LoadObjectives(p); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if _, err := LoadObjectives(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: no error")
	}
}

func TestSLOYoungStoreClampsWindows(t *testing.T) {
	// A store with one sample cannot evaluate any window.
	db, _ := OpenTSDB("", testTiers())
	eng, _ := NewEngine(db, []Objective{availObjective()}, nil)
	db.Append(time.Now().UnixMilli(), map[string]float64{"total": 5, "bad": 5})
	if active := eng.Evaluate(time.Now().UnixMilli() + 1000); len(active) != 0 {
		t.Fatalf("fired on single sample: %+v", active)
	}
}
