package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Objective is one declarative service-level objective. Kinds:
//
//   - "availability": good-event fraction. Bad and Total name counter
//     series (patterns; trailing '*' sums a family); the bad fraction
//     over a window is increase(Bad)/increase(Total).
//   - "latency": a sampled quantile gauge (Series, e.g.
//     `wcetd_request_seconds{endpoint="v1_wcet"}_p99`) must stay at or
//     under TargetSeconds; the bad fraction is the fraction of retained
//     samples in the window above the target. (Snapshot quantiles are
//     lifetime estimates sampled over time, not per-window recomputes —
//     a deliberate trade documented in docs/OBSERVABILITY.md.)
//   - "rate_min": a counter (Series) must grow at ≥ RatePerSecond over
//     the window; the bad fraction is 1 when it does not, 0 when it
//     does. When ActivityGate names a gauge series, windows where the
//     gate never rose above zero are skipped entirely (a throughput SLO
//     on campaign cells should not page because no jobs were queued).
//
// Goal is the good fraction the objective promises (0.999 = three
// nines); the error budget is 1-Goal and a burn rate of B means the
// budget is being consumed B times faster than it can sustain.
type Objective struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Goal float64 `json:"goal"`

	Bad   []string `json:"bad,omitempty"`
	Total []string `json:"total,omitempty"`

	Series        string  `json:"series,omitempty"`
	TargetSeconds float64 `json:"targetSeconds,omitempty"`

	RatePerSecond float64 `json:"ratePerSecond,omitempty"`
	ActivityGate  string  `json:"activityGate,omitempty"`

	// MinEvents suppresses evaluation until a window saw at least this
	// many total events (availability kinds only): two requests at boot
	// must not page three-nines availability.
	MinEvents float64 `json:"minEvents,omitempty"`

	// FastBurn and SlowBurn override the firing thresholds of the two
	// window pairs; 0 selects the defaults (14.4 and 1).
	FastBurn float64 `json:"fastBurn,omitempty"`
	SlowBurn float64 `json:"slowBurn,omitempty"`
}

// Validate rejects malformed objectives with a field-specific error.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("obs: objective missing name")
	}
	if o.Goal <= 0 || o.Goal >= 1 {
		return fmt.Errorf("obs: objective %q: goal must be in (0,1), got %g", o.Name, o.Goal)
	}
	switch o.Kind {
	case "availability":
		if len(o.Bad) == 0 || len(o.Total) == 0 {
			return fmt.Errorf("obs: objective %q: availability needs bad and total series", o.Name)
		}
	case "latency":
		if o.Series == "" || o.TargetSeconds <= 0 {
			return fmt.Errorf("obs: objective %q: latency needs series and targetSeconds", o.Name)
		}
	case "rate_min":
		if o.Series == "" || o.RatePerSecond <= 0 {
			return fmt.Errorf("obs: objective %q: rate_min needs series and ratePerSecond", o.Name)
		}
	default:
		return fmt.Errorf("obs: objective %q: unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// DefaultObjectives is the built-in SLO set a bare wcetd runs under:
// request availability, interactive p99 latency, result-cache hit rate
// and campaign-cell throughput (gated on jobs actually being active).
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name: "availability", Kind: "availability", Goal: 0.999,
			Bad:       []string{"wcetd_rejected_overload_total", "wcetd_canceled_total"},
			Total:     []string{"wcetd_accepted_total", "wcetd_rejected_overload_total"},
			MinEvents: 10,
		},
		{
			Name: "latency-p99-v1-wcet", Kind: "latency", Goal: 0.99,
			Series:        `wcetd_request_seconds{endpoint="v1_wcet"}_p99`,
			TargetSeconds: 1.0,
		},
		{
			Name: "cache-hit-rate", Kind: "availability", Goal: 0.25,
			Bad:       []string{"wcetd_cache_misses_total"},
			Total:     []string{"wcetd_cache_hits_total", "wcetd_cache_misses_total"},
			MinEvents: 100,
		},
		{
			Name: "job-throughput", Kind: "rate_min", Goal: 0.99,
			Series:        "jobs_cells_solved_total",
			RatePerSecond: 1.0 / 60,
			ActivityGate:  "jobs_active",
		},
	}
}

// LoadObjectives reads a {"objectives": [...]} JSON config file and
// validates every entry.
func LoadObjectives(path string) ([]Objective, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading SLO config: %w", err)
	}
	var cfg struct {
		Objectives []Objective `json:"objectives"`
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("obs: parsing SLO config %s: %w", path, err)
	}
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("obs: SLO config %s defines no objectives", path)
	}
	seen := make(map[string]bool)
	for _, o := range cfg.Objectives {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("obs: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
	}
	return cfg.Objectives, nil
}

// burnRule is one multi-window burn-rate rule: fire when both the short
// and the long window burn at or above the threshold. The short window
// makes the alert fast to fire and fast to resolve; the long window
// keeps a brief blip from paging.
type burnRule struct {
	severity     string
	short, long  time.Duration
	defaultBurn  float64
	overrideBurn func(Objective) float64
}

// The canonical multi-window pairs: a paging rule on 5m/1h at 14.4×
// (exhausts a 30-day budget in ~2 days) and a ticket rule on 6h/3d at
// 1× (budget exactly on track to exhaust).
var burnRules = []burnRule{
	{severity: "page", short: 5 * time.Minute, long: time.Hour, defaultBurn: 14.4,
		overrideBurn: func(o Objective) float64 { return o.FastBurn }},
	{severity: "ticket", short: 6 * time.Hour, long: 72 * time.Hour, defaultBurn: 1,
		overrideBurn: func(o Objective) float64 { return o.SlowBurn }},
}

// Alert is one firing (or recently resolved) SLO alert.
type Alert struct {
	SLO      string `json:"slo"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	// SinceUnixMs is when the alert started firing.
	SinceUnixMs int64 `json:"sinceUnixMs"`
	// ResolvedUnixMs is set only on resolved alerts returned in history.
	ResolvedUnixMs int64 `json:"resolvedUnixMs,omitempty"`
	// BurnShort/BurnLong are the burn rates of the rule's two windows at
	// the last evaluation; Threshold is what they must both reach.
	BurnShort   float64 `json:"burnShort"`
	BurnLong    float64 `json:"burnLong"`
	Threshold   float64 `json:"threshold"`
	WindowShort string  `json:"windowShort"`
	WindowLong  string  `json:"windowLong"`
}

// Engine evaluates a set of objectives against a TSDB and tracks alert
// state across evaluations. Safe for concurrent use.
type Engine struct {
	db         *TSDB
	objectives []Objective

	mu       sync.Mutex
	active   map[string]*Alert // keyed "slo/severity"
	resolved []Alert           // most recent last, bounded
	onFire   func(Alert)
}

// NewEngine builds an engine over db. onFire (may be nil) is invoked,
// without the engine lock held, for each alert transition into the
// firing state — the server fans it out to logs, SSE streams and the
// profiler.
func NewEngine(db *TSDB, objectives []Objective, onFire func(Alert)) (*Engine, error) {
	if objectives == nil {
		objectives = DefaultObjectives()
	}
	for _, o := range objectives {
		if err := o.Validate(); err != nil {
			return nil, err
		}
	}
	return &Engine{
		db:         db,
		objectives: append([]Objective(nil), objectives...),
		active:     make(map[string]*Alert),
		onFire:     onFire,
	}, nil
}

// Objectives returns the configured objective set.
func (e *Engine) Objectives() []Objective {
	return append([]Objective(nil), e.objectives...)
}

// badFraction evaluates an objective's bad-event fraction over
// [from, to]; ok is false when the window lacks data (or is gated off).
func (e *Engine) badFraction(o Objective, from, to int64) (frac float64, ok bool) {
	switch o.Kind {
	case "availability":
		total, tok := e.db.Increase(sumPattern(o.Total), from, to)
		if !tok || total <= 0 || total < o.MinEvents {
			return 0, false
		}
		bad, _ := e.db.Increase(sumPattern(o.Bad), from, to)
		if bad > total {
			bad = total
		}
		return bad / total, true
	case "latency":
		return e.db.ViolationFraction(o.Series, from, to, func(v float64) bool {
			return v > o.TargetSeconds
		})
	case "rate_min":
		if o.ActivityGate != "" {
			if max, ok := e.db.Max(o.ActivityGate, from, to); !ok || max <= 0 {
				return 0, false
			}
		}
		inc, ok := e.db.Increase(o.Series, from, to)
		if !ok {
			return 0, false
		}
		if inc/(float64(to-from)/1000) < o.RatePerSecond {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// sumPattern joins a series list into one queryable pattern; the TSDB
// sums the union of matches of a NUL-joined multi-pattern.
func sumPattern(series []string) string {
	if len(series) == 1 {
		return series[0]
	}
	return multiPattern(series)
}

// Evaluate recomputes every objective's burn rates at now (unix
// milliseconds), fires and resolves alerts, and returns the active set.
// Windows that start before the store's oldest sample are clamped to
// the available history — a young store can still fire on a violent
// burn, it just cannot vouch for days it never saw.
func (e *Engine) Evaluate(now int64) []Alert {
	var fired []Alert
	e.mu.Lock()
	for _, o := range e.objectives {
		budget := 1 - o.Goal
		for _, rule := range burnRules {
			threshold := rule.defaultBurn
			if ov := rule.overrideBurn(o); ov > 0 {
				threshold = ov
			}
			key := o.Name + "/" + rule.severity
			burnShort, okS := e.burn(o, budget, now, rule.short)
			burnLong, okL := e.burn(o, budget, now, rule.long)
			firing := okS && okL && burnShort >= threshold && burnLong >= threshold
			cur, wasFiring := e.active[key]
			switch {
			case firing && !wasFiring:
				a := &Alert{
					SLO: o.Name, Severity: rule.severity,
					SinceUnixMs: now,
					BurnShort:   burnShort, BurnLong: burnLong, Threshold: threshold,
					WindowShort: rule.short.String(), WindowLong: rule.long.String(),
					Message: fmt.Sprintf("SLO %s burning at %.1fx/%.1fx budget (threshold %gx over %s/%s)",
						o.Name, burnShort, burnLong, threshold, rule.short, rule.long),
				}
				e.active[key] = a
				fired = append(fired, *a)
			case firing:
				cur.BurnShort, cur.BurnLong = burnShort, burnLong
			case wasFiring:
				cur.ResolvedUnixMs = now
				e.resolved = append(e.resolved, *cur)
				if len(e.resolved) > 64 {
					e.resolved = e.resolved[len(e.resolved)-64:]
				}
				delete(e.active, key)
			}
		}
	}
	out := e.activeLocked()
	onFire := e.onFire
	e.mu.Unlock()
	if onFire != nil {
		for _, a := range fired {
			onFire(a)
		}
	}
	return out
}

// burn computes one window's burn rate ending at now.
func (e *Engine) burn(o Objective, budget float64, now int64, window time.Duration) (float64, bool) {
	from := now - window.Milliseconds()
	if oldest := e.db.OldestUnixMs(); oldest > from {
		from = oldest
	}
	if from >= now {
		return 0, false
	}
	frac, ok := e.badFraction(o, from, now)
	if !ok || budget <= 0 {
		return 0, false
	}
	return frac / budget, true
}

// Alerts returns the currently firing alerts (stable order) and a
// bounded history of recently resolved ones.
func (e *Engine) Alerts() (active, resolved []Alert) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.activeLocked(), append([]Alert(nil), e.resolved...)
}

func (e *Engine) activeLocked() []Alert {
	out := make([]Alert, 0, len(e.active))
	for _, a := range e.active {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SLO != out[j].SLO {
			return out[i].SLO < out[j].SLO
		}
		return out[i].Severity < out[j].Severity
	})
	return out
}
