package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func mkTrace(id, endpoint string, status int, durMs float64, unixMs int64, sampled string) *StoredTrace {
	return &StoredTrace{
		ID: id, Endpoint: endpoint, Status: status,
		DurationMs: durMs, UnixMs: unixMs, Sampled: sampled,
		Trace: &telemetry.TraceJSON{
			ID:         id,
			DurationUs: int64(durMs * 1000),
			Root:       &telemetry.SpanJSON{Name: endpoint, DurationUs: int64(durMs * 1000)},
		},
	}
}

func TestTraceStorePutGetQuery(t *testing.T) {
	ts, err := OpenTraceStore("", 64)
	if err != nil {
		t.Fatal(err)
	}
	ts.Put(mkTrace("aaa", "v1_wcet", 200, 5, 1000, "header"))
	ts.Put(mkTrace("bbb", "v1_wcet", 200, 250, 2000, "slow"))
	ts.Put(mkTrace("ccc", "v2_analyze", 500, 30, 3000, "error"))

	if got := ts.Get("bbb"); got == nil || got.Sampled != "slow" {
		t.Fatalf("Get(bbb) = %+v", got)
	}
	if ts.Get("zzz") != nil {
		t.Fatal("Get(zzz) != nil")
	}

	all := ts.Query("", 0, 0, 0)
	if len(all) != 3 || all[0].ID != "ccc" {
		t.Fatalf("Query all = %+v", all)
	}
	if got := ts.Query("v1_wcet", 0, 0, 0); len(got) != 2 {
		t.Fatalf("endpoint filter = %+v", got)
	}
	if got := ts.Query("", 100, 0, 0); len(got) != 1 || got[0].ID != "bbb" {
		t.Fatalf("min_ms filter = %+v", got)
	}
	if got := ts.Query("", 0, 2500, 0); len(got) != 1 || got[0].ID != "ccc" {
		t.Fatalf("since filter = %+v", got)
	}
	if got := ts.Query("", 0, 0, 2); len(got) != 2 {
		t.Fatalf("limit = %+v", got)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts, _ := OpenTraceStore("", 16)
	for i := 0; i < 40; i++ {
		ts.Put(mkTrace(fmt.Sprintf("id%02d", i), "e", 200, 1, int64(i), "header"))
	}
	if ts.Len() != 16 {
		t.Fatalf("Len = %d, want 16", ts.Len())
	}
	if ts.Get("id00") != nil {
		t.Fatal("oldest trace not evicted")
	}
	if ts.Get("id39") == nil {
		t.Fatal("newest trace missing")
	}
}

func TestTraceStorePersistenceAndTornTail(t *testing.T) {
	dir := t.TempDir()
	ts, err := OpenTraceStore(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ts.Put(mkTrace(fmt.Sprintf("id%d", i), "v1_wcet", 200, 10, int64(1000*i), "slow")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate kill -9 (no Close) plus a torn final append.
	names, _ := filepath.Glob(filepath.Join(dir, "trace-*.jsonl"))
	if len(names) == 0 {
		t.Fatal("no segments on disk")
	}
	f, _ := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	fmt.Fprint(f, `{"t":9,"d":{"id":"torn"`)
	f.Close()

	ts2, err := OpenTraceStore(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ts2.Len() != 5 {
		t.Fatalf("replayed %d traces, want 5", ts2.Len())
	}
	got := ts2.Get("id3")
	if got == nil || got.Trace == nil || got.Trace.Root.Name != "v1_wcet" {
		t.Fatalf("replayed trace = %+v", got)
	}
	if ts2.Dropped == 0 {
		t.Fatal("torn tail not counted in Dropped")
	}
	ts2.Close()
}
