// Package obs is wcetd's forensic layer: it gives the live telemetry in
// internal/telemetry a memory. Four pieces share one durability idiom —
// the checksummed append-only line log with torn-tail truncation that
// internal/jobs proved out for campaign checkpoints:
//
//   - TSDB: an on-disk metrics time-series store. Every sampling tick the
//     server appends its full registry snapshot; tiered downsampling
//     (raw → 10s → 1m) and bounded retention keep both disk and memory
//     flat while holding enough history for multi-day SLO windows.
//   - Engine: a declarative SLO engine evaluating multi-window burn rates
//     (fast 5m/1h, slow 6h/3d) against the TSDB and surfacing alerts.
//   - TraceStore: a bounded on-disk ring of finished request traces
//     (client-requested, slow and error requests via tail-sampling),
//     searchable by endpoint/duration/time and retrievable by ID.
//   - Profiler: continuous CPU/heap pprof capture into a ring directory,
//     on a timer and immediately when an SLO starts burning — so the
//     profile from the incident exists without an operator attached.
//
// Everything survives kill -9: segment files are scanned on startup and
// cut back to their last verifiable line, exactly like job checkpoints.
package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segRecord is one verified line read back from a segment log.
type segRecord struct {
	T    int64
	Data json.RawMessage
}

// segLine is the wire form of one appended record: a timestamp, an
// opaque JSON payload, and a checksum binding the two. The checksum
// makes "did this line land intact?" a local decision — a torn append,
// a truncated tail or a flipped byte fails verification and the log is
// cut back to its last good prefix.
type segLine struct {
	T    int64           `json:"t"`
	Data json.RawMessage `json:"d"`
	Sum  string          `json:"sum"`
}

// segSum checksums a record: SHA-256 over "<t>:<data bytes>".
func segSum(t int64, data []byte) string {
	h := sha256.New()
	h.Write([]byte(strconv.FormatInt(t, 10)))
	h.Write([]byte{':'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// maxSegLine bounds one record; a full metrics snapshot or span tree is
// tens of kilobytes, so a few megabytes of slack is generous.
const maxSegLine = 4 << 20

// segLog is an append-only, checksummed, segmented line log — the
// storage primitive under the metrics TSDB and the trace store. Records
// append to the active segment; when it reaches maxLines the log rotates
// to a fresh segment and deletes the oldest beyond maxSegs, giving ring
// semantics with O(1) reclamation. A nil *segLog (memory-only mode)
// accepts appends and drops them.
//
// segLog is not itself synchronized; callers hold their own lock across
// append and close.
type segLog struct {
	dir      string
	prefix   string
	maxLines int
	maxSegs  int

	f     *os.File
	lines int
	seq   int      // sequence number of the active segment
	segs  []string // on-disk segment paths, oldest first (incl. active)
}

// segPath renders a segment file name; the zero-padded sequence number
// keeps lexical order equal to append order.
func (l *segLog) segPath(seq int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s-%08d.jsonl", l.prefix, seq))
}

// openSegLog opens (creating if needed) the segment log in dir and loads
// every verifiable record, oldest first. The tail of the final segment is
// truncated past its last good line so appends resume on a clean prefix;
// unverifiable suffixes of older segments are skipped. dropped counts
// discarded lines/fragments (diagnostics).
func openSegLog(dir, prefix string, maxLines, maxSegs int) (l *segLog, records []segRecord, dropped int, err error) {
	if maxLines < 1 {
		maxLines = 1
	}
	if maxSegs < 2 {
		maxSegs = 2
	}
	l = &segLog{dir: dir, prefix: prefix, maxLines: maxLines, maxSegs: maxSegs}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("obs: creating %s: %w", dir, err)
	}
	names, err := filepath.Glob(filepath.Join(dir, prefix+"-*.jsonl"))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("obs: listing segments: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		recs, good, drop, err := loadSegment(name)
		if err != nil {
			return nil, nil, 0, err
		}
		records = append(records, recs...)
		dropped += drop
		last := i == len(names)-1
		if last {
			// Cut the torn/tampered tail off the active segment so the
			// next append lands after a verified line.
			if fi, statErr := os.Stat(name); statErr == nil && fi.Size() > good {
				if err := os.Truncate(name, good); err != nil {
					return nil, nil, 0, fmt.Errorf("obs: truncating %s: %w", name, err)
				}
			}
			l.lines = len(recs)
			l.seq = segSeq(name, prefix)
		}
		l.segs = append(l.segs, name)
	}
	if len(l.segs) > 0 {
		f, err := os.OpenFile(l.segs[len(l.segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("obs: opening active segment: %w", err)
		}
		l.f = f
	}
	return l, records, dropped, nil
}

// segSeq parses the sequence number out of a segment path; malformed
// names (which Glob cannot produce) sort as zero.
func segSeq(path, prefix string) int {
	base := strings.TrimSuffix(filepath.Base(path), ".jsonl")
	n, _ := strconv.Atoi(strings.TrimPrefix(base, prefix+"-"))
	return n
}

// loadSegment reads one segment, verifying every line, stopping at the
// first unverifiable one. good is the byte offset past the last verified
// line.
func loadSegment(path string) (recs []segRecord, good int64, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("obs: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		raw, rerr := r.ReadBytes('\n')
		if rerr != nil {
			// io.EOF with no partial data: clean end. A final unterminated
			// fragment or a read error is an unverifiable tail.
			if len(raw) > 0 || rerr != io.EOF {
				dropped++
			}
			return recs, good, dropped, nil
		}
		line := raw[:len(raw)-1]
		var sl segLine
		if len(raw) > maxSegLine ||
			json.Unmarshal(line, &sl) != nil ||
			sl.Sum != segSum(sl.T, sl.Data) {
			dropped++
			return recs, good, dropped, nil
		}
		recs = append(recs, segRecord{T: sl.T, Data: sl.Data})
		good += int64(len(raw))
	}
}

// append writes one record to the active segment, rotating and reclaiming
// old segments as needed. A nil or memory-only log drops the record.
func (l *segLog) append(t int64, data []byte) error {
	if l == nil || l.dir == "" {
		return nil
	}
	if l.f == nil || l.lines >= l.maxLines {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	line, err := json.Marshal(segLine{T: t, Data: data, Sum: segSum(t, data)})
	if err != nil {
		return fmt.Errorf("obs: encoding record: %w", err)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("obs: appending record: %w", err)
	}
	l.lines++
	return nil
}

// rotate closes the active segment, opens the next one, and deletes the
// oldest segments beyond the retention bound.
func (l *segLog) rotate() error {
	if l.f != nil {
		_ = l.f.Sync()
		_ = l.f.Close()
		l.f = nil
	}
	l.seq++
	path := l.segPath(l.seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: creating segment %s: %w", path, err)
	}
	l.f = f
	l.lines = 0
	l.segs = append(l.segs, path)
	for len(l.segs) > l.maxSegs {
		_ = os.Remove(l.segs[0])
		l.segs = l.segs[1:]
	}
	return nil
}

// close syncs and closes the active segment.
func (l *segLog) close() {
	if l == nil || l.f == nil {
		return
	}
	_ = l.f.Sync()
	_ = l.f.Close()
	l.f = nil
}
