package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// TierSpec sizes one resolution tier of the metrics store.
type TierSpec struct {
	// Name is the tier's directory name ("raw", "10s", "1m").
	Name string
	// Step is the minimum spacing between retained samples; 0 retains
	// every appended sample (the raw tier).
	Step time.Duration
	// Retain caps the samples held (in memory and, via segment
	// reclamation, approximately on disk).
	Retain int
}

// DefaultTiers is the raw → 10s → 1m downsampling ladder. Retention is
// chosen so the slow SLO windows always have data: raw covers the last
// hour at a 5s sampling cadence, the 10s tier six hours, and the 1m tier
// three days — the slow burn-rate window.
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Name: "raw", Step: 0, Retain: 720},
		{Name: "10s", Step: 10 * time.Second, Retain: 2160},
		{Name: "1m", Step: time.Minute, Retain: 4320},
	}
}

// tier is one resolution level: a columnar in-memory window (shared
// timestamp slice, one float column per series, NaN marking absence)
// backed by a segment log. Columnar storage keeps three days of
// ~250-series history in tens of megabytes instead of the hundreds a
// map-per-sample layout would cost.
type tier struct {
	spec  TierSpec
	log   *segLog
	times []int64              // unix milliseconds, ascending
	cols  map[string][]float64 // len(col) == len(times); NaN = absent
	lastT int64
}

// wants reports whether a sample at t belongs in this tier.
func (tr *tier) wants(t int64) bool {
	return tr.spec.Step == 0 || len(tr.times) == 0 || t-tr.lastT >= tr.spec.Step.Milliseconds()
}

// add appends one sample to the in-memory window (the caller handles the
// segment log) and trims past retention.
func (tr *tier) add(t int64, sample map[string]float64) {
	tr.times = append(tr.times, t)
	tr.lastT = t
	n := len(tr.times)
	for name := range sample {
		if _, ok := tr.cols[name]; !ok {
			col := make([]float64, n-1, n)
			for i := range col {
				col[i] = math.NaN()
			}
			tr.cols[name] = col
		}
	}
	for name, col := range tr.cols {
		v, ok := sample[name]
		if !ok {
			v = math.NaN()
		}
		tr.cols[name] = append(col, v)
	}
	// Trim in chunks so retention costs amortized O(1) per append, not a
	// full copy every tick.
	if over := n - tr.spec.Retain; over > tr.spec.Retain/4+1 {
		tr.times = append(tr.times[:0:0], tr.times[over:]...)
		for name, col := range tr.cols {
			tr.cols[name] = append(col[:0:0], col[over:]...)
		}
	}
}

// TSDB is the on-disk metrics time-series store: the server appends its
// flattened registry snapshot every sampling tick, and queries read
// merged history across the downsampling tiers. Safe for concurrent use.
// A TSDB opened with an empty dir is memory-only (bounded, lost on
// restart); with a dir, history survives kill -9 — segments are scanned
// and tail-truncated on startup.
type TSDB struct {
	mu    sync.RWMutex
	tiers []*tier
	dir   string
	// Dropped counts unverifiable checkpoint lines discarded at startup
	// (torn appends, tampering) — exposed for the startup log line.
	Dropped int
}

// tsdbSample is the on-disk payload of one snapshot line.
type tsdbSample map[string]float64

// OpenTSDB opens (or creates) the store under dir with the given tiers
// (nil selects DefaultTiers). An empty dir is memory-only.
func OpenTSDB(dir string, specs []TierSpec) (*TSDB, error) {
	if specs == nil {
		specs = DefaultTiers()
	}
	db := &TSDB{dir: dir}
	for _, spec := range specs {
		if spec.Retain < 2 {
			spec.Retain = 2
		}
		tr := &tier{spec: spec, cols: make(map[string][]float64)}
		if dir != "" {
			maxLines := spec.Retain / 8
			if maxLines < 64 {
				maxLines = 64
			}
			log, recs, dropped, err := openSegLog(filepath.Join(dir, spec.Name), "seg", maxLines, spec.Retain/maxLines+2)
			if err != nil {
				return nil, err
			}
			tr.log = log
			db.Dropped += dropped
			for _, rec := range recs {
				var sample tsdbSample
				if json.Unmarshal(rec.Data, &sample) != nil {
					db.Dropped++
					continue
				}
				// Replay through the same dedup/ordering rules as live
				// appends; out-of-order records (clock skew across a
				// restart) are skipped rather than corrupting the window.
				if len(tr.times) > 0 && rec.T <= tr.lastT {
					continue
				}
				tr.add(rec.T, sample)
			}
		}
		db.tiers = append(db.tiers, tr)
	}
	return db, nil
}

// Append records one snapshot at t (unix milliseconds). Each tier keeps
// the sample if its downsampling step has elapsed; the raw tier keeps
// every one. Values that are NaN or Inf are dropped (they cannot be
// persisted as JSON and mean nothing on a chart).
func (db *TSDB) Append(t int64, snapshot map[string]float64) error {
	sample := make(tsdbSample, len(snapshot))
	for k, v := range snapshot {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		sample[k] = v
	}
	var data []byte
	var err error

	db.mu.Lock()
	defer db.mu.Unlock()
	for _, tr := range db.tiers {
		if len(tr.times) > 0 && t <= tr.lastT {
			continue // clock went backwards; keep the window monotone
		}
		if !tr.wants(t) {
			continue
		}
		if tr.log != nil && data == nil {
			if data, err = json.Marshal(sample); err != nil {
				return fmt.Errorf("obs: encoding snapshot: %w", err)
			}
		}
		if tr.log != nil {
			if aerr := tr.log.append(t, data); aerr != nil && err == nil {
				err = aerr
			}
		}
		tr.add(t, sample)
	}
	return err
}

// Series returns every series name present in any tier, sorted.
func (db *TSDB) Series() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := make(map[string]bool)
	for _, tr := range db.tiers {
		for name := range tr.cols {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Point is one (timestamp, value) sample; T is unix milliseconds.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Query returns the merged history of one series pattern over
// [from, to], coarse tiers filling where fine-tier retention has aged
// out and fine tiers winning where they overlap. A pattern ending in '*'
// sums every series sharing the prefix (e.g. "wcetd_requests_total*"
// across endpoints). step > 0 (milliseconds) reduces the result to the
// last sample of each step-aligned bucket. from/to of 0 mean
// "unbounded".
func (db *TSDB) Query(pattern string, from, to, step int64) []Point {
	if to == 0 {
		to = math.MaxInt64
	}
	db.mu.RLock()
	merged := make(map[int64]float64)
	for i := len(db.tiers) - 1; i >= 0; i-- { // coarsest first; finer overwrite
		tr := db.tiers[i]
		cols := matchCols(tr.cols, pattern)
		if len(cols) == 0 {
			continue
		}
		lo := sort.Search(len(tr.times), func(j int) bool { return tr.times[j] >= from })
		for j := lo; j < len(tr.times) && tr.times[j] <= to; j++ {
			sum, any := 0.0, false
			for _, col := range cols {
				if v := col[j]; !math.IsNaN(v) {
					sum += v
					any = true
				}
			}
			if any {
				merged[tr.times[j]] = sum
			}
		}
	}
	db.mu.RUnlock()

	pts := make([]Point, 0, len(merged))
	for t, v := range merged {
		pts = append(pts, Point{T: t, V: v})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	if step > 0 && len(pts) > 1 {
		reduced := pts[:0]
		for _, p := range pts {
			bucket := p.T / step
			if n := len(reduced); n > 0 && reduced[n-1].T/step == bucket {
				reduced[n-1] = p // last sample of the bucket wins
			} else {
				reduced = append(reduced, p)
			}
		}
		pts = reduced
	}
	return pts
}

// multiPattern joins several series patterns into one; Query sums the
// union of their matches. NUL can never appear in a metric name, so the
// joined form is unambiguous.
func multiPattern(patterns []string) string {
	return strings.Join(patterns, "\x00")
}

// matchCols resolves a series pattern against a tier's columns: an exact
// name, a trailing-'*' prefix match, or a NUL-joined union of either.
func matchCols(cols map[string][]float64, pattern string) [][]float64 {
	if strings.Contains(pattern, "\x00") {
		var out [][]float64
		for _, part := range strings.Split(pattern, "\x00") {
			out = append(out, matchCols(cols, part)...)
		}
		return out
	}
	if prefix, ok := strings.CutSuffix(pattern, "*"); ok {
		var out [][]float64
		for name, col := range cols {
			if strings.HasPrefix(name, prefix) {
				out = append(out, col)
			}
		}
		return out
	}
	if col, ok := cols[pattern]; ok {
		return [][]float64{col}
	}
	return nil
}

// Increase returns the growth of a (counter) series pattern over
// [from, to]: the sum of positive deltas between consecutive retained
// samples, so a counter reset across a restart contributes nothing
// instead of a huge negative. ok is false when fewer than two samples
// fall in the window.
func (db *TSDB) Increase(pattern string, from, to int64) (inc float64, ok bool) {
	pts := db.Query(pattern, from, to, 0)
	if len(pts) < 2 {
		return 0, false
	}
	for i := 1; i < len(pts); i++ {
		if d := pts[i].V - pts[i-1].V; d > 0 {
			inc += d
		}
	}
	return inc, true
}

// ViolationFraction returns the fraction of retained samples of a series
// pattern in [from, to] for which pred holds. ok is false with fewer
// than two samples (one sample is a point, not a window).
func (db *TSDB) ViolationFraction(pattern string, from, to int64, pred func(float64) bool) (frac float64, ok bool) {
	pts := db.Query(pattern, from, to, 0)
	if len(pts) < 2 {
		return 0, false
	}
	bad := 0
	for _, p := range pts {
		if pred(p.V) {
			bad++
		}
	}
	return float64(bad) / float64(len(pts)), true
}

// Max returns the maximum sample of a series pattern in [from, to]; ok
// is false when the window holds no samples.
func (db *TSDB) Max(pattern string, from, to int64) (max float64, ok bool) {
	pts := db.Query(pattern, from, to, 0)
	if len(pts) == 0 {
		return 0, false
	}
	max = math.Inf(-1)
	for _, p := range pts {
		if p.V > max {
			max = p.V
		}
	}
	return max, true
}

// OldestUnixMs returns the earliest retained timestamp (0 when empty).
func (db *TSDB) OldestUnixMs() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	oldest := int64(0)
	for _, tr := range db.tiers {
		if len(tr.times) > 0 && (oldest == 0 || tr.times[0] < oldest) {
			oldest = tr.times[0]
		}
	}
	return oldest
}

// Close syncs and closes the segment logs.
func (db *TSDB) Close() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, tr := range db.tiers {
		tr.log.close()
	}
}
