package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func acc(k Kind, addr uint32) Access { return Access{Kind: k, Addr: addr} }

func TestKindString(t *testing.T) {
	if Fetch.String() != "fetch" || Load.String() != "load" || Store.String() != "store" {
		t.Errorf("kind strings: %v %v %v", Fetch, Load, Store)
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("invalid kind string = %q", Kind(9))
	}
}

func TestAccessIsData(t *testing.T) {
	if acc(Fetch, 0).IsData() {
		t.Error("fetch reported as data")
	}
	if !acc(Load, 0).IsData() || !acc(Store, 0).IsData() {
		t.Error("load/store not reported as data")
	}
}

func TestSliceSource(t *testing.T) {
	accs := []Access{acc(Fetch, 1), acc(Load, 2), acc(Store, 3)}
	s := NewSlice(accs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, want := range accs {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("Next %d = %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("Next past end returned ok")
	}
	s.Reset()
	if got, ok := s.Next(); !ok || got != accs[0] {
		t.Errorf("after Reset, Next = %+v ok=%v", got, ok)
	}
}

func TestCollectResets(t *testing.T) {
	s := NewSlice([]Access{acc(Fetch, 1), acc(Load, 2)})
	s.Next() // advance; Collect must still see everything
	got := Collect(s)
	if len(got) != 2 {
		t.Fatalf("Collect returned %d accesses, want 2", len(got))
	}
	// Source must be rewound after Collect.
	if a, ok := s.Next(); !ok || a != acc(Fetch, 1) {
		t.Errorf("source not reset after Collect: %+v ok=%v", a, ok)
	}
}

func TestRepeatBounded(t *testing.T) {
	s := NewSlice([]Access{acc(Fetch, 1), acc(Load, 2)})
	r := NewRepeat(s, 3)
	got := Collect(r)
	if len(got) != 6 {
		t.Fatalf("3 passes over 2 accesses yielded %d", len(got))
	}
	for i, a := range got {
		want := acc(Fetch, 1)
		if i%2 == 1 {
			want = acc(Load, 2)
		}
		if a != want {
			t.Errorf("access %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestRepeatUnboundedKeepsProducing(t *testing.T) {
	s := NewSlice([]Access{acc(Fetch, 1)})
	r := NewRepeat(s, 0)
	for i := 0; i < 1000; i++ {
		if _, ok := r.Next(); !ok {
			t.Fatalf("unbounded repeat ended at %d", i)
		}
	}
}

func TestRepeatEmptyInnerTerminates(t *testing.T) {
	r := NewRepeat(NewSlice(nil), 0)
	if _, ok := r.Next(); ok {
		t.Error("repeat over empty source produced an access")
	}
}

func TestRepeatReset(t *testing.T) {
	r := NewRepeat(NewSlice([]Access{acc(Fetch, 1)}), 2)
	if got := len(Collect(r)); got != 2 {
		t.Fatalf("first drain = %d", got)
	}
	if got := len(Collect(r)); got != 2 {
		t.Errorf("drain after reset = %d, want 2", got)
	}
}

func TestConcat(t *testing.T) {
	c := NewConcat(
		NewSlice([]Access{acc(Fetch, 1)}),
		NewSlice(nil),
		NewSlice([]Access{acc(Load, 2), acc(Store, 3)}),
	)
	got := Collect(c)
	if len(got) != 3 || got[0].Addr != 1 || got[1].Addr != 2 || got[2].Addr != 3 {
		t.Errorf("Concat yielded %+v", got)
	}
	// Second drain after the implicit reset must match.
	if again := Collect(c); len(again) != 3 {
		t.Errorf("Concat after reset yielded %d", len(again))
	}
}

func TestAnalyze(t *testing.T) {
	accs := []Access{
		{Gap: 5, Kind: Fetch, Addr: platform.PFlash0Base},
		{Gap: 2, Kind: Fetch, Addr: platform.PSPRAddr(0, 0)},
		{Kind: Load, Addr: platform.LMUBase},
		{Kind: Store, Addr: platform.Uncached(platform.LMUBase)},
		{Kind: Load, Addr: platform.DFlashBase},
		{Kind: Load, Addr: 0xDEAD_0000}, // unmapped
	}
	st := Analyze(NewSlice(accs))
	if st.Fetches != 2 || st.Loads != 3 || st.Stores != 1 {
		t.Errorf("counts: %+v", st)
	}
	if st.GapCycles != 7 {
		t.Errorf("GapCycles = %d, want 7", st.GapCycles)
	}
	if st.Scratchpad != 1 {
		t.Errorf("Scratchpad = %d, want 1", st.Scratchpad)
	}
	if st.Invalid != 1 {
		t.Errorf("Invalid = %d, want 1", st.Invalid)
	}
	if st.SRI[platform.TargetOp{Target: platform.PF0, Op: platform.Code}] != 1 {
		t.Errorf("pf0/co = %d, want 1", st.SRI[platform.TargetOp{Target: platform.PF0, Op: platform.Code}])
	}
	if st.SRI[platform.TargetOp{Target: platform.LMU, Op: platform.Data}] != 2 {
		t.Errorf("lmu/da = %d, want 2", st.SRI[platform.TargetOp{Target: platform.LMU, Op: platform.Data}])
	}
	if st.SRI[platform.TargetOp{Target: platform.DFL, Op: platform.Data}] != 1 {
		t.Errorf("dfl/da = %d, want 1", st.SRI[platform.TargetOp{Target: platform.DFL, Op: platform.Data}])
	}
	if st.Total() != 6 {
		t.Errorf("Total = %d", st.Total())
	}
	if s := st.String(); s == "" {
		t.Error("empty Stats string")
	}
}

// Property: Collect(NewRepeat(s, n)) has exactly n*len(s) accesses for any
// non-empty s and small n.
func TestRepeatLengthProperty(t *testing.T) {
	f := func(raw []byte, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := int(nRaw%4) + 1
		accs := make([]Access, len(raw))
		for i, b := range raw {
			accs[i] = Access{Kind: Kind(int(b) % 3), Addr: uint32(b)}
		}
		r := NewRepeat(NewSlice(accs), n)
		return len(Collect(r)) == n*len(accs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a Source yields the same stream after Reset.
func TestDeterminismProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		accs := make([]Access, len(raw))
		for i, v := range raw {
			accs[i] = Access{Kind: Kind(int(v) % 3), Addr: v, Gap: int64(v % 16)}
		}
		s := NewSlice(accs)
		first := Collect(s)
		second := Collect(s)
		if len(first) != len(second) {
			return false
		}
		for i := range first {
			if first[i] != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
