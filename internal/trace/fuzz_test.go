package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode checks the decoder is total: arbitrary input either parses or
// returns an error, never panics, and whatever parses re-encodes and
// re-parses to the same stream.
func FuzzDecode(f *testing.F) {
	f.Add("0 fetch 0x80000000\n")
	f.Add("12 load 0xB0000010\n3 store 0xAF000000\n")
	f.Add("# comment\n\n")
	f.Add("garbage")
	f.Add("0 fetch 0x80000000 extra\n")
	f.Add("-3 load 0x0\n")
	f.Fuzz(func(t *testing.T, in string) {
		src, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, src); err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		a, b := Collect(src), Collect(again)
		if len(a) != len(b) {
			t.Fatalf("round trip changed length: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed access %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}
