package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace text format is one access per line:
//
//	<gap> <kind> <addr>
//
// with gap a non-negative decimal cycle count, kind one of fetch/load/
// store, and addr a hexadecimal address with 0x prefix. Lines starting
// with '#' and blank lines are ignored. The format exists so traces can be
// captured from one tool run (aurixsim -record) and replayed in another,
// and so external trace generators can feed the simulator.

// Encode writes every access of src to w in the text format, resetting the
// source before and after.
func Encode(w io.Writer, src Source) error {
	src.Reset()
	defer src.Reset()
	bw := bufio.NewWriter(w)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		kind, err := kindName(a.Kind)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%d %s 0x%08x\n", a.Gap, kind, a.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func kindName(k Kind) (string, error) {
	switch k {
	case Fetch:
		return "fetch", nil
	case Load:
		return "load", nil
	case Store:
		return "store", nil
	default:
		return "", fmt.Errorf("trace: cannot encode kind %d", int(k))
	}
}

// Decode parses a text-format trace into an in-memory Source.
func Decode(r io.Reader) (*Slice, error) {
	var accs []Access
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want `gap kind addr`, got %q", lineNo, line)
		}
		gap, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[0])
		}
		var kind Kind
		switch fields[1] {
		case "fetch":
			kind = Fetch
		case "load":
			kind = Load
		case "store":
			kind = Store
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[2])
		}
		accs = append(accs, Access{Gap: gap, Kind: kind, Addr: uint32(addr)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return NewSlice(accs), nil
}
