package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := NewSlice([]Access{
		{Gap: 0, Kind: Fetch, Addr: 0x80000000},
		{Gap: 12, Kind: Load, Addr: 0xB0000010},
		{Gap: 3, Kind: Store, Addr: 0xAF000000},
	})
	var buf bytes.Buffer
	if err := Encode(&buf, src); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, want := Collect(dec), Collect(src)
	if len(got) != len(want) {
		t.Fatalf("decoded %d accesses, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEncodeFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, NewSlice([]Access{{Gap: 5, Kind: Load, Addr: 0x9000_0040}})); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "5 load 0x90000040\n"; got != want {
		t.Errorf("encoded %q, want %q", got, want)
	}
}

func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n 3 fetch 0x80000000 \n# trailing\n"
	dec, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	accs := Collect(dec)
	if len(accs) != 1 || accs[0] != (Access{Gap: 3, Kind: Fetch, Addr: 0x80000000}) {
		t.Errorf("decoded %+v", accs)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "3 fetch\n",
		"bad gap":        "x fetch 0x0\n",
		"negative gap":   "-1 fetch 0x0\n",
		"bad kind":       "0 jump 0x0\n",
		"bad addr":       "0 fetch zz\n",
		"addr overflow":  "0 fetch 0x1ffffffff\n",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestEncodeRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, NewSlice([]Access{{Kind: Kind(9)}})); err == nil {
		t.Error("bad kind encoded")
	}
}

// Property: Decode(Encode(x)) == x for arbitrary access streams.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, gaps []uint8) bool {
		accs := make([]Access, len(raw))
		for i, v := range raw {
			g := int64(0)
			if i < len(gaps) {
				g = int64(gaps[i])
			}
			accs[i] = Access{Gap: g, Kind: Kind(int(v) % 3), Addr: v}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, NewSlice(accs)); err != nil {
			return false
		}
		dec, err := Decode(&buf)
		if err != nil {
			return false
		}
		got := Collect(dec)
		if len(got) != len(accs) {
			return false
		}
		for i := range got {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
