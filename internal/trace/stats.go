package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/platform"
)

// Stats summarises a trace: how many accesses of each kind it contains and
// how its SRI-visible addresses distribute over targets. Scratchpad
// accesses never reach the SRI and are tallied separately.
type Stats struct {
	Fetches, Loads, Stores int64
	// GapCycles is the total core-internal compute time in the trace.
	GapCycles int64
	// Scratchpad counts accesses that resolve to core-local memories.
	Scratchpad int64
	// SRI counts accesses whose address decodes to an SRI target, indexed
	// by (target, op). Note these are *address-level* counts: with caches
	// enabled the number of SRI transactions the core actually issues is
	// lower (misses only).
	SRI map[platform.TargetOp]int64
	// Invalid counts accesses to unmapped addresses.
	Invalid int64
}

// Analyze computes Stats for a source, resetting it before and after.
func Analyze(src Source) Stats {
	src.Reset()
	defer src.Reset()
	st := Stats{SRI: make(map[platform.TargetOp]int64)}
	for {
		a, ok := src.Next()
		if !ok {
			return st
		}
		st.GapCycles += a.Gap
		switch a.Kind {
		case Fetch:
			st.Fetches++
		case Load:
			st.Loads++
		case Store:
			st.Stores++
		}
		r := platform.Decode(a.Addr)
		switch r.Kind {
		case platform.RegionPSPR, platform.RegionDSPR:
			st.Scratchpad++
		case platform.RegionSRI:
			op := platform.Code
			if a.IsData() {
				op = platform.Data
			}
			st.SRI[platform.TargetOp{Target: r.Target, Op: op}]++
		default:
			st.Invalid++
		}
	}
}

// Total returns the total number of accesses.
func (s Stats) Total() int64 { return s.Fetches + s.Loads + s.Stores }

// String renders the stats in a stable, human-readable layout.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses=%d (fetch=%d load=%d store=%d) gap=%d scratchpad=%d invalid=%d",
		s.Total(), s.Fetches, s.Loads, s.Stores, s.GapCycles, s.Scratchpad, s.Invalid)
	keys := make([]platform.TargetOp, 0, len(s.SRI))
	for k := range s.SRI {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Target != keys[j].Target {
			return keys[i].Target < keys[j].Target
		}
		return keys[i].Op < keys[j].Op
	})
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, s.SRI[k])
	}
	return b.String()
}
