// Package trace represents the memory-access behaviour of a task as a
// deterministic stream of typed accesses. Traces are what the simulated
// TriCore cores execute: each access is either an instruction fetch or a
// data load/store at a physical address, optionally preceded by a number of
// core-internal compute cycles during which the pipeline does not touch
// memory.
//
// Traces stand in for the compiled automotive binaries the paper runs on
// real silicon: the contention models only observe a task through its DSU
// counters, so any trace reproducing the same access-pattern shape (which
// targets, which operation mix, how dense in time) exercises the identical
// model code paths.
package trace

import "fmt"

// Kind is the type of one trace access.
type Kind int

const (
	// Fetch is an instruction fetch.
	Fetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Access is one element of a task's memory-access stream.
type Access struct {
	// Gap is the number of core-internal execution cycles spent before
	// this access issues (time with no memory activity beyond what the
	// pipeline hides).
	Gap int64
	// Kind says whether this is a fetch, load or store.
	Kind Kind
	// Addr is the physical address accessed.
	Addr uint32
}

// IsData reports whether the access is a load or store.
func (a Access) IsData() bool { return a.Kind == Load || a.Kind == Store }

// Source produces a task's access stream. Implementations must be
// deterministic: two passes over a fresh Source yield the same stream.
type Source interface {
	// Next returns the next access. ok is false when the stream is
	// exhausted.
	Next() (a Access, ok bool)
	// Reset rewinds the stream to its beginning.
	Reset()
}

// Slice is an in-memory Source over a fixed access sequence.
type Slice struct {
	accs []Access
	pos  int
}

// NewSlice wraps a fixed access sequence in a Source.
func NewSlice(accs []Access) *Slice { return &Slice{accs: accs} }

// Next implements Source.
func (s *Slice) Next() (Access, bool) {
	if s.pos >= len(s.accs) {
		return Access{}, false
	}
	a := s.accs[s.pos]
	s.pos++
	return a, true
}

// Reset implements Source.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total number of accesses in the slice.
func (s *Slice) Len() int { return len(s.accs) }

// Collect drains src into a slice, resetting it first and afterwards. It is
// intended for tests and for trace inspection tools; production simulation
// streams accesses without materialising them.
func Collect(src Source) []Access {
	src.Reset()
	var out []Access
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	src.Reset()
	return out
}

// Repeat wraps a Source so that it restarts from the beginning each time it
// is exhausted, for up to n full passes; n <= 0 means repeat forever.
// Contender tasks are run as unbounded repeats so they keep generating SRI
// load for as long as the task under analysis executes.
type Repeat struct {
	src    Source
	n      int
	passes int
}

// NewRepeat returns a repeating view of src.
func NewRepeat(src Source, n int) *Repeat { return &Repeat{src: src, n: n} }

// Next implements Source.
func (r *Repeat) Next() (Access, bool) {
	for {
		if a, ok := r.src.Next(); ok {
			return a, true
		}
		r.passes++
		if r.n > 0 && r.passes >= r.n {
			return Access{}, false
		}
		r.src.Reset()
		// Guard against an empty inner source, which would spin forever.
		if a, ok := r.src.Next(); ok {
			return a, true
		}
		return Access{}, false
	}
}

// Reset implements Source.
func (r *Repeat) Reset() {
	r.passes = 0
	r.src.Reset()
}

// Concat chains several sources into one stream.
type Concat struct {
	srcs []Source
	cur  int
}

// NewConcat returns a Source that yields every access of each source in
// order.
func NewConcat(srcs ...Source) *Concat { return &Concat{srcs: srcs} }

// Next implements Source.
func (c *Concat) Next() (Access, bool) {
	for c.cur < len(c.srcs) {
		if a, ok := c.srcs[c.cur].Next(); ok {
			return a, true
		}
		c.cur++
	}
	return Access{}, false
}

// Reset implements Source.
func (c *Concat) Reset() {
	c.cur = 0
	for _, s := range c.srcs {
		s.Reset()
	}
}
