package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/tabstore"
	"repro/wcet"
)

var lat = platform.TC27xLatencies()

// newStore builds a store serving the TC27x table under the default ref.
func newStore(t *testing.T) *tabstore.Store {
	t.Helper()
	store, err := tabstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	id, err := store.Put(lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetRef("tc27x/default", id); err != nil {
		t.Fatal(err)
	}
	return store
}

// smallSpec is a fast 6-cell grid (2 scenarios × 3 levels, fTC only).
func smallSpec() Spec {
	return Spec{Grid: experiments.GridSpec{
		AppIterations: 60,
		Models:        []string{"ftc"},
	}}
}

// referenceArtifact computes the uninterrupted in-process artifact for a
// spec — the bytes a job must reproduce exactly.
func referenceArtifact(t *testing.T, store *tabstore.Store, spec Spec) []byte {
	t.Helper()
	grid, err := spec.Grid.Compile(store, wcet.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := experiments.NewRunner(nil).Sweep(context.Background(), lat, grid)
	if err != nil {
		t.Fatal(err)
	}
	data, err := experiments.EncodeArtifact(experiments.WirePoints(pts))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// open builds a manager over dir.
func open(t *testing.T, dir string, store *tabstore.Store) *Manager {
	t.Helper()
	m, err := Open(Config{Dir: dir, Engine: campaign.New(4), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d cells)", id, st.State, st.DoneCells, st.TotalCells)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func closeNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestJobLifecycle(t *testing.T) {
	store := newStore(t)
	dir := t.TempDir()
	m := open(t, dir, store)
	defer closeNow(t, m)

	spec := smallSpec()
	st, err := m.Submit(spec, "tc27x/default")
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalCells != 6 {
		t.Fatalf("total cells %d, want 6", st.TotalCells)
	}
	if st.BaseTable == "" {
		t.Fatal("base table not pinned")
	}
	final := waitState(t, m, st.ID, StateDone)
	if final.DoneCells != 6 || final.Artifact == "" {
		t.Fatalf("final status %+v", final)
	}

	data, artID, err := m.Artifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if artID != final.Artifact {
		t.Fatalf("artifact id mismatch: %s vs %s", artID, final.Artifact)
	}
	if want := referenceArtifact(t, store, spec); !bytes.Equal(data, want) {
		t.Fatal("job artifact differs from uninterrupted in-process sweep")
	}

	list := m.List()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}
}

func TestJobEventsAndSubscribeReplay(t *testing.T) {
	store := newStore(t)
	m := open(t, t.TempDir(), store)
	defer closeNow(t, m)

	st, err := m.Submit(smallSpec(), "tc27x/default")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)

	replay, ch, cancel, err := m.Subscribe(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(replay) != 7 { // 6 cells + terminal
		t.Fatalf("replay length %d, want 7", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	last := replay[len(replay)-1]
	if last.Type != "state" || last.State != StateDone || last.Artifact == "" {
		t.Fatalf("terminal event %+v", last)
	}
	if _, open := <-ch; open {
		t.Fatal("channel of a terminal job should be closed")
	}

	// Resume mid-stream: afterSeq 3 replays exactly events 4..7.
	replay, _, cancel2, err := m.Subscribe(st.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	if len(replay) != 4 || replay[0].Seq != 4 {
		t.Fatalf("partial replay %+v", replay)
	}

	if _, _, _, err := m.Subscribe("j-nope", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job subscribe: %v", err)
	}
}

// doctorToRunning rewinds a completed job on disk to look interrupted:
// state back to running, artifact forgotten, checkpoint log cut to
// keepCells whole lines plus an optional torn tail fragment.
func doctorToRunning(t *testing.T, dir, id string, keepCells int, tornTail []byte) {
	t.Helper()
	metaPath := filepath.Join(dir, id, "job.json")
	var meta Meta
	if err := readJSONFile(metaPath, &meta); err != nil {
		t.Fatal(err)
	}
	meta.State = StateRunning
	meta.Artifact = ""
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(dir, id, "cells.jsonl")
	raw, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	var keep []byte
	kept := 0
	for _, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 || kept >= keepCells {
			break
		}
		keep = append(keep, line...)
		kept++
	}
	if kept < keepCells {
		t.Fatalf("checkpoint only has %d lines, wanted to keep %d", kept, keepCells)
	}
	keep = append(keep, tornTail...)
	if err := os.WriteFile(ckptPath, keep, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runToDone submits spec and returns (job id, artifact bytes).
func runToDone(t *testing.T, m *Manager, spec Spec) (string, []byte) {
	t.Helper()
	st, err := m.Submit(spec, "tc27x/default")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	data, _, err := m.Artifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return st.ID, data
}

// TestResumeDeterministic drives the resume contract deterministically:
// a job interrupted at every possible checkpoint depth — including with
// a torn trailing write — resumes to a byte-identical artifact.
func TestResumeDeterministic(t *testing.T) {
	store := newStore(t)
	dir := t.TempDir()
	m := open(t, dir, store)
	spec := smallSpec()
	id, want := runToDone(t, m, spec)
	closeNow(t, m)

	// Interrupt after 2 cells, with a torn half-line tail.
	doctorToRunning(t, dir, id, 2, []byte(`{"index":5,"point":{"scena`))

	m2 := open(t, dir, store)
	st := waitState(t, m2, id, StateDone)
	if st.DoneCells != 6 {
		t.Fatalf("resumed job has %d cells", st.DoneCells)
	}
	got, _, err := m2.Artifact(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed artifact differs from uninterrupted artifact")
	}
	closeNow(t, m2)
}

// TestResumeFromTamperedCheckpoint: a flipped byte inside a checkpointed
// cell fails its checksum; the loader truncates there and the job still
// completes with the right artifact.
func TestResumeFromTamperedCheckpoint(t *testing.T) {
	store := newStore(t)
	dir := t.TempDir()
	m := open(t, dir, store)
	id, want := runToDone(t, m, smallSpec())
	closeNow(t, m)

	doctorToRunning(t, dir, id, 6, nil)
	ckptPath := filepath.Join(dir, id, "cells.jsonl")
	raw, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the third line's payload.
	lines := bytes.SplitAfter(raw, []byte("\n"))
	target := lines[2]
	i := bytes.Index(target, []byte("isolationCycles\":"))
	if i < 0 {
		t.Fatal("no isolationCycles in checkpoint line")
	}
	i += len("isolationCycles\":")
	target[i] = '1' + (target[i]-'0'+1)%9 // guaranteed different digit
	if err := os.WriteFile(ckptPath, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := open(t, dir, store)
	// Only the 2 lines before the tampered one survive.
	if st, err := m2.Get(id); err != nil || st.DoneCells != 2 {
		t.Fatalf("after tamper: %+v, %v", st, err)
	}
	waitState(t, m2, id, StateDone)
	got, _, err := m2.Artifact(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact after tampered-checkpoint resume differs")
	}
	closeNow(t, m2)
}

// TestTamperedArtifactNeverServed: a modified or missing results file
// fails with ErrArtifactCorrupt instead of serving bad bytes.
func TestTamperedArtifactNeverServed(t *testing.T) {
	store := newStore(t)
	dir := t.TempDir()
	m := open(t, dir, store)
	defer closeNow(t, m)
	id, _ := runToDone(t, m, smallSpec())

	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	artPath := filepath.Join(dir, "artifacts", st.Artifact+".json")
	raw, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(artPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Artifact(id); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("tampered artifact served: %v", err)
	}

	if err := os.Remove(artPath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Artifact(id); !errors.Is(err, ErrArtifactCorrupt) {
		t.Fatalf("missing artifact: %v", err)
	}
}

// TestCancel: DELETE semantics — a canceled job goes terminal and stays
// canceled across a restart instead of resuming.
func TestCancel(t *testing.T) {
	store := newStore(t)
	dir := t.TempDir()
	m := open(t, dir, store)
	// A slow enough grid to cancel mid-flight: default two-model cells.
	st, err := m.Submit(Spec{Grid: experiments.GridSpec{AppIterations: 2000}}, "tc27x/default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, st.ID, StateCanceled)
	if final.Artifact != "" {
		t.Fatal("canceled job has an artifact")
	}
	// Cancel again: idempotent.
	if st2, err := m.Cancel(st.ID); err != nil || st2.State != StateCanceled {
		t.Fatalf("second cancel: %+v, %v", st2, err)
	}
	closeNow(t, m)

	m2 := open(t, dir, store)
	defer closeNow(t, m2)
	if got, err := m2.Get(st.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("canceled job after restart: %+v, %v", got, err)
	}
}

func TestSubmitValidation(t *testing.T) {
	store := newStore(t)
	m, err := Open(Config{Dir: "", Engine: campaign.New(2), Store: store, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	// Invalid grid: typed rejection, pre-admission.
	var ge *experiments.GridError
	if _, err := m.Submit(Spec{Grid: experiments.GridSpec{Scenarios: []int{}}}, "tc27x/default"); !errors.As(err, &ge) {
		t.Fatalf("empty grid: %v", err)
	}
	if _, err := m.Submit(Spec{Grid: experiments.GridSpec{Models: []string{"nope"}}}, "tc27x/default"); err == nil {
		t.Fatal("unknown model accepted")
	}
	// Unknown base table.
	if _, err := m.Submit(Spec{Table: "nope"}, "tc27x/default"); err == nil || !strings.Contains(err.Error(), "unknown table ref") {
		t.Fatalf("unknown base table: %v", err)
	}

	// Admission bound.
	st, err := m.Submit(Spec{Grid: experiments.GridSpec{AppIterations: 2000}}, "tc27x/default")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(smallSpec(), "tc27x/default"); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("over max-active submit: %v", err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateCanceled)
	// Capacity freed: the next submission admits.
	st2, err := m.Submit(smallSpec(), "tc27x/default")
	if err != nil {
		t.Fatalf("post-cancel submit: %v", err)
	}
	waitState(t, m, st2.ID, StateDone)
}

// TestInMemoryManager: Dir-less managers serve artifacts from memory.
func TestInMemoryManager(t *testing.T) {
	store := newStore(t)
	m, err := Open(Config{Engine: campaign.New(4), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	id, data := runToDone(t, m, smallSpec())
	if want := referenceArtifact(t, store, smallSpec()); !bytes.Equal(data, want) {
		t.Fatal("in-memory artifact differs")
	}
	if _, err := m.Get(id); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointLoader unit-drives the torn/tampered tail handling.
func TestCheckpointLoader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cells.jsonl")

	pt := experiments.PointJSON{Scenario: 1, Level: "H-Load", IsolationCycles: 42}
	l0, err := encodeCheckpointLine(0, pt)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := encodeCheckpointLine(1, pt)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: half of the second line.
	if err := os.WriteFile(path, append(append([]byte{}, l0...), l1[:len(l1)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	load, err := loadCheckpoint(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(load.points) != 1 || load.dropped == 0 || load.goodBytes != int64(len(l0)) {
		t.Fatalf("torn tail load: %+v", load)
	}

	// Out-of-range index: rejected.
	if err := os.WriteFile(path, append(append([]byte{}, l0...), l1...), 0o644); err != nil {
		t.Fatal(err)
	}
	load, err = loadCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(load.points) != 1 || load.dropped == 0 {
		t.Fatalf("out-of-range load: %+v", load)
	}

	// Missing file: empty log.
	load, err = loadCheckpoint(filepath.Join(dir, "nope.jsonl"), 6)
	if err != nil || len(load.points) != 0 || load.goodBytes != 0 {
		t.Fatalf("missing file load: %+v, %v", load, err)
	}
}
