package jobs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/experiments"
)

// checkpointLine is one completed cell on disk: the cell's grid index,
// its wire-form result, and a checksum binding the two. The checksum
// turns "did this line land intact?" into a local decision: a torn
// append, a truncated tail or a flipped byte fails verification and the
// log is cut back to its last good prefix.
type checkpointLine struct {
	Index int             `json:"index"`
	Point json.RawMessage `json:"point"`
	Sum   string          `json:"sum"`
}

// lineSum checksums a cell record: SHA-256 over "<index>:<point bytes>".
func lineSum(index int, point []byte) string {
	h := sha256.New()
	h.Write([]byte(strconv.Itoa(index)))
	h.Write([]byte{':'})
	h.Write(point)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeCheckpointLine renders one cell record, newline-terminated.
func encodeCheckpointLine(index int, point experiments.PointJSON) ([]byte, error) {
	raw, err := json.Marshal(point)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding checkpoint point: %w", err)
	}
	line, err := json.Marshal(checkpointLine{Index: index, Point: raw, Sum: lineSum(index, raw)})
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding checkpoint line: %w", err)
	}
	return append(line, '\n'), nil
}

// maxCheckpointLine bounds one cell record; a grid cell's wire form is a
// handful of estimates, so a megabyte of slack is generous.
const maxCheckpointLine = 1 << 20

// checkpointLoad is the result of reading a checkpoint log.
type checkpointLoad struct {
	// points maps grid index to the checkpointed result, last write wins
	// (duplicates cannot disagree — cells are deterministic — but the
	// map also dedups a line replayed across a crashed append).
	points map[int]experiments.PointJSON
	// order lists cell indices in log order (the replayable event log).
	order []int
	// goodBytes is the offset of the end of the last verified line;
	// everything past it is torn or tampered and must be truncated
	// before appending resumes.
	goodBytes int64
	// dropped counts discarded trailing lines/bytes (diagnostics).
	dropped int
}

// loadCheckpoint reads a checkpoint log, verifying every line. It stops
// at the first unverifiable line — malformed JSON, checksum mismatch,
// out-of-range index or a missing trailing newline (a torn append) —
// and reports the verified prefix; the cells past it simply re-solve.
// A missing file is an empty log.
func loadCheckpoint(path string, totalCells int) (checkpointLoad, error) {
	load := checkpointLoad{points: make(map[int]experiments.PointJSON)}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return load, nil
	}
	if err != nil {
		return load, fmt.Errorf("jobs: opening checkpoint: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 64*1024)
	for {
		lineBytes, err := readLine(r)
		if err != nil {
			// io.EOF with no partial data: clean end. Anything else —
			// a partial unterminated line, an overlong line, a read
			// error — is an unverifiable tail.
			if len(lineBytes) > 0 || err != io.EOF {
				load.dropped++
			}
			return load, nil
		}
		var line checkpointLine
		ok := json.Unmarshal(lineBytes, &line) == nil &&
			line.Sum == lineSum(line.Index, line.Point) &&
			line.Index >= 0 && line.Index < totalCells
		if ok {
			var pt experiments.PointJSON
			if json.Unmarshal(line.Point, &pt) != nil {
				ok = false
			} else {
				if _, dup := load.points[line.Index]; !dup {
					load.order = append(load.order, line.Index)
				}
				load.points[line.Index] = pt
			}
		}
		if !ok {
			load.dropped++
			return load, nil
		}
		// +1 for the newline readLine stripped.
		load.goodBytes += int64(len(lineBytes)) + 1
	}
}

// readLine returns the next newline-terminated line without its
// terminator. A final unterminated fragment is returned with a non-nil
// error so the caller treats it as torn; an empty file yields (nil,
// io.EOF).
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err == nil {
		if len(line) > maxCheckpointLine {
			return line, fmt.Errorf("jobs: checkpoint line over %d bytes", maxCheckpointLine)
		}
		return line[:len(line)-1], nil
	}
	return line, err
}

// writeFileAtomic persists data at path via the tabstore idiom: write to
// a temp file in the same directory, then rename over the target, so
// readers observe either the old content or the new, never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("jobs: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("jobs: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("jobs: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("jobs: renaming into %s: %w", path, err)
	}
	return nil
}

// artifactID content-addresses an artifact.
func artifactID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
