package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/tabstore"
	"repro/internal/telemetry"
	"repro/wcet"
)

// Process-wide job telemetry on the default registry (exposed by wcetd's
// GET /metrics and the dashboard's jobs tiles).
var (
	mSubmitted = telemetry.Default().Counter("jobs_submitted_total",
		"Campaign jobs admitted.")
	mResumed = telemetry.Default().Counter("jobs_resumed_total",
		"Campaign jobs resumed from checkpoints after a restart.")
	mFinished = telemetry.Default().CounterVec("jobs_finished_total",
		"Campaign jobs reaching a terminal state.", "state")
	mCellsSolved = telemetry.Default().Counter("jobs_cells_solved_total",
		"Campaign-job cells solved (checkpoint appends).")
	mCellsRestored = telemetry.Default().Counter("jobs_cells_restored_total",
		"Campaign-job cells restored from checkpoints instead of re-solved.")
	mActive = telemetry.Default().Gauge("jobs_active",
		"Campaign jobs currently pending or running.")
)

// Config configures a Manager.
type Config struct {
	// Dir is the persistence root (conventionally next to the tabstore
	// data dir). Empty runs the manager in-memory: jobs work but nothing
	// survives a restart.
	Dir string
	// MaxActive bounds concurrently admitted (pending + running) jobs;
	// <= 0 selects 16. Admitted jobs all make progress — their cells
	// contend for the engine's background slots — so the bound caps
	// queued work, not parallelism, which the engine already bounds.
	MaxActive int
	// Engine is the shared campaign engine; job cells run on it at
	// Background priority. Nil gets a private engine (tests).
	Engine *campaign.Engine
	// Store resolves base tables and grid table refs. Required.
	Store *tabstore.Store
	// Registry resolves model names; nil selects wcet.DefaultRegistry.
	Registry *wcet.Registry
	// Logger receives job lifecycle logs; nil selects slog.Default.
	Logger *slog.Logger
}

// subscriber is one live progress stream.
type subscriber struct {
	ch     chan Event
	closed bool
}

// job is the in-memory state of one campaign job.
type job struct {
	mu     sync.Mutex
	meta   Meta
	points map[int]experiments.PointJSON
	log    []Event
	subs   map[*subscriber]struct{}
	cancel context.CancelFunc
	// artifact holds the encoded results when the manager is in-memory
	// (no Dir to read them back from).
	artifact []byte
}

// Manager owns the campaign jobs of one daemon: admission, execution at
// Background priority on the shared engine, checkpointing, restart
// resume, artifacts and progress streams. Safe for concurrent use.
type Manager struct {
	cfg    Config
	runner experiments.Runner

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	closing bool
}

// Open builds a manager and, when cfg.Dir is set, loads every persisted
// job from it — rebuilding progress logs from checkpoint files and
// resuming every job that was pending or running when the previous
// process died or shut down.
func Open(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("jobs: Config.Store is required")
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 16
	}
	if cfg.Engine == nil {
		cfg.Engine = campaign.New(0)
	}
	if cfg.Registry == nil {
		cfg.Registry = wcet.DefaultRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		runner:  experiments.NewRunner(cfg.Engine),
		baseCtx: ctx,
		stop:    stop,
		jobs:    make(map[string]*job),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(m.artifactsDir(), 0o755); err != nil {
			stop()
			return nil, fmt.Errorf("jobs: creating %s: %w", m.artifactsDir(), err)
		}
		if err := m.loadAll(); err != nil {
			stop()
			return nil, err
		}
	}
	return m, nil
}

func (m *Manager) jobDir(id string) string   { return filepath.Join(m.cfg.Dir, id) }
func (m *Manager) metaPath(id string) string { return filepath.Join(m.cfg.Dir, id, "job.json") }
func (m *Manager) ckptPath(id string) string { return filepath.Join(m.cfg.Dir, id, "cells.jsonl") }
func (m *Manager) artifactsDir() string      { return filepath.Join(m.cfg.Dir, "artifacts") }
func (m *Manager) artifactPath(id string) string {
	return filepath.Join(m.artifactsDir(), id+".json")
}

// loadAll scans the persistence root, rebuilds every job's in-memory
// state and resumes the unfinished ones. An unreadable job directory is
// skipped with a warning rather than failing the daemon.
func (m *Manager) loadAll() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("jobs: reading %s: %w", m.cfg.Dir, err)
	}
	var resume []*job
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "j-") {
			continue
		}
		id := e.Name()
		var meta Meta
		if err := readJSONFile(m.metaPath(id), &meta); err != nil {
			m.cfg.Logger.Warn("jobs: skipping unreadable job", "id", id, "err", err)
			continue
		}
		if meta.ID != id {
			m.cfg.Logger.Warn("jobs: skipping job with mismatched id", "dir", id, "meta", meta.ID)
			continue
		}
		load, err := loadCheckpoint(m.ckptPath(id), meta.TotalCells)
		if err != nil {
			m.cfg.Logger.Warn("jobs: skipping job with unreadable checkpoint", "id", id, "err", err)
			continue
		}
		if load.dropped > 0 {
			m.cfg.Logger.Warn("jobs: checkpoint tail unverifiable, truncating",
				"id", id, "goodCells", len(load.order), "goodBytes", load.goodBytes)
		}
		j := &job{
			meta:   meta,
			points: load.points,
			subs:   make(map[*subscriber]struct{}),
		}
		for i, idx := range load.order {
			pt := load.points[idx]
			j.log = append(j.log, Event{
				Seq: i + 1, Type: "cell", Index: idx,
				Done: i + 1, Total: meta.TotalCells, Point: &pt,
			})
		}
		if meta.State.Terminal() {
			j.log = append(j.log, terminalEvent(len(j.log)+1, meta, len(load.points)))
		} else {
			// Cut the unverifiable tail before appends resume.
			if err := truncateFile(m.ckptPath(id), load.goodBytes); err != nil {
				m.cfg.Logger.Warn("jobs: cannot truncate checkpoint", "id", id, "err", err)
				continue
			}
			resume = append(resume, j)
		}
		m.jobs[id] = j
	}
	for _, j := range resume {
		jctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		mResumed.Inc()
		mCellsRestored.Add(int64(len(j.points)))
		m.cfg.Logger.Info("jobs: resuming",
			"id", j.meta.ID, "done", len(j.points), "total", j.meta.TotalCells)
		m.wg.Add(1)
		go m.run(jctx, j, nil)
	}
	m.updateActiveGauge()
	return nil
}

// truncateFile cuts path to size; a missing file at size zero is fine.
func truncateFile(path string, size int64) error {
	err := os.Truncate(path, size)
	if os.IsNotExist(err) && size == 0 {
		return nil
	}
	return err
}

// readJSONFile decodes one JSON file into v.
func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// terminalEvent renders a terminal state transition as a stream event.
func terminalEvent(seq int, meta Meta, done int) Event {
	return Event{
		Seq: seq, Type: "state",
		Done: done, Total: meta.TotalCells,
		State: meta.State, Error: meta.Error, Artifact: meta.Artifact,
	}
}

// Submit validates, persists and starts one campaign job. defaultTable
// is the base-table ref used when the spec names none (the caller's
// serving default). All validation happens here, before admission: a
// rejected spec never touches the engine.
func (m *Manager) Submit(spec Spec, defaultTable string) (Status, error) {
	grid, err := spec.Grid.Compile(m.cfg.Store, m.cfg.Registry)
	if err != nil {
		return Status{}, err
	}
	baseRef := spec.Table
	if baseRef == "" {
		baseRef = defaultTable
	}
	if baseRef == "" {
		return Status{}, fmt.Errorf("jobs: no base table: spec names none and no default is configured")
	}
	lat, baseID, err := m.cfg.Store.Resolve(baseRef)
	if err != nil {
		return Status{}, fmt.Errorf("jobs: base table: %w", err)
	}
	plan, err := grid.Plan(lat)
	if err != nil {
		return Status{}, err
	}
	id, err := newID()
	if err != nil {
		return Status{}, err
	}
	meta := Meta{
		ID:            id,
		Spec:          spec,
		BaseTable:     string(baseID),
		State:         StatePending,
		TotalCells:    plan.Size(),
		CreatedUnixMs: time.Now().UnixMilli(),
	}

	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	active := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.meta.State.Terminal() {
			active++
		}
		j.mu.Unlock()
	}
	if active >= m.cfg.MaxActive {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("%w (%d active, max %d)", ErrTooManyJobs, active, m.cfg.MaxActive)
	}
	j := &job{
		meta:   meta,
		points: make(map[int]experiments.PointJSON),
		subs:   make(map[*subscriber]struct{}),
	}
	jctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	m.jobs[id] = j
	m.mu.Unlock()

	if m.cfg.Dir != "" {
		if err := os.MkdirAll(m.jobDir(id), 0o755); err != nil {
			m.dropJob(id)
			cancel()
			return Status{}, fmt.Errorf("jobs: creating job dir: %w", err)
		}
		if err := m.persistMeta(meta); err != nil {
			m.dropJob(id)
			cancel()
			return Status{}, err
		}
	}
	mSubmitted.Inc()
	m.updateActiveGauge()
	m.cfg.Logger.Info("jobs: submitted", "id", id, "cells", meta.TotalCells, "baseTable", meta.BaseTable)
	m.wg.Add(1)
	go m.run(jctx, j, plan)
	return Status{Meta: meta}, nil
}

// dropJob removes a job that failed to persist at submission.
func (m *Manager) dropJob(id string) {
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
}

// persistMeta writes a job's meta atomically.
func (m *Manager) persistMeta(meta Meta) error {
	if m.cfg.Dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding meta: %w", err)
	}
	return writeFileAtomic(m.metaPath(meta.ID), append(data, '\n'))
}

// run executes a job to a terminal state (or to manager shutdown, which
// leaves it resumable). plan is non-nil on fresh submissions; resumed
// jobs re-plan from their pinned base table.
func (m *Manager) run(ctx context.Context, j *job, plan *experiments.SweepPlan) {
	defer m.wg.Done()

	j.mu.Lock()
	j.meta.State = StateRunning
	meta := j.meta
	done := len(j.points)
	j.mu.Unlock()
	if err := m.persistMeta(meta); err != nil {
		m.fail(j, err)
		return
	}

	if plan == nil {
		// Resume: rebuild the plan from the pinned base table. The grid
		// re-validates against today's store; a vanished base table or
		// table ref fails the job cleanly instead of solving the wrong
		// characterisation.
		grid, err := meta.Spec.Grid.Compile(m.cfg.Store, m.cfg.Registry)
		if err != nil {
			m.fail(j, fmt.Errorf("jobs: resume: %w", err))
			return
		}
		lat, _, err := m.cfg.Store.Resolve(meta.BaseTable)
		if err != nil {
			m.fail(j, fmt.Errorf("jobs: resume: base table: %w", err))
			return
		}
		plan, err = grid.Plan(lat)
		if err != nil {
			m.fail(j, fmt.Errorf("jobs: resume: %w", err))
			return
		}
		if plan.Size() != meta.TotalCells {
			m.fail(j, fmt.Errorf("jobs: resume: plan has %d cells, checkpoint expects %d", plan.Size(), meta.TotalCells))
			return
		}
	}

	// Open the checkpoint log for appends while cells run.
	var ckpt *os.File
	if m.cfg.Dir != "" {
		f, err := os.OpenFile(m.ckptPath(meta.ID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			m.fail(j, fmt.Errorf("jobs: opening checkpoint: %w", err))
			return
		}
		ckpt = f
		defer ckpt.Close()
	}

	j.mu.Lock()
	remaining := make([]int, 0, meta.TotalCells-done)
	for i := 0; i < meta.TotalCells; i++ {
		if _, ok := j.points[i]; !ok {
			remaining = append(remaining, i)
		}
	}
	j.mu.Unlock()

	cells := make([]campaign.Job[struct{}], len(remaining))
	for i, idx := range remaining {
		idx := idx
		cells[i] = func(ctx context.Context) (struct{}, error) {
			pt, err := m.runner.RunCell(ctx, plan, idx)
			if err != nil {
				return struct{}{}, err
			}
			m.recordCell(j, ckpt, idx, pt.Wire())
			return struct{}{}, nil
		}
	}
	outcomes := campaign.AllAt(ctx, m.cfg.Engine, campaign.Background, cells)

	if ctx.Err() != nil {
		m.mu.Lock()
		closing := m.closing
		m.mu.Unlock()
		if closing {
			// Shutdown, not cancellation: leave the persisted state
			// running so the next process resumes from the checkpoint.
			return
		}
		m.finish(j, StateCanceled, "canceled", "")
		return
	}
	var errs []error
	for i, o := range outcomes {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("cell %d: %w", remaining[i], o.Err))
		}
	}
	if len(errs) > 0 {
		m.fail(j, errors.Join(errs...))
		return
	}

	// Assemble the artifact in grid order and content-address it.
	j.mu.Lock()
	points := make([]experiments.PointJSON, meta.TotalCells)
	complete := true
	for i := 0; i < meta.TotalCells; i++ {
		pt, ok := j.points[i]
		if !ok {
			complete = false
			break
		}
		points[i] = pt
	}
	j.mu.Unlock()
	if !complete {
		m.fail(j, fmt.Errorf("jobs: internal: cells missing after a clean run"))
		return
	}
	data, err := experiments.EncodeArtifact(points)
	if err != nil {
		m.fail(j, err)
		return
	}
	id := artifactID(data)
	if m.cfg.Dir != "" {
		if err := writeFileAtomic(m.artifactPath(id), data); err != nil {
			m.fail(j, err)
			return
		}
	} else {
		j.mu.Lock()
		j.artifact = data
		j.mu.Unlock()
	}
	m.finish(j, StateDone, "", id)
}

// recordCell checkpoints one completed cell and fans its event out to
// subscribers.
func (m *Manager) recordCell(j *job, ckpt *os.File, idx int, pt experiments.PointJSON) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.points[idx]; dup {
		return
	}
	j.points[idx] = pt
	if ckpt != nil {
		line, err := encodeCheckpointLine(idx, pt)
		if err == nil {
			_, err = ckpt.Write(line)
		}
		if err != nil {
			// The cell result is still held in memory; losing the
			// append only costs a re-solve after a crash.
			m.cfg.Logger.Warn("jobs: checkpoint append failed", "id", j.meta.ID, "cell", idx, "err", err)
		}
	}
	mCellsSolved.Inc()
	ev := Event{
		Seq: len(j.log) + 1, Type: "cell", Index: idx,
		Done: len(j.points), Total: j.meta.TotalCells, Point: &pt,
	}
	j.log = append(j.log, ev)
	m.fanout(j, ev, false)
}

// fanout delivers ev to j's subscribers; the caller holds j.mu. A
// subscriber that cannot keep up is closed — its client re-syncs with
// Last-Event-ID. terminal additionally closes every stream.
func (m *Manager) fanout(j *job, ev Event, terminal bool) {
	for s := range j.subs {
		if s.closed {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.closed = true
			close(s.ch)
			delete(j.subs, s)
			continue
		}
		if terminal {
			s.closed = true
			close(s.ch)
			delete(j.subs, s)
		}
	}
}

// finish moves j to a terminal state, persists it and emits the terminal
// event.
func (m *Manager) finish(j *job, state State, errText, artifact string) {
	j.mu.Lock()
	j.meta.State = state
	j.meta.Error = errText
	j.meta.Artifact = artifact
	meta := j.meta
	ev := terminalEvent(len(j.log)+1, meta, len(j.points))
	j.log = append(j.log, ev)
	m.fanout(j, ev, true)
	j.mu.Unlock()

	if err := m.persistMeta(meta); err != nil {
		m.cfg.Logger.Error("jobs: persisting terminal state failed", "id", meta.ID, "err", err)
	}
	mFinished.With(string(state)).Inc()
	m.updateActiveGauge()
	m.cfg.Logger.Info("jobs: finished", "id", meta.ID, "state", string(state), "artifact", artifact, "err", errText)
}

// fail moves j to failed.
func (m *Manager) fail(j *job, err error) {
	const maxErrText = 4096
	text := err.Error()
	if len(text) > maxErrText {
		text = text[:maxErrText] + " …"
	}
	m.finish(j, StateFailed, text, "")
}

// updateActiveGauge republishes the active-jobs gauge.
func (m *Manager) updateActiveGauge() {
	m.mu.Lock()
	defer m.mu.Unlock()
	active := int64(0)
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.meta.State.Terminal() {
			active++
		}
		j.mu.Unlock()
	}
	mActive.Set(active)
}

// Get returns a job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{Meta: j.meta, DoneCells: len(j.points)}, nil
}

// List returns every job's status, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(js))
	for _, j := range js {
		j.mu.Lock()
		out = append(out, Status{Meta: j.meta, DoneCells: len(j.points)})
		j.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].CreatedUnixMs != out[b].CreatedUnixMs {
			return out[a].CreatedUnixMs > out[b].CreatedUnixMs
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// Cancel stops a job through the engine's context path. Cancelling a
// terminal job is a no-op; either way the current status is returned.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	terminal := j.meta.State.Terminal()
	cancel := j.cancel
	st := Status{Meta: j.meta, DoneCells: len(j.points)}
	j.mu.Unlock()
	if !terminal && cancel != nil {
		cancel()
	}
	return st, nil
}

// Artifact returns a job's verified results file. The bytes are read
// back from disk and re-hashed against the artifact's content address on
// every call: a torn write or tampered file yields ErrArtifactCorrupt,
// never a half-written artifact.
func (m *Manager) Artifact(id string) ([]byte, string, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, "", ErrNotFound
	}
	j.mu.Lock()
	artID := j.meta.Artifact
	inMem := j.artifact
	j.mu.Unlock()
	if artID == "" {
		return nil, "", ErrNoArtifact
	}
	data := inMem
	if m.cfg.Dir != "" {
		var err error
		data, err = os.ReadFile(m.artifactPath(artID))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, "", fmt.Errorf("%w: %s missing on disk", ErrArtifactCorrupt, artID)
			}
			return nil, "", fmt.Errorf("jobs: reading artifact: %w", err)
		}
	}
	if artifactID(data) != artID {
		return nil, "", ErrArtifactCorrupt
	}
	return data, artID, nil
}

// Subscribe opens a progress stream: the replay of every logged event
// with Seq > afterSeq, then a live channel. The channel closes after the
// terminal event (or on overflow, or when cancel is called). afterSeq 0
// replays from the start — exactly the SSE Last-Event-ID contract.
func (m *Manager) Subscribe(id string, afterSeq int) ([]Event, <-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if afterSeq < 0 {
		afterSeq = 0
	}
	var replay []Event
	if afterSeq < len(j.log) {
		replay = append(replay, j.log[afterSeq:]...)
	}
	s := &subscriber{ch: make(chan Event, 256)}
	if j.meta.State.Terminal() {
		// The replay already ends with the terminal event; hand back a
		// closed channel so the caller drains and stops.
		close(s.ch)
		s.closed = true
		return replay, s.ch, func() {}, nil
	}
	j.subs[s] = struct{}{}
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		delete(j.subs, s)
	}
	return replay, s.ch, cancel, nil
}

// Close stops accepting submissions, cancels running jobs and waits for
// them to quiesce (bounded by ctx). Persisted state stays resumable: a
// job interrupted here restarts from its checkpoint on the next Open.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closing = true
	m.mu.Unlock()
	m.stop()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: close: %w", ctx.Err())
	}
}
