// Package jobs is the server-side campaign-job subsystem: bounded
// asynchronous grid sweeps with checkpointed persistence and streaming
// progress. A job is one experiments.Grid submitted over the wire; its
// cells drain through the shared campaign engine at Background priority,
// so bulk campaigns soak idle solver capacity without starving the
// interactive serving path.
//
// Durability contract: every completed cell is appended to a per-job
// checkpoint log (one checksummed JSON line per cell), and job state
// transitions are persisted with the tabstore's atomic temp+rename
// idiom. A killed or gracefully shut-down daemon resumes every
// non-terminal job on restart from its last good checkpoint line — a
// torn or tampered tail is truncated and those cells re-solved, which is
// safe because cells are deterministic in their inputs. The finished
// artifact is a content-addressed JSON file; its name is the SHA-256 of
// its bytes, verified on every read, so a half-written or tampered
// artifact is never served. Because the artifact wire form excludes
// run-variant solver diagnostics, a resumed job's artifact is
// byte-identical to an uninterrupted run's.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/experiments"
)

// State is a job's lifecycle phase.
type State string

const (
	// StatePending: admitted, not yet running.
	StatePending State = "pending"
	// StateRunning: cells are draining through the engine.
	StateRunning State = "running"
	// StateDone: every cell solved, artifact written.
	StateDone State = "done"
	// StateFailed: a cell or the persistence layer failed.
	StateFailed State = "failed"
	// StateCanceled: stopped by DELETE before completion.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is the wire form of a job submission.
type Spec struct {
	// Grid is the sweep to run.
	Grid experiments.GridSpec `json:"grid"`
	// Table optionally selects the base latency table (a ref or content
	// address in the store); empty selects the serving default at
	// submission time. Either way the job pins the resolved content
	// address, so a later promote never changes a running job's inputs.
	Table string `json:"table,omitempty"`
}

// Meta is the persisted description of a job — everything needed to
// resume it except the checkpoint log.
type Meta struct {
	ID string `json:"id"`
	// Spec is the submission, verbatim.
	Spec Spec `json:"spec"`
	// BaseTable is the content address of the base latency table the job
	// was pinned to at submission.
	BaseTable string `json:"baseTable"`
	// State is the last persisted lifecycle phase.
	State State `json:"state"`
	// TotalCells is the planned grid size.
	TotalCells int `json:"totalCells"`
	// Error carries the failure cause when State is failed.
	Error string `json:"error,omitempty"`
	// Artifact is the content address of the results file when State is
	// done.
	Artifact string `json:"artifact,omitempty"`
	// CreatedUnixMs timestamps the submission (informational only; no
	// result byte depends on it).
	CreatedUnixMs int64 `json:"createdUnixMs"`
}

// Status is a point-in-time snapshot of a job served to clients.
type Status struct {
	Meta
	// DoneCells counts checkpointed cells.
	DoneCells int `json:"doneCells"`
}

// Event is one entry of a job's progress stream. Cell events are
// numbered 1..N in completion order (their Seq doubles as the SSE event
// ID, so Last-Event-ID resume replays exactly the missed suffix);
// a terminal state event follows with the next Seq.
type Event struct {
	Seq int `json:"seq"`
	// Type is "cell" or "state".
	Type string `json:"type"`
	// Index is the completed cell's grid index (cell events).
	Index int `json:"index,omitempty"`
	// Done and Total report overall progress at this event.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Point is the completed cell's result (cell events).
	Point *experiments.PointJSON `json:"point,omitempty"`
	// State, Error and Artifact describe the terminal transition (state
	// events).
	State    State  `json:"state,omitempty"`
	Error    string `json:"error,omitempty"`
	Artifact string `json:"artifact,omitempty"`
}

// Typed submission and access errors.
var (
	// ErrTooManyJobs: the manager is at its active-job bound.
	ErrTooManyJobs = errors.New("jobs: too many active jobs")
	// ErrNotFound: no job with that ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNoArtifact: the job has not produced an artifact (yet).
	ErrNoArtifact = errors.New("jobs: no artifact")
	// ErrArtifactCorrupt: the artifact file does not hash to its content
	// address — a torn write or tampering; it will not be served.
	ErrArtifactCorrupt = errors.New("jobs: artifact does not match its content address")
	// ErrClosed: the manager is shutting down.
	ErrClosed = errors.New("jobs: manager closed")
)

// newID mints a job identifier. IDs are random, not content-addressed:
// two submissions of the same spec are distinct jobs.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: minting id: %w", err)
	}
	return "j-" + hex.EncodeToString(b[:]), nil
}
