package campaign

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackgroundLeavesHeadroom: background work on a width-N pool may
// hold at most N-1 slots, so an interactive job always finds capacity.
func TestBackgroundLeavesHeadroom(t *testing.T) {
	const workers = 4
	e := New(workers)

	var (
		mu      sync.Mutex
		held    int
		maxHeld int
	)
	release := make(chan struct{})
	bgJobs := make([]Job[int], 2*workers)
	for i := range bgJobs {
		bgJobs[i] = func(ctx context.Context) (int, error) {
			mu.Lock()
			held++
			if held > maxHeld {
				maxHeld = held
			}
			mu.Unlock()
			<-release
			mu.Lock()
			held--
			mu.Unlock()
			return 0, nil
		}
	}

	done := make(chan struct{})
	go func() {
		AllAt(context.Background(), e, Background, bgJobs)
		close(done)
	}()

	// Wait for the background campaign to saturate its ticket cap.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		h := held
		mu.Unlock()
		if h == workers-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("background campaign held %d slots, want %d", h, workers-1)
		case <-time.After(time.Millisecond):
		}
	}

	// An interactive job must run to completion while every background
	// ticket is held.
	ictx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	outs := All(ictx, e, []Job[int]{func(ctx context.Context) (int, error) { return 42, nil }})
	if outs[0].Err != nil || outs[0].Value != 42 {
		t.Fatalf("interactive job under background load: %+v", outs[0])
	}

	close(release)
	<-done
	mu.Lock()
	if maxHeld > workers-1 {
		t.Fatalf("background held %d slots concurrently, cap is %d", maxHeld, workers-1)
	}
	mu.Unlock()
}

// TestBackgroundYieldsToInteractive: with interactive acquirers waiting,
// freed slots go to them before any parked background work.
func TestBackgroundYieldsToInteractive(t *testing.T) {
	e := New(1) // single slot: bg ticket cap is max(1, 0) = 1

	blockBg := make(chan struct{})
	bgStarted := make(chan struct{})
	var bgSecond atomic.Bool
	bgJobs := []Job[int]{
		func(ctx context.Context) (int, error) { close(bgStarted); <-blockBg; return 0, nil },
		func(ctx context.Context) (int, error) { bgSecond.Store(true); return 0, nil },
	}
	bgDone := make(chan struct{})
	go func() {
		AllAt(context.Background(), e, Background, bgJobs)
		close(bgDone)
	}()
	<-bgStarted

	// Interactive waiter queues up while the background cell holds the
	// only slot.
	var interactiveRan atomic.Bool
	iDone := make(chan struct{})
	go func() {
		All(context.Background(), e, []Job[int]{func(ctx context.Context) (int, error) {
			interactiveRan.Store(true)
			if bgSecond.Load() {
				t.Error("second background cell ran before the waiting interactive job")
			}
			return 0, nil
		}})
		close(iDone)
	}()

	// Give the interactive acquirer time to park on the semaphore, then
	// free the slot: the interactive job must win it.
	time.Sleep(10 * time.Millisecond)
	close(blockBg)

	select {
	case <-iDone:
	case <-time.After(5 * time.Second):
		t.Fatal("interactive job starved behind background campaign")
	}
	<-bgDone
	if !interactiveRan.Load() {
		t.Fatal("interactive job never ran")
	}
}

// TestBackgroundCancellationReleasesTickets: cancelling a background
// campaign mid-acquire leaks neither slots nor tickets.
func TestBackgroundCancellationReleasesTickets(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{}, 1)
	block := make(chan struct{})
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-block:
			case <-ctx.Done():
			}
			return 0, nil
		}
	}
	done := make(chan struct{})
	go func() {
		outs := AllAt(ctx, e, Background, jobs)
		for i, o := range outs {
			if o.Err != nil && o.Err != context.Canceled {
				t.Errorf("cell %d: unexpected error %v", i, o.Err)
			}
		}
		close(done)
	}()
	<-started
	cancel()
	close(block)
	<-done

	// All capacity must be back: a fresh background campaign of full
	// ticket width completes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	fresh := make([]Job[int], 4)
	for i := range fresh {
		fresh[i] = func(ctx context.Context) (int, error) { return 1, nil }
	}
	vals, err := CollectAt(ctx2, e, Background, fresh)
	if err != nil {
		t.Fatalf("post-cancel background campaign: %v", err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d values, want 4", len(vals))
	}
}
