package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
)

var lat = platform.TC27xLatencies()

// microTask builds a small calibration microbenchmark task for memoization
// tests: cheap to simulate, fully deterministic.
func microTask(t testing.TB, n int) sim.Task {
	t.Helper()
	src, err := workload.Microbench(workload.MicrobenchConfig{
		Target: platform.LMU, Op: platform.Data, N: n, Core: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Task{Kind: tricore.TC16P, Src: src}
}

func TestNewDefaultsToHardwareWidth(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(3).Workers(); got != 3 {
		t.Errorf("New(3).Workers() = %d, want 3", got)
	}
}

// TestAllPreservesInputOrder: outcomes land in input order regardless of
// completion order (later jobs finish first here because earlier ones wait
// for them).
func TestAllPreservesInputOrder(t *testing.T) {
	e := New(4)
	release := make(chan struct{})
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			if i == 0 {
				// Job 0 finishes last.
				<-release
			} else if i == len(jobs)-1 {
				close(release)
			}
			return i * i, nil
		}
	}
	values, err := Collect(context.Background(), e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if v != i*i {
			t.Errorf("values[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestAllCollectsPerRunErrors: a failing cell neither aborts the campaign
// nor poisons its neighbours.
func TestAllCollectsPerRunErrors(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	jobs := []Job[string]{
		func(ctx context.Context) (string, error) { return "a", nil },
		func(ctx context.Context) (string, error) { return "", boom },
		func(ctx context.Context) (string, error) { return "c", nil },
	}
	outcomes := All(context.Background(), e, jobs)
	if outcomes[0].Value != "a" || outcomes[0].Err != nil {
		t.Errorf("outcome 0 = %+v", outcomes[0])
	}
	if !errors.Is(outcomes[1].Err, boom) {
		t.Errorf("outcome 1 error = %v, want boom", outcomes[1].Err)
	}
	if outcomes[2].Value != "c" || outcomes[2].Err != nil {
		t.Errorf("outcome 2 = %+v", outcomes[2])
	}

	_, err := Collect(context.Background(), e, jobs)
	if !errors.Is(err, boom) {
		t.Errorf("Collect error = %v, want boom", err)
	}
	if !strings.Contains(err.Error(), "cell 1") {
		t.Errorf("Collect error %q does not name the failing cell", err)
	}
}

// TestAllCancellation: cancelling the context stops the feed; jobs that
// never started report the context error, jobs already running finish.
func TestAllCancellation(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	jobs := make([]Job[int], 5)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			return i, nil
		}
	}
	outcomes := All(ctx, e, jobs)
	if outcomes[0].Err != nil || outcomes[0].Value != 0 {
		t.Errorf("running job should have completed: %+v", outcomes[0])
	}
	cancelled := 0
	for _, o := range outcomes[1:] {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	// With one worker, at most one more job can have slipped into the
	// feed channel before the cancel was observed.
	if cancelled < len(jobs)-2 {
		t.Errorf("%d of %d trailing jobs report cancellation, want >= %d",
			cancelled, len(jobs)-1, len(jobs)-2)
	}
	if int(ran.Load())+cancelled != len(jobs) {
		t.Errorf("ran %d + cancelled %d != %d jobs", ran.Load(), cancelled, len(jobs))
	}
}

// TestIsolationMemoization: the second identical request is a cache hit
// that skips both the build and the simulation; distinct keys and configs
// miss.
func TestIsolationMemoization(t *testing.T) {
	e := New(2)
	var builds atomic.Int32
	run := func(key string, cfg sim.Config) sim.Result {
		res, err := e.Isolation(context.Background(), lat, 1, key, cfg, func() (sim.Task, error) {
			builds.Add(1)
			return microTask(t, 10), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run("micro/10", sim.Config{})
	second := run("micro/10", sim.Config{})
	if builds.Load() != 1 {
		t.Errorf("%d builds after identical requests, want 1", builds.Load())
	}
	if s := e.Stats(); s.IsolationHits != 1 || s.IsolationMisses != 1 || s.SimRuns != 1 {
		t.Errorf("stats after hit = %+v", s)
	}
	if first.Readings[1] != second.Readings[1] || first.Cycles != second.Cycles {
		t.Error("cache hit returned different readings")
	}

	run("micro/10", sim.Config{FlashPrefetch: true}) // config is part of the key
	run("micro/10-other", sim.Config{})              // as is the task key
	if s := e.Stats(); s.IsolationMisses != 3 {
		t.Errorf("distinct configs/keys should miss: %+v", s)
	}

	var other platform.LatencyTable = lat
	other[platform.LMU][platform.Data].Max++ // and the latency table
	if _, err := e.Isolation(context.Background(), other, 1, "micro/10", sim.Config{}, func() (sim.Task, error) {
		return microTask(t, 10), nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.IsolationMisses != 4 {
		t.Errorf("distinct latency table should miss: %+v", s)
	}
}

// TestIsolationSingleflight: concurrent requests for one key simulate
// exactly once; everyone else blocks and then reads the cached result.
func TestIsolationSingleflight(t *testing.T) {
	e := New(8)
	var builds atomic.Int32
	const callers = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Isolation(context.Background(), lat, 1, "micro/shared", sim.Config{}, func() (sim.Task, error) {
				builds.Add(1)
				return microTask(t, 50), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("%d concurrent builds, want 1", builds.Load())
	}
	s := e.Stats()
	if s.IsolationMisses != 1 || s.IsolationHits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", s, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i].Cycles != results[0].Cycles {
			t.Fatalf("caller %d saw different cycles", i)
		}
	}
}

// TestIsolationBuildErrorIsSticky: a failing build reports its error to
// every requester without re-running.
func TestIsolationBuildErrorIsSticky(t *testing.T) {
	e := New(1)
	boom := errors.New("bad trace")
	for i := 0; i < 2; i++ {
		_, err := e.Isolation(context.Background(), lat, 1, "broken", sim.Config{}, func() (sim.Task, error) {
			return sim.Task{}, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("call %d: err = %v, want boom", i, err)
		}
	}
	if s := e.Stats(); s.SimRuns != 0 {
		t.Errorf("failed build must not reach the simulator: %+v", s)
	}
}

// TestIsolationCancelled: a cancelled context short-circuits before
// touching the cache or the simulator.
func TestIsolationCancelled(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Isolation(ctx, lat, 1, "never", sim.Config{}, func() (sim.Task, error) {
		t.Error("build ran despite cancelled context")
		return sim.Task{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := e.Run(ctx, lat, nil, 0, sim.Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v, want context.Canceled", err)
	}
}

// TestConfigKeyCanonical: map-valued config fields hash identically
// regardless of insertion order, and different budgets differ.
func TestConfigKeyCanonical(t *testing.T) {
	a := configKey(sim.Config{StallBudgets: map[int]int64{1: 10, 2: 20}, SRIPriorities: map[int]int{0: 1, 2: 3}})
	b := configKey(sim.Config{StallBudgets: map[int]int64{2: 20, 1: 10}, SRIPriorities: map[int]int{2: 3, 0: 1}})
	if a != b {
		t.Errorf("order-dependent config key:\n%s\n%s", a, b)
	}
	c := configKey(sim.Config{StallBudgets: map[int]int64{1: 11, 2: 20}})
	if a == c {
		t.Error("different stall budgets collide")
	}
}

// TestEngineParallelRuns exercises the pool with real simulations under
// the race detector: many distinct isolation cells at once.
func TestEngineParallelRuns(t *testing.T) {
	e := New(8)
	jobs := make([]Job[int64], 12)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int64, error) {
			res, err := e.Isolation(ctx, lat, 1, fmt.Sprintf("micro/n%d", 10+i), sim.Config{}, func() (sim.Task, error) {
				return microTask(t, 10+i), nil
			})
			return res.Cycles, err
		}
	}
	values, err := Collect(context.Background(), e, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(values); i++ {
		if values[i] <= values[i-1] {
			t.Errorf("cycles not increasing with access count: %v", values)
		}
	}
}

// TestConcurrentCampaignsShareSlots launches many campaigns concurrently on
// one engine and asserts the engine-level slot semaphore bounds the number
// of simultaneously running jobs to the pool width, no matter how many
// campaigns are in flight — the request-driven regime the serving layer
// puts the engine in.
func TestConcurrentCampaignsShareSlots(t *testing.T) {
	const workers = 3
	const campaigns = 8
	const jobsPer = 6
	e := New(workers)

	var running, peak atomic.Int64
	job := func(ctx context.Context) (int, error) {
		now := running.Add(1)
		for {
			old := peak.Load()
			if now <= old || peak.CompareAndSwap(old, now) {
				break
			}
		}
		runtime.Gosched()
		running.Add(-1)
		return 0, nil
	}

	var wg sync.WaitGroup
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]Job[int], jobsPer)
			for i := range jobs {
				jobs[i] = job
			}
			for _, o := range All(context.Background(), e, jobs) {
				if o.Err != nil {
					t.Errorf("job failed: %v", o.Err)
				}
			}
		}()
	}
	wg.Wait()

	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrent jobs %d exceeds pool width %d", got, workers)
	}
}
