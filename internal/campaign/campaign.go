// Package campaign is the parallel experiment-campaign engine: it fans
// independent simulation runs across a pool of workers, memoizes isolation
// measurements so sweep cells stop recomputing shared baselines, and
// assembles results in stable input order so a parallel campaign is
// byte-identical to a serial one.
//
// The paper's evaluation is a grid of measurement campaigns — Table 2
// calibration paths, Table 6 readings, Figure 4 cells, the OEM budget
// sweep — whose cells are mutually independent: every cell is a
// deterministic simulation of a fixed trace on a fixed latency table.
// That independence is what the engine exploits. Determinism is preserved
// by construction: cells never share mutable state (each sim.Run builds
// its own crossbar and cores), workers write results only into their own
// input slot, and the memo cache can substitute a cached result for a
// recomputation only because the simulator is deterministic in its inputs.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Process-wide campaign telemetry on the default registry (exposed by
// wcetd's GET /metrics): all engines aggregate into the same series,
// beside each Engine's own Stats snapshot.
var (
	mCells = telemetry.Default().Counter("campaign_cells_total",
		"Campaign cells executed across all engines.")
	mMemoHits = telemetry.Default().Counter("campaign_memo_hits_total",
		"Isolation runs served from the memo cache.")
	mMemoMisses = telemetry.Default().Counter("campaign_memo_misses_total",
		"Isolation runs that had to be simulated.")
	mSimRuns = telemetry.Default().Counter("campaign_sim_runs_total",
		"Simulator invocations performed by campaign engines.")
	mBgCells = telemetry.Default().Counter("campaign_bg_cells_total",
		"Campaign cells executed at Background priority.")
	mBgYields = telemetry.Default().Counter("campaign_bg_yields_total",
		"Background slot acquisitions deferred to waiting interactive work.")
)

// Priority orders slot acquisition on an Engine's shared semaphore.
// Interactive is the serving path: it competes for every slot with no
// gate. Background is bulk campaign-job work: it is capped below the full
// pool width (at least one slot of headroom whenever the pool has more
// than one) and it parks whenever an interactive acquirer is waiting, so
// a long-running job soaks idle capacity without starving request
// latency. The inversion window is bounded by one cell duration: slots
// already held by background cells are never preempted.
type Priority int

const (
	// Interactive is the default serving-path priority.
	Interactive Priority = iota
	// Background is the bulk campaign-job priority.
	Background
)

// Engine schedules campaign cells across a fixed worker pool and caches
// isolation measurements across cells, campaigns and artefacts.
//
// An Engine is safe for concurrent use. The zero value is not usable; use
// New.
type Engine struct {
	workers int

	// slots is an engine-level semaphore shared by every campaign on this
	// engine: a worker may run a job only while holding a slot. A single
	// campaign is unaffected (it spawns at most `workers` workers, each
	// holding at most one slot), but concurrent campaigns — the serving
	// layer fans every batch request out as its own campaign — share the
	// one bounded pool instead of multiplying it. Jobs must not schedule
	// new campaigns on the same engine: with every slot held by their
	// parents, the nested campaign would deadlock.
	slots chan struct{}

	// bgTickets caps how many slots Background work may hold at once:
	// max(1, workers-1), so interactive traffic always has headroom on a
	// pool wider than one slot. A background worker must hold a ticket
	// before it may take a slot.
	bgTickets chan struct{}
	// hiWaiting counts interactive acquirers currently blocked on slots;
	// background acquirers park while it is non-zero.
	hiWaiting atomic.Int64

	mu  sync.Mutex
	iso map[isoKey]*isoEntry

	hits   atomic.Int64
	misses atomic.Int64
	runs   atomic.Int64
}

// New returns an engine with the given worker-pool width. workers <= 0
// selects GOMAXPROCS, the hardware parallelism available to the process.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bg := workers - 1
	if bg < 1 {
		bg = 1
	}
	return &Engine{
		workers:   workers,
		slots:     make(chan struct{}, workers),
		bgTickets: make(chan struct{}, bg),
		iso:       make(map[isoKey]*isoEntry),
	}
}

// Workers reports the pool width.
func (e *Engine) Workers() int { return e.workers }

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// IsolationHits counts isolation runs served from the memo cache.
	IsolationHits int64
	// IsolationMisses counts isolation runs that had to be simulated.
	IsolationMisses int64
	// SimRuns counts simulator invocations the engine performed (memo
	// misses plus co-scheduled runs).
	SimRuns int64
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		IsolationHits:   e.hits.Load(),
		IsolationMisses: e.misses.Load(),
		SimRuns:         e.runs.Load(),
	}
}

// Job is one independent campaign cell: it produces a value or an error.
// Jobs must not share mutable state with each other.
type Job[T any] func(ctx context.Context) (T, error)

// Outcome is the per-cell result of a campaign: exactly one of Value and
// Err is meaningful. Cells that were never started because the campaign's
// context was cancelled carry the context's error.
type Outcome[T any] struct {
	Value T
	Err   error
}

// errNotRun marks outcome slots whose job never started; it is replaced by
// the context error after the pool drains and never escapes the package.
var errNotRun = errors.New("campaign: job not run")

// bgParkInterval is how long a background acquirer sleeps between checks
// while interactive work is waiting for slots. Short enough that a
// background campaign resumes promptly when the interactive burst drains,
// long enough to stay invisible next to a cell's runtime.
const bgParkInterval = time.Millisecond

// acquire takes one engine slot at the given priority. It returns false
// if ctx was cancelled before a slot was obtained; on true the caller
// must call release with the same priority after the job completes.
func (e *Engine) acquire(ctx context.Context, pri Priority) bool {
	if pri != Background {
		e.hiWaiting.Add(1)
		defer e.hiWaiting.Add(-1)
		select {
		case e.slots <- struct{}{}:
			return true
		case <-ctx.Done():
			return false
		}
	}
	// Background: hold a ticket (caps concurrent background slots below
	// the pool width), and yield to any waiting interactive acquirer.
	select {
	case e.bgTickets <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	yielded := false
	for e.hiWaiting.Load() > 0 {
		if !yielded {
			yielded = true
			mBgYields.Inc()
		}
		select {
		case <-time.After(bgParkInterval):
		case <-ctx.Done():
			<-e.bgTickets
			return false
		}
	}
	select {
	case e.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		<-e.bgTickets
		return false
	}
}

// release returns a slot taken by acquire at the same priority.
func (e *Engine) release(pri Priority) {
	<-e.slots
	if pri == Background {
		<-e.bgTickets
	}
}

// All runs every job on e's worker pool and returns one outcome per job,
// in input order, regardless of which worker finished which job when. It
// collects per-run errors rather than failing fast: a failing cell never
// prevents the remaining cells from running. Cancelling ctx stops workers
// from picking up new jobs; jobs that never started report ctx.Err().
func All[T any](ctx context.Context, e *Engine, jobs []Job[T]) []Outcome[T] {
	return AllAt(ctx, e, Interactive, jobs)
}

// AllAt is All with an explicit admission priority. Background campaigns
// run on the same bounded pool but leave headroom for — and yield slots
// to — Interactive work; see Priority.
func AllAt[T any](ctx context.Context, e *Engine, pri Priority, jobs []Job[T]) []Outcome[T] {
	outcomes := make([]Outcome[T], len(jobs))
	for i := range outcomes {
		outcomes[i].Err = errNotRun
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if !e.acquire(ctx, pri) {
					// Leave the slot's outcome as not-run; it picks up the
					// context error after the pool drains.
					continue
				}
				mCells.Inc()
				if pri == Background {
					mBgCells.Inc()
				}
				v, err := jobs[i](ctx)
				outcomes[i] = Outcome[T]{Value: v, Err: err}
				e.release(pri)
			}
		}()
	}

feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	for i := range outcomes {
		if outcomes[i].Err == errNotRun {
			outcomes[i] = Outcome[T]{Err: context.Cause(ctx)}
		}
	}
	return outcomes
}

// Batch maps every item through fn on e's worker pool — the batched solve
// entry point the serving layer's /v1/batch fan-out and the experiments
// grids run on. It is All without the per-item closure ceremony: one
// outcome per item, in input order, per-item errors, bounded by the
// engine's shared slot semaphore. Because a batch drains through the one
// engine pool, consecutive solves land on a bounded set of goroutines and
// the solver pools in internal/ilp re-serve their tableau arenas instead
// of growing fresh state per cell.
func Batch[In, Out any](ctx context.Context, e *Engine, items []In, fn func(context.Context, In) (Out, error)) []Outcome[Out] {
	jobs := make([]Job[Out], len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context) (Out, error) {
			return fn(ctx, item)
		}
	}
	return All(ctx, e, jobs)
}

// Collect runs every job on e's worker pool and returns the values in
// input order. If any cell failed, it returns the values gathered so far
// alongside an error joining every per-cell failure (each annotated with
// its cell index).
func Collect[T any](ctx context.Context, e *Engine, jobs []Job[T]) ([]T, error) {
	return CollectAt(ctx, e, Interactive, jobs)
}

// CollectAt is Collect with an explicit admission priority.
func CollectAt[T any](ctx context.Context, e *Engine, pri Priority, jobs []Job[T]) ([]T, error) {
	outcomes := AllAt(ctx, e, pri, jobs)
	values := make([]T, len(outcomes))
	var errs []error
	for i, o := range outcomes {
		values[i] = o.Value
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("cell %d: %w", i, o.Err))
		}
	}
	if len(errs) > 0 {
		return values, errors.Join(errs...)
	}
	return values, nil
}

// isoKey identifies one isolation measurement: the full latency table (a
// comparable value type), the core the task runs on, the caller's
// canonical description of the task, and the run configuration.
type isoKey struct {
	lat  platform.LatencyTable
	core int
	task string
	cfg  string
}

// isoEntry is a once-per-key computation slot: concurrent requests for the
// same key block on the first one's sync.Once instead of simulating twice.
type isoEntry struct {
	once sync.Once
	res  sim.Result
	err  error
}

// configKey canonicalises a sim.Config into a deterministic string (map
// fields are emitted in sorted key order).
func configKey(cfg sim.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "max=%d;pf=%t;jitter=%d", cfg.MaxCycles, cfg.FlashPrefetch, cfg.JitterSeed)
	writeMap := func(name string, m map[int]int64) {
		if len(m) == 0 {
			return
		}
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(&b, ";%s=", name)
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d,", k, m[k])
		}
	}
	writeMap("stall", cfg.StallBudgets)
	if len(cfg.SRIPriorities) > 0 {
		keys := make([]int, 0, len(cfg.SRIPriorities))
		for k := range cfg.SRIPriorities {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		b.WriteString(";prio=")
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d,", k, cfg.SRIPriorities[k])
		}
	}
	return b.String()
}

// Isolation performs a memoized isolation run. taskKey must canonically
// describe the task build produces: two calls may share a key only if
// build yields byte-identical traces on identical core kinds. On a cache
// hit, build is never called and the cached result is returned; on a miss,
// the task is built and simulated exactly once, even under concurrent
// requests for the same key.
//
// The returned Result is shared between all callers of the same key and
// must be treated as read-only.
func (e *Engine) Isolation(ctx context.Context, lat platform.LatencyTable, coreIdx int, taskKey string, cfg sim.Config, build func() (sim.Task, error)) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	key := isoKey{lat: lat, core: coreIdx, task: taskKey, cfg: configKey(cfg)}

	e.mu.Lock()
	entry, ok := e.iso[key]
	if !ok {
		entry = &isoEntry{}
		e.iso[key] = entry
	}
	e.mu.Unlock()

	computed := false
	entry.once.Do(func() {
		computed = true
		e.misses.Add(1)
		mMemoMisses.Inc()
		task, err := build()
		if err != nil {
			entry.err = fmt.Errorf("campaign: building task %q: %w", taskKey, err)
			return
		}
		e.runs.Add(1)
		mSimRuns.Inc()
		entry.res, entry.err = sim.RunIsolation(lat, coreIdx, task, cfg)
	})
	if !computed {
		e.hits.Add(1)
		mMemoHits.Inc()
	}
	return entry.res, entry.err
}

// Run performs a (non-memoized) co-scheduled simulation through the
// engine, so cancellation and run accounting cover multicore cells too.
func (e *Engine) Run(ctx context.Context, lat platform.LatencyTable, tasks map[int]sim.Task, analysed int, cfg sim.Config) (sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return sim.Result{}, err
	}
	e.runs.Add(1)
	mSimRuns.Inc()
	return sim.Run(lat, tasks, analysed, cfg)
}
