package platform

import "fmt"

// Addr is a 32-bit physical address on the TC27x.
type Addr = uint32

// RegionKind classifies what backs an address: a core-local scratchpad
// (no SRI traffic) or one of the shared SRI targets.
type RegionKind int

const (
	// RegionPSPR is a program scratchpad, local to one core.
	RegionPSPR RegionKind = iota
	// RegionDSPR is a data scratchpad, local to one core.
	RegionDSPR
	// RegionSRI is a shared memory reached through the SRI crossbar.
	RegionSRI
	// RegionInvalid marks an unmapped address.
	RegionInvalid
)

// Region describes the mapping of one address.
type Region struct {
	Kind RegionKind
	// Core is the owning core index for scratchpad regions (0..2).
	Core int
	// Target is the SRI slave for RegionSRI regions.
	Target Target
	// Cacheable reports whether the address segment is cached. On the
	// TC27x cacheability is selected by the address segment used (segment
	// 0x8/0x9 cached, 0xA/0xB non-cached mirrors).
	Cacheable bool
}

// The simulated memory map follows the TC27x layout: per-core scratchpads
// in segments 0x5-0x7, program flash in segment 0x8 (cached) mirrored at
// 0xA (non-cached), data flash at 0xAF000000, and the LMU SRAM in segment
// 0x9 (cached) mirrored at 0xB (non-cached).
const (
	// DSPRBase is the base of a core's data scratchpad within its segment.
	DSPRBase Addr = 0x0000_0000
	// PSPRBase is the base of a core's program scratchpad within its
	// segment.
	PSPRBase Addr = 0x0010_0000

	// Core segment bases: CPU2 at 0x5, CPU1 at 0x6, CPU0 at 0x7, as on the
	// real part.
	core2Seg Addr = 0x5000_0000
	core1Seg Addr = 0x6000_0000
	core0Seg Addr = 0x7000_0000

	// PFlash0Base is the cached base of program-flash bank 0 (1 MiB).
	PFlash0Base Addr = 0x8000_0000
	// PFlash1Base is the cached base of program-flash bank 1 (1 MiB).
	PFlash1Base Addr = 0x8010_0000
	// PFlashSize is the size of each program-flash bank.
	PFlashSize Addr = 0x0010_0000

	// LMUBase is the cached base of the 32 KiB LMU SRAM.
	LMUBase Addr = 0x9000_0000
	// LMUSize is the size of the LMU SRAM.
	LMUSize Addr = 0x0000_8000

	// DFlashBase is the base of the 384 KiB data flash. Data flash is
	// only ever accessed non-cached (Table 3: cacheable data on dfl is
	// architecturally excluded).
	DFlashBase Addr = 0xAF00_0000
	// DFlashSize is the size of the data flash.
	DFlashSize Addr = 0x0006_0000

	// UncachedBit, when set on a segment-0x8/0x9 address, selects the
	// non-cached mirror (segment 0xA/0xB).
	UncachedBit Addr = 0x2000_0000

	// ScratchpadSize bounds each scratchpad (PSPR or DSPR) region; the
	// real sizes differ per core (e.g. 120 KiB DSPR on the 1.6P) but the
	// map only needs an upper envelope.
	ScratchpadSize Addr = 0x0002_0000
)

// Uncached returns the non-cached mirror of a cached flash or LMU address.
func Uncached(a Addr) Addr { return a | UncachedBit }

// Cached returns the cached view of a flash or LMU address.
func Cached(a Addr) Addr { return a &^ UncachedBit }

// CoreSegment returns the segment base address of core i's scratchpads.
func CoreSegment(core int) Addr {
	switch core {
	case 0:
		return core0Seg
	case 1:
		return core1Seg
	case 2:
		return core2Seg
	default:
		panic(fmt.Sprintf("platform: no core %d on the TC27x", core))
	}
}

// PSPRAddr returns an address inside core i's program scratchpad.
func PSPRAddr(core int, off Addr) Addr { return CoreSegment(core) + PSPRBase + off }

// DSPRAddr returns an address inside core i's data scratchpad.
func DSPRAddr(core int, off Addr) Addr { return CoreSegment(core) + DSPRBase + off }

// Decode classifies an address against the TC27x memory map.
func Decode(a Addr) Region {
	seg := a >> 28
	switch seg {
	case 0x5, 0x6, 0x7:
		core := int(0x7 - seg)
		off := a & 0x0FFF_FFFF
		switch {
		case off >= PSPRBase && off < PSPRBase+ScratchpadSize:
			return Region{Kind: RegionPSPR, Core: core}
		case off < ScratchpadSize:
			return Region{Kind: RegionDSPR, Core: core}
		}
		return Region{Kind: RegionInvalid}
	case 0x8, 0xA:
		cacheable := seg == 0x8
		off := a & 0x0FFF_FFFF
		if seg == 0xA && a >= DFlashBase && a < DFlashBase+DFlashSize {
			// Data flash lives in the non-cached segment only.
			return Region{Kind: RegionSRI, Target: DFL, Cacheable: false}
		}
		switch {
		case off < PFlashSize:
			return Region{Kind: RegionSRI, Target: PF0, Cacheable: cacheable}
		case off < 2*PFlashSize:
			return Region{Kind: RegionSRI, Target: PF1, Cacheable: cacheable}
		}
		return Region{Kind: RegionInvalid}
	case 0x9, 0xB:
		cacheable := seg == 0x9
		off := a & 0x0FFF_FFFF
		if off < LMUSize {
			return Region{Kind: RegionSRI, Target: LMU, Cacheable: cacheable}
		}
		return Region{Kind: RegionInvalid}
	default:
		return Region{Kind: RegionInvalid}
	}
}
