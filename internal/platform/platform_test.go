package platform

import (
	"testing"
	"testing/quick"
)

func TestTargetString(t *testing.T) {
	want := map[Target]string{PF0: "pf0", PF1: "pf1", DFL: "dfl", LMU: "lmu"}
	for tg, s := range want {
		if got := tg.String(); got != s {
			t.Errorf("Target(%d).String() = %q, want %q", int(tg), got, s)
		}
	}
	if got := Target(99).String(); got != "Target(99)" {
		t.Errorf("invalid target string = %q", got)
	}
}

func TestOpString(t *testing.T) {
	if Code.String() != "co" || Data.String() != "da" {
		t.Errorf("op strings = %q, %q", Code, Data)
	}
	if got := Op(7).String(); got != "Op(7)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestCanAccess(t *testing.T) {
	cases := []struct {
		t    Target
		o    Op
		want bool
	}{
		{PF0, Code, true}, {PF1, Code, true}, {LMU, Code, true},
		{DFL, Code, false},
		{PF0, Data, true}, {PF1, Data, true}, {LMU, Data, true}, {DFL, Data, true},
		{Target(-1), Code, false}, {PF0, Op(5), false},
	}
	for _, c := range cases {
		if got := CanAccess(c.t, c.o); got != c.want {
			t.Errorf("CanAccess(%v, %v) = %v, want %v", c.t, c.o, got, c.want)
		}
	}
}

func TestAccessPairs(t *testing.T) {
	pairs := AccessPairs()
	if len(pairs) != 7 {
		t.Fatalf("AccessPairs returned %d pairs, want 7 (3 code + 4 data paths of Figure 2)", len(pairs))
	}
	seen := map[TargetOp]bool{}
	for _, p := range pairs {
		if !p.Valid() {
			t.Errorf("invalid pair %v in AccessPairs", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	if seen[TargetOp{DFL, Code}] {
		t.Error("dfl/co must not be an access pair")
	}
}

func TestTargetOpString(t *testing.T) {
	if got := (TargetOp{PF1, Data}).String(); got != "pf1/da" {
		t.Errorf("TargetOp string = %q, want pf1/da", got)
	}
}

func TestTC27xLatenciesMatchTable2(t *testing.T) {
	lt := TC27xLatencies()
	if err := lt.Validate(); err != nil {
		t.Fatalf("TC27x latency table invalid: %v", err)
	}
	check := func(tg Target, o Op, max, min, stall int64) {
		t.Helper()
		l, err := lt.Lookup(tg, o)
		if err != nil {
			t.Fatalf("Lookup(%v, %v): %v", tg, o, err)
		}
		if l.Max != max || l.Min != min || l.Stall != stall {
			t.Errorf("%v/%v = %+v, want {Max:%d Min:%d Stall:%d}", tg, o, l, max, min, stall)
		}
	}
	// Table 2 of the paper.
	check(LMU, Code, 11, 11, 11)
	check(LMU, Data, 11, 11, 10)
	check(PF0, Code, 16, 12, 6)
	check(PF1, Code, 16, 12, 6)
	check(PF0, Data, 16, 12, 11)
	check(PF1, Data, 16, 12, 11)
	check(DFL, Data, 43, 43, 42)
	if TC27xLMUDirtyMissLatency != 21 {
		t.Errorf("dirty LMU miss latency = %d, want 21", TC27xLMUDirtyMissLatency)
	}
}

func TestLatencyLookupIllegalPair(t *testing.T) {
	lt := TC27xLatencies()
	if _, err := lt.Lookup(DFL, Code); err == nil {
		t.Error("Lookup(dfl, co) succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxLatency(dfl, co) did not panic")
		}
	}()
	lt.MaxLatency(DFL, Code)
}

func TestMinStallFor(t *testing.T) {
	lt := TC27xLatencies()
	// cs^co_min = min(6, 6, 11) = 6 (Eq. 2).
	if got := lt.MinStallFor(Code); got != 6 {
		t.Errorf("MinStallFor(Code) = %d, want 6", got)
	}
	// cs^da_min = min(11, 11, 10, 42) = 10 (Eq. 3).
	if got := lt.MinStallFor(Data); got != 10 {
		t.Errorf("MinStallFor(Data) = %d, want 10", got)
	}
}

func TestMaxLatencyFor(t *testing.T) {
	lt := TC27xLatencies()
	// l^co_max = max over pf0,pf1,lmu of both ops = 16 (Eq. 6).
	if got := lt.MaxLatencyFor(Code); got != 16 {
		t.Errorf("MaxLatencyFor(Code) = %d, want 16", got)
	}
	// l^da_max additionally sees dfl/da = 43 (Eq. 7).
	if got := lt.MaxLatencyFor(Data); got != 43 {
		t.Errorf("MaxLatencyFor(Data) = %d, want 43", got)
	}
}

func TestLatencyValidateCatchesCorruption(t *testing.T) {
	lt := TC27xLatencies()
	lt[PF0][Code].Min = 99 // min > max
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted min > max")
	}
	lt = TC27xLatencies()
	lt[LMU][Data].Stall = 0
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted zero stall")
	}
	lt = TC27xLatencies()
	lt[DFL][Data].Stall = 44 // stall > max
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted stall > max latency")
	}
}

// TestLatencyValidateRejectsLoadedTableShapes covers the corruption
// shapes a table loaded from disk or the wire (rather than built in code)
// can carry: lmin above lmax, negative stall figures, and data smuggled
// into access paths that do not exist on the platform.
func TestLatencyValidateRejectsLoadedTableShapes(t *testing.T) {
	lt := TC27xLatencies()
	lt[PF1][Data] = Latency{Max: 12, Min: 16, Stall: 11} // lmin > lmax
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted lmin > lmax")
	}

	lt = TC27xLatencies()
	lt[PF0][Code].Stall = -6
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted a negative stall figure")
	}

	lt = TC27xLatencies()
	lt[LMU][Code].Min = -1
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted a negative min latency")
	}

	// Code on the data flash is not an access path (Table 3); a loaded
	// table carrying figures there is corrupt even though no model ever
	// reads the slot through AccessPairs.
	lt = TC27xLatencies()
	lt[DFL][Code] = Latency{Max: 43, Min: 43, Stall: 42}
	if err := lt.Validate(); err == nil {
		t.Error("Validate accepted figures on the illegal dfl/co pair")
	}

	if lt := TC27xLatencies(); lt.Validate() != nil {
		t.Error("Validate rejected the shipped TC27x table")
	}
}

func TestDecodeScratchpads(t *testing.T) {
	for core := 0; core < 3; core++ {
		r := Decode(PSPRAddr(core, 0x100))
		if r.Kind != RegionPSPR || r.Core != core {
			t.Errorf("PSPR core %d decoded to %+v", core, r)
		}
		r = Decode(DSPRAddr(core, 0x200))
		if r.Kind != RegionDSPR || r.Core != core {
			t.Errorf("DSPR core %d decoded to %+v", core, r)
		}
	}
}

func TestDecodeSRIRegions(t *testing.T) {
	cases := []struct {
		addr      Addr
		target    Target
		cacheable bool
	}{
		{PFlash0Base, PF0, true},
		{PFlash0Base + PFlashSize - 4, PF0, true},
		{PFlash1Base, PF1, true},
		{Uncached(PFlash0Base), PF0, false},
		{Uncached(PFlash1Base + 0x40), PF1, false},
		{LMUBase, LMU, true},
		{LMUBase + LMUSize - 4, LMU, true},
		{Uncached(LMUBase), LMU, false},
		{DFlashBase, DFL, false},
		{DFlashBase + DFlashSize - 4, DFL, false},
	}
	for _, c := range cases {
		r := Decode(c.addr)
		if r.Kind != RegionSRI || r.Target != c.target || r.Cacheable != c.cacheable {
			t.Errorf("Decode(%#x) = %+v, want SRI %v cacheable=%v", c.addr, r, c.target, c.cacheable)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	for _, a := range []Addr{0x0000_0000, 0x1234_5678, 0xF000_0000, LMUBase + LMUSize, PFlash1Base + PFlashSize} {
		if r := Decode(a); r.Kind != RegionInvalid {
			t.Errorf("Decode(%#x) = %+v, want invalid", a, r)
		}
	}
}

func TestCachedUncachedRoundTrip(t *testing.T) {
	f := func(off uint32) bool {
		a := PFlash0Base + Addr(off%PFlashSize)
		return Cached(Uncached(a)) == a && Uncached(a) != a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreSegmentPanicsOnBadCore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CoreSegment(3) did not panic")
		}
	}()
	CoreSegment(3)
}

func TestValidatePlacementTable3(t *testing.T) {
	type row struct {
		o         Op
		t         Target
		cacheable bool
		ok        bool
	}
	// The full Table 3 matrix.
	rows := []row{
		{Code, PF0, true, true}, {Code, PF1, true, true}, {Code, DFL, true, false}, {Code, LMU, true, true},
		{Code, PF0, false, true}, {Code, PF1, false, true}, {Code, DFL, false, false}, {Code, LMU, false, true},
		{Data, PF0, true, true}, {Data, PF1, true, true}, {Data, DFL, true, false}, {Data, LMU, true, true},
		{Data, PF0, false, false}, {Data, PF1, false, false}, {Data, DFL, false, true}, {Data, LMU, false, true},
	}
	for _, r := range rows {
		err := ValidatePlacement(r.o, Placement{r.t, r.cacheable})
		if (err == nil) != r.ok {
			t.Errorf("ValidatePlacement(%v, %v, cacheable=%v): err=%v, want ok=%v", r.o, r.t, r.cacheable, err, r.ok)
		}
	}
}

func TestDeploymentValidate(t *testing.T) {
	if err := Scenario1().Validate(); err != nil {
		t.Errorf("Scenario1 invalid: %v", err)
	}
	if err := Scenario2().Validate(); err != nil {
		t.Errorf("Scenario2 invalid: %v", err)
	}
	bad := Deployment{Code: []Placement{{DFL, true}}}
	if err := bad.Validate(); err == nil {
		t.Error("deployment with code in dfl validated")
	}
	bad = Deployment{Data: []Placement{{PF0, false}}}
	if err := bad.Validate(); err == nil {
		t.Error("deployment with non-cacheable data in pf0 validated")
	}
}

func TestDeploymentMayAccess(t *testing.T) {
	d := Scenario1()
	if !d.MayAccess(PF0, Code) || !d.MayAccess(PF1, Code) {
		t.Error("Scenario1 must fetch code from pf0/pf1")
	}
	if d.MayAccess(LMU, Code) {
		t.Error("Scenario1 has no code in lmu")
	}
	if !d.MayAccess(LMU, Data) {
		t.Error("Scenario1 must access data in lmu")
	}
	if d.MayAccess(DFL, Data) || d.MayAccess(PF0, Data) {
		t.Error("Scenario1 data only in lmu")
	}
}

func TestDeploymentCacheableDataOnly(t *testing.T) {
	if Scenario1().CacheableDataOnly() {
		t.Error("Scenario1 data is non-cacheable")
	}
	d := Deployment{Data: []Placement{{LMU, true}, {PF0, true}}}
	if !d.CacheableDataOnly() {
		t.Error("all-cacheable deployment reported mixed")
	}
}

func TestDeploymentString(t *testing.T) {
	got := Scenario1().String()
	want := "code:[pf0($) pf1($)] data:[lmu(n$)]"
	if got != want {
		t.Errorf("Scenario1.String() = %q, want %q", got, want)
	}
}
