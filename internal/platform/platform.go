// Package platform describes the AURIX TC27x hardware platform as seen by
// the contention models and by the cycle-level simulator: the SRI slave
// interfaces (targets), the operation types arbitrated on them, the
// per-(target, operation) latency and stall tables reported in the paper
// (Table 2), the memory map with cacheable and non-cacheable address
// segments, and the deployment-configuration rules of Table 3.
//
// Everything in this package is a plain value type; it carries no simulator
// state. The simulator (internal/sim and friends) and the analytical models
// (internal/core) both consume the same Platform description so that what
// the models assume and what the simulated hardware does cannot drift apart.
package platform

import "fmt"

// Target identifies one SRI slave interface. The AURIX TC27x memory system
// exposes the Program Flash banks through two independent PMU interfaces
// (PF0, PF1), the Data Flash through a third (DFL), and the LMU SRAM through
// the LMU interface. Contention happens per target: the SRI crossbar serves
// requests to distinct targets in parallel and arbitrates requests to the
// same target round-robin.
type Target int

const (
	// PF0 is the first program-flash interface of the PMU.
	PF0 Target = iota
	// PF1 is the second program-flash interface of the PMU.
	PF1
	// DFL is the data-flash interface of the PMU.
	DFL
	// LMU is the Local Memory Unit SRAM interface.
	LMU
	// NumTargets is the number of SRI slave interfaces.
	NumTargets
)

// Targets lists all SRI targets in a stable order. It is the set T of the
// paper.
var Targets = [NumTargets]Target{PF0, PF1, DFL, LMU}

// String returns the paper's name for the target (pf0, pf1, dfl, lmu).
func (t Target) String() string {
	switch t {
	case PF0:
		return "pf0"
	case PF1:
		return "pf1"
	case DFL:
		return "dfl"
	case LMU:
		return "lmu"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Valid reports whether t is one of the four SRI targets.
func (t Target) Valid() bool { return t >= 0 && t < NumTargets }

// Op is the type of operation a request performs on an SRI target. The
// paper discriminates only between code (instruction fetch) and data
// (load/store) requests; within each class the latency table already folds
// reads and writes together by taking the maximum.
type Op int

const (
	// Code is an instruction-fetch request.
	Code Op = iota
	// Data is a data load or store request.
	Data
	// NumOps is the number of operation types.
	NumOps
)

// Ops lists the operation types in a stable order. It is the set O of the
// paper.
var Ops = [NumOps]Op{Code, Data}

// String returns the paper's name for the operation type (co, da).
func (o Op) String() string {
	switch o {
	case Code:
		return "co"
	case Data:
		return "da"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Valid reports whether o is Code or Data.
func (o Op) Valid() bool { return o >= 0 && o < NumOps }

// CanAccess reports whether an operation of type o may legally target t on
// the TC27x. Code can be fetched from the program-flash banks and the LMU
// but never from the data flash; data can reach every target (data in
// program flash is constant data). This is the access-path structure of the
// paper's Figure 2.
func CanAccess(t Target, o Op) bool {
	if !t.Valid() || !o.Valid() {
		return false
	}
	if o == Code && t == DFL {
		return false
	}
	return true
}

// AccessPairs returns the list of legal (target, op) pairs, in stable
// order: the seven access paths of Figure 2 (3 code paths + 4 data paths).
func AccessPairs() []TargetOp {
	pairs := make([]TargetOp, 0, 7)
	for _, o := range Ops {
		for _, t := range Targets {
			if CanAccess(t, o) {
				pairs = append(pairs, TargetOp{Target: t, Op: o})
			}
		}
	}
	return pairs
}

// TargetOp is a (target, operation) pair, the index of every per-access
// latency or count in the models.
type TargetOp struct {
	Target Target
	Op     Op
}

// String formats the pair as "target/op", e.g. "pf0/co".
func (to TargetOp) String() string {
	return to.Target.String() + "/" + to.Op.String()
}

// Valid reports whether the pair denotes a legal access path.
func (to TargetOp) Valid() bool { return CanAccess(to.Target, to.Op) }
