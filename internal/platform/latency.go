package platform

import "fmt"

// Latency holds the timing characterisation of one SRI target for one
// operation type, as measured in isolation (paper Table 2).
//
// Max is the maximum observable end-to-end latency of a single transaction;
// it is what a request of a *contender* is assumed to occupy the slave for
// in the worst case, and therefore the per-request delay coefficient l^{t,o}
// in the models. Min is the minimum observable end-to-end latency. Stall is
// the minimum number of pipeline stall cycles a single request charges to
// the issuing core's PMEM_STALL/DMEM_STALL counter (cs^{t,o}); it is lower
// than the end-to-end latency because prefetching and SRI pipelining hide
// part of it. Minimum stalls are what divide observed stall totals to
// over-approximate access counts (Eq. 4).
type Latency struct {
	Max   int64
	Min   int64
	Stall int64
}

// LatencyTable maps every legal (target, op) pair to its Latency. Illegal
// pairs (code on dfl) hold zero values and must not be consulted.
type LatencyTable [NumTargets][NumOps]Latency

// Lookup returns the latency entry for (t, o) and an error for illegal
// pairs.
func (lt *LatencyTable) Lookup(t Target, o Op) (Latency, error) {
	if !CanAccess(t, o) {
		return Latency{}, fmt.Errorf("platform: no %s access path to %s", o, t)
	}
	return lt[t][o], nil
}

// MaxLatency returns l^{t,o}, the worst-case per-request delay coefficient,
// panicking on illegal pairs (model code validates pairs up front).
func (lt *LatencyTable) MaxLatency(t Target, o Op) int64 {
	l, err := lt.Lookup(t, o)
	if err != nil {
		panic(err)
	}
	return l.Max
}

// MinStall returns cs^{t,o}, the minimum stall cycles a single (t,o) request
// charges to the issuing core, panicking on illegal pairs.
func (lt *LatencyTable) MinStall(t Target, o Op) int64 {
	l, err := lt.Lookup(t, o)
	if err != nil {
		panic(err)
	}
	return l.Stall
}

// MinStallFor returns the lowest per-request stall cycle count over all
// targets reachable by operation o: cs^co_min (Eq. 2) or cs^da_min (Eq. 3).
// Dividing a task's total observed stall cycles by this value over-
// approximates its number of SRI requests of that operation type (Eq. 4).
func (lt *LatencyTable) MinStallFor(o Op) int64 {
	var min int64 = -1
	for _, t := range Targets {
		if !CanAccess(t, o) {
			continue
		}
		if s := lt[t][o].Stall; min < 0 || s < min {
			min = s
		}
	}
	return min
}

// MaxLatencyFor returns the largest per-request delay over all targets
// reachable by operation o of the task under analysis, considering that the
// contender may hit the same target with either operation type. For code it
// is l^co_max (Eq. 6); for data, l^da_max (Eq. 7).
func (lt *LatencyTable) MaxLatencyFor(o Op) int64 {
	var max int64
	for _, t := range Targets {
		if !CanAccess(t, o) {
			continue
		}
		// The contender request occupying the slave can be of either
		// operation type that is legal on this target.
		for _, ob := range Ops {
			if !CanAccess(t, ob) {
				continue
			}
			if l := lt[t][ob].Max; l > max {
				max = l
			}
		}
	}
	return max
}

// Validate checks internal consistency: positive latencies on all legal
// pairs (which subsumes rejecting negative stall-cycle figures), Min <=
// Max, Stall <= Max (a request cannot stall the pipeline for longer than
// its own end-to-end latency), and strictly zero entries on illegal
// pairs. The last check matters now that tables arrive from disk and the
// wire, not only from code: a figure smuggled into an inaccessible slot
// (code on dfl) would silently survive and corrupt any future consumer
// that iterates raw indices instead of AccessPairs.
func (lt *LatencyTable) Validate() error {
	for _, to := range AccessPairs() {
		l := lt[to.Target][to.Op]
		switch {
		case l.Max <= 0 || l.Min <= 0 || l.Stall <= 0:
			return fmt.Errorf("platform: non-positive latency for %s: %+v", to, l)
		case l.Min > l.Max:
			return fmt.Errorf("platform: min latency %d exceeds max %d for %s", l.Min, l.Max, to)
		case l.Stall > l.Max:
			return fmt.Errorf("platform: stall %d exceeds max latency %d for %s", l.Stall, l.Max, to)
		}
	}
	for _, t := range Targets {
		for _, o := range Ops {
			if !CanAccess(t, o) && lt[t][o] != (Latency{}) {
				return fmt.Errorf("platform: illegal pair %s/%s holds non-zero latency %+v (must be zero)", t, o, lt[t][o])
			}
		}
	}
	return nil
}

// TC27xLatencies returns the latency table of the TC27x as characterised in
// the paper's Table 2:
//
//	target  lmax     lmin  cs(code)  cs(data)
//	lmu     11 (21)  11    11        10
//	pf0/1   16       12    6         11
//	dfl     43       43    -         42
//
// The 21-cycle figure for the LMU applies only to dirty data-cache misses
// (write-back plus linefill); it is exposed separately as
// TC27xLMUDirtyMissLatency because it applies "only on limited scenarios"
// and the models decide per scenario whether to use it.
func TC27xLatencies() LatencyTable {
	var lt LatencyTable
	lt[PF0][Code] = Latency{Max: 16, Min: 12, Stall: 6}
	lt[PF1][Code] = Latency{Max: 16, Min: 12, Stall: 6}
	lt[LMU][Code] = Latency{Max: 11, Min: 11, Stall: 11}
	lt[PF0][Data] = Latency{Max: 16, Min: 12, Stall: 11}
	lt[PF1][Data] = Latency{Max: 16, Min: 12, Stall: 11}
	lt[LMU][Data] = Latency{Max: 11, Min: 11, Stall: 10}
	lt[DFL][Data] = Latency{Max: 43, Min: 43, Stall: 42}
	return lt
}

// TC27xLMUDirtyMissLatency is the end-to-end LMU latency when a cacheable
// data access misses on a dirty line and the eviction write-back is folded
// into the transaction (the bracketed 21 in Table 2).
const TC27xLMUDirtyMissLatency int64 = 21
