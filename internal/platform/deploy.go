package platform

import (
	"errors"
	"fmt"
	"strings"
)

// Placement states where one class of a task's memory footprint lives and
// whether it is accessed through a cacheable segment.
type Placement struct {
	Target    Target
	Cacheable bool
}

// String formats the placement as e.g. "pf0($)" or "lmu(n$)".
func (p Placement) String() string {
	c := "n$"
	if p.Cacheable {
		c = "$"
	}
	return fmt.Sprintf("%s(%s)", p.Target, c)
}

// ErrPlacement reports a deployment that violates the TC27x architectural
// constraints of Table 3.
var ErrPlacement = errors.New("platform: placement violates TC27x constraints")

// ValidatePlacement checks one placement of code or data against the
// architectural constraint matrix of the paper's Table 3:
//
//	            pf0  pf1  dfl  lmu
//	code  $      ok   ok   no   ok
//	code  n$     ok   ok   no   ok
//	data  $      ok   ok   no   ok
//	data  n$     no   no   ok   ok
//
// Code can never be fetched from the data flash; non-cacheable data cannot
// be placed in program flash.
func ValidatePlacement(o Op, p Placement) error {
	if !o.Valid() || !p.Target.Valid() {
		return fmt.Errorf("%w: invalid op %v or target %v", ErrPlacement, o, p.Target)
	}
	if o == Code && p.Target == DFL {
		return fmt.Errorf("%w: code cannot be fetched from dfl", ErrPlacement)
	}
	if o == Data && !p.Cacheable && (p.Target == PF0 || p.Target == PF1) {
		return fmt.Errorf("%w: non-cacheable data cannot be placed in %s", ErrPlacement, p.Target)
	}
	if o == Data && p.Cacheable && p.Target == DFL {
		return fmt.Errorf("%w: cacheable data cannot be placed in dfl", ErrPlacement)
	}
	return nil
}

// Deployment is a task's memory-deployment configuration: where the parts
// of its code and data that do not fit in the local scratchpads live. A
// task may have several placements per class (e.g. constant data in pf0 and
// shared buffers in the lmu). Scratchpad-resident code and data generate no
// SRI traffic and are not listed.
type Deployment struct {
	Code []Placement
	Data []Placement
}

// Validate checks every placement against Table 3.
func (d Deployment) Validate() error {
	for _, p := range d.Code {
		if err := ValidatePlacement(Code, p); err != nil {
			return fmt.Errorf("code placement %s: %w", p, err)
		}
	}
	for _, p := range d.Data {
		if err := ValidatePlacement(Data, p); err != nil {
			return fmt.Errorf("data placement %s: %w", p, err)
		}
	}
	return nil
}

// String renders the deployment compactly, e.g.
// "code:[pf0($) pf1($)] data:[lmu(n$)]".
func (d Deployment) String() string {
	var b strings.Builder
	b.WriteString("code:[")
	for i, p := range d.Code {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	b.WriteString("] data:[")
	for i, p := range d.Data {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	b.WriteString("]")
	return b.String()
}

// MayAccess reports whether the deployment can generate SRI traffic of
// operation o on target t. The models use this to zero out infeasible PTAC
// variables.
func (d Deployment) MayAccess(t Target, o Op) bool {
	pls := d.Code
	if o == Data {
		pls = d.Data
	}
	for _, p := range pls {
		if p.Target == t {
			return true
		}
	}
	return false
}

// CacheableDataOnly reports whether every data placement is cacheable;
// when true the D-cache miss counters cover all SRI data traffic.
func (d Deployment) CacheableDataOnly() bool {
	for _, p := range d.Data {
		if !p.Cacheable {
			return false
		}
	}
	return true
}

// Scenario1 returns the deployment of the paper's evaluation Scenario 1
// (Figure 3-a): cacheable code fetched from pf0/pf1, non-cacheable data
// shared among cores in the lmu; the rest of the footprint is in local
// scratchpads. Because all code reaching the SRI is cacheable, PCACHE_MISS
// counts the task's SRI code requests exactly.
func Scenario1() Deployment {
	return Deployment{
		Code: []Placement{{PF0, true}, {PF1, true}},
		Data: []Placement{{LMU, false}},
	}
}

// Scenario2 returns the deployment of the paper's evaluation Scenario 2
// (Figure 3-b): cacheable code from pf0/pf1, data in the lmu both cacheable
// and non-cacheable, and constant cacheable data in pf0/pf1.
func Scenario2() Deployment {
	return Deployment{
		Code: []Placement{{PF0, true}, {PF1, true}},
		Data: []Placement{{LMU, true}, {LMU, false}, {PF0, true}, {PF1, true}},
	}
}
