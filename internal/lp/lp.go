// Package lp is a dense two-phase primal simplex solver for small linear
// programs, written against the needs of the ILP-PTAC contention model: a
// few dozen variables, bounds, and mixed <=/>=/= constraints. It maximizes
// a linear objective over non-negative (shifted) variables using Bland's
// rule, which guarantees termination.
//
// The solver is exact enough for the contention models because every
// coefficient they generate is a small integer (access counts and cycle
// latencies); tolerances only absorb floating-point round-off.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Inf is the canonical "no upper bound" value.
var Inf = math.Inf(1)

// Sense is the direction of a constraint.
type Sense int

const (
	// LE is <=.
	LE Sense = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Term is one coefficient in a linear expression.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is sum(terms) SENSE rhs.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program: maximize Obj subject to constraints and
// variable bounds. Build with NewProblem/AddVar/AddConstraint.
type Problem struct {
	lower, upper []float64
	obj          []float64
	cons         []Constraint
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// AddVar adds a variable with bounds [lo, hi] (hi may be Inf) and the given
// objective coefficient, returning its index.
func (p *Problem) AddVar(lo, hi, objCoeff float64) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds [%g, %g] are empty", lo, hi))
	}
	if math.IsInf(lo, -1) {
		panic("lp: free variables (lo = -Inf) are not supported")
	}
	p.lower = append(p.lower, lo)
	p.upper = append(p.upper, hi)
	p.obj = append(p.obj, objCoeff)
	return len(p.obj) - 1
}

// AddConstraint adds sum(terms) sense rhs. Terms may repeat a variable;
// coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, Constraint{Terms: cp, Sense: sense, RHS: rhs})
}

// Status classifies the solver outcome.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective grows without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the solver result. X has one entry per problem variable.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
}

// ErrNotConverged is returned if the simplex exceeds its iteration budget,
// which for these problem sizes indicates a bug rather than a hard
// instance.
var ErrNotConverged = errors.New("lp: simplex iteration budget exhausted")

const (
	tol     = 1e-9
	maxIter = 200000
)

// Solve maximizes the problem. The returned error is non-nil only for
// internal failures (iteration budget); infeasibility and unboundedness are
// reported in Solution.Status.
func Solve(p *Problem) (Solution, error) {
	n := len(p.obj)
	if n == 0 {
		return Solution{Status: Optimal}, nil
	}

	// Shift variables to y = x - lo >= 0 and collect rows. Finite upper
	// bounds become explicit y <= hi - lo rows.
	type row struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	var rows []row
	for _, c := range p.cons {
		r := row{coeffs: make([]float64, n), sense: c.Sense, rhs: c.RHS}
		for _, t := range c.Terms {
			r.coeffs[t.Var] += t.Coeff
			r.rhs -= t.Coeff * p.lower[t.Var] // shift
		}
		// Undo the shift accumulation: rhs was adjusted per term above.
		rows = append(rows, r)
	}
	for j := 0; j < n; j++ {
		if !math.IsInf(p.upper[j], 1) {
			r := row{coeffs: make([]float64, n), sense: LE, rhs: p.upper[j] - p.lower[j]}
			r.coeffs[j] = 1
			rows = append(rows, r)
		}
	}

	m := len(rows)
	// Column layout: [0,n) structural, then one slack/surplus per
	// inequality, then one artificial per row that needs it.
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	total := n + nSlack + m // upper bound on columns; artificials trimmed later
	a := make([][]float64, m)
	basis := make([]int, m)
	artStart := n + nSlack
	nArt := 0
	slackIdx := n
	for i, r := range rows {
		a[i] = make([]float64, total+1)
		copy(a[i], r.coeffs)
		rhs := r.rhs
		sense := r.sense
		if rhs < 0 {
			for j := 0; j < n; j++ {
				a[i][j] = -a[i][j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		a[i][total] = rhs
		switch sense {
		case LE:
			a[i][slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			a[i][slackIdx] = -1
			slackIdx++
			art := artStart + nArt
			a[i][art] = 1
			basis[i] = art
			nArt++
		case EQ:
			art := artStart + nArt
			a[i][art] = 1
			basis[i] = art
			nArt++
		}
	}
	nCols := artStart + nArt
	for i := range a {
		// Move RHS next to the used columns.
		a[i][nCols] = a[i][total]
		a[i] = a[i][:nCols+1]
	}

	t := &tableau{m: m, n: nCols, a: a, basis: basis}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		cost := make([]float64, nCols)
		for j := artStart; j < nCols; j++ {
			cost[j] = 1
		}
		obj, status, err := t.minimize(cost)
		if err != nil {
			return Solution{}, err
		}
		if status == Unbounded {
			return Solution{}, errors.New("lp: phase-1 unbounded (internal error)")
		}
		if obj > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot any artificial still in the basis out (its value is 0);
		// if its row has no usable column the row is redundant and the
		// artificial may stay pinned at zero as long as it never
		// re-enters: we forbid re-entry by pricing artificials at +Inf
		// below, implemented by removing their columns.
		for i := 0; i < m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > tol {
					t.pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: minimize -objective over structural + slack columns only.
	cost := make([]float64, nCols)
	for j := 0; j < n; j++ {
		cost[j] = -p.obj[j]
	}
	blocked := make([]bool, nCols)
	for j := artStart; j < nCols; j++ {
		blocked[j] = true
	}
	t.blocked = blocked
	_, status, err := t.minimize(cost)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.a[i][t.n]
		}
	}
	var objVal float64
	for j := 0; j < n; j++ {
		x[j] += p.lower[j] // unshift
		objVal += p.obj[j] * x[j]
	}
	return Solution{Status: Optimal, Objective: objVal, X: x}, nil
}

// tableau is a dense simplex tableau: m rows by n columns plus an RHS
// column at index n.
type tableau struct {
	m, n    int
	a       [][]float64
	basis   []int
	blocked []bool // columns that may not enter the basis
}

func (t *tableau) pivot(r, c int) {
	pr := t.a[r]
	pv := pr[c]
	for j := range pr {
		pr[j] /= pv
	}
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[r] = c
}

// minimize runs the primal simplex with Bland's rule on the given cost
// vector starting from the current basic feasible solution. It returns the
// achieved objective value.
func (t *tableau) minimize(cost []float64) (float64, Status, error) {
	for iter := 0; iter < maxIter; iter++ {
		// Reduced costs: d_j = cost_j - cB . B^-1 A_j. The tableau is
		// already B^-1 A, so d_j = cost_j - sum_i cost[basis[i]]*a[i][j].
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.blocked != nil && t.blocked[j] {
				continue
			}
			d := cost[j]
			for i := 0; i < t.m; i++ {
				if cb := cost[t.basis[i]]; cb != 0 {
					d -= cb * t.a[i][j]
				}
			}
			if d < -tol {
				enter = j // Bland: first improving index
				break
			}
		}
		if enter < 0 {
			var obj float64
			for i := 0; i < t.m; i++ {
				obj += cost[t.basis[i]] * t.a[i][t.n]
			}
			return obj, Optimal, nil
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > tol {
				ratio := t.a[i][t.n] / t.a[i][enter]
				if ratio < best-tol || (ratio < best+tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	return 0, Optimal, ErrNotConverged
}
