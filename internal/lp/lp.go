// Package lp is a dense two-phase primal simplex solver for small linear
// programs, written against the needs of the ILP-PTAC contention model: a
// few dozen variables, bounds, and mixed <=/>=/= constraints. It maximizes
// a linear objective over non-negative (shifted) variables using Bland's
// rule, which guarantees termination.
//
// The solver is exact enough for the contention models because every
// coefficient they generate is a small integer (access counts and cycle
// latencies); tolerances only absorb floating-point round-off.
//
// # One-shot vs reusable solving
//
// The package-level Solve is the simple entry point: it allocates fresh
// state, solves, and returns an unaliased Solution. Hot paths that solve
// many related problems — branch & bound in internal/ilp, the sweep grids
// in internal/experiments — should instead hold a Solver, which reuses
// its tableau arena across calls and warm-starts re-solves that change
// only bounds (SetBounds) or right-hand sides (SetRHS). See the Solver
// type for the precise reuse and invalidation contract.
//
// # Mutating a problem between solves
//
// A Problem may be mutated between Solve calls. AddVar and AddConstraint
// change the problem's structure (they bump an internal generation
// counter, invalidating any warm-start state a Solver holds for it);
// SetBounds and SetRHS change only numbers and keep warm starts eligible.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Inf is the canonical "no upper bound" value.
var Inf = math.Inf(1)

// Sense is the direction of a constraint.
type Sense int

const (
	// LE is <=.
	LE Sense = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Term is one coefficient in a linear expression.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is sum(terms) SENSE rhs.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// problemIDs hands every Problem a distinct identity so a Solver can tell
// "same problem, new numbers" (warm-startable) from "different problem
// that happens to live at a reused address".
var problemIDs atomic.Uint64

// Problem is a linear program: maximize Obj subject to constraints and
// variable bounds. Build with NewProblem/AddVar/AddConstraint; adjust an
// existing problem between solves with SetBounds/SetRHS.
type Problem struct {
	lower, upper []float64
	obj          []float64
	cons         []Constraint
	// termArena backs every constraint's Terms slice so rebuilding a
	// Reset problem in place allocates nothing in the steady state.
	// Entries written before an arena growth keep aliasing the old
	// backing array, which stays valid because terms are never mutated
	// after AddConstraint.
	termArena []Term

	id        uint64 // distinct per Problem, never reused
	structGen uint64 // bumped by AddVar/AddConstraint
}

// NewProblem returns an empty maximization problem.
func NewProblem() *Problem { return &Problem{id: problemIDs.Add(1)} }

// Reset empties the problem for rebuilding in place, retaining all
// allocated capacity (variable slices, constraint storage, the term
// arena). The reset problem has a fresh identity, so no Solver will
// warm-start across a Reset — a rebuilt problem is a different problem.
func (p *Problem) Reset() {
	p.lower = p.lower[:0]
	p.upper = p.upper[:0]
	p.obj = p.obj[:0]
	p.cons = p.cons[:0]
	p.termArena = p.termArena[:0]
	p.id = problemIDs.Add(1)
	p.structGen = 0
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// AddVar adds a variable with bounds [lo, hi] (hi may be Inf) and the given
// objective coefficient, returning its index.
func (p *Problem) AddVar(lo, hi, objCoeff float64) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds [%g, %g] are empty", lo, hi))
	}
	if math.IsInf(lo, -1) {
		panic("lp: free variables (lo = -Inf) are not supported")
	}
	p.lower = append(p.lower, lo)
	p.upper = append(p.upper, hi)
	p.obj = append(p.obj, objCoeff)
	p.structGen++
	return len(p.obj) - 1
}

// SetBounds replaces variable v's bounds. It validates like AddVar and
// does not change the problem's structure, so a Solver that solved this
// problem before remains warm-start eligible.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	if v < 0 || v >= len(p.obj) {
		panic(fmt.Sprintf("lp: SetBounds on unknown variable %d", v))
	}
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds [%g, %g] are empty", lo, hi))
	}
	if math.IsInf(lo, -1) {
		panic("lp: free variables (lo = -Inf) are not supported")
	}
	p.lower[v] = lo
	p.upper[v] = hi
}

// Bounds returns variable v's current bounds.
func (p *Problem) Bounds(v int) (lo, hi float64) {
	return p.lower[v], p.upper[v]
}

// SetRHS replaces constraint i's right-hand side without changing the
// problem's structure, keeping warm starts eligible.
func (p *Problem) SetRHS(i int, rhs float64) {
	if i < 0 || i >= len(p.cons) {
		panic(fmt.Sprintf("lp: SetRHS on unknown constraint %d", i))
	}
	p.cons[i].RHS = rhs
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint adds sum(terms) sense rhs, returning the constraint's
// index (usable with SetRHS). Terms may repeat a variable; coefficients
// accumulate.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	start := len(p.termArena)
	p.termArena = append(p.termArena, terms...)
	cp := p.termArena[start:len(p.termArena):len(p.termArena)]
	p.cons = append(p.cons, Constraint{Terms: cp, Sense: sense, RHS: rhs})
	p.structGen++
	return len(p.cons) - 1
}

// Status classifies the solver outcome.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective grows without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the solver result. X has one entry per problem variable.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
}

// ErrNotConverged is returned if the simplex exceeds its iteration budget,
// which for these problem sizes indicates a bug rather than a hard
// instance.
var ErrNotConverged = errors.New("lp: simplex iteration budget exhausted")

const (
	tol     = 1e-9
	maxIter = 200000
)

// Solve maximizes the problem with a fresh solver. The returned error is
// non-nil only for internal failures (iteration budget); infeasibility and
// unboundedness are reported in Solution.Status. The returned Solution
// does not alias any reusable state.
func Solve(p *Problem) (Solution, error) {
	sol, err := NewSolver().Solve(p)
	if err == nil && sol.X != nil {
		// Detach from the discarded solver's arena so callers may keep X.
		x := make([]float64, len(sol.X))
		copy(x, sol.X)
		sol.X = x
	}
	return sol, err
}
