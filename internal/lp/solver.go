package lp

import (
	"errors"
	"math"
)

// Solver is a reusable simplex engine. Unlike the package-level Solve, a
// Solver retains its dense tableau, basis, reduced-cost row and every
// scratch slice between calls (an arena), so a caller that solves many
// problems of similar size pays for matrix allocation once instead of per
// solve. On top of the arena it implements warm starts: when consecutive
// Solve calls present the *same problem structure* — the same Problem
// value, with no variables or constraints added in between, only bounds
// (SetBounds) or right-hand sides (SetRHS) changed — the solver resumes
// from the previous optimal basis with a dual-simplex cleanup instead of
// re-solving from scratch. That is exactly the shape branch & bound child
// nodes and adjacent sweep-grid cells produce, and it typically cuts the
// pivot count per re-solve by an order of magnitude.
//
// # Reuse contract
//
// A Solver may retain, between calls: the full tableau of the last solve,
// its basis and reduced costs, and the identity of the last Problem
// (a structural generation counter, not a reference — the Problem's memory
// is never pinned). Solution.X returned by (*Solver).Solve aliases the
// solver's arena only until the next Solve call on the same Solver; the
// package-level Solve never reuses a Solver, so its solutions are
// unaliased. A Solver is NOT safe for concurrent use; use one per
// goroutine (internal/ilp pools them).
//
// # What invalidates a basis
//
// The warm path is taken only when all of the following hold; otherwise
// the solver silently falls back to a cold solve, so warm starting is a
// pure optimisation, never a behaviour change:
//
//   - the previous call solved the same Problem (same identity) to
//     optimality;
//   - no variable or constraint was added since (structural generation
//     unchanged);
//   - the pattern of finite upper bounds is unchanged (a bound moving
//     between finite and +Inf adds or removes a tableau row);
//   - no row's shifted right-hand side changed sign (the cold build
//     normalises negative RHS rows by negation, so a sign change alters
//     the tableau layout).
//
// Bound and RHS changes that pass these checks preserve dual feasibility
// of the stored basis (costs and columns are untouched), so the dual
// simplex — with Bland's anti-cycling rules — restores primal feasibility
// in few pivots and terminates.
type Solver struct {
	// Last-solve identity: which problem structure the stored tableau
	// belongs to.
	probID    uint64
	structGen uint64
	ok        bool // last solve reached Optimal and the tableau is reusable

	n        int // structural variables
	m        int // tableau rows
	nCols    int // structural + slack + artificial columns
	artStart int

	rows  []rowInfo
	a     [][]float64 // m rows of nCols+1 (RHS in column nCols)
	abuf  []float64   // arena backing a
	basis []int
	d     []float64 // reduced costs under the phase-2 cost vector
	dOn   bool      // pivots maintain d

	blocked  []bool    // columns barred from entering (artificials in phase 2)
	cost     []float64 // scratch cost vector
	shiftRHS []float64 // post-shift, post-flip RHS of the last build
	scratch  []float64 // candidate RHS during warm validation
	upInf    []bool    // finite-upper pattern of the last build

	stats SolveStats // cumulative accounting since construction
}

// SolveStats is the Solver's cumulative work accounting: how often the
// warm path succeeded, how often a warm attempt surfaced a late
// structural mismatch and fell back cold, how many solves built from
// scratch, and the total simplex pivots across all phases. A Solver is
// single-goroutine, so plain fields suffice; callers that aggregate
// across pooled solvers (internal/ilp) diff Stats() around a solve and
// flush the delta to their own counters.
type SolveStats struct {
	Warm          int64 // solves served by the warm dual-simplex path
	WarmFallbacks int64 // warm attempts that fell back to a cold build
	Cold          int64 // solves built from scratch (incl. fallbacks)
	Pivots        int64 // simplex pivots, all phases
}

// Stats returns the cumulative solve statistics.
func (s *Solver) Stats() SolveStats { return s.stats }

// rowInfo records one tableau row's provenance and normalisation.
type rowInfo struct {
	// src is the constraint index, or -(v+1) for the upper-bound row of
	// variable v.
	src int
	// sense is the row's sense after negative-RHS normalisation.
	sense Sense
	// flipped records whether the row was negated during the cold build.
	flipped bool
	// carrier is the column that held this row's +1 identity at build
	// time (the slack of a <= row, the artificial of a >=/= row); its
	// tableau column is the corresponding column of the basis inverse.
	carrier int
}

// NewSolver returns an empty Solver; the first Solve sizes the arena.
func NewSolver() *Solver { return &Solver{} }

// Solve maximizes the problem, warm-starting from the previous call's
// basis when the problem differs only in bounds or right-hand sides. The
// returned error is non-nil only for internal failures (iteration
// budget); infeasibility and unboundedness are reported in
// Solution.Status. Solution.X aliases the Solver's arena until the next
// Solve call.
func (s *Solver) Solve(p *Problem) (Solution, error) {
	n := len(p.obj)
	if n == 0 {
		s.ok = false
		return Solution{Status: Optimal}, nil
	}
	if s.canWarm(p) {
		if sol, done, err := s.warmSolve(p); done {
			s.stats.Warm++
			return sol, err
		}
		s.stats.WarmFallbacks++
	}
	s.stats.Cold++
	return s.coldSolve(p)
}

// SolveCold maximizes the problem from scratch, never consulting the
// stored basis, while still reusing the Solver's tableau arena. The
// result is a pure function of the Problem's current coefficients and
// bounds — unlike Solve, whose returned vertex can depend on which basis
// the previous call left behind when the optimum is degenerate. Callers
// that need reproducible vertices regardless of solver history (the
// parallel branch & bound phase of internal/ilp) use this entry point.
func (s *Solver) SolveCold(p *Problem) (Solution, error) {
	n := len(p.obj)
	if n == 0 {
		s.ok = false
		return Solution{Status: Optimal}, nil
	}
	s.stats.Cold++
	return s.coldSolve(p)
}

// canWarm reports whether the stored tableau belongs to p's current
// structure.
func (s *Solver) canWarm(p *Problem) bool {
	if !s.ok || s.probID != p.id || s.structGen != p.structGen || s.n != len(p.obj) {
		return false
	}
	for j, inf := range s.upInf {
		if math.IsInf(p.upper[j], 1) != inf {
			return false
		}
	}
	return true
}

// warmSolve re-solves after bound/RHS changes from the stored optimal
// basis. done=false means a structural mismatch surfaced late (an RHS
// sign flip) and the caller must fall back to the cold path.
func (s *Solver) warmSolve(p *Problem) (Solution, bool, error) {
	// Recompute every row's shifted RHS under the current bounds; any
	// flip-pattern change invalidates the stored layout.
	if cap(s.scratch) < s.m {
		s.scratch = make([]float64, s.m)
	}
	s.scratch = s.scratch[:s.m]
	for i, ri := range s.rows {
		var rhs float64
		if ri.src >= 0 {
			c := &p.cons[ri.src]
			rhs = c.RHS
			for _, t := range c.Terms {
				rhs -= t.Coeff * p.lower[t.Var]
			}
		} else {
			v := -ri.src - 1
			rhs = p.upper[v] - p.lower[v]
		}
		if (rhs < 0) != ri.flipped {
			return Solution{}, false, nil
		}
		if ri.flipped {
			rhs = -rhs
		}
		s.scratch[i] = rhs
	}

	// Push the RHS deltas through the basis inverse, which the tableau
	// already holds in each row's carrier column.
	for i := range s.rows {
		delta := s.scratch[i] - s.shiftRHS[i]
		if delta == 0 {
			continue
		}
		col := s.rows[i].carrier
		for k := 0; k < s.m; k++ {
			s.a[k][s.nCols] += delta * s.a[k][col]
		}
	}
	copy(s.shiftRHS, s.scratch)

	// Dual simplex: the stored basis stayed dual feasible (costs and
	// columns unchanged), so restoring primal feasibility restores
	// optimality. Bland-style rules (leave: smallest basis index among
	// violated rows; enter: smallest index attaining the minimum dual
	// ratio) guarantee termination.
	s.dOn = true
	for iter := 0; iter < maxIter; iter++ {
		leave := -1
		for i := 0; i < s.m; i++ {
			if s.a[i][s.nCols] < -tol && (leave < 0 || s.basis[i] < s.basis[leave]) {
				leave = i
			}
		}
		if leave < 0 {
			// Primal feasibility of the tableau is not yet feasibility of
			// the problem: a basic artificial standing in for an EQ/GE row
			// must also have stayed at zero. A positive value there means
			// the pushed deltas landed on a violated row that dual simplex
			// cannot see (artificial columns are blocked from entering, and
			// a nonnegative RHS raises no alarm) — exactly the shape a
			// redundant equality row takes when its duplicate's RHS moves.
			// Rebuild cold and let phase 1 judge feasibility.
			for i := 0; i < s.m; i++ {
				if s.basis[i] >= s.artStart && s.a[i][s.nCols] > tol {
					return Solution{}, false, nil
				}
			}
			return s.extract(p), true, nil
		}
		row := s.a[leave]
		enter := -1
		var best float64
		for j := 0; j < s.nCols; j++ {
			if row[j] >= -tol || (s.blocked != nil && s.blocked[j]) {
				continue
			}
			dj := s.d[j]
			if dj < 0 {
				dj = 0 // round-off below the optimality tolerance
			}
			ratio := dj / -row[j]
			if enter < 0 || ratio < best {
				best, enter = ratio, j
			}
		}
		if enter < 0 {
			// The violated row has no negative entry: with y >= 0 its
			// left side cannot reach the negative RHS.
			s.ok = false
			return Solution{Status: Infeasible}, true, nil
		}
		s.pivot(leave, enter)
	}
	s.ok = false
	return Solution{}, true, ErrNotConverged
}

// coldSolve builds the tableau from scratch and runs the two-phase primal
// simplex, storing the final state for future warm starts.
func (s *Solver) coldSolve(p *Problem) (Solution, error) {
	s.ok = false
	n := len(p.obj)

	// Pass 1: row skeleton — shifted RHS, negative-RHS normalisation,
	// column layout. Variables are shifted to y = x - lo >= 0; finite
	// upper bounds become explicit y <= hi - lo rows.
	s.rows = s.rows[:0]
	for ci := range p.cons {
		c := &p.cons[ci]
		rhs := c.RHS
		for _, t := range c.Terms {
			rhs -= t.Coeff * p.lower[t.Var]
		}
		ri := rowInfo{src: ci, sense: c.Sense}
		if rhs < 0 {
			ri.flipped = true
			rhs = -rhs
			switch ri.sense {
			case LE:
				ri.sense = GE
			case GE:
				ri.sense = LE
			}
		}
		s.rows = append(s.rows, ri)
		s.scratch = append(s.scratch[:len(s.rows)-1], rhs)
	}
	s.upInf = resizeBool(s.upInf, n)
	for j := 0; j < n; j++ {
		s.upInf[j] = math.IsInf(p.upper[j], 1)
		if !s.upInf[j] {
			s.rows = append(s.rows, rowInfo{src: -(j + 1), sense: LE})
			s.scratch = append(s.scratch[:len(s.rows)-1], p.upper[j]-p.lower[j])
		}
	}
	m := len(s.rows)

	nSlack, nArt := 0, 0
	for _, ri := range s.rows {
		if ri.sense != EQ {
			nSlack++
		}
		if ri.sense != LE {
			nArt++
		}
	}
	artStart := n + nSlack
	nCols := artStart + nArt
	s.n, s.m, s.artStart, s.nCols = n, m, artStart, nCols

	// Arena layout: m tableau rows of nCols+1, then the support slices.
	s.abuf = resizeFloat(s.abuf, m*(nCols+1))
	if cap(s.a) < m {
		s.a = make([][]float64, m)
	}
	s.a = s.a[:m]
	for i := 0; i < m; i++ {
		s.a[i] = s.abuf[i*(nCols+1) : (i+1)*(nCols+1)]
	}
	s.basis = resizeInt(s.basis, m)
	s.d = resizeFloat(s.d, nCols)
	s.cost = resizeFloat(s.cost, nCols)
	s.shiftRHS = resizeFloat(s.shiftRHS, m)
	copy(s.shiftRHS, s.scratch[:m])
	s.blocked = nil
	s.dOn = false

	// Pass 2: fill the matrix in the same element order as a fresh
	// build, so a reused arena is numerically indistinguishable from a
	// new allocation.
	slackIdx, artIdx := n, artStart
	for i := range s.rows {
		ri := &s.rows[i]
		row := s.a[i]
		if ri.src >= 0 {
			for _, t := range p.cons[ri.src].Terms {
				row[t.Var] += t.Coeff
			}
		} else {
			row[-ri.src-1] = 1
		}
		if ri.flipped {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
		}
		row[nCols] = s.shiftRHS[i]
		switch ri.sense {
		case LE:
			row[slackIdx] = 1
			s.basis[i] = slackIdx
			ri.carrier = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			s.basis[i] = artIdx
			ri.carrier = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			s.basis[i] = artIdx
			ri.carrier = artIdx
			artIdx++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		clear(s.cost)
		for j := artStart; j < nCols; j++ {
			s.cost[j] = 1
		}
		obj, status, err := s.minimize(s.cost)
		if err != nil {
			return Solution{}, err
		}
		if status == Unbounded {
			return Solution{}, errors.New("lp: phase-1 unbounded (internal error)")
		}
		if obj > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot any artificial still in the basis out (its value is 0);
		// if its row has no usable column the row is redundant and the
		// artificial may stay pinned at zero as long as it never
		// re-enters: we forbid re-entry by blocking artificial columns
		// in phase 2.
		s.dOn = false
		for i := 0; i < m; i++ {
			if s.basis[i] < artStart {
				continue
			}
			for j := 0; j < artStart; j++ {
				if math.Abs(s.a[i][j]) > tol {
					s.pivot(i, j)
					break
				}
			}
		}
	}

	// Phase 2: minimize -objective over structural + slack columns only.
	clear(s.cost)
	for j := 0; j < n; j++ {
		s.cost[j] = -p.obj[j]
	}
	s.blocked = resizeBool(s.blocked, nCols)
	for j := artStart; j < nCols; j++ {
		s.blocked[j] = true
	}
	_, status, err := s.minimize(s.cost)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	s.probID, s.structGen = p.id, p.structGen
	return s.extract(p), nil
}

// extract reads the primal solution off the tableau and marks the state
// reusable. X aliases the scratch arena.
func (s *Solver) extract(p *Problem) Solution {
	n := s.n
	if cap(s.scratch) < n {
		s.scratch = make([]float64, n)
	}
	x := s.scratch[:n]
	clear(x)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.a[i][s.nCols]
		}
	}
	var objVal float64
	for j := 0; j < n; j++ {
		x[j] += p.lower[j] // unshift
		objVal += p.obj[j] * x[j]
	}
	s.ok = true
	return Solution{Status: Optimal, Objective: objVal, X: x}
}

// pivot performs a standard tableau pivot on (r, c) and, when enabled,
// keeps the reduced-cost row in sync.
func (s *Solver) pivot(r, c int) {
	s.stats.Pivots++
	pr := s.a[r]
	pv := pr[c]
	for j := range pr {
		pr[j] /= pv
	}
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.a[i][c]
		if f == 0 {
			continue
		}
		ri := s.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
	}
	if s.dOn {
		if f := s.d[c]; f != 0 {
			for j := 0; j < s.nCols; j++ {
				s.d[j] -= f * pr[j]
			}
		}
	}
	s.basis[r] = c
}

// minimize runs the primal simplex with Bland's rule on the given cost
// vector starting from the current basic feasible solution, maintaining
// the reduced-cost row incrementally. It returns the achieved objective
// value.
func (s *Solver) minimize(cost []float64) (float64, Status, error) {
	// Fresh reduced costs: d_j = cost_j - cB . B^-1 A_j. The tableau is
	// already B^-1 A, so d_j = cost_j - sum_i cost[basis[i]]*a[i][j].
	for j := 0; j < s.nCols; j++ {
		v := cost[j]
		for i := 0; i < s.m; i++ {
			if cb := cost[s.basis[i]]; cb != 0 {
				v -= cb * s.a[i][j]
			}
		}
		s.d[j] = v
	}
	s.dOn = true
	for iter := 0; iter < maxIter; iter++ {
		enter := -1
		for j := 0; j < s.nCols; j++ {
			if s.blocked != nil && s.blocked[j] {
				continue
			}
			if s.d[j] < -tol {
				enter = j // Bland: first improving index
				break
			}
		}
		if enter < 0 {
			var obj float64
			for i := 0; i < s.m; i++ {
				obj += cost[s.basis[i]] * s.a[i][s.nCols]
			}
			return obj, Optimal, nil
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < s.m; i++ {
			if s.a[i][enter] > tol {
				ratio := s.a[i][s.nCols] / s.a[i][enter]
				if ratio < best-tol || (ratio < best+tol && (leave < 0 || s.basis[i] < s.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, Unbounded, nil
		}
		s.pivot(leave, enter)
	}
	return 0, Optimal, ErrNotConverged
}

// resizeFloat returns buf resized to n elements, zeroed, reusing its
// backing array when large enough.
func resizeFloat(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func resizeInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func resizeBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
