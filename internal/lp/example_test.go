package lp_test

import (
	"fmt"

	"repro/internal/lp"
)

// Solve a small LP once with the package-level entry point.
func Example() {
	p := lp.NewProblem()
	x := p.AddVar(0, 4, 3) // 0 <= x <= 4, objective 3x
	y := p.AddVar(0, lp.Inf, 2)
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 6)

	sol, err := lp.Solve(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s obj=%g x=%g y=%g\n", sol.Status, sol.Objective, sol.X[x], sol.X[y])
	// Output: optimal obj=16 x=4 y=2
}

// ExampleSolver_warmStart re-solves a problem after tightening a bound.
// Because only bounds changed, the second Solve resumes from the first
// solve's basis (a warm start) instead of rebuilding the tableau — the
// access pattern branch & bound generates at every node.
func ExampleSolver_warmStart() {
	p := lp.NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 1)
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 2}, {Var: y, Coeff: 1}}, lp.LE, 15)

	s := lp.NewSolver()
	sol, _ := s.Solve(p)
	fmt.Printf("root:   obj=%g\n", sol.Objective)

	// Branch: force x <= 2. Structure is unchanged, so this re-solve is
	// warm-started from the previous optimal basis.
	p.SetBounds(x, 0, 2)
	sol, _ = s.Solve(p)
	fmt.Printf("branch: obj=%g x=%g\n", sol.Objective, sol.X[x])
	// Output:
	// root:   obj=12.5
	// branch: obj=12 x=2
}

// ExampleProblem_SetRHS adjusts a constraint's right-hand side between
// solves, the other warm-start-eligible mutation.
func ExampleProblem_SetRHS() {
	p := lp.NewProblem()
	x := p.AddVar(0, lp.Inf, 1)
	budget := p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}}, lp.LE, 5)

	s := lp.NewSolver()
	sol, _ := s.Solve(p)
	fmt.Printf("obj=%g\n", sol.Objective)

	p.SetRHS(budget, 8)
	sol, _ = s.Solve(p)
	fmt.Printf("obj=%g\n", sol.Objective)
	// Output:
	// obj=5
	// obj=8
}
