package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSenseStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings")
	}
	if Sense(9).String() == "" || Status(9).String() == "" {
		t.Error("fallback strings empty")
	}
}

func TestEmptyProblem(t *testing.T) {
	s, err := Solve(NewProblem())
	if err != nil || s.Status != Optimal {
		t.Fatalf("empty problem: %v %v", s.Status, err)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6; opt at (4, 0) = 12.
	p := NewProblem()
	x := p.AddVar(0, Inf, 3)
	y := p.AddVar(0, Inf, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 12) {
		t.Fatalf("got %v obj=%g, want optimal 12", s.Status, s.Objective)
	}
	if !approx(s.X[x], 4) || !approx(s.X[y], 0) {
		t.Errorf("x=%g y=%g, want 4, 0", s.X[x], s.X[y])
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y <= 10, x + 2y <= 10; opt at (10/3, 10/3).
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	y := p.AddVar(0, Inf, 1)
	p.AddConstraint([]Term{{x, 2}, {y, 1}}, LE, 10)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 10)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 20.0/3) {
		t.Errorf("obj = %g, want 20/3", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x s.t. x + y = 5, y >= 2  =>  x = 3.
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	y := p.AddVar(0, Inf, 0)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint([]Term{{y, 1}}, GE, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 3) {
		t.Fatalf("status=%v obj=%g, want optimal 3", s.Status, s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 30)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	y := p.AddVar(0, Inf, 0)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestVariableBounds(t *testing.T) {
	// max x + y with x in [1, 3], y in [2, 2].
	p := NewProblem()
	x := p.AddVar(1, 3, 1)
	y := p.AddVar(2, 2, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 5) || !approx(s.X[x], 3) || !approx(s.X[y], 2) {
		t.Errorf("obj=%g x=%g y=%g, want 5, 3, 2", s.Objective, s.X[x], s.X[y])
	}
}

func TestLowerBoundShiftInConstraints(t *testing.T) {
	// max x s.t. x + y <= 10 with y fixed at 4 by bounds: x = 6.
	p := NewProblem()
	p.AddVar(0, Inf, 1)
	p.AddVar(4, 4, 0)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 6) {
		t.Errorf("obj = %g, want 6", s.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -2  (i.e. x >= 2): opt x=2, obj=-2.
	p := NewProblem()
	x := p.AddVar(0, Inf, -1)
	p.AddConstraint([]Term{{x, -1}}, LE, -2)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[x], 2) {
		t.Errorf("status=%v x=%g, want optimal x=2", s.Status, s.X[x])
	}
}

func TestRepeatedTermsAccumulate(t *testing.T) {
	// x + x <= 4 means x <= 2.
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	p.AddConstraint([]Term{{x, 1}, {x, 1}}, LE, 4)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 2) {
		t.Errorf("obj = %g, want 2", s.Objective)
	}
}

func TestDegenerateProblemTerminates(t *testing.T) {
	// A classic degenerate instance; Bland's rule must terminate.
	p := NewProblem()
	x1 := p.AddVar(0, Inf, 10)
	x2 := p.AddVar(0, Inf, -57)
	x3 := p.AddVar(0, Inf, -9)
	x4 := p.AddVar(0, Inf, -24)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -5.5}, {x3, -2.5}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -1.5}, {x3, -0.5}, {x4, 1}}, LE, 0)
	p.AddConstraint([]Term{{x1, 1}}, LE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 1) {
		t.Errorf("status=%v obj=%g, want optimal 1", s.Status, s.Objective)
	}
}

func TestAddVarPanics(t *testing.T) {
	p := NewProblem()
	for name, f := range map[string]func(){
		"empty bounds": func() { p.AddVar(3, 1, 0) },
		"free var":     func() { p.AddVar(math.Inf(-1), 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAddConstraintUnknownVarPanics(t *testing.T) {
	p := NewProblem()
	defer func() {
		if recover() == nil {
			t.Error("unknown var did not panic")
		}
	}()
	p.AddConstraint([]Term{{3, 1}}, LE, 1)
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows leave an artificial pinned in the basis;
	// the solver must still find the optimum.
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	y := p.AddVar(0, Inf, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 10)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 5) {
		t.Errorf("status=%v obj=%g, want optimal 5", s.Status, s.Objective)
	}
}

// Property: for max sum(x) s.t. sum(x) <= b with k vars, the optimum is b.
func TestSumBoundProperty(t *testing.T) {
	f := func(kRaw, bRaw uint8) bool {
		k := int(kRaw%5) + 1
		b := float64(bRaw % 100)
		p := NewProblem()
		terms := make([]Term, k)
		for i := 0; i < k; i++ {
			v := p.AddVar(0, Inf, 1)
			terms[i] = Term{v, 1}
		}
		p.AddConstraint(terms, LE, b)
		s, err := Solve(p)
		return err == nil && s.Status == Optimal && approx(s.Objective, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: solutions respect every constraint and bound.
func TestSolutionFeasibilityProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Random small LP: 3 vars, 3 LE constraints with small positive
		// coefficients — always feasible (origin) and bounded.
		rnd := seed
		next := func() float64 {
			rnd = rnd*1664525 + 1013904223
			return float64(rnd%7) + 1
		}
		p := NewProblem()
		for i := 0; i < 3; i++ {
			p.AddVar(0, Inf, next())
		}
		type c struct {
			terms []Term
			rhs   float64
		}
		var cons []c
		for i := 0; i < 3; i++ {
			terms := []Term{{0, next()}, {1, next()}, {2, next()}}
			rhs := next() * 10
			p.AddConstraint(terms, LE, rhs)
			cons = append(cons, c{terms, rhs})
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		for _, cc := range cons {
			var lhs float64
			for _, tm := range cc.terms {
				lhs += tm.Coeff * s.X[tm.Var]
			}
			if lhs > cc.rhs+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
