package lp

import (
	"math"
	"testing"
)

// fuzzDecoder turns a byte stream into a bounded LP. Exhausted input reads
// as zero, so every prefix decodes deterministically; small integer
// coefficient ranges make degenerate bases, redundant rows and pinned
// variables — the cases TestDegenerateProblemTerminates and
// TestRedundantEqualityRows hand-pick — common rather than rare.
type fuzzDecoder struct {
	data []byte
	pos  int
}

func (d *fuzzDecoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// decodeProblem builds 1-4 variables and 0-4 constraints from the stream.
// Per variable: lo in 0..2; hi infinite (tag%4 == 0) or lo + tag%10 — a
// pinned variable whenever tag%10 == 0; objective in -60..60. Per
// constraint: sense tag%3, RHS in -20..20, one coefficient in -20..20 per
// variable.
func (d *fuzzDecoder) decodeProblem() *Problem {
	nVars := 1 + int(d.next()%4)
	nCons := int(d.next() % 5)
	p := NewProblem()
	for i := 0; i < nVars; i++ {
		lo := float64(d.next() % 3)
		hi := Inf
		if h := d.next(); h%4 != 0 {
			hi = lo + float64(h%10)
		}
		p.AddVar(lo, hi, float64(int(d.next()%121)-60))
	}
	for c := 0; c < nCons; c++ {
		sense := Sense(d.next() % 3)
		rhs := float64(int(d.next()%41) - 20)
		terms := make([]Term, nVars)
		for i := 0; i < nVars; i++ {
			terms[i] = Term{i, float64(int(d.next()%41) - 20)}
		}
		p.AddConstraint(terms, sense, rhs)
	}
	return p
}

// applyPerturbations consumes the remaining stream as warm-eligible
// mutations (SetRHS / SetBounds nudges in -10..10), returning whether any
// were applied.
func (d *fuzzDecoder) applyPerturbations(p *Problem) bool {
	applied := false
	for d.pos < len(d.data) {
		kind := d.next()
		idx := int(d.next())
		delta := float64(int(d.next()%21) - 10)
		if kind%2 == 0 && p.NumConstraints() > 0 {
			i := idx % p.NumConstraints()
			p.SetRHS(i, p.cons[i].RHS+delta)
			applied = true
		} else if p.NumVars() > 0 {
			v := idx % p.NumVars()
			lo, hi := p.Bounds(v)
			if !math.IsInf(hi, 1) {
				hi += delta
				if hi < lo {
					hi = lo
				}
				p.SetBounds(v, lo, hi)
				applied = true
			}
		}
	}
	return applied
}

// checkFeasible verifies an Optimal solution satisfies every bound and
// constraint within the solver tolerance band.
func checkFeasible(t *testing.T, p *Problem, s Solution) {
	t.Helper()
	const ftol = 1e-6
	for v := 0; v < p.NumVars(); v++ {
		lo, hi := p.Bounds(v)
		if s.X[v] < lo-ftol || s.X[v] > hi+ftol {
			t.Fatalf("x[%d] = %v outside [%v, %v]", v, s.X[v], lo, hi)
		}
	}
	for i, c := range p.cons {
		var lhs float64
		for _, tm := range c.Terms {
			lhs += tm.Coeff * s.X[tm.Var]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+ftol {
				t.Fatalf("constraint %d: %v > %v", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-ftol {
				t.Fatalf("constraint %d: %v < %v", i, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > ftol {
				t.Fatalf("constraint %d: %v != %v", i, lhs, c.RHS)
			}
		}
	}
}

// FuzzSolve drives the solver over the decoded problem space: every input
// must terminate inside the iteration budget, classify as
// Optimal/Infeasible/Unbounded, produce a feasible vertex when Optimal,
// solve deterministically (two cold solves agree bitwise), and keep warm
// re-solves after the stream's perturbations in agreement with a cold
// solver. The seed corpus extends TestDegenerateProblemTerminates: the
// scaled degenerate instance itself, redundant/contradictory equality
// rows, zero rows, pinned variables, and perturbation tails that exercise
// the warm path and its sign-flip fallback.
func FuzzSolve(f *testing.F) {
	// The Beale-style degenerate instance of
	// TestDegenerateProblemTerminates, rows scaled x2 to land on the
	// integer coefficient grid.
	f.Add([]byte{
		3, 3,
		0, 0, 70, // x1: [0, Inf), obj 10
		0, 0, 3, // x2: [0, Inf), obj -57
		0, 0, 51, // x3: [0, Inf), obj -9
		0, 0, 36, // x4: [0, Inf), obj -24
		0, 20, 21, 9, 15, 38, // x1 - 11x2 - 5x3 + 18x4 <= 0
		0, 20, 21, 17, 19, 22, // x1 - 3x2 - x3 + 2x4 <= 0
		0, 22, 22, 20, 20, 20, // 2x1 <= 2
	})
	// Redundant equality rows (x+y = 5 twice, 2x+2y = 10).
	f.Add([]byte{
		1, 3,
		0, 0, 61,
		0, 0, 61,
		2, 25, 21, 21,
		2, 25, 21, 21,
		2, 30, 22, 22,
	})
	// Contradictory equality rows (x+y = 5, x+y = 7): infeasible.
	f.Add([]byte{1, 2, 0, 0, 61, 0, 0, 61, 2, 25, 21, 21, 2, 27, 21, 21})
	// All-zero row 0 = 0 alongside an unbounded objective direction.
	f.Add([]byte{1, 1, 0, 0, 61, 0, 0, 61, 0, 20, 20, 20})
	// Pinned variable (hi == lo) feeding an equality row, with a
	// perturbation tail nudging the RHS through a warm re-solve.
	f.Add([]byte{1, 1, 2, 10, 61, 0, 5, 59, 2, 24, 21, 21, 0, 0, 3})
	// Degenerate vertex (two LE rows active at the origin) plus a
	// sign-flipping RHS perturbation to force the cold fallback.
	f.Add([]byte{1, 2, 0, 0, 61, 0, 0, 59, 0, 20, 21, 19, 0, 20, 19, 21, 0, 0, 15, 0, 0, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &fuzzDecoder{data: data}
		p := d.decodeProblem()

		warm := NewSolver()
		base, err := warm.Solve(p)
		if err != nil {
			t.Fatalf("base solve: %v", err)
		}
		switch base.Status {
		case Optimal, Infeasible, Unbounded:
		default:
			t.Fatalf("base solve: unexpected status %v", base.Status)
		}
		if base.Status == Optimal {
			checkFeasible(t, p, base)
		}
		// Determinism: an identical cold solve reproduces the result
		// bit for bit.
		again, err := NewSolver().Solve(p)
		if err != nil {
			t.Fatalf("repeat solve: %v", err)
		}
		if again.Status != base.Status || math.Float64bits(again.Objective) != math.Float64bits(base.Objective) {
			t.Fatalf("cold solve not deterministic: (%v, %v) vs (%v, %v)",
				base.Status, base.Objective, again.Status, again.Objective)
		}

		if !d.applyPerturbations(p) {
			return
		}
		got, err := warm.Solve(p)
		if err != nil {
			t.Fatalf("warm solve: %v", err)
		}
		want, err := NewSolver().Solve(p)
		if err != nil {
			t.Fatalf("cold solve: %v", err)
		}
		if got.Status != want.Status {
			t.Fatalf("warm status %v, cold %v", got.Status, want.Status)
		}
		if want.Status != Optimal {
			return
		}
		checkFeasible(t, p, got)
		// Integer data admits alternate optima, so vertices may differ;
		// the optimal value may not.
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("warm objective %v, cold %v", got.Objective, want.Objective)
		}
	})
}
