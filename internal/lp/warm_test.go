package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a small LP with continuous ("generic") coefficients
// around a known feasible point, so ties between bases — the one source of
// alternate optima that could make warm and cold solves legitimately land
// on different vertices — have probability zero. Returns the problem and
// the number of constraints (for perturbation).
func randomProblem(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(4)
	p := NewProblem()
	feas := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := 0.0
		if rng.Float64() < 0.3 {
			lo = rng.Float64() * 2
		}
		hi := Inf
		if rng.Float64() < 0.5 {
			hi = lo + 1 + rng.Float64()*10
		}
		p.AddVar(lo, hi, rng.Float64()*10-4)
		span := 3.0
		if !math.IsInf(hi, 1) {
			span = hi - lo
		}
		feas[i] = lo + rng.Float64()*span
	}
	m := 1 + rng.Intn(4)
	for c := 0; c < m; c++ {
		terms := make([]Term, n)
		var at float64
		for i := 0; i < n; i++ {
			terms[i] = Term{i, rng.Float64()*4 - 1}
			at += terms[i].Coeff * feas[i]
		}
		var sense Sense
		rhs := at
		switch r := rng.Float64(); {
		case r < 0.6:
			sense, rhs = LE, at+rng.Float64()*3
		case r < 0.85:
			sense, rhs = GE, at-rng.Float64()*3
		default:
			sense = EQ
		}
		p.AddConstraint(terms, sense, rhs)
	}
	return p
}

// perturbProblem applies a random warm-eligible mutation mix: bound nudges
// that keep the finite-upper pattern (so the basis stays reusable) and RHS
// nudges that may flip signs (so the cold-fallback path is exercised too).
func perturbProblem(rng *rand.Rand, p *Problem) {
	for v := 0; v < p.NumVars(); v++ {
		if rng.Float64() > 0.5 {
			continue
		}
		lo, hi := p.Bounds(v)
		if !math.IsInf(hi, 1) {
			hi += rng.Float64()*2 - 0.6
		}
		if rng.Float64() < 0.3 {
			lo += rng.Float64() - 0.5
			if lo < 0 {
				lo = 0
			}
		}
		if hi < lo {
			hi = lo
		}
		p.SetBounds(v, lo, hi)
	}
	for c := 0; c < p.NumConstraints(); c++ {
		if rng.Float64() < 0.5 {
			p.SetRHS(c, p.cons[c].RHS+rng.Float64()*4-2)
		}
	}
}

// wvcTol is the warm-vs-cold agreement tolerance: the dual-simplex warm
// path pushes RHS deltas through the stored basis-inverse columns, which
// is a different floating-point evaluation order than a cold solve's full
// pivot sequence, so the two can differ in the last few ulps (observed:
// 1 ulp). Exact bit equality would require the warm path to repeat the
// cold path's arithmetic — i.e. not to exist. What the solver guarantees
// instead, and this tolerance checks, is agreement far inside its own
// pivot tolerance (1e-9), which is why every integer-valued bound
// downstream (the ilp incumbents, the golden fixtures) IS byte-identical
// between warm and cold runs.
const wvcTol = 1e-12

func wvcEqual(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= wvcTol*scale
}

// TestWarmStartMatchesCold is the warm-start correctness property: across
// randomized bound/RHS perturbations, a Solver that re-solves the same
// Problem (and may warm-start from its prior basis) must agree with a
// fresh cold solver — identical status verdict, identical optimal vertex
// (objective and every coordinate within wvcTol, far below the solver's
// own tolerance). The seeds are deterministic, so a pass is stable; the
// test also asserts that the warm path actually fired, so a regression
// that silently disables warm starts fails here rather than only in
// benchmarks.
func TestWarmStartMatchesCold(t *testing.T) {
	const seeds = 300
	const rounds = 4
	warmed := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		warm := NewSolver()
		if _, err := warm.Solve(p); err != nil {
			t.Fatalf("seed %d: base solve: %v", seed, err)
		}
		for round := 0; round < rounds; round++ {
			perturbProblem(rng, p)
			if warm.canWarm(p) {
				warmed++
			}
			got, err := warm.Solve(p)
			if err != nil {
				t.Fatalf("seed %d round %d: warm solve: %v", seed, round, err)
			}
			want, err := NewSolver().Solve(p)
			if err != nil {
				t.Fatalf("seed %d round %d: cold solve: %v", seed, round, err)
			}
			if got.Status != want.Status {
				t.Fatalf("seed %d round %d: warm status %v, cold %v", seed, round, got.Status, want.Status)
			}
			if want.Status != Optimal {
				continue
			}
			if !wvcEqual(got.Objective, want.Objective) {
				t.Fatalf("seed %d round %d: warm objective %v, cold %v", seed, round, got.Objective, want.Objective)
			}
			if len(got.X) != len(want.X) {
				t.Fatalf("seed %d round %d: |X| %d vs %d", seed, round, len(got.X), len(want.X))
			}
			for i := range got.X {
				if !wvcEqual(got.X[i], want.X[i]) {
					t.Fatalf("seed %d round %d: x[%d] warm %v, cold %v", seed, round, i, got.X[i], want.X[i])
				}
			}
		}
	}
	if warmed == 0 {
		t.Fatal("no perturbation round was warm-eligible; the property tested nothing")
	}
	t.Logf("warm-start rounds: %d of %d", warmed, seeds*rounds)
}

// TestWarmStartAcrossStructuralChange pins the invalidation contract: any
// AddVar/AddConstraint between solves must force a cold solve that still
// matches a fresh solver exactly.
func TestWarmStartAcrossStructuralChange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randomProblem(rng)
	s := NewSolver()
	if _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	v := p.AddVar(0, 5, 1.5)
	p.AddConstraint([]Term{{v, 1}}, LE, 3)
	if s.canWarm(p) {
		t.Fatal("solver claims warm eligibility across a structural change")
	}
	got, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSolver().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || !wvcEqual(got.Objective, want.Objective) {
		t.Fatalf("post-growth solve (%v, %v) differs from fresh (%v, %v)",
			got.Status, got.Objective, want.Status, want.Objective)
	}
}
