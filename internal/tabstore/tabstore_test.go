package tabstore

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/platform"
)

func scaled(base platform.LatencyTable, num, den int64) platform.LatencyTable {
	for _, to := range platform.AccessPairs() {
		l := base[to.Target][to.Op]
		scale := func(v int64) int64 {
			if v = v * num / den; v < 1 {
				return 1
			}
			return v
		}
		l.Max, l.Min, l.Stall = scale(l.Max), scale(l.Min), scale(l.Stall)
		if l.Min > l.Max {
			l.Min = l.Max
		}
		if l.Stall > l.Max {
			l.Stall = l.Max
		}
		base[to.Target][to.Op] = l
	}
	return base
}

func TestTableIDIsContentAddressed(t *testing.T) {
	base := platform.TC27xLatencies()
	if TableID(base) != TableID(platform.TC27xLatencies()) {
		t.Fatal("identical tables must share an ID")
	}
	if TableID(base) == TableID(scaled(base, 150, 100)) {
		t.Fatal("different tables must not share an ID")
	}
	if !TableID(base).Valid() {
		t.Fatalf("TableID %q is not a valid ID", TableID(base))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	base := platform.TC27xLatencies()
	got, err := Decode(Encode(base))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != base {
		t.Fatalf("round trip changed the table:\n got %+v\nwant %+v", got, base)
	}
}

func TestDecodeRejectsBadTables(t *testing.T) {
	base := Encode(platform.TC27xLatencies())

	missing := TableJSON{Paths: map[string]Entry{}}
	for k, v := range base.Paths {
		missing.Paths[k] = v
	}
	delete(missing.Paths, "pf0/co")
	if _, err := Decode(missing); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing path: got %v", err)
	}

	unknown := TableJSON{Paths: map[string]Entry{}}
	for k, v := range base.Paths {
		unknown.Paths[k] = v
	}
	unknown.Paths["dfl/co"] = Entry{LMax: 1, LMin: 1, Stall: 1}
	if _, err := Decode(unknown); err == nil || !strings.Contains(err.Error(), "unknown access path") {
		t.Fatalf("illegal path: got %v", err)
	}

	invalid := TableJSON{Paths: map[string]Entry{}}
	for k, v := range base.Paths {
		invalid.Paths[k] = v
	}
	invalid.Paths["pf0/co"] = Entry{LMax: 10, LMin: 20, Stall: 5} // lmin > lmax
	if _, err := Decode(invalid); err == nil {
		t.Fatal("lmin > lmax must not decode")
	}
}

func TestInMemoryPutGetResolve(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	base := platform.TC27xLatencies()
	id, err := s.Put(base)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Put(base)
	if err != nil || again != id {
		t.Fatalf("re-Put: id %s err %v, want idempotent %s", again, err, id)
	}
	if got, ok := s.Get(id); !ok || got != base {
		t.Fatal("Get after Put lost the table")
	}
	if err := s.SetRef("tc27x/default", id); err != nil {
		t.Fatal(err)
	}
	lt, rid, err := s.Resolve("tc27x/default")
	if err != nil || rid != id || lt != base {
		t.Fatalf("Resolve by ref: %v %v %v", lt.Validate(), rid, err)
	}
	lt, rid, err = s.Resolve(string(id))
	if err != nil || rid != id || lt != base {
		t.Fatalf("Resolve by ID: %v %v", rid, err)
	}
	if _, _, err := s.Resolve("nonesuch"); err == nil {
		t.Fatal("unknown ref must not resolve")
	}
}

func TestRefRetargetIsAtomicAndListed(t *testing.T) {
	s, _ := Open("")
	base := platform.TC27xLatencies()
	idA, _ := s.Put(base)
	idB, _ := s.Put(scaled(base, 150, 100))
	if err := s.SetRef("tc27x/default", idA); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("tc27x/default", idB); err != nil {
		t.Fatal(err)
	}
	_, got, _ := s.Resolve("tc27x/default")
	if got != idB {
		t.Fatalf("retargeted ref resolves to %s, want %s", got, idB)
	}
	refs := s.Refs()
	if len(refs) != 1 || refs[0].Name != "tc27x/default" || refs[0].ID != idB {
		t.Fatalf("Refs: %+v", refs)
	}
	if ids := s.IDs(); len(ids) != 2 {
		t.Fatalf("IDs: %v", ids)
	}
}

func TestSetRefRejectsBadNamesAndUnknownTables(t *testing.T) {
	s, _ := Open("")
	id, _ := s.Put(platform.TC27xLatencies())
	for _, bad := range []string{"", "/abs", "a//b", "a/../b", "..", "a b", "a/b/"} {
		if err := s.SetRef(bad, id); err == nil {
			t.Errorf("ref name %q must be rejected", bad)
		}
	}
	if err := s.SetRef("ok/name", ID(strings.Repeat("0", 64))); err == nil {
		t.Fatal("ref to unknown table must be rejected")
	}
}

// TestRefNamesCannotShadowWireSurface pins two reserved shapes: a ref
// named like a table ID would shadow that content address in Resolve
// (breaking immutable-ID pinning), and a ref whose final segment is
// "promote" would collide with the /v2/tables/{ref}/promote route.
func TestRefNamesCannotShadowWireSurface(t *testing.T) {
	s, _ := Open("")
	base := platform.TC27xLatencies()
	idA, _ := s.Put(base)
	idB, _ := s.Put(scaled(base, 150, 100))

	// Naming a ref after another table's ID must be rejected outright.
	if err := s.SetRef(string(idA), idB); err == nil || !strings.Contains(err.Error(), "shaped like a table ID") {
		t.Fatalf("ID-shaped ref name: %v", err)
	}
	// Pinning by ID therefore always reaches that table.
	if _, got, err := s.Resolve(string(idA)); err != nil || got != idA {
		t.Fatalf("Resolve by ID: %s %v", got, err)
	}

	for _, bad := range []string{"promote", "a/promote", "tc27x/lab/promote"} {
		if err := s.SetRef(bad, idA); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Errorf("ref name %q: %v", bad, err)
		}
	}
	// "promote" elsewhere in the name stays legal.
	if err := s.SetRef("promote/candidate", idA); err != nil {
		t.Errorf("non-final promote segment: %v", err)
	}
}

func TestPutRejectsInvalidTables(t *testing.T) {
	s, _ := Open("")
	var bad platform.LatencyTable // all-zero: non-positive latencies
	if _, err := s.Put(bad); err == nil {
		t.Fatal("invalid table must not be storable")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := platform.TC27xLatencies()
	respin := scaled(base, 120, 100)
	idA, err := s.Put(base)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Put(respin)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("tc27x/default", idA); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef("tc27x/respin", idB); err != nil {
		t.Fatal(err)
	}
	// Retarget, then reopen: the rename must have landed.
	if err := s.SetRef("tc27x/default", idB); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d tables, want 2", s2.Len())
	}
	lt, id, err := s2.Resolve("tc27x/default")
	if err != nil || id != idB || lt != respin {
		t.Fatalf("reopened ref: id %s err %v", id, err)
	}
	if _, id, _ := s2.Resolve("tc27x/respin"); id != idB {
		t.Fatalf("reopened second ref: %s", id)
	}
}

func TestOpenRejectsTamperedTableFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	id, _ := s.Put(platform.TC27xLatencies())
	path := filepath.Join(dir, "tables", string(id)+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"lmax": 16`, `"lmax": 17`, 1)
	if tampered == string(raw) {
		t.Fatal("test setup: no lmax 16 in encoding")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "content changed") {
		t.Fatalf("tampered table must fail verification, got %v", err)
	}
}

func TestConcurrentPutAndResolve(t *testing.T) {
	s, _ := Open(t.TempDir())
	base := platform.TC27xLatencies()
	id, _ := s.Put(base)
	if err := s.SetRef("serving", id); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			variant := scaled(base, int64(100+i), 100)
			vid, err := s.Put(variant)
			if err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if err := s.SetRef("serving", vid); err != nil {
				t.Errorf("SetRef: %v", err)
			}
			if _, _, err := s.Resolve("serving"); err != nil {
				t.Errorf("Resolve: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, id, err := s.Resolve("serving"); err != nil || !id.Valid() {
		t.Fatalf("final resolve: %s %v", id, err)
	}
}
