// Package tabstore is the versioned store for platform latency tables —
// the lifecycle layer behind the paper's Table 2. The contention bounds
// are only as good as the measured characterisation they consume, so the
// calibration artifact itself gets first-class management: tables are
// immutable, content-addressed values (ID = SHA-256 of the canonical
// encoding, so two identical characterisations share one identity no
// matter who measured them), and mutable intent lives exclusively in
// named refs ("tc27x/default") that can be retargeted atomically.
//
// A Store is either purely in-memory (Open("")) or persisted to a data
// directory with one JSON file per table and one file per ref:
//
//	<dir>/tables/<id>.json
//	<dir>/refs/<name>
//
// Ref updates are write-to-temp + rename, so a crash never leaves a ref
// half-written. Every table is validated on Put and again on load, and a
// loaded table whose content does not hash to its filename is rejected —
// the store never serves a characterisation that silently changed on
// disk.
package tabstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/platform"
	"repro/internal/telemetry"
)

// Process-wide table-lifecycle telemetry on the default registry
// (exposed by wcetd's GET /metrics).
var (
	mRegistrations = telemetry.Default().Counter("tabstore_registrations_total",
		"Tables newly registered (idempotent re-Puts of known content excluded).")
	mRefUpdates = telemetry.Default().Counter("tabstore_ref_updates_total",
		"Ref creations and retargets (promotes included).")
	mResolves = telemetry.Default().Counter("tabstore_resolves_total",
		"Ref/ID lookups served.")
)

// ID is the immutable identity of one latency table: the hex SHA-256 of
// its canonical encoding.
type ID string

// Valid reports whether id has the shape of a table ID (64 hex digits).
func (id ID) Valid() bool {
	if len(id) != 64 {
		return false
	}
	for _, c := range id {
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// CanonicalEncoding renders a table in the store's canonical form: every
// legal access path in platform.AccessPairs order as "path:max/min/stall;".
// Two tables have equal encodings iff every model-visible figure is equal,
// so the SHA-256 of this string is a sound content address.
func CanonicalEncoding(lt platform.LatencyTable) string {
	var b strings.Builder
	for _, to := range platform.AccessPairs() {
		l := lt[to.Target][to.Op]
		fmt.Fprintf(&b, "%s:%d/%d/%d;", to, l.Max, l.Min, l.Stall)
	}
	return b.String()
}

// TableID computes the content address of a table.
func TableID(lt platform.LatencyTable) ID {
	sum := sha256.Sum256([]byte(CanonicalEncoding(lt)))
	return ID(hex.EncodeToString(sum[:]))
}

// Entry is one access path's figures in the interchange format.
type Entry struct {
	// LMax is the worst-case end-to-end latency per request (l^{t,o}).
	LMax int64 `json:"lmax"`
	// LMin is the best-case end-to-end latency per request.
	LMin int64 `json:"lmin"`
	// Stall is the minimum stall cycles one request charges (cs^{t,o}).
	Stall int64 `json:"stall"`
}

// TableJSON is the store's interchange format — machine-readable Table-2
// rows keyed by access path ("pf0/co"). It is what the tables persist as
// on disk, what the /v2/tables wire surface carries, and what
// cmd/calibrate -json emits.
type TableJSON struct {
	Paths map[string]Entry `json:"paths"`
}

// Encode renders a table in the interchange format.
func Encode(lt platform.LatencyTable) TableJSON {
	out := TableJSON{Paths: make(map[string]Entry, 7)}
	for _, to := range platform.AccessPairs() {
		l := lt[to.Target][to.Op]
		out.Paths[to.String()] = Entry{LMax: l.Max, LMin: l.Min, Stall: l.Stall}
	}
	return out
}

// Decode parses the interchange format back into a table, requiring every
// legal access path to be present (and only legal paths), and the result
// to satisfy the platform invariants.
func Decode(tj TableJSON) (platform.LatencyTable, error) {
	var lt platform.LatencyTable
	legal := make(map[string]platform.TargetOp, 7)
	for _, to := range platform.AccessPairs() {
		legal[to.String()] = to
	}
	for path := range tj.Paths {
		if _, ok := legal[path]; !ok {
			return lt, fmt.Errorf("tabstore: unknown access path %q", path)
		}
	}
	for path, to := range legal {
		e, ok := tj.Paths[path]
		if !ok {
			return lt, fmt.Errorf("tabstore: table is missing access path %q", path)
		}
		lt[to.Target][to.Op] = platform.Latency{Max: e.LMax, Min: e.LMin, Stall: e.Stall}
	}
	if err := lt.Validate(); err != nil {
		return platform.LatencyTable{}, err
	}
	return lt, nil
}

// refNameRE restricts ref names: slash-separated segments of word
// characters, dots and dashes ("tc27x/default", "soc9/respin-b"). The
// name doubles as a relative file path under refs/, so path traversal
// shapes are unrepresentable by construction.
var refNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+(/[A-Za-z0-9._-]+)*$`)

// ValidateRefName rejects names that cannot be refs: malformed shapes,
// path-traversal segments, names that look like table IDs (a 64-hex-char
// ref would shadow that content address in Resolve, breaking immutable-ID
// pinning), and a final "promote" segment (reserved by the serving
// layer's /v2/tables/{ref}/promote route — such a ref would be
// registrable but unreachable over the wire).
func ValidateRefName(name string) error {
	if !refNameRE.MatchString(name) {
		return fmt.Errorf("tabstore: invalid ref name %q (want slash-separated [A-Za-z0-9._-] segments)", name)
	}
	segs := strings.Split(name, "/")
	for _, seg := range segs {
		if seg == "." || seg == ".." {
			return fmt.Errorf("tabstore: invalid ref name %q (%q segment)", name, seg)
		}
	}
	if segs[len(segs)-1] == "promote" {
		return fmt.Errorf("tabstore: invalid ref name %q (final segment %q is reserved)", name, "promote")
	}
	if ID(name).Valid() {
		return fmt.Errorf("tabstore: invalid ref name %q (shaped like a table ID)", name)
	}
	return nil
}

// Store is a concurrency-safe table store. The zero value is not usable;
// construct with Open.
type Store struct {
	mu     sync.RWMutex
	dir    string // "" = in-memory only
	tables map[ID]platform.LatencyTable
	refs   map[string]ID
}

// Open loads (or initialises) a store. An empty dir yields a purely
// in-memory store; otherwise the directory is created as needed and every
// persisted table and ref is loaded and verified.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:    dir,
		tables: make(map[ID]platform.LatencyTable),
		refs:   make(map[string]ID),
	}
	if dir == "" {
		return s, nil
	}
	for _, sub := range []string{s.tablesDir(), s.refsDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("tabstore: %w", err)
		}
	}
	if err := s.loadTables(); err != nil {
		return nil, err
	}
	if err := s.loadRefs(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) tablesDir() string { return filepath.Join(s.dir, "tables") }
func (s *Store) refsDir() string   { return filepath.Join(s.dir, "refs") }

func (s *Store) loadTables() error {
	entries, err := os.ReadDir(s.tablesDir())
	if err != nil {
		return fmt.Errorf("tabstore: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		id := ID(strings.TrimSuffix(e.Name(), ".json"))
		if !id.Valid() {
			return fmt.Errorf("tabstore: stray file %q in tables dir", e.Name())
		}
		raw, err := os.ReadFile(filepath.Join(s.tablesDir(), e.Name()))
		if err != nil {
			return fmt.Errorf("tabstore: %w", err)
		}
		var tj TableJSON
		if err := json.Unmarshal(raw, &tj); err != nil {
			return fmt.Errorf("tabstore: table %s: %w", id, err)
		}
		lt, err := Decode(tj)
		if err != nil {
			return fmt.Errorf("tabstore: table %s: %w", id, err)
		}
		if got := TableID(lt); got != id {
			return fmt.Errorf("tabstore: table file %s hashes to %s — content changed on disk", id, got)
		}
		s.tables[id] = lt
	}
	return nil
}

func (s *Store) loadRefs() error {
	root := s.refsDir()
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if err := ValidateRefName(name); err != nil {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("tabstore: %w", err)
		}
		id := ID(strings.TrimSpace(string(raw)))
		if _, ok := s.tables[id]; !ok {
			return fmt.Errorf("tabstore: ref %q points at unknown table %q", name, id)
		}
		s.refs[name] = id
		return nil
	})
}

// Put registers a table, validating it first, and returns its content
// address. Putting an already-present table is a no-op returning the same
// ID — content addressing makes re-registration idempotent.
func (s *Store) Put(lt platform.LatencyTable) (ID, error) {
	if err := lt.Validate(); err != nil {
		return "", err
	}
	id := TableID(lt)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[id]; ok {
		return id, nil
	}
	if s.dir != "" {
		raw, err := json.MarshalIndent(Encode(lt), "", "  ")
		if err != nil {
			return "", fmt.Errorf("tabstore: %w", err)
		}
		raw = append(raw, '\n')
		if err := writeFileAtomic(filepath.Join(s.tablesDir(), string(id)+".json"), raw); err != nil {
			return "", err
		}
	}
	s.tables[id] = lt
	mRegistrations.Inc()
	return id, nil
}

// Get returns the table behind an ID.
func (s *Store) Get(id ID) (platform.LatencyTable, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lt, ok := s.tables[id]
	return lt, ok
}

// SetRef atomically points name at id (creating or retargeting it). The
// target table must already be in the store.
func (s *Store) SetRef(name string, id ID) error {
	if err := ValidateRefName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[id]; !ok {
		return fmt.Errorf("tabstore: ref %q: unknown table %q", name, id)
	}
	if s.dir != "" {
		path := filepath.Join(s.refsDir(), filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("tabstore: %w", err)
		}
		if err := writeFileAtomic(path, []byte(id+"\n")); err != nil {
			return err
		}
	}
	s.refs[name] = id
	mRefUpdates.Inc()
	return nil
}

// Resolve looks a reference up: a ref name first, else a literal table
// ID. It returns the table together with its immutable identity, so
// callers can pin "whatever the ref pointed at" across a ref retarget.
func (s *Store) Resolve(ref string) (platform.LatencyTable, ID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id, ok := s.refs[ref]; ok {
		mResolves.Inc()
		return s.tables[id], id, nil
	}
	if id := ID(ref); id.Valid() {
		if lt, ok := s.tables[id]; ok {
			mResolves.Inc()
			return lt, id, nil
		}
	}
	return platform.LatencyTable{}, "", fmt.Errorf("tabstore: unknown table ref %q (known refs: %s)", ref, strings.Join(s.refNamesLocked(), ", "))
}

// ResolveTable adapts Resolve to the wcet.TableStore interface (the ID as
// a plain string), so a *Store plugs straight into the SDK's Analyzer.
func (s *Store) ResolveTable(ref string) (platform.LatencyTable, string, error) {
	lt, id, err := s.Resolve(ref)
	return lt, string(id), err
}

// Refs returns the ref map, names sorted.
func (s *Store) Refs() []Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Ref, 0, len(s.refs))
	for name, id := range s.refs {
		out = append(out, Ref{Name: name, ID: id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ref is one named pointer into the store.
type Ref struct {
	Name string
	ID   ID
}

// IDs lists every stored table, sorted.
func (s *Store) IDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ID, 0, len(s.tables))
	for id := range s.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len is the number of stored tables.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

func (s *Store) refNamesLocked() []string {
	names := make([]string, 0, len(s.refs))
	for name := range s.refs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeFileAtomic writes via a temp file + rename so readers (and crash
// recovery) never observe a partial write.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("tabstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("tabstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tabstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("tabstore: %w", err)
	}
	return nil
}
