package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dsu"
	"repro/internal/platform"
)

var tc27x = platform.TC27xLatencies()

func to(t platform.Target, o platform.Op) platform.TargetOp {
	return platform.TargetOp{Target: t, Op: o}
}

// sc1Readings builds DSU readings exactly consistent (on the simulator's
// deterministic stall behaviour) with a Scenario 1 task performing nPF0 and
// nPF1 code requests and nLMU non-cacheable lmu data requests.
func sc1Readings(nPF0, nPF1, nLMU, ccnt int64) dsu.Readings {
	return dsu.Readings{
		CCNT: ccnt,
		PM:   nPF0 + nPF1,
		PS:   6 * (nPF0 + nPF1),
		DS:   10 * nLMU,
	}
}

func TestAccessBounds(t *testing.T) {
	// cs^co_min = 6, cs^da_min = 10.
	cases := []struct {
		ps, ds   int64
		nCo, nDa int64
	}{
		{60, 100, 10, 10},
		{61, 101, 11, 11}, // ceiling
		{0, 0, 0, 0},
		{5, 9, 1, 1},
	}
	for _, c := range cases {
		nCo, nDa := AccessBounds(dsu.Readings{PS: c.ps, DS: c.ds}, &tc27x)
		if nCo != c.nCo || nDa != c.nDa {
			t.Errorf("AccessBounds(PS=%d, DS=%d) = %d, %d; want %d, %d", c.ps, c.ds, nCo, nDa, c.nCo, c.nDa)
		}
	}
}

func TestEstimateAccessors(t *testing.T) {
	e := Estimate{Model: "x", IsolationCycles: 100, ContentionCycles: 50}
	if e.WCET() != 150 {
		t.Errorf("WCET = %d", e.WCET())
	}
	if e.Ratio() != 1.5 {
		t.Errorf("Ratio = %g", e.Ratio())
	}
	if !math.IsInf(Estimate{}.Ratio(), 1) {
		t.Error("zero-isolation ratio not +Inf")
	}
	if s := e.String(); !strings.Contains(s, "x1.50") {
		t.Errorf("String = %q", s)
	}
}

func TestFTCArithmetic(t *testing.T) {
	// n̂co = 10, n̂da = 10; l^co_max = 16, l^da_max = 43 (Eq. 6-8).
	in := Input{
		A:        dsu.Readings{CCNT: 10000, PS: 60, DS: 100},
		B:        []dsu.Readings{{CCNT: 1}},
		Lat:      &tc27x,
		Scenario: Scenario1(),
	}
	e, err := FTC(in)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10*16 + 10*43)
	if e.ContentionCycles != want {
		t.Errorf("Δcont = %d, want %d", e.ContentionCycles, want)
	}
	if e.WCET() != 10000+want {
		t.Errorf("WCET = %d", e.WCET())
	}
}

func TestFTCInsensitiveToContenderLoad(t *testing.T) {
	a := dsu.Readings{CCNT: 10000, PS: 60, DS: 100}
	heavy := Input{A: a, B: []dsu.Readings{{CCNT: 1_000_000, PS: 99999, DS: 99999}}, Lat: &tc27x, Scenario: Scenario1()}
	light := Input{A: a, B: []dsu.Readings{{CCNT: 1}}, Lat: &tc27x, Scenario: Scenario1()}
	eh, err := FTC(heavy)
	if err != nil {
		t.Fatal(err)
	}
	el, err := FTC(light)
	if err != nil {
		t.Fatal(err)
	}
	if eh.ContentionCycles != el.ContentionCycles {
		t.Errorf("fTC varied with contender load: %d vs %d", eh.ContentionCycles, el.ContentionCycles)
	}
}

func TestFTCScalesWithContenderCount(t *testing.T) {
	a := dsu.Readings{CCNT: 10000, PS: 60, DS: 100}
	one := Input{A: a, B: []dsu.Readings{{}}, Lat: &tc27x, Scenario: Scenario1()}
	two := Input{A: a, B: []dsu.Readings{{}, {}}, Lat: &tc27x, Scenario: Scenario1()}
	e1, err := FTC(one)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := FTC(two)
	if err != nil {
		t.Fatal(err)
	}
	if e2.ContentionCycles != 2*e1.ContentionCycles {
		t.Errorf("two contenders: %d, want 2x%d", e2.ContentionCycles, e1.ContentionCycles)
	}
}

func TestIdealSameOpMatching(t *testing.T) {
	na := map[platform.TargetOp]int64{to(platform.LMU, platform.Data): 10}
	nb := map[platform.TargetOp]int64{to(platform.LMU, platform.Data): 4}
	if got := Ideal(na, nb, &tc27x); got != 4*11 {
		t.Errorf("Ideal = %d, want 44", got)
	}
}

func TestIdealCrossOpMatching(t *testing.T) {
	// τa only fetches code from pf0; τb only reads data there. The data
	// requests still delay the code fetches.
	na := map[platform.TargetOp]int64{to(platform.PF0, platform.Code): 5}
	nb := map[platform.TargetOp]int64{to(platform.PF0, platform.Data): 3}
	if got := Ideal(na, nb, &tc27x); got != 3*16 {
		t.Errorf("Ideal = %d, want 48", got)
	}
}

func TestIdealPicksLongestContenderRequests(t *testing.T) {
	// τa has 2 requests on the lmu; τb has 5 code (11) and 5 data (11)
	// there — equal latencies, so 2*11. Distinguish with pf0: code 16 =
	// data 16; use dfl vs lmu on... targets are separate. Instead check
	// disjoint targets don't mix:
	na := map[platform.TargetOp]int64{to(platform.LMU, platform.Data): 2}
	nb := map[platform.TargetOp]int64{
		to(platform.LMU, platform.Code): 5,
		to(platform.LMU, platform.Data): 5,
	}
	if got := Ideal(na, nb, &tc27x); got != 2*11 {
		t.Errorf("Ideal = %d, want 22", got)
	}
	// Disjoint targets yield zero.
	nb = map[platform.TargetOp]int64{to(platform.DFL, platform.Data): 100}
	if got := Ideal(na, nb, &tc27x); got != 0 {
		t.Errorf("Ideal disjoint = %d, want 0", got)
	}
}

func TestIdealMulti(t *testing.T) {
	na := map[platform.TargetOp]int64{to(platform.LMU, platform.Data): 10}
	nb := map[platform.TargetOp]int64{to(platform.LMU, platform.Data): 3}
	if got := IdealMulti(na, []map[platform.TargetOp]int64{nb, nb}, &tc27x); got != 2*3*11 {
		t.Errorf("IdealMulti = %d, want 66", got)
	}
}

func TestILPPTACScenario1Exact(t *testing.T) {
	// τa and τb each: 10 code requests (pf0+pf1), 10 lmu data requests.
	// Worst-case mapping aligns all code on one bank: 10*16 + 10*11.
	in := Input{
		A:        sc1Readings(5, 5, 10, 10000),
		B:        []dsu.Readings{sc1Readings(5, 5, 10, 10000)},
		Lat:      &tc27x,
		Scenario: Scenario1(),
	}
	for _, mode := range []StallMode{StallBudget, StallExact} {
		e, err := ILPPTAC(in, PTACOptions{StallMode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if want := int64(10*16 + 10*11); e.ContentionCycles != want {
			t.Errorf("%v: Δcont = %d, want %d", mode, e.ContentionCycles, want)
		}
		if e.Decomposition == nil {
			t.Error("no decomposition")
		}
	}
}

func TestILPPTACAdaptsToContenderLoad(t *testing.T) {
	a := sc1Readings(5, 5, 10, 10000)
	heavy := Input{A: a, B: []dsu.Readings{sc1Readings(5, 5, 10, 10000)}, Lat: &tc27x, Scenario: Scenario1()}
	light := Input{A: a, B: []dsu.Readings{sc1Readings(2, 2, 3, 10000)}, Lat: &tc27x, Scenario: Scenario1()}
	eh, err := ILPPTAC(heavy, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	el, err := ILPPTAC(light, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if el.ContentionCycles >= eh.ContentionCycles {
		t.Errorf("light contender bound %d not below heavy %d", el.ContentionCycles, eh.ContentionCycles)
	}
	// Light: 4 code conflicts at 16 + 3 data at 11.
	if want := int64(4*16 + 3*11); el.ContentionCycles != want {
		t.Errorf("light Δcont = %d, want %d", el.ContentionCycles, want)
	}
}

func TestILPPTACTighterThanFTC(t *testing.T) {
	in := Input{
		A:        sc1Readings(5, 5, 10, 10000),
		B:        []dsu.Readings{sc1Readings(5, 5, 10, 10000)},
		Lat:      &tc27x,
		Scenario: Scenario1(),
	}
	ilpE, err := ILPPTAC(in, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ftcE, err := FTC(in)
	if err != nil {
		t.Fatal(err)
	}
	if ilpE.ContentionCycles >= ftcE.ContentionCycles {
		t.Errorf("ILP-PTAC %d not tighter than fTC %d", ilpE.ContentionCycles, ftcE.ContentionCycles)
	}
}

func TestILPPTACDropContenderInfoIsLooser(t *testing.T) {
	in := Input{
		A:        sc1Readings(5, 5, 10, 10000),
		B:        []dsu.Readings{sc1Readings(2, 2, 3, 10000)},
		Lat:      &tc27x,
		Scenario: Scenario1(),
	}
	with, err := ILPPTAC(in, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := ILPPTAC(in, PTACOptions{DropContenderInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.ContentionCycles <= with.ContentionCycles {
		t.Errorf("dropping contender info did not loosen the bound: %d <= %d",
			without.ContentionCycles, with.ContentionCycles)
	}
	if without.Model != "ILP-PTAC-fTC" {
		t.Errorf("model name = %q", without.Model)
	}
	// Fully time-composable: insensitive to the contender readings.
	in2 := in
	in2.B = []dsu.Readings{sc1Readings(100, 100, 100, 99999999)}
	without2, err := ILPPTAC(in2, PTACOptions{DropContenderInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	if without2.ContentionCycles != without.ContentionCycles {
		t.Errorf("fully-TC variant varied with contender: %d vs %d",
			without2.ContentionCycles, without.ContentionCycles)
	}
}

func TestILPPTACMultipleContenders(t *testing.T) {
	a := sc1Readings(5, 5, 10, 10000)
	b := sc1Readings(5, 5, 10, 10000)
	one, err := ILPPTAC(Input{A: a, B: []dsu.Readings{b}, Lat: &tc27x, Scenario: Scenario1()}, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := ILPPTAC(Input{A: a, B: []dsu.Readings{b, b}, Lat: &tc27x, Scenario: Scenario1()}, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if two.ContentionCycles != 2*one.ContentionCycles {
		t.Errorf("two identical contenders: %d, want 2x%d", two.ContentionCycles, one.ContentionCycles)
	}
}

func TestILPPTACStallExactInfeasibleOnRealHardwareReadings(t *testing.T) {
	// The paper's Table 6, Scenario 1, core 1: PS = 3421242 with PM =
	// 236544. Real per-request stalls exceed the Table 2 minima, so the
	// exact decomposition (PS = 6*PM with code pinned to pf0/pf1) has no
	// solution; the budget mode must cope.
	a := dsu.Readings{CCNT: 40_000_000, PM: 236544, PS: 3421242, DS: 8345056}
	b := dsu.Readings{CCNT: 40_000_000, PM: 120594, PS: 1744167, DS: 4251811}
	in := Input{A: a, B: []dsu.Readings{b}, Lat: &tc27x, Scenario: Scenario1()}
	if _, err := ILPPTAC(in, PTACOptions{StallMode: StallExact}); err == nil {
		t.Error("exact mode accepted indivisible hardware readings")
	}
	e, err := ILPPTAC(in, PTACOptions{StallMode: StallBudget})
	if err != nil {
		t.Fatal(err)
	}
	if e.ContentionCycles <= 0 {
		t.Error("budget mode found no contention")
	}
	// Code conflicts are pinned by PM; data by DS/10.
	wantCode := int64(120594) * 16 // min(PMa, PMb) aligned worst case
	if e.ContentionCycles < wantCode {
		t.Errorf("Δcont = %d below code-only floor %d", e.ContentionCycles, wantCode)
	}
}

func TestILPPTACScenario2DataFloor(t *testing.T) {
	// Scenario 2: data on lmu and pf0/pf1. DS small but DMC+DMD large
	// enough to force data requests: the floor must hold.
	a := dsu.Readings{CCNT: 100000, PM: 10, PS: 60, DS: 110, DMC: 10}
	b := dsu.Readings{CCNT: 100000, PM: 10, PS: 60, DS: 110, DMC: 10}
	in := Input{A: a, B: []dsu.Readings{b}, Lat: &tc27x, Scenario: Scenario2()}
	e, err := ILPPTAC(in, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Data: DS=110 allows 11 lmu (cs 10) or 10 pf (cs 11) requests; the
	// solver aligns for max interference. Code: 10 conflicts at 16.
	if e.ContentionCycles <= 10*16 {
		t.Errorf("Δcont = %d: data interference missing", e.ContentionCycles)
	}
	var daSum int64
	for _, toX := range platform.AccessPairs() {
		if toX.Op == platform.Data {
			daSum += e.Decomposition["na["+toX.String()+"]"]
		}
	}
	if daSum < 10 {
		t.Errorf("data PTAC sum %d below DMC+DMD floor 10", daSum)
	}
}

func TestILPPTACDirtyLMUEscalation(t *testing.T) {
	// A contender with dirty data-cache misses escalates the lmu/da
	// interference coefficient from 11 to 21.
	aR := dsu.Readings{CCNT: 100000, PM: 10, PS: 60, DS: 100, DMC: 10}
	clean := dsu.Readings{CCNT: 100000, PM: 10, PS: 60, DS: 100, DMC: 10}
	dirty := clean
	dirty.DMD = 2
	dirty.DMC = 8
	inClean := Input{A: aR, B: []dsu.Readings{clean}, Lat: &tc27x, Scenario: Scenario2()}
	inDirty := Input{A: aR, B: []dsu.Readings{dirty}, Lat: &tc27x, Scenario: Scenario2()}
	ec, err := ILPPTAC(inClean, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := ILPPTAC(inDirty, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ed.ContentionCycles <= ec.ContentionCycles {
		t.Errorf("dirty contender bound %d not above clean %d", ed.ContentionCycles, ec.ContentionCycles)
	}
}

func TestILPPTACValidation(t *testing.T) {
	good := Input{A: sc1Readings(1, 1, 1, 100), B: []dsu.Readings{sc1Readings(1, 1, 1, 100)}, Lat: &tc27x, Scenario: Scenario1()}
	noB := good
	noB.B = nil
	if _, err := ILPPTAC(noB, PTACOptions{}); err == nil {
		t.Error("no contender accepted")
	}
	noLat := good
	noLat.Lat = nil
	if _, err := ILPPTAC(noLat, PTACOptions{}); err == nil {
		t.Error("nil latency table accepted")
	}
	badA := good
	badA.A = dsu.Readings{CCNT: -1}
	if _, err := ILPPTAC(badA, PTACOptions{}); err == nil {
		t.Error("negative readings accepted")
	}
	badB := good
	badB.B = []dsu.Readings{{PS: -1}}
	if _, err := ILPPTAC(badB, PTACOptions{}); err == nil {
		t.Error("bad contender readings accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := Scenario1().Validate(); err != nil {
		t.Errorf("Scenario1: %v", err)
	}
	if err := Scenario2().Validate(); err != nil {
		t.Errorf("Scenario2: %v", err)
	}
	bad := Scenario{
		Name:           "bad",
		Deploy:         platform.Deployment{Code: []platform.Placement{{Target: platform.PF0, Cacheable: false}}},
		CodeCountExact: true,
	}
	if err := bad.Validate(); err == nil {
		t.Error("CodeCountExact with non-cacheable code accepted")
	}
	bad2 := Scenario{
		Name:               "bad2",
		Deploy:             platform.Deployment{Data: []platform.Placement{{Target: platform.LMU, Cacheable: false}}},
		CacheableDataFloor: true,
	}
	if err := bad2.Validate(); err == nil {
		t.Error("CacheableDataFloor without cacheable data accepted")
	}
	g := GenericScenario(platform.Scenario1())
	if g.CodeCountExact || g.CacheableDataFloor {
		t.Error("generic scenario has counter tailoring")
	}
}

func TestStallModeString(t *testing.T) {
	if StallBudget.String() != "budget" || StallExact.String() != "exact" {
		t.Error("stall mode strings")
	}
	if StallMode(9).String() == "" {
		t.Error("fallback string empty")
	}
}

func TestFSBDominatesCrossbar(t *testing.T) {
	in := Input{
		A:        sc1Readings(5, 5, 10, 10000),
		B:        []dsu.Readings{sc1Readings(5, 5, 10, 10000)},
		Lat:      &tc27x,
		Scenario: Scenario1(),
	}
	ftcE, err := FTC(in)
	if err != nil {
		t.Fatal(err)
	}
	fsbE, err := FTCFSB(in)
	if err != nil {
		t.Fatal(err)
	}
	if fsbE.ContentionCycles < ftcE.ContentionCycles {
		t.Errorf("FSB reduction %d below crossbar fTC %d", fsbE.ContentionCycles, ftcE.ContentionCycles)
	}
	// (n̂co + n̂da) * 43.
	if want := int64((10 + 10) * 43); fsbE.ContentionCycles != want {
		t.Errorf("fTC-FSB = %d, want %d", fsbE.ContentionCycles, want)
	}
}

func TestIdealFSBDominatesIdeal(t *testing.T) {
	na := map[platform.TargetOp]int64{
		to(platform.PF0, platform.Code): 5,
		to(platform.LMU, platform.Data): 10,
	}
	nb := map[platform.TargetOp]int64{
		to(platform.PF1, platform.Code): 7,
		to(platform.LMU, platform.Data): 2,
	}
	x := Ideal(na, nb, &tc27x)
	f := IdealFSB(na, nb, &tc27x)
	if f < x {
		t.Errorf("IdealFSB %d < Ideal %d", f, x)
	}
	// Crossbar: pf0 disjoint from pf1 -> only lmu conflicts: 2*11=22.
	if x != 22 {
		t.Errorf("Ideal = %d, want 22", x)
	}
	// FSB: min(15, 9)=9 conflicts, longest first: 7*16 + 2*11 = 134.
	if f != 134 {
		t.Errorf("IdealFSB = %d, want 134", f)
	}
}

// Property: for readings generated from true Scenario-1 PTACs, the model
// hierarchy holds: Ideal(truth) <= ILP-PTAC <= fTC, and ILP-PTAC in budget
// mode >= exact mode.
func TestModelHierarchyProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rnd := seed
		next := func(mod uint32) int64 {
			rnd = rnd*1664525 + 1013904223
			return int64(rnd % mod)
		}
		aPF0, aPF1, aLMU := next(20), next(20), next(30)
		bPF0, bPF1, bLMU := next(20), next(20), next(30)
		a := sc1Readings(aPF0, aPF1, aLMU, 100000)
		b := sc1Readings(bPF0, bPF1, bLMU, 100000)
		in := Input{A: a, B: []dsu.Readings{b}, Lat: &tc27x, Scenario: Scenario1()}

		truthA := map[platform.TargetOp]int64{
			to(platform.PF0, platform.Code): aPF0,
			to(platform.PF1, platform.Code): aPF1,
			to(platform.LMU, platform.Data): aLMU,
		}
		truthB := map[platform.TargetOp]int64{
			to(platform.PF0, platform.Code): bPF0,
			to(platform.PF1, platform.Code): bPF1,
			to(platform.LMU, platform.Data): bLMU,
		}
		ideal := Ideal(truthA, truthB, &tc27x)

		exact, err := ILPPTAC(in, PTACOptions{StallMode: StallExact})
		if err != nil {
			return false
		}
		budget, err := ILPPTAC(in, PTACOptions{StallMode: StallBudget})
		if err != nil {
			return false
		}
		ftcE, err := FTC(in)
		if err != nil {
			return false
		}
		return ideal <= exact.ContentionCycles &&
			exact.ContentionCycles <= budget.ContentionCycles &&
			budget.ContentionCycles <= ftcE.ContentionCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ceilDiv(1, 0) did not panic")
		}
	}()
	ceilDiv(1, 0)
}

func TestInputValidateScenario(t *testing.T) {
	in := Input{
		A:   dsu.Readings{CCNT: 10},
		Lat: &tc27x,
		Scenario: Scenario{
			Name:   "broken",
			Deploy: platform.Deployment{Code: []platform.Placement{{Target: platform.DFL, Cacheable: true}}},
		},
	}
	if err := in.Validate(); err == nil {
		t.Error("invalid scenario deployment accepted")
	}
	var _ = errors.Is // keep errors imported if unused paths change
}
