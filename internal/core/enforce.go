package core

import "repro/internal/platform"

// EnforcedContentionBound bounds the contention a single contender can
// inflict on the analysed task when an RTOS-level enforcement mechanism
// (the paper's ref [16], Nowotsch et al.) suspends it once its own SRI
// stall cycles reach quota.
//
// Every contender SRI transaction charges the contender at least
// cs_min = min over (t,o) of cs^{t,o} stall cycles, and the enforcer
// lets at most one transaction complete past the quota boundary, so the
// contender issues at most quota/cs_min + 1 transactions; each can delay
// the analysed task at most once, by at most the worst transaction
// latency.
//
// Unlike the fTC and ILP-PTAC bounds, this holds without *any* knowledge
// of the contender — the quota, not measurement, caps its behaviour. It
// pairs with sim.Config.StallBudgets, which implements the enforcement.
func EnforcedContentionBound(quota int64, lat *platform.LatencyTable) int64 {
	if quota < 0 {
		quota = 0
	}
	csMin := lat.MinStallFor(platform.Code)
	if d := lat.MinStallFor(platform.Data); d < csMin {
		csMin = d
	}
	var lMax int64
	for _, to := range platform.AccessPairs() {
		if l := lat.MaxLatency(to.Target, to.Op); l > lMax {
			lMax = l
		}
	}
	if quota == 0 {
		return 0
	}
	return (quota/csMin + 1) * lMax
}
