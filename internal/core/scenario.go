package core

import (
	"fmt"

	"repro/internal/platform"
)

// Scenario captures what the analysis may assume about a deployment
// configuration (paper §4.1 and Table 5). The Deployment zeroes PTAC
// variables on access paths the configuration cannot generate; the two
// flags encode the indirect PTAC information the cache-miss counters
// provide under that configuration.
type Scenario struct {
	// Name labels the scenario in output ("scenario1", ...).
	Name string
	// Deploy is the code/data placement; PTAC variables for paths it
	// cannot reach are pinned to zero.
	Deploy platform.Deployment
	// CodeCountExact states that every code access reaching the SRI is
	// performed in cacheable mode, so PCACHE_MISS counts the task's SRI
	// code requests exactly: sum over code targets of n^{t,co} = PM
	// (both scenarios of the paper).
	CodeCountExact bool
	// CacheableDataFloor states that some data placements are cacheable,
	// so DCACHE_MISS_CLEAN + DCACHE_MISS_DIRTY is a lower bound on the
	// task's SRI data requests (Scenario 2's constraint — the miss
	// counters cannot discriminate the target, and non-cacheable
	// accesses add on top).
	CacheableDataFloor bool
}

// Validate checks the deployment against the platform's architectural
// constraints and the flags against the deployment.
func (s Scenario) Validate() error {
	if err := s.Deploy.Validate(); err != nil {
		return fmt.Errorf("core: scenario %s: %w", s.Name, err)
	}
	if s.CodeCountExact {
		for _, p := range s.Deploy.Code {
			if !p.Cacheable {
				return fmt.Errorf("core: scenario %s: CodeCountExact requires all SRI code cacheable, found %s", s.Name, p)
			}
		}
	}
	if s.CacheableDataFloor && s.Deploy.CacheableDataOnly() == false {
		// Mixed cacheable/non-cacheable data is exactly when the floor
		// is useful; nothing to check beyond having cacheable data at
		// all.
		has := false
		for _, p := range s.Deploy.Data {
			if p.Cacheable {
				has = true
			}
		}
		if !has {
			return fmt.Errorf("core: scenario %s: CacheableDataFloor without cacheable data placements", s.Name)
		}
	}
	return nil
}

// Scenario1 is the paper's first evaluation scenario (Figure 3-a):
// cacheable code in pf0/pf1, non-cacheable shared data in the lmu. Table 5
// tailoring: no dfl data, no lmu code, no pf data, and the code PTACs sum
// exactly to PCACHE_MISS.
func Scenario1() Scenario {
	return Scenario{
		Name:           "scenario1",
		Deploy:         platform.Scenario1(),
		CodeCountExact: true,
	}
}

// Scenario2 is the paper's second evaluation scenario (Figure 3-b):
// cacheable code in pf0/pf1, lmu data both cacheable and non-cacheable,
// constant cacheable data in pf0/pf1. Table 5 tailoring: no dfl data, no
// lmu code, code PTACs sum to PCACHE_MISS, and data PTACs are bounded
// below by the data-cache miss count.
func Scenario2() Scenario {
	return Scenario{
		Name:               "scenario2",
		Deploy:             platform.Scenario2(),
		CodeCountExact:     true,
		CacheableDataFloor: true,
	}
}

// GenericScenario derives a scenario from a deployment with no
// counter-based tailoring: only the placement-derived zero constraints
// apply. This is what an integrator gets for an arbitrary configuration
// before reasoning about cacheability.
func GenericScenario(d platform.Deployment) Scenario {
	return Scenario{Name: "generic", Deploy: d}
}
