// Package core implements the paper's contribution: multicore-contention
// models for measurement-based timing analysis on the AURIX TC27x that
// compute contention-aware WCET estimates from observations of tasks
// running in isolation.
//
// Three models are provided, in increasing tightness:
//
//   - Ideal (Eq. 1): the reference upper bound assuming full knowledge of
//     both tasks' per-target access counts (PTAC). Not obtainable from the
//     TC27x DSU; used as a validation oracle against the simulator's
//     ground truth.
//
//   - FTC (Eq. 2-8): the fully time-composable model. It uses only the
//     analysed task's stall-cycle readings, over-approximates its SRI
//     request counts by dividing stalls by the minimum per-request stall
//     (Eq. 4), and charges every request the worst latency any contender
//     request could impose anywhere (Eq. 6-7). Valid against any
//     contender, and correspondingly pessimistic.
//
//   - ILPPTAC (Eq. 9-23): the partially time-composable ILP model. It
//     searches the worst-case per-target mapping of both tasks' requests
//     consistent with their isolation debug-counter readings, the
//     architectural placement constraints, and the deployment-scenario
//     tailoring of Table 5, maximizing the contention the analysed task
//     can suffer.
//
// All models consume only what a standard Debug Support Unit exposes
// (dsu.Readings) plus the platform latency characterisation of Table 2,
// matching the paper's industrial-viability requirement ➀, work purely
// from isolation observations ➁, and tailor to deployment scenarios ➂.
package core

import (
	"fmt"
	"math"

	"repro/internal/dsu"
	"repro/internal/platform"
)

// Input bundles what the models may observe: the isolation readings of the
// task under analysis τa, those of its contenders τb..., the platform
// latency table, and the deployment scenario both are configured under
// (the paper assumes deployment configurations apply equally to analysed
// task and contenders, §4.1).
type Input struct {
	// A is τa's isolation measurement.
	A dsu.Readings
	// B holds one isolation measurement per contender. The paper's
	// evaluation uses a single contender; the model extends to more by
	// summing per-contender worst cases (round-robin arbitration lets
	// each contender delay each τa request once).
	B []dsu.Readings
	// Lat is the platform characterisation (Table 2).
	Lat *platform.LatencyTable
	// Scenario is the deployment scenario used for ILP tailoring.
	Scenario Scenario
}

// Validate checks the input for use by any model.
func (in Input) Validate() error {
	if in.Lat == nil {
		return fmt.Errorf("core: nil latency table")
	}
	if err := in.Lat.Validate(); err != nil {
		return err
	}
	if err := in.A.Validate(); err != nil {
		return fmt.Errorf("core: analysed task readings: %w", err)
	}
	for i, b := range in.B {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("core: contender %d readings: %w", i, err)
		}
	}
	if err := in.Scenario.Validate(); err != nil {
		return err
	}
	return nil
}

// Estimate is a model's contention-aware WCET estimate.
type Estimate struct {
	// Model names the producing model ("fTC", "ILP-PTAC", ...).
	Model string
	// IsolationCycles is τa's observed execution time in isolation.
	IsolationCycles int64
	// ContentionCycles is the bound on extra cycles due to multicore
	// contention (Δcont in the paper).
	ContentionCycles int64
	// Decomposition, when the model solves an ILP, holds the worst-case
	// per-target request mapping it found, keyed by variable name.
	Decomposition map[string]int64
	// Nodes, when the model solves an ILP, is the number of branch &
	// bound nodes the solve explored — the cost driver behind every
	// BENCH_<pr>.json trajectory point, surfaced so benchmarks and
	// regression gates can track search effort alongside wall time.
	Nodes int
	// WarmStarts, when the model solves an ILP, is how many of those
	// node relaxations resumed from a previous simplex basis instead of
	// rebuilding cold — the effectiveness signal of the PR 6 warm-start
	// path, surfaced per estimate so traces and benchmarks can report a
	// warm-start rate.
	WarmStarts int
}

// WCET returns the contention-aware WCET estimate in cycles.
func (e Estimate) WCET() int64 { return e.IsolationCycles + e.ContentionCycles }

// Ratio returns WCET / isolation time, the metric Figure 4 reports.
func (e Estimate) Ratio() float64 {
	if e.IsolationCycles == 0 {
		return math.Inf(1)
	}
	return float64(e.WCET()) / float64(e.IsolationCycles)
}

// String summarises the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%s: iso=%d +cont=%d wcet=%d (x%.2f)",
		e.Model, e.IsolationCycles, e.ContentionCycles, e.WCET(), e.Ratio())
}

// AccessBounds computes n̂co and n̂da (Eq. 4): upper bounds on a task's SRI
// code and data request counts, derived by charging the whole observed
// stall total to requests of the cheapest kind (Eq. 2-3).
func AccessBounds(r dsu.Readings, lat *platform.LatencyTable) (nCo, nDa int64) {
	csCoMin := lat.MinStallFor(platform.Code)
	csDaMin := lat.MinStallFor(platform.Data)
	nCo = ceilDiv(r.PS, csCoMin)
	nDa = ceilDiv(r.DS, csDaMin)
	return nCo, nDa
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("core: non-positive divisor %d", b))
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
