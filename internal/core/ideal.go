package core

import (
	"sort"

	"repro/internal/platform"
)

// Ideal computes the ideal contention bound (paper §3.2, Eq. 1), assuming
// the exact per-target access counts (PTAC) of both tasks are known: each
// contender request delays at most one analysed-task request on its target
// (round-robin), so the number of conflicts on a target is bounded by the
// smaller of the two tasks' request counts there, and when the contender
// has more requests than the analysed task its highest-latency ones are
// assumed to do the delaying.
//
// Contention on a target is oblivious to the operation type of the
// *delayed* request — a contender data request in flight stalls an
// analysed-task code request just the same — so conflicts are matched per
// target across both operation types, with the contender's requests
// ordered by decreasing latency (this is the prose of §3.2; the compact
// Eq. 1 elides the cross-type matching that its ILP refinement, Eq. 11-19,
// spells out).
//
// The TC27x DSU cannot produce these counts — that is the gap the paper's
// other models bridge — but the simulator's ground truth can, so Ideal
// serves as the validation oracle: it must upper-bound observed contention
// and lower-bound the DSU-driven models.
func Ideal(na, nb map[platform.TargetOp]int64, lat *platform.LatencyTable) int64 {
	var delta int64
	for _, t := range platform.Targets {
		var naT int64
		type req struct {
			lat   int64
			count int64
		}
		var bReqs []req
		for _, o := range platform.Ops {
			if !platform.CanAccess(t, o) {
				continue
			}
			to := platform.TargetOp{Target: t, Op: o}
			naT += na[to]
			if c := nb[to]; c > 0 {
				bReqs = append(bReqs, req{lat: lat.MaxLatency(t, o), count: c})
			}
		}
		// Greedily match the contender's longest requests against the
		// analysed task's requests on this target.
		sort.Slice(bReqs, func(i, j int) bool { return bReqs[i].lat > bReqs[j].lat })
		remaining := naT
		for _, r := range bReqs {
			if remaining <= 0 {
				break
			}
			n := r.count
			if n > remaining {
				n = remaining
			}
			delta += n * r.lat
			remaining -= n
		}
	}
	return delta
}

// IdealMulti extends Ideal to several contenders: with round-robin
// arbitration each contender independently delays up to min(na, nbi)
// requests per target.
func IdealMulti(na map[platform.TargetOp]int64, nbs []map[platform.TargetOp]int64, lat *platform.LatencyTable) int64 {
	var delta int64
	for _, nb := range nbs {
		delta += Ideal(na, nb, lat)
	}
	return delta
}
