package core

import (
	"fmt"

	"repro/internal/dsu"
	"repro/internal/ilp"
	"repro/internal/platform"
)

// Template is a resource-usage contract for a contender in the spirit of
// the paper's ref [10] (Fernandez et al., "Resource usage templates and
// signatures for COTS multicore processors"): instead of measuring the
// actual co-runner — which may not exist yet at early design stages — the
// OEM pledges per-target request budgets the future co-runner must respect.
// Feeding a template instead of readings keeps the whole ILP-PTAC workflow
// available before any contender software is written, and the resulting
// bound holds for *every* contender that honours the contract.
type Template struct {
	// Name labels the contract.
	Name string
	// MaxRequests bounds the contender's SRI requests per (target, op)
	// over the analysis window. Absent entries mean zero — the template
	// pledges the contender will not touch that path at all.
	MaxRequests map[platform.TargetOp]int64
}

// Validate rejects contracts with illegal paths or negative budgets.
func (tp Template) Validate() error {
	for to, n := range tp.MaxRequests {
		if !to.Valid() {
			return fmt.Errorf("core: template %s: illegal access path %s", tp.Name, to)
		}
		if n < 0 {
			return fmt.Errorf("core: template %s: negative budget %d for %s", tp.Name, n, to)
		}
	}
	return nil
}

// ILPPTACTemplate computes the ILP-PTAC bound for the analysed task
// against one or more contender templates. The analysed task is
// characterised by its isolation readings exactly as in ILPPTAC; each
// contender's per-target counts are fixed by its contract rather than
// reconstructed from stall counters, so Eq. 22-23 are replaced by direct
// bounds n^{t,o}_b <= MaxRequests[t,o].
func ILPPTACTemplate(a Input, templates []Template, opts PTACOptions) (Estimate, error) {
	// Validate τa's side with a placeholder contender so Input.Validate
	// applies; templates are checked separately.
	probe := a
	probe.B = nil
	if err := probe.Validate(); err != nil {
		return Estimate{}, err
	}
	if len(templates) == 0 {
		return Estimate{}, fmt.Errorf("core: ILP-PTAC-template needs at least one template")
	}
	for _, tp := range templates {
		if err := tp.Validate(); err != nil {
			return Estimate{}, err
		}
	}

	b := &ptacBuilder{p: ilp.New(), in: a, opts: opts}
	na := b.addTaskVars("a")
	b.addStallConstraints(na, a.A)
	b.addTailoring(na, a.A)

	for bi, tp := range templates {
		nb := make(map[platform.TargetOp]ilp.Var, 7)
		for _, to := range platform.AccessPairs() {
			// The contract pins the contender's counts directly; the
			// deployment pin still applies on top.
			hi := float64(tp.MaxRequests[to])
			if !a.Scenario.Deploy.MayAccess(to.Target, to.Op) {
				hi = 0
			}
			nb[to] = b.p.AddInt(fmt.Sprintf("nb%d[%s]", bi, to), 0, hi)
		}
		// Templates carry no cacheability split, so the dirty-LMU
		// escalation never triggers (zero readings: DMD = 0); the
		// contract's requests are already charged at full lmax.
		b.addInterference(bi, na, nb, dsu.Readings{})
	}

	gap := opts.Gap
	if gap <= 0 {
		gap = defaultGap(a.Lat)
	}
	sol, err := b.p.Solve(ilp.Options{MaxNodes: opts.MaxNodes, Gap: gap})
	if err != nil {
		return Estimate{}, fmt.Errorf("core: ILP-PTAC-template (%s): %w", a.Scenario.Name, err)
	}

	decomp := make(map[string]int64)
	for _, to := range platform.AccessPairs() {
		decomp[fmt.Sprintf("na[%s]", to)] = sol.Int(fmt.Sprintf("na[%s]", to))
		for bi := range templates {
			decomp[fmt.Sprintf("nb%d[%s]", bi, to)] = sol.Int(fmt.Sprintf("nb%d[%s]", bi, to))
			decomp[fmt.Sprintf("x%d[%s]", bi, to)] = sol.Int(fmt.Sprintf("x%d[%s]", bi, to))
		}
	}
	return Estimate{
		Model:            "ILP-PTAC-template",
		IsolationCycles:  a.A.CCNT,
		ContentionCycles: int64(sol.UpperBound + 0.5),
		Decomposition:    decomp,
	}, nil
}
