package core

import (
	"fmt"

	"repro/internal/dsu"
	"repro/internal/ilp"
	"repro/internal/platform"
)

// Template is a resource-usage contract for a contender in the spirit of
// the paper's ref [10] (Fernandez et al., "Resource usage templates and
// signatures for COTS multicore processors"): instead of measuring the
// actual co-runner — which may not exist yet at early design stages — the
// OEM pledges per-target request budgets the future co-runner must respect.
// Feeding a template instead of readings keeps the whole ILP-PTAC workflow
// available before any contender software is written, and the resulting
// bound holds for *every* contender that honours the contract.
type Template struct {
	// Name labels the contract.
	Name string
	// MaxRequests bounds the contender's SRI requests per (target, op)
	// over the analysis window. Absent entries mean zero — the template
	// pledges the contender will not touch that path at all.
	MaxRequests map[platform.TargetOp]int64
}

// Validate rejects contracts with illegal paths or negative budgets.
func (tp Template) Validate() error {
	for to, n := range tp.MaxRequests {
		if !to.Valid() {
			return fmt.Errorf("core: template %s: illegal access path %s", tp.Name, to)
		}
		if n < 0 {
			return fmt.Errorf("core: template %s: negative budget %d for %s", tp.Name, n, to)
		}
	}
	return nil
}

// ILPPTACTemplate computes the ILP-PTAC bound for the analysed task
// against one or more contender templates. The analysed task is
// characterised by its isolation readings exactly as in ILPPTAC; each
// contender's per-target counts are fixed by its contract rather than
// reconstructed from stall counters, so Eq. 22-23 are replaced by direct
// bounds n^{t,o}_b <= MaxRequests[t,o].
func ILPPTACTemplate(a Input, templates []Template, opts PTACOptions) (Estimate, error) {
	// Validate τa's side with a placeholder contender so Input.Validate
	// applies; templates are checked separately.
	probe := a
	probe.B = nil
	if err := probe.Validate(); err != nil {
		return Estimate{}, err
	}
	if len(templates) == 0 {
		return Estimate{}, fmt.Errorf("core: ILP-PTAC-template needs at least one template")
	}
	for _, tp := range templates {
		if err := tp.Validate(); err != nil {
			return Estimate{}, err
		}
	}

	b := newPTACBuilder(a, opts)
	defer b.release()
	b.na = b.addTaskVars(-1, b.na)
	b.addStallConstraints(b.na, a.A)
	b.addTailoring(b.na, a.A)

	// Dominance pre-pruning. A template path (t, o) can inflict no
	// interference — and therefore never needs to reach the LP — when any
	// of three conditions holds: the contract pledges zero requests on it
	// (absent MaxRequests entries mean zero), the deployment pins it
	// (Eq. 10-19's nb bound is zero either way), or the analysed task
	// cannot be delayed on its target because the deployment gives τa no
	// access to t at all (then Eq. 13/16/19 forces x^{t,·} = 0). Pruned
	// paths get their nb and x variables pinned to zero, which the ilp
	// presolve substitutes out before the LP is built.
	var reachable [platform.NumTargets]bool
	for _, to := range accessPairs {
		if a.Scenario.Deploy.MayAccess(to.Target, to.Op) {
			reachable[to.Target] = true
		}
	}

	b.nbAll, b.xsAll = b.nbAll[:0], b.xsAll[:0]
	for bi, tp := range templates {
		nb := b.nb[:0]
		pruned := b.pruned[:0]
		for pi, to := range accessPairs {
			// The contract pins the contender's counts directly; the
			// deployment pin still applies on top.
			hi := float64(tp.MaxRequests[to])
			if !a.Scenario.Deploy.MayAccess(to.Target, to.Op) {
				hi = 0
			}
			prune := hi == 0 || !reachable[to.Target]
			if prune {
				hi = 0
			}
			pruned = append(pruned, prune)
			nb = append(nb, b.p.AddInt(nbVarName(bi, pi), 0, hi))
		}
		b.nb, b.pruned = nb, pruned
		// Templates carry no cacheability split, so the dirty-LMU
		// escalation never triggers (zero readings: DMD = 0); the
		// contract's requests are already charged at full lmax.
		b.addInterference(bi, b.na, nb, dsu.Readings{}, pruned)
		b.nbAll = append(b.nbAll, nb...)
		b.xsAll = append(b.xsAll, b.xs...)
	}

	gap := opts.Gap
	if gap <= 0 {
		gap = defaultGap(a.Lat)
	}
	sol, err := b.p.Solve(ilp.Options{MaxNodes: opts.MaxNodes, Gap: gap, Workers: opts.SolverWorkers})
	if err != nil {
		return Estimate{}, fmt.Errorf("core: ILP-PTAC-template (%s): %w", a.Scenario.Name, err)
	}

	decomp := make(map[string]int64)
	for pi := range accessPairs {
		decomp[naNames[pi]] = sol.IntOf(b.na[pi])
		for bi := range templates {
			decomp[nbVarName(bi, pi)] = sol.IntOf(b.nbAll[bi*len(accessPairs)+pi])
			decomp[xVarName(bi, pi)] = sol.IntOf(b.xsAll[bi*len(accessPairs)+pi])
		}
	}
	return Estimate{
		Model:            "ILP-PTAC-template",
		IsolationCycles:  a.A.CCNT,
		ContentionCycles: int64(sol.UpperBound + 0.5),
		Decomposition:    decomp,
		Nodes:            sol.Nodes,
		WarmStarts:       sol.WarmStarts,
	}, nil
}
