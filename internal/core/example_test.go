package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
)

// ExampleFTC bounds a task's multicore WCET from its own isolation
// readings only — valid against any contender.
func ExampleFTC() {
	lat := platform.TC27xLatencies()
	in := core.Input{
		// 10 SRI code requests' worth of program stalls (cs=6) and 10
		// data requests' worth (cs=10), measured in isolation.
		A:        dsu.Readings{CCNT: 10000, PS: 60, DS: 100, PM: 10},
		B:        []dsu.Readings{{}}, // fTC ignores contender content
		Lat:      &lat,
		Scenario: core.Scenario1(),
	}
	est, err := core.FTC(in)
	if err != nil {
		panic(err)
	}
	fmt.Println(est)
	// Output: fTC: iso=10000 +cont=590 wcet=10590 (x1.06)
}

// ExampleILPPTAC tightens the bound using the contender's isolation
// readings and the Scenario 1 tailoring of Table 5.
func ExampleILPPTAC() {
	lat := platform.TC27xLatencies()
	in := core.Input{
		A:        dsu.Readings{CCNT: 10000, PS: 60, DS: 100, PM: 10},
		B:        []dsu.Readings{{CCNT: 10000, PS: 24, DS: 30, PM: 4}},
		Lat:      &lat,
		Scenario: core.Scenario1(),
	}
	est, err := core.ILPPTAC(in, core.PTACOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(est)
	// Output: ILP-PTAC: iso=10000 +cont=97 wcet=10097 (x1.01)
}

// ExampleAccessBounds shows Eq. 4: over-approximating a task's SRI
// request counts from its stall counters.
func ExampleAccessBounds() {
	lat := platform.TC27xLatencies()
	nCo, nDa := core.AccessBounds(dsu.Readings{PS: 61, DS: 99}, &lat)
	fmt.Println(nCo, nDa)
	// Output: 11 10
}

// ExampleEnforcedContentionBound bounds interference from an RTOS stall
// quota alone, with no contender measurement (paper ref [16]).
func ExampleEnforcedContentionBound() {
	lat := platform.TC27xLatencies()
	fmt.Println(core.EnforcedContentionBound(600, &lat))
	// Output: 4343
}
