package core

import (
	"strconv"

	"repro/internal/platform"
)

// accessPairs caches platform.AccessPairs(): the list is immutable and the
// model builders iterate it several times per estimate, so the hot path
// must not re-derive (and re-allocate) it per use. Throughout the builder,
// a "pair index" is a position in this slice.
var accessPairs = platform.AccessPairs()

// pairIdx maps (target, op) back to its pair index, or -1 for illegal
// paths.
var pairIdx = func() [platform.NumTargets][platform.NumOps]int {
	var m [platform.NumTargets][platform.NumOps]int
	for t := range m {
		for o := range m[t] {
			m[t][o] = -1
		}
	}
	for i, to := range accessPairs {
		m[to.Target][to.Op] = i
	}
	return m
}()

// targetPairs lists, per target, the pair indices legal on it in Ops
// order — the iteration order of the per-target constraint rows.
var targetPairs = func() [platform.NumTargets][]int {
	var m [platform.NumTargets][]int
	for _, t := range platform.Targets {
		for _, o := range platform.Ops {
			if i := pairIdx[t][o]; i >= 0 {
				m[t] = append(m[t], i)
			}
		}
	}
	return m
}()

// pairSuf holds each pair's bracketed variable-name suffix
// ("[pf0/co]", ...), indexed by pair index. Variable names are built from
// these cached pieces rather than through fmt.Sprintf, which profiling
// shows dominating small-instance model builds.
var pairSuf = func() []string {
	s := make([]string, len(accessPairs))
	for i, to := range accessPairs {
		s[i] = "[" + to.String() + "]"
	}
	return s
}()

// nameCacheContenders is how many contenders get fully pre-built variable
// names; the paper's evaluation uses one, so four is already generous.
// Larger indices fall back to on-demand concatenation.
const nameCacheContenders = 4

var naNames = buildPairNames("na")

var nbNameTab = func() [][]string {
	t := make([][]string, nameCacheContenders)
	for bi := range t {
		t[bi] = buildPairNames("nb" + strconv.Itoa(bi))
	}
	return t
}()

var xNameTab = func() [][]string {
	t := make([][]string, nameCacheContenders)
	for bi := range t {
		t[bi] = buildPairNames("x" + strconv.Itoa(bi))
	}
	return t
}()

func buildPairNames(prefix string) []string {
	s := make([]string, len(accessPairs))
	for i := range accessPairs {
		s[i] = prefix + pairSuf[i]
	}
	return s
}

// biLabel renders a contender index ("b0", "b1", ...).
func biLabel(bi int) string { return "b" + strconv.Itoa(bi) }

// taskVarName names the n^{t,o} variable of the analysed task (bi < 0) or
// of contender bi.
func taskVarName(bi, pi int) string {
	if bi < 0 {
		return naNames[pi]
	}
	return nbVarName(bi, pi)
}

func nbVarName(bi, pi int) string {
	if bi < nameCacheContenders {
		return nbNameTab[bi][pi]
	}
	return "n" + biLabel(bi) + pairSuf[pi]
}

func xVarName(bi, pi int) string {
	if bi < nameCacheContenders {
		return xNameTab[bi][pi]
	}
	return "x" + strconv.Itoa(bi) + pairSuf[pi]
}
