package core

import (
	"sort"

	"repro/internal/platform"
)

// This file implements the front-side-bus (FSB) reduction of §4.3: on an
// FSB-based platform every request contends with every other request
// because there is a single shared resource, which is exactly the crossbar
// model with all targets collapsed into one. The paper argues its crossbar
// model generalises the FSB models of prior work; these functions make the
// claim executable — and testable, since the crossbar bound can never
// exceed its FSB reduction.

// FTCFSB is the fully time-composable bound a single-bus platform would
// give: every one of the analysed task's requests can be delayed by the
// worst request anywhere, with no per-target separation.
func FTCFSB(in Input) (Estimate, error) {
	if err := in.Validate(); err != nil {
		return Estimate{}, err
	}
	nCo, nDa := AccessBounds(in.A, in.Lat)
	var lMax int64
	for _, to := range platform.AccessPairs() {
		if l := in.Lat.MaxLatency(to.Target, to.Op); l > lMax {
			lMax = l
		}
	}
	k := int64(len(in.B))
	if k < 1 {
		k = 1
	}
	return Estimate{
		Model:            "fTC-FSB",
		IsolationCycles:  in.A.CCNT,
		ContentionCycles: k * (nCo + nDa) * lMax,
	}, nil
}

// IdealFSB is the ideal bound under the FSB collapse: with exact PTACs for
// both tasks but a single shared bus, the number of conflicts is bounded by
// the smaller of the two *total* request counts, matched against the
// contender's longest requests.
func IdealFSB(na, nb map[platform.TargetOp]int64, lat *platform.LatencyTable) int64 {
	var naTotal int64
	for _, c := range na {
		naTotal += c
	}
	type req struct {
		lat   int64
		count int64
	}
	var reqs []req
	for to, c := range nb {
		if c > 0 {
			reqs = append(reqs, req{lat: lat.MaxLatency(to.Target, to.Op), count: c})
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].lat > reqs[j].lat })
	var delta int64
	remaining := naTotal
	for _, r := range reqs {
		if remaining <= 0 {
			break
		}
		n := r.count
		if n > remaining {
			n = remaining
		}
		delta += n * r.lat
		remaining -= n
	}
	return delta
}
