package core

import "repro/internal/platform"

// FTC computes the fully time-composable contention bound (paper §3.4).
//
// The model uses only the analysed task's isolation readings: its SRI code
// and data request counts are over-approximated from the stall counters
// (Eq. 4), and every request is charged the longest delay any contender
// request could impose on any target its operation class can reach
// (Eq. 6-8):
//
//	Δcont = n̂co · l^co_max + n̂da · l^da_max
//
// The bound holds for any contender workload. Under round-robin
// arbitration delays stack once per contender, so FTC charges one
// contender's worth of delay per request times the number of contenders in
// the input (at least one).
func FTC(in Input) (Estimate, error) {
	if err := in.Validate(); err != nil {
		return Estimate{}, err
	}
	nCo, nDa := AccessBounds(in.A, in.Lat)
	lCoMax := in.Lat.MaxLatencyFor(platform.Code)
	lDaMax := in.Lat.MaxLatencyFor(platform.Data)

	// With k contenders in the same round-robin class, each request can
	// be delayed once by each of them.
	k := int64(len(in.B))
	if k < 1 {
		k = 1
	}
	delta := k * (nCo*lCoMax + nDa*lDaMax)
	return Estimate{
		Model:            "fTC",
		IsolationCycles:  in.A.CCNT,
		ContentionCycles: delta,
	}, nil
}
