package core

import (
	"fmt"
	"testing"

	"repro/internal/dsu"
	"repro/internal/platform"
)

// TestDecompositionSatisfiesModel re-checks the worst-case mapping the
// ILP returns against every constraint of the formulation — a consistency
// audit of the solver through the model's own lens.
func TestDecompositionSatisfiesModel(t *testing.T) {
	a := sc1Readings(5, 5, 10, 10000)
	b := sc1Readings(3, 4, 6, 10000)
	in := Input{A: a, B: []dsu.Readings{b}, Lat: &tc27x, Scenario: Scenario1()}
	est, err := ILPPTAC(in, PTACOptions{StallMode: StallExact})
	if err != nil {
		t.Fatal(err)
	}
	d := est.Decomposition

	get := func(pattern string, to platform.TargetOp) int64 {
		v, ok := d[fmt.Sprintf(pattern, to)]
		if !ok {
			t.Fatalf("missing decomposition entry for %s", to)
		}
		return v
	}

	// Non-negativity and zero pins.
	for _, to := range platform.AccessPairs() {
		for _, pat := range []string{"na[%s]", "nb0[%s]", "x0[%s]"} {
			if v := get(pat, to); v < 0 {
				t.Errorf("%s negative: %d", fmt.Sprintf(pat, to), v)
			}
		}
		if !in.Scenario.Deploy.MayAccess(to.Target, to.Op) {
			if v := get("na[%s]", to); v != 0 {
				t.Errorf("na[%s] = %d despite placement pin", to, v)
			}
		}
	}

	// Stall decomposition (Eq. 20-21, exact mode).
	var psA, dsA int64
	for _, to := range platform.AccessPairs() {
		cs := tc27x.MinStall(to.Target, to.Op)
		if to.Op == platform.Code {
			psA += get("na[%s]", to) * cs
		} else {
			dsA += get("na[%s]", to) * cs
		}
	}
	if psA != a.PS || dsA != a.DS {
		t.Errorf("stall decomposition %d/%d != observed %d/%d", psA, dsA, a.PS, a.DS)
	}

	// Code-count tailoring (Table 5): sum of code PTACs equals PM.
	var pmA int64
	for _, tg := range platform.Targets {
		if platform.CanAccess(tg, platform.Code) && in.Scenario.Deploy.MayAccess(tg, platform.Code) {
			pmA += get("na[%s]", platform.TargetOp{Target: tg, Op: platform.Code})
		}
	}
	if pmA != a.PM {
		t.Errorf("code PTAC sum %d != PM %d", pmA, a.PM)
	}

	// Interference caps (Eq. 10-19) and objective consistency (Eq. 9).
	var obj int64
	for _, tg := range platform.Targets {
		var xSum, naSum int64
		for _, op := range platform.Ops {
			if !platform.CanAccess(tg, op) {
				continue
			}
			to := platform.TargetOp{Target: tg, Op: op}
			x := get("x0[%s]", to)
			if nb := get("nb0[%s]", to); x > nb {
				t.Errorf("x0[%s] = %d exceeds contender count %d", to, x, nb)
			}
			xSum += x
			naSum += get("na[%s]", to)
			obj += x * tc27x.MaxLatency(tg, op)
		}
		if xSum > naSum {
			t.Errorf("%s: conflicts %d exceed analysed requests %d", tg, xSum, naSum)
		}
	}
	if obj != est.ContentionCycles {
		t.Errorf("decomposition objective %d != reported bound %d", obj, est.ContentionCycles)
	}
}

// TestDecompositionUpperBoundGap: under a coarse optimality gap the
// reported bound may exceed the incumbent decomposition's objective, but
// never by more than the gap.
func TestDecompositionUpperBoundGap(t *testing.T) {
	a := sc1Readings(50, 50, 100, 1000000)
	b := sc1Readings(30, 40, 60, 1000000)
	in := Input{A: a, B: []dsu.Readings{b}, Lat: &tc27x, Scenario: Scenario1()}
	const gap = 200
	est, err := ILPPTAC(in, PTACOptions{Gap: gap})
	if err != nil {
		t.Fatal(err)
	}
	var obj int64
	for _, to := range platform.AccessPairs() {
		obj += est.Decomposition[fmt.Sprintf("x0[%s]", to)] * tc27x.MaxLatency(to.Target, to.Op)
	}
	if est.ContentionCycles < obj {
		t.Errorf("reported bound %d below incumbent objective %d", est.ContentionCycles, obj)
	}
	if est.ContentionCycles > obj+gap {
		t.Errorf("reported bound %d exceeds incumbent %d by more than the gap %d", est.ContentionCycles, obj, gap)
	}
}
