package core

import (
	"fmt"
	"sync"

	"repro/internal/dsu"
	"repro/internal/ilp"
	"repro/internal/platform"
)

// StallMode selects how the stall-decomposition constraints (Eq. 20-23)
// relate a task's per-target access counts to its observed stall totals.
type StallMode int

const (
	// StallBudget uses Σ n^{t,o} · cs^{t,o} <= PS/DS: the observed stall
	// total is a budget the per-target counts must fit under, since every
	// real request stalls at least cs^{t,o} cycles. Always sound — on
	// real hardware the per-request stalls exceed the minimum, so an
	// exact decomposition may not exist. This is the default.
	StallBudget StallMode = iota
	// StallExact uses the paper's literal equalities Σ n^{t,o} · cs^{t,o}
	// = PS/DS. Appropriate when per-request stalls are known to equal the
	// Table 2 minima (true on the deterministic simulator), infeasible
	// when they do not.
	StallExact
)

// String names the mode.
func (m StallMode) String() string {
	switch m {
	case StallBudget:
		return "budget"
	case StallExact:
		return "exact"
	default:
		return fmt.Sprintf("StallMode(%d)", int(m))
	}
}

// PTACOptions tunes the ILP-PTAC model.
type PTACOptions struct {
	// StallMode picks budget (default) vs exact stall decomposition.
	StallMode StallMode
	// DropContenderInfo removes the contenders' stall constraints
	// (Eq. 22-23) and per-type count caps, making the model fully
	// time-composable as noted in §3.5 — the ablation DESIGN.md calls
	// out.
	DropContenderInfo bool
	// MaxNodes caps the branch & bound; 0 uses the solver default.
	MaxNodes int
	// Gap is the absolute branch & bound optimality gap; 0 uses one
	// worst-case request latency. Large instances have plateaus of
	// equal-cost integer budget splits that exact search would have to
	// enumerate; the reported bound is the solver's proved upper bound,
	// so it stays a sound worst case regardless of the gap — the gap only
	// trades (at most that many cycles of) tightness for solve time.
	Gap float64
	// SolverWorkers is the branch & bound worker count (ilp.Options
	// .Workers); 0 or 1 keeps the solve sequential. Small trees stay
	// sequential regardless — the solver only fans out once a search has
	// outlived its exact sequential prefix.
	SolverWorkers int
}

// ptacBuilder accumulates the ILP formulation. Builders are pooled: every
// slice below is scratch that survives between estimates so the model
// build allocates almost nothing in the steady state. Variable slices are
// indexed by pair index (position in accessPairs).
type ptacBuilder struct {
	p    *ilp.Problem
	in   Input
	opts PTACOptions

	na, nb, xs       []ilp.Var
	nbAll, xsAll     []ilp.Var // per-contender handles, bi*len(accessPairs)+pi
	coTerms, daTerms []ilp.Term
	terms, tgtTerms  []ilp.Term
	pruned           []bool
}

// builderPool recycles ptacBuilders (and with them their ilp.Problems,
// term arenas, and relaxation storage) across estimates — including
// across concurrently handled service requests; a builder is bound to at
// most one estimate at a time.
var builderPool = sync.Pool{New: func() any { return &ptacBuilder{p: ilp.New()} }}

func newPTACBuilder(in Input, opts PTACOptions) *ptacBuilder {
	b := builderPool.Get().(*ptacBuilder)
	b.p.Reset()
	b.in, b.opts = in, opts
	return b
}

// release returns the builder to the pool, dropping input references so
// pooled builders do not pin caller data.
func (b *ptacBuilder) release() {
	b.in = Input{}
	builderPool.Put(b)
}

// ILPPTAC computes the partially time-composable ILP-PTAC bound (paper
// §3.5): the worst-case per-target mapping of the analysed task's and the
// contenders' requests consistent with all isolation readings and the
// scenario tailoring of Table 5, maximizing the contention inflicted on
// the analysed task (the objective of Eq. 9).
//
// With more than one contender, the constraint blocks of Eq. 10-19 and
// 22-23 are replicated per contender and the objective sums their
// interference — under round-robin arbitration each contender can delay
// each analysed-task request once.
func ILPPTAC(in Input, opts PTACOptions) (Estimate, error) {
	if err := in.Validate(); err != nil {
		return Estimate{}, err
	}
	if len(in.B) == 0 {
		return Estimate{}, fmt.Errorf("core: ILP-PTAC needs at least one contender measurement")
	}

	b := newPTACBuilder(in, opts)
	defer b.release()

	// n^{t,o}_a plus its stall decomposition (Eq. 20-21) and tailoring.
	b.na = b.addTaskVars(-1, b.na)
	b.addStallConstraints(b.na, in.A)
	b.addTailoring(b.na, in.A)

	b.nbAll, b.xsAll = b.nbAll[:0], b.xsAll[:0]
	for bi, rb := range in.B {
		// n^{t,o}_b plus Eq. 22-23 and tailoring (deployment
		// configurations apply equally to contenders, §4.1) — unless the
		// contender-information ablation drops them.
		b.nb = b.addTaskVars(bi, b.nb)
		if !opts.DropContenderInfo {
			b.addStallConstraints(b.nb, rb)
			b.addTailoring(b.nb, rb)
		}
		b.addInterference(bi, b.na, b.nb, rb, nil)
		b.nbAll = append(b.nbAll, b.nb...)
		b.xsAll = append(b.xsAll, b.xs...)
	}

	gap := opts.Gap
	if gap <= 0 {
		gap = defaultGap(in.Lat)
	}
	sol, err := b.p.Solve(ilp.Options{MaxNodes: opts.MaxNodes, Gap: gap, Workers: opts.SolverWorkers})
	if err != nil {
		return Estimate{}, fmt.Errorf("core: ILP-PTAC (%s, %s mode): %w", in.Scenario.Name, opts.StallMode, err)
	}

	decomp := make(map[string]int64)
	for pi := range accessPairs {
		decomp[naNames[pi]] = sol.IntOf(b.na[pi])
		for bi := range in.B {
			decomp[nbVarName(bi, pi)] = sol.IntOf(b.nbAll[bi*len(accessPairs)+pi])
			decomp[xVarName(bi, pi)] = sol.IntOf(b.xsAll[bi*len(accessPairs)+pi])
		}
	}

	model := "ILP-PTAC"
	if opts.DropContenderInfo {
		model = "ILP-PTAC-fTC"
	}
	// The contention bound must over-approximate the worst case, so it is
	// the solver's *proved upper bound* on the ILP optimum, not the
	// incumbent (they coincide when the search completed exactly).
	return Estimate{
		Model:            model,
		IsolationCycles:  in.A.CCNT,
		ContentionCycles: int64(sol.UpperBound + 0.5),
		Decomposition:    decomp,
		Nodes:            sol.Nodes,
		WarmStarts:       sol.WarmStarts,
	}, nil
}

// addTaskVars creates the seven n^{t,o} variables of one task (bi < 0 for
// the analysed task) into dst, indexed by pair index. Placement-derived
// zero pins always apply: a deployment that puts no code or data on a
// target cannot generate that traffic, whoever the task is.
func (b *ptacBuilder) addTaskVars(bi int, dst []ilp.Var) []ilp.Var {
	dst = dst[:0]
	for pi, to := range accessPairs {
		hi := ilp.Inf
		if !b.in.Scenario.Deploy.MayAccess(to.Target, to.Op) {
			hi = 0
		}
		dst = append(dst, b.p.AddInt(taskVarName(bi, pi), 0, hi))
	}
	return dst
}

// addStallConstraints encodes Eq. 20-23 for one task: the observed code and
// data stall totals constrain the cs^{t,o}-weighted sums of its per-target
// counts.
func (b *ptacBuilder) addStallConstraints(vars []ilp.Var, r dsu.Readings) {
	sense := ilp.LE
	if b.opts.StallMode == StallExact {
		sense = ilp.EQ
	}
	coTerms, daTerms := b.coTerms[:0], b.daTerms[:0]
	for pi, to := range accessPairs {
		term := ilp.Term{Var: vars[pi], Coeff: float64(b.in.Lat.MinStall(to.Target, to.Op))}
		if to.Op == platform.Code {
			coTerms = append(coTerms, term)
		} else {
			daTerms = append(daTerms, term)
		}
	}
	b.coTerms, b.daTerms = coTerms, daTerms
	b.p.Add(coTerms, sense, float64(r.PS))
	b.p.Add(daTerms, sense, float64(r.DS))
}

// addTailoring encodes the Table 5 counter constraints for one task.
func (b *ptacBuilder) addTailoring(vars []ilp.Var, r dsu.Readings) {
	sc := b.in.Scenario
	if sc.CodeCountExact {
		// All SRI code is cacheable, so PCACHE_MISS counts SRI code
		// requests exactly: Σ_t n^{t,co} = PM.
		terms := b.terms[:0]
		for _, t := range platform.Targets {
			if pi := pairIdx[t][platform.Code]; pi >= 0 && sc.Deploy.MayAccess(t, platform.Code) {
				terms = append(terms, ilp.Term{Var: vars[pi], Coeff: 1})
			}
		}
		b.terms = terms
		if len(terms) > 0 {
			b.p.Add(terms, ilp.EQ, float64(r.PM))
		}
	}
	if sc.CacheableDataFloor {
		// The D-cache miss counters give the cacheable data requests but
		// not their targets; non-cacheable accesses add on top, so the
		// sum of data PTACs is at least DMC + DMD.
		terms := b.terms[:0]
		for _, t := range platform.Targets {
			if pi := pairIdx[t][platform.Data]; pi >= 0 && sc.Deploy.MayAccess(t, platform.Data) {
				terms = append(terms, ilp.Term{Var: vars[pi], Coeff: 1})
			}
		}
		b.terms = terms
		if len(terms) > 0 {
			b.p.Add(terms, ilp.GE, float64(r.DMC+r.DMD))
		}
	}
}

// addInterference creates the interference variables x^{t,o}_{bi→a} with
// the constraint blocks of Eq. 10-19 and their objective terms (Eq. 9).
//
// pruned (may be nil) marks access paths proven dominated by the caller —
// paths on which this contender can inflict no interference, indexed by
// pair index. A pruned path's x variable is pinned to zero, so the ilp
// presolve substitutes it out before the LP is ever built, and its
// bounding rows — vacuous once x is zero, since counts are non-negative —
// are omitted entirely.
func (b *ptacBuilder) addInterference(bi int, na, nb []ilp.Var, rb dsu.Readings, pruned []bool) {
	xs := b.xs[:0]
	for pi, to := range accessPairs {
		hi := ilp.Inf
		if pruned != nil && pruned[pi] {
			hi = 0
		}
		x := b.p.AddInt(xVarName(bi, pi), 0, hi)
		xs = append(xs, x)
		b.p.SetObjective(x, float64(b.interferenceLatency(rb, to)))
		if pruned != nil && pruned[pi] {
			continue
		}

		// Eq. 10-12/14-15/17-18, one pair per (target, op): bounded by
		// the contender's requests of that type and by the analysed
		// task's requests on the target (either type can be delayed).
		terms := append(b.terms[:0], ilp.Term{Var: x, Coeff: 1}, ilp.Term{Var: nb[pi], Coeff: -1})
		b.p.Add(terms, ilp.LE, 0)
		terms = append(terms[:1], b.targetTerms(na, to.Target, -1)...)
		b.terms = terms
		b.p.Add(terms, ilp.LE, 0)
	}
	b.xs = xs
	// Eq. 13/16/19 (and the dfl analogue): cumulative conflicts on a
	// target cannot exceed the analysed task's requests there.
	for _, t := range platform.Targets {
		terms := b.terms[:0]
		for _, pi := range targetPairs[t] {
			if pruned == nil || !pruned[pi] {
				terms = append(terms, ilp.Term{Var: xs[pi], Coeff: 1})
			}
		}
		if len(terms) == 0 {
			b.terms = terms
			continue // every path on this target is dominated
		}
		terms = append(terms, b.targetTerms(na, t, -1)...)
		b.terms = terms
		b.p.Add(terms, ilp.LE, 0)
	}
}

// interferenceLatency is the delay one contender request on (t,o) imposes:
// the maximum transaction latency of Table 2, escalated to the bracketed
// dirty-miss figure on the LMU when the contender demonstrably produces
// dirty misses there (its DMD reading is non-zero).
func (b *ptacBuilder) interferenceLatency(rb dsu.Readings, to platform.TargetOp) int64 {
	if to.Target == platform.LMU && to.Op == platform.Data && rb.DMD > 0 {
		return platform.TC27xLMUDirtyMissLatency
	}
	return b.in.Lat.MaxLatency(to.Target, to.Op)
}

// defaultGap is the default branch & bound optimality gap: one worst-case
// request latency, i.e. the bound may be loose by at most one transaction.
func defaultGap(lat *platform.LatencyTable) float64 {
	var lMax int64
	for _, to := range accessPairs {
		if l := lat.MaxLatency(to.Target, to.Op); l > lMax {
			lMax = l
		}
	}
	return float64(lMax)
}

// targetTerms returns coeff * n^{t,o} terms for every operation type legal
// on target t, from a builder-owned scratch buffer (valid until the next
// call).
func (b *ptacBuilder) targetTerms(vars []ilp.Var, t platform.Target, coeff float64) []ilp.Term {
	terms := b.tgtTerms[:0]
	for _, pi := range targetPairs[t] {
		terms = append(terms, ilp.Term{Var: vars[pi], Coeff: coeff})
	}
	b.tgtTerms = terms
	return terms
}
