package core

import (
	"testing"

	"repro/internal/dsu"
	"repro/internal/platform"
)

func tpl(codePF, dataLMU int64) Template {
	return Template{
		Name: "contract",
		MaxRequests: map[platform.TargetOp]int64{
			to(platform.PF0, platform.Code): codePF,
			to(platform.PF1, platform.Code): codePF,
			to(platform.LMU, platform.Data): dataLMU,
		},
	}
}

func TestTemplateValidate(t *testing.T) {
	if err := tpl(10, 10).Validate(); err != nil {
		t.Error(err)
	}
	bad := Template{Name: "x", MaxRequests: map[platform.TargetOp]int64{to(platform.DFL, platform.Code): 1}}
	if err := bad.Validate(); err == nil {
		t.Error("illegal path accepted")
	}
	neg := Template{Name: "x", MaxRequests: map[platform.TargetOp]int64{to(platform.LMU, platform.Data): -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestILPPTACTemplateBasic(t *testing.T) {
	// τa: 10 code requests, 10 lmu data requests. Contract: contender may
	// make up to 4 code requests per bank and 3 lmu data requests.
	a := Input{A: sc1Readings(5, 5, 10, 10000), Lat: &tc27x, Scenario: Scenario1()}
	est, err := ILPPTACTemplate(a, []Template{tpl(4, 3)}, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: all 8 code conflicts land (bounded by the contract's
	// 4+4), 3 data conflicts: 8*16 + 3*11 = 161.
	if want := int64(8*16 + 3*11); est.ContentionCycles != want {
		t.Errorf("Δcont = %d, want %d", est.ContentionCycles, want)
	}
	if est.Model != "ILP-PTAC-template" {
		t.Errorf("model = %q", est.Model)
	}
}

func TestILPPTACTemplateAnalysedSideCaps(t *testing.T) {
	// A huge contract is still capped by the analysed task's own counts.
	a := Input{A: sc1Readings(2, 2, 3, 10000), Lat: &tc27x, Scenario: Scenario1()}
	est, err := ILPPTACTemplate(a, []Template{tpl(1000, 1000)}, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4*16 + 3*11); est.ContentionCycles != want {
		t.Errorf("Δcont = %d, want %d (τa-side caps)", est.ContentionCycles, want)
	}
}

func TestILPPTACTemplateMatchesReadingsEquivalent(t *testing.T) {
	// A template pledging exactly a measured contender's counts must give
	// the same bound as ILPPTAC fed that contender's readings.
	aR := sc1Readings(5, 5, 10, 10000)
	bR := sc1Readings(3, 4, 6, 10000)
	in := Input{A: aR, B: []dsu.Readings{bR}, Lat: &tc27x, Scenario: Scenario1()}
	fromReadings, err := ILPPTAC(in, PTACOptions{StallMode: StallExact})
	if err != nil {
		t.Fatal(err)
	}
	// The readings-driven model can redistribute the 7 code requests
	// across banks; the equivalent contract pledges 7 on each bank (the
	// worst admissible distribution) and 6 lmu data requests... to match
	// exactly, pledge the total on both banks but cap the sum via the
	// tighter of the two models being compared is not the point — the
	// template bound must be >= the readings bound when it admits every
	// distribution the readings admit.
	contract := Template{
		Name: "like-measured",
		MaxRequests: map[platform.TargetOp]int64{
			to(platform.PF0, platform.Code): 7,
			to(platform.PF1, platform.Code): 7,
			to(platform.LMU, platform.Data): 6,
		},
	}
	fromTemplate, err := ILPPTACTemplate(Input{A: aR, Lat: &tc27x, Scenario: Scenario1()},
		[]Template{contract}, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fromTemplate.ContentionCycles < fromReadings.ContentionCycles {
		t.Errorf("template bound %d below readings bound %d despite a looser contract",
			fromTemplate.ContentionCycles, fromReadings.ContentionCycles)
	}
}

func TestILPPTACTemplateValidation(t *testing.T) {
	a := Input{A: sc1Readings(1, 1, 1, 100), Lat: &tc27x, Scenario: Scenario1()}
	if _, err := ILPPTACTemplate(a, nil, PTACOptions{}); err == nil {
		t.Error("no templates accepted")
	}
	bad := Template{Name: "x", MaxRequests: map[platform.TargetOp]int64{to(platform.LMU, platform.Data): -2}}
	if _, err := ILPPTACTemplate(a, []Template{bad}, PTACOptions{}); err == nil {
		t.Error("invalid template accepted")
	}
	noLat := a
	noLat.Lat = nil
	if _, err := ILPPTACTemplate(noLat, []Template{tpl(1, 1)}, PTACOptions{}); err == nil {
		t.Error("nil latency table accepted")
	}
}

func TestILPPTACTemplateZeroContract(t *testing.T) {
	// A contender pledging zero SRI usage inflicts zero contention.
	a := Input{A: sc1Readings(5, 5, 10, 10000), Lat: &tc27x, Scenario: Scenario1()}
	est, err := ILPPTACTemplate(a, []Template{{Name: "silent"}}, PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.ContentionCycles != 0 {
		t.Errorf("silent contract caused %d contention cycles", est.ContentionCycles)
	}
}
