package ilp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600, 2a+2b+6c <= 300.
	// Classic LP opt is fractional; ILP optimum is 1033 at integral point?
	// Use a small instance with a known integral answer instead:
	// max 8x + 11y + 6z + 4w, 5x + 7y + 4z + 3w <= 14, binaries.
	// Optimum: y + z + w = 21 at (0,1,1,1).
	p := New()
	x := p.AddInt("x", 0, 1)
	y := p.AddInt("y", 0, 1)
	z := p.AddInt("z", 0, 1)
	w := p.AddInt("w", 0, 1)
	p.SetObjective(x, 8)
	p.SetObjective(y, 11)
	p.SetObjective(z, 6)
	p.SetObjective(w, 4)
	p.Add([]Term{{x, 5}, {y, 7}, {z, 4}, {w, 3}}, LE, 14)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 21) {
		t.Fatalf("objective = %g, want 21", s.Objective)
	}
	if s.Int("x") != 0 || s.Int("y") != 1 || s.Int("z") != 1 || s.Int("w") != 1 {
		t.Errorf("solution %d %d %d %d, want 0 1 1 1", s.Int("x"), s.Int("y"), s.Int("z"), s.Int("w"))
	}
}

func TestIntegralityMatters(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 5: LP opt 2.5, ILP opt 2.
	p := New()
	x := p.AddInt("x", 0, Inf)
	y := p.AddInt("y", 0, Inf)
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.Add([]Term{{x, 2}, {y, 2}}, LE, 5)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 2) {
		t.Errorf("objective = %g, want 2 (integral)", s.Objective)
	}
}

func TestMixedIntegerReal(t *testing.T) {
	// max x + y, x integer <= 2.5 bound via constraint, y real.
	// x + y <= 3.7, x <= 2.5 => x=2 (int), y=1.7.
	p := New()
	x := p.AddInt("x", 0, Inf)
	y := p.AddReal("y", 0, Inf)
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.Add([]Term{{x, 1}}, LE, 2.5)
	p.Add([]Term{{x, 1}, {y, 1}}, LE, 3.7)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 3.7) {
		t.Errorf("objective = %g, want 3.7", s.Objective)
	}
	if s.Int("x") != 2 {
		t.Errorf("x = %d, want 2", s.Int("x"))
	}
	if !approx(s.Value("y"), 1.7) {
		t.Errorf("y = %g, want 1.7", s.Value("y"))
	}
}

func TestEqualityAndGE(t *testing.T) {
	// max z s.t. x + y + z = 10, x >= 3, y >= 4 => z = 3.
	p := New()
	x := p.AddInt("x", 0, Inf)
	y := p.AddInt("y", 0, Inf)
	z := p.AddInt("z", 0, Inf)
	p.SetObjective(z, 1)
	p.Add([]Term{{x, 1}, {y, 1}, {z, 1}}, EQ, 10)
	p.Add([]Term{{x, 1}}, GE, 3)
	p.Add([]Term{{y, 1}}, GE, 4)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Int("z") != 3 {
		t.Errorf("z = %d, want 3", s.Int("z"))
	}
}

func TestInfeasible(t *testing.T) {
	p := New()
	x := p.AddInt("x", 0, 5)
	p.Add([]Term{{x, 1}}, GE, 10)
	if _, err := p.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 2x = 1 has the LP solution x=0.5 but no integer solution.
	p := New()
	x := p.AddInt("x", 0, 10)
	p.SetObjective(x, 1)
	p.Add([]Term{{x, 2}}, EQ, 1)
	if _, err := p.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := New()
	x := p.AddInt("x", 0, Inf)
	p.SetObjective(x, 1)
	if _, err := p.Solve(Options{}); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing several nodes with MaxNodes=1 must error.
	p := New()
	x := p.AddInt("x", 0, Inf)
	y := p.AddInt("y", 0, Inf)
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.Add([]Term{{x, 2}, {y, 2}}, LE, 5)
	if _, err := p.Solve(Options{MaxNodes: 1}); !errors.Is(err, ErrNodeLimit) {
		t.Errorf("err = %v, want ErrNodeLimit", err)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty name":   func() { New().AddInt("", 0, 1) },
		"dup name":     func() { p := New(); p.AddInt("a", 0, 1); p.AddInt("a", 0, 1) },
		"empty bounds": func() { New().AddInt("a", 5, 2) },
		"unknown value": func() {
			p := New()
			p.AddInt("a", 0, 1)
			s, _ := p.Solve(Options{})
			s.Value("b")
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVarName(t *testing.T) {
	p := New()
	v := p.AddInt("count", 0, 1)
	if v.Name() != "count" {
		t.Errorf("Name = %q", v.Name())
	}
	if p.NumVars() != 1 {
		t.Errorf("NumVars = %d", p.NumVars())
	}
}

func TestFixedVariables(t *testing.T) {
	p := New()
	x := p.AddInt("x", 7, 7)
	y := p.AddInt("y", 0, Inf)
	p.SetObjective(y, 1)
	p.Add([]Term{{x, 1}, {y, 1}}, LE, 10)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Int("x") != 7 || s.Int("y") != 3 {
		t.Errorf("x=%d y=%d, want 7, 3", s.Int("x"), s.Int("y"))
	}
}

// Property: for max x s.t. x <= b (real b), the ILP answer is floor(b).
func TestFloorProperty(t *testing.T) {
	f := func(raw uint16) bool {
		b := float64(raw%1000) / 7.0
		p := New()
		x := p.AddInt("x", 0, Inf)
		p.SetObjective(x, 1)
		p.Add([]Term{{x, 1}}, LE, b)
		s, err := p.Solve(Options{})
		return err == nil && s.Int("x") == int64(math.Floor(b+1e-9))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the ILP optimum never exceeds the LP relaxation optimum and the
// solution satisfies all constraints.
func TestRelaxationDominanceProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rnd := seed
		next := func(mod uint32) float64 {
			rnd = rnd*1664525 + 1013904223
			return float64(rnd % mod)
		}
		p := New()
		vars := make([]Var, 3)
		objs := make([]float64, 3)
		for i := range vars {
			vars[i] = p.AddInt(string(rune('a'+i)), 0, Inf)
			objs[i] = next(5) + 1
			p.SetObjective(vars[i], objs[i])
		}
		type con struct {
			coeffs []float64
			rhs    float64
		}
		var cons []con
		for i := 0; i < 2; i++ {
			coeffs := []float64{next(4) + 1, next(4) + 1, next(4) + 1}
			rhs := next(50)
			p.Add([]Term{{vars[0], coeffs[0]}, {vars[1], coeffs[1]}, {vars[2], coeffs[2]}}, LE, rhs)
			cons = append(cons, con{coeffs, rhs})
		}
		s, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		// Feasibility.
		for _, c := range cons {
			var lhs float64
			for i, v := range vars {
				lhs += c.coeffs[i] * s.Value(v.Name())
			}
			if lhs > c.rhs+1e-6 {
				return false
			}
		}
		// Integrality.
		for _, v := range vars {
			x := s.Value(v.Name())
			if math.Abs(x-math.Round(x)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
