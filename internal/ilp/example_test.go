package ilp_test

import (
	"fmt"

	"repro/internal/ilp"
)

// Example solves a small knapsack: maximize 10a + 6b + 4c subject to
// a + b + c <= 10 and 5a + 4b + 3c <= 36, all variables integer.
func Example() {
	p := ilp.New()
	a := p.AddInt("a", 0, ilp.Inf)
	b := p.AddInt("b", 0, ilp.Inf)
	c := p.AddInt("c", 0, ilp.Inf)
	p.SetObjective(a, 10)
	p.SetObjective(b, 6)
	p.SetObjective(c, 4)
	p.Add([]ilp.Term{{a, 1}, {b, 1}, {c, 1}}, ilp.LE, 10)
	p.Add([]ilp.Term{{a, 5}, {b, 4}, {c, 3}}, ilp.LE, 36)

	sol, err := p.Solve(ilp.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("objective=%.0f a=%d b=%d c=%d\n",
		sol.Objective, sol.Int("a"), sol.Int("b"), sol.Int("c"))
	// Output:
	// objective=70 a=7 b=0 c=0
}

// ExampleProblem_Reset rebuilds a pooled Problem in place: Reset keeps all
// allocated capacity (variable storage, the term arena, the relaxation
// scratch), so estimate loops — the contention models pool their builders
// exactly this way — add no steady-state allocation per solve. Handles
// returned by AddInt index the *current* build, so hot paths read results
// with IntOf instead of name lookups.
func ExampleProblem_Reset() {
	p := ilp.New()
	for budget := int64(4); budget <= 6; budget++ {
		p.Reset()
		x := p.AddInt("x", 0, 10)
		y := p.AddInt("y", 0, 10)
		p.SetObjective(x, 3)
		p.SetObjective(y, 2)
		p.Add([]ilp.Term{{x, 2}, {y, 1}}, ilp.LE, float64(budget))

		sol, err := p.Solve(ilp.Options{})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("budget=%d objective=%.0f x=%d y=%d\n",
			budget, sol.Objective, sol.IntOf(x), sol.IntOf(y))
	}
	// Output:
	// budget=4 objective=8 x=0 y=4
	// budget=5 objective=10 x=0 y=5
	// budget=6 objective=12 x=0 y=6
}
