package ilp

import (
	"errors"
	"math"
	"testing"
)

// bruteForceOpt enumerates every integer point of a box and returns the
// best feasible objective together with how many points attain it (the
// determinism tests need to know whether the optimum is unique before
// they may assert full-vector equality across worker counts).
func bruteForceOpt(obj []float64, hi []int, cons []bfConstraint) (best float64, count int) {
	n := len(obj)
	point := make([]int, n)
	best = math.Inf(-1)
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			for _, c := range cons {
				var lhs float64
				for j, x := range point {
					lhs += c.coeffs[j] * float64(x)
				}
				switch c.sense {
				case LE:
					if lhs > c.rhs+1e-9 {
						return
					}
				case GE:
					if lhs < c.rhs-1e-9 {
						return
					}
				case EQ:
					if math.Abs(lhs-c.rhs) > 1e-9 {
						return
					}
				}
			}
			var v float64
			for j, x := range point {
				v += obj[j] * float64(x)
			}
			switch {
			case v > best+1e-9:
				best, count = v, 1
			case v > best-1e-9:
				count++
			}
			return
		}
		for x := 0; x <= hi[i]; x++ {
			point[i] = x
			walk(i + 1)
		}
	}
	walk(0)
	return best, count
}

// solveAt runs one fuzz instance at the given worker count. A fresh
// Problem is built per call: Solve mutates the relaxation in place, so
// sharing one Problem across runs would be a use the API does not promise.
func solveAt(obj []float64, hi []int, cons []bfConstraint, o Options) (Solution, []float64, error) {
	p := New()
	n := len(obj)
	vars := make([]Var, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddInt(string(rune('a'+j)), 0, float64(hi[j]))
		p.SetObjective(vars[j], obj[j])
	}
	for _, c := range cons {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{vars[j], c.coeffs[j]}
		}
		p.Add(terms, c.sense, c.rhs)
	}
	sol, err := p.Solve(o)
	if err != nil {
		return Solution{}, nil, err
	}
	xs := make([]float64, n)
	for j, v := range vars {
		xs[j] = sol.ValueOf(v)
	}
	return sol, xs, nil
}

// TestParallelMatchesSequentialFuzz is the determinism property test of
// the parallel branch & bound: on ~100 random instances, Workers=1,
// Workers=2, and Workers=8 must agree on status, objective, and upper
// bound; when brute force proves the optimum unique they must return the
// identical solution vector; and the two parallel runs must return
// identical vectors even on ties (the lexicographic tie-break makes the
// completed parallel search schedule-independent). MinParallelNodes=1
// forces the parallel phase to actually run instead of every small tree
// closing inside the sequential prefix.
func TestParallelMatchesSequentialFuzz(t *testing.T) {
	rnd := uint32(0xD15EED)
	next := func(mod uint32) int {
		rnd = rnd*1664525 + 1013904223
		return int(rnd % mod)
	}
	configs := []Options{
		{},
		{Workers: 2, MinParallelNodes: 1},
		{Workers: 8, MinParallelNodes: 1},
	}
	feasible, unique := 0, 0
	for trial := 0; trial < 100; trial++ {
		n := 2 + next(3) // 2-4 vars
		hi := make([]int, n)
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			hi[j] = 2 + next(4)
			obj[j] = float64(next(7)) - 2
		}
		nCons := 1 + next(3)
		var cons []bfConstraint
		for k := 0; k < nCons; k++ {
			c := bfConstraint{coeffs: make([]float64, n)}
			for j := 0; j < n; j++ {
				c.coeffs[j] = float64(next(5)) - 1
			}
			switch next(3) {
			case 0:
				c.sense = LE
				c.rhs = float64(next(15))
			case 1:
				c.sense = GE
				c.rhs = float64(next(6))
			default:
				c.sense = EQ
				c.rhs = float64(next(8))
			}
			cons = append(cons, c)
		}

		want, optima := bruteForceOpt(obj, hi, cons)

		sols := make([]Solution, len(configs))
		vecs := make([][]float64, len(configs))
		errs := make([]error, len(configs))
		for i, o := range configs {
			sols[i], vecs[i], errs[i] = solveAt(obj, hi, cons, o)
		}

		if math.IsInf(want, -1) {
			for i := range configs {
				if !errors.Is(errs[i], ErrInfeasible) {
					t.Fatalf("trial %d workers=%d: want ErrInfeasible, got %v",
						trial, configs[i].Workers, errs[i])
				}
			}
			continue
		}
		feasible++
		for i := range configs {
			if errs[i] != nil {
				t.Fatalf("trial %d workers=%d: unexpected error %v", trial, configs[i].Workers, errs[i])
			}
			if math.Abs(sols[i].Objective-want) > 1e-6 {
				t.Fatalf("trial %d workers=%d: objective %g, brute force %g\nobj=%v hi=%v cons=%+v",
					trial, configs[i].Workers, sols[i].Objective, want, obj, hi, cons)
			}
			if math.Abs(sols[i].UpperBound-sols[0].UpperBound) > 1e-6 {
				t.Fatalf("trial %d workers=%d: upper bound %g, sequential %g",
					trial, configs[i].Workers, sols[i].UpperBound, sols[0].UpperBound)
			}
		}
		// Workers=2 and Workers=8 completed the same lexicographic
		// search: vectors must match exactly, ties or not.
		for j := range vecs[1] {
			if vecs[1][j] != vecs[2][j] {
				t.Fatalf("trial %d: workers=2 and workers=8 vectors differ at %d: %v vs %v\nobj=%v hi=%v cons=%+v",
					trial, j, vecs[1], vecs[2], obj, hi, cons)
			}
		}
		if optima == 1 {
			unique++
			// A unique optimum pins the vector for every worker count.
			for i := 1; i < len(configs); i++ {
				for j := range vecs[i] {
					if vecs[0][j] != vecs[i][j] {
						t.Fatalf("trial %d workers=%d: unique optimum but vector differs at %d: %v vs %v",
							trial, configs[i].Workers, j, vecs[0], vecs[i])
					}
				}
			}
		}
	}
	if feasible < 30 || unique < 10 {
		t.Fatalf("generator drift: only %d feasible / %d unique-optimum trials", feasible, unique)
	}
}

// plateauProblem builds a deliberately symmetric instance — maximize
// sum(x) under sum(2x) <= 2k+1 — whose optimum k is attained by many
// vectors, so the search tree is a plateau far wider than any sequential
// prefix. It is the worst case for schedule-dependent tie-breaking.
func plateauProblem(n, k int) (*Problem, []Var) {
	p := New()
	vars := make([]Var, n)
	terms := make([]Term, n)
	for j := range vars {
		vars[j] = p.AddInt(string(rune('a'+j)), 0, float64(k))
		p.SetObjective(vars[j], 1)
		terms[j] = Term{vars[j], 2}
	}
	p.Add(terms, LE, float64(2*k+1))
	return p, vars
}

// TestParallelPlateauDeterministic forces the parallel phase onto a wide
// equal-objective plateau and asserts run-to-run and cross-worker-count
// determinism of the complete (Gap=0) search: identical objective, upper
// bound, and solution vector for Workers=2, 4, 8, across repeated runs.
func TestParallelPlateauDeterministic(t *testing.T) {
	const n, k = 6, 7
	solve := func(o Options) (Solution, []float64) {
		p, vars := plateauProblem(n, k)
		sol, err := p.Solve(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", o.Workers, err)
		}
		xs := make([]float64, len(vars))
		for j, v := range vars {
			xs[j] = sol.ValueOf(v)
		}
		return sol, xs
	}

	seq, _ := solve(Options{})
	if seq.Objective != float64(k) {
		t.Fatalf("sequential objective %g, want %d", seq.Objective, k)
	}
	var ref []float64
	for run := 0; run < 3; run++ {
		for _, workers := range []int{2, 4, 8} {
			sol, xs := solve(Options{Workers: workers, MinParallelNodes: 1})
			if sol.Objective != seq.Objective || sol.UpperBound != seq.UpperBound {
				t.Fatalf("workers=%d run %d: obj/ub %g/%g, sequential %g/%g",
					workers, run, sol.Objective, sol.UpperBound, seq.Objective, seq.UpperBound)
			}
			if ref == nil {
				ref = xs
				continue
			}
			for j := range xs {
				if xs[j] != ref[j] {
					t.Fatalf("workers=%d run %d: vector differs at %d: %v vs %v", workers, run, j, xs, ref)
				}
			}
		}
	}
}

// TestParallelGapUpperBound: a gap-stopped parallel search is an anytime
// stop, but its proved bound must stay sound and schedule-independent —
// floor(rootBound) for integral objectives, the same value the sequential
// search reports when its open frontier still touches the root bound.
func TestParallelGapUpperBound(t *testing.T) {
	const n, k = 6, 7
	for _, workers := range []int{1, 2, 8} {
		p, _ := plateauProblem(n, k)
		sol, err := p.Solve(Options{Gap: 1, Workers: workers, MinParallelNodes: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sol.Objective != float64(k) {
			t.Fatalf("workers=%d: objective %g, want %d", workers, sol.Objective, k)
		}
		// Root LP bound is k+0.5; the floored proof is exactly k.
		if sol.UpperBound != float64(k) {
			t.Fatalf("workers=%d: upper bound %g, want %d", workers, sol.UpperBound, k)
		}
	}
}

// TestParallelSmallTreePrefixIdentity: with the default heuristic a small
// tree closes inside the sequential prefix, so Workers=8 must reproduce
// the Workers=1 result bit for bit — including the incumbent vector, even
// though the instance has equal-objective ties the two search modes could
// otherwise resolve differently.
func TestParallelSmallTreePrefixIdentity(t *testing.T) {
	build := func() (*Problem, []Var) {
		p := New()
		x := p.AddInt("x", 0, 3)
		y := p.AddInt("y", 0, 3)
		z := p.AddInt("z", 0, 3)
		for _, v := range []Var{x, y, z} {
			p.SetObjective(v, 1)
		}
		p.Add([]Term{{x, 2}, {y, 2}, {z, 2}}, LE, 7)
		return p, []Var{x, y, z}
	}
	p1, vars1 := build()
	s1, err := p1.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	p8, vars8 := build()
	s8, err := p8.Solve(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Objective != s8.Objective || s1.UpperBound != s8.UpperBound || s1.Nodes != s8.Nodes {
		t.Fatalf("prefix identity broken: obj/ub/nodes %g/%g/%d vs %g/%g/%d",
			s1.Objective, s1.UpperBound, s1.Nodes, s8.Objective, s8.UpperBound, s8.Nodes)
	}
	for j := range vars1 {
		if s1.ValueOf(vars1[j]) != s8.ValueOf(vars8[j]) {
			t.Fatalf("prefix identity broken at var %d: %g vs %g",
				j, s1.ValueOf(vars1[j]), s8.ValueOf(vars8[j]))
		}
	}
}

// TestParallelErrors: failure modes must be worker-count independent.
func TestParallelErrors(t *testing.T) {
	// Infeasible: x >= 5 with x <= 3.
	p := New()
	x := p.AddInt("x", 0, 3)
	p.SetObjective(x, 1)
	p.Add([]Term{{x, 1}}, GE, 5)
	if _, err := p.Solve(Options{Workers: 8, MinParallelNodes: 1}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}

	// Node limit: the plateau cannot close in 4 nodes.
	p2, _ := plateauProblem(6, 7)
	if _, err := p2.Solve(Options{Workers: 8, MinParallelNodes: 1, MaxNodes: 4}); !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("want ErrNodeLimit, got %v", err)
	}

	// Unbounded at the root is caught in the prefix regardless of workers.
	p3 := New()
	y := p3.AddInt("y", 0, Inf)
	p3.SetObjective(y, 1)
	if _, err := p3.Solve(Options{Workers: 8, MinParallelNodes: 1}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}
