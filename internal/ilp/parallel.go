// Parallel branch & bound: the second phase of a Workers>1 Solve, entered
// only when the exact sequential prefix (see search.run) expired with the
// tree still open. The open frontier is fanned out across a pool of
// workers, each owning its own lp.Solver tableau arena, its own copy of
// the LP relaxation (node solves rewrite the LP's bounds in place), and
// its own node freelists. Work is distributed by work stealing: a worker
// pushes children onto its local queue and takes from it LIFO (keeping
// its dive locality), and an idle worker steals the oldest — largest —
// queued subtree from a victim.
//
// # Determinism contract
//
// The phase is designed so the Solution does not depend on how the OS
// schedules the workers:
//
//   - Every node relaxation is solved cold (lp.Solver.SolveCold), making
//     each node's LP vertex a pure function of the node's bounds. Warm
//     starts would make vertices depend on what the worker solved before
//     — on degenerate plateaus, a schedule-dependent choice among
//     equal-objective vertices.
//   - The shared incumbent is a lattice join, not a first-writer-wins
//     race: a candidate replaces the incumbent if its objective is
//     higher, or equal with a lexicographically smaller branch path.
//     Joins commute, so the final incumbent of a completed search is the
//     same whatever order candidates arrive in.
//   - Pruning is lexicographically guarded: a node whose bound ties the
//     incumbent is pruned only if its subtree provably cannot contain an
//     equal-objective leaf on a smaller branch path.
//
// A completed search (Gap == 0, no node limit) therefore returns the
// unique optimal leaf with the lexicographically smallest branch path —
// the same vector at Workers=8 as at Workers=2. A gap cutoff is an
// anytime stop: Status, UpperBound (floor(rootBound) for integral
// objectives) and hence every wire byte derived from the bound remain
// schedule-independent, but which gap-qualifying incumbent is reported is
// not guaranteed reproducible across runs.
package ilp

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
	"repro/internal/telemetry"
)

var (
	mBBWorkers = telemetry.Default().Gauge("solver_bb_workers",
		"Branch & bound workers used by the most recent ILP solve (1 = sequential).")
	mBBSteals = telemetry.Default().Counter("solver_bb_steals_total",
		"Branch & bound nodes taken from another worker's queue (work stealing).")
)

// solveParallel runs phase two over the prefix's open frontier and
// assembles the final Solution. s still holds the prefix's incumbent,
// root bound, node count, and open stack.
func (p *Problem) solveParallel(s *search, workers int, statsBase lp.SolveStats) (Solution, error) {
	mBBWorkers.Set(int64(workers))
	ps := &parSearch{
		p:           p,
		objIntegral: s.objIntegral,
		gap:         s.opts.Gap,
		rootBound:   s.rootBound,
		maxNodes:    int64(s.maxNodes),
		bestObj:     math.Inf(-1),
	}
	ps.cond = sync.NewCond(&ps.qmu)
	ps.bestBits.Store(math.Float64bits(math.Inf(-1)))
	if s.bestX != nil {
		ps.bestObj = s.bestObj
		ps.bestX = append([]float64(nil), s.bestX...)
		ps.bestPath = append([]byte(nil), s.bestPath...)
		ps.bestBits.Store(math.Float64bits(s.bestObj))
	}
	ps.nodes.Store(int64(s.nodes))
	// Seed the injector with the prefix's open frontier in stack order:
	// workers pop from the tail, so the dive frontier is taken first.
	ps.global = append(ps.global, s.stack...)
	s.stack = s.stack[:0]
	ps.pending.Store(int64(len(ps.global)))

	ps.workers = make([]*bbWorker, workers)
	for i := range ps.workers {
		w := &bbWorker{}
		if err := p.buildRelaxationInto(&w.rel); err != nil {
			// The root build just succeeded over the same immutable
			// problem, so this cannot fail; fail closed regardless.
			return Solution{}, err
		}
		ps.workers[i] = w
	}
	var wg sync.WaitGroup
	for i := range ps.workers {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ps.runWorker(wi)
		}(i)
	}
	wg.Wait()

	// Single-goroutine again: flush the workers' solver deltas into the
	// process counters (the Solve-level defer only covers the prefix
	// solver) and fold the totals back into the search state.
	var warm int64
	for _, w := range ps.workers {
		mWarmStarts.Add(w.stats.Warm)
		mWarmFallbacks.Add(w.stats.WarmFallbacks)
		mColdSolves.Add(w.stats.Cold)
		mPivots.Add(w.stats.Pivots)
		warm += w.stats.Warm
	}
	mBBSteals.Add(ps.steals.Load())
	s.nodes = int(ps.nodes.Load())

	if ps.err != nil {
		return Solution{}, ps.err
	}
	if ps.bestX == nil {
		return Solution{}, ErrInfeasible
	}
	for j := range ps.bestX {
		if p.integer[j] {
			ps.bestX[j] = math.Round(ps.bestX[j])
		}
	}
	names := make([]string, len(p.names))
	copy(names, p.names)
	best := Solution{
		Objective:  ps.bestObj,
		UpperBound: ps.bestObj,
		names:      names,
		xs:         ps.bestX,
		Nodes:      s.nodes,
		WarmStarts: int(s.solver.Stats().Warm-statsBase.Warm) + int(warm),
	}
	if ps.gapStopped.Load() {
		// Abandoned open nodes are all bounded by the root relaxation, so
		// the root bound is the (schedule-independent) proof we report.
		if ps.rootBound > best.UpperBound {
			best.UpperBound = ps.rootBound
		}
		if ps.objIntegral {
			best.UpperBound = math.Floor(best.UpperBound + intTol)
		}
	}
	return best, nil
}

// parSearch is the shared state of a parallel phase.
type parSearch struct {
	p           *Problem
	objIntegral bool
	gap         float64
	rootBound   float64
	maxNodes    int64

	nodes  atomic.Int64 // explored, prefix included
	steals atomic.Int64

	// The incumbent. bestBits mirrors the highest objective ever accepted
	// (as math.Float64bits) for lock-free bound pruning; the full
	// (obj, x, path) triple is joined under incMu.
	incMu    sync.Mutex
	bestObj  float64
	bestX    []float64
	bestPath []byte
	bestBits atomic.Uint64

	stopped    atomic.Bool
	gapStopped atomic.Bool
	errMu      sync.Mutex
	err        error // first failure; read without errMu only after workers join

	// Work distribution: a global injector seeded with the prefix
	// frontier, per-worker local queues, and a parked-worker count.
	// pending counts nodes that are queued or in flight — zero means the
	// tree is drained. Lock order: qmu before any bbWorker.mu.
	qmu     sync.Mutex
	cond    *sync.Cond
	global  []node
	idle    atomic.Int32
	pending atomic.Int64
	workers []*bbWorker
}

// bbWorker is one worker's private state plus its stealable queue.
type bbWorker struct {
	mu    sync.Mutex
	local []node

	rel   relaxation
	stats lp.SolveStats // solver deltas, published after the worker exits
	nodeArena
}

func (ps *parSearch) runWorker(wi int) {
	w := ps.workers[wi]
	solver := solverPool.Get().(*lp.Solver)
	mPoolGets.Inc()
	base := solver.Stats()
	defer func() {
		d := solver.Stats()
		w.stats = lp.SolveStats{
			Warm:          d.Warm - base.Warm,
			WarmFallbacks: d.WarmFallbacks - base.WarmFallbacks,
			Cold:          d.Cold - base.Cold,
			Pivots:        d.Pivots - base.Pivots,
		}
		solverPool.Put(solver)
	}()
	for {
		n, ok := ps.next(wi)
		if !ok {
			return
		}
		ps.process(w, solver, n)
		if ps.pending.Add(-1) == 0 {
			ps.wake() // tree drained: release parked workers
		}
	}
}

// next returns the worker's next node, or ok=false when the search is
// over (drained, stopped, or failed).
func (ps *parSearch) next(wi int) (node, bool) {
	w := ps.workers[wi]
	for {
		if ps.stopped.Load() {
			return node{}, false
		}
		// Own queue first, newest node: depth-first within a worker.
		w.mu.Lock()
		if k := len(w.local); k > 0 {
			n := w.local[k-1]
			w.local = w.local[:k-1]
			w.mu.Unlock()
			return n, true
		}
		w.mu.Unlock()
		ps.qmu.Lock()
		if n, ok := ps.takeSharedLocked(wi); ok {
			ps.qmu.Unlock()
			return n, true
		}
		if ps.pending.Load() == 0 {
			ps.qmu.Unlock()
			return node{}, false
		}
		// Nothing visible but work is still in flight: park. A producer
		// raises pending and publishes children before it reads idle, so
		// either the re-scan under qmu sees the new nodes or the
		// producer sees this worker parked and broadcasts.
		ps.idle.Add(1)
		for {
			if ps.stopped.Load() || ps.pending.Load() == 0 {
				break
			}
			if n, ok := ps.takeSharedLocked(wi); ok {
				ps.idle.Add(-1)
				ps.qmu.Unlock()
				return n, true
			}
			ps.cond.Wait()
		}
		ps.idle.Add(-1)
		ps.qmu.Unlock()
	}
}

// takeSharedLocked pops the injector or steals from a victim; the caller
// holds qmu.
func (ps *parSearch) takeSharedLocked(wi int) (node, bool) {
	if k := len(ps.global); k > 0 {
		n := ps.global[k-1]
		ps.global = ps.global[:k-1]
		return n, true
	}
	// Steal the OLDEST node from another worker — the one closest to the
	// root, i.e. the largest unexplored subtree, which keeps stolen work
	// coarse and steal frequency low.
	for i := 1; i < len(ps.workers); i++ {
		v := ps.workers[(wi+i)%len(ps.workers)]
		v.mu.Lock()
		if k := len(v.local); k > 0 {
			n := v.local[0]
			copy(v.local, v.local[1:])
			v.local = v.local[:k-1]
			v.mu.Unlock()
			ps.steals.Add(1)
			return n, true
		}
		v.mu.Unlock()
	}
	return node{}, false
}

func (ps *parSearch) wake() {
	ps.qmu.Lock()
	ps.cond.Broadcast()
	ps.qmu.Unlock()
}

func (ps *parSearch) fail(err error) {
	ps.errMu.Lock()
	if ps.err == nil {
		ps.err = err
	}
	ps.errMu.Unlock()
	ps.stopped.Store(true)
	ps.wake()
}

func (ps *parSearch) gapStop() {
	ps.gapStopped.Store(true)
	ps.stopped.Store(true)
	ps.wake()
}

// process explores one node: prune, solve its relaxation cold, then
// either join an integral incumbent or push its two children.
func (ps *parSearch) process(w *bbWorker, solver *lp.Solver, n node) {
	if ps.stopped.Load() {
		return
	}
	total := ps.nodes.Add(1)
	if total > ps.maxNodes {
		ps.nodes.Add(-1)
		ps.fail(fmt.Errorf("%w (%d nodes)", ErrNodeLimit, ps.maxNodes))
		return
	}
	if ps.pruned(n.bound, n.path) {
		w.recycle(n)
		return
	}
	status, obj, x, err := w.rel.solve(solver, ps.p, n, true)
	if err != nil {
		ps.fail(err)
		return
	}
	switch status {
	case lp.Infeasible:
		w.recycle(n)
		return
	case lp.Unbounded:
		// Bounds only tighten below the root, whose relaxation was
		// bounded; unreachable, but fail closed.
		ps.fail(ErrUnbounded)
		return
	}
	if ps.pruned(obj, n.path) {
		w.recycle(n)
		return
	}

	// Most fractional variable, as in the sequential search.
	branch := -1
	worst := intTol
	for j, xj := range x {
		if !ps.p.integer[j] {
			continue
		}
		frac := math.Abs(xj - math.Round(xj))
		if frac > worst {
			worst = frac
			branch = j
		}
	}
	if branch < 0 {
		ps.offer(obj, x, n.path)
		w.recycle(n)
		return
	}

	xb := x[branch]
	up := node{lower: w.cloneOf(n.lower), upper: w.cloneOf(n.upper), bound: obj}
	up.lower[branch] = math.Ceil(xb)
	down := node{lower: w.cloneOf(n.lower), upper: w.cloneOf(n.upper), bound: obj}
	down.upper[branch] = math.Floor(xb)
	first, second := down, up // nearest child goes second (popped first)
	if xb-math.Floor(xb) > 0.5 {
		first, second = up, down
	}
	second.path = w.childPath(n.path, 0)
	first.path = w.childPath(n.path, 1)
	w.recycle(n)
	var push [2]node
	k := 0
	if first.lower[branch] <= first.upper[branch] {
		push[k] = first
		k++
	} else {
		w.recycle(first)
	}
	if second.lower[branch] <= second.upper[branch] {
		push[k] = second
		k++
	} else {
		w.recycle(second)
	}
	if k == 0 {
		return
	}
	// Raise pending before the nodes become stealable, so a thief
	// finishing one cannot drive pending to zero while its sibling or
	// parent is still live.
	ps.pending.Add(int64(k))
	w.mu.Lock()
	w.local = append(w.local, push[:k]...)
	w.mu.Unlock()
	if ps.idle.Load() > 0 {
		ps.wake()
	}
}

// pruned decides whether a node with the given relaxation bound (or
// parent bound) and branch path can be discarded.
func (ps *parSearch) pruned(bound float64, path []byte) bool {
	best := math.Float64frombits(ps.bestBits.Load())
	if math.IsInf(best, -1) {
		return false
	}
	b := bound
	if ps.objIntegral {
		b = math.Floor(bound + intTol)
	}
	if b > best+intTol {
		return false // can strictly improve
	}
	if b < best-intTol {
		return true // strictly dominated
	}
	// Tied with the incumbent: the subtree still matters only if it can
	// hold an equal-objective leaf on a lexicographically smaller branch
	// path — the deterministic tie-break winner.
	ps.incMu.Lock()
	defer ps.incMu.Unlock()
	if ps.bestX == nil {
		return false
	}
	return !lexBelowPrefix(path, ps.bestPath)
}

// offer joins an integral candidate into the shared incumbent: higher
// objective wins; an equal objective wins only on a lexicographically
// smaller branch path. Joins commute, so arrival order cannot change the
// final incumbent of a completed search.
func (ps *parSearch) offer(obj float64, x []float64, path []byte) {
	ps.incMu.Lock()
	replace := false
	if ps.bestX == nil || obj > ps.bestObj+intTol {
		replace = true
	} else if obj >= ps.bestObj-intTol && bytes.Compare(path, ps.bestPath) < 0 {
		replace = true
	}
	if replace {
		ps.bestObj = obj
		ps.bestX = append(ps.bestX[:0], x...)
		ps.bestPath = append(ps.bestPath[:0], path...)
		// bestBits only ratchets upward: pruning keeps the strongest
		// objective ever seen even when the tie-break retains a
		// within-tolerance lower one.
		for {
			old := ps.bestBits.Load()
			if math.Float64frombits(old) >= obj {
				break
			}
			if ps.bestBits.CompareAndSwap(old, math.Float64bits(obj)) {
				break
			}
		}
	}
	stop := ps.gap > 0 && ps.bestX != nil && ps.rootBound-ps.bestObj <= ps.gap
	ps.incMu.Unlock()
	if stop {
		ps.gapStop()
	}
}

// lexBelowPrefix reports whether some leaf extending the branch path
// prefix could be lexicographically smaller than the given leaf path.
// Returning true (explore) is always sound; false must be certain.
func lexBelowPrefix(prefix, leaf []byte) bool {
	m := len(prefix)
	if len(leaf) < m {
		m = len(leaf)
	}
	for i := 0; i < m; i++ {
		if prefix[i] < leaf[i] {
			return true // every leaf under prefix is smaller
		}
		if prefix[i] > leaf[i] {
			return false // every leaf under prefix is larger
		}
	}
	// prefix matches leaf on the shared length. Shorter prefix: its
	// subtree contains leaf's lex-predecessor region. Equal or longer:
	// in a canonical tree a leaf cannot prefix another node's path, so
	// this is the incumbent node itself (or unreachable) — no
	// improvement possible.
	return len(prefix) < len(leaf)
}
