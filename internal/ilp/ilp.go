// Package ilp solves small integer linear programs by branch & bound over
// the LP relaxation (package lp). It exists because the paper formulates
// the ILP-PTAC contention model as an integer program over per-target
// access counts; the instances it generates have a couple of dozen
// variables and integral data, well inside what an exact branch & bound
// handles instantly.
//
// Variables carry names so the contention model can be inspected and
// debugged symbolically; Solution.Value looks results up by name.
package ilp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// Inf is the canonical "no upper bound" value.
var Inf = lp.Inf

// Sense re-exports the constraint directions.
type Sense = lp.Sense

// Constraint senses.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Term is one named coefficient in a linear expression.
type Term struct {
	Var   Var
	Coeff float64
}

// Var is a handle to a problem variable.
type Var struct {
	idx  int
	name string
}

// Name returns the variable's name.
func (v Var) Name() string { return v.name }

// Problem is an integer program: maximize the objective subject to linear
// constraints, with every variable integer. Build with New.
type Problem struct {
	names   []string
	byName  map[string]int
	lower   []float64
	upper   []float64
	obj     []float64
	cons    []savedCons
	integer []bool
}

type savedCons struct {
	terms []lp.Term
	sense Sense
	rhs   float64
}

// New returns an empty maximization problem.
func New() *Problem {
	return &Problem{byName: make(map[string]int)}
}

// AddInt adds an integer variable with inclusive bounds [lo, hi] (hi may be
// Inf) and zero objective coefficient. Names must be unique and non-empty.
func (p *Problem) AddInt(name string, lo, hi float64) Var {
	return p.add(name, lo, hi, true)
}

// AddReal adds a continuous variable (useful for LP-relaxation ablations).
func (p *Problem) AddReal(name string, lo, hi float64) Var {
	return p.add(name, lo, hi, false)
}

func (p *Problem) add(name string, lo, hi float64, integer bool) Var {
	if name == "" {
		panic("ilp: empty variable name")
	}
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("ilp: duplicate variable %q", name))
	}
	if lo > hi {
		panic(fmt.Sprintf("ilp: variable %q has empty bounds [%g, %g]", name, lo, hi))
	}
	idx := len(p.names)
	p.names = append(p.names, name)
	p.byName[name] = idx
	p.lower = append(p.lower, lo)
	p.upper = append(p.upper, hi)
	p.obj = append(p.obj, 0)
	p.integer = append(p.integer, integer)
	return Var{idx: idx, name: name}
}

// SetObjective sets the coefficient of v in the maximized objective.
func (p *Problem) SetObjective(v Var, coeff float64) {
	p.obj[v.idx] = coeff
}

// Add appends the constraint sum(terms) sense rhs.
func (p *Problem) Add(terms []Term, sense Sense, rhs float64) {
	ts := make([]lp.Term, len(terms))
	for i, t := range terms {
		ts[i] = lp.Term{Var: t.Var.idx, Coeff: t.Coeff}
	}
	p.cons = append(p.cons, savedCons{terms: ts, sense: sense, rhs: rhs})
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.names) }

// Solution is the best integer assignment found, together with a proved
// upper bound on the optimum.
type Solution struct {
	// Objective is the incumbent's objective value.
	Objective float64
	// UpperBound is a proved bound on the true optimum: no integer
	// assignment can exceed it. When the search ran to completion it
	// equals Objective; under a Gap or node cutoff it may be larger by at
	// most the configured gap. Consumers needing a *sound over-
	// approximation* (such as WCET contention bounds) must read
	// UpperBound, not Objective.
	UpperBound float64
	values     map[string]float64
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
}

// Value returns the value of the named variable, panicking on unknown
// names (a misspelled name in model code is a bug, not a runtime
// condition).
func (s Solution) Value(name string) float64 {
	v, ok := s.values[name]
	if !ok {
		panic(fmt.Sprintf("ilp: no variable %q in solution", name))
	}
	return v
}

// Int returns the named value rounded to the nearest integer.
func (s Solution) Int(name string) int64 {
	return int64(math.Round(s.Value(name)))
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("ilp: problem is infeasible")
	ErrUnbounded  = errors.New("ilp: problem is unbounded")
	ErrNodeLimit  = errors.New("ilp: branch & bound node limit exceeded")
)

// Options tunes Solve.
type Options struct {
	// MaxNodes bounds the branch & bound tree; 0 means the default (1e6).
	MaxNodes int
	// Gap, when positive, lets the search stop once the proved optimality
	// gap (UpperBound - Objective) is at most Gap. Large symmetric
	// instances — many equal-cost integer splits of the same budget —
	// have plateaus that exact search must enumerate; a gap of one
	// request latency collapses them while UpperBound stays sound.
	Gap float64
}

const defaultMaxNodes = 1_000_000

// intTol is the integrality tolerance: relaxation values this close to an
// integer are accepted as integral.
const intTol = 1e-6

type node struct {
	lower, upper []float64
	// bound is the parent relaxation objective, used for best-first
	// ordering and pruning.
	bound float64
}

// Solve maximizes the problem over integer assignments.
func (p *Problem) Solve(opts Options) (Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}

	// When every objective coefficient is integral and every variable
	// with a non-zero coefficient is integer, all integer-feasible
	// objective values are integers, so a node whose relaxation bound
	// rounds down to the incumbent value cannot improve on it. This
	// integral pruning is what keeps the large-count contention ILPs
	// (tens of thousands of requests) at a handful of nodes.
	objIntegral := true
	for j, c := range p.obj {
		if c != math.Trunc(c) || (c != 0 && !p.integer[j]) {
			objIntegral = false
			break
		}
	}
	dominated := func(bound, incumbent float64) bool {
		if math.IsInf(incumbent, -1) {
			return false
		}
		if objIntegral {
			return math.Floor(bound+intTol) <= incumbent+intTol
		}
		return bound <= incumbent+intTol
	}

	root := node{lower: append([]float64(nil), p.lower...), upper: append([]float64(nil), p.upper...), bound: math.Inf(1)}
	stack := []node{root}
	var best *Solution
	bestObj := math.Inf(-1)
	rootBound := math.Inf(1)
	nodes := 0

	// openBound is the largest relaxation bound among unexplored nodes —
	// the current proof of what the optimum cannot exceed.
	openBound := func() float64 {
		ub := math.Inf(-1)
		for _, n := range stack {
			if n.bound > ub {
				ub = n.bound
			}
		}
		if !math.IsInf(rootBound, 1) && rootBound < ub {
			ub = rootBound
		}
		return ub
	}

	for len(stack) > 0 {
		if nodes >= maxNodes {
			return Solution{}, fmt.Errorf("%w (%d nodes)", ErrNodeLimit, nodes)
		}
		nodes++
		// Depth-first: take the most recent node.
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if dominated(n.bound, bestObj) {
			continue // parent bound already dominated
		}

		sol, err := p.solveRelaxation(n)
		if err != nil {
			return Solution{}, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the ILP is
			// unbounded (with integral data there is an integer ray).
			return Solution{}, ErrUnbounded
		}
		if nodes == 1 {
			rootBound = sol.Objective
		}
		if dominated(sol.Objective, bestObj) {
			continue
		}

		// Find the most fractional variable.
		branch := -1
		worst := intTol
		for j, x := range sol.X {
			if !p.integer[j] {
				continue
			}
			frac := math.Abs(x - math.Round(x))
			if frac > worst {
				worst = frac
				branch = j
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			vals := make(map[string]float64, len(p.names))
			for j, name := range p.names {
				x := sol.X[j]
				if p.integer[j] {
					x = math.Round(x)
				}
				vals[name] = x
			}
			bestObj = sol.Objective
			best = &Solution{Objective: sol.Objective, values: vals}
			// With an integral objective, an incumbent matching the
			// floored root relaxation bound is provably optimal — stop
			// without draining the plateau of equal-bound nodes.
			if objIntegral && bestObj >= math.Floor(rootBound+intTol)-intTol {
				break
			}
			// Gap cutoff: good enough per the caller's tolerance.
			if opts.Gap > 0 && openBound()-bestObj <= opts.Gap {
				break
			}
			continue
		}

		// Branch on x_branch <= floor and x_branch >= ceil, diving into
		// the child nearest the relaxation optimum first (it is pushed
		// last): following the LP solution finds a strong incumbent in a
		// handful of dives even on large symmetric instances.
		x := sol.X[branch]
		up := node{lower: append([]float64(nil), n.lower...), upper: append([]float64(nil), n.upper...), bound: sol.Objective}
		up.lower[branch] = math.Ceil(x)
		down := node{lower: append([]float64(nil), n.lower...), upper: append([]float64(nil), n.upper...), bound: sol.Objective}
		down.upper[branch] = math.Floor(x)
		first, second := down, up // nearest child goes second (popped first)
		if x-math.Floor(x) > 0.5 {
			first, second = up, down
		}
		if first.lower[branch] <= first.upper[branch] {
			stack = append(stack, first)
		}
		if second.lower[branch] <= second.upper[branch] {
			stack = append(stack, second)
		}
	}

	if best == nil {
		return Solution{}, ErrInfeasible
	}
	best.Nodes = nodes
	best.UpperBound = bestObj
	if len(stack) > 0 {
		if ub := openBound(); ub > bestObj {
			best.UpperBound = ub
		}
		if objIntegral {
			best.UpperBound = math.Floor(best.UpperBound + intTol)
		}
	}
	return *best, nil
}

func (p *Problem) solveRelaxation(n node) (lp.Solution, error) {
	rp := lp.NewProblem()
	for j := range p.names {
		rp.AddVar(n.lower[j], n.upper[j], p.obj[j])
	}
	for _, c := range p.cons {
		rp.AddConstraint(c.terms, c.sense, c.rhs)
	}
	return lp.Solve(rp)
}
