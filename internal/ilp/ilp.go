// Package ilp solves small integer linear programs by branch & bound over
// the LP relaxation (package lp). It exists because the paper formulates
// the ILP-PTAC contention model as an integer program over per-target
// access counts; the instances it generates have a couple of dozen
// variables and integral data, well inside what an exact branch & bound
// handles instantly.
//
// Variables carry names so the contention model can be inspected and
// debugged symbolically; Solution.Value looks results up by name. During
// the search itself everything is index-based: incumbents are stored as
// dense vectors and names are attached exactly once, to the final
// solution, so no per-node map or lookup allocation happens on the branch
// & bound hot path (use Solution.ValueOf/IntOf to read results
// index-directly).
//
// # Solver reuse and warm starts
//
// Each Solve builds one lp.Problem for the whole branch & bound tree and
// adjusts only variable bounds per node (lp.Problem.SetBounds), which is
// precisely the mutation shape lp.Solver warm-starts: a child node's
// relaxation resumes from its parent's optimal basis via the dual simplex
// instead of re-solving from scratch. Solvers are drawn from a package
// pool, so their tableau arenas amortize across Solve calls (and across
// requests, when callers like the wcetd batch handler fan out many
// analyses). Fixed variables — lower bound equal to upper bound at the
// root, as produced by dominated-template pre-pruning in the contention
// models — are substituted out before the LP is built and never reach the
// solver; constraints left with no free variables are feasibility-checked
// once and dropped.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/lp"
	"repro/internal/telemetry"
)

// Process-wide solver telemetry, flushed once per Solve (never per pivot
// or per node — lp.Solver accumulates locally and the deltas land here),
// so the hot path pays a handful of atomic adds per ILP, not per
// operation. Registered on the telemetry default registry and exposed by
// wcetd's GET /metrics.
var (
	mWarmStarts = telemetry.Default().Counter("solver_warm_starts_total",
		"LP solves served by the warm-start dual simplex path.")
	mWarmFallbacks = telemetry.Default().Counter("solver_warm_fallbacks_total",
		"Warm-start attempts that hit a late structural mismatch and rebuilt cold.")
	mColdSolves = telemetry.Default().Counter("solver_cold_solves_total",
		"LP solves built from scratch (including warm fallbacks).")
	mPivots = telemetry.Default().Counter("solver_pivots_total",
		"Simplex pivots across all phases and solves.")
	mBBNodes = telemetry.Default().Counter("solver_bb_nodes_total",
		"Branch & bound nodes explored.")
	mILPSolves = telemetry.Default().Counter("solver_ilp_solves_total",
		"ILP Solve calls.")
	mPoolGets = telemetry.Default().Counter("solver_pool_gets_total",
		"lp.Solver checkouts from the package pool.")
	mPoolNews = telemetry.Default().Counter("solver_pool_news_total",
		"lp.Solvers constructed because the pool was empty (gets minus news = arena reuses).")
)

// Inf is the canonical "no upper bound" value.
var Inf = lp.Inf

// Sense re-exports the constraint directions.
type Sense = lp.Sense

// Constraint senses.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Term is one named coefficient in a linear expression.
type Term struct {
	Var   Var
	Coeff float64
}

// Var is a handle to a problem variable.
type Var struct {
	idx  int
	name string
}

// Name returns the variable's name.
func (v Var) Name() string { return v.name }

// Problem is an integer program: maximize the objective subject to linear
// constraints, with every variable integer. Build with New.
type Problem struct {
	names   []string
	byName  map[string]int
	lower   []float64
	upper   []float64
	obj     []float64
	cons    []savedCons
	integer []bool
	// termArena backs every constraint's term slice (see lp.Problem for
	// the aliasing discipline); rel is the relaxation rebuilt in place by
	// each Solve. Both survive Reset so a pooled Problem rebuilds its
	// model with no steady-state allocation.
	termArena []lp.Term
	rel       relaxation
}

type savedCons struct {
	terms []lp.Term
	sense Sense
	rhs   float64
}

// New returns an empty maximization problem.
func New() *Problem {
	return &Problem{byName: make(map[string]int)}
}

// Reset empties the problem for rebuilding in place, retaining allocated
// capacity — variable storage, constraint storage, the term arena, and
// the relaxation's scratch space. Callers that estimate in a loop (the
// contention models pool their builders) reset instead of reallocating.
func (p *Problem) Reset() {
	p.names = p.names[:0]
	if p.byName == nil {
		p.byName = make(map[string]int)
	} else {
		clear(p.byName)
	}
	p.lower = p.lower[:0]
	p.upper = p.upper[:0]
	p.obj = p.obj[:0]
	p.cons = p.cons[:0]
	p.integer = p.integer[:0]
	p.termArena = p.termArena[:0]
}

// AddInt adds an integer variable with inclusive bounds [lo, hi] (hi may be
// Inf) and zero objective coefficient. Names must be unique and non-empty.
func (p *Problem) AddInt(name string, lo, hi float64) Var {
	return p.add(name, lo, hi, true)
}

// AddReal adds a continuous variable (useful for LP-relaxation ablations).
func (p *Problem) AddReal(name string, lo, hi float64) Var {
	return p.add(name, lo, hi, false)
}

func (p *Problem) add(name string, lo, hi float64, integer bool) Var {
	if name == "" {
		panic("ilp: empty variable name")
	}
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("ilp: duplicate variable %q", name))
	}
	if lo > hi {
		panic(fmt.Sprintf("ilp: variable %q has empty bounds [%g, %g]", name, lo, hi))
	}
	idx := len(p.names)
	p.names = append(p.names, name)
	p.byName[name] = idx
	p.lower = append(p.lower, lo)
	p.upper = append(p.upper, hi)
	p.obj = append(p.obj, 0)
	p.integer = append(p.integer, integer)
	return Var{idx: idx, name: name}
}

// SetObjective sets the coefficient of v in the maximized objective.
func (p *Problem) SetObjective(v Var, coeff float64) {
	p.obj[v.idx] = coeff
}

// Add appends the constraint sum(terms) sense rhs.
func (p *Problem) Add(terms []Term, sense Sense, rhs float64) {
	start := len(p.termArena)
	for _, t := range terms {
		p.termArena = append(p.termArena, lp.Term{Var: t.Var.idx, Coeff: t.Coeff})
	}
	ts := p.termArena[start:len(p.termArena):len(p.termArena)]
	p.cons = append(p.cons, savedCons{terms: ts, sense: sense, rhs: rhs})
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.names) }

// Solution is the best integer assignment found, together with a proved
// upper bound on the optimum.
type Solution struct {
	// Objective is the incumbent's objective value.
	Objective float64
	// UpperBound is a proved bound on the true optimum: no integer
	// assignment can exceed it. When the search ran to completion it
	// equals Objective; under a Gap or node cutoff it may be larger by at
	// most the configured gap. Consumers needing a *sound over-
	// approximation* (such as WCET contention bounds) must read
	// UpperBound, not Objective.
	UpperBound float64
	names      []string  // variable names by index (a private copy)
	xs         []float64 // incumbent by variable index, integers rounded
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
	// WarmStarts is how many of this Solve's node relaxations resumed
	// from a previous basis via the warm-start dual simplex instead of a
	// cold rebuild (trace spans surface it beside Nodes).
	WarmStarts int
}

// Value returns the value of the named variable, panicking on unknown
// names (a misspelled name in model code is a bug, not a runtime
// condition). The lookup is a linear scan — fine for the debug and
// inspection uses names exist for; hot paths use ValueOf/IntOf, which
// index directly.
func (s Solution) Value(name string) float64 {
	for j, n := range s.names {
		if n == name {
			return s.xs[j]
		}
	}
	panic(fmt.Sprintf("ilp: no variable %q in solution", name))
}

// Int returns the named value rounded to the nearest integer.
func (s Solution) Int(name string) int64 {
	return int64(math.Round(s.Value(name)))
}

// ValueOf returns the value of variable v by index — the lookup the
// models use on their hot path, with no name hashing.
func (s Solution) ValueOf(v Var) float64 { return s.xs[v.idx] }

// IntOf returns ValueOf rounded to the nearest integer.
func (s Solution) IntOf(v Var) int64 { return int64(math.Round(s.xs[v.idx])) }

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("ilp: problem is infeasible")
	ErrUnbounded  = errors.New("ilp: problem is unbounded")
	ErrNodeLimit  = errors.New("ilp: branch & bound node limit exceeded")
)

// Options tunes Solve.
type Options struct {
	// MaxNodes bounds the branch & bound tree; 0 means the default (1e6).
	MaxNodes int
	// Gap, when positive, lets the search stop once the proved optimality
	// gap (UpperBound - Objective) is at most Gap. Large symmetric
	// instances — many equal-cost integer splits of the same budget —
	// have plateaus that exact search must enumerate; a gap of one
	// request latency collapses them while UpperBound stays sound.
	Gap float64
	// Workers, when greater than 1, lets the branch & bound explore
	// subtrees concurrently once the tree has proved itself large: the
	// search always starts with an exact sequential prefix of up to
	// MinParallelNodes nodes (bit-identical to Workers=1, so small trees
	// never pay any coordination overhead), and only a search still open
	// after the prefix fans out across a worker pool. See docs/SOLVER.md
	// "Parallel branch & bound" for the determinism contract.
	Workers int
	// MinParallelNodes is the sequential-prefix budget before a
	// Workers>1 search goes parallel; 0 means the default (256). Only
	// consulted when Workers > 1.
	MinParallelNodes int
}

const (
	defaultMaxNodes = 1_000_000
	// defaultMinParallelNodes is the node-count heuristic behind the
	// "1 worker for small trees" rule: a tree that closes within this
	// many nodes solves in well under a millisecond sequentially, which
	// is below the cost of spinning up and draining a worker pool.
	defaultMinParallelNodes = 256
)

// intTol is the integrality tolerance: relaxation values this close to an
// integer are accepted as integral.
const intTol = 1e-6

// feasTol is the tolerance for constant-row feasibility checks during
// presolve, matching the LP's phase-1 infeasibility threshold.
const feasTol = 1e-7

type node struct {
	lower, upper []float64
	// bound is the parent relaxation objective, used for best-first
	// ordering and pruning.
	bound float64
	// path is the branch path from the root: one digit per branching
	// decision, 0 for the dive-preferred child and 1 for the other. Only
	// tracked when a solve may go parallel (Workers > 1) — it is the
	// total order behind the deterministic equal-objective tie-break —
	// and nil otherwise.
	path []byte
}

// solverPool recycles lp.Solvers (and with them their tableau arenas)
// across Solve calls, including across concurrently handled service
// requests. A Solver is bound to at most one Solve at a time.
var solverPool = sync.Pool{New: func() any {
	mPoolNews.Inc()
	return lp.NewSolver()
}}

// Solve maximizes the problem over integer assignments.
//
// With opts.Workers <= 1 the search is the classic sequential branch &
// bound. With Workers > 1 it runs in two phases: an exact sequential
// prefix of up to opts.MinParallelNodes nodes — bit-identical to the
// sequential search, so any tree that closes within the prefix returns
// exactly what Workers=1 would — and, only if the tree is still open
// after that, a parallel phase across a worker pool (see parallel.go for
// the determinism contract).
func (p *Problem) Solve(opts Options) (Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}

	// Build the shared LP relaxation once; every node then only moves
	// variable bounds. Presolve may already prove infeasibility.
	rel, err := p.buildRelaxation()
	if err != nil {
		return Solution{}, err
	}
	solver := solverPool.Get().(*lp.Solver)
	mPoolGets.Inc()
	mILPSolves.Inc()
	s := &search{
		p:        p,
		rel:      rel,
		solver:   solver,
		opts:     opts,
		maxNodes: maxNodes,
		bestObj:  math.Inf(-1),
	}
	statsBase := solver.Stats()
	defer func() {
		// One flush per Solve: the per-node accounting stayed in the
		// Solver's plain fields until here. (The parallel phase flushes
		// its workers' deltas separately, after they have all joined.)
		d := solver.Stats()
		mWarmStarts.Add(d.Warm - statsBase.Warm)
		mWarmFallbacks.Add(d.WarmFallbacks - statsBase.WarmFallbacks)
		mColdSolves.Add(d.Cold - statsBase.Cold)
		mPivots.Add(d.Pivots - statsBase.Pivots)
		mBBNodes.Add(int64(s.nodes))
		solverPool.Put(solver)
	}()

	// When every objective coefficient is integral and every variable
	// with a non-zero coefficient is integer, all integer-feasible
	// objective values are integers, so a node whose relaxation bound
	// rounds down to the incumbent value cannot improve on it. This
	// integral pruning is what keeps the large-count contention ILPs
	// (tens of thousands of requests) at a handful of nodes.
	s.objIntegral = true
	for j, c := range p.obj {
		if c != math.Trunc(c) || (c != 0 && !p.integer[j]) {
			s.objIntegral = false
			break
		}
	}

	workers := opts.Workers
	prefix := 0 // 0 = unbounded: pure sequential solve
	if workers > 1 {
		s.trackPaths = true
		prefix = opts.MinParallelNodes
		if prefix <= 0 {
			prefix = defaultMinParallelNodes
		}
		if prefix >= maxNodes {
			prefix = 0 // the node limit trips first; never goes parallel
		}
	}

	s.rootBound = math.Inf(1)
	root := node{lower: s.cloneOf(p.lower), upper: s.cloneOf(p.upper), bound: math.Inf(1)}
	s.stack = append(s.stack, root)

	done, err := s.run(prefix)
	if err != nil {
		return Solution{}, err
	}
	if done {
		mBBWorkers.Set(1)
		return s.finish(statsBase)
	}
	// The prefix budget expired with the tree still open: the instance
	// has proved itself large enough to be worth a worker pool.
	return p.solveParallel(s, workers, statsBase)
}

// search is the sequential branch & bound state: Solve runs it either to
// completion (Workers <= 1) or as the bounded exact prefix of a parallel
// solve. All fields are owned by one goroutine.
type search struct {
	p        *Problem
	rel      *relaxation
	solver   *lp.Solver
	opts     Options
	maxNodes int

	objIntegral bool
	// trackPaths records each node's branch path (see node.path); enabled
	// only when the solve may hand off to the parallel phase.
	trackPaths bool

	stack     []node
	nodes     int
	bestX     []float64 // incumbent, by variable index; nil when none yet
	bestObj   float64
	bestPath  []byte
	rootBound float64

	nodeArena
}

// nodeArena recycles node storage through freelists: a popped node's
// slices are dead once its children are copied, so the steady-state
// search allocates no per-node storage. The sequential search owns one;
// each parallel worker owns its own (a stolen node's slices are simply
// recycled by whichever worker pops it).
type nodeArena struct {
	free     [][]float64
	pathFree [][]byte
}

func (a *nodeArena) cloneOf(src []float64) []float64 {
	var dst []float64
	if k := len(a.free); k > 0 {
		dst, a.free = a.free[k-1][:len(src)], a.free[:k-1]
	} else {
		dst = make([]float64, len(src))
	}
	copy(dst, src)
	return dst
}

func (a *nodeArena) recycle(n node) {
	a.free = append(a.free, n.lower, n.upper)
	if n.path != nil {
		a.pathFree = append(a.pathFree, n.path)
	}
}

// childPath returns parent's branch path extended by one digit, drawing
// storage from the path freelist.
func (a *nodeArena) childPath(parent []byte, digit byte) []byte {
	var dst []byte
	if k := len(a.pathFree); k > 0 {
		dst, a.pathFree = a.pathFree[k-1][:0], a.pathFree[:k-1]
	}
	dst = append(dst, parent...)
	return append(dst, digit)
}

func (s *search) dominated(bound, incumbent float64) bool {
	if math.IsInf(incumbent, -1) {
		return false
	}
	if s.objIntegral {
		return math.Floor(bound+intTol) <= incumbent+intTol
	}
	return bound <= incumbent+intTol
}

// openBound is the largest relaxation bound among unexplored nodes — the
// current proof of what the optimum cannot exceed.
func (s *search) openBound() float64 {
	ub := math.Inf(-1)
	for _, n := range s.stack {
		if n.bound > ub {
			ub = n.bound
		}
	}
	if !math.IsInf(s.rootBound, 1) && s.rootBound < ub {
		ub = s.rootBound
	}
	return ub
}

// run executes the sequential depth-first loop. A positive budget bounds
// how many nodes this call may explore; run returns done=false when the
// budget expired with the tree still open (the parallel hand-off point).
// With budget 0 it runs to one of the sequential stop conditions and
// always reports done.
func (s *search) run(budget int) (done bool, err error) {
	for len(s.stack) > 0 {
		if budget > 0 && s.nodes >= budget {
			return false, nil
		}
		if s.nodes >= s.maxNodes {
			return false, fmt.Errorf("%w (%d nodes)", ErrNodeLimit, s.nodes)
		}
		s.nodes++
		// Depth-first: take the most recent node.
		n := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.dominated(n.bound, s.bestObj) {
			s.recycle(n)
			continue // parent bound already dominated
		}

		status, obj, x, err := s.rel.solve(s.solver, s.p, n, false)
		if err != nil {
			return false, err
		}
		switch status {
		case lp.Infeasible:
			s.recycle(n)
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the ILP is
			// unbounded (with integral data there is an integer ray).
			return false, ErrUnbounded
		}
		if s.nodes == 1 {
			s.rootBound = obj
		}
		if s.dominated(obj, s.bestObj) {
			s.recycle(n)
			continue
		}

		// Find the most fractional variable.
		branch := -1
		worst := intTol
		for j, xj := range x {
			if !s.p.integer[j] {
				continue
			}
			frac := math.Abs(xj - math.Round(xj))
			if frac > worst {
				worst = frac
				branch = j
			}
		}
		if branch < 0 {
			// Integral: new incumbent. Keep only the dense vector;
			// names are attached once, after the search.
			s.bestObj = obj
			s.bestX = append(s.bestX[:0], x...)
			if s.trackPaths {
				s.bestPath = append(s.bestPath[:0], n.path...)
			}
			s.recycle(n)
			// With an integral objective, an incumbent matching the
			// floored root relaxation bound is provably optimal — stop
			// without draining the plateau of equal-bound nodes.
			if s.objIntegral && s.bestObj >= math.Floor(s.rootBound+intTol)-intTol {
				return true, nil
			}
			// Gap cutoff: good enough per the caller's tolerance.
			if s.opts.Gap > 0 && s.openBound()-s.bestObj <= s.opts.Gap {
				return true, nil
			}
			continue
		}

		// Branch on x_branch <= floor and x_branch >= ceil, diving into
		// the child nearest the relaxation optimum first (it is pushed
		// last): following the LP solution finds a strong incumbent in a
		// handful of dives even on large symmetric instances.
		xb := x[branch]
		up := node{lower: s.cloneOf(n.lower), upper: s.cloneOf(n.upper), bound: obj}
		up.lower[branch] = math.Ceil(xb)
		down := node{lower: s.cloneOf(n.lower), upper: s.cloneOf(n.upper), bound: obj}
		down.upper[branch] = math.Floor(xb)
		first, second := down, up // nearest child goes second (popped first)
		if xb-math.Floor(xb) > 0.5 {
			first, second = up, down
		}
		if s.trackPaths {
			// The dive-preferred child (popped first) extends the path
			// with 0, the other with 1, so lexicographic path order is
			// exactly the order the sequential search visits leaves in.
			second.path = s.childPath(n.path, 0)
			first.path = s.childPath(n.path, 1)
		}
		s.recycle(n)
		if first.lower[branch] <= first.upper[branch] {
			s.stack = append(s.stack, first)
		} else {
			s.recycle(first)
		}
		if second.lower[branch] <= second.upper[branch] {
			s.stack = append(s.stack, second)
		} else {
			s.recycle(second)
		}
	}
	return true, nil
}

// finish assembles the Solution after a purely sequential search.
func (s *search) finish(statsBase lp.SolveStats) (Solution, error) {
	if s.bestX == nil {
		return Solution{}, ErrInfeasible
	}
	for j := range s.bestX {
		if s.p.integer[j] {
			s.bestX[j] = math.Round(s.bestX[j])
		}
	}
	// The name slice is copied: a pooled Problem's names backing is
	// rewritten in place after Reset, and the Solution must outlive that.
	names := make([]string, len(s.p.names))
	copy(names, s.p.names)
	best := Solution{
		Objective:  s.bestObj,
		UpperBound: s.bestObj,
		names:      names,
		xs:         s.bestX,
		Nodes:      s.nodes,
		WarmStarts: int(s.solver.Stats().Warm - statsBase.Warm),
	}
	if len(s.stack) > 0 {
		if ub := s.openBound(); ub > s.bestObj {
			best.UpperBound = ub
		}
		if s.objIntegral {
			best.UpperBound = math.Floor(best.UpperBound + intTol)
		}
	}
	return best, nil
}

// relaxation is the LP built once per Solve and re-bounded per node. It
// lives inside the Problem and is rebuilt in place, so repeated Solves of
// a Reset problem reuse all of its storage.
type relaxation struct {
	rp *lp.Problem
	// lpIdx maps a problem variable index to its LP column, or -1 when
	// the variable was fixed (lower == upper at the root) and presolved
	// out of the LP entirely.
	lpIdx []int
	x     []float64 // full-length scratch, overwritten per node
	terms []lp.Term // constraint-remap scratch
}

// buildRelaxation constructs the shared LP: fixed variables are
// substituted out, constraints with no free variables are checked for
// feasibility and dropped, everything else carries over with the fixed
// contribution folded into the RHS. Returns ErrInfeasible when a constant
// row is violated.
func (p *Problem) buildRelaxation() (*relaxation, error) {
	if err := p.buildRelaxationInto(&p.rel); err != nil {
		return nil, err
	}
	return &p.rel, nil
}

// buildRelaxationInto builds the relaxation into rel. The parallel phase
// gives every worker its own relaxation (each node solve rewrites the LP's
// bounds in place, so a shared one would race); it only reads the
// Problem, so concurrent builds over the same Problem are safe.
func (p *Problem) buildRelaxationInto(rel *relaxation) error {
	if rel.rp == nil {
		rel.rp = lp.NewProblem()
	} else {
		rel.rp.Reset()
	}
	rel.lpIdx = resizeInts(rel.lpIdx, len(p.names))
	rel.x = resizeFloats(rel.x, len(p.names))
	for j := range p.names {
		if p.lower[j] == p.upper[j] {
			rel.lpIdx[j] = -1
			continue
		}
		rel.lpIdx[j] = rel.rp.AddVar(p.lower[j], p.upper[j], p.obj[j])
	}
	terms := rel.terms
	defer func() { rel.terms = terms[:0] }()
	for _, c := range p.cons {
		terms = terms[:0]
		fixed := 0.0
		for _, t := range c.terms {
			if rel.lpIdx[t.Var] < 0 {
				fixed += t.Coeff * p.lower[t.Var]
			} else {
				terms = append(terms, lp.Term{Var: rel.lpIdx[t.Var], Coeff: t.Coeff})
			}
		}
		rhs := c.rhs - fixed
		if len(terms) == 0 {
			// Constant row: all variables fixed. Check it once and drop.
			ok := true
			switch c.sense {
			case LE:
				ok = rhs >= -feasTol
			case GE:
				ok = rhs <= feasTol
			case EQ:
				ok = math.Abs(rhs) <= feasTol
			}
			if !ok {
				return ErrInfeasible
			}
			continue
		}
		rel.rp.AddConstraint(terms, c.sense, rhs)
	}
	return nil
}

// solve evaluates one node's relaxation: move the LP bounds to the node's
// and re-solve. Sequential callers pass cold=false and get the Solver's
// warm-start path whenever the tableau layout is unchanged; the parallel
// phase passes cold=true so the returned vertex is a pure function of the
// node's bounds, independent of what the worker solved before (the
// foundation of its determinism contract — see parallel.go). The returned
// x is rel's scratch vector, valid until the next call; the objective is
// recomputed over the full vector in variable order so presolve does not
// perturb bound values.
func (rel *relaxation) solve(s *lp.Solver, p *Problem, n node, cold bool) (lp.Status, float64, []float64, error) {
	for j, li := range rel.lpIdx {
		if li >= 0 {
			rel.rp.SetBounds(li, n.lower[j], n.upper[j])
		}
	}
	var sol lp.Solution
	var err error
	if cold {
		sol, err = s.SolveCold(rel.rp)
	} else {
		sol, err = s.Solve(rel.rp)
	}
	if err != nil {
		return 0, 0, nil, err
	}
	if sol.Status != lp.Optimal {
		return sol.Status, 0, nil, nil
	}
	for j, li := range rel.lpIdx {
		if li < 0 {
			rel.x[j] = p.lower[j]
		} else {
			rel.x[j] = sol.X[li]
		}
	}
	var obj float64
	for j, xj := range rel.x {
		obj += p.obj[j] * xj
	}
	return lp.Optimal, obj, rel.x, nil
}

// resizeInts returns buf with length n, reusing its backing array when
// large enough. Contents are unspecified; callers overwrite every entry.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
