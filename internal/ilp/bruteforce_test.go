package ilp

import (
	"errors"
	"math"
	"testing"
)

// bruteForce enumerates every integer point of a box and returns the best
// feasible objective, or -Inf when none is feasible.
type bfConstraint struct {
	coeffs []float64
	sense  Sense
	rhs    float64
}

func bruteForce(obj []float64, hi []int, cons []bfConstraint) float64 {
	n := len(obj)
	point := make([]int, n)
	best := math.Inf(-1)
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			for _, c := range cons {
				var lhs float64
				for j, x := range point {
					lhs += c.coeffs[j] * float64(x)
				}
				switch c.sense {
				case LE:
					if lhs > c.rhs+1e-9 {
						return
					}
				case GE:
					if lhs < c.rhs-1e-9 {
						return
					}
				case EQ:
					if math.Abs(lhs-c.rhs) > 1e-9 {
						return
					}
				}
			}
			var v float64
			for j, x := range point {
				v += obj[j] * float64(x)
			}
			if v > best {
				best = v
			}
			return
		}
		for x := 0; x <= hi[i]; x++ {
			point[i] = x
			walk(i + 1)
		}
	}
	walk(0)
	return best
}

// TestSolveMatchesBruteForce cross-validates the branch & bound against
// exhaustive enumeration on hundreds of random small instances with mixed
// constraint senses.
func TestSolveMatchesBruteForce(t *testing.T) {
	rnd := uint32(0x5EED)
	next := func(mod uint32) int {
		rnd = rnd*1664525 + 1013904223
		return int(rnd % mod)
	}
	for trial := 0; trial < 300; trial++ {
		n := 2 + next(2) // 2-3 vars
		hi := make([]int, n)
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			hi[j] = 2 + next(4)
			obj[j] = float64(next(7)) - 2 // may be negative or zero
		}
		nCons := 1 + next(3)
		var cons []bfConstraint
		for k := 0; k < nCons; k++ {
			c := bfConstraint{coeffs: make([]float64, n)}
			for j := 0; j < n; j++ {
				c.coeffs[j] = float64(next(5)) - 1
			}
			switch next(3) {
			case 0:
				c.sense = LE
				c.rhs = float64(next(15))
			case 1:
				c.sense = GE
				c.rhs = float64(next(6))
			default:
				c.sense = EQ
				c.rhs = float64(next(8))
			}
			cons = append(cons, c)
		}

		want := bruteForce(obj, hi, cons)

		p := New()
		vars := make([]Var, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddInt(string(rune('a'+j)), 0, float64(hi[j]))
			p.SetObjective(vars[j], obj[j])
		}
		for _, c := range cons {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{vars[j], c.coeffs[j]}
			}
			p.Add(terms, c.sense, c.rhs)
		}
		sol, err := p.Solve(Options{})

		if math.IsInf(want, -1) {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: brute force says infeasible, solver said %v (obj %v)", trial, err, sol.Objective)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: solver error %v on feasible instance (want %g)", trial, err, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: solver %g, brute force %g\nobj=%v hi=%v cons=%+v",
				trial, sol.Objective, want, obj, hi, cons)
		}
		if sol.UpperBound < sol.Objective-1e-9 {
			t.Fatalf("trial %d: upper bound %g below objective %g", trial, sol.UpperBound, sol.Objective)
		}
	}
}
