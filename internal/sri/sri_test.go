package sri

import (
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func req(m int, t platform.Target, o platform.Op, svc int64) Request {
	return Request{Master: m, Target: t, Op: o, Service: svc}
}

// run ticks the crossbar from cycle start until idle, returning all
// completions and the final cycle.
func run(x *Interconnect, start int64) ([]Completion, int64) {
	var all []Completion
	now := start
	for i := 0; i < 10000; i++ {
		all = append(all, x.Tick(now)...)
		if x.Idle() {
			return all, now
		}
		now++
	}
	panic("sri test: crossbar did not quiesce")
}

func TestSingleTransactionLatency(t *testing.T) {
	x := New(2)
	x.Issue(0, req(0, platform.LMU, platform.Data, 11))
	done, _ := run(x, 0)
	if len(done) != 1 {
		t.Fatalf("%d completions, want 1", len(done))
	}
	c := done[0]
	if c.Waited != 0 {
		t.Errorf("isolated request waited %d cycles", c.Waited)
	}
	if c.EndToEnd != 11 {
		t.Errorf("end-to-end = %d, want 11 (the service time)", c.EndToEnd)
	}
	if c.Master != 0 || c.Target != platform.LMU || c.Op != platform.Data {
		t.Errorf("completion misattributed: %+v", c)
	}
}

func TestSameTargetSerializes(t *testing.T) {
	x := New(2)
	x.Issue(0, req(0, platform.PF0, platform.Code, 16))
	x.Issue(0, req(1, platform.PF0, platform.Code, 16))
	done, _ := run(x, 0)
	if len(done) != 2 {
		t.Fatalf("%d completions, want 2", len(done))
	}
	// One of them must wait exactly the other's service time.
	w0, w1 := done[0].Waited, done[1].Waited
	if w0 > w1 {
		w0, w1 = w1, w0
	}
	if w0 != 0 || w1 != 16 {
		t.Errorf("waits = %d, %d; want 0 and 16", w0, w1)
	}
}

func TestDistinctTargetsParallel(t *testing.T) {
	x := New(2)
	x.Issue(0, req(0, platform.PF0, platform.Code, 16))
	x.Issue(0, req(1, platform.LMU, platform.Data, 11))
	done, end := run(x, 0)
	if len(done) != 2 {
		t.Fatalf("%d completions, want 2", len(done))
	}
	for _, c := range done {
		if c.Waited != 0 {
			t.Errorf("master %d waited %d on a distinct target", c.Master, c.Waited)
		}
	}
	if end != 16 {
		t.Errorf("both done at cycle %d, want 16 (max of the two, in parallel)", end)
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	// Two masters hammer the same target; grants must alternate so
	// neither starves and each waits at most one service time per grant.
	x := New(2)
	const svc = 10
	issued := [2]int{}
	grantsOrder := []int{}
	now := int64(0)
	// Keep both masters always pending.
	for m := 0; m < 2; m++ {
		x.Issue(now, req(m, platform.LMU, platform.Data, svc))
		issued[m]++
	}
	for len(grantsOrder) < 8 {
		for _, c := range x.Tick(now) {
			grantsOrder = append(grantsOrder, c.Master)
			if issued[c.Master] < 5 {
				x.Issue(now, req(c.Master, platform.LMU, platform.Data, svc))
				issued[c.Master]++
			}
		}
		now++
	}
	for i := 1; i < len(grantsOrder); i++ {
		if grantsOrder[i] == grantsOrder[i-1] {
			t.Fatalf("round-robin violated: grant order %v", grantsOrder)
		}
	}
}

func TestRoundRobinPointerAdvancesPastGranted(t *testing.T) {
	// Three masters pending on the same slave: service order must be
	// cyclic starting from rrNext.
	x := New(3)
	for m := 0; m < 3; m++ {
		x.Issue(0, req(m, platform.DFL, platform.Data, 43))
	}
	done, _ := run(x, 0)
	if len(done) != 3 {
		t.Fatalf("%d completions", len(done))
	}
	waits := map[int]int64{}
	for _, c := range done {
		waits[c.Master] = c.Waited
	}
	// rrNext starts at 0: master 0 waits 0, master 1 waits 43, master 2
	// waits 86.
	if waits[0] != 0 || waits[1] != 43 || waits[2] != 86 {
		t.Errorf("waits = %v, want 0/43/86", waits)
	}
}

func TestMaxDelayBoundedByContenders(t *testing.T) {
	// Property at the heart of the contention model: with round-robin
	// arbitration a request waits at most (numMasters-1) service times
	// of the slowest co-pending requests.
	f := func(seed uint32) bool {
		x := New(3)
		svc := []int64{11, 16, 43}
		x.Issue(0, req(0, platform.LMU, platform.Data, svc[seed%3]))
		x.Issue(0, req(1, platform.LMU, platform.Data, svc[(seed/3)%3]))
		x.Issue(0, req(2, platform.LMU, platform.Data, svc[(seed/9)%3]))
		done, _ := run(x, 0)
		var maxSvc int64
		for _, s := range svc {
			if s > maxSvc {
				maxSvc = s
			}
		}
		for _, c := range done {
			if c.Waited > 2*maxSvc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGrantsAndWaitStats(t *testing.T) {
	x := New(2)
	x.Issue(0, req(0, platform.PF1, platform.Code, 16))
	x.Issue(0, req(1, platform.PF1, platform.Data, 16))
	run(x, 0)
	if g := x.Grants(0, platform.PF1, platform.Code); g != 1 {
		t.Errorf("grants(0, pf1, co) = %d", g)
	}
	if g := x.Grants(1, platform.PF1, platform.Data); g != 1 {
		t.Errorf("grants(1, pf1, da) = %d", g)
	}
	total := x.WaitCycles(0, platform.PF1) + x.WaitCycles(1, platform.PF1)
	if total != 16 {
		t.Errorf("combined wait = %d, want 16", total)
	}
	if x.TotalWaitCycles(0)+x.TotalWaitCycles(1) != 16 {
		t.Errorf("TotalWaitCycles mismatch")
	}
	x.ResetStats()
	if x.Grants(0, platform.PF1, platform.Code) != 0 || x.TotalWaitCycles(1) != 0 {
		t.Error("ResetStats did not zero statistics")
	}
}

func TestBusyTracking(t *testing.T) {
	x := New(1)
	if x.Busy(0) {
		t.Error("fresh master busy")
	}
	x.Issue(0, req(0, platform.LMU, platform.Code, 11))
	if !x.Busy(0) {
		t.Error("master not busy after issue")
	}
	run(x, 0)
	if x.Busy(0) {
		t.Error("master busy after completion")
	}
}

func TestIssuePanics(t *testing.T) {
	cases := []struct {
		name string
		do   func(x *Interconnect)
	}{
		{"bad master", func(x *Interconnect) { x.Issue(0, req(5, platform.LMU, platform.Data, 1)) }},
		{"illegal path", func(x *Interconnect) { x.Issue(0, req(0, platform.DFL, platform.Code, 1)) }},
		{"zero service", func(x *Interconnect) { x.Issue(0, req(0, platform.LMU, platform.Data, 0)) }},
		{"double issue", func(x *Interconnect) {
			x.Issue(0, req(0, platform.LMU, platform.Data, 5))
			x.Issue(0, req(0, platform.PF0, platform.Code, 5))
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.do(New(2))
		})
	}
}

func TestNewPanicsOnZeroMasters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: total wait suffered by a master on a slave equals the sum of
// service times of transactions granted between its issue and its grant —
// i.e. conservation: sum of end-to-end = sum of service + sum of waits.
func TestLatencyConservationProperty(t *testing.T) {
	f := func(pattern []uint8) bool {
		x := New(3)
		svcOf := func(b uint8) (platform.Target, platform.Op, int64) {
			switch b % 4 {
			case 0:
				return platform.LMU, platform.Data, 11
			case 1:
				return platform.PF0, platform.Code, 16
			case 2:
				return platform.PF1, platform.Data, 16
			default:
				return platform.DFL, platform.Data, 43
			}
		}
		var queue [3][]uint8
		for i, b := range pattern {
			queue[i%3] = append(queue[i%3], b)
		}
		var sumE2E, sumSvc, sumWait int64
		now := int64(0)
		issue := func(m int) {
			if len(queue[m]) == 0 || x.Busy(m) {
				return
			}
			tgt, op, svc := svcOf(queue[m][0])
			queue[m] = queue[m][1:]
			x.Issue(now, Request{Master: m, Target: tgt, Op: op, Service: svc})
			sumSvc += svc
		}
		for m := 0; m < 3; m++ {
			issue(m)
		}
		for i := 0; i < 100000; i++ {
			for _, c := range x.Tick(now) {
				sumE2E += c.EndToEnd
				sumWait += c.Waited
				issue(c.Master)
			}
			if x.Idle() && len(queue[0])+len(queue[1])+len(queue[2]) == 0 {
				break
			}
			now++
		}
		return sumE2E == sumSvc+sumWait
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
