// Package sri models the Shared Resource Interconnect of the AURIX TC27x:
// the crossbar that connects the three TriCore masters to the shared slave
// interfaces (pf0, pf1, dfl, lmu).
//
// The model captures exactly the properties the paper's contention analysis
// builds on:
//
//   - transactions to *distinct* slave interfaces proceed in parallel;
//   - requests to the *same* slave are arbitrated round-robin per slave, so
//     a request can be delayed by at most one in-flight plus the queued
//     requests of other masters ahead of it in round-robin order;
//   - each transaction occupies its slave for a per-(target, op) service
//     time taken from the platform latency table, with an optional
//     override for special transactions (dirty-miss refills on the LMU).
//
// The interconnect is clocked externally: the simulation harness calls
// Tick once per cycle after letting the cores issue. It is deliberately
// single-threaded and deterministic.
package sri

import (
	"fmt"

	"repro/internal/platform"
)

// Request describes one SRI transaction to issue.
type Request struct {
	// Master is the issuing core index.
	Master int
	// Target is the slave interface addressed.
	Target platform.Target
	// Op is the operation class (code fetch or data access) used for
	// arbitration accounting and statistics.
	Op platform.Op
	// Service is the number of cycles the transaction occupies the slave.
	// It must be positive; callers normally pass the Max latency of the
	// (target, op) pair, or the dirty-miss override.
	Service int64
	// Addr is the line-aligned address of the transaction, consulted by
	// the flash prefetch buffer when enabled.
	Addr uint32
	// MinService, when positive, is the reduced service time the slave
	// charges when its prefetch buffer already holds the requested line
	// (the lmin column of Table 2 — 12 instead of 16 cycles on the
	// program flash). Zero disables the discount for this request.
	MinService int64
}

// Completion reports a finished transaction back to its master.
type Completion struct {
	Master int
	Target platform.Target
	Op     platform.Op
	// Waited is the number of cycles the request sat in the slave queue
	// before being granted (pure contention delay).
	Waited int64
	// EndToEnd is the total latency from issue to completion, i.e.
	// Waited + service time.
	EndToEnd int64
}

type pendingReq struct {
	Request
	issuedAt int64
}

type slaveState struct {
	// pending[m] holds core m's queued request, if any.
	pending []*pendingReq
	// inflight is the granted transaction, nil when the slave is idle.
	inflight *pendingReq
	// grantedAt is the cycle the in-flight transaction was granted.
	grantedAt int64
	// grantedService is the service time chosen at grant (the request's
	// Service, or MinService on a prefetch hit).
	grantedService int64
	// rrNext is the master index that has priority at the next grant.
	rrNext int

	// Prefetch-buffer state: the last line this slave served, and to
	// whom. A sequential next-line request from the same master hits the
	// buffer.
	lastAddr   uint32
	lastMaster int
	lastValid  bool

	// Per-(master, op) grant counts: ground-truth PTAC for validation.
	grants [][platform.NumOps]int64
	// waitCycles accumulates contention wait per master.
	waitCycles []int64
	// prefetchHits counts grants served at MinService.
	prefetchHits int64
}

// Interconnect is the SRI crossbar. Construct with New.
type Interconnect struct {
	numMasters int
	slaves     [platform.NumTargets]slaveState
	// outstanding[m] is the slave core m is blocked on, or -1.
	outstanding []int
	// prefetch enables the flash prefetch buffers: sequential next-line
	// requests from the same master are served in the request's
	// MinService cycles. Off by default — the contention models assume
	// worst-case service times, and the calibration of Table 2's lmin
	// column is the one experiment that needs it.
	prefetch bool
	// lineSize is the prefetch sequentiality stride.
	lineSize uint32
	// priority[m] is master m's SRI priority class: higher values win
	// arbitration outright; round-robin applies within a class. All
	// masters default to class 0 — the paper's system model ("requests
	// of contenders are mapped to the same SRI priority class", §2),
	// which is also the most stressing case for the contention models.
	priority []int
	// jitter, when non-zero, is the state of a deterministic xorshift
	// PRNG that draws each granted service time uniformly from
	// [MinService, Service] — the paper's observation that "the actual
	// stall cycles are not constant and depend on pipelining and
	// prefetching effects", as an adversarial (but repeatable) testbed
	// for the models, which only ever assume the Service worst case.
	jitter uint64
}

// New builds an SRI crossbar for numMasters cores.
func New(numMasters int) *Interconnect {
	if numMasters <= 0 {
		panic(fmt.Sprintf("sri: numMasters must be positive, got %d", numMasters))
	}
	x := &Interconnect{
		numMasters:  numMasters,
		outstanding: make([]int, numMasters),
		priority:    make([]int, numMasters),
	}
	for m := range x.outstanding {
		x.outstanding[m] = -1
	}
	for t := range x.slaves {
		x.slaves[t].pending = make([]*pendingReq, numMasters)
		x.slaves[t].grants = make([][platform.NumOps]int64, numMasters)
		x.slaves[t].waitCycles = make([]int64, numMasters)
	}
	return x
}

// NumMasters returns the number of master ports.
func (x *Interconnect) NumMasters() int { return x.numMasters }

// EnableFlashPrefetch turns on the per-slave prefetch buffers with the
// given sequentiality stride (the 32-byte flash line on the TC27x).
func (x *Interconnect) EnableFlashPrefetch(lineSize uint32) {
	if lineSize == 0 {
		panic("sri: zero prefetch line size")
	}
	x.prefetch = true
	x.lineSize = lineSize
}

// PrefetchHits returns how many transactions target t served at the
// reduced prefetch service time.
func (x *Interconnect) PrefetchHits(t platform.Target) int64 {
	return x.slaves[t].prefetchHits
}

// EnableServiceJitter makes every slave draw granted service times
// uniformly from [MinService, Service] using a deterministic PRNG seeded
// with seed (which must be non-zero). Mutually exclusive with the prefetch
// buffers, which model the *systematic* part of the same variability.
func (x *Interconnect) EnableServiceJitter(seed uint64) {
	if seed == 0 {
		panic("sri: jitter seed must be non-zero")
	}
	if x.prefetch {
		panic("sri: jitter and prefetch are mutually exclusive")
	}
	x.jitter = seed
}

// nextRand steps the xorshift64 PRNG.
func (x *Interconnect) nextRand() uint64 {
	x.jitter ^= x.jitter << 13
	x.jitter ^= x.jitter >> 7
	x.jitter ^= x.jitter << 17
	return x.jitter
}

// SetMasterPriority assigns master m to an SRI priority class; higher
// values win arbitration over lower ones, round-robin applies within a
// class. The paper's contention models assume all contenders share the
// analysed task's class; configuring the analysed master *below* a
// contender voids them (a single request can then wait behind arbitrarily
// many higher-class transactions), which TestPriorityClassesVoidModel
// demonstrates.
func (x *Interconnect) SetMasterPriority(m, class int) {
	if m < 0 || m >= x.numMasters {
		panic(fmt.Sprintf("sri: bad master %d", m))
	}
	x.priority[m] = class
}

// Busy reports whether master m has an outstanding transaction.
func (x *Interconnect) Busy(m int) bool { return x.outstanding[m] >= 0 }

// Issue enqueues a request at cycle now. Each master may have only one
// outstanding transaction (TriCore masters block on their memory
// interface); violating that, or passing an illegal request, is a
// programming error and panics.
func (x *Interconnect) Issue(now int64, r Request) {
	switch {
	case r.Master < 0 || r.Master >= x.numMasters:
		panic(fmt.Sprintf("sri: bad master %d", r.Master))
	case !platform.CanAccess(r.Target, r.Op):
		panic(fmt.Sprintf("sri: illegal access path %s/%s", r.Target, r.Op))
	case r.Service <= 0:
		panic(fmt.Sprintf("sri: non-positive service time %d", r.Service))
	case x.outstanding[r.Master] >= 0:
		panic(fmt.Sprintf("sri: master %d already has an outstanding transaction", r.Master))
	}
	x.outstanding[r.Master] = int(r.Target)
	x.slaves[r.Target].pending[r.Master] = &pendingReq{Request: r, issuedAt: now}
}

// Tick advances the crossbar to cycle now: completes transactions whose
// service time has elapsed and grants queued requests on idle slaves in
// round-robin order. It returns the completions delivered this cycle.
// Callers must tick every cycle with strictly increasing now values.
func (x *Interconnect) Tick(now int64) []Completion {
	var done []Completion
	for ti := range x.slaves {
		s := &x.slaves[ti]
		// Retire the in-flight transaction if its service elapsed.
		if s.inflight != nil && now >= s.grantedAt+s.grantedService {
			r := s.inflight
			s.inflight = nil
			x.outstanding[r.Master] = -1
			done = append(done, Completion{
				Master:   r.Master,
				Target:   r.Target,
				Op:       r.Op,
				Waited:   s.grantedAt - r.issuedAt,
				EndToEnd: now - r.issuedAt,
			})
		}
		// Grant the next pending request: highest priority class first,
		// round-robin within the class.
		if s.inflight == nil {
			best := -1
			for i := 0; i < x.numMasters; i++ {
				m := (s.rrNext + i) % x.numMasters
				if s.pending[m] != nil && (best < 0 || x.priority[m] > x.priority[best]) {
					best = m
				}
			}
			if m := best; m >= 0 {
				if r := s.pending[m]; r != nil {
					s.pending[m] = nil
					s.inflight = r
					s.grantedAt = now
					s.grantedService = r.Service
					if x.prefetch && r.MinService > 0 && s.lastValid &&
						s.lastMaster == m && r.Addr == s.lastAddr+x.lineSize {
						s.grantedService = r.MinService
						s.prefetchHits++
					}
					if x.jitter != 0 && r.MinService > 0 && r.MinService < r.Service {
						span := uint64(r.Service - r.MinService + 1)
						s.grantedService = r.MinService + int64(x.nextRand()%span)
					}
					s.lastAddr = r.Addr
					s.lastMaster = m
					s.lastValid = true
					s.rrNext = (m + 1) % x.numMasters
					s.grants[m][r.Op]++
					s.waitCycles[m] += now - r.issuedAt
				}
			}
		}
	}
	return done
}

// Grants returns the ground-truth number of transactions master m completed
// (or was granted) on target t with operation o. The real TC27x offers no
// such counter — the whole point of the paper's Eq. 4 is reconstructing an
// upper bound on these from stall cycles — but the simulator exposes them
// so tests can check the models against the truth.
func (x *Interconnect) Grants(m int, t platform.Target, o platform.Op) int64 {
	return x.slaves[t].grants[m][o]
}

// WaitCycles returns the total arbitration wait master m accumulated on
// target t: the exact contention it suffered there.
func (x *Interconnect) WaitCycles(m int, t platform.Target) int64 {
	return x.slaves[t].waitCycles[m]
}

// TotalWaitCycles returns the contention wait master m accumulated across
// all slaves.
func (x *Interconnect) TotalWaitCycles(m int) int64 {
	var sum int64
	for _, t := range platform.Targets {
		sum += x.slaves[t].waitCycles[m]
	}
	return sum
}

// ResetStats zeroes grant and wait statistics without disturbing in-flight
// state.
func (x *Interconnect) ResetStats() {
	for ti := range x.slaves {
		s := &x.slaves[ti]
		for m := range s.grants {
			s.grants[m] = [platform.NumOps]int64{}
			s.waitCycles[m] = 0
		}
	}
}

// Idle reports whether no transaction is queued or in flight anywhere.
func (x *Interconnect) Idle() bool {
	for ti := range x.slaves {
		s := &x.slaves[ti]
		if s.inflight != nil {
			return false
		}
		for _, p := range s.pending {
			if p != nil {
				return false
			}
		}
	}
	return true
}
