package sri

import (
	"testing"

	"repro/internal/platform"
)

func lmuData(m int) Request {
	return Request{Master: m, Target: platform.LMU, Op: platform.Data, Service: 11}
}

func TestHigherClassWinsArbitration(t *testing.T) {
	x := New(2)
	x.SetMasterPriority(1, 1) // master 1 above master 0
	// Both pending at the same cycle; round-robin alone would pick
	// master 0 (rrNext starts there), priority must override.
	x.Issue(0, lmuData(0))
	x.Issue(0, lmuData(1))
	done, _ := run(x, 0)
	waits := map[int]int64{}
	for _, c := range done {
		waits[c.Master] = c.Waited
	}
	if waits[1] != 0 {
		t.Errorf("high-priority master waited %d", waits[1])
	}
	if waits[0] != 11 {
		t.Errorf("low-priority master waited %d, want 11", waits[0])
	}
}

func TestSameClassKeepsRoundRobin(t *testing.T) {
	x := New(2)
	x.SetMasterPriority(0, 3)
	x.SetMasterPriority(1, 3) // same class: round-robin as before
	x.Issue(0, lmuData(0))
	x.Issue(0, lmuData(1))
	done, _ := run(x, 0)
	waits := map[int]int64{}
	for _, c := range done {
		waits[c.Master] = c.Waited
	}
	// rrNext starts at 0: master 0 first.
	if waits[0] != 0 || waits[1] != 11 {
		t.Errorf("same-class waits = %v, want 0/11", waits)
	}
}

func TestLowClassStarvesUnderSaturation(t *testing.T) {
	// The phenomenon the paper's same-class assumption excludes: two
	// high-priority masters ping-pong on the slave, each pending again by
	// the time the other completes, so a low-priority request waits
	// behind an entire stream of higher-class transactions. Under
	// round-robin (all same class) the low master would wait at most two
	// services.
	x := New(3)
	x.SetMasterPriority(1, 1)
	x.SetMasterPriority(2, 1)
	x.Issue(0, lmuData(0))
	x.Issue(0, lmuData(1))
	x.Issue(0, lmuData(2))
	served := 0
	var lowWait int64 = -1
	now := int64(0)
	for lowWait < 0 && now < 10_000 {
		for _, c := range x.Tick(now) {
			switch c.Master {
			case 1, 2:
				served++
				if served < 8 {
					x.Issue(now, lmuData(c.Master)) // keep the class saturated
				}
			case 0:
				lowWait = c.Waited
			}
		}
		now++
	}
	// Round-robin would bound the wait at 2*11 = 22; the class stream
	// pushes it past 8 services.
	if lowWait < 8*11 {
		t.Errorf("low-priority wait = %d, want >= 88 (starved behind the high class)", lowWait)
	}
}

func TestSetMasterPriorityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad master accepted")
		}
	}()
	New(2).SetMasterPriority(5, 1)
}
