package sri

import (
	"testing"

	"repro/internal/platform"
)

// pfReq builds a pf0 code request with the prefetch discount available.
func pfReq(m int, addr uint32) Request {
	return Request{
		Master: m, Target: platform.PF0, Op: platform.Code,
		Service: 16, MinService: 12, Addr: addr,
	}
}

func TestPrefetchSequentialHit(t *testing.T) {
	x := New(2)
	x.EnableFlashPrefetch(32)
	x.Issue(0, pfReq(0, 0x000))
	done, _ := run(x, 0)
	if done[0].EndToEnd != 16 {
		t.Fatalf("first access e2e = %d, want 16 (cold buffer)", done[0].EndToEnd)
	}
	x.Issue(100, pfReq(0, 0x020)) // sequential next line
	done2 := []Completion{}
	for now := int64(100); len(done2) == 0; now++ {
		done2 = append(done2, x.Tick(now)...)
	}
	if done2[0].EndToEnd != 12 {
		t.Errorf("sequential access e2e = %d, want 12 (prefetch hit)", done2[0].EndToEnd)
	}
	if x.PrefetchHits(platform.PF0) != 1 {
		t.Errorf("prefetch hits = %d, want 1", x.PrefetchHits(platform.PF0))
	}
}

func TestPrefetchMissOnNonSequential(t *testing.T) {
	x := New(2)
	x.EnableFlashPrefetch(32)
	x.Issue(0, pfReq(0, 0x000))
	run(x, 0)
	x.Issue(100, pfReq(0, 0x100)) // jump: not last+32
	var done []Completion
	for now := int64(100); len(done) == 0; now++ {
		done = append(done, x.Tick(now)...)
	}
	if done[0].EndToEnd != 16 {
		t.Errorf("non-sequential access e2e = %d, want 16", done[0].EndToEnd)
	}
	if x.PrefetchHits(platform.PF0) != 0 {
		t.Errorf("prefetch hits = %d, want 0", x.PrefetchHits(platform.PF0))
	}
}

func TestPrefetchBrokenByOtherMaster(t *testing.T) {
	// Master 1 interposes on the same slave: master 0's stream is broken.
	x := New(2)
	x.EnableFlashPrefetch(32)
	x.Issue(0, pfReq(0, 0x000))
	run(x, 0)
	x.Issue(100, pfReq(1, 0x400))
	run(x, 100)
	x.Issue(200, pfReq(0, 0x020)) // would have been sequential for master 0
	var done []Completion
	for now := int64(200); len(done) == 0; now++ {
		done = append(done, x.Tick(now)...)
	}
	if done[0].EndToEnd != 16 {
		t.Errorf("stream broken by other master: e2e = %d, want 16", done[0].EndToEnd)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	x := New(2)
	x.Issue(0, pfReq(0, 0x000))
	run(x, 0)
	x.Issue(100, pfReq(0, 0x020))
	var done []Completion
	for now := int64(100); len(done) == 0; now++ {
		done = append(done, x.Tick(now)...)
	}
	if done[0].EndToEnd != 16 {
		t.Errorf("prefetch applied while disabled: e2e = %d", done[0].EndToEnd)
	}
}

func TestPrefetchRequiresMinService(t *testing.T) {
	x := New(2)
	x.EnableFlashPrefetch(32)
	r := pfReq(0, 0x000)
	r.MinService = 0 // e.g. a dirty-miss override transaction
	x.Issue(0, r)
	run(x, 0)
	r2 := pfReq(0, 0x020)
	r2.MinService = 0
	x.Issue(100, r2)
	var done []Completion
	for now := int64(100); len(done) == 0; now++ {
		done = append(done, x.Tick(now)...)
	}
	if done[0].EndToEnd != 16 {
		t.Errorf("discount applied without MinService: e2e = %d", done[0].EndToEnd)
	}
}

func TestEnableFlashPrefetchPanicsOnZeroLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero line size accepted")
		}
	}()
	New(1).EnableFlashPrefetch(0)
}
