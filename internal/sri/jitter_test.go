package sri

import (
	"testing"
)

func TestJitterServiceWithinBounds(t *testing.T) {
	x := New(1)
	x.EnableServiceJitter(42)
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		x.Issue(int64(i*100), pfReq(0, uint32(i)*64))
		var done []Completion
		for now := int64(i * 100); len(done) == 0; now++ {
			done = append(done, x.Tick(now)...)
		}
		e2e := done[0].EndToEnd
		if e2e < 12 || e2e > 16 {
			t.Fatalf("jittered service %d outside [12, 16]", e2e)
		}
		seen[e2e] = true
	}
	if len(seen) < 3 {
		t.Errorf("jitter produced only %d distinct service times", len(seen))
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	runOnce := func(seed uint64) []int64 {
		x := New(1)
		x.EnableServiceJitter(seed)
		var out []int64
		for i := 0; i < 50; i++ {
			x.Issue(int64(i*100), pfReq(0, uint32(i)*64))
			var done []Completion
			for now := int64(i * 100); len(done) == 0; now++ {
				done = append(done, x.Tick(now)...)
			}
			out = append(out, done[0].EndToEnd)
		}
		return out
	}
	a, b := runOnce(7), runOnce(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := runOnce(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestJitterNotAppliedWithoutMinService(t *testing.T) {
	x := New(1)
	x.EnableServiceJitter(3)
	x.Issue(0, lmuData(0)) // MinService zero: fixed 11-cycle service
	done, _ := run(x, 0)
	if done[0].EndToEnd != 11 {
		t.Errorf("lmu service jittered to %d", done[0].EndToEnd)
	}
}

func TestJitterPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero seed": func() { New(1).EnableServiceJitter(0) },
		"with prefetch": func() {
			x := New(1)
			x.EnableFlashPrefetch(32)
			x.EnableServiceJitter(1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
