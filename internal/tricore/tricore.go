// Package tricore models the TriCore 1.6P and 1.6E cores of the AURIX
// TC27x at the level of detail the paper's contention analysis depends on:
// which memory accesses leave the core and become SRI transactions, how
// long the pipeline blocks on them, and what the DSU debug counters record.
//
// A core executes a trace.Source. Accesses to its local scratchpads and
// hits in its caches cost one cycle and stay inside the core. Everything
// else becomes an SRI transaction: the core blocks until the crossbar
// delivers the response, the cycle counter keeps running, and the
// PMEM_STALL/DMEM_STALL counter of the access's class is charged the
// transaction's arbitration wait plus its intrinsic minimum stall
// (the cs^{t,o} of the paper's Table 2 — the part of the end-to-end latency
// that core-side prefetching and SRI pipelining cannot hide).
//
// The 1.6P deploys a 16 KiB instruction cache and an 8 KiB write-back data
// cache whose dirty evictions fold into a longer refill transaction; the
// 1.6E deploys an 8 KiB instruction cache and a single-line data read
// buffer (DRB) with write-through stores.
package tricore

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sri"
	"repro/internal/trace"
)

// Kind selects the core microarchitecture.
type Kind int

const (
	// TC16P is the higher-performance TriCore 1.6P (cores 1 and 2 of the
	// TC277).
	TC16P Kind = iota
	// TC16E is the low-power TriCore 1.6E (core 0).
	TC16E
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TC16P:
		return "TC1.6P"
	case TC16E:
		return "TC1.6E"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes one core instance.
type Config struct {
	// Index is the core's id and SRI master port (0..2). On the TC277,
	// index 0 is the 1.6E and indices 1-2 are 1.6P cores; New enforces
	// nothing about that pairing so tests can build other mixes.
	Index int
	// Kind picks the microarchitecture.
	Kind Kind
}

type phase int

const (
	phaseReady   phase = iota // fetch or resolve the next access
	phaseGap                  // consuming compute cycles
	phaseBlocked              // waiting on an SRI transaction
	phaseDone                 // trace exhausted
)

// Core is one simulated TriCore. It is clocked by the simulation harness:
// Tick once per cycle, then deliver any sri completions via Complete.
type Core struct {
	cfg    Config
	lat    *platform.LatencyTable
	x      *sri.Interconnect
	src    trace.Source
	icache *cache.Cache
	dcache *cache.Cache
	bank   dsu.Bank

	ph      phase
	gapLeft int64
	pend    *trace.Access
	// followup is a second SRI transaction to issue as soon as the
	// current one completes (dirty write-back followed by the refill).
	followup *sri.Request
}

// New builds a core of the given kind attached to crossbar x, executing
// src. The latency table supplies SRI service times.
func New(cfg Config, lat *platform.LatencyTable, x *sri.Interconnect, src trace.Source) (*Core, error) {
	if cfg.Index < 0 || cfg.Index >= x.NumMasters() {
		return nil, fmt.Errorf("tricore: core index %d outside crossbar's %d masters", cfg.Index, x.NumMasters())
	}
	if err := lat.Validate(); err != nil {
		return nil, fmt.Errorf("tricore: %w", err)
	}
	c := &Core{cfg: cfg, lat: lat, x: x, src: src}
	switch cfg.Kind {
	case TC16P:
		c.icache = cache.MustNew(cache.TC16PICache(), false)
		c.dcache = cache.MustNew(cache.TC16PDCache(), true)
	case TC16E:
		c.icache = cache.MustNew(cache.TC16EICache(), false)
		c.dcache = cache.MustNew(cache.TC16EDRB(), false)
	default:
		return nil, fmt.Errorf("tricore: unknown kind %v", cfg.Kind)
	}
	src.Reset()
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, lat *platform.LatencyTable, x *sri.Interconnect, src trace.Source) *Core {
	c, err := New(cfg, lat, x, src)
	if err != nil {
		panic(err)
	}
	return c
}

// Index returns the core id.
func (c *Core) Index() int { return c.cfg.Index }

// Kind returns the core microarchitecture.
func (c *Core) Kind() Kind { return c.cfg.Kind }

// Done reports whether the core has exhausted its trace.
func (c *Core) Done() bool { return c.ph == phaseDone }

// Counters returns the core's DSU readings so far.
func (c *Core) Counters() dsu.Readings { return c.bank.Snapshot() }

// ResetCounters zeroes the DSU bank (cache contents are kept, matching a
// counter reprogramming on warmed-up hardware).
func (c *Core) ResetCounters() { c.bank.Reset() }

// Restart rearms a finished core to execute its source again (callers
// reset the source themselves). Cache contents survive, which is the
// point: warm-measurement protocols run the task once to warm the caches
// and measure the second pass. Restarting a core with an in-flight
// transaction is a programming error.
func (c *Core) Restart() {
	if c.ph == phaseBlocked {
		panic(fmt.Sprintf("tricore: core %d restarted with an in-flight transaction", c.cfg.Index))
	}
	c.ph = phaseReady
	c.pend = nil
	c.gapLeft = 0
	c.followup = nil
}

// ICacheStats exposes instruction-cache statistics for tests.
func (c *Core) ICacheStats() (hits, missClean, missDirty int64) { return c.icache.Stats() }

// DCacheStats exposes data-cache statistics for tests.
func (c *Core) DCacheStats() (hits, missClean, missDirty int64) { return c.dcache.Stats() }

// Tick advances the core by one cycle. now is the global cycle number,
// forwarded to the crossbar on issues.
func (c *Core) Tick(now int64) {
	switch c.ph {
	case phaseDone:
		return
	case phaseBlocked:
		c.bank.Add(dsu.CCNT, 1)
		return
	case phaseGap:
		c.bank.Add(dsu.CCNT, 1)
		c.gapLeft--
		if c.gapLeft == 0 {
			c.ph = phaseReady
		}
		return
	}

	// phaseReady: pull the next access if none pending.
	if c.pend == nil {
		a, ok := c.src.Next()
		if !ok {
			c.ph = phaseDone
			return
		}
		c.pend = &a
		if a.Gap > 0 {
			// This cycle is the first gap cycle.
			c.bank.Add(dsu.CCNT, 1)
			c.gapLeft = a.Gap - 1
			if c.gapLeft > 0 {
				c.ph = phaseGap
			}
			return
		}
	}
	c.resolve(now)
}

// resolve classifies the pending access and either completes it locally
// (one cycle) or turns it into an SRI transaction and blocks.
func (c *Core) resolve(now int64) {
	a := *c.pend
	c.bank.Add(dsu.CCNT, 1) // the access's own dispatch cycle
	r := platform.Decode(a.Addr)

	switch r.Kind {
	case platform.RegionPSPR, platform.RegionDSPR:
		// Local (or another core's) scratchpad: single-cycle, no SRI
		// traffic. Cross-core scratchpad traffic is excluded by the
		// paper's system model, and our workloads never generate it.
		c.pend = nil
		return
	case platform.RegionInvalid:
		panic(fmt.Sprintf("tricore: core %d accessed unmapped address %#x", c.cfg.Index, a.Addr))
	}

	// SRI-backed address.
	if a.Kind == trace.Fetch {
		c.resolveFetch(now, a, r)
	} else {
		c.resolveData(now, a, r)
	}
}

// request builds an SRI request for (t, o) at the line holding addr, with
// the prefetch discount wired in when the target supports one (lmin < lmax
// in Table 2 — the program flash banks).
func (c *Core) request(t platform.Target, o platform.Op, service int64, addr uint32) sri.Request {
	r := sri.Request{
		Master:  c.cfg.Index,
		Target:  t,
		Op:      o,
		Service: service,
		Addr:    addr &^ 31, // 32-byte line alignment
	}
	l, err := c.lat.Lookup(t, o)
	if err != nil {
		panic(err)
	}
	if l.Min < service {
		r.MinService = l.Min
	}
	return r
}

func (c *Core) resolveFetch(now int64, a trace.Access, r platform.Region) {
	if r.Cacheable {
		out := c.icache.Access(a.Addr, false)
		if out.Result == cache.Hit {
			c.pend = nil
			return
		}
		c.bank.Add(dsu.PCacheMiss, 1)
	}
	// Cache miss or non-cacheable fetch: fetch the line over the SRI.
	c.issue(now, c.request(r.Target, platform.Code, c.lat.MaxLatency(r.Target, platform.Code), a.Addr))
}

func (c *Core) resolveData(now int64, a trace.Access, r platform.Region) {
	write := a.Kind == trace.Store
	if !r.Cacheable {
		// Non-cacheable data goes straight to the SRI, one transaction
		// per access, no miss counters.
		c.issue(now, c.request(r.Target, platform.Data, c.lat.MaxLatency(r.Target, platform.Data), a.Addr))
		return
	}

	if write && c.cfg.Kind == TC16E {
		// The 1.6E has no data cache: stores are write-through and bypass
		// the DRB entirely, so every cacheable store still costs one SRI
		// transaction and counts no miss.
		c.issue(now, c.request(r.Target, platform.Data, c.lat.MaxLatency(r.Target, platform.Data), a.Addr))
		return
	}

	out := c.dcache.Access(a.Addr, write)
	if out.Result == cache.Hit {
		c.pend = nil
		return
	}

	refill := c.request(r.Target, platform.Data, c.lat.MaxLatency(r.Target, platform.Data), a.Addr)
	switch out.Result {
	case cache.MissClean:
		c.bank.Add(dsu.DCacheMissClean, 1)
		c.issue(now, refill)
	case cache.MissDirty:
		c.bank.Add(dsu.DCacheMissDirty, 1)
		victim := platform.Decode(out.VictimAddr)
		if victim.Kind != platform.RegionSRI {
			panic(fmt.Sprintf("tricore: dirty victim %#x not SRI-backed", out.VictimAddr))
		}
		if victim.Target == platform.LMU && r.Target == platform.LMU {
			// Write-back and refill to the LMU fold into one longer
			// transaction — the bracketed 21-cycle latency of Table 2.
			refill.Service = platform.TC27xLMUDirtyMissLatency
			c.issue(now, refill)
			return
		}
		// Otherwise the write-back is its own transaction, followed by
		// the refill as soon as it completes.
		c.followup = &refill
		c.issue(now, c.request(victim.Target, platform.Data,
			c.lat.MaxLatency(victim.Target, platform.Data), out.VictimAddr))
	}
}

func (c *Core) issue(now int64, r sri.Request) {
	c.x.Issue(now, r)
	c.ph = phaseBlocked
}

// Complete must be called by the harness when the crossbar reports a
// completion for this core. It charges the stall counters and unblocks the
// core (or chains the follow-up transaction of a dirty miss).
func (c *Core) Complete(now int64, cmp sri.Completion) {
	if c.ph != phaseBlocked {
		panic(fmt.Sprintf("tricore: core %d got completion while not blocked", c.cfg.Index))
	}
	if cmp.Master != c.cfg.Index {
		panic(fmt.Sprintf("tricore: core %d got completion for master %d", c.cfg.Index, cmp.Master))
	}

	// The stall charged is the arbitration wait (contention, never
	// hidden) plus the intrinsic minimum stall of the transaction: its
	// service time minus the slack core-side prefetching hides. For a
	// standard transaction (service == Max) that is exactly cs^{t,o}.
	l, err := c.lat.Lookup(cmp.Target, cmp.Op)
	if err != nil {
		panic(err)
	}
	hidden := l.Max - l.Stall
	service := cmp.EndToEnd - cmp.Waited
	stall := cmp.Waited + service - hidden
	if stall < 0 {
		stall = 0
	}
	counter := dsu.PMemStall
	if cmp.Op == platform.Data {
		counter = dsu.DMemStall
	}
	c.bank.Add(counter, stall)

	if c.followup != nil {
		next := *c.followup
		c.followup = nil
		// The refill can only be seen by the arbiter on the next cycle;
		// stamp it there so the dead cycle is not misaccounted as
		// contention wait.
		c.x.Issue(now+1, next)
		return
	}
	c.pend = nil
	c.ph = phaseReady
}
