package tricore

import (
	"testing"

	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sri"
	"repro/internal/trace"
)

// runAlone executes src on a single core of the given kind and returns the
// core after completion.
func runAlone(t *testing.T, kind Kind, src trace.Source) *Core {
	t.Helper()
	lat := platform.TC27xLatencies()
	x := sri.New(3)
	c := MustNew(Config{Index: 1, Kind: kind}, &lat, x, src)
	for now := int64(0); now < 1_000_000; now++ {
		c.Tick(now)
		for _, cmp := range x.Tick(now) {
			c.Complete(now, cmp)
		}
		if c.Done() {
			return c
		}
	}
	t.Fatal("core did not finish")
	return nil
}

func TestKindString(t *testing.T) {
	if TC16P.String() != "TC1.6P" || TC16E.String() != "TC1.6E" {
		t.Error("kind strings wrong")
	}
	if Kind(5).String() != "Kind(5)" {
		t.Error("invalid kind string")
	}
}

func TestNewValidation(t *testing.T) {
	lat := platform.TC27xLatencies()
	x := sri.New(2)
	if _, err := New(Config{Index: 5}, &lat, x, trace.NewSlice(nil)); err == nil {
		t.Error("index beyond crossbar accepted")
	}
	if _, err := New(Config{Index: 0, Kind: Kind(9)}, &lat, x, trace.NewSlice(nil)); err == nil {
		t.Error("unknown kind accepted")
	}
	var bad platform.LatencyTable
	if _, err := New(Config{Index: 0}, &bad, x, trace.NewSlice(nil)); err == nil {
		t.Error("invalid latency table accepted")
	}
}

func TestScratchpadAccessesStayLocal(t *testing.T) {
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Fetch, Addr: platform.PSPRAddr(1, 0)},
		{Kind: trace.Load, Addr: platform.DSPRAddr(1, 0x10)},
		{Kind: trace.Store, Addr: platform.DSPRAddr(1, 0x20)},
	})
	c := runAlone(t, TC16P, src)
	r := c.Counters()
	if r.CCNT != 3 {
		t.Errorf("CCNT = %d, want 3 (one cycle per scratchpad access)", r.CCNT)
	}
	if r.PS != 0 || r.DS != 0 || r.PM != 0 || r.DMC != 0 || r.DMD != 0 {
		t.Errorf("scratchpad run touched SRI counters: %v", r)
	}
}

func TestGapCyclesCount(t *testing.T) {
	src := trace.NewSlice([]trace.Access{
		{Gap: 5, Kind: trace.Load, Addr: platform.DSPRAddr(1, 0)},
		{Gap: 3, Kind: trace.Load, Addr: platform.DSPRAddr(1, 4)},
	})
	c := runAlone(t, TC16P, src)
	if r := c.Counters(); r.CCNT != 5+1+3+1 {
		t.Errorf("CCNT = %d, want 10", r.CCNT)
	}
}

func TestUncachedLMULoadStallMatchesTable2(t *testing.T) {
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Load, Addr: platform.Uncached(platform.LMUBase)},
	})
	c := runAlone(t, TC16P, src)
	r := c.Counters()
	// Table 2: cs^{lmu,da} = 10 per access.
	if r.DS != 10 {
		t.Errorf("DS = %d, want 10", r.DS)
	}
	if r.PS != 0 {
		t.Errorf("PS = %d for a data access", r.PS)
	}
	// One dispatch cycle + 11 cycles blocked on the 11-cycle transaction.
	if r.CCNT != 12 {
		t.Errorf("CCNT = %d, want 12", r.CCNT)
	}
}

func TestPerTargetStallCalibration(t *testing.T) {
	// One isolated access per (target, op) path must charge exactly the
	// Table 2 minimum stall to the right counter.
	lat := platform.TC27xLatencies()
	cases := []struct {
		name  string
		acc   trace.Access
		stall int64
		data  bool
	}{
		{"pf0 code", trace.Access{Kind: trace.Fetch, Addr: platform.Uncached(platform.PFlash0Base)}, 6, false},
		{"pf1 code", trace.Access{Kind: trace.Fetch, Addr: platform.Uncached(platform.PFlash1Base)}, 6, false},
		{"lmu code", trace.Access{Kind: trace.Fetch, Addr: platform.Uncached(platform.LMUBase)}, 11, false},
		{"pf0 data", trace.Access{Kind: trace.Load, Addr: platform.Cached(platform.PFlash0Base)}, 11, true},
		{"pf1 data", trace.Access{Kind: trace.Load, Addr: platform.Cached(platform.PFlash1Base)}, 11, true},
		{"lmu data", trace.Access{Kind: trace.Store, Addr: platform.Uncached(platform.LMUBase)}, 10, true},
		{"dfl data", trace.Access{Kind: trace.Load, Addr: platform.DFlashBase}, 42, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := runAlone(t, TC16P, trace.NewSlice([]trace.Access{tc.acc}))
			r := c.Counters()
			got, other := r.PS, r.DS
			if tc.data {
				got, other = r.DS, r.PS
			}
			if got != tc.stall {
				t.Errorf("stall = %d, want %d", got, tc.stall)
			}
			if other != 0 {
				t.Errorf("other-class stall counter = %d, want 0", other)
			}
			reg := platform.Decode(tc.acc.Addr)
			op := platform.Code
			if tc.acc.IsData() {
				op = platform.Data
			}
			wantCCNT := 1 + lat.MaxLatency(reg.Target, op)
			if r.CCNT != wantCCNT {
				t.Errorf("CCNT = %d, want %d", r.CCNT, wantCCNT)
			}
		})
	}
}

func TestICacheFiltersFetches(t *testing.T) {
	a := platform.PFlash0Base // cacheable code
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Fetch, Addr: a},
		{Kind: trace.Fetch, Addr: a + 4},  // same line: hit
		{Kind: trace.Fetch, Addr: a + 28}, // same line: hit
		{Kind: trace.Fetch, Addr: a + 32}, // next line: miss
	})
	c := runAlone(t, TC16P, src)
	r := c.Counters()
	if r.PM != 2 {
		t.Errorf("PM = %d, want 2 (two line fills)", r.PM)
	}
	if r.PS != 2*6 {
		t.Errorf("PS = %d, want 12 (two misses at cs=6)", r.PS)
	}
	hits, mc, _ := c.ICacheStats()
	if hits != 2 || mc != 2 {
		t.Errorf("icache stats = %d hits / %d misses, want 2/2", hits, mc)
	}
}

func TestDCacheCleanMiss(t *testing.T) {
	a := platform.LMUBase // cacheable data
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Load, Addr: a},
		{Kind: trace.Load, Addr: a + 4}, // hit
	})
	c := runAlone(t, TC16P, src)
	r := c.Counters()
	if r.DMC != 1 || r.DMD != 0 {
		t.Errorf("DMC/DMD = %d/%d, want 1/0", r.DMC, r.DMD)
	}
	if r.DS != 10 {
		t.Errorf("DS = %d, want 10 (one lmu refill)", r.DS)
	}
}

func TestDirtyMissLMUFoldsIntoOneTransaction(t *testing.T) {
	// Three cacheable LMU lines mapping to the same D-cache set (128
	// sets x 32B lines: stride 4096). The first is dirtied by a store;
	// filling the third evicts it.
	base := platform.LMUBase
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Store, Addr: base},       // miss clean, allocate dirty
		{Kind: trace.Load, Addr: base + 4096}, // miss clean, second way
		{Kind: trace.Load, Addr: base + 8192}, // evicts dirty line
	})
	c := runAlone(t, TC16P, src)
	r := c.Counters()
	if r.DMC != 2 || r.DMD != 1 {
		t.Errorf("DMC/DMD = %d/%d, want 2/1", r.DMC, r.DMD)
	}
	// Stalls: two clean refills at 10 each, plus the folded dirty miss:
	// 21-cycle transaction with 1 hidden cycle = 20.
	if r.DS != 10+10+20 {
		t.Errorf("DS = %d, want 40", r.DS)
	}
}

func TestDirtyMissCrossTargetIsTwoTransactions(t *testing.T) {
	// Dirty LMU victim evicted by a pf0 refill: write-back to lmu (cs 10)
	// then refill from pf0 (cs 11).
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Store, Addr: platform.LMUBase},                            // set 0, dirty
		{Kind: trace.Load, Addr: platform.Cached(platform.PFlash0Base)},        // set 0, way 2
		{Kind: trace.Load, Addr: platform.Cached(platform.PFlash0Base) + 4096}, // set 0, evicts lmu line
	})
	c := runAlone(t, TC16P, src)
	r := c.Counters()
	if r.DMD != 1 {
		t.Errorf("DMD = %d, want 1", r.DMD)
	}
	// DS = store lmu refill 10 + pf0 refill 11 + (write-back 10 + refill 11).
	if r.DS != 10+11+10+11 {
		t.Errorf("DS = %d, want 42", r.DS)
	}
}

func TestE16StoresBypassDRB(t *testing.T) {
	// Every cacheable store on the 1.6E is written through: two stores to
	// the same line are two SRI transactions and never dirty anything.
	a := platform.LMUBase
	src := trace.NewSlice([]trace.Access{
		{Kind: trace.Store, Addr: a},
		{Kind: trace.Store, Addr: a + 4},
		{Kind: trace.Load, Addr: a + 8},  // DRB fill
		{Kind: trace.Load, Addr: a + 12}, // DRB hit
	})
	c := runAlone(t, TC16E, src)
	r := c.Counters()
	if r.DMD != 0 {
		t.Errorf("DMD = %d on a 1.6E", r.DMD)
	}
	if r.DMC != 1 {
		t.Errorf("DMC = %d, want 1 (the load fill)", r.DMC)
	}
	// DS: two write-throughs at 10 + one refill at 10.
	if r.DS != 30 {
		t.Errorf("DS = %d, want 30", r.DS)
	}
}

func TestUnmappedAddressPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unmapped access did not panic")
		}
	}()
	runAlone(t, TC16P, trace.NewSlice([]trace.Access{{Kind: trace.Load, Addr: 0xDEAD0000}}))
}

func TestCompleteWhileIdlePanics(t *testing.T) {
	lat := platform.TC27xLatencies()
	x := sri.New(2)
	c := MustNew(Config{Index: 0}, &lat, x, trace.NewSlice(nil))
	defer func() {
		if recover() == nil {
			t.Error("Complete on idle core did not panic")
		}
	}()
	c.Complete(0, sri.Completion{Master: 0})
}

func TestResetCountersKeepsCacheState(t *testing.T) {
	a := platform.PFlash0Base
	lat := platform.TC27xLatencies()
	x := sri.New(2)
	c := MustNew(Config{Index: 0, Kind: TC16P}, &lat, x, trace.NewSlice([]trace.Access{
		{Kind: trace.Fetch, Addr: a},
		{Kind: trace.Fetch, Addr: a + 4},
	}))
	for now := int64(0); !c.Done(); now++ {
		c.Tick(now)
		for _, cmp := range x.Tick(now) {
			c.Complete(now, cmp)
		}
	}
	c.ResetCounters()
	if r := c.Counters(); r != (dsu.Readings{}) {
		t.Errorf("counters after reset = %v", r)
	}
}
