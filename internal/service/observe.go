package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// This file is the daemon's observability surface: the per-server metric
// set behind GET /metrics and /v1/stats, the per-endpoint instrumentation
// middleware (request counting, latency histograms, slow-request logging),
// the X-Wcet-Trace request-tracing contract, and the SSE stats stream the
// dashboard consumes.
//
//	GET /metrics          Prometheus text exposition (server + process metrics)
//	GET /v2/stats/stream  SSE: periodic JSON snapshots ({stats, metrics})
//	GET /v2/dashboard     embedded single-file live dashboard
//
// Tracing contract: POST an analysis request with the header
// `X-Wcet-Trace: 1` and the response becomes {"response": <the usual
// payload>, "trace": <span tree>} with the trace ID echoed in
// X-Wcet-Trace-Id. Without the header the payload is byte-identical to
// an untraced server — the /v1 golden fixtures pin that.

// TraceHeader is the request header that asks for an inline span tree;
// TraceIDHeader carries the trace's ID on the response.
const (
	TraceHeader   = "X-Wcet-Trace"
	TraceIDHeader = "X-Wcet-Trace-Id"
)

// serverMetrics is one Server's metric set, registered on a per-server
// registry so concurrently constructed servers (tests) never collide;
// GET /metrics serves this registry followed by the process-wide
// telemetry.Default() one (solver, analyzer, campaign, tabstore, calib).
type serverMetrics struct {
	reg *telemetry.Registry

	requests *telemetry.CounterVec   // wcetd_requests_total{endpoint}
	latency  *telemetry.HistogramVec // wcetd_request_seconds{endpoint}

	accepted   *telemetry.Counter // wcetd_accepted_total
	rejected   *telemetry.Counter // wcetd_rejected_overload_total
	canceled   *telemetry.Counter // wcetd_canceled_total
	batchItems *telemetry.Counter // wcetd_batch_items_total
	inFlight   *telemetry.Gauge   // wcetd_in_flight

	cacheHits       *telemetry.Counter    // wcetd_cache_hits_total
	cacheMisses     *telemetry.Counter    // wcetd_cache_misses_total
	cacheEvictions  *telemetry.Counter    // wcetd_cache_evictions_total
	cacheContention *telemetry.CounterVec // wcetd_cache_shard_contention_total{shard}
	dedup           *telemetry.Counter    // wcetd_dedup_total

	promotes      *telemetry.Counter // wcetd_table_promotes_total
	traces        *telemetry.Counter // wcetd_traces_total
	slow          *telemetry.Counter // wcetd_slow_requests_total
	streamClients *telemetry.Gauge   // wcetd_stream_clients

	campaignStreams *telemetry.Gauge // wcetd_campaign_stream_clients
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("wcetd_requests_total",
			"HTTP requests received, by endpoint.", "endpoint"),
		latency: reg.HistogramVec("wcetd_request_seconds",
			"End-to-end request latency, by endpoint.", "endpoint", nil),
		accepted: reg.Counter("wcetd_accepted_total",
			"Requests admitted past admission control."),
		rejected: reg.Counter("wcetd_rejected_overload_total",
			"Requests rejected 429 because the queue was full."),
		canceled: reg.Counter("wcetd_canceled_total",
			"Requests abandoned by deadline or client cancellation."),
		batchItems: reg.Counter("wcetd_batch_items_total",
			"Individual cells received inside /v1/batch requests."),
		inFlight: reg.Gauge("wcetd_in_flight",
			"Requests currently past admission control."),
		cacheHits: reg.Counter("wcetd_cache_hits_total",
			"Result-cache hits."),
		cacheMisses: reg.Counter("wcetd_cache_misses_total",
			"Result-cache misses (each one schedules an evaluation)."),
		cacheEvictions: reg.Counter("wcetd_cache_evictions_total",
			"Result-cache evictions (CLOCK second-chance sweep)."),
		cacheContention: reg.CounterVec("wcetd_cache_shard_contention_total",
			"Result-cache lock acquisitions that had to wait, by shard.", "shard"),
		dedup: reg.Counter("wcetd_dedup_total",
			"Requests that joined an identical in-flight evaluation (singleflight)."),
		promotes: reg.Counter("wcetd_table_promotes_total",
			"Serving-table promotions (hot swaps)."),
		traces: reg.Counter("wcetd_traces_total",
			"Requests that asked for and received an inline trace."),
		slow: reg.Counter("wcetd_slow_requests_total",
			"Requests slower than the configured slow-request threshold."),
		streamClients: reg.Gauge("wcetd_stream_clients",
			"Currently connected /v2/stats/stream clients."),
		campaignStreams: reg.Gauge("wcetd_campaign_stream_clients",
			"Currently connected /v2/campaigns/{id}/stream clients."),
	}
}

// instrument wraps one endpoint handler with request counting, latency
// observation, tracing and slow-request logging. traceable marks the
// analysis endpoints: they always run under a trace (so a slow request
// can be logged with its span tree) and return it inline when the client
// sends `X-Wcet-Trace: 1`; cheap read-only endpoints skip trace setup
// entirely.
func (s *Server) instrument(endpoint string, traceable bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.With(endpoint).Inc()
		start := time.Now()

		var tr *telemetry.Trace
		var finished *telemetry.TraceJSON
		if traceable {
			ctx, t := telemetry.NewTrace(r.Context(), endpoint)
			tr = t
			r = r.WithContext(ctx)
		}
		headerRequested := tr != nil && r.Header.Get(TraceHeader) == "1"
		status := 0
		if headerRequested {
			rec := &traceRecorder{header: make(http.Header)}
			h(rec, r)
			finished = tr.Finish()
			status = rec.status
			s.metrics.traces.Inc()
			writeTraced(w, rec, tr.ID, finished)
		} else if tr != nil {
			// Tail-sampling needs the status even when the client did not
			// ask for the trace; the recorder passes bytes through
			// unbuffered, so untraced responses stay byte-identical.
			rec := &statusRecorder{ResponseWriter: w}
			h(rec, r)
			finished = tr.Finish()
			status = rec.status
		} else {
			h(w, r)
		}

		elapsed := time.Since(start)
		if finished != nil {
			s.maybeStoreTrace(endpoint, finished, status, elapsed, headerRequested)
		}
		s.metrics.latency.With(endpoint).Observe(elapsed)
		if s.cfg.SlowRequestThreshold > 0 && elapsed >= s.cfg.SlowRequestThreshold &&
			endpoint != "v2_stats_stream" && endpoint != "v2_campaign_stream" {
			s.metrics.slow.Inc()
			// Attr construction (and the span-tree marshal in particular)
			// dwarfs the request itself when the threshold is set low, so
			// skip it entirely when nothing would be emitted.
			if s.logger.Enabled(r.Context(), slog.LevelWarn) {
				attrs := []any{
					slog.String("endpoint", endpoint),
					slog.Duration("elapsed", elapsed),
				}
				if finished != nil {
					attrs = append(attrs, slog.String("traceId", finished.ID))
					if spans, err := json.Marshal(finished.Root); err == nil {
						attrs = append(attrs, slog.String("spans", string(spans)))
					}
				}
				s.logger.Warn("slow request", attrs...)
			}
		}
	}
}

// statusRecorder captures the response status without buffering; the
// tail-sampling path needs to know whether a request failed server-side
// while leaving the bytes on the wire untouched.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// traceRecorder buffers a traced request's response so the envelope can
// wrap it. Analysis responses are small JSON documents, so buffering one
// costs less than the solve that produced it.
type traceRecorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (r *traceRecorder) Header() http.Header { return r.header }

func (r *traceRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *traceRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(b)
}

// tracedEnvelope is the wire shape of a traced response: the exact bytes
// the endpoint would have sent, wrapped beside the span tree.
type tracedEnvelope struct {
	Response json.RawMessage      `json:"response"`
	Trace    *telemetry.TraceJSON `json:"trace"`
}

// writeTraced replays a recorded response wrapped in the trace envelope,
// preserving the recorded status code. The envelope is assembled by
// splicing, not re-marshalling: the recorded bytes appear verbatim under
// "response", so a traced response body is exactly the untraced one.
func writeTraced(w http.ResponseWriter, rec *traceRecorder, id string, trace *telemetry.TraceJSON) {
	body := bytes.TrimSpace(rec.buf.Bytes())
	if len(body) == 0 || !json.Valid(body) {
		// Every endpoint emits JSON; guard anyway so a malformed body
		// cannot produce an invalid envelope.
		raw, _ := json.Marshal(string(body))
		body = raw
	}
	tj, err := json.Marshal(trace)
	if err != nil {
		tj = []byte("null")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceIDHeader, id)
	if rec.status != 0 && rec.status != http.StatusOK {
		w.WriteHeader(rec.status)
	}
	fmt.Fprintf(w, "{\"response\":%s,\"trace\":%s}\n", body, tj)
}

// handleMetrics serves the Prometheus exposition: this server's metrics
// followed by the process-wide ones.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	telemetry.Handler(s.metrics.reg, telemetry.Default()).ServeHTTP(w, r)
}

// streamSnapshot is one SSE event's payload.
type streamSnapshot struct {
	// UnixMs is the snapshot's timestamp (milliseconds since epoch).
	UnixMs int64 `json:"unixMs"`
	// Stats is the /v1/stats payload.
	Stats Stats `json:"stats"`
	// Metrics flattens both registries (see telemetry.Registry.Snapshot).
	Metrics map[string]float64 `json:"metrics"`
}

func (s *Server) snapshotStream() streamSnapshot {
	merged := s.metrics.reg.Snapshot()
	for k, v := range telemetry.Default().Snapshot() {
		merged[k] = v
	}
	return streamSnapshot{
		UnixMs:  time.Now().UnixMilli(),
		Stats:   s.StatsSnapshot(),
		Metrics: merged,
	}
}

// Stream cadence bounds: the floor keeps a client from turning the
// snapshot path into a busy loop, the ceiling keeps a typo'd interval
// (3600000) from producing a stream that looks dead for an hour.
const (
	streamIntervalFloor = 100 * time.Millisecond
	streamIntervalCeil  = 60 * time.Second
)

// parseStreamInterval validates the ?interval query parameter
// (milliseconds): empty selects a second; non-numeric or non-positive
// values are rejected; the result is clamped to [floor, ceiling].
func parseStreamInterval(q string) (time.Duration, error) {
	if q == "" {
		return time.Second, nil
	}
	ms, err := strconv.Atoi(q)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("interval must be a positive millisecond count, got %q", q)
	}
	d := time.Duration(ms) * time.Millisecond
	if d < streamIntervalFloor {
		d = streamIntervalFloor
	}
	if d > streamIntervalCeil {
		d = streamIntervalCeil
	}
	return d, nil
}

// handleStatsStream serves /v2/stats/stream: an SSE stream of periodic
// `event: stats` telemetry snapshots plus `event: alert` frames when an
// SLO starts burning. `interval` (milliseconds, default 1000, clamped to
// [100ms, 60s]) tunes the snapshot cadence. On connect, currently firing
// alerts are replayed as alert frames so a late subscriber still sees the
// incident. The stream ends when the client disconnects or the server
// begins graceful shutdown — open streams must not hold Shutdown hostage.
func (s *Server) handleStatsStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	interval, err := parseStreamInterval(r.URL.Query().Get("interval"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	s.metrics.streamClients.Add(1)
	defer s.metrics.streamClients.Add(-1)

	sendEvent := func(event string, v any) bool {
		payload, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !sendEvent("stats", s.snapshotStream()) {
		return
	}
	alerts, cancelAlerts := s.subscribeAlerts()
	defer cancelAlerts()
	// Replay the currently firing alerts so a freshly (re)connected
	// dashboard shows the banner without waiting for the next transition.
	active, _ := s.sloEngine.Alerts()
	for _, a := range active {
		if !sendEvent("alert", a) {
			return
		}
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streamDone:
			return
		case a := <-alerts:
			if !sendEvent("alert", a) {
				return
			}
		case <-tick.C:
			if !sendEvent("stats", s.snapshotStream()) {
				return
			}
		}
	}
}

// LogSummary emits the shutdown stats line: one structured record with
// the counters an operator wants in the log tail after a drain.
// cmd/wcetd calls it once the graceful Shutdown completes.
func (s *Server) LogSummary() {
	st := s.StatsSnapshot()
	s.logger.Info("final stats",
		slog.Int64("accepted", st.Accepted),
		slog.Int64("rejectedOverload", st.RejectedOverload),
		slog.Int64("canceled", st.Canceled),
		slog.Int64("singleRequests", st.SingleRequests),
		slog.Int64("batchRequests", st.BatchRequests),
		slog.Int64("batchItems", st.BatchItems),
		slog.Int64("v2Requests", st.V2Requests),
		slog.Int64("cacheHits", st.Cache.Hits),
		slog.Int64("cacheMisses", st.Cache.Misses),
		slog.Int64("dedup", st.Cache.Dedup),
		slog.String("servingTable", st.ServingTable),
	)
}
