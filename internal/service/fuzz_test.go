package service

import (
	"bytes"
	"reflect"
	"testing"

	"repro/wcet"
)

// FuzzV2Prepare checks the /v2/analyze front door is total: arbitrary
// wire bytes either fail strict decoding, fail Prepare with an error, or
// prepare into an SDK request — never a panic — and Prepare is
// deterministic (two calls on the same decoded request agree), which the
// serving layer's canonical-request cache key depends on.
func FuzzV2Prepare(f *testing.F) {
	// Seeds: the golden /v1 conversations (every v1 body is a valid v2
	// body) plus the v2-only shapes — model selection, templates, exact
	// PTACs, table refs — and near-misses for each.
	for _, g := range goldenRequests {
		f.Add(g.body)
	}
	f.Add(`{
  "scenario": 1,
  "models": ["ftc", "ilpPtac"],
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}`)
	f.Add(`{
  "scenario": 2,
  "models": ["templatePtac"],
  "analysed":   {"CCNT": 301000, "PS": 40000, "DS": 51000, "PM": 6100, "DMC": 1200, "DMD": 400},
  "templates": [{"name": "brakeCtl", "maxRequests": {"pf0/co": 120, "lmu/da": 40}}]
}`)
	f.Add(`{
  "scenario": 1,
  "models": ["ideal"],
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "analysedPtac": {"pf0/co": 300, "dfl/da": 25},
  "contenderPtacs": [{"pf1/co": 500}]
}`)
	f.Add(`{"scenario": 1, "table": "tc27x/default", "analysed": {"CCNT": 1000, "PS": 100, "DS": 100}}`)
	f.Add(`{"scenario": 7, "analysed": {"CCNT": 1000}}`)
	f.Add(`{"scenario": 1, "stallMode": "banana"}`)
	f.Add(`{"scenario": 1, "models": [""]}`)
	f.Add(`{"scenario": 1, "models": ["ftc", "fTC"]}`)
	f.Add(`{"scenario": 1, "analysedPtac": {"pf9/co": -1}}`)
	f.Add(`{"scenario": 1, "unknownField": 1}`)
	f.Add(`{"scenario": 1} {"scenario": 2}`)
	f.Add(`[]`)

	reg := wcet.DefaultRegistry()
	f.Fuzz(func(t *testing.T, in string) {
		var req V2Request
		if err := decodeStrict(bytes.NewReader([]byte(in)), &req); err != nil {
			return
		}
		first, err := req.Prepare(reg)
		if err != nil {
			return
		}
		second, err := req.Prepare(reg)
		if err != nil {
			t.Fatalf("Prepare succeeded then failed on the same request: %v", err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("Prepare is nondeterministic:\n first: %+v\nsecond: %+v", first, second)
		}
	})
}
