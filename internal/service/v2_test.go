package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dsu"
	"repro/wcet"
)

func postV2(t *testing.T, url, body string) (*http.Response, V2Response) {
	t.Helper()
	resp, err := http.Post(url+"/v2/analyze", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out V2Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

const v2Analysed = `"analysed": {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]`

// TestV2AnalyzeSubset asserts the core v2 contract: the caller gets
// exactly the models it asked for, in request order, labelled with
// canonical names.
func TestV2AnalyzeSubset(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, out := postV2(t, ts.URL, `{
  "scenario": 1,
  "models": ["ilpPtac", "ftcFsb"],
  `+v2Analysed+`
}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if len(out.Estimates) != 2 {
		t.Fatalf("estimates = %+v, want exactly the 2 selected", out.Estimates)
	}
	if out.Estimates[0].Name != "ilpPtac" || out.Estimates[1].Name != "ftcFsb" {
		t.Errorf("model order = %s, %s; want ilpPtac, ftcFsb", out.Estimates[0].Name, out.Estimates[1].Name)
	}
	if out.Estimates[1].Model != "fTC-FSB" {
		t.Errorf("display name = %q, want fTC-FSB", out.Estimates[1].Model)
	}

	// A single-model selection returns one estimate only.
	resp, out = postV2(t, ts.URL, `{"scenario": 1, "models": ["ftc"], `+v2Analysed+`}`)
	if resp.StatusCode != http.StatusOK || len(out.Estimates) != 1 || out.Estimates[0].Name != "ftc" {
		t.Errorf("single-model selection: status %s, estimates %+v", resp.Status, out.Estimates)
	}

	// Empty model list defaults to the v1 pair.
	resp, out = postV2(t, ts.URL, `{"scenario": 1, `+v2Analysed+`}`)
	if resp.StatusCode != http.StatusOK || len(out.Estimates) != 2 ||
		out.Estimates[0].Name != "ftc" || out.Estimates[1].Name != "ilpPtac" {
		t.Errorf("default selection: status %s, estimates %+v", resp.Status, out.Estimates)
	}
}

// TestV2UnknownModelListsRegistry asserts the self-diagnosing error the
// registry fold buys: a typo'd model name is a 400 naming the registered
// set.
func TestV2UnknownModelListsRegistry(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v2/analyze", "application/json",
		bytes.NewReader([]byte(`{"scenario": 1, "models": ["ilpptacc"], `+v2Analysed+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %s, want 400", resp.Status)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ilpptacc", "registered:", "ftc", "ilpPtac", "ideal"} {
		if !strings.Contains(eb.Error, want) {
			t.Errorf("error %q does not mention %s", eb.Error, want)
		}
	}
}

// TestV2TemplatesAndPTACs drives the wire encodings that make the
// template and ideal models reachable over HTTP.
func TestV2TemplatesAndPTACs(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, out := postV2(t, ts.URL, `{
  "scenario": 1,
  "models": ["templatePtac"],
  "analysed": {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "templates": [{"name": "pledged", "maxRequests": {"pf0/co": 400, "lmu/da": 900}}]
}`)
	if resp.StatusCode != http.StatusOK || len(out.Estimates) != 1 || out.Estimates[0].ContentionCycles <= 0 {
		t.Errorf("templatePtac over wire: status %s, estimates %+v", resp.Status, out.Estimates)
	}

	resp, out = postV2(t, ts.URL, `{
  "scenario": 1,
  "models": ["ideal"],
  "analysed": {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "analysedPtac": {"pf0/co": 1000, "lmu/da": 2000},
  "contenderPtacs": [{"pf0/co": 300, "lmu/da": 700}]
}`)
	if resp.StatusCode != http.StatusOK || len(out.Estimates) != 1 || out.Estimates[0].ContentionCycles <= 0 {
		t.Errorf("ideal over wire: status %s, estimates %+v", resp.Status, out.Estimates)
	}

	// A negative PTAC count is a 400 pre-admission, not a solver error.
	resp3, err := http.Post(ts.URL+"/v2/analyze", "application/json", bytes.NewReader([]byte(`{
  "scenario": 1, "models": ["ideal"],
  "analysed": {"CCNT": 1000},
  "analysedPtac": {"pf0/co": -5}, "contenderPtacs": [{"pf0/co": 1}]
}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("negative PTAC count: status %s, want 400", resp3.Status)
	}

	// A bad access path is a 400 with the path named.
	resp2, err := http.Post(ts.URL+"/v2/analyze", "application/json", bytes.NewReader([]byte(`{
  "scenario": 1, "models": ["ideal"],
  "analysed": {"CCNT": 1000},
  "analysedPtac": {"pf9/co": 1}, "contenderPtacs": [{"pf0/co": 1}]
}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("illegal access path: status %s, want 400", resp2.Status)
	}
}

// TestV2RTAAnyModel asserts v2 lifts the v1 restriction: the RTA verdict
// can ride on any selected model's bound.
func TestV2RTAAnyModel(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, out := postV2(t, ts.URL, `{
  "scenario": 1,
  "models": ["ftcFsb"],
  `+v2Analysed+`,
  "rta": {
    "model": "ftcFsb",
    "task": {"name": "airbagCtl", "periodCycles": 2000000, "priority": 2}
  }
}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if out.RTA == nil || out.RTA.Model != "ftcFsb" || out.RTA.WCETCycles != out.Estimates[0].WCETCycles {
		t.Errorf("v2 RTA verdict = %+v (estimates %+v)", out.RTA, out.Estimates)
	}
}

// TestV2RTAModelMustBeSelected asserts an rta.model outside the selected
// model set is rejected pre-admission as a 400 — not after burning a full
// model fan-out.
func TestV2RTAModelMustBeSelected(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v2/analyze", "application/json", bytes.NewReader([]byte(`{
  "scenario": 1,
  "models": ["ftcFsb"],
  `+v2Analysed+`,
  "rta": {"model": "ftc", "task": {"periodCycles": 2000000, "priority": 2}}
}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %s, want 400", resp.Status)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "not among") {
		t.Errorf("error %q does not explain the model/selection mismatch", eb.Error)
	}
}

// TestCanonicalKeyV2Invariance pins the alias- and order-collapsing the
// cache documentation promises: rta.model alias spellings, template order
// and contender-PTAC order must not split cache entries.
func TestCanonicalKeyV2Invariance(t *testing.T) {
	reg := wcet.DefaultRegistry()
	base := V2Request{
		Scenario: 1,
		Models:   []string{"ilpPtac"},
		Analysed: dsu.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		RTA: &RTARequest{
			Model: "ILP-PTAC",
			Task:  RTATask{PeriodCycles: 2_000_000, Priority: 2},
		},
	}
	alias := base
	alias.RTA = &RTARequest{Model: "ilpPtac", Task: base.RTA.Task}
	if CanonicalKeyV2(reg, base) != CanonicalKeyV2(reg, alias) {
		t.Error("rta.model alias spellings produced different cache keys")
	}

	// The v1 key collapses rta.model aliases too — v1 validation accepts
	// them, so distinct spellings must not split entries or re-solve.
	v1 := Request{Scenario: 1, Analysed: base.Analysed,
		RTA: &RTARequest{Model: "FTC", Task: RTATask{PeriodCycles: 2_000_000, Priority: 2}}}
	v1alias := v1
	v1alias.RTA = &RTARequest{Model: "ftc", Task: v1.RTA.Task}
	if CanonicalKey(v1) != CanonicalKey(v1alias) {
		t.Error("v1 rta.model alias spellings produced different cache keys")
	}

	// Custom-registry aliases collapse too when the server's registry is
	// threaded through (canonicalKeyReg), not just the default set.
	creg := wcet.NewRegistry()
	if err := creg.Register(wcet.NewModel("toy", func(_ context.Context, in wcet.Input) (wcet.Estimate, error) {
		return wcet.Estimate{Model: "toy"}, nil
	}), "speedy"); err != nil {
		t.Fatal(err)
	}
	c1 := v1
	c1.RTA = &RTARequest{Model: "speedy", Task: v1.RTA.Task}
	c2 := v1
	c2.RTA = &RTARequest{Model: "toy", Task: v1.RTA.Task}
	if canonicalKeyReg(creg, c1) != canonicalKeyReg(creg, c2) {
		t.Error("custom-registry alias spellings produced different cache keys")
	}

	tp1 := V2Template{Name: "a", MaxRequests: map[string]int64{"pf0/co": 400}}
	tp2 := V2Template{Name: "b", MaxRequests: map[string]int64{"lmu/da": 900}}
	fwd := base
	fwd.RTA = nil
	fwd.Templates = []V2Template{tp1, tp2}
	fwd.ContenderPTACs = []map[string]int64{{"pf0/co": 300}, {"lmu/da": 700}}
	rev := fwd
	rev.Templates = []V2Template{tp2, tp1}
	rev.ContenderPTACs = []map[string]int64{{"lmu/da": 700}, {"pf0/co": 300}}
	if CanonicalKeyV2(reg, fwd) != CanonicalKeyV2(reg, rev) {
		t.Error("template/contender-PTAC order produced different cache keys")
	}
}

// TestV2DuplicateModelSelection asserts alias-equivalent duplicates in the
// models list are a 400, not a silently shorter response.
func TestV2DuplicateModelSelection(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v2/analyze", "application/json",
		bytes.NewReader([]byte(`{"scenario": 1, "models": ["fTC", "ftc"], `+v2Analysed+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %s, want 400", resp.Status)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "duplicate model") {
		t.Errorf("error %q does not name the duplicate", eb.Error)
	}

	// An explicit empty entry is a 400, not a silent ilpPtac default.
	resp2, err := http.Post(ts.URL+"/v2/analyze", "application/json",
		bytes.NewReader([]byte(`{"scenario": 1, "models": [""], `+v2Analysed+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty model entry: status %s, want 400", resp2.Status)
	}
}

// TestV2OnlyRegistryServer asserts a registry without the v1 pair yields a
// working v2-only server instead of a construction-time panic.
func TestV2OnlyRegistryServer(t *testing.T) {
	reg := wcet.NewRegistry()
	if err := reg.Register(wcet.NewModel("toy", func(_ context.Context, in wcet.Input) (wcet.Estimate, error) {
		return wcet.Estimate{Model: "toy", IsolationCycles: in.Analysed.CCNT, ContentionCycles: 7}, nil
	})); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, out := postV2(t, ts.URL, `{"scenario": 1, "models": ["toy"], `+v2Analysed+`}`)
	if resp.StatusCode != http.StatusOK || len(out.Estimates) != 1 || out.Estimates[0].ContentionCycles != 7 {
		t.Errorf("v2-only server: status %s, estimates %+v", resp.Status, out.Estimates)
	}

	// /v1 on the same server fails per-request — it needs the built-ins.
	v1resp, err := http.Post(ts.URL+"/v1/wcet", "application/json",
		bytes.NewReader([]byte(`{"scenario": 1, `+v2Analysed+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	v1resp.Body.Close()
	if v1resp.StatusCode == http.StatusOK {
		t.Error("/v1 succeeded on a registry without the ftc/ilpPtac pair")
	}
}

// TestV2CacheAndAliasCollision asserts identical v2 requests hit the
// result cache, including when the second spelling uses aliases.
func TestV2CacheAndAliasCollision(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"scenario": 1, "models": ["ilpPtac"], ` + v2Analysed + `}`
	alias := `{"scenario": 1, "models": ["ILP-PTAC"], ` + v2Analysed + `}`
	if resp, _ := postV2(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %s", resp.Status)
	}
	if resp, _ := postV2(t, ts.URL, alias); resp.StatusCode != http.StatusOK {
		t.Fatalf("alias: %s", resp.Status)
	}
	st := srv.StatsSnapshot()
	if st.Cache.Hits < 1 {
		t.Errorf("alias spelling missed the cache: %+v", st.Cache)
	}
	if st.V2Requests != 2 {
		t.Errorf("v2Requests = %d, want 2", st.V2Requests)
	}
}

// TestV2Models asserts the discovery endpoint lists the registry.
func TestV2Models(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out V2ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(out.Models))
	for i, m := range out.Models {
		names[i] = m.Name
	}
	want := []string{"ftc", "ftcFsb", "ideal", "ilpPtac", "templatePtac"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("models = %v, want %v", names, want)
	}
}

// TestV2NewModelZeroEdits is the acceptance criterion end to end: a toy
// ContentionModel registered into a registry handed to the server via
// Config becomes servable through /v2/analyze — no change to the service
// package, no new endpoint, no switch to extend.
func TestV2NewModelZeroEdits(t *testing.T) {
	reg := wcet.NewDefaultRegistry()
	toy := wcet.NewModel("toy", func(_ context.Context, in wcet.Input) (wcet.Estimate, error) {
		return wcet.Estimate{Model: "toy-display", IsolationCycles: in.Analysed.CCNT, ContentionCycles: 4242}, nil
	})
	if err := reg.Register(toy, "TOY"); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{Registry: reg}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Discoverable.
	resp, err := http.Get(ts.URL + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	var models V2ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, m := range models.Models {
		if m.Name == "toy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered toy model not listed: %+v", models.Models)
	}

	// Servable, alone and next to a built-in, by alias too.
	hresp, out := postV2(t, ts.URL, `{"scenario": 1, "models": ["TOY", "ftc"], `+v2Analysed+`}`)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", hresp.Status)
	}
	if len(out.Estimates) != 2 || out.Estimates[0].Name != "toy" ||
		out.Estimates[0].ContentionCycles != 4242 || out.Estimates[0].WCETCycles != 157800+4242 {
		t.Errorf("toy over wire = %+v", out.Estimates)
	}

	// And /v1 on the same server stays the frozen pair.
	v1resp, err := http.Post(ts.URL+"/v1/wcet", "application/json",
		bytes.NewReader([]byte(`{"scenario": 1, `+v2Analysed+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer v1resp.Body.Close()
	var v1out Response
	if err := json.NewDecoder(v1resp.Body).Decode(&v1out); err != nil {
		t.Fatal(err)
	}
	if v1out.FTC.Model != "fTC" || v1out.ILP.Model != "ILP-PTAC" {
		t.Errorf("/v1 drifted on a custom-registry server: %+v", v1out)
	}
}
