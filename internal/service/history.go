package service

import (
	"fmt"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// This file wires the obs persistence layer into the server: the
// metrics-history sampler and its query endpoint, the SLO engine and
// alert fan-out, the stored-trace search endpoints, and the continuous
// profiler.
//
//	GET /v2/metrics/history?series=&from=&to=&step=  retained history of one series
//	GET /v2/metrics/history                          the retained series names
//	GET /v2/alerts                                   active + recently resolved SLO alerts
//	GET /v2/traces?endpoint=&min_ms=&since=&limit=   stored trace search
//	GET /v2/traces/{id}                              one stored trace's span tree

// buildInfoLabels extracts the build-identity labels once: module
// version, Go toolchain, and VCS revision when the binary was built from
// a checkout. Absent fields render as "unknown" so the label set is
// stable across build modes.
func buildInfoLabels() map[string]string {
	labels := map[string]string{
		"version":  "unknown",
		"go":       "unknown",
		"revision": "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return labels
	}
	if bi.Main.Version != "" {
		labels["version"] = bi.Main.Version
	}
	if bi.GoVersion != "" {
		labels["go"] = bi.GoVersion
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && kv.Value != "" {
			rev := kv.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			labels["revision"] = rev
		}
	}
	return labels
}

// openObservability builds the history store, SLO engine, trace store
// and profiler from the config. Called from New; panics on unusable
// state, matching the constructor's idiom for the other subsystems.
func (s *Server) openObservability() {
	metricsDir, tracesDir := "", ""
	if s.cfg.ObsDir != "" {
		metricsDir = filepath.Join(s.cfg.ObsDir, "metrics")
		tracesDir = filepath.Join(s.cfg.ObsDir, "traces")
	}
	db, err := obs.OpenTSDB(metricsDir, nil)
	if err != nil {
		panic(fmt.Sprintf("service: opening metrics history: %v", err))
	}
	s.history = db
	ts, err := obs.OpenTraceStore(tracesDir, s.cfg.TraceStoreEntries)
	if err != nil {
		panic(fmt.Sprintf("service: opening trace store: %v", err))
	}
	s.traceStore = ts
	if db.Dropped+ts.Dropped > 0 {
		s.logger.Warn("observability store recovered with torn tail",
			"droppedMetricsLines", db.Dropped, "droppedTraceLines", ts.Dropped)
	}

	if s.cfg.EnableOps && s.cfg.ObsDir != "" {
		p, err := obs.NewProfiler(filepath.Join(s.cfg.ObsDir, "profiles"), 10*time.Minute, 24, s.logger)
		if err != nil {
			panic(fmt.Sprintf("service: opening profiler: %v", err))
		}
		s.profiler = p
		p.Start()
	}

	eng, err := obs.NewEngine(db, s.cfg.SLOObjectives, s.onSLOFire)
	if err != nil {
		panic(fmt.Sprintf("service: building SLO engine: %v", err))
	}
	s.sloEngine = eng

	s.samplerWG.Add(1)
	go s.sampleLoop()
}

// closeObservability stops the sampler and syncs the stores.
func (s *Server) closeObservability() {
	s.samplerOnce.Do(func() { close(s.samplerDone) })
	s.samplerWG.Wait()
	if s.profiler != nil {
		s.profiler.Close()
	}
	s.history.Close()
	s.traceStore.Close()
}

// sampleLoop appends one merged registry snapshot per HistoryInterval
// and re-evaluates the SLO engine against the refreshed history.
func (s *Server) sampleLoop() {
	defer s.samplerWG.Done()
	tick := time.NewTicker(s.cfg.HistoryInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.samplerDone:
			return
		case <-tick.C:
			s.sampleOnce()
		}
	}
}

func (s *Server) sampleOnce() {
	now := time.Now().UnixMilli()
	merged := s.metrics.reg.Snapshot()
	for k, v := range telemetry.Default().Snapshot() {
		merged[k] = v
	}
	if err := s.history.Append(now, merged); err != nil {
		s.logger.Warn("metrics history append failed", "err", err)
	}
	s.sloEngine.Evaluate(now)
}

// onSLOFire handles one alert's transition into firing: a structured
// warning, an immediate profile capture, and fan-out to SSE streams.
func (s *Server) onSLOFire(a obs.Alert) {
	s.logger.Warn("slo burn",
		"slo", a.SLO, "severity", a.Severity,
		"burnShort", a.BurnShort, "burnLong", a.BurnLong,
		"threshold", a.Threshold, "windows", a.WindowShort+"/"+a.WindowLong)
	if s.profiler != nil {
		s.profiler.TriggerBurn(a.SLO + "-" + a.Severity)
	}
	s.alertMu.Lock()
	for ch := range s.alertSubs {
		select {
		case ch <- a:
		default: // a stalled stream must not block the evaluator
		}
	}
	s.alertMu.Unlock()
}

// subscribeAlerts registers an SSE stream for fired alerts; the returned
// cancel must be called when the stream ends.
func (s *Server) subscribeAlerts() (<-chan obs.Alert, func()) {
	ch := make(chan obs.Alert, 8)
	s.alertMu.Lock()
	s.alertSubs[ch] = struct{}{}
	s.alertMu.Unlock()
	return ch, func() {
		s.alertMu.Lock()
		delete(s.alertSubs, ch)
		s.alertMu.Unlock()
	}
}

// slowTraceBudgetPerSec caps how many tail-sampled slow traces are
// stored per second. Client-requested and error traces always store;
// the cap only applies to "slow" — when the whole fleet of requests
// crosses the threshold at once (a saturated server, or an operator who
// set -slow-request very low), storing a representative few per second
// keeps the diagnostic value without putting a marshal+disk append on
// every request's critical path.
const slowTraceBudgetPerSec = 32

// allowSlowTrace spends one unit of the per-second slow-trace budget.
// Lock-free and deliberately approximate: concurrent second rollovers
// may reset the counter more than once and admit a few extra traces,
// which is harmless — the budget is a throttle, not an invariant.
func (s *Server) allowSlowTrace(sec int64) bool {
	if s.slowTraceSec.Load() != sec {
		s.slowTraceSec.Store(sec)
		s.slowTraceN.Store(0)
	}
	return s.slowTraceN.Add(1) <= slowTraceBudgetPerSec
}

// maybeStoreTrace applies the tail-sampling policy to one finished
// request: keep the trace when the client asked for it, when the request
// was slow, or when it failed server-side — so the trace of an incident
// exists even though nobody sent the header.
func (s *Server) maybeStoreTrace(endpoint string, finished *telemetry.TraceJSON, status int, elapsed time.Duration, headerRequested bool) {
	if finished == nil {
		return
	}
	sampled := ""
	switch {
	case headerRequested:
		sampled = "header"
	case status >= 500:
		sampled = "error"
	case s.cfg.SlowRequestThreshold > 0 && elapsed >= s.cfg.SlowRequestThreshold:
		if !s.allowSlowTrace(time.Now().Unix()) {
			return
		}
		sampled = "slow"
	default:
		return
	}
	if status == 0 {
		status = http.StatusOK
	}
	err := s.traceStore.Put(&obs.StoredTrace{
		ID:         finished.ID,
		Endpoint:   endpoint,
		Status:     status,
		DurationMs: float64(finished.DurationUs) / 1000,
		UnixMs:     time.Now().UnixMilli(),
		Sampled:    sampled,
		Trace:      finished,
	})
	if err != nil {
		s.logger.Warn("trace store append failed", "err", err)
	}
}

// historyResponse is the GET /v2/metrics/history payload.
type historyResponse struct {
	Series string      `json:"series"`
	Points []obs.Point `json:"points"`
}

// handleMetricsHistory serves retained metrics history. With a `series`
// parameter (exact name, or prefix with a trailing '*' summed across
// matches) it returns that series' points over [from, to] (unix ms,
// optional) reduced to `step` (ms, optional); without one it lists the
// retained series names.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	q := r.URL.Query()
	series := q.Get("series")
	if series == "" {
		writeJSON(w, http.StatusOK, map[string][]string{"series": s.history.Series()})
		return
	}
	var from, to, step int64
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"from", &from}, {"to", &to}, {"step", &step}} {
		raw := q.Get(p.name)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("%s must be a non-negative millisecond count, got %q", p.name, raw))
			return
		}
		*p.dst = v
	}
	writeJSON(w, http.StatusOK, historyResponse{
		Series: series,
		Points: s.history.Query(series, from, to, step),
	})
}

// alertsResponse is the GET /v2/alerts payload.
type alertsResponse struct {
	Active     []obs.Alert     `json:"active"`
	Resolved   []obs.Alert     `json:"resolved"`
	Objectives []obs.Objective `json:"objectives"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	active, resolved := s.sloEngine.Alerts()
	writeJSON(w, http.StatusOK, alertsResponse{
		Active:     active,
		Resolved:   resolved,
		Objectives: s.sloEngine.Objectives(),
	})
}

// tracesResponse is the GET /v2/traces payload.
type tracesResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	q := r.URL.Query()
	var minMs float64
	if raw := q.Get("min_ms"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("min_ms must be a non-negative number, got %q", raw))
			return
		}
		minMs = v
	}
	var since int64
	if raw := q.Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("since must be a non-negative unix millisecond count, got %q", raw))
			return
		}
		since = v
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("limit must be a positive count, got %q", raw))
			return
		}
		limit = v
	}
	sums := s.traceStore.Query(q.Get("endpoint"), minMs, since, limit)
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{Traces: sums})
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v2/traces/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusNotFound, fmt.Errorf("trace id required"))
		return
	}
	st := s.traceStore.Get(id)
	if st == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no stored trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}
