package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/jobs"
)

// V2CampaignList is the GET /v2/campaigns response.
type V2CampaignList struct {
	Campaigns []jobs.Status `json:"campaigns"`
}

// handleCampaigns serves the /v2/campaigns collection: POST submits a
// job, GET lists jobs newest-first.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var spec jobs.Spec
		if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), &spec); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		st, err := s.jobs.Submit(spec, string(s.servingID()))
		if err != nil {
			jobError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, V2CampaignList{Campaigns: s.jobs.List()})
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST or GET required"))
	}
}

// routeCampaign dispatches /v2/campaigns/{id}[/stream|/artifact]. The
// stream endpoint gets its own instrument label so long-lived SSE
// connections are excluded from the slow-request log, like
// /v2/stats/stream.
func (s *Server) routeCampaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaign id required"))
		return
	}
	switch sub {
	case "":
		s.instrument("v2_campaigns_id", false, func(w http.ResponseWriter, r *http.Request) {
			s.handleCampaignByID(w, r, id)
		})(w, r)
	case "artifact":
		s.instrument("v2_campaign_artifact", false, func(w http.ResponseWriter, r *http.Request) {
			s.handleCampaignArtifact(w, r, id)
		})(w, r)
	case "stream":
		s.instrument("v2_campaign_stream", false, func(w http.ResponseWriter, r *http.Request) {
			s.handleCampaignStream(w, r, id)
		})(w, r)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign subresource %q", sub))
	}
}

// handleCampaignByID serves one job: GET status, DELETE cancel.
func (s *Server) handleCampaignByID(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodGet:
		st, err := s.jobs.Get(id)
		if err != nil {
			jobError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodDelete:
		st, err := s.jobs.Cancel(id)
		if err != nil {
			jobError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or DELETE required"))
	}
}

// handleCampaignArtifact serves the finished, content-verified results
// file. The bytes are re-hashed against the artifact's content address
// on every read, so a torn or tampered file is a 500, never a payload.
func (s *Server) handleCampaignArtifact(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	data, sum, err := s.jobs.Artifact(id)
	if err != nil {
		jobError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", `"`+sum+`"`)
	_, _ = w.Write(data)
}

// handleCampaignStream streams a job's progress over SSE: one "cell"
// event per completed cell and a final "state" event, each carrying its
// Seq as the SSE event ID. A reconnecting client sends Last-Event-ID
// (header, or lastEventId query parameter for plain curl) and receives
// exactly the missed suffix — the replay comes from the in-memory event
// log, which survives restarts because it is rebuilt from the
// checkpoint. The stream ends after the terminal event, on client
// disconnect, or when graceful shutdown closes streamDone.
func (s *Server) handleCampaignStream(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	afterSeq := 0
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("lastEventId")
	}
	if lastID != "" {
		n, err := strconv.Atoi(lastID)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("Last-Event-ID must be a non-negative integer, got %q", lastID))
			return
		}
		afterSeq = n
	}

	replay, live, cancel, err := s.jobs.Subscribe(id, afterSeq)
	if err != nil {
		jobError(w, err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	// Push the headers out even when there is nothing to replay yet, so
	// the client observes the stream as open immediately.
	fl.Flush()

	s.metrics.campaignStreams.Add(1)
	defer s.metrics.campaignStreams.Add(-1)

	send := func(ev jobs.Event) bool {
		payload, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload); err != nil {
			return false
		}
		fl.Flush()
		return ev.Type != "state"
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streamDone:
			// Graceful shutdown: tell the client the stream is pausing,
			// not that the job ended — it resumes via Last-Event-ID
			// against the restarted daemon.
			_, _ = fmt.Fprintf(w, "event: drain\ndata: {}\n\n")
			fl.Flush()
			return
		case ev, open := <-live:
			if !open {
				// Subscriber buffer overflowed and the manager dropped
				// us; the client reconnects with Last-Event-ID to
				// re-sync.
				return
			}
			if !send(ev) {
				return
			}
		}
	}
}

// jobError maps jobs-package errors onto HTTP statuses.
func jobError(w http.ResponseWriter, err error) {
	var gridErr *experiments.GridError
	switch {
	case errors.As(err, &gridErr):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, jobs.ErrTooManyJobs):
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, jobs.ErrNotFound), errors.Is(err, jobs.ErrNoArtifact):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrArtifactCorrupt):
		httpError(w, http.StatusInternalServerError, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}
