package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dsu"
)

// sampleRequest is a Table 6-flavoured request; variant perturbs the
// analysed readings so distinct variants are distinct cache keys.
func sampleRequest(variant int) Request {
	return Request{
		Scenario: 1,
		Analysed: dsu.Readings{
			CCNT: 157800 + int64(variant)*1000,
			PS:   18000,
			DS:   27000,
			PM:   3000,
		},
		Contenders: []dsu.Readings{
			{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
		},
	}
}

func rtaRequest() Request {
	req := sampleRequest(0)
	req.RTA = &RTARequest{
		Task: RTATask{Name: "uAnalysed", PeriodCycles: 2_000_000, Priority: 2},
		Others: []RTATask{
			{Name: "ctrl", WCETCycles: 50_000, PeriodCycles: 500_000, Priority: 1},
		},
	}
	return req
}

func encodeRequest(t testing.TB, req Request) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunCLIMatchesSeedBehaviour(t *testing.T) {
	var out bytes.Buffer
	if err := RunCLI(bytes.NewReader(encodeRequest(t, sampleRequest(0))), &out); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FTC.Model != "fTC" || resp.ILP.Model != "ILP-PTAC" {
		t.Errorf("unexpected models %q / %q", resp.FTC.Model, resp.ILP.Model)
	}
	if resp.FTC.WCETCycles < resp.ILP.WCETCycles {
		t.Errorf("fTC bound %d below ILP-PTAC bound %d", resp.FTC.WCETCycles, resp.ILP.WCETCycles)
	}
	if resp.RTA != nil {
		t.Error("RTA verdict present without an rta request")
	}
	if !strings.HasSuffix(out.String(), "}\n") {
		t.Error("output missing trailing newline")
	}
}

func TestEvaluateRTAVerdict(t *testing.T) {
	resp, err := Evaluate(rtaRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resp.RTA == nil {
		t.Fatal("no RTA verdict")
	}
	if resp.RTA.Model != "ilpPtac" {
		t.Errorf("default RTA model = %q, want ilpPtac", resp.RTA.Model)
	}
	if resp.RTA.WCETCycles != resp.ILP.WCETCycles {
		t.Errorf("RTA used WCET %d, want ILP bound %d", resp.RTA.WCETCycles, resp.ILP.WCETCycles)
	}
	if len(resp.RTA.Results) != 2 {
		t.Fatalf("got %d RTA results, want 2", len(resp.RTA.Results))
	}
	if !resp.RTA.Schedulable {
		t.Errorf("task set unexpectedly unschedulable: %+v", resp.RTA.Results)
	}
	// The fTC-based verdict must use the larger bound.
	req := rtaRequest()
	req.RTA.Model = "ftc"
	ftcResp, err := Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if ftcResp.RTA.WCETCycles != ftcResp.FTC.WCETCycles {
		t.Errorf("ftc RTA used WCET %d, want %d", ftcResp.RTA.WCETCycles, ftcResp.FTC.WCETCycles)
	}
}

func TestValidationRejects(t *testing.T) {
	cases := map[string]func(*Request){
		"scenario 0":         func(r *Request) { r.Scenario = 0 },
		"scenario 3":         func(r *Request) { r.Scenario = 3 },
		"bad stall mode":     func(r *Request) { r.StallMode = "fast" },
		"negative counter":   func(r *Request) { r.Analysed.PS = -1 },
		"stalls over CCNT":   func(r *Request) { r.Analysed.DS = r.Analysed.CCNT },
		"PM over CCNT":       func(r *Request) { r.Analysed.PM = r.Analysed.CCNT + 1 },
		"bad contender":      func(r *Request) { r.Contenders[0].PM = -3 },
		"bad rta model":      func(r *Request) { r.RTA = &RTARequest{Model: "edf"} },
		"rta other no wcet":  func(r *Request) { r.RTA = &RTARequest{Others: []RTATask{{Name: "x", PeriodCycles: 10}}} },
		"rta other negative": func(r *Request) { r.RTA = &RTARequest{Others: []RTATask{{Name: "x", WCETCycles: -1}}} },
	}
	for name, mutate := range cases {
		req := sampleRequest(0)
		mutate(&req)
		if err := req.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := Evaluate(req); err == nil {
			t.Errorf("%s: evaluated", name)
		}
	}
}

func TestDecodeRequestRejectsUnknownFields(t *testing.T) {
	_, err := DecodeRequest(strings.NewReader(`{"scenario":1,"bogus":true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestCanonicalKey(t *testing.T) {
	base := sampleRequest(0)
	if CanonicalKey(base) != CanonicalKey(base) {
		t.Fatal("key not deterministic")
	}
	if CanonicalKey(base) == CanonicalKey(sampleRequest(1)) {
		t.Error("different readings share a key")
	}

	// Default normalization: "" and "budget" are the same configuration.
	mode := base
	mode.StallMode = "budget"
	if CanonicalKey(base) != CanonicalKey(mode) {
		t.Error("stallMode default not normalized")
	}
	exact := base
	exact.StallMode = "exact"
	if CanonicalKey(base) == CanonicalKey(exact) {
		t.Error("stall modes share a key")
	}

	// Contender permutation invariance.
	two := base
	two.Contenders = []dsu.Readings{
		{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
		{CCNT: 900000, PS: 10000, DS: 20000, PM: 1000},
	}
	perm := two
	perm.Contenders = []dsu.Readings{two.Contenders[1], two.Contenders[0]}
	if CanonicalKey(two) != CanonicalKey(perm) {
		t.Error("permuted contenders miss the cache")
	}
	if CanonicalKey(two) == CanonicalKey(base) {
		t.Error("extra contender ignored")
	}

	// The analysed task's WCETCycles is an output: requests differing
	// only there must collide.
	a, b := rtaRequest(), rtaRequest()
	b.RTA.Task.WCETCycles = 999
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Error("analysed wcetCycles leaked into the key")
	}
	// Co-resident order is semantic (priority tie-break) — distinct keys.
	c := rtaRequest()
	c.RTA.Others = append(c.RTA.Others, RTATask{Name: "z", WCETCycles: 1000, PeriodCycles: 100_000, Priority: 1})
	d := rtaRequest()
	d.RTA.Others = append([]RTATask{{Name: "z", WCETCycles: 1000, PeriodCycles: 100_000, Priority: 1}}, d.RTA.Others...)
	if CanonicalKey(c) == CanonicalKey(d) {
		t.Error("rta co-resident order ignored")
	}
	if CanonicalKey(a) == CanonicalKey(base) {
		t.Error("rta request shares key with plain request")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newResultCache(2, nil, nil, nil)
	mk := func(s string) *cached { return &cached{body: []byte(s)} }
	c.put("a", mk("a"))
	c.put("b", mk("b"))
	if _, ok := c.get("a"); !ok { // bump a: b is now coldest
		t.Fatal("a missing")
	}
	c.put("c", mk("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recency bump")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
	if got := c.evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}
