package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dsu"
)

// sampleRequest is a Table 6-flavoured request; variant perturbs the
// analysed readings so distinct variants are distinct cache keys.
func sampleRequest(variant int) Request {
	return Request{
		Scenario: 1,
		Analysed: dsu.Readings{
			CCNT: 157800 + int64(variant)*1000,
			PS:   18000,
			DS:   27000,
			PM:   3000,
		},
		Contenders: []dsu.Readings{
			{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
		},
	}
}

func rtaRequest() Request {
	req := sampleRequest(0)
	req.RTA = &RTARequest{
		Task: RTATask{Name: "uAnalysed", PeriodCycles: 2_000_000, Priority: 2},
		Others: []RTATask{
			{Name: "ctrl", WCETCycles: 50_000, PeriodCycles: 500_000, Priority: 1},
		},
	}
	return req
}

func encodeRequest(t testing.TB, req Request) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunCLIMatchesSeedBehaviour(t *testing.T) {
	var out bytes.Buffer
	if err := RunCLI(bytes.NewReader(encodeRequest(t, sampleRequest(0))), &out); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FTC.Model != "fTC" || resp.ILP.Model != "ILP-PTAC" {
		t.Errorf("unexpected models %q / %q", resp.FTC.Model, resp.ILP.Model)
	}
	if resp.FTC.WCETCycles < resp.ILP.WCETCycles {
		t.Errorf("fTC bound %d below ILP-PTAC bound %d", resp.FTC.WCETCycles, resp.ILP.WCETCycles)
	}
	if resp.RTA != nil {
		t.Error("RTA verdict present without an rta request")
	}
	if !strings.HasSuffix(out.String(), "}\n") {
		t.Error("output missing trailing newline")
	}
}

func TestEvaluateRTAVerdict(t *testing.T) {
	resp, err := Evaluate(rtaRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resp.RTA == nil {
		t.Fatal("no RTA verdict")
	}
	if resp.RTA.Model != "ilpPtac" {
		t.Errorf("default RTA model = %q, want ilpPtac", resp.RTA.Model)
	}
	if resp.RTA.WCETCycles != resp.ILP.WCETCycles {
		t.Errorf("RTA used WCET %d, want ILP bound %d", resp.RTA.WCETCycles, resp.ILP.WCETCycles)
	}
	if len(resp.RTA.Results) != 2 {
		t.Fatalf("got %d RTA results, want 2", len(resp.RTA.Results))
	}
	if !resp.RTA.Schedulable {
		t.Errorf("task set unexpectedly unschedulable: %+v", resp.RTA.Results)
	}
	// The fTC-based verdict must use the larger bound.
	req := rtaRequest()
	req.RTA.Model = "ftc"
	ftcResp, err := Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if ftcResp.RTA.WCETCycles != ftcResp.FTC.WCETCycles {
		t.Errorf("ftc RTA used WCET %d, want %d", ftcResp.RTA.WCETCycles, ftcResp.FTC.WCETCycles)
	}
}

func TestValidationRejects(t *testing.T) {
	cases := map[string]func(*Request){
		"scenario 0":         func(r *Request) { r.Scenario = 0 },
		"scenario 3":         func(r *Request) { r.Scenario = 3 },
		"bad stall mode":     func(r *Request) { r.StallMode = "fast" },
		"negative counter":   func(r *Request) { r.Analysed.PS = -1 },
		"stalls over CCNT":   func(r *Request) { r.Analysed.DS = r.Analysed.CCNT },
		"PM over CCNT":       func(r *Request) { r.Analysed.PM = r.Analysed.CCNT + 1 },
		"bad contender":      func(r *Request) { r.Contenders[0].PM = -3 },
		"bad rta model":      func(r *Request) { r.RTA = &RTARequest{Model: "edf"} },
		"rta other no wcet":  func(r *Request) { r.RTA = &RTARequest{Others: []RTATask{{Name: "x", PeriodCycles: 10}}} },
		"rta other negative": func(r *Request) { r.RTA = &RTARequest{Others: []RTATask{{Name: "x", WCETCycles: -1}}} },
	}
	for name, mutate := range cases {
		req := sampleRequest(0)
		mutate(&req)
		if err := req.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := Evaluate(req); err == nil {
			t.Errorf("%s: evaluated", name)
		}
	}
}

func TestDecodeRequestRejectsUnknownFields(t *testing.T) {
	_, err := DecodeRequest(strings.NewReader(`{"scenario":1,"bogus":true}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestCanonicalKey(t *testing.T) {
	base := sampleRequest(0)
	if CanonicalKey(base) != CanonicalKey(base) {
		t.Fatal("key not deterministic")
	}
	if CanonicalKey(base) == CanonicalKey(sampleRequest(1)) {
		t.Error("different readings share a key")
	}

	// Default normalization: "" and "budget" are the same configuration.
	mode := base
	mode.StallMode = "budget"
	if CanonicalKey(base) != CanonicalKey(mode) {
		t.Error("stallMode default not normalized")
	}
	exact := base
	exact.StallMode = "exact"
	if CanonicalKey(base) == CanonicalKey(exact) {
		t.Error("stall modes share a key")
	}

	// Contender permutation invariance.
	two := base
	two.Contenders = []dsu.Readings{
		{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000},
		{CCNT: 900000, PS: 10000, DS: 20000, PM: 1000},
	}
	perm := two
	perm.Contenders = []dsu.Readings{two.Contenders[1], two.Contenders[0]}
	if CanonicalKey(two) != CanonicalKey(perm) {
		t.Error("permuted contenders miss the cache")
	}
	if CanonicalKey(two) == CanonicalKey(base) {
		t.Error("extra contender ignored")
	}

	// The analysed task's WCETCycles is an output: requests differing
	// only there must collide.
	a, b := rtaRequest(), rtaRequest()
	b.RTA.Task.WCETCycles = 999
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Error("analysed wcetCycles leaked into the key")
	}
	// Co-resident order is semantic (priority tie-break) — distinct keys.
	c := rtaRequest()
	c.RTA.Others = append(c.RTA.Others, RTATask{Name: "z", WCETCycles: 1000, PeriodCycles: 100_000, Priority: 1})
	d := rtaRequest()
	d.RTA.Others = append([]RTATask{{Name: "z", WCETCycles: 1000, PeriodCycles: 100_000, Priority: 1}}, d.RTA.Others...)
	if CanonicalKey(c) == CanonicalKey(d) {
		t.Error("rta co-resident order ignored")
	}
	if CanonicalKey(a) == CanonicalKey(base) {
		t.Error("rta request shares key with plain request")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newResultCache(2, nil, nil, nil, nil)
	mk := func(s string) *cached { return &cached{body: []byte(s)} }
	c.put("a", mk("a"))
	c.put("b", mk("b"))
	if _, ok := c.get("a"); !ok { // bump a: b is now coldest
		t.Fatal("a missing")
	}
	c.put("c", mk("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recency bump")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
	if got := c.shards[0].evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

// TestCacheZeroCapacity is the regression test for the cap<=0 put bug:
// the old LRU inserted the entry and then self-evicted it in the
// trim loop, counting a bogus eviction on every put. A non-positive
// capacity now means "cache disabled": puts are no-ops, lookups miss,
// and the eviction counter never moves.
func TestCacheZeroCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := newResultCache(capacity, nil, nil, nil, nil)
		c.put("a", &cached{body: []byte("a")})
		if _, ok := c.get("a"); ok {
			t.Errorf("cap=%d: disabled cache returned a hit", capacity)
		}
		if got := c.len(); got != 0 {
			t.Errorf("cap=%d: len = %d, want 0", capacity, got)
		}
		if got := c.shards[0].evictions.Value(); got != 0 {
			t.Errorf("cap=%d: evictions = %d, want 0 (self-eviction regression)", capacity, got)
		}
	}
}

// TestCacheProbeNoRecencyChurn pins the probe-then-reject fix: a
// pre-admission probe (getHit) that misses must not mutate the cache at
// all — under the old LRU every probe took the global lock and a hit
// spliced the recency list even when admission then rejected the
// request. Here the same eviction victim must emerge whether or not a
// storm of missing-key probes ran in between, and a probe that hits
// must still earn the entry its second chance.
func TestCacheProbeNoRecencyChurn(t *testing.T) {
	c := newResultCache(2, nil, nil, nil, nil)
	mk := func(s string) *cached { return &cached{body: []byte(s)} }
	c.put("a", mk("a"))
	c.put("b", mk("b"))
	c.getHit("a") // a is referenced; b is the eviction victim

	// Probe-then-reject storm: none of these keys are resident, so none
	// of these probes may touch recency state or the miss counter.
	for i := 0; i < 100; i++ {
		if _, ok := c.getHit(fmt.Sprintf("absent-%d", i)); ok {
			t.Fatal("absent key reported resident")
		}
	}
	if got := c.shards[0].misses.Value(); got != 0 {
		t.Errorf("misses = %d after getHit probes, want 0", got)
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d after probes, want 2", got)
	}

	// The recency order established before the storm must still hold:
	// the sweep evicts unreferenced b, not referenced a.
	c.put("c", mk("c"))
	if _, ok := c.peek("a"); !ok {
		t.Error("a evicted — probe storm perturbed recency order")
	}
	if _, ok := c.peek("b"); ok {
		t.Error("b survived — probe storm perturbed recency order")
	}
}

// TestCacheSharding exercises the multi-shard configuration end to end:
// a capacity large enough to split 16 ways must still account hits,
// misses, evictions and len globally, and keys must spread across more
// than one shard.
func TestCacheSharding(t *testing.T) {
	c := newResultCache(1024, nil, nil, nil, nil)
	if len(c.shards) != maxCacheShards {
		t.Fatalf("shards = %d, want %d", len(c.shards), maxCacheShards)
	}
	total := 0
	for i := range c.shards {
		total += c.shards[i].cap
	}
	if total != 1024 {
		t.Errorf("summed shard capacity = %d, want 1024", total)
	}
	touched := map[*cacheShard]bool{}
	for i := 0; i < 256; i++ {
		key := hashKey(fmt.Sprintf("req-%d", i))
		touched[c.shard(key)] = true
		c.put(key, &cached{body: []byte(key)})
	}
	if len(touched) < 2 {
		t.Errorf("256 hashed keys landed on %d shard(s); prefix routing is not spreading", len(touched))
	}
	if got := c.len(); got != 256 {
		t.Errorf("len = %d, want 256", got)
	}
	for i := 0; i < 256; i++ {
		if _, ok := c.get(hashKey(fmt.Sprintf("req-%d", i))); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	if got := c.shards[0].hits.Value(); got != 256 {
		t.Errorf("hits = %d, want 256", got)
	}
}
