package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t testing.TB, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one sample line's value from exposition text.
func metricValue(t testing.TB, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %q not found in /metrics", series)
	return 0
}

// TestMetricsEndpoint drives known traffic and asserts the Prometheus
// exposition covers every instrumented layer with the right values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := encodeRequest(t, sampleRequest(0))
	for i := 0; i < 2; i++ {
		if status, out := post(t, ts.URL+"/v1/wcet", body); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, out)
		}
	}

	text := scrape(t, ts.URL)

	if got := metricValue(t, text, `wcetd_requests_total{endpoint="v1_wcet"}`); got != 2 {
		t.Errorf("v1_wcet requests = %g, want 2", got)
	}
	if got := metricValue(t, text, "wcetd_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %g, want 1 (second request repeats the first)", got)
	}
	if got := metricValue(t, text, "wcetd_cache_misses_total"); got != 1 {
		t.Errorf("cache misses = %g, want 1", got)
	}
	if got := metricValue(t, text, `wcetd_request_seconds_count{endpoint="v1_wcet"}`); got != 2 {
		t.Errorf("latency observations = %g, want 2", got)
	}

	// Process-wide series from the deeper layers must be present: the
	// analyzer, the ILP/LP solver stack, the campaign engine, the table
	// store and the calibration engine. (Their values accumulate across
	// the whole test process, so presence — not exact counts — is the
	// contract here.)
	for _, name := range []string{
		"analyzer_estimates_total",
		"analyzer_solve_seconds",
		"solver_ilp_solves_total",
		"solver_warm_starts_total",
		"solver_cold_solves_total",
		"solver_pivots_total",
		"solver_bb_nodes_total",
		"campaign_cells_total",
		"tabstore_registrations_total",
		"calib_batches_total",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// Exposition syntax spot-checks: HELP precedes TYPE, histograms carry
	// +Inf buckets.
	if !strings.Contains(text, "# HELP wcetd_requests_total ") {
		t.Error("missing HELP line for wcetd_requests_total")
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("histogram exposition missing +Inf bucket")
	}
	if strings.Contains(text, "NaN") {
		t.Error("exposition contains NaN")
	}
}

// TestMetricsMethodNotAllowed pins GET-only.
func TestMetricsMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", resp.StatusCode)
	}
}

// TestTraceEnvelope pins the X-Wcet-Trace contract: without the header the
// body is byte-identical to an untraced response; with it, the same bytes
// arrive inside {"response": ..., "trace": ...} and the span tree walks
// admission → evaluate → model solves, with solver attrs on the ILP span.
func TestTraceEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := encodeRequest(t, sampleRequest(3))

	_, plain := post(t, ts.URL+"/v1/wcet", body)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/wcet", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced request status %d", resp.StatusCode)
	}
	if resp.Header.Get(TraceIDHeader) == "" {
		t.Errorf("missing %s response header", TraceIDHeader)
	}

	var env struct {
		Response json.RawMessage      `json:"response"`
		Trace    *telemetry.TraceJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil || env.Trace.Root == nil {
		t.Fatal("traced response carries no trace")
	}
	if !bytes.Equal(bytes.TrimSpace(env.Response), bytes.TrimSpace(plain)) {
		t.Errorf("envelope response differs from untraced body\nenvelope: %s\nplain: %s", env.Response, plain)
	}
	if env.Trace.ID != resp.Header.Get(TraceIDHeader) {
		t.Errorf("trace ID %q != header %q", env.Trace.ID, resp.Header.Get(TraceIDHeader))
	}
	if env.Trace.Root.Name != "v1_wcet" {
		t.Errorf("root span %q, want v1_wcet", env.Trace.Root.Name)
	}

	// Walk the tree: this request is a cache hit (the plain request above
	// populated it), so expect the cache span with hit=true. Re-send a
	// fresh variant to see the evaluate path.
	names := spanNames(env.Trace.Root)
	if !names["cache"] {
		t.Errorf("trace lacks cache span: %v", names)
	}

	fresh := encodeRequest(t, sampleRequest(4))
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/wcet", bytes.NewReader(fresh))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(TraceHeader, "1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var env2 struct {
		Trace *telemetry.TraceJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	names2 := spanNames(env2.Trace.Root)
	for _, want := range []string{"admission", "evaluate", "validate", "model:ftc", "model:ilpPtac"} {
		if !names2[want] {
			t.Errorf("miss-path trace lacks %q span: %v", want, names2)
		}
	}
	ilpSpan := findSpan(env2.Trace.Root, "model:ilpPtac")
	if ilpSpan == nil {
		t.Fatal("no ilpPtac span")
	}
	for _, attr := range []string{"nodes", "warmStarts", "cached"} {
		if _, ok := ilpSpan.Attrs[attr]; !ok {
			t.Errorf("ilpPtac span missing %q attr: %v", attr, ilpSpan.Attrs)
		}
	}
}

func spanNames(root *telemetry.SpanJSON) map[string]bool {
	names := make(map[string]bool)
	var walk func(*telemetry.SpanJSON)
	walk = func(s *telemetry.SpanJSON) {
		names[s.Name] = true
		for _, c := range s.Spans {
			walk(c)
		}
	}
	walk(root)
	return names
}

func findSpan(root *telemetry.SpanJSON, name string) *telemetry.SpanJSON {
	if root.Name == name {
		return root
	}
	for _, c := range root.Spans {
		if s := findSpan(c, name); s != nil {
			return s
		}
	}
	return nil
}

// TestStatsStream reads two SSE events off /v2/stats/stream and checks the
// payload carries both the /v1/stats shape and the flattened metrics map.
func TestStatsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := encodeRequest(t, sampleRequest(0))
	post(t, ts.URL+"/v1/wcet", body)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/stats/stream?interval=100", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && events < 2 {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var snap struct {
			UnixMs  int64              `json:"unixMs"`
			Stats   Stats              `json:"stats"`
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			t.Fatalf("event %d: %v (%s)", events, err, data)
		}
		if snap.UnixMs == 0 {
			t.Error("snapshot missing timestamp")
		}
		if snap.Stats.SingleRequests != 1 {
			t.Errorf("stream stats singleRequests = %d, want 1", snap.Stats.SingleRequests)
		}
		if _, ok := snap.Metrics[`wcetd_requests_total{endpoint="v1_wcet"}`]; !ok {
			t.Error("stream metrics missing wcetd_requests_total{endpoint=\"v1_wcet\"}")
		}
		events++
	}
	if events < 2 {
		t.Fatalf("read %d events, want 2 (%v)", events, sc.Err())
	}
}

// TestStatsStreamBadInterval pins the 400 on a malformed interval.
func TestStatsStreamBadInterval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v2/stats/stream?interval=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

// TestDashboardServed pins that /v2/dashboard returns the embedded page.
func TestDashboardServed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v2/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("/v2/stats/stream")) {
		t.Error("dashboard does not reference the SSE stream")
	}
}

// TestOpsProfilesGated pins that pprof is absent by default and mounted
// behind Config.EnableOps.
func TestOpsProfilesGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -ops: status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnableOps: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -ops: status %d, want 200", resp.StatusCode)
	}
}

// TestConcurrentLoadCountersMonotone is the race-hardening test: clients
// hammer the analysis endpoint while scrapers read /metrics and an SSE
// consumer holds a stream open, all under the race detector in CI. Counter
// reads must never go backwards and must balance exactly once the dust
// settles.
func TestConcurrentLoadCountersMonotone(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 8, QueueDepth: 64})

	const clients = 6
	const perClient = 20
	bodies := make([][]byte, 4)
	for i := range bodies {
		bodies[i] = encodeRequest(t, sampleRequest(i))
	}

	stop := make(chan struct{})
	var scraperWG sync.WaitGroup

	// Scraper: read the exposition continuously and assert the total
	// request count never decreases between samples.
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		var last float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				continue
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var total float64
			for _, line := range strings.Split(string(b), "\n") {
				if strings.HasPrefix(line, "wcetd_requests_total{") {
					var v float64
					if i := strings.LastIndexByte(line, ' '); i >= 0 {
						fmt.Sscanf(line[i+1:], "%g", &v)
					}
					total += v
				}
			}
			if total < last {
				t.Errorf("request counter went backwards: %g -> %g", last, total)
				return
			}
			last = total
		}
	}()

	// SSE consumer holding a stream open for the duration.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	defer sseCancel()
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		req, _ := http.NewRequestWithContext(sseCtx, http.MethodGet, ts.URL+"/v2/stats/stream?interval=100", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := bodies[(c+i)%len(bodies)]
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/wcet", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				if i%3 == 0 {
					req.Header.Set(TraceHeader, "1")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	sseCancel()
	scraperWG.Wait()

	// Settled-state accounting: every client request was counted exactly
	// once, and cache hits + misses add up to the admitted lookups.
	text := scrape(t, ts.URL)
	if got := metricValue(t, text, `wcetd_requests_total{endpoint="v1_wcet"}`); got != clients*perClient {
		t.Errorf("v1_wcet requests = %g, want %d", got, clients*perClient)
	}
	st := s.StatsSnapshot()
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after drain, want 0", st.InFlight)
	}
	if st.Cache.Misses != int64(len(bodies)) {
		t.Errorf("cache misses = %d, want %d (one per unique request)", st.Cache.Misses, len(bodies))
	}
	lookups := st.Cache.Hits + st.Cache.Misses + st.Cache.Dedup
	if lookups == 0 || st.Cache.Hits == 0 {
		t.Errorf("no cache activity under load: %+v", st.Cache)
	}
}
