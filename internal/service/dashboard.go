package service

import (
	_ "embed"
	"fmt"
	"net/http"
)

// dashboardHTML is the ops dashboard: one self-contained page (no external
// assets, no CDN) that subscribes to /v2/stats/stream and renders live
// throughput, latency-quantile, cache and solver charts plus a raw-metrics
// table. Embedding it keeps the daemon a single binary.
//
//go:embed dashboard.html
var dashboardHTML []byte

// handleDashboard serves GET /v2/dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(dashboardHTML)
}
