package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/calib"
	"repro/internal/campaign"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/tabstore"
	"repro/internal/telemetry"
	"repro/wcet"
)

// Config sizes the daemon. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Workers is the campaign-engine pool width batch requests fan out
	// across; <= 0 selects GOMAXPROCS.
	Workers int
	// CacheEntries caps the canonical-request result cache; <= 0 selects
	// 1024.
	CacheEntries int
	// SolverWorkers is the branch & bound worker count for ILP-based
	// models; <= 0 selects 1 (sequential solves). Bounds are worker-count
	// independent, so raising it only trades CPU for latency on large
	// solves.
	SolverWorkers int
	// MaxInFlight is the admission-control concurrency limit: how many
	// requests may be past admission at once; <= 0 selects 64.
	MaxInFlight int
	// QueueDepth is how many requests may wait for admission before new
	// arrivals are rejected as overload; < 0 selects 256, 0 means no
	// queue (reject as soon as MaxInFlight is reached).
	QueueDepth int
	// RequestTimeout bounds each request (queue wait included) via its
	// context; <= 0 selects 30 seconds.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body — decode work happens before
	// admission control, so it must be bounded independently; <= 0
	// selects 8 MiB.
	MaxBodyBytes int64
	// MaxBatchItems caps the cells of one batch request (one admission
	// unit); <= 0 selects 4096.
	MaxBatchItems int
	// Registry is the contention-model registry /v2/analyze serves; nil
	// selects the shared wcet.DefaultRegistry. /v1 computes the ftc and
	// ilpPtac pair unconditionally, so a registry without them (any
	// wcet.NewDefaultRegistry-derived registry has them) yields a
	// v2-only server whose /v1 requests fail with an unknown-model error.
	// A registry with no models at all is a programming error: New panics.
	Registry *wcet.Registry
	// TableStore is the versioned latency-table store backing /v2/tables
	// and /v2/calibrate; nil selects a fresh in-memory store. The TC27x
	// characterisation is seeded under the ref "tc27x/default" when that
	// ref is absent.
	TableStore *tabstore.Store
	// DefaultTableRef names the table the server starts serving under;
	// empty selects "tc27x/default". It must resolve in TableStore after
	// seeding, else New panics — a server cannot run without a
	// characterisation.
	DefaultTableRef string
	// JobsDir is the campaign-job persistence root (conventionally next
	// to the tabstore data dir; cmd/wcetd derives it from -data). Empty
	// runs jobs in-memory: /v2/campaigns works, but jobs are lost on
	// restart instead of resuming from their checkpoints.
	JobsDir string
	// MaxJobs bounds concurrently active (pending + running) campaign
	// jobs; <= 0 selects 16. Cells of admitted jobs share the campaign
	// engine at Background priority, so this caps queued work, not
	// parallelism.
	MaxJobs int
	// SlowRequestThreshold is the latency above which a request is
	// logged (with its trace) as slow; 0 selects 1 second, negative
	// disables slow-request logging.
	SlowRequestThreshold time.Duration
	// Logger receives the server's structured diagnostics (slow
	// requests, shutdown summary); nil selects slog.Default().
	Logger *slog.Logger
	// EnableOps additionally mounts net/http/pprof under /debug/pprof/
	// (cmd/wcetd exposes this as -ops) and, when ObsDir is set, runs the
	// continuous profiler. Off by default: profiling handlers do not
	// belong on an unguarded production surface.
	EnableOps bool
	// ObsDir is the observability persistence root (cmd/wcetd derives it
	// from -data): metrics history segments, stored traces and captured
	// profiles live under it. Empty keeps history and traces in bounded
	// memory only — the APIs work, but nothing survives a restart.
	ObsDir string
	// HistoryInterval is the metrics-history sampling cadence; <= 0
	// selects 5 seconds, and anything under a second is raised to it
	// (sub-second full-registry snapshots are dashboard poison).
	HistoryInterval time.Duration
	// SLOObjectives overrides the built-in SLO set (cmd/wcetd loads it
	// from -slo-config); nil selects obs.DefaultObjectives.
	SLOObjectives []obs.Objective
	// TraceStoreEntries bounds retained traces; <= 0 selects 512.
	TraceStoreEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 4096
	}
	if c.DefaultTableRef == "" {
		c.DefaultTableRef = "tc27x/default"
	}
	if c.SlowRequestThreshold == 0 {
		c.SlowRequestThreshold = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.HistoryInterval <= 0 {
		c.HistoryInterval = 5 * time.Second
	}
	if c.TraceStoreEntries <= 0 {
		c.TraceStoreEntries = 512
	}
	return c
}

// BatchRequest is the wire format of POST /v1/batch: an ordered set of
// independent analysis requests, typically one provider's whole task
// portfolio.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one request's outcome within a batch: exactly one of
// Response and Error is set. A batch never fails wholesale because one
// cell is malformed — mirroring campaign.All's per-cell error collection.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// BatchResponse is the wire format of a batch reply, results in request
// order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// CacheStats reports the canonical-request cache counters.
type CacheStats struct {
	// Hits counts requests served from the result cache without touching
	// the models.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to evaluate.
	Misses int64 `json:"misses"`
	// Dedup counts requests that piggybacked on an identical in-flight
	// evaluation instead of starting their own (counted in Misses too).
	Dedup     int64 `json:"dedup"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Workers     int `json:"workers"`
	MaxInFlight int `json:"maxInFlight"`
	QueueDepth  int `json:"queueDepth"`

	InFlight int64 `json:"inFlight"`
	Queued   int64 `json:"queued"`

	Accepted         int64 `json:"accepted"`
	RejectedOverload int64 `json:"rejectedOverload"`
	Canceled         int64 `json:"canceled"`

	SingleRequests    int64 `json:"singleRequests"`
	BatchRequests     int64 `json:"batchRequests"`
	BatchItems        int64 `json:"batchItems"`
	V2Requests        int64 `json:"v2Requests"`
	TableRequests     int64 `json:"tableRequests"`
	CalibrateRequests int64 `json:"calibrateRequests"`

	// ServingTable is the content address of the latency table analysis
	// requests currently evaluate under by default.
	ServingTable string `json:"servingTable"`

	Cache CacheStats `json:"cache"`
}

// errOverloaded is the admission-control rejection.
var errOverloaded = errors.New("service: overloaded: concurrency limit reached and queue full")

// flight is one in-progress evaluation; identical concurrent requests
// wait on done instead of solving the same ILP twice.
type flight struct {
	done chan struct{}
	val  *cached
	err  error
}

// Server serves the contention models over HTTP with admission control
// and content-addressed caching. Construct with New; a Server is safe
// for concurrent use.
type Server struct {
	cfg      Config
	engine   *campaign.Engine
	cache    *resultCache
	analyzer *wcet.Analyzer

	// store holds every registered latency-table version; serving is the
	// content address analysis evaluates under by default, swapped
	// atomically by /v2/tables/{ref}/promote.
	store   *tabstore.Store
	serving atomic.Value // tabstore.ID

	// calibEng is the streaming calibration session /v2/calibrate feeds.
	calibMu  sync.Mutex
	calibEng *calib.Engine

	sem    chan struct{}
	queued atomic.Int64

	flightMu sync.Mutex
	flights  map[string]*flight

	// metrics is the server's telemetry set — the single source of truth
	// for both GET /metrics and the wire-stable /v1/stats payload.
	metrics *serverMetrics
	logger  *slog.Logger

	// jobs is the campaign-job subsystem behind /v2/campaigns.
	jobs *jobs.Manager

	// streamDone ends open /v2/stats/stream connections when graceful
	// shutdown begins, so they cannot hold the drain hostage.
	streamDone chan struct{}
	streamOnce sync.Once

	// The observability persistence layer: metrics history, SLO engine,
	// stored traces, and (behind EnableOps+ObsDir) the profiler.
	history    *obs.TSDB
	sloEngine  *obs.Engine
	traceStore *obs.TraceStore
	profiler   *obs.Profiler
	started    time.Time

	// alertSubs fans fired SLO alerts out to open SSE streams.
	alertMu   sync.Mutex
	alertSubs map[chan obs.Alert]struct{}

	// samplerDone stops the history sampling loop on Shutdown.
	samplerDone chan struct{}
	samplerOnce sync.Once
	samplerWG   sync.WaitGroup

	// slowTrace{Sec,N} implement the per-second budget on tail-sampled
	// slow-trace stores (see allowSlowTrace). Atomics, not a mutex: this
	// sits on every request's exit path, where a shared lock would become
	// a serialization point under saturation.
	slowTraceSec atomic.Int64
	slowTraceN   atomic.Int64

	httpSrv *http.Server
}

// New builds a server. The engine may be shared with other subsystems
// (its slot semaphore then bounds their combined parallelism); pass nil
// to get a private pool of cfg.Workers width.
func New(cfg Config, engine *campaign.Engine) *Server {
	cfg = cfg.withDefaults()
	if engine == nil {
		engine = campaign.New(cfg.Workers)
	}
	// The server gets its own analyzer with intra-request concurrency 1:
	// every cache miss already runs as one engine-slot campaign job, so
	// fanning a request's models out in parallel inside that slot would
	// multiply concurrent solves past the Workers bound admission control
	// exists to enforce.
	reg := cfg.Registry
	if reg == nil {
		reg = wcet.DefaultRegistry()
	}
	if len(reg.Names()) == 0 {
		panic("service: Config.Registry has no registered models")
	}
	// Seed the table store: the TC27x characterisation is always
	// registered, and the canonical ref for it is created unless the
	// caller's store already claims it.
	store := cfg.TableStore
	if store == nil {
		var err error
		if store, err = tabstore.Open(""); err != nil {
			panic(fmt.Sprintf("service: %v", err))
		}
	}
	tc27xID, err := store.Put(wcet.TC27x())
	if err != nil {
		panic(fmt.Sprintf("service: seeding tc27x table: %v", err))
	}
	if _, _, err := store.Resolve("tc27x/default"); err != nil {
		if err := store.SetRef("tc27x/default", tc27xID); err != nil {
			panic(fmt.Sprintf("service: seeding tc27x/default ref: %v", err))
		}
	}
	_, servingID, err := store.Resolve(cfg.DefaultTableRef)
	if err != nil {
		panic(fmt.Sprintf("service: default table ref does not resolve: %v", err))
	}
	opts := []wcet.Option{wcet.WithRegistry(reg), wcet.WithConcurrency(1), wcet.WithTableStore(store)}
	if cfg.SolverWorkers > 1 {
		opts = append(opts, wcet.WithSolverWorkers(cfg.SolverWorkers))
	}
	analyzer, err := wcet.NewAnalyzer(opts...)
	if err != nil {
		// The registry lacks the v1 pair — a v2-only deployment. Default
		// the model set to whatever is registered so the server still
		// constructs; /v1 requests then fail individually.
		analyzer = wcet.MustNewAnalyzer(append(opts, wcet.WithModels(reg.Names()...))...)
	}
	metrics := newServerMetrics()
	s := &Server{
		cfg:         cfg,
		engine:      engine,
		cache:       newResultCache(cfg.CacheEntries, metrics.cacheHits, metrics.cacheMisses, metrics.cacheEvictions, metrics.cacheContention),
		analyzer:    analyzer,
		store:       store,
		sem:         make(chan struct{}, cfg.MaxInFlight),
		flights:     make(map[string]*flight),
		metrics:     metrics,
		logger:      cfg.Logger,
		streamDone:  make(chan struct{}),
		started:     time.Now(),
		alertSubs:   make(map[chan obs.Alert]struct{}),
		samplerDone: make(chan struct{}),
	}
	s.serving.Store(servingID)
	// The job manager shares the server's engine, so campaign cells and
	// interactive traffic drain through one bounded slot pool — jobs at
	// Background priority. Opening it also resumes any checkpointed jobs
	// a previous process left unfinished in JobsDir.
	jm, err := jobs.Open(jobs.Config{
		Dir:       cfg.JobsDir,
		MaxActive: cfg.MaxJobs,
		Engine:    engine,
		Store:     store,
		Registry:  reg,
		Logger:    cfg.Logger,
	})
	if err != nil {
		panic(fmt.Sprintf("service: opening job manager: %v", err))
	}
	s.jobs = jm
	metrics.reg.GaugeFunc("wcetd_queue_depth",
		"Requests currently waiting for admission.",
		func() float64 { return float64(s.queued.Load()) })
	metrics.reg.GaugeFunc("wcetd_cache_entries",
		"Result-cache entries currently resident.",
		func() float64 { return float64(s.cache.len()) })
	metrics.reg.Info("wcetd_build_info",
		"Build identity: module version, Go toolchain, VCS revision.",
		buildInfoLabels())
	metrics.reg.GaugeFunc("wcetd_uptime_seconds",
		"Seconds since this server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.openObservability()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/wcet", s.instrument("v1_wcet", true, s.handleSingle))
	mux.HandleFunc("/v1/batch", s.instrument("v1_batch", true, s.handleBatch))
	mux.HandleFunc("/v1/stats", s.instrument("v1_stats", false, s.handleStats))
	mux.HandleFunc("/v2/analyze", s.instrument("v2_analyze", true, s.handleV2Analyze))
	mux.HandleFunc("/v2/models", s.instrument("v2_models", false, s.handleV2Models))
	mux.HandleFunc("/v2/tables", s.instrument("v2_tables", false, s.handleTables))
	mux.HandleFunc("/v2/tables/", s.instrument("v2_tables", false, s.handleTableByRef))
	mux.HandleFunc("/v2/calibrate", s.instrument("v2_calibrate", false, s.handleCalibrate))
	mux.HandleFunc("/v2/campaigns", s.instrument("v2_campaigns", false, s.handleCampaigns))
	mux.HandleFunc("/v2/campaigns/", s.routeCampaign)
	mux.HandleFunc("/v2/stats/stream", s.instrument("v2_stats_stream", false, s.handleStatsStream))
	mux.HandleFunc("/v2/metrics/history", s.instrument("v2_metrics_history", false, s.handleMetricsHistory))
	mux.HandleFunc("/v2/alerts", s.instrument("v2_alerts", false, s.handleAlerts))
	mux.HandleFunc("/v2/traces", s.instrument("v2_traces", false, s.handleTraces))
	mux.HandleFunc("/v2/traces/", s.instrument("v2_traces", false, s.handleTraceByID))
	mux.HandleFunc("/v2/dashboard", s.instrument("v2_dashboard", false, s.handleDashboard))
	mux.HandleFunc("/metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.HandleFunc("/healthz", s.instrument("healthz", false, s.handleHealth))
	if cfg.EnableOps {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.httpSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		// Bodies are read (and decoded) before admission control, so a
		// slow-trickling client must be cut off by the transport: the
		// per-request context starts only after decode.
		ReadTimeout: cfg.RequestTimeout,
	}
	// End open SSE streams as soon as a graceful drain begins (Shutdown
	// may run more than once; the channel closes once).
	s.httpSrv.RegisterOnShutdown(func() {
		s.streamOnce.Do(func() { close(s.streamDone) })
	})
	return s
}

// Handler exposes the routing for tests and embedding.
func (s *Server) Handler() http.Handler { return s.httpSrv.Handler }

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown gracefully drains the server: no new connections, in-flight
// requests run to completion or to ctx's deadline, and running campaign
// jobs checkpoint and stop — their persisted state resumes on the next
// start.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	if jerr := s.jobs.Close(ctx); err == nil {
		err = jerr
	}
	s.closeObservability()
	return err
}

// StatsSnapshot returns the current counters (what /v1/stats serves),
// read from the telemetry registry — /v1/stats and /metrics can never
// disagree. The payload is wire-stable: fields, names and meanings
// predate the telemetry layer. Endpoint counters now tick at the mux
// (method-mismatched requests included), which only widens them.
func (s *Server) StatsSnapshot() Stats {
	m := s.metrics
	return Stats{
		Workers:           s.engine.Workers(),
		MaxInFlight:       s.cfg.MaxInFlight,
		QueueDepth:        s.cfg.QueueDepth,
		InFlight:          m.inFlight.Value(),
		Queued:            s.queued.Load(),
		Accepted:          m.accepted.Value(),
		RejectedOverload:  m.rejected.Value(),
		Canceled:          m.canceled.Value(),
		SingleRequests:    m.requests.With("v1_wcet").Value(),
		BatchRequests:     m.requests.With("v1_batch").Value(),
		BatchItems:        m.batchItems.Value(),
		V2Requests:        m.requests.With("v2_analyze").Value(),
		TableRequests:     m.requests.With("v2_tables").Value(),
		CalibrateRequests: m.requests.With("v2_calibrate").Value(),
		ServingTable:      string(s.servingID()),
		Cache: CacheStats{
			Hits:      m.cacheHits.Value(),
			Misses:    m.cacheMisses.Value(),
			Dedup:     m.dedup.Value(),
			Entries:   s.cache.len(),
			Capacity:  s.cfg.CacheEntries,
			Evictions: m.cacheEvictions.Value(),
		},
	}
}

// admit applies admission control: immediate admission while capacity
// remains, bounded queueing after that, rejection beyond the queue. The
// returned release must be called exactly once when the admitted work
// finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		s.metrics.canceled.Inc()
		return nil, err
	}
	admitted := false
	select {
	case s.sem <- struct{}{}:
		admitted = true
	default:
	}
	if !admitted {
		if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			s.metrics.rejected.Inc()
			return nil, errOverloaded
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.metrics.canceled.Inc()
			return nil, ctx.Err()
		}
	}
	s.metrics.accepted.Inc()
	s.metrics.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.metrics.inFlight.Add(-1)
			<-s.sem
		})
	}, nil
}

// lookupOrCompute is the one cache-accounting point per request: a
// counting cache lookup, then the miss path. compute is the version-specific
// evaluation (v1 or v2); the admission, caching and singleflight machinery
// is shared. ctx carries the request trace (when one is active) into the
// evaluation's spans.
func (s *Server) lookupOrCompute(ctx context.Context, key string, compute func(context.Context) (*cached, error)) (*cached, error) {
	if v, ok := s.cache.get(key); ok {
		return v, nil
	}
	return s.computeMiss(ctx, key, compute)
}

// computeMiss resolves a request whose miss is already counted: re-check
// the cache without accounting (an identical request may have landed while
// this one queued), join an identical in-flight evaluation, or evaluate.
// ctx bounds only the join wait: an evaluation, once started, runs to
// completion so its result can be cached for the next asker.
func (s *Server) computeMiss(ctx context.Context, key string, compute func(context.Context) (*cached, error)) (*cached, error) {
	if v, ok := s.cache.peek(key); ok {
		return v, nil
	}
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		s.metrics.dedup.Inc()
		_, jspan := telemetry.StartSpan(ctx, "join")
		defer jspan.End()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	ectx, espan := telemetry.StartSpan(ctx, "evaluate")
	f.val, f.err = compute(ectx)
	espan.End()
	if f.err == nil {
		s.cache.put(key, f.val)
	}
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
	return f.val, f.err
}

// evaluateEncoded runs the v1 models under the given table version and
// freezes the response together with its canonical encoding.
func (s *Server) evaluateEncoded(ctx context.Context, req Request, table tabstore.ID) (*cached, error) {
	resp, err := evaluateWith(ctx, s.analyzer, req, string(table))
	if err != nil {
		return nil, err
	}
	body, err := encodeRetained(resp)
	if err != nil {
		return nil, err
	}
	return &cached{resp: resp, body: body}, nil
}

// evaluateV2Encoded runs an already-prepared request's selected models and
// freezes the v2 response with its canonical encoding.
func (s *Server) evaluateV2Encoded(ctx context.Context, sdkReq wcet.Request) (*cached, error) {
	resp, err := evaluateV2Prepared(ctx, s.analyzer, sdkReq)
	if err != nil {
		return nil, err
	}
	body, err := encodeRetained(resp)
	if err != nil {
		return nil, err
	}
	return &cached{resp: resp, body: body}, nil
}

// requestCtx applies the per-request timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

func (s *Server) handleSingle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	req, err := DecodeRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	if err := req.validate(s.analyzer.Registry()); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Pin the serving table once per request: the result key carries its
	// content address, so a mid-request promote can neither poison the
	// cache nor mix tables within one evaluation.
	table := s.servingID()
	s.serveCached(w, r, tableKey(canonicalKeyReg(s.analyzer.Registry(), req), table), func(ctx context.Context) (*cached, error) {
		return s.evaluateEncoded(ctx, req, table)
	})
}

// tableKey scopes a canonical request key to one table version.
func tableKey(base string, table tabstore.ID) string {
	return base + ";tab=" + string(table)
}

// handleV2Analyze serves the registry-generic analysis endpoint: the
// caller names any subset of registered models and gets exactly those
// estimates, through the same admission, caching and singleflight path as
// /v1.
func (s *Server) handleV2Analyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req V2Request
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	sdkReq, err := req.Prepare(s.analyzer.Registry())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Resolve the request's table selection (a ref or ID; empty selects
	// the serving default) to its content address now: evaluation and
	// cache key then agree on the exact table version even if a ref is
	// retargeted or the default promoted mid-flight.
	table := s.servingID()
	if req.Table != "" {
		var rerr error
		if _, table, rerr = s.store.Resolve(req.Table); rerr != nil {
			httpError(w, http.StatusBadRequest, rerr)
			return
		}
	}
	sdkReq.TableRef = string(table)
	s.serveCached(w, r, tableKey(CanonicalKeyV2(s.analyzer.Registry(), req), table), func(ctx context.Context) (*cached, error) {
		return s.evaluateV2Encoded(ctx, sdkReq)
	})
}

// handleV2Models lists the registry: canonical names plus accepted
// aliases, so integrators can discover what /v2/analyze will run.
func (s *Server) handleV2Models(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	reg := s.analyzer.Registry()
	var out V2ModelsResponse
	for _, name := range reg.Names() {
		out.Models = append(out.Models, V2ModelInfo{Name: name, Aliases: reg.Aliases(name)})
	}
	writeJSON(w, http.StatusOK, out)
}

// serveCached is the shared single-request serving path of /v1/wcet and
// /v2/analyze: pre-admission cache probe, admission control, evaluation on
// the engine's bounded pool, deadline handling.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, compute func(context.Context) (*cached, error)) {
	// Cache hits bypass admission control entirely: they cost a map
	// lookup, and admission protects solver capacity, not the mux. The
	// probe counts only hits — if admission rejects this request below,
	// no evaluation was scheduled and the miss counter must not move.
	_, cspan := telemetry.StartSpan(r.Context(), "cache")
	c, hit := s.cache.getHit(key)
	cspan.SetAttr("hit", hit)
	cspan.End()
	if hit {
		writeBody(w, c.body)
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	actx, aspan := telemetry.StartSpan(ctx, "admission")
	release, err := s.admit(actx)
	aspan.End()
	if err != nil {
		admissionError(w, err)
		return
	}

	// The evaluation itself is not preemptible (the ILP solver runs to
	// completion), so run it aside and give up at the deadline; the
	// orphaned result still lands in the cache, and the admission slot
	// is held until the solver actually finishes. The solve runs as a
	// one-cell campaign so single-request misses and batch cells share
	// the engine's bounded pool rather than racing past it.
	type outcome struct {
		c   *cached
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release()
		outs := campaign.All(ctx, s.engine, []campaign.Job[*cached]{
			func(ctx context.Context) (*cached, error) {
				return s.lookupOrCompute(ctx, key, compute)
			},
		})
		ch <- outcome{outs[0].Value, outs[0].Err}
	}()
	select {
	case out := <-ch:
		switch {
		case out.err == nil:
			writeBody(w, out.c.body)
		case errors.Is(out.err, context.DeadlineExceeded) || errors.Is(out.err, context.Canceled):
			// The deadline fired while joining an identical in-flight
			// evaluation: a server-side timeout, not a bad request.
			s.metrics.canceled.Inc()
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("request timed out: %w", out.err))
		default:
			httpError(w, http.StatusUnprocessableEntity, out.err)
		}
	case <-ctx.Done():
		s.metrics.canceled.Inc()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("request timed out: %w", ctx.Err()))
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var batch BatchRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), &batch); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatchItems {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d requests exceeds the %d-item limit", len(batch.Requests), s.cfg.MaxBatchItems))
		return
	}
	s.metrics.batchItems.Add(int64(len(batch.Requests)))

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	actx, aspan := telemetry.StartSpan(ctx, "admission")
	release, err := s.admit(actx)
	aspan.End()
	if err != nil {
		admissionError(w, err)
		return
	}

	// Fan the batch out across the campaign engine: each request is one
	// independent cell, results come back in input order, and the
	// engine-level slot semaphore bounds total parallelism across every
	// concurrent batch. The serving table is pinned once for the whole
	// batch, so all cells evaluate under one characterisation.
	table := s.servingID()
	ch := make(chan []campaign.Outcome[*cached], 1)
	go func() {
		defer release()
		ch <- campaign.Batch(ctx, s.engine, batch.Requests, func(ctx context.Context, req Request) (*cached, error) {
			if err := req.validate(s.analyzer.Registry()); err != nil {
				return nil, err
			}
			return s.lookupOrCompute(ctx, tableKey(canonicalKeyReg(s.analyzer.Registry(), req), table), func(ctx context.Context) (*cached, error) {
				return s.evaluateEncoded(ctx, req, table)
			})
		})
	}()
	var outcomes []campaign.Outcome[*cached]
	select {
	case outcomes = <-ch:
	case <-ctx.Done():
		s.metrics.canceled.Inc()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("batch timed out: %w", ctx.Err()))
		return
	}

	out := BatchResponse{Results: make([]BatchItem, len(outcomes))}
	for i, o := range outcomes {
		if o.Err != nil {
			out.Results[i] = BatchItem{Error: o.Err.Error()}
		} else {
			out.Results[i] = BatchItem{Response: o.Value.resp.(*Response)}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// healthPayload is the GET /healthz body: liveness plus build identity
// and uptime, so one probe answers "is it up" and "what is it".
type healthPayload struct {
	Status        string `json:"status"`
	Version       string `json:"version"`
	GoVersion     string `json:"goVersion"`
	Revision      string `json:"revision"`
	UptimeSeconds int64  `json:"uptimeSeconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	labels := buildInfoLabels()
	writeJSON(w, http.StatusOK, healthPayload{
		Status:        "ok",
		Version:       labels["version"],
		GoVersion:     labels["go"],
		Revision:      labels["revision"],
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
	})
}

// decodeStatus distinguishes an over-limit body (413) from malformed
// JSON (400).
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// admissionError maps admission failures to status codes: overload is
// 429 (the client should back off and retry), cancellation/timeout while
// queued is 503.
func admissionError(w http.ResponseWriter, err error) {
	if errors.Is(err, errOverloaded) {
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	httpError(w, http.StatusServiceUnavailable, err)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
