package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkCacheHit measures the canonical-request cache's hot path: an
// already-seen request resolved key-to-response. This is the acceptance
// bar for duplicate provider submissions — it must be sub-microsecond
// (it is a sharded map lookup plus a CLOCK ref-bit set).
func BenchmarkCacheHit(b *testing.B) {
	s := New(Config{}, nil)
	req := sampleRequest(0)
	key := CanonicalKey(req)
	if _, err := s.lookupOrCompute(context.Background(), key, func(ctx context.Context) (*cached, error) { return s.evaluateEncoded(ctx, req, s.servingID()) }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.lookupOrCompute(context.Background(), key, func(ctx context.Context) (*cached, error) { return s.evaluateEncoded(ctx, req, s.servingID()) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.StatsSnapshot()
	if st.Cache.Misses != 1 {
		b.Fatalf("benchmark loop missed the cache: %+v", st.Cache)
	}
}

// BenchmarkDuplicateRequestEndToEnd is the honest version of
// BenchmarkCacheHit: the full duplicate-query cost including JSON decode
// and canonicalization, without HTTP transport.
func BenchmarkDuplicateRequestEndToEnd(b *testing.B) {
	s := New(Config{}, nil)
	req := sampleRequest(0)
	body := encodeRequest(b, req)
	if _, err := s.lookupOrCompute(context.Background(), CanonicalKey(req), func(ctx context.Context) (*cached, error) { return s.evaluateEncoded(ctx, req, s.servingID()) }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := DecodeRequest(bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.lookupOrCompute(context.Background(), CanonicalKey(dec), func(ctx context.Context) (*cached, error) { return s.evaluateEncoded(ctx, dec, s.servingID()) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdEvaluate is the miss cost the cache amortizes away: a
// full fTC + ILP-PTAC evaluation per iteration.
func BenchmarkColdEvaluate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Vary the request so no two iterations could share a solve.
		req := sampleRequest(i)
		if _, err := Evaluate(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSustainedBatchThroughput drives the HTTP batch endpoint with
// concurrent clients submitting batches that mix fresh and duplicate
// requests (a realistic integration-campaign stream) and reports
// items/sec plus the cache hit rate the stream achieved.
func BenchmarkSustainedBatchThroughput(b *testing.B) {
	const batchSize = 16
	const uniquePool = 32
	s := New(Config{MaxInFlight: 256, QueueDepth: 1024}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := make([][]byte, uniquePool)
	for v := range bodies {
		batch := BatchRequest{}
		for j := 0; j < batchSize; j++ {
			// Half the cells repeat across batches, half are
			// batch-specific duplicates of the variant.
			batch.Requests = append(batch.Requests, sampleRequest((v+j)%8))
		}
		var err error
		bodies[v], err = json.Marshal(batch)
		if err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%uniquePool]
			i++
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()

	st := s.StatsSnapshot()
	items := st.BatchItems
	if items > 0 {
		b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/s")
	}
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		b.ReportMetric(float64(st.Cache.Hits)/float64(lookups), "cache_hit_rate")
	}
	if b.N > uniquePool && st.Cache.Hits == 0 {
		b.Fatal(fmt.Sprintf("sustained stream never hit the cache: %+v", st.Cache))
	}
}
