package service

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dsu"
	"repro/wcet"
)

// V2Request is the wire format of POST /v2/analyze: the generic,
// registry-driven successor of the v1 request. Callers name any subset of
// registered contention models and get exactly those estimates back, in
// request order; the input side additionally admits contender templates
// and exact PTACs so every registered model is reachable over the wire.
type V2Request struct {
	Scenario int `json:"scenario"`
	// Table selects the latency-table version to analyse under — a named
	// ref ("tc27x/default") or an immutable table ID from the daemon's
	// store; empty selects the serving default. Only the daemon honours
	// it (the CLI has no table store and rejects a selection).
	Table string `json:"table,omitempty"`
	// Models selects registered models by canonical name or alias; empty
	// selects the v1 pair ["ftc", "ilpPtac"].
	Models     []string       `json:"models,omitempty"`
	Analysed   dsu.Readings   `json:"analysed"`
	Contenders []dsu.Readings `json:"contenders,omitempty"`
	// Templates are contender resource-usage contracts (for templatePtac):
	// pledged per-path request budgets keyed by access path ("pf0/co").
	Templates []V2Template `json:"templates,omitempty"`
	// AnalysedPTAC / ContenderPTACs are exact per-target access counts
	// (for ideal), keyed by access path.
	AnalysedPTAC   map[string]int64   `json:"analysedPtac,omitempty"`
	ContenderPTACs []map[string]int64 `json:"contenderPtacs,omitempty"`
	// StallMode is "budget" (default) or "exact".
	StallMode string `json:"stallMode,omitempty"`
	// DropContenderInfo computes the fully time-composable ILP variant.
	DropContenderInfo bool `json:"dropContenderInfo,omitempty"`
	// RTA requests a schedulability verdict; unlike v1, Model may name any
	// model in Models.
	RTA *RTARequest `json:"rta,omitempty"`
}

// V2Template is one contender contract in wire form.
type V2Template struct {
	Name        string           `json:"name"`
	MaxRequests map[string]int64 `json:"maxRequests"`
}

// V2Estimate is one model's bound in v2 wire form: the v1 fields plus the
// canonical registry name the caller selected it by.
type V2Estimate struct {
	Name             string  `json:"name"`
	Model            string  `json:"model"`
	IsolationCycles  int64   `json:"isolationCycles"`
	ContentionCycles int64   `json:"contentionCycles"`
	WCETCycles       int64   `json:"wcetCycles"`
	Ratio            float64 `json:"ratio"`
}

// V2Response is the wire format of a /v2/analyze reply: the selected
// models' estimates in request order.
type V2Response struct {
	Estimates []V2Estimate `json:"estimates"`
	RTA       *RTAOut      `json:"rta,omitempty"`
}

// V2ModelInfo describes one registered model in GET /v2/models.
type V2ModelInfo struct {
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
}

// V2ModelsResponse is the wire format of GET /v2/models.
type V2ModelsResponse struct {
	Models []V2ModelInfo `json:"models"`
}

// toSDK maps the v2 wire request onto the SDK facade's request, resolving
// wire-level encodings (scenario number, stall-mode string, access-path
// keys). Model names are resolved later by the analyzer so the error
// lists the serving registry's models.
func (r V2Request) toSDK() (wcet.Request, error) {
	sc, err := scenario(r.Scenario)
	if err != nil {
		return wcet.Request{}, err
	}
	mode, err := stallMode(r.StallMode)
	if err != nil {
		return wcet.Request{}, err
	}
	out := wcet.Request{
		Analysed:          r.Analysed,
		Contenders:        r.Contenders,
		Scenario:          sc,
		StallMode:         mode,
		DropContenderInfo: r.DropContenderInfo,
		Models:            r.Models,
	}
	if len(out.Models) == 0 {
		out.Models = v1Models[:]
	}
	for i, tp := range r.Templates {
		budgets, err := parsePTAC(tp.MaxRequests)
		if err != nil {
			return wcet.Request{}, fmt.Errorf("templates[%d] (%s): %w", i, tp.Name, err)
		}
		out.Templates = append(out.Templates, wcet.Template{Name: tp.Name, MaxRequests: budgets})
	}
	if r.AnalysedPTAC != nil {
		p, err := parsePTAC(r.AnalysedPTAC)
		if err != nil {
			return wcet.Request{}, fmt.Errorf("analysedPtac: %w", err)
		}
		out.AnalysedPTAC = p
	}
	for i, m := range r.ContenderPTACs {
		p, err := parsePTAC(m)
		if err != nil {
			return wcet.Request{}, fmt.Errorf("contenderPtacs[%d]: %w", i, err)
		}
		out.ContenderPTACs = append(out.ContenderPTACs, p)
	}
	if r.RTA != nil {
		out.RTA = &wcet.RTASpec{
			Model:  r.RTA.Model,
			Task:   toRTATask(r.RTA.Task),
			Others: make([]wcet.RTATask, len(r.RTA.Others)),
		}
		for i, o := range r.RTA.Others {
			out.RTA.Others[i] = toRTATask(o)
		}
	}
	return out, nil
}

// parsePTAC decodes a wire PTAC map ("pf0/co" keys) into the SDK form,
// rejecting negative counts so they fail pre-admission, not in the solver.
func parsePTAC(m map[string]int64) (wcet.PTAC, error) {
	out := make(wcet.PTAC, len(m))
	for k, v := range m {
		path, err := wcet.ParseAccessPath(k)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative count %d for %s", v, k)
		}
		out[path] = v
	}
	return out, nil
}

// Prepare validates the wire request and converts it to the SDK form in
// one pass, so the serving hot path parses templates and PTAC maps exactly
// once. It rejects before admission: wire-encoding errors (unknown
// scenario, stall mode, access path, negative PTAC or template counts),
// unknown model names (listing the registered set), an rta.model outside
// the selected model set, and impossible readings. Model-specific input
// requirements (e.g. templatePtac with no templates) are the models' own
// errors and surface at evaluation time — the service cannot know them
// for arbitrary registered models.
func (r V2Request) Prepare(reg *wcet.Registry) (wcet.Request, error) {
	out, err := r.toSDK()
	if err != nil {
		return wcet.Request{}, err
	}
	if err := r.Analysed.Validate(); err != nil {
		return wcet.Request{}, fmt.Errorf("analysed readings: %w", err)
	}
	for i, b := range r.Contenders {
		if err := b.Validate(); err != nil {
			return wcet.Request{}, fmt.Errorf("contender %d readings: %w", i, err)
		}
	}
	for i, tp := range out.Templates {
		if err := tp.Validate(); err != nil {
			return wcet.Request{}, fmt.Errorf("templates[%d] (%s): %w", i, tp.Name, err)
		}
	}
	selected := make(map[string]bool, len(out.Models))
	for _, name := range out.Models {
		// An explicit empty entry would silently resolve to the registry's
		// ilpPtac default — reject it; omitting "models" entirely is how
		// callers ask for the default pair.
		if name == "" {
			return wcet.Request{}, fmt.Errorf(`models entries must be non-empty (omit "models" for the default pair)`)
		}
		canon, err := reg.Canonical(name)
		if err != nil {
			return wcet.Request{}, err
		}
		// Reject rather than silently collapse: the wire contract promises
		// exactly the selected estimates in request order, and a client
		// zipping its list against the response by index would misread a
		// deduplicated reply.
		if selected[canon] {
			return wcet.Request{}, fmt.Errorf("duplicate model selection %q (canonical %s)", name, canon)
		}
		selected[canon] = true
	}
	if r.RTA != nil {
		canon, err := reg.Canonical(r.RTA.Model)
		if err != nil {
			return wcet.Request{}, fmt.Errorf("rta.model: %w", err)
		}
		if !selected[canon] {
			return wcet.Request{}, fmt.Errorf("rta.model %s is not among the requested models", canon)
		}
		for i, o := range r.RTA.Others {
			if o.WCETCycles <= 0 {
				return wcet.Request{}, fmt.Errorf("rta.others[%d] (%s): wcetCycles must be positive", i, o.Name)
			}
		}
	}
	return out, nil
}

// Validate rejects malformed v2 requests; see Prepare for the checks.
func (r V2Request) Validate(reg *wcet.Registry) error {
	_, err := r.Prepare(reg)
	return err
}

// EvaluateV2 runs the selected models (and the optional RTA step) on one
// v2 request through an analyzer. Like Evaluate it is a pure function of
// the request; the daemon calls it per cache miss. A table selection is
// rejected here: only the daemon carries the store that could resolve it
// (it resolves Table to a content address before evaluation instead of
// calling this helper).
func EvaluateV2(an *wcet.Analyzer, req V2Request) (*V2Response, error) {
	if req.Table != "" {
		return nil, fmt.Errorf(`"table" selection requires the daemon's table store (POST the request to wcetd's /v2/analyze)`)
	}
	sdkReq, err := req.Prepare(an.Registry())
	if err != nil {
		return nil, err
	}
	return evaluateV2Prepared(context.Background(), an, sdkReq)
}

// evaluateV2Prepared runs an already-validated, already-converted request —
// the daemon's miss path, where Prepare ran before admission. ctx carries
// trace spans only; cancellation is stripped so the evaluation completes
// for any singleflight followers.
func evaluateV2Prepared(ctx context.Context, an *wcet.Analyzer, sdkReq wcet.Request) (*V2Response, error) {
	res, err := an.Analyze(context.WithoutCancel(ctx), sdkReq)
	if err != nil {
		return nil, err
	}
	out := &V2Response{Estimates: make([]V2Estimate, len(res.Estimates))}
	for i, e := range res.Estimates {
		out.Estimates[i] = V2Estimate{
			Name:             e.Name,
			Model:            e.Model,
			IsolationCycles:  e.IsolationCycles,
			ContentionCycles: e.ContentionCycles,
			WCETCycles:       e.WCET(),
			Ratio:            e.Ratio(),
		}
	}
	if res.RTA != nil {
		out.RTA = toRTAOut(res.RTA)
	}
	return out, nil
}

// CanonicalKeyV2 content-addresses a v2 request for the server's result
// cache. It builds on the v1 canonicalization (normalized defaults,
// contender order canonicalized) and extends it with the selected model
// list (order kept — it is the response order), templates and PTACs.
// Model names — the selected list and rta.model alike — are canonicalized
// against the registry so alias spellings of the same request share an
// entry; template and contender-PTAC order is canonicalized like the
// contender set (every model is permutation-invariant in them).
func CanonicalKeyV2(reg *wcet.Registry, req V2Request) string {
	base := canonicalKeyReg(reg, Request{
		Scenario:          req.Scenario,
		Analysed:          req.Analysed,
		Contenders:        req.Contenders,
		StallMode:         req.StallMode,
		DropContenderInfo: req.DropContenderInfo,
		RTA:               req.RTA,
	})

	models := req.Models
	if len(models) == 0 {
		models = v1Models[:]
	}
	canon := make([]string, len(models))
	for i, m := range models {
		c, err := reg.Canonical(m)
		if err != nil {
			// Unknown names never reach the cache (Validate rejects them
			// first); keep the raw spelling so the key stays total.
			c = m
		}
		canon[i] = c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "v2;%s;models=%s", base, strings.Join(canon, ","))
	tps := make([]string, len(req.Templates))
	for i, tp := range req.Templates {
		tps[i] = fmt.Sprintf("%q:%s", tp.Name, canonWirePTAC(tp.MaxRequests))
	}
	sort.Strings(tps)
	for _, tp := range tps {
		fmt.Fprintf(&b, ";tp=%s", tp)
	}
	if req.AnalysedPTAC != nil {
		fmt.Fprintf(&b, ";pa=%s", canonWirePTAC(req.AnalysedPTAC))
	}
	pbs := make([]string, len(req.ContenderPTACs))
	for i, p := range req.ContenderPTACs {
		pbs[i] = canonWirePTAC(p)
	}
	sort.Strings(pbs)
	for _, p := range pbs {
		fmt.Fprintf(&b, ";pb=%s", p)
	}
	return hashKey(b.String())
}

// DecodeV2Request reads one JSON v2 request with the service's strict
// decode policy.
func DecodeV2Request(r io.Reader) (V2Request, error) {
	var req V2Request
	if err := decodeStrict(r, &req); err != nil {
		return V2Request{}, err
	}
	return req, nil
}

// RunCLIV2 is cmd/wcet's -models behaviour: decode one v2-shaped request,
// override its model selection with the flag's list when one was given,
// evaluate through the default analyzer and write the v2 response — the
// same three calls wcetd's /v2/analyze serves, so CLI and daemon emit
// byte-identical JSON in v2 mode too.
func RunCLIV2(in io.Reader, out io.Writer, models []string) error {
	req, err := DecodeV2Request(in)
	if err != nil {
		return err
	}
	if len(models) > 0 {
		req.Models = models
	}
	resp, err := EvaluateV2(defaultAnalyzer, req)
	if err != nil {
		return err
	}
	return EncodeJSON(out, resp)
}

func canonWirePTAC(m map[string]int64) string {
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
