package service

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return cond()
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{HistoryInterval: 30 * time.Millisecond})

	// Traffic, then enough sampling ticks to retain it.
	if status, _ := post(t, ts.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0))); status != http.StatusOK {
		t.Fatalf("warmup request status %d", status)
	}
	var hist historyResponse
	ok := waitFor(t, 5*time.Second, func() bool {
		getJSON(t, ts.URL+"/v2/metrics/history?series=wcetd_requests_total*", &hist)
		return len(hist.Points) >= 2
	})
	if !ok {
		t.Fatalf("history never filled: %+v", hist)
	}
	if hist.Points[len(hist.Points)-1].V < 1 {
		t.Fatalf("request counter not in history: %+v", hist.Points)
	}

	// No series parameter: list the retained names.
	var list struct {
		Series []string `json:"series"`
	}
	if status := getJSON(t, ts.URL+"/v2/metrics/history", &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if len(list.Series) == 0 {
		t.Fatal("series list empty")
	}

	// Malformed range parameters are 400s.
	for _, q := range []string{"from=abc", "to=-5", "step=x"} {
		if status := getJSON(t, ts.URL+"/v2/metrics/history?series=a&"+q, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, status)
		}
	}
}

func TestAlertsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out alertsResponse
	if status := getJSON(t, ts.URL+"/v2/alerts", &out); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(out.Objectives) == 0 {
		t.Fatal("no objectives (defaults expected)")
	}
	if out.Active == nil && len(out.Active) != 0 {
		t.Fatalf("active = %+v", out.Active)
	}
}

func TestTraceTailSamplingAndSearch(t *testing.T) {
	// A 1ns slow threshold tail-samples every traceable request without
	// any client opt-in.
	_, ts := newTestServer(t, Config{SlowRequestThreshold: time.Nanosecond})

	if status, _ := post(t, ts.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0))); status != http.StatusOK {
		t.Fatal("request failed")
	}
	var found tracesResponse
	ok := waitFor(t, 2*time.Second, func() bool {
		getJSON(t, ts.URL+"/v2/traces?endpoint=v1_wcet", &found)
		return len(found.Traces) >= 1
	})
	if !ok {
		t.Fatalf("tail-sampled trace never stored: %+v", found)
	}
	sum := found.Traces[0]
	if sum.Sampled != "slow" {
		t.Fatalf("sampled = %q, want slow", sum.Sampled)
	}

	// Retrieval by ID returns the span tree.
	var st obs.StoredTrace
	if status := getJSON(t, ts.URL+"/v2/traces/"+sum.ID, &st); status != http.StatusOK {
		t.Fatalf("get by id status %d", status)
	}
	if st.Trace == nil || st.Trace.Root == nil || st.Trace.Root.Name != "v1_wcet" {
		t.Fatalf("stored trace = %+v", st)
	}
	if status := getJSON(t, ts.URL+"/v2/traces/doesnotexist", nil); status != http.StatusNotFound {
		t.Fatalf("missing trace status %d, want 404", status)
	}

	// Filters validate.
	for _, q := range []string{"min_ms=abc", "since=-1", "limit=0"} {
		if status := getJSON(t, ts.URL+"/v2/traces?"+q, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, status)
		}
	}
}

func TestTraceHeaderRequestStored(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowRequestThreshold: -1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/wcet",
		bytes.NewReader(encodeRequest(t, sampleRequest(0))))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(TraceIDHeader)
	if id == "" {
		t.Fatal("no trace id header")
	}
	var st obs.StoredTrace
	ok := waitFor(t, 2*time.Second, func() bool {
		return getJSON(t, ts.URL+"/v2/traces/"+id, &st) == http.StatusOK
	})
	if !ok {
		t.Fatalf("header-requested trace %s not stored", id)
	}
	if st.Sampled != "header" {
		t.Fatalf("sampled = %q, want header", st.Sampled)
	}
}

// TestObservabilitySurvivesRestart proves the durability contract at the
// service level: metrics history and stored traces written by one server
// are served by the next one opened over the same ObsDir.
func TestObservabilitySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		ObsDir:               dir,
		HistoryInterval:      30 * time.Millisecond,
		SlowRequestThreshold: time.Nanosecond,
	}
	srvA, tsA := newTestServer(t, cfg)
	if status, _ := post(t, tsA.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0))); status != http.StatusOK {
		t.Fatal("request failed")
	}
	var hist historyResponse
	if !waitFor(t, 5*time.Second, func() bool {
		getJSON(t, tsA.URL+"/v2/metrics/history?series=wcetd_requests_total*", &hist)
		return len(hist.Points) >= 2
	}) {
		t.Fatal("history never filled")
	}
	var found tracesResponse
	if !waitFor(t, 2*time.Second, func() bool {
		getJSON(t, tsA.URL+"/v2/traces", &found)
		return len(found.Traces) >= 1
	}) {
		t.Fatal("trace never stored")
	}
	traceID := found.Traces[0].ID
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Second server over the same dir: pre-restart history and traces
	// must be queryable before it has sampled anything itself.
	srvB, tsB := newTestServer(t, Config{
		ObsDir:          dir,
		HistoryInterval: time.Hour, // no new samples during the test
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srvB.Shutdown(ctx)
	}()
	var hist2 historyResponse
	getJSON(t, tsB.URL+"/v2/metrics/history?series=wcetd_requests_total*", &hist2)
	if len(hist2.Points) < 2 {
		t.Fatalf("replayed history has %d points, want >= 2", len(hist2.Points))
	}
	var st obs.StoredTrace
	if status := getJSON(t, tsB.URL+"/v2/traces/"+traceID, &st); status != http.StatusOK {
		t.Fatalf("pre-restart trace %s: status %d", traceID, status)
	}
}

func TestHealthzReportsBuildAndUptime(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var hp healthPayload
	if status := getJSON(t, ts.URL+"/healthz", &hp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if hp.Status != "ok" {
		t.Fatalf("status = %q", hp.Status)
	}
	if hp.GoVersion == "" || hp.Version == "" || hp.Revision == "" {
		t.Fatalf("build fields empty: %+v", hp)
	}
	if hp.UptimeSeconds < 0 {
		t.Fatalf("uptime = %d", hp.UptimeSeconds)
	}
}

func TestParseStreamInterval(t *testing.T) {
	cases := []struct {
		q       string
		want    time.Duration
		wantErr bool
	}{
		{"", time.Second, false},
		{"1000", time.Second, false},
		{"50", 100 * time.Millisecond, false}, // floor clamp
		{"3600000", 60 * time.Second, false},  // ceiling clamp
		{"60000", 60 * time.Second, false},    // at the ceiling
		{"abc", 0, true},
		{"0", 0, true},
		{"-5", 0, true},
		{"1.5", 0, true},
	}
	for _, c := range cases {
		got, err := parseStreamInterval(c.q)
		if c.wantErr != (err != nil) {
			t.Errorf("%q: err = %v, wantErr %v", c.q, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("%q: %v, want %v", c.q, got, c.want)
		}
	}
}

func TestStatsStreamRejectsBadInterval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"interval=abc", "interval=0", "interval=-100", "interval=1e3"} {
		resp, err := http.Get(ts.URL + "/v2/stats/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
