package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestSingleEndpointByteIdenticalToCLI is the drift gate: for the same
// request, wcetd's single-estimate endpoint and cmd/wcet's stdout must be
// byte-for-byte equal — on a cache miss and on the subsequent hit.
func TestSingleEndpointByteIdenticalToCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqs := []Request{sampleRequest(0), sampleRequest(1), rtaRequest()}
	exact := sampleRequest(2)
	exact.StallMode = "exact"
	exact.DropContenderInfo = true
	reqs = append(reqs, exact)

	for i, req := range reqs {
		body := encodeRequest(t, req)
		var cli bytes.Buffer
		if err := RunCLI(bytes.NewReader(body), &cli); err != nil {
			t.Fatalf("req %d: CLI: %v", i, err)
		}
		for pass, label := range []string{"cold", "warm"} {
			status, got := post(t, ts.URL+"/v1/wcet", body)
			if status != http.StatusOK {
				t.Fatalf("req %d (%s): status %d: %s", i, label, status, got)
			}
			if !bytes.Equal(got, cli.Bytes()) {
				t.Errorf("req %d (pass %d): daemon body differs from CLI\ndaemon: %s\ncli: %s", i, pass, got, cli.Bytes())
			}
		}
	}
}

func TestSingleEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := sampleRequest(0)
	bad.Scenario = 7
	status, body := post(t, ts.URL+"/v1/wcet", encodeRequest(t, bad))
	if status != http.StatusBadRequest {
		t.Errorf("invalid scenario: status %d, want 400", status)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("error body %q not a JSON error", body)
	}

	if status, _ := post(t, ts.URL+"/v1/wcet", []byte(`{"scenario":1,"nope":1}`)); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}

	resp, err := http.Get(ts.URL + "/v1/wcet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

func TestBatchOrderAndPartialErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	good0, good1 := sampleRequest(0), sampleRequest(1)
	bad := sampleRequest(2)
	bad.Analysed.PS = -1

	body, err := json.Marshal(BatchRequest{Requests: []Request{good0, bad, good1}})
	if err != nil {
		t.Fatal(err)
	}
	status, out := post(t, ts.URL+"/v1/batch", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	var batch BatchResponse
	if err := json.Unmarshal(out, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(batch.Results))
	}
	if batch.Results[0].Response == nil || batch.Results[2].Response == nil {
		t.Fatal("valid cells failed")
	}
	if batch.Results[1].Error == "" || batch.Results[1].Response != nil {
		t.Fatalf("invalid cell not reported: %+v", batch.Results[1])
	}
	// Input order: results must correspond to their requests.
	if got := batch.Results[0].Response.FTC.IsolationCycles; got != good0.Analysed.CCNT {
		t.Errorf("result 0 isolation %d, want %d", got, good0.Analysed.CCNT)
	}
	if got := batch.Results[2].Response.FTC.IsolationCycles; got != good1.Analysed.CCNT {
		t.Errorf("result 2 isolation %d, want %d", got, good1.Analysed.CCNT)
	}
}

func TestCacheHitAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := encodeRequest(t, sampleRequest(0))

	post(t, ts.URL+"/v1/wcet", body)
	st := s.StatsSnapshot()
	if st.Cache.Hits != 0 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("after first request: %+v", st.Cache)
	}

	post(t, ts.URL+"/v1/wcet", body)
	st = s.StatsSnapshot()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("after repeat request: %+v", st.Cache)
	}

	// A batch of the same request plus one new one: one more miss, the
	// duplicates all hit (or dedup onto the in-flight solve).
	batchBody, err := json.Marshal(BatchRequest{Requests: []Request{
		sampleRequest(0), sampleRequest(0), sampleRequest(3),
	}})
	if err != nil {
		t.Fatal(err)
	}
	status, out := post(t, ts.URL+"/v1/batch", batchBody)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, out)
	}
	st = s.StatsSnapshot()
	if st.Cache.Misses+st.Cache.Dedup < 2 || st.Cache.Hits < 3 {
		t.Errorf("after batch: %+v", st.Cache)
	}
	if st.SingleRequests != 2 || st.BatchRequests != 1 || st.BatchItems != 3 {
		t.Errorf("request counters: %+v", st)
	}

	// The stats endpoint serves the same snapshot.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Stats
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Cache.Misses != st.Cache.Misses || wire.Cache.Hits < st.Cache.Hits {
		t.Errorf("stats endpoint %+v inconsistent with snapshot %+v", wire.Cache, st.Cache)
	}
	if wire.Workers <= 0 || wire.MaxInFlight <= 0 {
		t.Errorf("stats missing configuration: %+v", wire)
	}
}

// TestConcurrentBatchHammer fires 64 concurrent batch requests (the
// acceptance bar) at one server and asserts every response is
// byte-identical to the serially-computed reference for its variant —
// deterministic results under full concurrency, race detector on in CI.
func TestConcurrentBatchHammer(t *testing.T) {
	const clients = 64
	const variants = 4
	s, ts := newTestServer(t, Config{MaxInFlight: clients, QueueDepth: clients})

	// Each variant is a batch mixing unique and duplicate requests.
	bodies := make([][]byte, variants)
	refs := make([][]byte, variants)
	for v := 0; v < variants; v++ {
		batch := BatchRequest{Requests: []Request{
			sampleRequest(v), sampleRequest(v + 1), sampleRequest(v), rtaRequest(),
		}}
		b, err := json.Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		bodies[v] = b
		status, ref := post(t, ts.URL+"/v1/batch", b)
		if status != http.StatusOK {
			t.Fatalf("variant %d reference: status %d: %s", v, status, ref)
		}
		refs[v] = ref
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			v := c % variants
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(bodies[v]))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, buf.Bytes())
				return
			}
			if !bytes.Equal(buf.Bytes(), refs[v]) {
				errs <- fmt.Errorf("client %d: response differs from reference\ngot: %s\nwant: %s", c, buf.Bytes(), refs[v])
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.StatsSnapshot()
	if st.RejectedOverload != 0 {
		t.Errorf("rejected %d requests despite capacity", st.RejectedOverload)
	}
	// Only the reference pass can miss; all 64 hammer batches (256 items)
	// must be served from the cache.
	if st.Cache.Hits < clients*4 {
		t.Errorf("cache hits %d, want >= %d: %+v", st.Cache.Hits, clients*4, st.Cache)
	}
}

func TestAdmissionOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 0})

	// Occupy the only slot.
	release, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	status, body := post(t, ts.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0)))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", status, body)
	}
	if st := s.StatsSnapshot(); st.RejectedOverload != 1 {
		t.Errorf("rejectedOverload = %d, want 1", st.RejectedOverload)
	}

	// Cache hits must bypass admission even while saturated: warm the
	// cache with the slot free, re-saturate, and repeat the request.
	release()
	if status, _ := post(t, ts.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0))); status != http.StatusOK {
		t.Fatalf("warming request failed: %d", status)
	}
	release, err = s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if status, _ := post(t, ts.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0))); status != http.StatusOK {
		t.Errorf("cache hit rejected while saturated: %d", status)
	}
}

func TestBodyAndBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048, MaxBatchItems: 2})

	// Oversized body: rejected with 413 before any evaluation.
	big := encodeRequest(t, sampleRequest(0))
	big = append(big[:len(big)-1], bytes.Repeat([]byte(" "), 4096)...)
	big = append(big, '}')
	if status, _ := post(t, ts.URL+"/v1/wcet", big); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized single body: status %d, want 413", status)
	}

	// Over-long batch: rejected with 413 before admission.
	batch := BatchRequest{Requests: []Request{sampleRequest(0), sampleRequest(1), sampleRequest(2)}}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	status, out := post(t, ts.URL+"/v1/batch", body)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("over-long batch: status %d, want 413: %s", status, out)
	}

	// At the limit: fine.
	batch.Requests = batch.Requests[:2]
	if body, err = json.Marshal(batch); err != nil {
		t.Fatal(err)
	}
	if status, out := post(t, ts.URL+"/v1/batch", body); status != http.StatusOK {
		t.Errorf("at-limit batch: status %d: %s", status, out)
	}
}

func TestQueuedRequestTimesOut(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 4, RequestTimeout: 20 * time.Millisecond})

	release, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	status, body := post(t, ts.URL+"/v1/wcet", encodeRequest(t, sampleRequest(0)))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
	if st := s.StatsSnapshot(); st.Canceled == 0 {
		t.Error("canceled counter not incremented")
	}
}

func TestAdmitRespectsCancelledContext(t *testing.T) {
	s := New(Config{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.admit(ctx); err == nil {
		t.Fatal("admit succeeded with cancelled context")
	}
	if st := s.StatsSnapshot(); st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := New(Config{}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	status, _ := post(t, url+"/v1/wcet", encodeRequest(t, sampleRequest(0)))
	if status != http.StatusOK {
		t.Fatalf("pre-shutdown request: %d", status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
