package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dsu"
	"repro/wcet"
)

// CanonicalKey content-addresses a request: two requests get the same key
// iff the models are guaranteed to produce the same response for both.
// Defaults are normalized (stallMode "" ≡ "budget", rta.model "" ≡
// "ilpPtac", an unnamed rta task ≡ "analysed") and contender order is
// canonicalized — both models are permutation-invariant in the contender
// set (fTC uses only its cardinality; the ILP objective sums symmetric
// per-contender terms), so provider submissions that list the same
// co-runners in a different order hit the same cache entry.
//
// The key is a SHA-256 over an unambiguous field-tagged rendering, so
// adjacent numeric fields cannot alias and arbitrarily large requests
// address a fixed-size key.
func CanonicalKey(req Request) string {
	return canonicalKeyReg(wcet.DefaultRegistry(), req)
}

// canonicalKeyReg is CanonicalKey resolving alias spellings through a
// specific registry — the server passes its own, so custom-registry
// aliases collapse like built-in ones.
func canonicalKeyReg(reg *wcet.Registry, req Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1;sc=%d;mode=%s;drop=%t;a=%s", req.Scenario, canonStallMode(req.StallMode), req.DropContenderInfo, canonReadings(req.Analysed))

	cs := make([]string, len(req.Contenders))
	for i, c := range req.Contenders {
		cs[i] = canonReadings(c)
	}
	sort.Strings(cs)
	b.WriteString(";b=")
	b.WriteString(strings.Join(cs, "|"))

	if req.RTA != nil {
		// Collapse alias spellings (v1 validation accepts them) so "FTC"
		// and "ftc" share an entry; unknown names keep their raw spelling
		// — they never reach the cache, validation rejects them first.
		model, err := reg.Canonical(req.RTA.Model)
		if err != nil {
			model = req.RTA.Model
		}
		task := req.RTA.Task
		if task.Name == "" {
			task.Name = "analysed"
		}
		// The analysed task's WCETCycles is an output, not an input:
		// exclude it so requests differing only there still collide.
		fmt.Fprintf(&b, ";rta=%s;t=%s", model, canonRTATask(task, false))
		// Priority ties break by declaration order, so co-resident task
		// order is semantic — keep it.
		for _, o := range req.RTA.Others {
			b.WriteString(";o=")
			b.WriteString(canonRTATask(o, true))
		}
	}

	return hashKey(b.String())
}

// hashKey folds a canonical rendering into the fixed-size cache key.
func hashKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func canonStallMode(s string) string {
	if s == "" {
		return "budget"
	}
	return s
}

func canonReadings(r dsu.Readings) string {
	return fmt.Sprintf("c%d,ps%d,ds%d,pm%d,mc%d,md%d", r.CCNT, r.PS, r.DS, r.PM, r.DMC, r.DMD)
}

func canonRTATask(t RTATask, withWCET bool) string {
	w := int64(0)
	if withWCET {
		w = t.WCETCycles
	}
	return fmt.Sprintf("%q,w%d,p%d,d%d,pr%d", t.Name, w, t.PeriodCycles, t.DeadlineCycles, t.Priority)
}
