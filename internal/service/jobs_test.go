package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/wcet"
)

// campaignSpec is the small multi-cell grid the campaign tests submit:
// 2 scenarios x 3 levels, ftc only, short app window — 6 cells.
func campaignSpec() jobs.Spec {
	return jobs.Spec{Grid: experiments.GridSpec{
		Scenarios:     []int{1, 2},
		Levels:        []string{"H-Load", "M-Load", "L-Load"},
		Models:        []string{"ftc"},
		AppIterations: 60,
	}}
}

// campaignReference computes, fully in-process and uninterrupted, the
// artifact bytes the server must serve for spec: the byte-identity
// oracle for the wire and restart paths.
func campaignReference(t testing.TB, srv *Server, spec jobs.Spec) []byte {
	t.Helper()
	grid, err := spec.Grid.Compile(srv.TableStore(), wcet.DefaultRegistry())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := experiments.NewRunner(nil).Sweep(context.Background(), wcet.TC27x(), grid)
	if err != nil {
		t.Fatal(err)
	}
	data, err := experiments.EncodeArtifact(experiments.WirePoints(pts))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func submitCampaign(t testing.TB, base string, spec jobs.Spec) jobs.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	status, resp := post(t, base+"/v2/campaigns", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, resp)
	}
	var st jobs.Status
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatalf("submit: decoding %s: %v", resp, err)
	}
	if st.ID == "" {
		t.Fatalf("submit: empty job id in %s", resp)
	}
	return st
}

func campaignStatus(t testing.TB, base, id string) (jobs.Status, int) {
	t.Helper()
	resp, err := http.Get(base + "/v2/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("status: decoding %s: %v", raw, err)
		}
	}
	return st, resp.StatusCode
}

// waitCampaign polls until the job reaches a terminal state.
func waitCampaign(t testing.TB, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, code := campaignStatus(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q (%d/%d cells)", id, st.State, st.DoneCells, st.TotalCells)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID    string
	Event string
	Data  string
}

// readSSE parses server-sent events from r until the stream ends or
// limit events arrive (limit <= 0 reads to EOF).
func readSSE(t testing.TB, r io.Reader, limit int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			if cur.Event != "" || cur.Data != "" || cur.ID != "" {
				events = append(events, cur)
				cur = sseEvent{}
				if limit > 0 && len(events) >= limit {
					return events
				}
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

// TestCampaignEndToEnd submits a multi-cell campaign over the wire,
// waits for completion, and checks the served artifact is byte-identical
// to an uninterrupted in-process sweep of the same grid.
func TestCampaignEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	spec := campaignSpec()
	want := campaignReference(t, srv, spec)

	st := submitCampaign(t, ts.URL, spec)
	if st.TotalCells != 6 {
		t.Fatalf("TotalCells = %d, want 6", st.TotalCells)
	}
	if st.BaseTable != string(srv.servingID()) {
		t.Fatalf("BaseTable = %q, want serving table %q", st.BaseTable, srv.servingID())
	}

	final := waitCampaign(t, ts.URL, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state = %q (%s), want done", final.State, final.Error)
	}
	if final.DoneCells != final.TotalCells {
		t.Fatalf("DoneCells = %d, want %d", final.DoneCells, final.TotalCells)
	}

	resp, err := http.Get(ts.URL + "/v2/campaigns/" + st.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact: HTTP %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact differs from in-process sweep:\n got: %s\nwant: %s", got, want)
	}
	sum := sha256.Sum256(got)
	if etag := resp.Header.Get("ETag"); etag != `"`+hex.EncodeToString(sum[:])+`"` {
		t.Fatalf("ETag %q is not the artifact content address", etag)
	}
	if final.Artifact != hex.EncodeToString(sum[:]) {
		t.Fatalf("status artifact id %q != content address %s", final.Artifact, hex.EncodeToString(sum[:]))
	}

	// The job shows up in the listing.
	listResp, err := http.Get(ts.URL + "/v2/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list V2CampaignList
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	foundListed := false
	for _, item := range list.Campaigns {
		if item.ID == st.ID {
			foundListed = true
		}
	}
	if !foundListed {
		t.Fatalf("job %s missing from listing %+v", st.ID, list.Campaigns)
	}
}

// TestCampaignSubmitRejections checks that grid validation runs before
// admission and maps onto client errors.
func TestCampaignSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown level", `{"grid":{"levels":["X-Load"]}}`, http.StatusBadRequest},
		{"empty levels dimension", `{"grid":{"levels":[]}}`, http.StatusBadRequest},
		{"unknown model", `{"grid":{"models":["nope"]}}`, http.StatusBadRequest},
		{"unknown field", `{"grid":{"bogus":1}}`, http.StatusBadRequest},
		{"unknown base table", `{"grid":{},"table":"no/such/ref"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, resp := post(t, ts.URL+"/v2/campaigns", []byte(tc.body))
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, resp)
		}
	}
	if _, code := campaignStatus(t, ts.URL, "j-doesnotexist"); code != http.StatusNotFound {
		t.Errorf("unknown job status: HTTP %d, want 404", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v2/campaigns/j-doesnotexist", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job delete: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestCampaignStreamReplay runs a campaign to completion and checks the
// SSE stream: a fresh subscription replays the full numbered event log
// and ends with the terminal event; a Last-Event-ID reconnect replays
// exactly the missed suffix.
func TestCampaignStreamReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitCampaign(t, ts.URL, campaignSpec())
	waitCampaign(t, ts.URL, st.ID)

	streamURL := ts.URL + "/v2/campaigns/" + st.ID + "/stream"
	resp, err := http.Get(streamURL)
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7 (6 cells + terminal): %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.ID != strconv.Itoa(i+1) {
			t.Fatalf("event %d has id %q, want %d", i, ev.ID, i+1)
		}
		wantType := "cell"
		if i == 6 {
			wantType = "state"
		}
		if ev.Event != wantType {
			t.Fatalf("event %d has type %q, want %q", i, ev.Event, wantType)
		}
	}
	var terminal jobs.Event
	if err := json.Unmarshal([]byte(events[6].Data), &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.State != jobs.StateDone || terminal.Done != 6 || terminal.Total != 6 {
		t.Fatalf("terminal event %+v, want done 6/6", terminal)
	}

	// Reconnect with Last-Event-ID: 4 — replay must start at seq 5.
	req, err := http.NewRequest(http.MethodGet, streamURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "4")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(tail) != 3 || tail[0].ID != "5" || tail[2].Event != "state" {
		t.Fatalf("Last-Event-ID replay = %+v, want events 5..7", tail)
	}

	// Query-parameter fallback for clients that cannot set the header.
	resp, err = http.Get(streamURL + "?lastEventId=6")
	if err != nil {
		t.Fatal(err)
	}
	tail = readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(tail) != 1 || tail[0].Event != "state" {
		t.Fatalf("lastEventId=6 replay = %+v, want only terminal event", tail)
	}

	// Malformed resume position is a client error, not a stream.
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: HTTP %d, want 400", resp.StatusCode)
	}
}

// hogEngine occupies one interactive engine slot until release is
// closed; it returns once the slot is held.
func hogEngine(t testing.TB, eng *campaign.Engine) (release func()) {
	t.Helper()
	acquired := make(chan struct{})
	releaseCh := make(chan struct{})
	go campaign.All(context.Background(), eng, []campaign.Job[struct{}]{
		func(ctx context.Context) (struct{}, error) {
			close(acquired)
			<-releaseCh
			return struct{}{}, nil
		},
	})
	select {
	case <-acquired:
	case <-time.After(30 * time.Second):
		t.Fatal("hog job never acquired an engine slot")
	}
	var once bool
	return func() {
		if !once {
			once = true
			close(releaseCh)
		}
	}
}

// TestCampaignStreamDrainOnShutdown opens a progress stream on a job
// that cannot make progress (the engine is fully occupied by interactive
// work) and checks graceful shutdown ends the stream with a drain event
// instead of holding the drain hostage or faking a terminal state.
func TestCampaignStreamDrainOnShutdown(t *testing.T) {
	eng := campaign.New(1)
	srv := New(Config{}, eng)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := hogEngine(t, eng)
	defer release()

	st := submitCampaign(t, ts.URL, campaignSpec())

	resp, err := http.Get(ts.URL + "/v2/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	got := make(chan []sseEvent, 1)
	go func() { got <- readSSE(t, resp.Body, 1) }()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown with open campaign stream: %v", err)
	}
	select {
	case events := <-got:
		if len(events) != 1 || events[0].Event != "drain" {
			t.Fatalf("stream ended with %+v, want a single drain event", events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not end after shutdown")
	}
}

// TestCampaignResumeAcrossRestart is the service-level durability test:
// a campaign submitted over the wire is interrupted by a graceful
// daemon shutdown mid-job, a new server over the same jobs directory
// resumes it from the checkpoint, the SSE stream resumes across the
// restart via Last-Event-ID, and the final artifact is byte-identical
// to an uninterrupted in-process sweep.
func TestCampaignResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := campaignSpec()
	// Extra perturbation cells widen the window between "some cells
	// checkpointed" and "job done" so the shutdown lands mid-job.
	spec.Grid.Perturbations = []experiments.PerturbationSpec{
		{},
		{Name: "up10", ScalePercent: 110},
		{Name: "up20", ScalePercent: 120},
		{Name: "down10", ScalePercent: 90},
	}

	engA := campaign.New(1)
	srvA := New(Config{JobsDir: dir}, engA)
	tsA := httptest.NewServer(srvA.Handler())
	want := campaignReference(t, srvA, spec)

	st := submitCampaign(t, tsA.URL, spec)
	if st.TotalCells != 24 {
		t.Fatalf("TotalCells = %d, want 24", st.TotalCells)
	}

	// Wait for partial progress, then take the engine's only slot with
	// interactive work: background cells park, so the job is guaranteed
	// still running when shutdown begins.
	deadline := time.Now().Add(120 * time.Second)
	for {
		cur, code := campaignStatus(t, tsA.URL, st.ID)
		if code != http.StatusOK {
			t.Fatalf("status: HTTP %d", code)
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished (state %q) before the test could interrupt it", cur.State)
		}
		if cur.DoneCells >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
	}
	release := hogEngine(t, engA)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srvA.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown mid-job: %v", err)
	}
	tsA.Close()
	release()

	// Restart over the same jobs directory: the job resumes from its
	// checkpoint and runs to completion.
	srvB := New(Config{JobsDir: dir}, nil)
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srvB.Shutdown(ctx)
	}()

	restored, code := campaignStatus(t, tsB.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("restored status: HTTP %d", code)
	}
	if restored.State.Terminal() && restored.State != jobs.StateDone {
		t.Fatalf("restored job in state %q", restored.State)
	}
	checkpointed := restored.DoneCells
	if checkpointed == 0 {
		t.Fatal("no checkpointed cells survived the restart")
	}
	t.Logf("restart restored %d/%d cells from checkpoint", checkpointed, restored.TotalCells)

	// SSE resume across the restart: subscribing after the last event
	// seen before shutdown replays only the missing suffix.
	resp, err := http.Get(tsB.URL + "/v2/campaigns/" + st.ID + "/stream?lastEventId=" + strconv.Itoa(checkpointed))
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if len(events) != (24-checkpointed)+1 {
		t.Fatalf("resumed stream replayed %d events, want %d cells + terminal", len(events), 24-checkpointed)
	}
	if first := events[0]; first.ID != strconv.Itoa(checkpointed+1) {
		t.Fatalf("resumed stream starts at id %q, want %d", first.ID, checkpointed+1)
	}
	if last := events[len(events)-1]; last.Event != "state" {
		t.Fatalf("resumed stream ended with %+v, want terminal state event", last)
	}

	final := waitCampaign(t, tsB.URL, st.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("resumed job state = %q (%s), want done", final.State, final.Error)
	}

	artResp, err := http.Get(tsB.URL + "/v2/campaigns/" + st.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer artResp.Body.Close()
	got, err := io.ReadAll(artResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if artResp.StatusCode != http.StatusOK {
		t.Fatalf("artifact: HTTP %d: %s", artResp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact differs from uninterrupted sweep:\n got: %s\nwant: %s", got, want)
	}
}

// TestCampaignCancelOverWire cancels a parked job via DELETE and checks
// the cancellation is terminal and idempotent.
func TestCampaignCancelOverWire(t *testing.T) {
	eng := campaign.New(1)
	srv := New(Config{}, eng)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	release := hogEngine(t, eng)
	defer release()

	st := submitCampaign(t, ts.URL, campaignSpec())
	del := func() (jobs.Status, int) {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v2/campaigns/"+st.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var out jobs.Status
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("decoding %s: %v", raw, err)
			}
		}
		return out, resp.StatusCode
	}
	if _, code := del(); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	final := waitCampaign(t, ts.URL, st.ID)
	if final.State != jobs.StateCanceled {
		t.Fatalf("state after DELETE = %q, want canceled", final.State)
	}
	if again, code := del(); code != http.StatusOK || again.State != jobs.StateCanceled {
		t.Fatalf("second DELETE: HTTP %d state %q, want 200 canceled", code, again.State)
	}
}
