// Package service is the serving layer over the repro/wcet SDK: the
// request/response API shared by the cmd/wcet CLI and the cmd/wcetd
// daemon, request canonicalization and content-addressed result caching,
// and an HTTP server with admission control that fans batch requests out
// across the campaign engine's worker pool.
//
// The industrial workflow the paper motivates — an OEM integrating tasks
// from many software providers, each needing contention-aware WCET
// verdicts from DSU readings — is a query stream, not a one-shot
// computation. This package turns the models into a service for that
// stream while guaranteeing the daemon and the CLI can never drift: both
// decode requests with DecodeRequest, evaluate them with Evaluate, and
// encode responses with EncodeJSON, so for the same input they emit
// byte-identical JSON (asserted by tests).
//
// Two API versions are served. /v1 is frozen: it always computes the fTC
// and ILP-PTAC pair and its wire format is pinned byte-for-byte by golden
// fixtures. /v2/analyze is generic over the wcet model registry — callers
// select any subset of registered models by name — so a newly registered
// ContentionModel is servable with no change to this package.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dsu"
	"repro/wcet"
)

// Request is one WCET-analysis query: the scenario the deployment is
// configured under, the analysed task's isolation readings, and the
// readings of its future contenders. It is the wire format of the
// cmd/wcet CLI, of wcetd's single-estimate endpoint, and of each element
// of wcetd's batch endpoint.
type Request struct {
	Scenario   int            `json:"scenario"`
	Analysed   dsu.Readings   `json:"analysed"`
	Contenders []dsu.Readings `json:"contenders"`
	// StallMode is "budget" (default) or "exact".
	StallMode string `json:"stallMode,omitempty"`
	// DropContenderInfo computes the fully time-composable ILP variant.
	DropContenderInfo bool `json:"dropContenderInfo,omitempty"`
	// RTA, when present, additionally requests a fixed-priority
	// response-time-analysis verdict for the analysed task among the
	// given co-resident tasks, using one of the computed WCET bounds.
	RTA *RTARequest `json:"rta,omitempty"`
}

// RTATask describes one periodic task for the RTA step. For the analysed
// task WCETCycles is ignored — it is filled in from the selected model's
// bound; co-resident tasks must state theirs.
type RTATask struct {
	Name           string `json:"name"`
	WCETCycles     int64  `json:"wcetCycles,omitempty"`
	PeriodCycles   int64  `json:"periodCycles"`
	DeadlineCycles int64  `json:"deadlineCycles,omitempty"`
	Priority       int    `json:"priority"`
}

// RTARequest asks for a schedulability verdict on the analysed task's
// core.
type RTARequest struct {
	// Model selects which bound becomes the analysed task's WCET:
	// "ilpPtac" (default — the paper's tighter, partially
	// time-composable bound) or "ftc".
	Model string `json:"model,omitempty"`
	// Task is the analysed task's timing parameters; its WCETCycles is
	// filled from the selected model.
	Task RTATask `json:"task"`
	// Others are the co-resident tasks on the same core, with their own
	// (already contention-aware) WCETs.
	Others []RTATask `json:"others,omitempty"`
}

// EstimateOut is one model's bound in wire form.
type EstimateOut struct {
	Model            string  `json:"model"`
	IsolationCycles  int64   `json:"isolationCycles"`
	ContentionCycles int64   `json:"contentionCycles"`
	WCETCycles       int64   `json:"wcetCycles"`
	Ratio            float64 `json:"ratio"`
}

// RTAResultOut is one task's response-time-analysis outcome in wire form.
type RTAResultOut struct {
	Task           string `json:"task"`
	ResponseCycles int64  `json:"responseCycles"`
	Schedulable    bool   `json:"schedulable"`
}

// RTAOut is the schedulability verdict for the analysed task's core.
type RTAOut struct {
	// Model names the bound used as the analysed task's WCET.
	Model string `json:"model"`
	// WCETCycles is that bound's value.
	WCETCycles int64 `json:"wcetCycles"`
	// Utilization is Σ C_i / T_i over the whole task set.
	Utilization float64 `json:"utilization"`
	// Schedulable reports whether every task meets its deadline.
	Schedulable bool           `json:"schedulable"`
	Results     []RTAResultOut `json:"results"`
}

// Response is the analysis result: both bounds, plus the RTA verdict when
// one was requested.
type Response struct {
	FTC EstimateOut `json:"ftc"`
	ILP EstimateOut `json:"ilpPtac"`
	RTA *RTAOut     `json:"rta,omitempty"`
}

// Validate rejects malformed requests before any model runs: unknown
// scenarios and stall modes, impossible DSU readings (negative counters,
// stalls or miss counts exceeding CCNT), and nonsensical RTA parameters.
// Model-name spellings are resolved against the default registry; a server
// carrying its own registry validates against that one instead.
func (r Request) Validate() error {
	return r.validate(defaultAnalyzer.Registry())
}

// validate is Validate against a specific registry — the same one the
// evaluation will resolve names through, so accepted spellings cannot
// drift between admission and evaluation.
func (r Request) validate(reg *wcet.Registry) error {
	// Delegate to the same mappers Evaluate uses, so the accepted value
	// sets cannot drift from what evaluation understands.
	if _, err := scenario(r.Scenario); err != nil {
		return err
	}
	if _, err := stallMode(r.StallMode); err != nil {
		return err
	}
	if err := r.Analysed.Validate(); err != nil {
		return fmt.Errorf("analysed readings: %w", err)
	}
	for i, b := range r.Contenders {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("contender %d readings: %w", i, err)
		}
	}
	if r.RTA != nil {
		if _, err := rtaModel(reg, r.RTA.Model); err != nil {
			return err
		}
		// Full task validation (periods, deadlines) happens in rta.Analyze
		// once the analysed WCET is known; here we only catch what cannot
		// depend on it.
		for i, o := range r.RTA.Others {
			if o.WCETCycles <= 0 {
				return fmt.Errorf("rta.others[%d] (%s): wcetCycles must be positive", i, o.Name)
			}
		}
	}
	return nil
}

// decodeStrict is the one decode policy for every payload shape the
// service accepts: unknown fields rejected, uniform error wrapping.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing request: %w", err)
	}
	return nil
}

// DecodeRequest reads one JSON request, rejecting unknown fields — the
// CLI's historical strictness, now shared with the daemon.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	if err := decodeStrict(r, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// EncodeJSON writes v exactly as the cmd/wcet CLI always has: two-space
// indent, trailing newline. Byte-identical CLI/daemon output depends on
// every producer funnelling through here.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// scenario maps the wire scenario number to the SDK tailoring.
func scenario(n int) (wcet.Scenario, error) {
	switch n {
	case 1:
		return wcet.Scenario1(), nil
	case 2:
		return wcet.Scenario2(), nil
	default:
		return wcet.Scenario{}, fmt.Errorf("scenario must be 1 or 2, got %d", n)
	}
}

// stallMode maps the wire stall-mode string to the ILP option.
func stallMode(s string) (wcet.StallMode, error) {
	switch s {
	case "", "budget":
		return wcet.StallBudget, nil
	case "exact":
		return wcet.StallExact, nil
	default:
		return 0, fmt.Errorf("stallMode must be budget or exact, got %q", s)
	}
}

// v1Models is the fixed pair every /v1 evaluation computes; the frozen v1
// wire format has one field per member.
var v1Models = [2]string{"ftc", "ilpPtac"}

// rtaModel resolves the wire RTA model selector through the given SDK
// registry (one parser for every alias, unknown names list the registered
// set) and then pins it to the pair /v1 actually computes.
func rtaModel(reg *wcet.Registry, s string) (string, error) {
	canon, err := reg.Canonical(s)
	if err != nil {
		return "", fmt.Errorf("rta.model: %w", err)
	}
	if canon != "ftc" && canon != "ilpPtac" {
		return "", fmt.Errorf("rta.model: /v1 computes only %s and %s, got %q (use /v2/analyze for other models)", v1Models[0], v1Models[1], s)
	}
	return canon, nil
}

// defaultAnalyzer backs the package-level Evaluate (the CLI path and every
// default-configured server): the shared default registry, the TC27x
// characterisation, the frozen v1 model pair.
var defaultAnalyzer = wcet.MustNewAnalyzer()

// toSDKRequest maps the v1 wire request onto the SDK facade's request,
// resolving model spellings against the registry that will evaluate it.
func toSDKRequest(reg *wcet.Registry, req Request) (wcet.Request, error) {
	sc, err := scenario(req.Scenario)
	if err != nil {
		return wcet.Request{}, err
	}
	mode, err := stallMode(req.StallMode)
	if err != nil {
		return wcet.Request{}, err
	}
	out := wcet.Request{
		Analysed:          req.Analysed,
		Contenders:        req.Contenders,
		Scenario:          sc,
		StallMode:         mode,
		DropContenderInfo: req.DropContenderInfo,
		Models:            v1Models[:],
	}
	if req.RTA != nil {
		model, err := rtaModel(reg, req.RTA.Model)
		if err != nil {
			return wcet.Request{}, err
		}
		out.RTA = &wcet.RTASpec{
			Model:  model,
			Task:   toRTATask(req.RTA.Task),
			Others: make([]wcet.RTATask, len(req.RTA.Others)),
		}
		for i, o := range req.RTA.Others {
			out.RTA.Others[i] = toRTATask(o)
		}
	}
	return out, nil
}

func toRTATask(t RTATask) wcet.RTATask {
	return wcet.RTATask{
		Name:     t.Name,
		WCET:     t.WCETCycles,
		Period:   t.PeriodCycles,
		Deadline: t.DeadlineCycles,
		Priority: t.Priority,
	}
}

// Evaluate runs the frozen v1 pair — the fTC and ILP-PTAC models — and
// the optional RTA step on one request, through the default SDK analyzer.
// It is a pure function of the request: the CLI calls it once per process,
// the daemon calls it per cache miss.
func Evaluate(req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return evaluateWith(context.Background(), defaultAnalyzer, req, "")
}

// evaluateWith is Evaluate against a specific analyzer (a server may carry
// its own registry) and latency-table version: a non-empty tableRef makes
// the analyzer resolve that table from its store (the daemon passes the
// serving table's content address; the CLI passes "" for the analyzer's
// fixed table). Callers must have validated req — the server does so
// pre-admission, Evaluate does so on entry — so the miss path does not
// re-validate. ctx carries trace spans only: evaluation runs to
// completion even if the request that started it is cancelled, because
// singleflight followers may still be waiting on the result.
func evaluateWith(ctx context.Context, an *wcet.Analyzer, req Request, tableRef string) (*Response, error) {
	sdkReq, err := toSDKRequest(an.Registry(), req)
	if err != nil {
		return nil, err
	}
	sdkReq.TableRef = tableRef
	res, err := an.Analyze(context.WithoutCancel(ctx), sdkReq)
	if err != nil {
		return nil, err
	}
	ftcE, ok := res.Estimate("ftc")
	if !ok {
		return nil, fmt.Errorf("service: analyzer returned no ftc estimate")
	}
	ilpE, ok := res.Estimate("ilpPtac")
	if !ok {
		return nil, fmt.Errorf("service: analyzer returned no ilpPtac estimate")
	}
	resp := &Response{FTC: toEstimateOut(ftcE), ILP: toEstimateOut(ilpE)}
	if res.RTA != nil {
		resp.RTA = toRTAOut(res.RTA)
	}
	return resp, nil
}

// toRTAOut maps the SDK verdict onto the v1 wire form.
func toRTAOut(v *wcet.RTAVerdict) *RTAOut {
	out := &RTAOut{
		Model:       v.Model,
		WCETCycles:  v.WCETCycles,
		Utilization: v.Utilization,
		Schedulable: v.Schedulable,
		Results:     make([]RTAResultOut, len(v.Results)),
	}
	for i, r := range v.Results {
		out.Results[i] = RTAResultOut{
			Task:           r.Task,
			ResponseCycles: r.Response,
			Schedulable:    r.Schedulable,
		}
	}
	return out
}

func toEstimateOut(e wcet.Estimate) EstimateOut {
	return EstimateOut{
		Model:            e.Model,
		IsolationCycles:  e.IsolationCycles,
		ContentionCycles: e.ContentionCycles,
		WCETCycles:       e.WCET(),
		Ratio:            e.Ratio(),
	}
}

// RunCLI is cmd/wcet's whole behaviour: decode one request from in,
// evaluate it, write the response to out. The daemon serves the same
// three calls per request, which is what keeps the two front-ends
// byte-identical.
func RunCLI(in io.Reader, out io.Writer) error {
	req, err := DecodeRequest(in)
	if err != nil {
		return err
	}
	resp, err := Evaluate(req)
	if err != nil {
		return err
	}
	return EncodeJSON(out, resp)
}
