package service

import (
	"container/list"
	"sync"

	"repro/internal/telemetry"
)

// cached is one content-addressed analysis result: the decoded response
// (*Response for v1 entries, *V2Response for v2 entries — batch fan-out
// needs the decoded v1 form) plus its canonical JSON encoding (what the
// single-estimate endpoints write verbatim). Both are immutable once
// stored; every cache consumer shares them read-only.
type cached struct {
	resp any
	body []byte
}

// resultCache is a mutex-guarded LRU keyed by canonical request hash.
// Identical provider submissions — the common case when many integration
// runs re-check the same task set — cost one map lookup instead of an
// ILP solve. Accounting lands directly on the server's telemetry
// counters, so /v1/stats and /metrics read the same numbers.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
}

type lruEntry struct {
	key string
	val *cached
}

// newResultCache builds a cache reporting into the given counters; nil
// counters (standalone/test use) are replaced with private ones.
func newResultCache(capacity int, hits, misses, evictions *telemetry.Counter) *resultCache {
	if hits == nil {
		hits = &telemetry.Counter{}
	}
	if misses == nil {
		misses = &telemetry.Counter{}
	}
	if evictions == nil {
		evictions = &telemetry.Counter{}
	}
	return &resultCache{
		cap:       capacity,
		order:     list.New(),
		items:     make(map[string]*list.Element, capacity),
		hits:      hits,
		misses:    misses,
		evictions: evictions,
	}
}

// get returns the cached result for key, bumping its recency. The miss
// counter is the caller-visible one: singleflight followers that piggy-
// back on an in-flight computation are counted by the server, not here.
func (c *resultCache) get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*lruEntry).val, true
}

// getHit is get counting only hits: the pre-admission probe of the
// single-estimate endpoint, where an absent entry may never be evaluated
// (admission can still reject the request), so no miss is recorded.
func (c *resultCache) getHit(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*lruEntry).val, true
}

// peek is get without counter accounting (recency still bumps): the
// post-admission re-check of a request whose miss was already counted.
func (c *resultCache) peek(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores a result, evicting from the cold end past capacity.
func (c *resultCache) put(key string, val *cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions.Inc()
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
