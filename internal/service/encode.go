package service

import (
	"bytes"
	"net/http"
	"sync"
)

// encodeBufPool recycles the JSON rendering buffers of the serving path.
// Every response the daemon writes — cached bodies aside — used to grow a
// fresh bytes.Buffer per request; under a saturating client load those
// buffers dominate the allocation profile, so they are pooled and each
// response goes out in a single Write.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledEncodeBuf keeps a giant batch rendering from pinning its
// worst-case buffer in the pool forever; outsized buffers are dropped to
// the GC instead of recycled.
const maxPooledEncodeBuf = 1 << 20

func getEncodeBuf() *bytes.Buffer {
	return encodeBufPool.Get().(*bytes.Buffer)
}

func putEncodeBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledEncodeBuf {
		return
	}
	b.Reset()
	encodeBufPool.Put(b)
}

// encodeRetained renders v with the canonical encoder into a pooled
// scratch buffer and returns an exact-size private copy — what the result
// cache retains. The copy means a resident cache entry holds precisely
// its body, not a pool buffer's growth slack.
func encodeRetained(v any) ([]byte, error) {
	buf := getEncodeBuf()
	defer putEncodeBuf(buf)
	if err := EncodeJSON(buf, v); err != nil {
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	return body, nil
}

// writeJSON renders v through the canonical encoder into a pooled buffer
// and writes it with one Write call. Byte-for-byte it is EncodeJSON(w, v)
// — same encoder, same indent — without a per-request buffer allocation
// and without the encoder streaming chunked writes into the
// ResponseWriter.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getEncodeBuf()
	defer putEncodeBuf(buf)
	if err := EncodeJSON(buf, v); err != nil {
		// Our own response types always render; if one ever does not,
		// headers may already be gone — nothing recoverable.
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	_, _ = w.Write(buf.Bytes())
}
