package service

import (
	"strconv"
	"sync"

	"repro/internal/telemetry"
)

// cached is one content-addressed analysis result: the decoded response
// (*Response for v1 entries, *V2Response for v2 entries — batch fan-out
// needs the decoded v1 form) plus its canonical JSON encoding (what the
// single-estimate endpoints write verbatim). Both are immutable once
// stored; every cache consumer shares them read-only.
type cached struct {
	resp any
	body []byte
}

const (
	// maxCacheShards bounds the shard fan-out; canonical keys are SHA-256
	// hex, so their prefixes spread uniformly and 16 ways is plenty to
	// take lock contention off the hit path at wcetd's concurrency limits.
	maxCacheShards = 16
	// minShardCapacity keeps sharding from fragmenting a small cache into
	// slivers whose CLOCK rings are too short to hold a working set: the
	// shard count only doubles while every shard would still hold at
	// least this many entries.
	minShardCapacity = 32
)

// resultCache is an N-way sharded result cache keyed by canonical request
// hash. Identical provider submissions — the common case when many
// integration runs re-check the same task set — cost one map lookup
// instead of an ILP solve.
//
// Each shard is independently locked and replaces entries with a
// CLOCK-style second-chance sweep instead of a linked LRU list: a read
// marks the entry's reference bit (one bool store) rather than splicing
// it to the front of a list, so the hit path — the path concurrent
// clients hammer — does no structural mutation at all. Keys route to
// shards by a hash of their prefix; canonical keys are content hashes, so
// the prefix alone distributes uniformly. Accounting lands directly on
// the server's telemetry counters, so /v1/stats and /metrics read the
// same numbers; per-shard lock contention is counted (a failed TryLock)
// into the shard-labeled contention vector.
type resultCache struct {
	shards []cacheShard
	mask   uint32
	cap    int
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	items map[string]*clockEntry
	ring  []*clockEntry // CLOCK ring; grows to cap, then slots are reused
	hand  int

	hits       *telemetry.Counter
	misses     *telemetry.Counter
	evictions  *telemetry.Counter
	contention *telemetry.Counter
}

// clockEntry is one resident result with its CLOCK reference bit. The bit
// is only touched under the shard lock; reads set it, the eviction sweep
// clears it and evicts entries found unreferenced.
type clockEntry struct {
	key string
	val *cached
	ref bool
}

// newResultCache builds a cache reporting into the given counters; nil
// counters (standalone/test use) are replaced with private ones. A
// capacity <= 0 disables the cache entirely: every put is a no-op and
// every lookup misses, rather than the historical behaviour of inserting
// and then immediately self-evicting (with a bogus eviction count) on
// each put.
func newResultCache(capacity int, hits, misses, evictions *telemetry.Counter, contention *telemetry.CounterVec) *resultCache {
	if hits == nil {
		hits = &telemetry.Counter{}
	}
	if misses == nil {
		misses = &telemetry.Counter{}
	}
	if evictions == nil {
		evictions = &telemetry.Counter{}
	}
	if contention == nil {
		contention = telemetry.NewRegistry().CounterVec(
			"wcetd_cache_shard_contention_total", "private", "shard")
	}
	if capacity < 0 {
		capacity = 0
	}
	nshards := 1
	for nshards < maxCacheShards && capacity/(nshards*2) >= minShardCapacity {
		nshards *= 2
	}
	c := &resultCache{
		shards: make([]cacheShard, nshards),
		mask:   uint32(nshards - 1),
		cap:    capacity,
	}
	base, extra := capacity/nshards, capacity%nshards
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = base
		if i < extra {
			sh.cap++
		}
		sh.items = make(map[string]*clockEntry, sh.cap)
		sh.hits = hits
		sh.misses = misses
		sh.evictions = evictions
		sh.contention = contention.With(strconv.Itoa(i))
	}
	return c
}

// shard routes a key by FNV-1a over its prefix. Canonical keys are
// SHA-256 hex renderings, so the first bytes are uniformly distributed;
// hashing only the prefix keeps routing O(1) in the key length (table-
// scoped keys share a long common suffix).
func (c *resultCache) shard(key string) *cacheShard {
	const prefixLen = 16
	n := len(key)
	if n > prefixLen {
		n = prefixLen
	}
	h := uint32(2166136261)
	for i := 0; i < n; i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h&c.mask]
}

// lock takes the shard lock, counting the acquisitions that actually had
// to wait — the contention signal the shard count exists to minimize.
func (sh *cacheShard) lock() {
	if sh.mu.TryLock() {
		return
	}
	sh.contention.Inc()
	sh.mu.Lock()
}

// get returns the cached result for key, marking its reference bit. The
// miss counter is the caller-visible one: singleflight followers that
// piggyback on an in-flight computation are counted by the server, not
// here.
func (c *resultCache) get(key string) (*cached, bool) {
	sh := c.shard(key)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		sh.misses.Inc()
		return nil, false
	}
	e.ref = true
	sh.hits.Inc()
	return e.val, true
}

// getHit is get counting only hits: the pre-admission probe of the
// single-estimate endpoint, where an absent entry may never be evaluated
// (admission can still reject the request), so no miss is recorded. A
// probe that misses mutates nothing — recency order is untouched whether
// or not the request is subsequently admitted.
func (c *resultCache) getHit(key string) (*cached, bool) {
	sh := c.shard(key)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	e.ref = true
	sh.hits.Inc()
	return e.val, true
}

// peek is get without counter accounting (the reference bit still sets):
// the post-admission re-check of a request whose miss was already
// counted.
func (c *resultCache) peek(key string) (*cached, bool) {
	sh := c.shard(key)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	e.ref = true
	return e.val, true
}

// put stores a result. Below capacity the shard's ring grows; at capacity
// the CLOCK hand sweeps, clearing reference bits and evicting the first
// unreferenced entry it finds — entries read since the last sweep get a
// second chance. New entries start unreferenced: only an actual read
// earns recency protection.
func (c *resultCache) put(key string, val *cached) {
	sh := c.shard(key)
	sh.lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		e.val = val
		e.ref = true
		return
	}
	if sh.cap <= 0 {
		return
	}
	if len(sh.ring) < sh.cap {
		e := &clockEntry{key: key, val: val}
		sh.ring = append(sh.ring, e)
		sh.items[key] = e
		return
	}
	for {
		e := sh.ring[sh.hand]
		sh.hand++
		if sh.hand == len(sh.ring) {
			sh.hand = 0
		}
		if e.ref {
			e.ref = false
			continue
		}
		delete(sh.items, e.key)
		sh.evictions.Inc()
		e.key, e.val = key, val // reuse the evicted slot and entry
		sh.items[key] = e
		return
	}
}

// len reports the current entry count across all shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}
