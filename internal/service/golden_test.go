package service

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// The golden fixtures freeze the /v1 wire format as it was before the
// service was rewired onto the wcet SDK. Any byte of drift — field order,
// indentation, a renamed model label — breaks deployed integrations, so
// the test compares raw bodies, not decoded structures. Regenerate with
//
//	go test ./internal/service -run TestV1Golden -update-golden
//
// only for a deliberate, versioned wire change.
var updateGolden = flag.Bool("update-golden", false, "rewrite the /v1 golden fixtures from current behaviour")

// goldenRequests are the recorded /v1/wcet conversations: every request
// shape the v1 API supports (defaults, explicit stall mode, the ILP
// ablation, multiple contenders, both RTA model selectors).
var goldenRequests = []struct {
	name string
	body string
}{
	{"basic_scenario1", `{
  "scenario": 1,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}`},
	{"scenario2_budget", `{
  "scenario": 2,
  "stallMode": "budget",
  "analysed":   {"CCNT": 301000, "PS": 40000, "DS": 51000, "PM": 6100, "DMC": 1200, "DMD": 400},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}`},
	{"drop_contender_info", `{
  "scenario": 1,
  "dropContenderInfo": true,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
}`},
	{"two_contenders", `{
  "scenario": 1,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [
    {"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000},
    {"CCNT": 220000, "PS": 21000, "DS": 16000, "PM": 2500}
  ]
}`},
	{"rta_default_model", `{
  "scenario": 1,
  "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}],
  "rta": {
    "task": {"name": "airbagCtl", "periodCycles": 2000000, "priority": 2},
    "others": [{"name": "cruiseCtl", "wcetCycles": 50000, "periodCycles": 500000, "priority": 1}]
  }
}`},
	{"rta_ftc_model", `{
  "scenario": 2,
  "analysed":   {"CCNT": 301000, "PS": 40000, "DS": 51000, "PM": 6100, "DMC": 1200, "DMD": 400},
  "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}],
  "rta": {
    "model": "ftc",
    "task": {"periodCycles": 900000, "deadlineCycles": 800000, "priority": 1},
    "others": [{"name": "housekeeping", "wcetCycles": 120000, "periodCycles": 1000000, "priority": 3}]
  }
}`},
}

// goldenBatch is the recorded /v1/batch conversation, including a
// malformed cell whose error string is part of the wire contract.
const goldenBatch = `{
  "requests": [
    {
      "scenario": 1,
      "analysed":   {"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
      "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
    },
    {
      "scenario": 2,
      "analysed":   {"CCNT": 301000, "PS": 40000, "DS": 51000, "PM": 6100, "DMC": 1200, "DMD": 400},
      "contenders": [{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}]
    },
    {
      "scenario": 7,
      "analysed":   {"CCNT": 1000, "PS": 100, "DS": 100}
    }
  ]
}`

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name+".golden.json")
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(t, name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (run with -update-golden to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response drifted from the recorded v1 wire format\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestV1GoldenWCET asserts POST /v1/wcet answers byte-identically to the
// recorded fixtures.
func TestV1GoldenWCET(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range goldenRequests {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %s", resp.Status)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "v1_wcet_"+tc.name, buf.Bytes())
		})
	}
}

// TestV1GoldenParallelWorkers asserts the /v1 wire format is byte-
// identical when the server solves with a parallel branch & bound
// (SolverWorkers > 1): the fixtures recorded from sequential solves must
// match exactly, without ever being rewritten from the parallel run. This
// is the serving-layer face of the solver's determinism contract — the
// /v1 bound is the solver's proved upper bound, which is worker-count
// independent even for gap-stopped searches.
func TestV1GoldenParallelWorkers(t *testing.T) {
	srv := New(Config{SolverWorkers: 8}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range goldenRequests {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/wcet", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %s", resp.Status)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(t, "v1_wcet_"+tc.name))
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s: parallel solves drifted from the sequential v1 wire format\ngot:\n%s\nwant:\n%s",
					tc.name, buf.Bytes(), want)
			}
		})
	}
}

// TestV1GoldenBatch asserts POST /v1/batch answers byte-identically,
// per-cell errors included.
func TestV1GoldenBatch(t *testing.T) {
	srv := New(Config{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte(goldenBatch)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "v1_batch", buf.Bytes())
}

// TestV1GoldenCLI asserts the cmd/wcet path (service.RunCLI) emits exactly
// the daemon's bytes for the same requests — the CLI/daemon no-drift
// guarantee, now also pinned against the recorded fixtures.
func TestV1GoldenCLI(t *testing.T) {
	for _, tc := range goldenRequests {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := RunCLI(bytes.NewReader([]byte(tc.body)), &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "v1_wcet_"+tc.name, out.Bytes())
		})
	}
}
