package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/platform"
	"repro/internal/tabstore"
	"repro/wcet"
)

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, buf.Bytes())
		}
	}
	return resp.StatusCode
}

func postJSON(t testing.TB, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	status, got := post(t, url, raw)
	if out != nil && status == http.StatusOK {
		if err := json.Unmarshal(got, out); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", url, err, got)
		}
	}
	return status
}

// respunTC27x scales every latency figure up 50% — a stand-in for respun
// silicon whose characterisation genuinely changed.
func respunTC27x() platform.LatencyTable {
	lat := platform.TC27xLatencies()
	for _, to := range platform.AccessPairs() {
		l := lat[to.Target][to.Op]
		l.Max, l.Min, l.Stall = l.Max*3/2, l.Min*3/2, l.Stall*3/2
		lat[to.Target][to.Op] = l
	}
	return lat
}

func TestTablesListSeededDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var list V2TablesResponse
	if status := getJSON(t, ts.URL+"/v2/tables", &list); status != http.StatusOK {
		t.Fatalf("GET /v2/tables: %d", status)
	}
	wantID := string(tabstore.TableID(wcet.TC27x()))
	if list.Serving != wantID {
		t.Fatalf("serving %s, want seeded tc27x %s", list.Serving, wantID)
	}
	if len(list.Tables) != 1 || list.Tables[0].ID != wantID || !list.Tables[0].Serving {
		t.Fatalf("tables: %+v", list.Tables)
	}
	if got := list.Tables[0].Refs; len(got) != 1 || got[0] != "tc27x/default" {
		t.Fatalf("refs: %v", got)
	}
	if st := s.StatsSnapshot(); st.ServingTable != wantID {
		t.Fatalf("stats serving table %s", st.ServingTable)
	}

	var one V2TableResponse
	if status := getJSON(t, ts.URL+"/v2/tables/tc27x/default", &one); status != http.StatusOK {
		t.Fatalf("GET /v2/tables/tc27x/default: %d", status)
	}
	if one.ID != wantID {
		t.Fatalf("by-ref ID %s", one.ID)
	}
	if lt, err := tabstore.Decode(one.Table); err != nil || lt != wcet.TC27x() {
		t.Fatalf("by-ref table: %v", err)
	}
	if status := getJSON(t, ts.URL+"/v2/tables/nonesuch", nil); status != http.StatusNotFound {
		t.Fatalf("unknown ref: %d", status)
	}
}

func TestRegisterAndResolveTableOverWire(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	respun := respunTC27x()
	var reg V2RegisterTableResponse
	status := postJSON(t, ts.URL+"/v2/tables", V2RegisterTableRequest{
		Table: tabstore.Encode(respun),
		Ref:   "tc27x/respin",
	}, &reg)
	if status != http.StatusOK {
		t.Fatalf("POST /v2/tables: %d", status)
	}
	if want := string(tabstore.TableID(respun)); reg.ID != want {
		t.Fatalf("registered ID %s, want %s", reg.ID, want)
	}
	if lt, id, err := s.TableStore().Resolve("tc27x/respin"); err != nil || string(id) != reg.ID || lt != respun {
		t.Fatalf("store resolve after wire register: %v", err)
	}

	// Invalid tables are rejected before the store sees them.
	bad := tabstore.Encode(respun)
	bad.Paths["pf0/co"] = tabstore.Entry{LMax: 5, LMin: 9, Stall: 1}
	if status := postJSON(t, ts.URL+"/v2/tables", V2RegisterTableRequest{Table: bad}, nil); status != http.StatusBadRequest {
		t.Fatalf("invalid table register: %d", status)
	}
}

// TestCalibratePromoteHotSwapEndToEnd is the acceptance path: calibrate a
// table from simulator-emitted readings on a live server, register and
// promote it over the wire, and observe /v2/analyze verdicts change with
// no restart — while a table-pinned request still reaches the old version.
func TestCalibratePromoteHotSwapEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	analyze := func(table string) V2Response {
		t.Helper()
		req := map[string]any{
			"scenario":   1,
			"models":     []string{"ftc"},
			"analysed":   map[string]int64{"CCNT": 157800, "PS": 18000, "DS": 27000, "PM": 3000},
			"contenders": []map[string]int64{{"CCNT": 500000, "PS": 50000, "DS": 60000, "PM": 8000}},
		}
		if table != "" {
			req["table"] = table
		}
		var out V2Response
		if status := postJSON(t, ts.URL+"/v2/analyze", req, &out); status != http.StatusOK {
			t.Fatalf("/v2/analyze (table=%q): %d", table, status)
		}
		return out
	}

	before := analyze("")

	// The respun silicon emits its readings through the simulator — the
	// exact protocol cmd/aurixsim -emit-readings runs.
	batch, err := calib.MeasureBatch(respunTC27x(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var cal V2CalibrateResponse
	status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{
		"samples":   batch.Samples,
		"register":  "tc27x/respin",
		"tolerance": 0.10,
	}, &cal)
	if status != http.StatusOK {
		t.Fatalf("/v2/calibrate: %d", status)
	}
	if !cal.Report.Converged {
		t.Fatalf("full simulator batch must converge: %+v", cal.Report)
	}
	if cal.Table == nil || cal.ID == "" || cal.Ref != "tc27x/respin" {
		t.Fatalf("calibrate response lacks candidate/registration: %+v", cal)
	}
	if cal.Drift == nil || !cal.Drift.Drifted {
		t.Fatal("a 50% respin must be reported as drifted against the serving table")
	}

	// Registration alone must not change serving behaviour.
	if got := analyze(""); got.Estimates[0].WCETCycles != before.Estimates[0].WCETCycles {
		t.Fatal("registering a table changed serving results before promote")
	}

	// Promote: atomic hot-swap, no restart.
	resp, err := http.Post(ts.URL+"/v2/tables/tc27x/respin/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var prom V2PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&prom); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || prom.Serving != cal.ID {
		t.Fatalf("promote: %d %+v", resp.StatusCode, prom)
	}

	// A changed characterisation must change the bound (the direction is
	// not monotone: larger per-request latencies also shrink the access
	// counts inferred from stall totals).
	after := analyze("")
	if after.Estimates[0].WCETCycles == before.Estimates[0].WCETCycles {
		t.Fatalf("promote did not change served verdicts: still %d", after.Estimates[0].WCETCycles)
	}

	// The swapped-in behaviour must equal analysing under the calibrated
	// table directly.
	calibrated, err := tabstore.Decode(*cal.Table)
	if err != nil {
		t.Fatal(err)
	}
	an := wcet.MustNewAnalyzer(wcet.WithLatencyTable(calibrated), wcet.WithModels("ftc"))
	want, err := an.Analyze(context.Background(), wcet.Request{
		Analysed:   wcet.Readings{CCNT: 157800, PS: 18000, DS: 27000, PM: 3000},
		Contenders: []wcet.Readings{{CCNT: 500000, PS: 50000, DS: 60000, PM: 8000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Estimates[0].WCETCycles != want.Estimates[0].WCET() {
		t.Fatalf("served bound %d != direct bound %d under the promoted table",
			after.Estimates[0].WCETCycles, want.Estimates[0].WCET())
	}

	// Per-request pinning still reaches the old version by ref and by ID.
	pinnedOld := analyze("tc27x/default")
	if pinnedOld.Estimates[0].WCETCycles != before.Estimates[0].WCETCycles {
		t.Fatal("table-pinned request did not evaluate under the pinned version")
	}
	if got := analyze(cal.ID); got.Estimates[0].WCETCycles != after.Estimates[0].WCETCycles {
		t.Fatal("analysis pinned by table ID disagrees with serving default")
	}

	// /v2/tables now shows the new serving default.
	var list V2TablesResponse
	getJSON(t, ts.URL+"/v2/tables", &list)
	if list.Serving != cal.ID || len(list.Tables) != 2 {
		t.Fatalf("post-promote listing: %+v", list)
	}
}

func TestCalibrateStreamsAcrossRequestsAndResets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch, err := calib.MeasureBatch(platform.TC27xLatencies(), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	half := len(batch.Samples) / 2

	var first V2CalibrateResponse
	if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{"samples": batch.Samples[:half]}, &first); status != http.StatusOK {
		t.Fatalf("first batch: %d", status)
	}
	if first.Report.Converged || first.Table != nil {
		t.Fatal("half coverage must not yield a candidate")
	}

	var second V2CalibrateResponse
	if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{"samples": batch.Samples[half:]}, &second); status != http.StatusOK {
		t.Fatalf("second batch: %d", status)
	}
	if !second.Report.Converged || second.Table == nil {
		t.Fatalf("the session must accumulate across requests: %+v", second.Report)
	}
	if second.Report.TotalSamples != int64(len(batch.Samples)) {
		t.Fatalf("session samples %d, want %d", second.Report.TotalSamples, len(batch.Samples))
	}
	if second.Drift == nil || second.Drift.Drifted {
		t.Fatalf("calibrating the serving characterisation must not drift: %+v", second.Drift)
	}

	// Reset starts a fresh session.
	var third V2CalibrateResponse
	if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{"samples": batch.Samples[:half], "reset": true}, &third); status != http.StatusOK {
		t.Fatalf("reset batch: %d", status)
	}
	if third.Report.TotalSamples != int64(half) {
		t.Fatalf("reset did not clear the session: %d samples", third.Report.TotalSamples)
	}

	// Registering before coverage is a client error.
	if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{
		"samples": []calib.Sample{}, "register": "x/y",
	}, nil); status != http.StatusUnprocessableEntity {
		t.Fatalf("register without coverage: %d", status)
	}
}

// TestCalibrateBadRegisterRefDoesNotConsumeBatch pins the retry safety
// fixed in review: a rejected register ref must fail before ingestion, so
// resending the same samples with a corrected ref does not double-count.
func TestCalibrateBadRegisterRefDoesNotConsumeBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	samples := []calib.Sample{{
		Path: "pf0/co", Accesses: 100, Prefetch: false,
		Readings: wcet.Readings{CCNT: 1700, PS: 600},
	}}
	for _, badRef := range []string{"bad name", "a/promote", strings.Repeat("0", 64)} {
		if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{
			"samples": samples, "register": badRef,
		}, nil); status != http.StatusBadRequest {
			t.Fatalf("register ref %q: status %d", badRef, status)
		}
	}
	// Retry without register: the session must be empty — none of the
	// rejected requests may have ingested.
	var out V2CalibrateResponse
	if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{"samples": samples}, &out); status != http.StatusOK {
		t.Fatalf("clean retry: %d", status)
	}
	if out.Report.TotalSamples != 1 {
		t.Fatalf("rejected registers consumed the batch: %d samples", out.Report.TotalSamples)
	}
}

func TestCalibrateRejectsPoisonedBatches(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	poisoned := []calib.Sample{{
		Path: "pf0/co", Accesses: 100, Prefetch: false,
		Readings: wcet.Readings{CCNT: 1700, PS: -600},
	}}
	status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{"samples": poisoned}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("poisoned batch: %d", status)
	}
	if status := postJSON(t, ts.URL+"/v2/calibrate", map[string]any{"compare": "nonesuch"}, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown compare ref: %d", status)
	}
	if st := s.StatsSnapshot(); st.CalibrateRequests != 2 {
		t.Fatalf("calibrate counter: %d", st.CalibrateRequests)
	}
}

// TestV2AnalyzeUnknownTableRejected pins the failure mode: a bad table
// selection is a 400 before admission, not a 422 after evaluation.
func TestV2AnalyzeUnknownTableRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := post(t, ts.URL+"/v2/analyze", []byte(`{
		"scenario": 1, "table": "nonesuch",
		"analysed": {"CCNT": 1000, "PS": 10, "DS": 10}
	}`))
	if status != http.StatusBadRequest || !strings.Contains(string(body), "unknown table ref") {
		t.Fatalf("unknown table: %d %s", status, body)
	}
}

// TestCLIRejectsTableSelection pins the CLI contract: without a store the
// "table" field must error, not silently analyse under the default.
func TestCLIRejectsTableSelection(t *testing.T) {
	err := RunCLIV2(strings.NewReader(`{"scenario":1,"table":"tc27x/default","analysed":{"CCNT":1000}}`), &bytes.Buffer{}, nil)
	if err == nil || !strings.Contains(err.Error(), "table store") {
		t.Fatalf("CLI table selection: %v", err)
	}
}

// TestPersistentStoreSurvivesRestart drives the same lifecycle against a
// disk-backed store and a fresh server process-equivalent: registrations
// and refs persist; serving defaults to the configured ref on start.
func TestPersistentStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{TableStore: store})
	respun := respunTC27x()
	if status := postJSON(t, ts.URL+"/v2/tables", V2RegisterTableRequest{
		Table: tabstore.Encode(respun), Ref: "tc27x/respin",
	}, nil); status != http.StatusOK {
		t.Fatalf("register: %d", status)
	}

	// "Restart": reopen the directory into a new store and server, now
	// configured to serve the respin from boot.
	store2, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{TableStore: store2, DefaultTableRef: "tc27x/respin"})
	if got := s2.StatsSnapshot().ServingTable; got != string(tabstore.TableID(respun)) {
		t.Fatalf("restarted serving table %s", got)
	}
	var list V2TablesResponse
	getJSON(t, ts2.URL+"/v2/tables", &list)
	if len(list.Tables) != 2 {
		t.Fatalf("restarted listing: %+v", list)
	}
}
