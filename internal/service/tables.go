package service

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/calib"
	"repro/internal/tabstore"
)

// This file is the daemon's latency-table lifecycle surface: listing and
// registering versioned tables, streaming calibration, and atomic
// promotion of the serving default — recalibration without a restart.
//
//	GET  /v2/tables                list stored tables, refs, serving default
//	POST /v2/tables                register a table (optionally naming a ref)
//	GET  /v2/tables/{ref}          fetch one table by ref or ID
//	POST /v2/tables/{ref}/promote  atomically make {ref} the serving default
//	POST /v2/calibrate             ingest calibration readings; candidate
//	                               table + drift report out
//
// Table identity is content-addressed (tabstore.ID), so the serving
// default is pinned by identity, not by name: promoting a ref captures
// the table it points at now, and later retargets of that ref do not
// change what is served until the next promote.

// V2TableInfo describes one stored table in GET /v2/tables.
type V2TableInfo struct {
	ID      string   `json:"id"`
	Refs    []string `json:"refs,omitempty"`
	Serving bool     `json:"serving,omitempty"`
}

// V2TablesResponse is the wire format of GET /v2/tables.
type V2TablesResponse struct {
	// Serving is the content address of the table /v1 and /v2 analysis
	// currently evaluates under by default.
	Serving string        `json:"serving"`
	Tables  []V2TableInfo `json:"tables"`
}

// V2TableResponse is the wire format of GET /v2/tables/{ref}.
type V2TableResponse struct {
	ID    string             `json:"id"`
	Table tabstore.TableJSON `json:"table"`
}

// V2RegisterTableRequest is the wire format of POST /v2/tables.
type V2RegisterTableRequest struct {
	// Table is the characterisation in the store's interchange format.
	Table tabstore.TableJSON `json:"table"`
	// Ref optionally names (or retargets) a ref at the new table.
	Ref string `json:"ref,omitempty"`
}

// V2RegisterTableResponse acknowledges a registration.
type V2RegisterTableResponse struct {
	ID  string `json:"id"`
	Ref string `json:"ref,omitempty"`
}

// V2PromoteResponse acknowledges a promotion.
type V2PromoteResponse struct {
	// Serving is the newly-serving table's content address.
	Serving string `json:"serving"`
	// Ref is the reference that was promoted.
	Ref string `json:"ref"`
}

// V2CalibrateRequest is the wire format of POST /v2/calibrate. The
// calibration session is streaming: samples accumulate across requests
// until a reset, so a rig can upload evidence batch by batch and watch
// convergence.
type V2CalibrateRequest struct {
	// Samples are microbenchmark measurements (cmd/aurixsim
	// -emit-readings produces this exact shape).
	Samples []calib.Sample `json:"samples"`
	// Reset discards the accumulated session before ingesting Samples.
	Reset bool `json:"reset,omitempty"`
	// Compare names the reference table for the drift report (ref or
	// ID); empty compares against the serving default.
	Compare string `json:"compare,omitempty"`
	// Tolerance is the relative drift threshold; <= 0 selects
	// calib.DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Register, when non-empty, stores the candidate table under this
	// ref once every path has coverage. Registration does not promote:
	// serving changes only via /v2/tables/{ref}/promote.
	Register string `json:"register,omitempty"`
}

// V2CalibrateResponse reports the calibration session's state after the
// batch: the running per-path estimator report always; the candidate
// table, its identity and the drift report once coverage is complete.
type V2CalibrateResponse struct {
	Report calib.Report `json:"report"`
	// Table is the current candidate (absent until every access path has
	// prefetch-on and prefetch-off coverage).
	Table *tabstore.TableJSON `json:"table,omitempty"`
	// ID is the candidate's content address (with Table).
	ID string `json:"id,omitempty"`
	// Ref echoes the ref the candidate was registered under.
	Ref string `json:"ref,omitempty"`
	// Drift compares the candidate against the Compare reference (with
	// Table).
	Drift *calib.DriftReport `json:"drift,omitempty"`
}

// servingID returns the content address of the current serving table.
func (s *Server) servingID() tabstore.ID {
	return s.serving.Load().(tabstore.ID)
}

// TableStore exposes the server's table store (for tests and embedding).
func (s *Server) TableStore() *tabstore.Store { return s.store }

// handleTables serves the /v2/tables collection: GET lists, POST
// registers.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		serving := string(s.servingID())
		byID := make(map[string][]string)
		for _, ref := range s.store.Refs() {
			byID[string(ref.ID)] = append(byID[string(ref.ID)], ref.Name)
		}
		out := V2TablesResponse{Serving: serving}
		for _, id := range s.store.IDs() {
			out.Tables = append(out.Tables, V2TableInfo{
				ID:      string(id),
				Refs:    byID[string(id)],
				Serving: string(id) == serving,
			})
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req V2RegisterTableRequest
		if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), &req); err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		lt, err := tabstore.Decode(req.Table)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.store.Put(lt)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if req.Ref != "" {
			if err := s.store.SetRef(req.Ref, id); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, V2RegisterTableResponse{ID: string(id), Ref: req.Ref})
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST required"))
	}
}

// handleTableByRef serves /v2/tables/{ref} (GET — ref names may contain
// slashes, so routing is by prefix) and /v2/tables/{ref}/promote (POST).
func (s *Server) handleTableByRef(w http.ResponseWriter, r *http.Request) {
	ref := strings.TrimPrefix(r.URL.Path, "/v2/tables/")
	if promoted := strings.TrimSuffix(ref, "/promote"); promoted != ref {
		s.handlePromote(w, r, promoted)
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required (POST only on /v2/tables and /v2/tables/{ref}/promote)"))
		return
	}
	lt, id, err := s.store.Resolve(ref)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	tj := tabstore.Encode(lt)
	writeJSON(w, http.StatusOK, V2TableResponse{ID: string(id), Table: tj})
}

// handlePromote atomically retargets the serving default at whatever the
// ref resolves to right now. In-flight requests finish under the table
// they started with; requests admitted after the swap evaluate (and cache)
// under the new one — no restart, no cache poisoning, because result keys
// carry the table's content address.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request, ref string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	_, id, err := s.store.Resolve(ref)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	s.serving.Store(id)
	s.metrics.promotes.Inc()
	s.logger.Info("table promoted", "ref", ref, "serving", string(id))
	writeJSON(w, http.StatusOK, V2PromoteResponse{Serving: string(id), Ref: ref})
}

// handleCalibrate ingests one calibration batch into the streaming
// session and reports the estimator's state, the candidate table once
// coverage is complete, and its drift against a reference.
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req V2CalibrateRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), &req); err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	// Validate everything that can reject before touching the session —
	// the register ref name and the drift reference — so a client retry
	// after a 400 cannot double-ingest the batch.
	if req.Register != "" {
		if err := tabstore.ValidateRefName(req.Register); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	compareRef := req.Compare
	var reference = s.servingID()
	if compareRef != "" {
		_, id, err := s.store.Resolve(compareRef)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reference = id
	}
	refTable, ok := s.store.Get(reference)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("service: serving table %s missing from store", reference))
		return
	}

	s.calibMu.Lock()
	defer s.calibMu.Unlock()
	if req.Reset || s.calibEng == nil {
		s.calibEng = calib.New(calib.Config{})
	}
	if err := s.calibEng.Ingest(calib.Batch{Samples: req.Samples}); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := V2CalibrateResponse{Report: s.calibEng.Report()}
	if cand, err := s.calibEng.Table(); err == nil {
		tj := tabstore.Encode(cand)
		out.Table = &tj
		out.ID = string(tabstore.TableID(cand))
		drift := calib.Drift(cand, refTable, req.Tolerance)
		out.Drift = &drift
		if req.Register != "" {
			id, err := s.store.Put(cand)
			if err != nil {
				httpError(w, http.StatusUnprocessableEntity, err)
				return
			}
			if err := s.store.SetRef(req.Register, id); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			out.Ref = req.Register
		}
	} else if req.Register != "" {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("cannot register %q: %w", req.Register, err))
		return
	}
	writeJSON(w, http.StatusOK, out)
}
