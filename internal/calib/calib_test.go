package calib

import (
	"strings"
	"testing"

	"repro/internal/dsu"
	"repro/internal/platform"
)

// sampleFor fabricates a consistent sample: n accesses at lat cycles each
// (plus the dispatch cycle) with stall cycles per access.
func sampleFor(path string, n, lat, stall int64, prefetch bool) Sample {
	var to platform.TargetOp
	for _, p := range platform.AccessPairs() {
		if p.String() == path {
			to = p
		}
	}
	r := dsu.Readings{CCNT: n * (lat + 1)}
	if to.Op == platform.Data {
		r.DS = n * stall
	} else {
		r.PS = n * stall
	}
	return Sample{Path: path, Accesses: n, Prefetch: prefetch, Readings: r}
}

// fullBatch covers every legal path with the given base figures.
func fullBatch(n int64) Batch {
	var b Batch
	for _, to := range platform.AccessPairs() {
		l := platform.TC27xLatencies()[to.Target][to.Op]
		b.Samples = append(b.Samples,
			sampleFor(to.String(), n, l.Max, l.Stall, false),
			sampleFor(to.String(), n, l.Min, l.Stall, true),
		)
	}
	return b
}

func TestEngineReproducesTable2FromSyntheticSamples(t *testing.T) {
	e := New(Config{})
	if err := e.Ingest(fullBatch(1000)); err != nil {
		t.Fatal(err)
	}
	got, err := e.Table()
	if err != nil {
		t.Fatal(err)
	}
	if want := platform.TC27xLatencies(); got != want {
		t.Fatalf("table:\n got %+v\nwant %+v", got, want)
	}
	if !e.Converged() {
		t.Fatal("full coverage with MinSamples=1 must converge")
	}
}

func TestEngineStreamsAcrossBatches(t *testing.T) {
	e := New(Config{MinSamples: 2})
	b := fullBatch(500)
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	if e.Converged() {
		t.Fatal("one sample per mode must not satisfy MinSamples=2")
	}
	if _, err := e.Table(); err != nil {
		t.Fatalf("coverage is complete, Table must work pre-convergence: %v", err)
	}
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	if !e.Converged() {
		t.Fatal("second identical batch must converge")
	}
	rep := e.Report()
	if rep.TotalSamples != int64(2*len(b.Samples)) {
		t.Fatalf("TotalSamples %d", rep.TotalSamples)
	}
	for _, p := range rep.Paths {
		if p.SamplesOff != 2 || p.SamplesOn != 2 {
			t.Fatalf("path %s: off %d on %d", p.Path, p.SamplesOff, p.SamplesOn)
		}
		if !p.Converged {
			t.Fatalf("path %s not converged", p.Path)
		}
	}
}

func TestEngineAggregatesMinMax(t *testing.T) {
	e := New(Config{})
	// Three noisy prefetch-off samples on pf0/co: lmax must be the max,
	// stall the min.
	for _, s := range []Sample{
		sampleFor("pf0/co", 100, 15, 7, false),
		sampleFor("pf0/co", 100, 16, 6, false),
		sampleFor("pf0/co", 100, 14, 8, false),
		sampleFor("pf0/co", 100, 12, 6, true),
		sampleFor("pf0/co", 100, 13, 6, true),
	} {
		if err := e.Ingest(Batch{Samples: []Sample{s}}); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.Report()
	var pr PathReport
	for _, p := range rep.Paths {
		if p.Path == "pf0/co" {
			pr = p
		}
	}
	if pr.LMax != 16 || pr.LMin != 12 || pr.Stall != 6 {
		t.Fatalf("pf0/co estimates: %+v", pr)
	}
	if pr.P50Off != 15 || pr.P95Off != 16 {
		t.Fatalf("pf0/co percentiles: p50 %d p95 %d", pr.P50Off, pr.P95Off)
	}
}

func TestStableTailDelaysConvergence(t *testing.T) {
	e := New(Config{MinSamples: 1, StableTail: 2})
	b := fullBatch(500)
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	if e.Converged() {
		t.Fatal("first batch always changes estimates; StableTail=2 must hold convergence back")
	}
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	if !e.Converged() {
		t.Fatal("two unchanged repeats must satisfy StableTail=2")
	}
}

func TestIngestRejectsBadSamplesAtomically(t *testing.T) {
	cases := []struct {
		name string
		s    Sample
		want string
	}{
		{"unknown path", Sample{Path: "dfl/co", Accesses: 10, Readings: dsu.Readings{CCNT: 100}}, "unknown access path"},
		{"zero accesses", Sample{Path: "pf0/co", Accesses: 0, Readings: dsu.Readings{CCNT: 100}}, "accesses must be positive"},
		{"negative counter", Sample{Path: "pf0/co", Accesses: 10, Readings: dsu.Readings{CCNT: 100, PS: -1}}, "negative"},
		{"stalls exceed cycles", Sample{Path: "pf0/co", Accesses: 10, Readings: dsu.Readings{CCNT: 100, PS: 200}}, "exceeds CCNT"},
		{"no cycles", Sample{Path: "pf0/co", Accesses: 10, Readings: dsu.Readings{}}, "no cycles"},
		{"sub-cycle latency", Sample{Path: "pf0/co", Accesses: 1000, Readings: dsu.Readings{CCNT: 900}}, "sub-cycle"},
	}
	for _, tc := range cases {
		e := New(Config{})
		good := sampleFor("pf0/co", 100, 16, 6, false)
		err := e.Ingest(Batch{Samples: []Sample{good, tc.s}})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), "sample 1") {
			t.Errorf("%s: error %v does not name the offending index", tc.name, err)
		}
		// Atomicity: the good sample preceding the bad one must not have
		// been applied.
		if rep := e.Report(); rep.TotalSamples != 0 {
			t.Errorf("%s: bad batch half-applied (%d samples)", tc.name, rep.TotalSamples)
		}
	}
}

// TestSessionSampleCap pins the streaming session's memory bound: the
// engine retains per-sample data for percentiles, so Ingest must refuse
// to grow past MaxSamples rather than let a long-lived wire session
// consume the host.
func TestSessionSampleCap(t *testing.T) {
	e := New(Config{MaxSamples: 3})
	b := Batch{Samples: []Sample{
		sampleFor("pf0/co", 100, 16, 6, false),
		sampleFor("pf0/co", 100, 12, 6, true),
	}}
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	err := e.Ingest(b)
	if err == nil || !strings.Contains(err.Error(), "session cap") {
		t.Fatalf("over-cap batch: %v", err)
	}
	// The rejected batch must not have been applied at all.
	if rep := e.Report(); rep.TotalSamples != 2 {
		t.Fatalf("over-cap batch half-applied: %d samples", rep.TotalSamples)
	}
	// A batch that exactly fills the cap still lands.
	if err := e.Ingest(Batch{Samples: b.Samples[:1]}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRequiresFullCoverage(t *testing.T) {
	e := New(Config{})
	if err := e.Ingest(Batch{Samples: []Sample{
		sampleFor("pf0/co", 100, 16, 6, false),
		sampleFor("pf0/co", 100, 12, 6, true),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Table(); err == nil || !strings.Contains(err.Error(), "lacks coverage") {
		t.Fatalf("partial coverage must fail Table: %v", err)
	}
}

func TestDriftFlagsMovedFigures(t *testing.T) {
	ref := platform.TC27xLatencies()
	cand := ref
	cand[platform.PF0][platform.Code] = platform.Latency{Max: 20, Min: 12, Stall: 6} // lmax 16 -> 20: +25%
	cand[platform.LMU][platform.Data] = platform.Latency{Max: 11, Min: 11, Stall: 10}

	rep := Drift(cand, ref, 0.10)
	if !rep.Drifted {
		t.Fatal("25% lmax movement above 10% tolerance must drift")
	}
	if len(rep.Fields) != 1 {
		t.Fatalf("fields: %+v", rep.Fields)
	}
	f := rep.Fields[0]
	if f.Path != "pf0/co" || f.Field != "lmax" || !f.Exceeds || f.Candidate != 20 || f.Reference != 16 {
		t.Fatalf("field: %+v", f)
	}

	// Within tolerance: reported but not drifted.
	cand = ref
	cand[platform.PF0][platform.Code].Max = 17 // +6.25%
	rep = Drift(cand, ref, 0.10)
	if rep.Drifted {
		t.Fatal("6.25% under 10% tolerance must not drift")
	}
	if len(rep.Fields) != 1 || rep.Fields[0].Exceeds {
		t.Fatalf("fields: %+v", rep.Fields)
	}

	// Identical tables: clean report.
	rep = Drift(ref, ref, 0)
	if rep.Drifted || len(rep.Fields) != 0 {
		t.Fatalf("identical tables: %+v", rep)
	}
	if rep.Tolerance != DefaultTolerance {
		t.Fatalf("default tolerance: %v", rep.Tolerance)
	}
}

func TestMeasureBatchReproducesTable2OnTheSimulator(t *testing.T) {
	b, err := MeasureBatch(platform.TC27xLatencies(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) != 2*len(platform.AccessPairs()) {
		t.Fatalf("samples: %d", len(b.Samples))
	}
	e := New(Config{})
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	got, err := e.Table()
	if err != nil {
		t.Fatal(err)
	}
	if want := platform.TC27xLatencies(); got != want {
		t.Fatalf("simulator calibration:\n got %+v\nwant %+v", got, want)
	}
}

func TestMeasureBatchTracksPerturbedSilicon(t *testing.T) {
	// A "respun" platform: every figure scaled up 50%. Calibration must
	// recover the new characterisation, and drift against the old one
	// must trigger.
	respun := platform.TC27xLatencies()
	for _, to := range platform.AccessPairs() {
		l := respun[to.Target][to.Op]
		l.Max, l.Min, l.Stall = l.Max*3/2, l.Min*3/2, l.Stall*3/2
		respun[to.Target][to.Op] = l
	}
	b, err := MeasureBatch(respun, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{})
	if err := e.Ingest(b); err != nil {
		t.Fatal(err)
	}
	got, err := e.Table()
	if err != nil {
		t.Fatal(err)
	}
	if got == platform.TC27xLatencies() {
		t.Fatal("calibration on respun silicon must not reproduce the old table")
	}
	if !Drift(got, platform.TC27xLatencies(), 0.10).Drifted {
		t.Fatal("a 50% respin must drift against the shipped table")
	}
	if Drift(got, respun, 0.10).Drifted {
		t.Fatalf("calibration must track the respun table within 10%%:\n got %+v\nwant %+v\n%+v",
			got, respun, Drift(got, respun, 0.10))
	}
}
