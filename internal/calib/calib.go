// Package calib is the streaming calibration engine behind the latency
// tables the contention models consume: it ingests batches of DSU counter
// readings taken around single-path microbenchmark runs (from the
// simulator, or over the wire from a hardware rig) and maintains, per SRI
// access path, the paper's Table-2 estimator — worst-case end-to-end
// latency from prefetch-off runs, best-case latency from prefetch-on
// sequential runs, minimum stall cycles per request — together with
// sample counts, percentile aggregates and a convergence verdict.
//
// The engine is incremental by design: batches may arrive over many
// requests, each Ingest folds new evidence into the running estimates,
// and Table materialises the current candidate once every legal path has
// coverage. Drift compares a candidate against a reference table (the
// currently-serving one, say) and flags any figure that moved beyond a
// relative tolerance — the recalibration trigger for a live deployment.
//
// Samples are untrusted input: every reading is validated, deltas must be
// internally consistent with the claimed access count, and a bad sample
// rejects the batch with its index rather than corrupting the estimates.
package calib

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// Process-wide calibration telemetry on the default registry (exposed
// by wcetd's GET /metrics).
var (
	mBatches = telemetry.Default().Counter("calib_batches_total",
		"Sample batches accepted by calibration engines (rejected batches excluded).")
	mSamples = telemetry.Default().Counter("calib_samples_total",
		"Individual samples accepted by calibration engines.")
	mDriftChecks = telemetry.Default().Counter("calib_drift_checks_total",
		"Drift comparisons run.")
	mDrifted = telemetry.Default().Counter("calib_drifted_total",
		"Drift comparisons that flagged at least one figure beyond tolerance.")
)

// Sample is one microbenchmark measurement: the DSU counter deltas
// observed around a run of Accesses back-to-back requests on one access
// path, with the flash prefetch buffers on or off.
type Sample struct {
	// Path is the access path measured ("pf0/co", "lmu/da", ...).
	Path string `json:"path"`
	// Accesses is the number of SRI requests the microbenchmark issued —
	// known by construction, it is the divisor of the estimator.
	Accesses int64 `json:"accesses"`
	// Prefetch reports whether the flash prefetch buffers were active:
	// off measures lmax and the stall floor, on (with a sequential
	// stream) measures lmin.
	Prefetch bool `json:"prefetch"`
	// Readings is the counter delta over the run (end snapshot minus
	// start snapshot of a free-running bank).
	Readings dsu.Readings `json:"readings"`
}

// Batch is a set of samples ingested together — the wire format of
// cmd/aurixsim -emit-readings and the payload core of POST /v2/calibrate.
type Batch struct {
	Samples []Sample `json:"samples"`
}

// Config tunes the engine. The zero value is usable.
type Config struct {
	// MinSamples is how many samples each (path, prefetch-mode) needs
	// before the path can count as converged; <= 0 selects 1.
	MinSamples int
	// StableTail requires the path's estimates to have been unchanged by
	// the last StableTail samples before it counts as converged; <= 0
	// selects 0 (coverage alone converges — right for the deterministic
	// simulator, too lax for noisy silicon).
	StableTail int
	// MaxSamples caps the session's total retained samples — the engine
	// keeps per-sample latency estimates for percentile reporting, so an
	// unbounded streaming session would grow without limit. Ingest
	// rejects batches that would exceed the cap (reset the session to
	// continue); <= 0 selects 65536.
	MaxSamples int
}

func (c Config) withDefaults() Config {
	if c.MinSamples <= 0 {
		c.MinSamples = 1
	}
	if c.StableTail < 0 {
		c.StableTail = 0
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 65536
	}
	return c
}

// pathState is the running aggregate for one access path.
type pathState struct {
	// offCount/onCount are samples seen per prefetch mode.
	offCount, onCount int64
	// lMax is the max per-request latency over prefetch-off samples.
	lMax int64
	// lMin is the min per-request latency over prefetch-on samples.
	lMin int64
	// cs is the min per-request stall over prefetch-off samples.
	cs int64
	// offLats/onLats keep every per-request latency estimate for
	// percentile reporting (one entry per sample, so growth is bounded
	// by the sample count, not the access count).
	offLats, onLats []int64
	// sinceChange counts samples ingested for this path since any of
	// lMax/lMin/cs last changed.
	sinceChange int
}

// Engine is the streaming estimator. It is safe for concurrent use; a
// server can expose one session across many requests.
type Engine struct {
	cfg Config

	mu    sync.Mutex
	paths map[platform.TargetOp]*pathState
	total int64
}

// New builds an engine.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:   cfg.withDefaults(),
		paths: make(map[platform.TargetOp]*pathState),
	}
}

// parsePath resolves the wire path name.
func parsePath(s string) (platform.TargetOp, error) {
	for _, to := range platform.AccessPairs() {
		if to.String() == s {
			return to, nil
		}
	}
	return platform.TargetOp{}, fmt.Errorf("calib: unknown access path %q", s)
}

// perAccess runs the Table-2 estimator on one validated sample: latency
// is (CCNT / N) - 1 — one dispatch cycle per access is pipeline time, not
// transaction latency — and stall is the matching stall counter over N.
func perAccess(to platform.TargetOp, s Sample) (lat, stall int64, err error) {
	r := s.Readings
	lat = r.CCNT/s.Accesses - 1
	if lat < 1 {
		return 0, 0, fmt.Errorf("calib: %d cycles over %d accesses implies a sub-cycle latency — count and readings disagree", r.CCNT, s.Accesses)
	}
	stall = r.PS
	if to.Op == platform.Data {
		stall = r.DS
	}
	return lat, stall / s.Accesses, nil
}

// validate rejects a sample before it can touch the aggregates.
func validate(s Sample) (platform.TargetOp, error) {
	to, err := parsePath(s.Path)
	if err != nil {
		return platform.TargetOp{}, err
	}
	if s.Accesses <= 0 {
		return platform.TargetOp{}, fmt.Errorf("calib: accesses must be positive, got %d", s.Accesses)
	}
	if err := s.Readings.Validate(); err != nil {
		return platform.TargetOp{}, err
	}
	if s.Readings.CCNT <= 0 {
		return platform.TargetOp{}, fmt.Errorf("calib: sample has no cycles (CCNT %d)", s.Readings.CCNT)
	}
	return to, nil
}

// Ingest folds a batch into the running estimates. A malformed sample
// fails the whole batch (labelled with its index) without applying any of
// it, so one poisoned wire payload cannot half-apply.
func (e *Engine) Ingest(b Batch) error {
	type parsed struct {
		to         platform.TargetOp
		s          Sample
		lat, stall int64
	}
	ps := make([]parsed, 0, len(b.Samples))
	for i, s := range b.Samples {
		to, err := validate(s)
		if err != nil {
			return fmt.Errorf("calib: sample %d: %w", i, err)
		}
		lat, stall, err := perAccess(to, s)
		if err != nil {
			return fmt.Errorf("calib: sample %d: %w", i, err)
		}
		ps = append(ps, parsed{to: to, s: s, lat: lat, stall: stall})
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.total+int64(len(ps)) > int64(e.cfg.MaxSamples) {
		return fmt.Errorf("calib: batch of %d samples would exceed the session cap of %d (total so far %d) — reset the session to continue",
			len(ps), e.cfg.MaxSamples, e.total)
	}
	for _, p := range ps {
		st, ok := e.paths[p.to]
		if !ok {
			st = &pathState{}
			e.paths[p.to] = st
		}
		changed := false
		if p.s.Prefetch {
			st.onLats = append(st.onLats, p.lat)
			if st.onCount == 0 || p.lat < st.lMin {
				st.lMin, changed = p.lat, true
			}
			st.onCount++
		} else {
			st.offLats = append(st.offLats, p.lat)
			if st.offCount == 0 || p.lat > st.lMax {
				st.lMax, changed = p.lat, true
			}
			if st.offCount == 0 || p.stall < st.cs {
				st.cs, changed = p.stall, true
			}
			st.offCount++
		}
		if changed {
			st.sinceChange = 0
		} else {
			st.sinceChange++
		}
		e.total++
	}
	mBatches.Inc()
	mSamples.Add(int64(len(ps)))
	return nil
}

// PathReport is the running state of one access path.
type PathReport struct {
	Path string `json:"path"`
	// SamplesOff/SamplesOn count ingested samples per prefetch mode.
	SamplesOff int64 `json:"samplesOff"`
	SamplesOn  int64 `json:"samplesOn"`
	// LMax/LMin/Stall are the current Table-2 estimates (lmin is -1
	// until a prefetch-on sample arrives; the others are -1 until a
	// prefetch-off one does).
	LMax  int64 `json:"lmax"`
	LMin  int64 `json:"lmin"`
	Stall int64 `json:"stall"`
	// P50Off/P95Off are percentiles of the per-request latency over
	// prefetch-off samples (-1 without samples) — dispersion that the
	// min/max table figures cannot show.
	P50Off int64 `json:"p50Off"`
	P95Off int64 `json:"p95Off"`
	// Converged reports whether this path has met the engine's sample
	// floor and stability tail.
	Converged bool `json:"converged"`
}

// Report is a full snapshot of the engine.
type Report struct {
	// TotalSamples is every sample ever ingested into this session.
	TotalSamples int64 `json:"totalSamples"`
	// Paths holds one entry per legal access path, in platform order,
	// including paths with no samples yet.
	Paths []PathReport `json:"paths"`
	// Converged reports whether every legal path converged.
	Converged bool `json:"converged"`
}

// percentile returns the p-quantile (0..100) of xs by nearest-rank;
// -1 for an empty set.
func percentile(xs []int64, p int) int64 {
	if len(xs) == 0 {
		return -1
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Report snapshots the running state of every legal access path.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Report{TotalSamples: e.total, Converged: true}
	for _, to := range platform.AccessPairs() {
		pr := PathReport{Path: to.String(), LMax: -1, LMin: -1, Stall: -1, P50Off: -1, P95Off: -1}
		if st, ok := e.paths[to]; ok {
			pr.SamplesOff, pr.SamplesOn = st.offCount, st.onCount
			if st.offCount > 0 {
				pr.LMax, pr.Stall = st.lMax, st.cs
				pr.P50Off = percentile(st.offLats, 50)
				pr.P95Off = percentile(st.offLats, 95)
			}
			if st.onCount > 0 {
				pr.LMin = st.lMin
			}
			pr.Converged = e.convergedLocked(st)
		}
		if !pr.Converged {
			out.Converged = false
		}
		out.Paths = append(out.Paths, pr)
	}
	return out
}

func (e *Engine) convergedLocked(st *pathState) bool {
	min := int64(e.cfg.MinSamples)
	return st.offCount >= min && st.onCount >= min && st.sinceChange >= e.cfg.StableTail
}

// Converged reports whether every legal path has converged.
func (e *Engine) Converged() bool {
	return e.Report().Converged
}

// Table materialises the current candidate latency table. It fails while
// any legal path still lacks prefetch-off or prefetch-on coverage, and it
// validates the result — measurement noise that produced an inconsistent
// table (lmin above lmax, say) is surfaced here, not downstream.
func (e *Engine) Table() (platform.LatencyTable, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var lt platform.LatencyTable
	for _, to := range platform.AccessPairs() {
		st, ok := e.paths[to]
		if !ok || st.offCount == 0 || st.onCount == 0 {
			return lt, fmt.Errorf("calib: path %s lacks coverage (need at least one prefetch-off and one prefetch-on sample)", to)
		}
		lt[to.Target][to.Op] = platform.Latency{Max: st.lMax, Min: st.lMin, Stall: st.cs}
	}
	if err := lt.Validate(); err != nil {
		return platform.LatencyTable{}, fmt.Errorf("calib: measured table is inconsistent: %w", err)
	}
	return lt, nil
}

// FieldDrift is one figure's movement between candidate and reference.
type FieldDrift struct {
	Path  string `json:"path"`
	Field string `json:"field"` // "lmax", "lmin" or "stall"
	// Candidate and Reference are the two values.
	Candidate int64 `json:"candidate"`
	Reference int64 `json:"reference"`
	// RelDelta is |candidate-reference| / reference.
	RelDelta float64 `json:"relDelta"`
	// Exceeds reports whether RelDelta is beyond the tolerance.
	Exceeds bool `json:"exceeds"`
}

// DriftReport compares a candidate table against a reference.
type DriftReport struct {
	// Tolerance is the relative threshold the comparison ran with.
	Tolerance float64 `json:"tolerance"`
	// Drifted reports whether any figure exceeded the tolerance.
	Drifted bool `json:"drifted"`
	// Fields lists only the figures that moved at all (RelDelta > 0),
	// worst first.
	Fields []FieldDrift `json:"fields,omitempty"`
}

// DefaultTolerance is the drift threshold used when a caller passes a
// non-positive one: 5% — tighter than the coarsest Table-2 step (the
// pf lmax 16 vs lmin 12 spread is 25%), loose enough to ignore ±1-cycle
// estimator jitter on double-digit figures.
const DefaultTolerance = 0.05

// Drift flags every figure of candidate that moved beyond tol relative to
// reference. A non-positive tol selects DefaultTolerance.
func Drift(candidate, reference platform.LatencyTable, tol float64) DriftReport {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	out := DriftReport{Tolerance: tol}
	for _, to := range platform.AccessPairs() {
		c, r := candidate[to.Target][to.Op], reference[to.Target][to.Op]
		for _, f := range []struct {
			name   string
			cv, rv int64
		}{
			{"lmax", c.Max, r.Max},
			{"lmin", c.Min, r.Min},
			{"stall", c.Stall, r.Stall},
		} {
			if f.cv == f.rv {
				continue
			}
			delta := f.cv - f.rv
			if delta < 0 {
				delta = -delta
			}
			rel := float64(delta)
			if f.rv != 0 {
				rel = float64(delta) / float64(f.rv)
			}
			fd := FieldDrift{
				Path: to.String(), Field: f.name,
				Candidate: f.cv, Reference: f.rv,
				RelDelta: rel, Exceeds: rel > tol,
			}
			if fd.Exceeds {
				out.Drifted = true
			}
			out.Fields = append(out.Fields, fd)
		}
	}
	sort.Slice(out.Fields, func(i, j int) bool {
		if out.Fields[i].RelDelta != out.Fields[j].RelDelta {
			return out.Fields[i].RelDelta > out.Fields[j].RelDelta
		}
		if out.Fields[i].Path != out.Fields[j].Path {
			return out.Fields[i].Path < out.Fields[j].Path
		}
		return out.Fields[i].Field < out.Fields[j].Field
	})
	mDriftChecks.Inc()
	if out.Drifted {
		mDrifted.Inc()
	}
	return out
}
