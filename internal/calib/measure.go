package calib

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
)

// MeasureBatch runs the paper's Table-2 microbenchmark protocol on the
// simulated TC27x and returns the raw samples: for every legal access
// path, one run of accesses back-to-back requests with the flash
// prefetch buffers off (the lmax / stall-floor measurement) and one with
// them on over a sequential stream (the lmin measurement). The returned
// batch is exactly what Engine.Ingest and the wcetd /v2/calibrate
// endpoint accept — cmd/aurixsim -emit-readings is this function behind
// a flag.
//
// lat is the characterisation the simulated hardware runs with; in tests
// a perturbed table stands in for respun silicon.
func MeasureBatch(lat platform.LatencyTable, accesses int, core int) (Batch, error) {
	if accesses <= 0 {
		return Batch{}, fmt.Errorf("calib: accesses must be positive, got %d", accesses)
	}
	var out Batch
	for _, to := range platform.AccessPairs() {
		for _, prefetch := range []bool{false, true} {
			src, err := workload.Microbench(workload.MicrobenchConfig{
				Target: to.Target, Op: to.Op, N: accesses, Core: core,
			})
			if err != nil {
				return Batch{}, fmt.Errorf("calib: measuring %s: %w", to, err)
			}
			res, err := sim.RunIsolation(lat, core, sim.Task{Kind: tricore.TC16P, Src: src},
				sim.Config{FlashPrefetch: prefetch})
			if err != nil {
				return Batch{}, fmt.Errorf("calib: measuring %s (prefetch=%t): %w", to, prefetch, err)
			}
			out.Samples = append(out.Samples, Sample{
				Path:     to.String(),
				Accesses: int64(accesses),
				Prefetch: prefetch,
				Readings: res.Readings[core],
			})
		}
	}
	return out, nil
}
