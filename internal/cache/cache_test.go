package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{TC16PICache(), TC16PDCache(), TC16EICache(), TC16EDRB()}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v invalid: %v", c, err)
		}
	}
	bad := []Config{
		{Sets: 0, Ways: 1, LineSize: 32},
		{Sets: 4, Ways: 0, LineSize: 32},
		{Sets: 4, Ways: 1, LineSize: 0},
		{Sets: 4, Ways: 1, LineSize: 48},
		{Sets: 3, Ways: 1, LineSize: 32},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v validated, want error", c)
		}
	}
}

func TestTC27xGeometries(t *testing.T) {
	if got := TC16PICache().SizeBytes(); got != 16*1024 {
		t.Errorf("1.6P I-cache = %d bytes, want 16K", got)
	}
	if got := TC16PDCache().SizeBytes(); got != 8*1024 {
		t.Errorf("1.6P D-cache = %d bytes, want 8K", got)
	}
	if got := TC16EICache().SizeBytes(); got != 8*1024 {
		t.Errorf("1.6E I-cache = %d bytes, want 8K", got)
	}
	if got := TC16EDRB().SizeBytes(); got != 32 {
		t.Errorf("1.6E DRB = %d bytes, want 32", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}, true); err == nil {
		t.Error("New accepted zero config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on bad config")
		}
	}()
	MustNew(Config{}, true)
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(Config{Sets: 4, Ways: 2, LineSize: 32}, true)
	if out := c.Access(0x100, false); out.Result != MissClean {
		t.Fatalf("cold access = %v, want miss-clean", out.Result)
	}
	if out := c.Access(0x100, false); out.Result != Hit {
		t.Fatalf("second access = %v, want hit", out.Result)
	}
	// Same line, different word.
	if out := c.Access(0x11C, false); out.Result != Hit {
		t.Fatalf("same-line access = %v, want hit", out.Result)
	}
	hits, mc, md := c.Stats()
	if hits != 2 || mc != 1 || md != 0 {
		t.Errorf("stats = %d/%d/%d, want 2/1/0", hits, mc, md)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped on sets=1: all lines collide.
	c := MustNew(Config{Sets: 1, Ways: 2, LineSize: 32}, true)
	c.Access(0x000, false) // A
	c.Access(0x020, false) // B
	c.Access(0x000, false) // touch A; B becomes LRU
	if out := c.Access(0x040, false); out.Result != MissClean {
		t.Fatalf("fill C = %v", out.Result)
	}
	// B must have been evicted, A retained.
	if !c.Lookup(0x000) {
		t.Error("A evicted, but it was most recently used")
	}
	if c.Lookup(0x020) {
		t.Error("B still present, but it was LRU")
	}
}

func TestDirtyEvictionReportsVictim(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 1, LineSize: 32}, true)
	c.Access(0x1000, true) // store allocates and dirties the line
	out := c.Access(0x2000, false)
	if out.Result != MissDirty {
		t.Fatalf("eviction of dirty line = %v, want miss-dirty", out.Result)
	}
	if out.VictimAddr != 0x1000 {
		t.Errorf("victim addr = %#x, want 0x1000", out.VictimAddr)
	}
	// The new line is clean; evicting it is a clean miss.
	if out := c.Access(0x3000, false); out.Result != MissClean {
		t.Errorf("eviction of clean line = %v", out.Result)
	}
}

func TestStoreHitDirtiesLine(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 1, LineSize: 32}, true)
	c.Access(0x1000, false) // clean fill
	c.Access(0x1000, true)  // store hit dirties
	out := c.Access(0x2000, false)
	if out.Result != MissDirty || out.VictimAddr != 0x1000 {
		t.Errorf("after store hit, eviction = %+v", out)
	}
}

func TestNonAllocatingStoreBypasses(t *testing.T) {
	c := MustNew(TC16EDRB(), false)
	if out := c.Access(0x1000, true); out.Result != MissClean {
		t.Fatalf("DRB store miss = %v", out.Result)
	}
	if c.Lookup(0x1000) {
		t.Error("DRB allocated a line on store miss")
	}
	// Loads do allocate.
	c.Access(0x1000, false)
	if !c.Lookup(0x1000) {
		t.Error("DRB did not allocate on load miss")
	}
	// DRB lines never go dirty: a store hit in a write-through buffer
	// still leaves the line clean in our model... but the 1.6E DRB is
	// read-only, so the simulator never sends stores at it with hits.
}

func TestInvalidate(t *testing.T) {
	c := MustNew(Config{Sets: 2, Ways: 2, LineSize: 32}, true)
	c.Access(0x100, true)
	c.Invalidate()
	if c.Lookup(0x100) {
		t.Error("line survived Invalidate")
	}
	// No write-back is modelled on invalidate; next miss is clean.
	if out := c.Access(0x100, false); out.Result != MissClean {
		t.Errorf("post-invalidate access = %v", out.Result)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(Config{Sets: 2, Ways: 1, LineSize: 32}, true)
	c.Access(0x0, false)
	c.Access(0x0, false)
	c.ResetStats()
	h, mc, md := c.Stats()
	if h != 0 || mc != 0 || md != 0 {
		t.Errorf("stats after reset = %d/%d/%d", h, mc, md)
	}
	if !c.Lookup(0x0) {
		t.Error("ResetStats dropped cache contents")
	}
}

func TestLookupDoesNotPerturbLRU(t *testing.T) {
	c := MustNew(Config{Sets: 1, Ways: 2, LineSize: 32}, true)
	c.Access(0x000, false) // A (older)
	c.Access(0x020, false) // B
	c.Lookup(0x000)        // must NOT refresh A
	c.Access(0x040, false) // evicts LRU = A
	if c.Lookup(0x000) {
		t.Error("Lookup refreshed LRU state")
	}
	if !c.Lookup(0x020) {
		t.Error("wrong victim evicted")
	}
}

// Property: a cache with S sets, W ways never holds more than S*W distinct
// lines, and an immediate re-access of any address hits.
func TestTemporalLocalityProperty(t *testing.T) {
	f := func(addrs []uint32, write []bool) bool {
		c := MustNew(Config{Sets: 8, Ways: 2, LineSize: 32}, true)
		for i, a := range addrs {
			w := i < len(write) && write[i]
			c.Access(a, w)
			if out := c.Access(a, false); out.Result != Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hits + clean misses + dirty misses == number of accesses.
func TestStatsAccountingProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(Config{Sets: 4, Ways: 2, LineSize: 32}, true)
		for i, a := range addrs {
			c.Access(a, i%3 == 0)
		}
		h, mc, md := c.Stats()
		return h+mc+md == int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: working sets that fit in the cache converge to all-hits on the
// second pass.
func TestFittingWorkingSetAllHits(t *testing.T) {
	cfg := Config{Sets: 16, Ways: 2, LineSize: 32}
	c := MustNew(cfg, true)
	n := cfg.SizeBytes() / cfg.LineSize
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			c.Access(uint32(i*cfg.LineSize), false)
		}
	}
	h, mc, md := c.Stats()
	if h != int64(n) || mc != int64(n) || md != 0 {
		t.Errorf("two passes over fitting set: hits=%d missClean=%d missDirty=%d, want %d/%d/0", h, mc, md, n, n)
	}
}

func TestResultString(t *testing.T) {
	if Hit.String() != "hit" || MissClean.String() != "miss-clean" || MissDirty.String() != "miss-dirty" {
		t.Error("result strings wrong")
	}
	if Result(9).String() != "Result(9)" {
		t.Error("invalid result string")
	}
}
