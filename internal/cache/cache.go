// Package cache implements the core-local caches of the TC27x: the
// instruction caches of the 1.6P (16 KiB) and 1.6E (8 KiB), the 8 KiB
// write-back data cache of the 1.6P, and the 32-byte data read buffer (DRB)
// the 1.6E deploys instead of a data cache.
//
// The caches are set-associative with true-LRU replacement and 32-byte
// lines. The data cache tracks per-line dirty state because the TC27x
// debug counters (and the paper's Table 2 latencies) distinguish clean
// misses from dirty ones: a dirty miss folds the eviction write-back into
// the refill transaction and occupies the LMU longer (21 vs 11 cycles).
package cache

import "fmt"

// Config sizes a cache. LineSize must be a power of two; Sets and Ways must
// be positive.
type Config struct {
	Sets     int
	Ways     int
	LineSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: sets (%d) and ways (%d) must be positive", c.Sets, c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineSize)
	}
	if c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", c.Sets)
	}
	return nil
}

// SizeBytes returns the cache capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// TC16PICache is the 16 KiB, 2-way instruction cache of the TriCore 1.6P.
func TC16PICache() Config { return Config{Sets: 256, Ways: 2, LineSize: 32} }

// TC16PDCache is the 8 KiB, 2-way write-back data cache of the TriCore
// 1.6P.
func TC16PDCache() Config { return Config{Sets: 128, Ways: 2, LineSize: 32} }

// TC16EICache is the 8 KiB, 2-way instruction cache of the TriCore 1.6E.
func TC16EICache() Config { return Config{Sets: 128, Ways: 2, LineSize: 32} }

// TC16EDRB is the 32-byte data read buffer of the TriCore 1.6E: a single
// line, never dirty (the 1.6E writes through).
func TC16EDRB() Config { return Config{Sets: 1, Ways: 1, LineSize: 32} }

// Result classifies one cache access.
type Result int

const (
	// Hit means the line was present.
	Hit Result = iota
	// MissClean means the line was absent and the victim (if any) was
	// clean, so the refill is a single read transaction.
	MissClean
	// MissDirty means the line was absent and a dirty victim must be
	// written back as part of the refill.
	MissDirty
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case MissClean:
		return "miss-clean"
	case MissDirty:
		return "miss-dirty"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Outcome is the full effect of one access: the hit/miss classification
// plus the address of the dirty victim when one is evicted (the simulator
// issues the write-back to that address's target).
type Outcome struct {
	Result Result
	// VictimAddr is the base address of the evicted dirty line; valid
	// only when Result == MissDirty.
	VictimAddr uint32
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	// lru is a per-set age stamp; the line with the smallest stamp in a
	// set is the least recently used.
	lru uint64
}

// Cache is a set-associative cache with true-LRU replacement. The zero
// value is unusable; construct with New.
type Cache struct {
	cfg   Config
	lines []line // sets*ways, set-major
	tick  uint64

	// Statistics.
	hits, missClean, missDirty int64

	// writeAllocate controls whether a store miss allocates a line
	// (write-back caches) or bypasses the cache (write-through buffers
	// like the DRB).
	writeAllocate bool
}

// New builds a cache. Write-back caches (the 1.6P D-cache) allocate on
// store misses; pass writeAllocate=false for read-only or write-through
// structures (I-caches take only fetches; the DRB never allocates stores).
func New(cfg Config, writeAllocate bool) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg:           cfg,
		lines:         make([]line, cfg.Sets*cfg.Ways),
		writeAllocate: writeAllocate,
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, writeAllocate bool) *Cache {
	c, err := New(cfg, writeAllocate)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint32) (set int, tag uint32) {
	lineAddr := addr / uint32(c.cfg.LineSize)
	set = int(lineAddr) & (c.cfg.Sets - 1)
	tag = lineAddr / uint32(c.cfg.Sets)
	return set, tag
}

func (c *Cache) lineBase(set int, tag uint32) uint32 {
	return (tag*uint32(c.cfg.Sets) + uint32(set)) * uint32(c.cfg.LineSize)
}

// Access performs one access. write marks stores; for I-caches it must be
// false. The returned Outcome tells the caller which memory transactions
// the access implies: none on a hit (or on a non-allocating store miss,
// where the store itself goes to memory), a refill read on a clean miss,
// and a write-back plus refill on a dirty miss.
func (c *Cache) Access(addr uint32, write bool) Outcome {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	ways := c.lines[base : base+c.cfg.Ways]

	c.tick++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			// Only write-back caches dirty lines; write-through
			// structures forward the store to memory and keep the line
			// clean.
			if write && c.writeAllocate {
				ways[i].dirty = true
			}
			c.hits++
			return Outcome{Result: Hit}
		}
	}

	// Miss. Non-allocating stores go straight to memory and leave the
	// cache untouched.
	if write && !c.writeAllocate {
		c.missClean++
		return Outcome{Result: MissClean}
	}

	// Pick the victim: first invalid way, else LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			goto fill
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
fill:
	out := Outcome{Result: MissClean}
	if ways[victim].valid && ways[victim].dirty {
		out.Result = MissDirty
		out.VictimAddr = c.lineBase(set, ways[victim].tag)
		c.missDirty++
	} else {
		c.missClean++
	}
	ways[victim] = line{valid: true, dirty: write, tag: tag, lru: c.tick}
	return out
}

// Lookup reports whether addr currently hits, without touching LRU state
// or statistics.
func (c *Cache) Lookup(addr uint32) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for _, l := range c.lines[base : base+c.cfg.Ways] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops every line without write-backs (as a debug-reset would).
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, missClean, missDirty int64) {
	return c.hits, c.missClean, c.missDirty
}

// ResetStats zeroes the statistics, keeping cache contents.
func (c *Cache) ResetStats() { c.hits, c.missClean, c.missDirty = 0, 0, 0 }
