// Package sim is the multicore simulation harness: it instantiates the
// simulated TC27x (three TriCore cores behind the SRI crossbar), runs task
// sets on it, and returns what the paper's measurement protocol collects —
// DSU counter readings and observed execution times — plus the ground-truth
// per-target access counts (PTAC) and contention waits that only a
// simulator can see and that the tests use to validate the models.
//
// The harness stands in for the paper's hardware testbed (a TC277
// application kit driven through the debug interface). The substitution is
// sound because the contention models consume nothing but the DSU readings
// and the isolation execution time, both of which the harness produces
// through the same mechanisms (per-slave round-robin arbitration, Table 2
// latencies, cache filtering) that create them on silicon.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sri"
	"repro/internal/trace"
	"repro/internal/tricore"
)

// NumCores is the number of cores on the TC277.
const NumCores = 3

// Task is one workload to place on a core.
type Task struct {
	// Kind is the core microarchitecture to run on. The TC277 pairing is
	// core 0 = TC16E, cores 1 and 2 = TC16P; Run applies that pairing
	// when Kind is left at its zero value on core 0 ... callers normally
	// just set it explicitly.
	Kind tricore.Kind
	// Src is the task's access stream, executed once.
	Src trace.Source
}

// Result collects everything observable from one run.
type Result struct {
	// Cycles is the cycle at which the run's stop condition was met (the
	// analysed task finished).
	Cycles int64
	// Readings holds each active core's DSU snapshot at stop time.
	Readings map[int]dsu.Readings
	// Done reports which active cores had finished their trace at stop
	// time.
	Done map[int]bool
	// PTAC is the simulator's ground truth: SRI transactions per core per
	// (target, op). Unavailable on real hardware.
	PTAC map[int]map[platform.TargetOp]int64
	// WaitCycles is the exact arbitration wait each core suffered, per
	// target: the true contention. Unavailable on real hardware.
	WaitCycles map[int]map[platform.Target]int64
}

// TotalWait sums core's arbitration wait over all targets.
func (r Result) TotalWait(core int) int64 {
	var sum int64
	for _, w := range r.WaitCycles[core] {
		sum += w
	}
	return sum
}

// ErrDeadline is returned when a run exceeds its cycle budget.
var ErrDeadline = errors.New("sim: cycle budget exhausted before the analysed task finished")

// Config tunes a run.
type Config struct {
	// MaxCycles aborts runaway simulations; 0 means the default budget.
	MaxCycles int64
	// FlashPrefetch enables the SRI flash prefetch buffers: sequential
	// next-line requests are served at the lmin latency of Table 2
	// instead of lmax. Off by default, since the contention models
	// assume worst-case service; the lmin calibration experiment turns
	// it on.
	FlashPrefetch bool
	// StallBudgets, when non-nil, enables RTOS-level contention
	// enforcement in the style of Nowotsch et al. (the paper's ref [16]):
	// a core whose cumulative SRI stall cycles (PMEM_STALL + DMEM_STALL)
	// reach its budget is suspended — it stops issuing new accesses but
	// any in-flight transaction completes. Cores without an entry run
	// unconstrained.
	StallBudgets map[int]int64
	// SRIPriorities assigns cores to SRI priority classes (higher wins
	// arbitration; round-robin within a class). All cores default to the
	// same class — the paper's system model, and the precondition for
	// its contention models to be sound (see
	// TestPriorityClassesVoidModelAssumption).
	SRIPriorities map[int]int
	// JitterSeed, when non-zero, enables deterministic service-time
	// jitter on the SRI: granted service times vary in [lmin, lmax] per
	// transaction. Mutually exclusive with FlashPrefetch.
	JitterSeed uint64
}

const defaultMaxCycles = 2_000_000_000

// Run simulates the task set until the analysed core finishes its trace.
// tasks maps core index (0..2) to workload; cores without a task stay
// silent. Contender tasks that finish early simply go quiet; contender
// tasks meant to outlast the analysed one must be sized accordingly by the
// caller (the workload generators do).
func Run(lat platform.LatencyTable, tasks map[int]Task, analysed int, cfg Config) (Result, error) {
	if _, ok := tasks[analysed]; !ok {
		return Result{}, fmt.Errorf("sim: analysed core %d has no task", analysed)
	}
	if err := lat.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	x := sri.New(NumCores)
	if cfg.FlashPrefetch {
		x.EnableFlashPrefetch(32)
	}
	if cfg.JitterSeed != 0 {
		x.EnableServiceJitter(cfg.JitterSeed)
	}
	for m, class := range cfg.SRIPriorities {
		if m < 0 || m >= NumCores {
			return Result{}, fmt.Errorf("sim: priority for core %d out of range", m)
		}
		x.SetMasterPriority(m, class)
	}
	cores := make(map[int]*tricore.Core, len(tasks))
	for idx, t := range tasks {
		if idx < 0 || idx >= NumCores {
			return Result{}, fmt.Errorf("sim: core index %d out of range", idx)
		}
		c, err := tricore.New(tricore.Config{Index: idx, Kind: t.Kind}, &lat, x, t.Src)
		if err != nil {
			return Result{}, err
		}
		cores[idx] = c
	}

	budget := cfg.MaxCycles
	if budget <= 0 {
		budget = defaultMaxCycles
	}

	var now int64
	for ; now < budget; now++ {
		for idx, c := range cores {
			if quota, ok := cfg.StallBudgets[idx]; ok && !x.Busy(idx) {
				// Enforcement point: once the core's SRI stalls consumed
				// its quota, it is suspended before it can issue again.
				r := c.Counters()
				if r.PS+r.DS >= quota {
					continue
				}
			}
			c.Tick(now)
		}
		for _, cmp := range x.Tick(now) {
			core, ok := cores[cmp.Master]
			if !ok {
				return Result{}, fmt.Errorf("sim: completion for idle core %d", cmp.Master)
			}
			core.Complete(now, cmp)
		}
		if cores[analysed].Done() {
			break
		}
	}
	if !cores[analysed].Done() {
		return Result{}, fmt.Errorf("%w (budget %d)", ErrDeadline, budget)
	}

	res := Result{
		Cycles:     now,
		Readings:   make(map[int]dsu.Readings, len(cores)),
		Done:       make(map[int]bool, len(cores)),
		PTAC:       make(map[int]map[platform.TargetOp]int64, len(cores)),
		WaitCycles: make(map[int]map[platform.Target]int64, len(cores)),
	}
	for idx, c := range cores {
		res.Readings[idx] = c.Counters()
		res.Done[idx] = c.Done()
		ptac := make(map[platform.TargetOp]int64)
		for _, to := range platform.AccessPairs() {
			if g := x.Grants(idx, to.Target, to.Op); g > 0 {
				ptac[to] = g
			}
		}
		res.PTAC[idx] = ptac
		waits := make(map[platform.Target]int64)
		for _, t := range platform.Targets {
			if w := x.WaitCycles(idx, t); w > 0 {
				waits[t] = w
			}
		}
		res.WaitCycles[idx] = waits
	}
	return res, nil
}

// RunIsolation runs a single task alone on core coreIdx — the paper's
// pre-integration measurement protocol — and returns its readings.
func RunIsolation(lat platform.LatencyTable, coreIdx int, t Task, cfg Config) (Result, error) {
	return Run(lat, map[int]Task{coreIdx: t}, coreIdx, cfg)
}

// RunIsolationWarm measures a task in isolation after one untimed warm-up
// pass over its trace: the standard MBTA protocol when the steady-state
// (warm-cache) behaviour is the quantity of interest rather than the
// cold-start one. Counter readings and execution time cover only the
// second, timed pass.
//
// Warm measurements are *smaller* in every counter than cold ones, so
// bounds built from cold readings remain valid for warm runs — but not
// vice versa; use warm readings only when the deployment guarantees warm
// caches at activation.
func RunIsolationWarm(lat platform.LatencyTable, coreIdx int, t Task, cfg Config) (Result, error) {
	if err := lat.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	x := sri.New(NumCores)
	if cfg.FlashPrefetch {
		x.EnableFlashPrefetch(32)
	}
	core, err := tricore.New(tricore.Config{Index: coreIdx, Kind: t.Kind}, &lat, x, t.Src)
	if err != nil {
		return Result{}, err
	}
	budget := cfg.MaxCycles
	if budget <= 0 {
		budget = defaultMaxCycles
	}

	runPass := func(start int64) (int64, error) {
		for now := start; now < start+budget; now++ {
			core.Tick(now)
			for _, cmp := range x.Tick(now) {
				core.Complete(now, cmp)
			}
			if core.Done() {
				return now, nil
			}
		}
		return 0, fmt.Errorf("%w (budget %d)", ErrDeadline, budget)
	}

	// Warm-up pass: executed, then discarded.
	end, err := runPass(0)
	if err != nil {
		return Result{}, err
	}
	core.ResetCounters()
	x.ResetStats()
	t.Src.Reset()
	core.Restart()

	start := end + 1
	end, err = runPass(start)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Cycles:     end - start,
		Readings:   map[int]dsu.Readings{coreIdx: core.Counters()},
		Done:       map[int]bool{coreIdx: true},
		PTAC:       map[int]map[platform.TargetOp]int64{coreIdx: {}},
		WaitCycles: map[int]map[platform.Target]int64{coreIdx: {}},
	}
	for _, to := range platform.AccessPairs() {
		if g := x.Grants(coreIdx, to.Target, to.Op); g > 0 {
			res.PTAC[coreIdx][to] = g
		}
	}
	return res, nil
}
