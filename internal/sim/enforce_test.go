package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/tricore"
)

func TestEnforcementZeroQuotaSilencesContender(t *testing.T) {
	lat := platform.TC27xLatencies()
	task := Task{Kind: tricore.TC16P, Src: uncachedLMULoads(100, 0)}
	iso, err := RunIsolation(lat, 1, task, Config{})
	if err != nil {
		t.Fatal(err)
	}
	task.Src.Reset()
	contender := Task{Kind: tricore.TC16P, Src: trace.NewRepeat(uncachedLMULoads(100, 0), 0)}
	res, err := Run(lat, map[int]Task{1: task, 2: contender}, 1, Config{
		StallBudgets: map[int]int64{2: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != iso.Cycles {
		t.Errorf("zero-quota contender still interfered: %d vs isolation %d", res.Cycles, iso.Cycles)
	}
	if got := res.Readings[2].PS + res.Readings[2].DS; got != 0 {
		t.Errorf("suspended contender accumulated %d stall cycles", got)
	}
}

func TestEnforcementBoundsInterference(t *testing.T) {
	lat := platform.TC27xLatencies()
	for _, quota := range []int64{50, 200, 1000} {
		task := Task{Kind: tricore.TC16P, Src: uncachedLMULoads(300, 0)}
		iso, err := RunIsolation(lat, 1, task, Config{})
		if err != nil {
			t.Fatal(err)
		}
		task.Src.Reset()
		contender := Task{Kind: tricore.TC16P, Src: trace.NewRepeat(uncachedLMULoads(100, 0), 0)}
		res, err := Run(lat, map[int]Task{1: task, 2: contender}, 1, Config{
			StallBudgets: map[int]int64{2: quota},
		})
		if err != nil {
			t.Fatal(err)
		}
		// The contender's own stalls must not exceed quota by more than
		// one transaction's worth.
		contStalls := res.Readings[2].PS + res.Readings[2].DS
		if contStalls > quota+43 {
			t.Errorf("quota %d: contender stalls %d exceed quota + one transaction", quota, contStalls)
		}
		// The analysed task's slowdown must respect the analytic bound.
		bound := core.EnforcedContentionBound(quota, &lat)
		slowdown := res.Cycles - iso.Cycles
		if slowdown > bound {
			t.Errorf("quota %d: slowdown %d exceeds enforcement bound %d", quota, slowdown, bound)
		}
	}
}

func TestEnforcementDoesNotTouchAnalysedCore(t *testing.T) {
	// A budget on the analysed core itself suspends it too — callers use
	// this for criticality inversion scenarios, and Run must then hit the
	// deadline error rather than hang.
	lat := platform.TC27xLatencies()
	task := Task{Kind: tricore.TC16P, Src: uncachedLMULoads(100, 0)}
	_, err := Run(lat, map[int]Task{1: task}, 1, Config{
		MaxCycles:    10000,
		StallBudgets: map[int]int64{1: 0},
	})
	if err == nil {
		t.Error("suspended analysed task still finished")
	}
}

func TestEnforcedContentionBoundArithmetic(t *testing.T) {
	lat := platform.TC27xLatencies()
	if got := core.EnforcedContentionBound(0, &lat); got != 0 {
		t.Errorf("zero quota bound = %d", got)
	}
	// cs_min = 6, l_max = 43: quota 60 -> (10+1)*43 = 473.
	if got := core.EnforcedContentionBound(60, &lat); got != 473 {
		t.Errorf("bound(60) = %d, want 473", got)
	}
	if got := core.EnforcedContentionBound(-5, &lat); got != 0 {
		t.Errorf("negative quota bound = %d", got)
	}
}
