package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/tricore"
)

// uncachedLMULoads builds a trace of n non-cacheable LMU loads separated by
// gap compute cycles.
func uncachedLMULoads(n int, gap int64) trace.Source {
	accs := make([]trace.Access, n)
	for i := range accs {
		accs[i] = trace.Access{Gap: gap, Kind: trace.Load, Addr: platform.Uncached(platform.LMUBase) + uint32(i%256)*4}
	}
	return trace.NewSlice(accs)
}

func TestRunIsolationCounters(t *testing.T) {
	lat := platform.TC27xLatencies()
	res, err := RunIsolation(lat, 1, Task{Kind: tricore.TC16P, Src: uncachedLMULoads(100, 0)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Readings[1]
	if r.DS != 100*10 {
		t.Errorf("DS = %d, want 1000 (100 lmu data accesses at cs=10)", r.DS)
	}
	if got := res.PTAC[1][platform.TargetOp{Target: platform.LMU, Op: platform.Data}]; got != 100 {
		t.Errorf("ground-truth lmu/da grants = %d, want 100", got)
	}
	if w := res.TotalWait(1); w != 0 {
		t.Errorf("isolation run waited %d cycles", w)
	}
	if !res.Done[1] {
		t.Error("analysed task not done")
	}
}

func TestRunValidation(t *testing.T) {
	lat := platform.TC27xLatencies()
	if _, err := Run(lat, map[int]Task{}, 1, Config{}); err == nil {
		t.Error("run without analysed task accepted")
	}
	if _, err := Run(lat, map[int]Task{7: {Src: trace.NewSlice(nil)}}, 7, Config{}); err == nil {
		t.Error("core index 7 accepted")
	}
	var bad platform.LatencyTable
	if _, err := Run(bad, map[int]Task{1: {Src: trace.NewSlice(nil)}}, 1, Config{}); err == nil {
		t.Error("invalid latency table accepted")
	}
}

func TestDeadline(t *testing.T) {
	lat := platform.TC27xLatencies()
	_, err := RunIsolation(lat, 1, Task{Kind: tricore.TC16P, Src: uncachedLMULoads(1000, 0)}, Config{MaxCycles: 10})
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
}

func TestContentionSlowsAnalysedTask(t *testing.T) {
	lat := platform.TC27xLatencies()
	task := Task{Kind: tricore.TC16P, Src: uncachedLMULoads(200, 0)}
	iso, err := RunIsolation(lat, 1, task, Config{})
	if err != nil {
		t.Fatal(err)
	}
	task.Src.Reset()
	contender := Task{Kind: tricore.TC16P, Src: trace.NewRepeat(uncachedLMULoads(200, 0), 0)}
	// Unbounded contender: it keeps hammering the LMU until core 1 ends.
	multi, err := Run(lat, map[int]Task{1: task, 2: contender}, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cycles <= iso.Cycles {
		t.Errorf("contended run (%d cycles) not slower than isolation (%d)", multi.Cycles, iso.Cycles)
	}
	if w := multi.TotalWait(1); w == 0 {
		t.Error("no arbitration wait recorded under contention")
	}
	// The slowdown must equal the arbitration wait the analysed core
	// accumulated (the only new phenomenon in the contended run).
	slowdown := multi.Cycles - iso.Cycles
	if w := multi.TotalWait(1); slowdown != w {
		t.Errorf("slowdown %d != analysed core's wait %d", slowdown, w)
	}
	// And the extra stall cycles recorded by the DSU must match too:
	// waits are charged in full to the stall counters.
	extraDS := multi.Readings[1].DS - iso.Readings[1].DS
	if extraDS != slowdown {
		t.Errorf("extra DMEM_STALL %d != slowdown %d", extraDS, slowdown)
	}
}

func TestDistinctTargetsDoNotInterfere(t *testing.T) {
	lat := platform.TC27xLatencies()
	task := Task{Kind: tricore.TC16P, Src: uncachedLMULoads(100, 0)}
	iso, err := RunIsolation(lat, 1, task, Config{})
	if err != nil {
		t.Fatal(err)
	}
	task.Src.Reset()
	// Contender hammers the data flash: different slave, no contention.
	dflAccs := make([]trace.Access, 100)
	for i := range dflAccs {
		dflAccs[i] = trace.Access{Kind: trace.Load, Addr: platform.DFlashBase + uint32(i%64)*4}
	}
	contender := Task{Kind: tricore.TC16P, Src: trace.NewRepeat(trace.NewSlice(dflAccs), 0)}
	multi, err := Run(lat, map[int]Task{1: task, 2: contender}, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cycles != iso.Cycles {
		t.Errorf("disjoint-target contender changed execution time: %d vs %d", multi.Cycles, iso.Cycles)
	}
	if w := multi.TotalWait(1); w != 0 {
		t.Errorf("analysed core waited %d cycles with a disjoint contender", w)
	}
}

func TestDeterminism(t *testing.T) {
	lat := platform.TC27xLatencies()
	build := func() map[int]Task {
		return map[int]Task{
			1: {Kind: tricore.TC16P, Src: uncachedLMULoads(150, 2)},
			2: {Kind: tricore.TC16P, Src: trace.NewRepeat(uncachedLMULoads(50, 1), 0)},
		}
	}
	a, err := Run(lat, build(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lat, build(), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestThreeCoreContention(t *testing.T) {
	lat := platform.TC27xLatencies()
	tasks := map[int]Task{
		0: {Kind: tricore.TC16E, Src: trace.NewRepeat(uncachedLMULoads(50, 0), 0)},
		1: {Kind: tricore.TC16P, Src: uncachedLMULoads(100, 0)},
		2: {Kind: tricore.TC16P, Src: trace.NewRepeat(uncachedLMULoads(50, 0), 0)},
	}
	res, err := Run(lat, tasks, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// With two contenders on the same slave, each analysed request can
	// wait up to two full service times: wait <= 2 * 11 * n_a.
	wait := res.TotalWait(1)
	if wait == 0 {
		t.Error("no contention with two contenders")
	}
	if max := int64(2 * 11 * 100); wait > max {
		t.Errorf("wait %d exceeds round-robin bound %d", wait, max)
	}
}

// The round-robin bound is the core soundness argument of the paper's
// model: each request of the analysed task is delayed by at most one
// request per contender on the same target.
func TestRoundRobinWaitBound(t *testing.T) {
	lat := platform.TC27xLatencies()
	for _, nContender := range []int{1, 2} {
		tasks := map[int]Task{1: {Kind: tricore.TC16P, Src: uncachedLMULoads(300, 1)}}
		for i := 0; i < nContender; i++ {
			idx := 2 - i*2 // cores 2 and 0
			tasks[idx] = Task{Kind: tricore.TC16P, Src: trace.NewRepeat(uncachedLMULoads(100, 0), 0)}
		}
		res, err := Run(lat, tasks, 1, Config{})
		if err != nil {
			t.Fatal(err)
		}
		bound := int64(nContender) * 11 * 300
		if w := res.TotalWait(1); w > bound {
			t.Errorf("%d contenders: wait %d exceeds bound %d", nContender, w, bound)
		}
	}
}
