package sim

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/tricore"
)

// cacheableCodeLoop builds a trace that refetches the same small cacheable
// code footprint repeatedly — cold it misses, warm it hits.
func cacheableCodeLoop(lines, passes int) trace.Source {
	var accs []trace.Access
	for p := 0; p < passes; p++ {
		for i := 0; i < lines; i++ {
			accs = append(accs, trace.Access{Gap: 2, Kind: trace.Fetch,
				Addr: platform.PFlash0Base + uint32(i)*32})
		}
	}
	return trace.NewSlice(accs)
}

func TestWarmMeasurementDropsColdMisses(t *testing.T) {
	lat := platform.TC27xLatencies()
	mk := func() Task { return Task{Kind: tricore.TC16P, Src: cacheableCodeLoop(32, 1)} }

	cold, err := RunIsolation(lat, 1, mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunIsolationWarm(lat, 1, mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One pass over 32 lines fits the 16K I-cache: cold misses all 32,
	// warm misses none.
	if cold.Readings[1].PM != 32 {
		t.Errorf("cold PM = %d, want 32", cold.Readings[1].PM)
	}
	if warm.Readings[1].PM != 0 {
		t.Errorf("warm PM = %d, want 0", warm.Readings[1].PM)
	}
	if warm.Readings[1].PS != 0 {
		t.Errorf("warm PS = %d, want 0", warm.Readings[1].PS)
	}
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm run (%d) not faster than cold (%d)", warm.Cycles, cold.Cycles)
	}
	// CCNT must cover exactly the timed pass.
	if warm.Readings[1].CCNT != warm.Cycles {
		t.Errorf("warm CCNT %d != cycles %d", warm.Readings[1].CCNT, warm.Cycles)
	}
}

func TestWarmMeasurementDominatedByCold(t *testing.T) {
	// Every counter of the warm measurement is <= the cold one, so
	// cold-readings bounds stay valid for warm runs.
	lat := platform.TC27xLatencies()
	mk := func() Task { return Task{Kind: tricore.TC16P, Src: cacheableCodeLoop(600, 2)} }
	cold, err := RunIsolation(lat, 1, mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunIsolationWarm(lat, 1, mk(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, w := cold.Readings[1], warm.Readings[1]
	if w.PM > c.PM || w.PS > c.PS || w.DS > c.DS || w.CCNT > c.CCNT {
		t.Errorf("warm readings %v exceed cold %v", w, c)
	}
}

func TestWarmMeasurementValidation(t *testing.T) {
	var bad platform.LatencyTable
	if _, err := RunIsolationWarm(bad, 1, Task{Kind: tricore.TC16P, Src: trace.NewSlice(nil)}, Config{}); err == nil {
		t.Error("invalid latency table accepted")
	}
	lat := platform.TC27xLatencies()
	if _, err := RunIsolationWarm(lat, 1, Task{Kind: tricore.TC16P, Src: cacheableCodeLoop(32, 100)}, Config{MaxCycles: 10}); err == nil {
		t.Error("budget exhaustion not reported")
	}
}
