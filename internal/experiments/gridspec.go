package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/tabstore"
	"repro/internal/workload"
	"repro/wcet"
)

// Grid validation sentinels. Every pre-submission rejection wraps one of
// these inside a *GridError, so callers can switch on the failure class
// with errors.Is while the message still names the offending dimension.
var (
	// ErrEmptyDimension marks a dimension that was set to an explicitly
	// empty list: an empty grid has no cells, which is a contradiction,
	// not a default. Omit the field (nil) to select the paper's grid.
	ErrEmptyDimension = errors.New("explicitly empty: the grid would have no cells (omit the dimension to select the default)")
	// ErrBadValue marks a dimension entry outside its legal domain.
	ErrBadValue = errors.New("value outside the legal domain")
	// ErrDuplicate marks a dimension listing the same entry twice —
	// contradictory, because cells are keyed by their coordinates.
	ErrDuplicate = errors.New("duplicate entry")
	// ErrNoStore marks Grid.Tables set but Grid.Store is nil.
	ErrNoStore = errors.New("Grid.Tables set but Grid.Store is nil")
)

// GridError reports an invalid grid: the dimension at fault and the
// rejection class (one of the sentinels above, or a store resolution
// error for unknown table refs).
type GridError struct {
	// Dimension names the grid field at fault ("scenarios", "levels",
	// "perturbations", "appIterations", "models", "tables").
	Dimension string
	// Detail narrows the fault to an entry, when there is one.
	Detail string
	// Err is the rejection class.
	Err error
}

// Error formats the rejection with its dimension.
func (e *GridError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("experiments: grid %s: %s: %v", e.Dimension, e.Detail, e.Err)
	}
	return fmt.Sprintf("experiments: grid %s: %v", e.Dimension, e.Err)
}

// Unwrap exposes the rejection class to errors.Is.
func (e *GridError) Unwrap() error { return e.Err }

// gridErr builds a *GridError.
func gridErr(dim, detail string, err error) error {
	return &GridError{Dimension: dim, Detail: detail, Err: err}
}

// maxAppIterations bounds the per-cell application length a grid may
// request; it exists so a wire-submitted campaign cannot ask one cell for
// an unbounded simulation. The paper's workload uses AppIterations (300).
const maxAppIterations = 100_000

// Validate rejects empty or contradictory grids with typed errors before
// any engine submission: explicitly empty dimensions (nil means "use the
// default"; a non-nil empty slice means a zero-cell grid), scenario or
// level values outside the platform's domain, negative or outsized
// iteration counts, unnamed or duplicate perturbations, unknown models,
// and table refs without a store or not resolvable in it.
func (g Grid) Validate() error {
	if g.Scenarios != nil && len(g.Scenarios) == 0 {
		return gridErr("scenarios", "", ErrEmptyDimension)
	}
	for _, sc := range g.Scenarios {
		if err := sc.Validate(); err != nil {
			return gridErr("scenarios", fmt.Sprintf("scenario %d", sc), ErrBadValue)
		}
	}
	if g.Levels != nil && len(g.Levels) == 0 {
		return gridErr("levels", "", ErrEmptyDimension)
	}
	for _, lv := range g.Levels {
		if !knownLevel(lv) {
			return gridErr("levels", lv.String(), ErrBadValue)
		}
	}
	if g.Perturbations != nil && len(g.Perturbations) == 0 {
		return gridErr("perturbations", "", ErrEmptyDimension)
	}
	seenPert := make(map[string]bool, len(g.Perturbations))
	for _, p := range g.Perturbations {
		if seenPert[p.Name] {
			return gridErr("perturbations", fmt.Sprintf("%q", p.Name), ErrDuplicate)
		}
		seenPert[p.Name] = true
	}
	if g.AppIterations < 0 || g.AppIterations > maxAppIterations {
		return gridErr("appIterations", fmt.Sprintf("%d", g.AppIterations), ErrBadValue)
	}
	if g.Models != nil && len(g.Models) == 0 {
		return gridErr("models", "", ErrEmptyDimension)
	}
	reg := g.Registry
	if reg == nil {
		reg = wcet.DefaultRegistry()
	}
	seenModel := make(map[string]bool, len(g.Models))
	for _, m := range g.Models {
		canon, err := reg.Canonical(m)
		if err != nil {
			return gridErr("models", fmt.Sprintf("%q", m), err)
		}
		if seenModel[canon] {
			return gridErr("models", fmt.Sprintf("%q", m), ErrDuplicate)
		}
		seenModel[canon] = true
	}
	if g.Tables != nil && len(g.Tables) == 0 {
		return gridErr("tables", "", ErrEmptyDimension)
	}
	if len(g.Tables) > 0 && g.Store == nil {
		return gridErr("tables", "", ErrNoStore)
	}
	seenTable := make(map[string]bool, len(g.Tables))
	for _, ref := range g.Tables {
		if seenTable[ref] {
			return gridErr("tables", fmt.Sprintf("%q", ref), ErrDuplicate)
		}
		seenTable[ref] = true
		if _, _, err := g.Store.Resolve(ref); err != nil {
			return gridErr("tables", fmt.Sprintf("%q", ref), err)
		}
	}
	return nil
}

// knownLevel reports whether lv is one of the platform's contender loads.
func knownLevel(lv workload.Level) bool {
	for _, known := range workload.Levels {
		if lv == known {
			return true
		}
	}
	return false
}

// levelNames maps the wire names (Level.String values) back to levels.
var levelNames = func() map[string]workload.Level {
	m := make(map[string]workload.Level, len(workload.Levels))
	for _, lv := range workload.Levels {
		m[lv.String()] = lv
	}
	return m
}()

// ParseLevel resolves a contender-load wire name ("H-Load", "M-Load",
// "L-Load") to its Level.
func ParseLevel(name string) (workload.Level, error) {
	lv, ok := levelNames[name]
	if !ok {
		return 0, fmt.Errorf("unknown level %q", name)
	}
	return lv, nil
}

// PerturbationSpec is the wire form of one synthetic latency-table
// variant: a named uniform scaling of every latency figure.
type PerturbationSpec struct {
	// Name labels the variant in results; required unless the spec is the
	// identity (zero ScalePercent).
	Name string `json:"name,omitempty"`
	// ScalePercent scales every legal latency figure to this percentage
	// of its base value: 110 = +10%, 90 = -10%. 0 (or 100) is the
	// identity. Legal range is 1..1000.
	ScalePercent int64 `json:"scalePercent,omitempty"`
}

// GridSpec is the wire form of a sweep grid — the body of a campaign-job
// submission. Omitted dimensions select the paper's evaluation grid
// exactly like the zero Grid; explicitly empty dimensions are rejected.
type GridSpec struct {
	// Scenarios selects deployment scenarios by number (1 or 2).
	Scenarios []int `json:"scenarios,omitempty"`
	// Levels selects contender loads by wire name ("H-Load", "M-Load",
	// "L-Load").
	Levels []string `json:"levels,omitempty"`
	// Perturbations selects synthetic latency-table variants.
	Perturbations []PerturbationSpec `json:"perturbations,omitempty"`
	// AppIterations is the analysed application's iteration count per
	// cell; 0 selects the paper's default.
	AppIterations int `json:"appIterations,omitempty"`
	// Models selects contention models by registry name or alias.
	Models []string `json:"models,omitempty"`
	// Tables selects stored latency-table versions (refs or content
	// addresses) as the outermost grid dimension.
	Tables []string `json:"tables,omitempty"`
}

// Compile validates the spec and lowers it to a Grid bound to the given
// store and registry. Every rejection is a *GridError; nothing is
// submitted to an engine. Compile is the campaign-job analogue of
// V2Request.Prepare: all validation happens here, pre-admission.
func (s GridSpec) Compile(store *tabstore.Store, reg *wcet.Registry) (Grid, error) {
	g := Grid{
		AppIterations: s.AppIterations,
		Registry:      reg,
		Store:         store,
	}
	if s.Scenarios != nil {
		g.Scenarios = make([]workload.Scenario, 0, len(s.Scenarios))
		for _, n := range s.Scenarios {
			g.Scenarios = append(g.Scenarios, workload.Scenario(n))
		}
	}
	if s.Levels != nil {
		g.Levels = make([]workload.Level, 0, len(s.Levels))
		for _, name := range s.Levels {
			lv, err := ParseLevel(name)
			if err != nil {
				return Grid{}, gridErr("levels", fmt.Sprintf("%q", name), ErrBadValue)
			}
			g.Levels = append(g.Levels, lv)
		}
	}
	if s.Perturbations != nil {
		g.Perturbations = make([]Perturbation, 0, len(s.Perturbations))
		for _, p := range s.Perturbations {
			switch {
			case p.ScalePercent == 0 || p.ScalePercent == 100:
				// Identity: keep the name (empty = the base table).
				g.Perturbations = append(g.Perturbations, Perturbation{Name: p.Name})
			case p.ScalePercent < 1 || p.ScalePercent > 1000:
				return Grid{}, gridErr("perturbations", fmt.Sprintf("scalePercent %d", p.ScalePercent), ErrBadValue)
			case p.Name == "":
				return Grid{}, gridErr("perturbations", "scaling variant without a name", ErrBadValue)
			default:
				g.Perturbations = append(g.Perturbations, ScaleLatencies(p.Name, p.ScalePercent, 100))
			}
		}
	}
	if s.Models != nil {
		// make, not append: appending zero elements to nil yields nil,
		// which would silently turn an explicitly-empty dimension (a
		// zero-cell grid, rejected) into "use the default".
		g.Models = make([]string, len(s.Models))
		copy(g.Models, s.Models)
	}
	if s.Tables != nil {
		g.Tables = make([]string, len(s.Tables))
		copy(g.Tables, s.Tables)
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// DecodeGridSpec parses a wire grid spec strictly: unknown fields are
// rejected, exactly like the serving layer's request decoding.
func DecodeGridSpec(data []byte) (GridSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s GridSpec
	if err := dec.Decode(&s); err != nil {
		return GridSpec{}, fmt.Errorf("experiments: grid spec: %w", err)
	}
	// A body holding multiple JSON values is malformed.
	if dec.More() {
		return GridSpec{}, fmt.Errorf("experiments: grid spec: trailing data after JSON value")
	}
	return s, nil
}

// EstimateJSON is the deterministic wire form of one model estimate in a
// sweep artifact: the bound itself, without solver-effort diagnostics
// (node and warm-start counts vary run to run under the parallel solver,
// and a resumed campaign must be byte-identical to an uninterrupted one).
type EstimateJSON struct {
	Name             string  `json:"name"`
	Model            string  `json:"model"`
	IsolationCycles  int64   `json:"isolationCycles"`
	ContentionCycles int64   `json:"contentionCycles"`
	WCETCycles       int64   `json:"wcetCycles"`
	Ratio            float64 `json:"ratio"`
}

// PointJSON is the deterministic wire form of one sweep cell result — the
// unit the campaign-job subsystem checkpoints and the element of a sweep
// artifact.
type PointJSON struct {
	Table           string         `json:"table,omitempty"`
	Perturbation    string         `json:"perturbation,omitempty"`
	Scenario        int            `json:"scenario"`
	Level           string         `json:"level"`
	IsolationCycles int64          `json:"isolationCycles"`
	Estimates       []EstimateJSON `json:"estimates"`
}

// Wire lowers a sweep point to its artifact form.
func (p SweepPoint) Wire() PointJSON {
	w := PointJSON{
		Table:           p.Table,
		Perturbation:    p.Perturbation,
		Scenario:        int(p.Scenario),
		Level:           p.Level.String(),
		IsolationCycles: p.IsolationCycles,
		Estimates:       make([]EstimateJSON, 0, len(p.Estimates)),
	}
	for _, e := range p.Estimates {
		w.Estimates = append(w.Estimates, EstimateJSON{
			Name:             e.Name,
			Model:            e.Model,
			IsolationCycles:  e.IsolationCycles,
			ContentionCycles: e.ContentionCycles,
			WCETCycles:       e.WCET(),
			Ratio:            e.Ratio(),
		})
	}
	return w
}

// Artifact is a completed sweep's wire form: one point per grid cell, in
// stable grid order.
type Artifact struct {
	Points []PointJSON `json:"points"`
}

// EncodeArtifact renders points with the canonical artifact encoding
// (two-space indent, trailing newline). The bytes are a pure function of
// the points, so an artifact's content address is reproducible: the same
// grid solved twice — or interrupted and resumed — encodes identically.
func EncodeArtifact(points []PointJSON) ([]byte, error) {
	if points == nil {
		points = []PointJSON{}
	}
	data, err := json.MarshalIndent(Artifact{Points: points}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// WirePoints lowers a full sweep to artifact form.
func WirePoints(points []SweepPoint) []PointJSON {
	out := make([]PointJSON, len(points))
	for i, p := range points {
		out[i] = p.Wire()
	}
	return out
}
