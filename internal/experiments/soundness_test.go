package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
)

// randomTrace builds a random but scenario-legal access stream: code from
// the local program scratchpad and the cacheable PFlash banks, data in the
// non-cacheable LMU window (Scenario 1's shape), with random gaps and
// lengths. The generator is the adversary for the soundness tests: any
// legal access pattern must be bounded by the models.
func randomTrace(rng *rand.Rand, coreIdx int, n int) trace.Source {
	accs := make([]trace.Access, n)
	for i := range accs {
		var a trace.Access
		a.Gap = int64(rng.Intn(6))
		switch rng.Intn(6) {
		case 0: // scratchpad code
			a.Kind = trace.Fetch
			a.Addr = platform.PSPRAddr(coreIdx, uint32(rng.Intn(128))*32)
		case 1: // pf0 code, random line (cacheable: may hit or miss)
			a.Kind = trace.Fetch
			a.Addr = platform.PFlash0Base + uint32(coreIdx)*0x18000 + uint32(rng.Intn(4096))*32
		case 2: // pf1 code
			a.Kind = trace.Fetch
			a.Addr = platform.PFlash1Base + uint32(coreIdx)*0x18000 + uint32(rng.Intn(4096))*32
		case 3: // lmu shared read
			a.Kind = trace.Load
			a.Addr = platform.Uncached(platform.LMUBase) + uint32(rng.Intn(2048))*4
		case 4: // lmu shared write
			a.Kind = trace.Store
			a.Addr = platform.Uncached(platform.LMUBase) + uint32(rng.Intn(2048))*4
		case 5: // scratchpad data
			a.Kind = trace.Load
			a.Addr = platform.DSPRAddr(coreIdx, uint32(rng.Intn(1024))*4)
		}
		accs[i] = a
	}
	return trace.NewSlice(accs)
}

// TestRandomizedSoundness is failure injection for the models: random
// legal workloads on both cores, measured in isolation, bounded by the
// models, then co-run — the bounds must hold for every sample, not just
// the paper's benchmarks.
func TestRandomizedSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA0F1))
	for i := 0; i < 25; i++ {
		appSrc := randomTrace(rng, AnalysedCore, 200+rng.Intn(600))
		contSrc := randomTrace(rng, ContenderCore, 100+rng.Intn(1200))

		iso, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		appR := iso.Readings[AnalysedCore]
		contIso, err := sim.RunIsolation(lat, ContenderCore, sim.Task{Kind: tricore.TC16P, Src: contSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		contR := contIso.Readings[ContenderCore]

		in := core.Input{A: appR, B: []dsu.Readings{contR}, Lat: &lat, Scenario: core.Scenario1()}
		ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		ftcE, err := core.FTC(in)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}

		appSrc.Reset()
		contSrc.Reset()
		multi, err := sim.Run(lat, map[int]sim.Task{
			AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
			ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
		}, AnalysedCore, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}

		if multi.Cycles > ilpE.WCET() {
			t.Errorf("sample %d: observed %d exceeds ILP-PTAC WCET %d (iso %d)",
				i, multi.Cycles, ilpE.WCET(), appR.CCNT)
		}
		if ilpE.WCET() > ftcE.WCET() {
			t.Errorf("sample %d: ILP-PTAC %d above fTC %d", i, ilpE.WCET(), ftcE.WCET())
		}
		// Ideal with ground truth must also cover the true wait.
		ideal := core.Ideal(multi.PTAC[AnalysedCore], multi.PTAC[ContenderCore], &lat)
		if truth := multi.TotalWait(AnalysedCore); ideal < truth {
			t.Errorf("sample %d: Ideal %d below true contention %d", i, ideal, truth)
		}
	}
}

// TestRandomizedSoundnessThreeCores repeats the exercise with contenders
// on both other cores (including the 1.6E), checking the multi-contender
// extension end to end.
func TestRandomizedSoundnessThreeCores(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	for i := 0; i < 10; i++ {
		appSrc := randomTrace(rng, 1, 200+rng.Intn(400))
		c2Src := randomTrace(rng, 2, 100+rng.Intn(800))
		c0Src := randomTrace(rng, 0, 100+rng.Intn(800))

		iso, err := sim.RunIsolation(lat, 1, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		c2Iso, err := sim.RunIsolation(lat, 2, sim.Task{Kind: tricore.TC16P, Src: c2Src}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		c0Iso, err := sim.RunIsolation(lat, 0, sim.Task{Kind: tricore.TC16E, Src: c0Src}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}

		in := core.Input{
			A:        iso.Readings[1],
			B:        []dsu.Readings{c2Iso.Readings[2], c0Iso.Readings[0]},
			Lat:      &lat,
			Scenario: core.Scenario1(),
		}
		ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}

		appSrc.Reset()
		c2Src.Reset()
		c0Src.Reset()
		multi, err := sim.Run(lat, map[int]sim.Task{
			1: {Kind: tricore.TC16P, Src: appSrc},
			2: {Kind: tricore.TC16P, Src: c2Src},
			0: {Kind: tricore.TC16E, Src: c0Src},
		}, 1, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cycles > ilpE.WCET() {
			t.Errorf("sample %d: observed %d exceeds two-contender ILP WCET %d", i, multi.Cycles, ilpE.WCET())
		}
	}
}

// TestTemplateSoundnessEndToEnd: bounds computed from a resource-usage
// *contract* (core.Template, ref [10]) must hold for any actual contender
// that honours it — here a contender whose ground-truth PTACs are verified
// against the pledge after the run.
func TestTemplateSoundnessEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF00D))
	for i := 0; i < 10; i++ {
		appSrc := randomTrace(rng, AnalysedCore, 300)
		iso, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}

		contract := core.Template{
			Name: "pledged",
			MaxRequests: map[platform.TargetOp]int64{
				{Target: platform.PF0, Op: platform.Code}: 150,
				{Target: platform.PF1, Op: platform.Code}: 150,
				{Target: platform.LMU, Op: platform.Data}: 200,
			},
		}
		est, err := core.ILPPTACTemplate(core.Input{
			A: iso.Readings[AnalysedCore], Lat: &lat, Scenario: core.Scenario1(),
		}, []core.Template{contract}, core.PTACOptions{})
		if err != nil {
			t.Fatal(err)
		}

		// A contender that stays within the pledge (trace sized below the
		// per-path budgets; cacheable pf fetches can only reduce SRI
		// counts further).
		contSrc := randomTrace(rng, ContenderCore, 250)
		appSrc.Reset()
		multi, err := sim.Run(lat, map[int]sim.Task{
			AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
			ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
		}, AnalysedCore, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Verify the contender actually honoured the contract, then the
		// bound.
		for to, max := range contract.MaxRequests {
			if got := multi.PTAC[ContenderCore][to]; got > max {
				t.Fatalf("sample %d: contender broke its pledge on %s: %d > %d", i, to, got, max)
			}
		}
		if multi.Cycles > est.WCET() {
			t.Errorf("sample %d: observed %d exceeds template WCET %d", i, multi.Cycles, est.WCET())
		}
	}
}

// TestRandomizedSoundnessWithJitter injects per-transaction service-time
// variability — the "actual stall cycles are not constant" effect the
// paper notes (§3.5) — into the co-scheduled run. The models assume the
// worst-case service everywhere, so jittered (shorter-or-equal) services
// must stay within the bounds.
func TestRandomizedSoundnessWithJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1CE))
	for i := 0; i < 10; i++ {
		appSrc := randomTrace(rng, AnalysedCore, 300)
		contSrc := randomTrace(rng, ContenderCore, 600)

		iso, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		contIso, err := sim.RunIsolation(lat, ContenderCore, sim.Task{Kind: tricore.TC16P, Src: contSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		in := core.Input{A: iso.Readings[AnalysedCore], B: []dsu.Readings{contIso.Readings[ContenderCore]}, Lat: &lat, Scenario: core.Scenario1()}
		ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
		if err != nil {
			t.Fatal(err)
		}

		appSrc.Reset()
		contSrc.Reset()
		multi, err := sim.Run(lat, map[int]sim.Task{
			AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
			ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
		}, AnalysedCore, sim.Config{JitterSeed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cycles > ilpE.WCET() {
			t.Errorf("sample %d: observed-with-jitter %d exceeds ILP WCET %d", i, multi.Cycles, ilpE.WCET())
		}
	}
}

// TestRandomizedSoundnessWithPrefetch injects the flash prefetch buffers
// into the co-scheduled run: service times only shrink, so the bounds
// derived from prefetch-less worst-case latencies must still hold.
func TestRandomizedSoundnessWithPrefetch(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCAFE))
	for i := 0; i < 10; i++ {
		appSrc := randomTrace(rng, AnalysedCore, 300)
		contSrc := randomTrace(rng, ContenderCore, 600)

		iso, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: appSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		contIso, err := sim.RunIsolation(lat, ContenderCore, sim.Task{Kind: tricore.TC16P, Src: contSrc}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		in := core.Input{A: iso.Readings[AnalysedCore], B: []dsu.Readings{contIso.Readings[ContenderCore]}, Lat: &lat, Scenario: core.Scenario1()}
		ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
		if err != nil {
			t.Fatal(err)
		}

		appSrc.Reset()
		contSrc.Reset()
		multi, err := sim.Run(lat, map[int]sim.Task{
			AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
			ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
		}, AnalysedCore, sim.Config{FlashPrefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cycles > ilpE.WCET() {
			t.Errorf("sample %d: observed-with-prefetch %d exceeds ILP WCET %d", i, multi.Cycles, ilpE.WCET())
		}
	}
}
