package experiments

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/campaign"
)

// benchGrid is a 2x3x3 = 18-cell grid: large enough that pool scheduling
// dominates fixed costs, and every dimension of the expanded sweep is
// exercised.
var benchGrid = Grid{
	AppIterations: 150,
	Perturbations: []Perturbation{
		{},
		ScaleLatencies("slow10", 110, 100),
		ScaleLatencies("slow25", 125, 100),
	},
}

// poolWidths are the worker counts the campaign benchmarks compare:
// serial, and the machine's full width when it has one.
func poolWidths() []int {
	widths := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		widths = append(widths, n)
	}
	return widths
}

// BenchmarkSweep measures campaign wall-clock against pool width. Each
// iteration gets a fresh engine so the memo cache cannot carry results
// across iterations: the serial/parallel comparison is pure scheduling.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range poolWidths() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := NewRunner(campaign.New(workers))
				points, err := r.Sweep(context.Background(), lat, benchGrid)
				if err != nil {
					b.Fatal(err)
				}
				if len(points) != benchGrid.Size() {
					b.Fatalf("%d points, want %d", len(points), benchGrid.Size())
				}
			}
		})
	}
}

// BenchmarkSweepMemoized measures the steady-state cost of re-sweeping on
// a warm engine — the regime an interactive OEM exploration session runs
// in, where only the model evaluations remain.
func BenchmarkSweepMemoized(b *testing.B) {
	r := NewRunner(campaign.New(0))
	if _, err := r.Sweep(context.Background(), lat, benchGrid); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Sweep(context.Background(), lat, benchGrid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 measures the co-scheduled campaign against pool width.
func BenchmarkFigure4(b *testing.B) {
	for _, workers := range poolWidths() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := NewRunner(campaign.New(workers))
				if _, err := r.Figure4(context.Background(), lat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
