package experiments

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/platform"
	"repro/internal/tabstore"
	"repro/wcet"
)

// FuzzGridSpec checks the campaign-submission front door is total:
// arbitrary wire bytes either fail to decode, fail Compile with a typed
// *GridError, or compile to a grid that plans cleanly — never a panic,
// and never an untyped rejection. Whatever decodes also survives a
// marshal/decode round trip unchanged, so the spec echoed in a job's
// persisted metadata re-compiles to the same grid on resume.
func FuzzGridSpec(f *testing.F) {
	// Seeds: the shapes the tests and docs exercise, plus near-misses.
	f.Add(`{}`)
	f.Add(`{"scenarios":[1,2],"levels":["H-Load","M-Load","L-Load"]}`)
	f.Add(`{"models":["ftc","ilpPtac"],"appIterations":300}`)
	f.Add(`{"perturbations":[{},{"name":"slow10","scalePercent":110}]}`)
	f.Add(`{"tables":["tc27x/default"]}`)
	f.Add(`{"scenarios":[]}`)
	f.Add(`{"levels":["X-Load"]}`)
	f.Add(`{"perturbations":[{"scalePercent":110}]}`)
	f.Add(`{"appIterations":-1}`)
	f.Add(`{"models":["ftc","ftc"]}`)
	f.Add(`{"bogus":true}`)
	f.Add(`{"scenarios":[1]} trailing`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)

	store, err := tabstore.Open("")
	if err != nil {
		f.Fatal(err)
	}
	id, err := store.Put(wcet.TC27x())
	if err != nil {
		f.Fatal(err)
	}
	if err := store.SetRef("tc27x/default", id); err != nil {
		f.Fatal(err)
	}
	reg := wcet.DefaultRegistry()
	lat := platform.TC27xLatencies()

	f.Fuzz(func(t *testing.T, in string) {
		spec, err := DecodeGridSpec([]byte(in))
		if err != nil {
			return
		}
		grid, err := spec.Compile(store, reg)
		if err != nil {
			var ge *GridError
			if !errors.As(err, &ge) {
				t.Fatalf("Compile rejection is not a *GridError: %v", err)
			}
			return
		}
		// Valid specs round-trip exactly through JSON — the durability
		// contract: a job's persisted spec re-compiles to the same grid
		// on resume. (Invalid specs may not: omitempty collapses an
		// explicitly-empty dimension, but those are rejected above and
		// never persisted.)
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		again, err := DecodeGridSpec(raw)
		if err != nil {
			t.Fatalf("re-marshalled spec failed to decode: %v", err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed spec: %+v vs %+v", spec, again)
		}
		plan, err := grid.Plan(lat)
		if err != nil {
			t.Fatalf("compiled grid failed to plan: %v", err)
		}
		if plan.Size() != grid.Size() || plan.Size() <= 0 {
			t.Fatalf("plan has %d cells, grid reports %d", plan.Size(), grid.Size())
		}
	})
}
