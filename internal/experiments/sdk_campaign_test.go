package experiments

import (
	"context"
	"testing"

	"repro/wcet"
)

// TestSweepCustomModelZeroEdits is the campaign half of the SDK's
// acceptance criterion: a toy ContentionModel registered into a registry
// and named in the grid runs in every sweep cell — no change to this
// package, no new switch arm.
func TestSweepCustomModelZeroEdits(t *testing.T) {
	reg := wcet.NewDefaultRegistry()
	toy := wcet.NewModel("toy", func(_ context.Context, in wcet.Input) (wcet.Estimate, error) {
		return wcet.Estimate{Model: "toy", IsolationCycles: in.Analysed.CCNT, ContentionCycles: 7}, nil
	})
	if err := reg.Register(toy); err != nil {
		t.Fatal(err)
	}

	points, err := NewRunner(nil).Sweep(context.Background(), lat, Grid{
		AppIterations: 20,
		Models:        []string{"toy", "ftc"},
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	for _, p := range points {
		if len(p.Estimates) != 2 || p.Estimates[0].Name != "toy" || p.Estimates[1].Name != "ftc" {
			t.Fatalf("cell sc%d %s: estimates %+v, want [toy ftc]", p.Scenario, p.Level, p.Estimates)
		}
		if p.Estimates[0].ContentionCycles != 7 {
			t.Errorf("cell sc%d %s: toy contention %d, want 7", p.Scenario, p.Level, p.Estimates[0].ContentionCycles)
		}
		if p.Estimates[0].IsolationCycles != p.IsolationCycles {
			t.Errorf("cell sc%d %s: toy isolation %d != cell isolation %d",
				p.Scenario, p.Level, p.Estimates[0].IsolationCycles, p.IsolationCycles)
		}
		// The grid did not select ilpPtac, so the legacy mirror stays zero.
		if p.ILP.Model != "" {
			t.Errorf("cell sc%d %s: ILP mirror populated without ilpPtac in the grid: %+v", p.Scenario, p.Level, p.ILP)
		}
		if p.FTC.Model != "fTC" {
			t.Errorf("cell sc%d %s: FTC mirror missing: %+v", p.Scenario, p.Level, p.FTC)
		}
		// Judge needs both default bounds; with ilpPtac deselected it must
		// say so, not classify a zero estimate as fitting.
		if v := p.Judge(1); v != Unknown {
			t.Errorf("cell sc%d %s: Judge on a partial grid = %v, want Unknown", p.Scenario, p.Level, v)
		}
	}
}
