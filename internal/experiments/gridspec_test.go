package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/tabstore"
	"repro/internal/workload"
	"repro/wcet"
)

func TestGridValidateDefaultsPass(t *testing.T) {
	for _, g := range []Grid{
		{},
		{AppIterations: 100},
		{Scenarios: []workload.Scenario{workload.Scenario2}, Levels: []workload.Level{workload.LLoad}},
		{Models: []string{"ftc"}},
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", g, err)
		}
	}
}

func TestGridValidateTypedRejections(t *testing.T) {
	store, _ := tabstore.Open("")
	if id, err := store.Put(lat); err != nil {
		t.Fatal(err)
	} else if err := store.SetRef("a", id); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    Grid
		want error
	}{
		{"empty scenarios", Grid{Scenarios: []workload.Scenario{}}, ErrEmptyDimension},
		{"empty levels", Grid{Levels: []workload.Level{}}, ErrEmptyDimension},
		{"empty perturbations", Grid{Perturbations: []Perturbation{}}, ErrEmptyDimension},
		{"empty models", Grid{Models: []string{}}, ErrEmptyDimension},
		{"bad scenario", Grid{Scenarios: []workload.Scenario{9}}, ErrBadValue},
		{"bad level", Grid{Levels: []workload.Level{workload.Level(9)}}, ErrBadValue},
		{"negative iterations", Grid{AppIterations: -1}, ErrBadValue},
		{"outsized iterations", Grid{AppIterations: maxAppIterations + 1}, ErrBadValue},
		{"duplicate perturbation", Grid{Perturbations: []Perturbation{
			ScaleLatencies("x", 110, 100), ScaleLatencies("x", 120, 100)}}, ErrDuplicate},
		{"duplicate model via alias", Grid{Models: []string{"ftc", "fTC"}}, ErrDuplicate},
		{"duplicate table", Grid{Tables: []string{"a", "a"}, Store: store}, ErrDuplicate},
		{"tables without store", Grid{Tables: []string{"x"}}, ErrNoStore},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want %v", tc.name, tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, not errors.Is %v", tc.name, err, tc.want)
		}
		var ge *GridError
		if !errors.As(err, &ge) {
			t.Errorf("%s: error %T is not a *GridError", tc.name, err)
		}
	}

	// Unknown model and unknown table ref carry the underlying resolver
	// error inside the GridError.
	if err := (Grid{Models: []string{"nope"}}).Validate(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown model: %v", err)
	}
	if err := (Grid{Tables: []string{"nope"}, Store: store}).Validate(); err == nil || !strings.Contains(err.Error(), "unknown table ref") {
		t.Errorf("unknown table ref: %v", err)
	}
}

// TestSweepRejectsBeforeEngine: an invalid grid fails Sweep with the
// typed error and zero cells executed.
func TestSweepRejectsBeforeEngine(t *testing.T) {
	eng := campaign.New(2)
	r := NewRunner(eng)
	before := eng.Stats().SimRuns
	_, err := r.Sweep(context.Background(), lat, Grid{Scenarios: []workload.Scenario{}})
	if !errors.Is(err, ErrEmptyDimension) {
		t.Fatalf("Sweep error = %v, want ErrEmptyDimension", err)
	}
	if after := eng.Stats().SimRuns; after != before {
		t.Fatalf("invalid grid reached the engine: %d sim runs", after-before)
	}
}

func TestDecodeGridSpecStrict(t *testing.T) {
	if _, err := DecodeGridSpec([]byte(`{"scenarios": [1], "bogus": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeGridSpec([]byte(`{"scenarios": [1]} {"scenarios": [2]}`)); err == nil {
		t.Error("trailing JSON value accepted")
	}
	s, err := DecodeGridSpec([]byte(`{"scenarios": [2], "levels": ["L-Load"], "appIterations": 50}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scenarios) != 1 || s.Scenarios[0] != 2 || s.AppIterations != 50 {
		t.Fatalf("decoded spec %+v", s)
	}
}

func TestGridSpecCompile(t *testing.T) {
	store, _ := tabstore.Open("")
	reg := wcet.DefaultRegistry()

	// Omitted dimensions compile to the defaulting zero Grid.
	g, err := GridSpec{}.Compile(store, reg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Scenarios != nil || g.Levels != nil || g.Models != nil {
		t.Fatalf("empty spec compiled to non-nil dimensions: %+v", g)
	}
	if g.Size() != (Grid{}).withDefaults().Size() {
		t.Fatalf("empty spec grid size %d", g.Size())
	}

	g, err = GridSpec{
		Scenarios:     []int{2},
		Levels:        []string{"H-Load", "L-Load"},
		Perturbations: []PerturbationSpec{{}, {Name: "respin+10", ScalePercent: 110}},
		AppIterations: 50,
		Models:        []string{"ftc"},
	}.Compile(store, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Scenarios) != 1 || g.Scenarios[0] != workload.Scenario2 {
		t.Fatalf("scenarios %v", g.Scenarios)
	}
	if len(g.Levels) != 2 || g.Levels[0] != workload.HLoad || g.Levels[1] != workload.LLoad {
		t.Fatalf("levels %v", g.Levels)
	}
	if len(g.Perturbations) != 2 || g.Perturbations[0].Name != "" || g.Perturbations[1].Name != "respin+10" {
		t.Fatalf("perturbations %+v", g.Perturbations)
	}
	if g.Size() != 1*2*2 {
		t.Fatalf("size %d, want 4", g.Size())
	}

	for name, spec := range map[string]GridSpec{
		"empty scenarios":  {Scenarios: []int{}},
		"bad scenario":     {Scenarios: []int{3}},
		"bad level":        {Levels: []string{"X-Load"}},
		"bad scale":        {Perturbations: []PerturbationSpec{{Name: "x", ScalePercent: -5}}},
		"unnamed scale":    {Perturbations: []PerturbationSpec{{ScalePercent: 110}}},
		"unknown model":    {Models: []string{"nope"}},
		"unknown table":    {Tables: []string{"nope"}},
		"huge iterations":  {AppIterations: maxAppIterations + 1},
		"duplicate models": {Models: []string{"ilpPtac", "ilp-ptac"}},
	} {
		if _, err := spec.Compile(store, reg); err == nil {
			t.Errorf("%s: compiled, want error", name)
		} else {
			var ge *GridError
			if !errors.As(err, &ge) {
				t.Errorf("%s: error %T is not a *GridError", name, err)
			}
		}
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, lv := range workload.Levels {
		got, err := ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseLevel("H-load"); err == nil {
		t.Error("case-mangled level accepted")
	}
}

// TestArtifactEncodingDeterministic pins the byte-identity property the
// campaign-job resume contract rests on: encoding the same points twice
// is identical, and a point that went through a JSON round trip (as
// checkpointed cells do) re-encodes to the same bytes as a fresh one.
func TestArtifactEncodingDeterministic(t *testing.T) {
	pts, err := Sweep(lat, 50)
	if err != nil {
		t.Fatal(err)
	}
	wire := WirePoints(pts)
	a, err := EncodeArtifact(wire)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeArtifact(WirePoints(pts))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same points encoded differently")
	}

	// Round trip every point through JSON, as the checkpoint log does.
	var tripped []PointJSON
	for _, p := range wire {
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back PointJSON
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		tripped = append(tripped, back)
	}
	c, err := EncodeArtifact(tripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("JSON-round-tripped points encoded differently")
	}

	if len(a) == 0 || a[len(a)-1] != '\n' {
		t.Fatal("artifact must end in a newline")
	}
}
