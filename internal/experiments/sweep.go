package experiments

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/tabstore"
	"repro/internal/workload"
	"repro/wcet"
)

// SweepPoint is one cell of a design-space exploration: a deployment
// scenario paired with a candidate co-runner load on a (possibly
// perturbed) platform characterisation, and the WCET verdicts each
// selected model gives for it.
type SweepPoint struct {
	Scenario workload.Scenario
	Level    workload.Level
	// Table names the stored latency-table version the cell was evaluated
	// on (a Grid.Tables ref); empty when the grid swept the base table
	// argument.
	Table string
	// Perturbation names the synthetic latency-table variant the cell was
	// evaluated on; empty for the unperturbed table.
	Perturbation string

	IsolationCycles int64

	// Estimates holds every selected model's bound, in grid model order
	// (canonical names).
	Estimates []wcet.ModelEstimate

	// ILP and FTC mirror the corresponding Estimates entries when the
	// grid selects those models (the default grid does); they are zero
	// otherwise. Kept for the paper's original two-model exploration
	// workflow and its Judge verdicts.
	ILP core.Estimate
	FTC core.Estimate
}

// Verdict classifies a point against an OEM time budget.
type Verdict int

const (
	// RejectedByBoth: even the tight bound misses the budget.
	RejectedByBoth Verdict = iota
	// NeedsContenderInfo: only the partially time-composable ILP bound
	// fits; the configuration is safe for the characterised contender
	// set but not against arbitrary co-runners.
	NeedsContenderInfo
	// FullyComposable: even the fTC bound fits; the configuration is
	// safe against any co-runner.
	FullyComposable
	// Unknown: the grid did not select both default models, so the
	// two-bound classification cannot be made.
	Unknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case RejectedByBoth:
		return "over budget"
	case NeedsContenderInfo:
		return "fits with contender knowledge"
	case FullyComposable:
		return "fits fully time-composable"
	case Unknown:
		return "unknown (grid lacks ftc/ilpPtac)"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Judge classifies the point against a cycle budget. It needs both
// default models' bounds; on a grid that deselected ftc or ilpPtac it
// returns Unknown rather than misreading a zero estimate as fitting.
func (p SweepPoint) Judge(budget int64) Verdict {
	if p.FTC.Model == "" || p.ILP.Model == "" {
		return Unknown
	}
	switch {
	case p.FTC.WCET() <= budget:
		return FullyComposable
	case p.ILP.WCET() <= budget:
		return NeedsContenderInfo
	default:
		return RejectedByBoth
	}
}

// Perturbation is one latency-table variant of a sweep grid: a named,
// deterministic transformation of the base characterisation. Perturbed
// sweeps answer the OEM question "does the verdict survive a platform
// respin / a pessimistic re-characterisation?" without touching silicon.
type Perturbation struct {
	// Name labels the variant in SweepPoint.Perturbation; the base
	// (identity) perturbation has the empty name.
	Name string
	// Apply maps the base table to the variant. A nil Apply is the
	// identity.
	Apply func(platform.LatencyTable) platform.LatencyTable
}

// apply resolves the nil-is-identity convention.
func (p Perturbation) apply(lat platform.LatencyTable) platform.LatencyTable {
	if p.Apply == nil {
		return lat
	}
	return p.Apply(lat)
}

// ScaleLatencies returns a perturbation that scales every legal latency
// figure by num/den (rounding down, floored at 1 cycle), preserving the
// table invariants Min <= Max and Stall <= Max.
func ScaleLatencies(name string, num, den int64) Perturbation {
	return Perturbation{Name: name, Apply: func(lat platform.LatencyTable) platform.LatencyTable {
		scale := func(v int64) int64 {
			if v = v * num / den; v < 1 {
				return 1
			}
			return v
		}
		for _, to := range platform.AccessPairs() {
			l := lat[to.Target][to.Op]
			l.Max, l.Min, l.Stall = scale(l.Max), scale(l.Min), scale(l.Stall)
			if l.Min > l.Max {
				l.Min = l.Max
			}
			if l.Stall > l.Max {
				l.Stall = l.Max
			}
			lat[to.Target][to.Op] = l
		}
		return lat
	}}
}

// Grid configures a multi-dimensional design-space sweep: every
// combination of deployment scenario, contender load and latency-table
// perturbation becomes one engine cell, and each cell evaluates the
// selected contention models. Zero-valued dimensions default to the
// paper's evaluation grid (both scenarios, all three loads, the
// unperturbed table, AppIterations iterations, the ILP-PTAC + fTC pair).
type Grid struct {
	Scenarios     []workload.Scenario
	Levels        []workload.Level
	Perturbations []Perturbation
	AppIterations int
	// Models selects which registered contention models every cell
	// evaluates (canonical names or aliases); empty selects
	// ["ilpPtac", "ftc"]. Any model in Registry is valid — a newly
	// registered model is sweepable with no change to this package.
	Models []string
	// Registry resolves Models; nil selects wcet.DefaultRegistry.
	Registry *wcet.Registry
	// Tables selects stored latency-table versions (refs or IDs resolved
	// through Store) as an additional, outermost grid dimension: the OEM
	// question "does the verdict survive the re-measured
	// characterisation?" asked against real calibration artifacts rather
	// than synthetic perturbations. Perturbations still apply, on top of
	// each selected table. Empty sweeps only the base table passed to
	// Sweep.
	Tables []string
	// Store resolves Tables; required when Tables is non-empty.
	Store *tabstore.Store
}

// withDefaults fills unset dimensions with the paper's grid.
func (g Grid) withDefaults() Grid {
	if len(g.Scenarios) == 0 {
		g.Scenarios = []workload.Scenario{workload.Scenario1, workload.Scenario2}
	}
	if len(g.Levels) == 0 {
		g.Levels = workload.Levels
	}
	if len(g.Perturbations) == 0 {
		g.Perturbations = []Perturbation{{}}
	}
	if g.AppIterations <= 0 {
		g.AppIterations = AppIterations
	}
	if len(g.Models) == 0 {
		g.Models = []string{"ilpPtac", "ftc"}
	}
	return g
}

// Size is the number of cells in the grid.
func (g Grid) Size() int {
	g = g.withDefaults()
	tables := len(g.Tables)
	if tables == 0 {
		tables = 1
	}
	return tables * len(g.Scenarios) * len(g.Levels) * len(g.Perturbations)
}

// Sweep explores every (deployment scenario, contender load) combination
// for the control-loop application on the default runner — the
// pre-integration exploration workflow §4.2 advertises ("a powerful and
// reactive method for OEM and SWPs to explore and evaluate different
// scheduling allocations and deployment scenarios ... before actual
// integration"). All numbers come from isolation measurements only;
// nothing is co-scheduled.
func Sweep(lat platform.LatencyTable, appIterations int) ([]SweepPoint, error) {
	// Grid treats a non-positive iteration count as "use the default";
	// this wrapper keeps its historical contract of rejecting it instead.
	if appIterations <= 0 {
		return nil, fmt.Errorf("experiments: app iterations must be positive, got %d", appIterations)
	}
	return defaultRunner.Sweep(context.Background(), lat, Grid{AppIterations: appIterations})
}

// Cell identifies one cell of a planned grid: its coordinates along every
// grid dimension, plus its index in stable grid order.
type Cell struct {
	Index        int
	Table        string
	Perturbation string
	Scenario     workload.Scenario
	Level        workload.Level
}

// plannedCell pairs a cell's coordinates with its fully resolved (stored
// table selected, perturbation applied) latency characterisation.
type plannedCell struct {
	cell Cell
	lat  platform.LatencyTable
}

// SweepPlan is a validated grid lowered to an executable cell list: the
// stored-table dimension resolved, perturbations applied, and every cell
// enumerated in stable grid order (stored tables outermost, then
// perturbations, scenarios, levels innermost). The plan is what both the
// in-process Sweep and the server-side campaign-job subsystem execute —
// one implementation, so their results are identical cell for cell.
type SweepPlan struct {
	grid  Grid
	cells []plannedCell
}

// Plan validates the grid against the base characterisation and
// enumerates its cells. A dangling table ref or contradictory dimension
// fails here, before any simulation runs (see Grid.Validate).
func (g Grid) Plan(lat platform.LatencyTable) (*SweepPlan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.withDefaults()

	type tableVariant struct {
		name string
		lat  platform.LatencyTable
	}
	variants := []tableVariant{{name: "", lat: lat}}
	if len(g.Tables) > 0 {
		variants = variants[:0]
		for _, ref := range g.Tables {
			resolved, _, err := g.Store.Resolve(ref)
			if err != nil {
				// Validate resolved this ref moments ago; losing it here
				// means the store mutated underneath the plan.
				return nil, gridErr("tables", fmt.Sprintf("%q", ref), err)
			}
			variants = append(variants, tableVariant{name: ref, lat: resolved})
		}
	}

	p := &SweepPlan{grid: g, cells: make([]plannedCell, 0, g.Size())}
	for _, tv := range variants {
		for _, pert := range g.Perturbations {
			lat := pert.apply(tv.lat)
			for _, sc := range g.Scenarios {
				for _, lv := range g.Levels {
					p.cells = append(p.cells, plannedCell{
						cell: Cell{
							Index:        len(p.cells),
							Table:        tv.name,
							Perturbation: pert.Name,
							Scenario:     sc,
							Level:        lv,
						},
						lat: lat,
					})
				}
			}
		}
	}
	return p, nil
}

// Size is the number of cells in the plan.
func (p *SweepPlan) Size() int { return len(p.cells) }

// Cell returns the coordinates of cell i.
func (p *SweepPlan) Cell(i int) Cell { return p.cells[i].cell }

// RunCell evaluates one planned cell. Cells are independent and may run
// concurrently; cells of the same (table, perturbation, scenario) share
// the application's isolation baseline through the engine's memo cache.
func (r Runner) RunCell(ctx context.Context, p *SweepPlan, i int) (SweepPoint, error) {
	pc := p.cells[i]
	pt, err := r.sweepCell(ctx, pc.lat, pc.cell.Scenario, pc.cell.Level, p.grid)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("experiments: sweep table %q pert %q scenario %d %s: %w",
			pc.cell.Table, pc.cell.Perturbation, pc.cell.Scenario, pc.cell.Level, err)
	}
	pt.Table = pc.cell.Table
	pt.Perturbation = pc.cell.Perturbation
	return pt, nil
}

// Sweep runs the configured grid: one engine cell per (table,
// perturbation, scenario, level) combination, in stable grid order. It
// plans the grid (validating it before any simulation runs) and drains
// the cells through the engine pool.
func (r Runner) Sweep(ctx context.Context, lat platform.LatencyTable, grid Grid) ([]SweepPoint, error) {
	plan, err := grid.Plan(lat)
	if err != nil {
		return nil, err
	}
	jobs := make([]campaign.Job[SweepPoint], plan.Size())
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (SweepPoint, error) {
			return r.RunCell(ctx, plan, i)
		}
	}
	return campaign.Collect(ctx, r.eng, jobs)
}

// sweepCell evaluates one grid cell from isolation measurements only: the
// grid's model set, run through the SDK facade on the cell's (possibly
// perturbed) platform characterisation.
func (r Runner) sweepCell(ctx context.Context, lat platform.LatencyTable, sc workload.Scenario, lv workload.Level, grid Grid) (SweepPoint, error) {
	appR, err := r.appIsolation(ctx, lat, sc, grid.AppIterations)
	if err != nil {
		return SweepPoint{}, err
	}
	contR, err := r.contenderReadings(ctx, lat, sc, lv, contenderBursts(lat, lv, appR))
	if err != nil {
		return SweepPoint{}, err
	}
	an, err := analyzerFor(lat, grid.Registry)
	if err != nil {
		return SweepPoint{}, err
	}
	res, err := an.Analyze(ctx, wcet.Request{
		Analysed:   appR,
		Contenders: []dsu.Readings{contR},
		Scenario:   coreScenario(sc),
		Models:     grid.Models,
	})
	if err != nil {
		return SweepPoint{}, err
	}
	p := SweepPoint{
		Scenario:        sc,
		Level:           lv,
		IsolationCycles: appR.CCNT,
		Estimates:       res.Estimates,
	}
	if e, ok := res.Estimate("ilpPtac"); ok {
		p.ILP = e
	}
	if e, ok := res.Estimate("ftc"); ok {
		p.FTC = e
	}
	return p, nil
}
