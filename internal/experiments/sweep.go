package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tricore"
	"repro/internal/workload"
)

// SweepPoint is one cell of a design-space exploration: a deployment
// scenario paired with a candidate co-runner load, and the WCET verdicts
// each model gives for it.
type SweepPoint struct {
	Scenario workload.Scenario
	Level    workload.Level

	IsolationCycles int64
	ILP             core.Estimate
	FTC             core.Estimate
}

// Verdict classifies a point against an OEM time budget.
type Verdict int

const (
	// RejectedByBoth: even the tight bound misses the budget.
	RejectedByBoth Verdict = iota
	// NeedsContenderInfo: only the partially time-composable ILP bound
	// fits; the configuration is safe for the characterised contender
	// set but not against arbitrary co-runners.
	NeedsContenderInfo
	// FullyComposable: even the fTC bound fits; the configuration is
	// safe against any co-runner.
	FullyComposable
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case RejectedByBoth:
		return "over budget"
	case NeedsContenderInfo:
		return "fits with contender knowledge"
	case FullyComposable:
		return "fits fully time-composable"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Judge classifies the point against a cycle budget.
func (p SweepPoint) Judge(budget int64) Verdict {
	switch {
	case p.FTC.WCET() <= budget:
		return FullyComposable
	case p.ILP.WCET() <= budget:
		return NeedsContenderInfo
	default:
		return RejectedByBoth
	}
}

// Sweep explores every (deployment scenario, contender load) combination
// for the control-loop application — the pre-integration exploration
// workflow §4.2 advertises ("a powerful and reactive method for OEM and
// SWPs to explore and evaluate different scheduling allocations and
// deployment scenarios ... before actual integration"). All numbers come
// from isolation measurements only; nothing is co-scheduled.
func Sweep(lat platform.LatencyTable, appIterations int) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		app, err := workload.ControlLoop(workload.AppConfig{Scenario: sc, Core: AnalysedCore, Iterations: appIterations})
		if err != nil {
			return nil, err
		}
		iso, err := sim.RunIsolation(lat, AnalysedCore, sim.Task{Kind: tricore.TC16P, Src: app}, sim.Config{})
		if err != nil {
			return nil, err
		}
		appR := iso.Readings[AnalysedCore]

		for _, lv := range workload.Levels {
			_, contR, err := sizeContender(lat, sc, lv, appR)
			if err != nil {
				return nil, err
			}
			in := core.Input{A: appR, B: []dsu.Readings{contR}, Lat: &lat, Scenario: coreScenario(sc)}
			ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
			if err != nil {
				return nil, err
			}
			ftcE, err := core.FTC(in)
			if err != nil {
				return nil, err
			}
			points = append(points, SweepPoint{
				Scenario:        sc,
				Level:           lv,
				IsolationCycles: appR.CCNT,
				ILP:             ilpE,
				FTC:             ftcE,
			})
		}
	}
	return points, nil
}
