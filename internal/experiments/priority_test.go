package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
)

// lmuBurst builds n back-to-back non-cacheable LMU loads.
func lmuBurst(n int) trace.Source {
	accs := make([]trace.Access, n)
	for i := range accs {
		accs[i] = trace.Access{Kind: trace.Load, Addr: platform.Uncached(platform.LMUBase) + uint32(i%512)*4}
	}
	return trace.NewSlice(accs)
}

// TestPriorityClassesVoidModelAssumption makes the paper's §2 system
// assumption executable: the contention models are derived for contenders
// "mapped to the same SRI priority class". With round-robin (same class)
// the ILP bound holds; demote the analysed core below two saturating
// contenders and its requests starve behind the entire high-class stream,
// so the same observed system violates the bound — the assumption is
// load-bearing, not cosmetic.
func TestPriorityClassesVoidModelAssumption(t *testing.T) {
	app := func() sim.Task { return sim.Task{Kind: tricore.TC16P, Src: lmuBurst(50)} }
	cont := func() sim.Task { return sim.Task{Kind: tricore.TC16P, Src: lmuBurst(2000)} }
	contE := func() sim.Task { return sim.Task{Kind: tricore.TC16E, Src: lmuBurst(2000)} }

	iso, err := sim.RunIsolation(lat, 1, app(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c2Iso, err := sim.RunIsolation(lat, 2, cont(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c0Iso, err := sim.RunIsolation(lat, 0, contE(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	in := core.Input{
		A:        iso.Readings[1],
		B:        []dsu.Readings{c2Iso.Readings[2], c0Iso.Readings[0]},
		Lat:      &lat,
		Scenario: core.GenericScenario(platform.Scenario1()),
	}
	ilpE, err := core.ILPPTAC(in, core.PTACOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Same class (the model's assumption): the bound must hold.
	same, err := sim.Run(lat, map[int]sim.Task{0: contE(), 1: app(), 2: cont()}, 1, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if same.Cycles > ilpE.WCET() {
		t.Fatalf("same-class observed %d exceeds ILP WCET %d — model broken", same.Cycles, ilpE.WCET())
	}

	// Analysed core demoted below the contenders: starvation.
	demoted, err := sim.Run(lat, map[int]sim.Task{0: contE(), 1: app(), 2: cont()}, 1, sim.Config{
		SRIPriorities: map[int]int{0: 1, 1: 0, 2: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if demoted.Cycles <= ilpE.WCET() {
		t.Errorf("demoted run %d still within ILP WCET %d; expected the same-class assumption to be load-bearing",
			demoted.Cycles, ilpE.WCET())
	}
	if demoted.Cycles <= same.Cycles {
		t.Errorf("demotion did not increase interference: %d vs %d", demoted.Cycles, same.Cycles)
	}
}

// TestPriorityPromotionOnlyHelps: promoting the analysed core above its
// contenders can only reduce its contention, so the same-class model
// bounds remain (conservatively) valid.
func TestPriorityPromotionOnlyHelps(t *testing.T) {
	app := func() sim.Task { return sim.Task{Kind: tricore.TC16P, Src: lmuBurst(200)} }
	cont := func() sim.Task { return sim.Task{Kind: tricore.TC16P, Src: lmuBurst(2000)} }

	same, err := sim.Run(lat, map[int]sim.Task{1: app(), 2: cont()}, 1, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	promoted, err := sim.Run(lat, map[int]sim.Task{1: app(), 2: cont()}, 1, sim.Config{
		SRIPriorities: map[int]int{1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Cycles > same.Cycles {
		t.Errorf("promotion increased execution time: %d vs %d", promoted.Cycles, same.Cycles)
	}
	if promoted.TotalWait(1) > same.TotalWait(1) {
		t.Errorf("promotion increased wait: %d vs %d", promoted.TotalWait(1), same.TotalWait(1))
	}
}
