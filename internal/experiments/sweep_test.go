package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/tabstore"
)

func TestSweepCoversTheDesignSpace(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points, want 6", len(points))
	}
	seen := map[[2]int]bool{}
	for _, p := range points {
		seen[[2]int{int(p.Scenario), int(p.Level)}] = true
		if p.ILP.WCET() <= p.IsolationCycles {
			t.Errorf("Sc%d %s: ILP WCET %d not above isolation %d", p.Scenario, p.Level, p.ILP.WCET(), p.IsolationCycles)
		}
		if p.FTC.WCET() < p.ILP.WCET() {
			t.Errorf("Sc%d %s: fTC below ILP", p.Scenario, p.Level)
		}
	}
	if len(seen) != 6 {
		t.Errorf("duplicate sweep points: %v", seen)
	}
}

func TestSweepVerdicts(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// A budget below the ILP bound rejects; between the bounds it
		// needs contender info; above fTC it is fully composable.
		if v := p.Judge(p.ILP.WCET() - 1); v != RejectedByBoth {
			t.Errorf("verdict below ILP = %v", v)
		}
		if p.FTC.WCET() > p.ILP.WCET() {
			if v := p.Judge(p.FTC.WCET() - 1); v != NeedsContenderInfo {
				t.Errorf("verdict between bounds = %v", v)
			}
		}
		if v := p.Judge(p.FTC.WCET()); v != FullyComposable {
			t.Errorf("verdict at fTC = %v", v)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if RejectedByBoth.String() == "" || NeedsContenderInfo.String() == "" || FullyComposable.String() == "" {
		t.Error("empty verdict strings")
	}
	if Verdict(9).String() != "Verdict(9)" {
		t.Error("fallback verdict string")
	}
}

// TestSweepAcrossStoredTableVersions drives the grid's stored-table
// dimension: two registered characterisations (the shipped TC27x and a
// "respin" with scaled latencies) swept side by side, each cell labelled
// with the ref it ran under and evaluated under that table's figures.
func TestSweepAcrossStoredTableVersions(t *testing.T) {
	store, err := tabstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	baseID, err := store.Put(lat)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetRef("tc27x/default", baseID); err != nil {
		t.Fatal(err)
	}
	respin := ScaleLatencies("", 150, 100).apply(lat)
	respinID, err := store.Put(respin)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetRef("tc27x/respin", respinID); err != nil {
		t.Fatal(err)
	}

	grid := Grid{
		AppIterations: 100,
		Tables:        []string{"tc27x/default", "tc27x/respin"},
		Store:         store,
	}
	if grid.Size() != 12 {
		t.Fatalf("grid size %d, want 12", grid.Size())
	}
	points, err := defaultRunner.Sweep(context.Background(), lat, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("%d points, want 12", len(points))
	}
	byTable := map[string][]SweepPoint{}
	for _, p := range points {
		byTable[p.Table] = append(byTable[p.Table], p)
	}
	if len(byTable["tc27x/default"]) != 6 || len(byTable["tc27x/respin"]) != 6 {
		t.Fatalf("table labels: %v", byTable)
	}
	// The default-table half must agree with the classic base sweep; the
	// respin half must differ (the verdicts are characterisation-bound).
	classic, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range byTable["tc27x/default"] {
		if p.FTC.WCET() != classic[i].FTC.WCET() {
			t.Fatalf("cell %d: stored default table diverges from base sweep: %d vs %d", i, p.FTC.WCET(), classic[i].FTC.WCET())
		}
	}
	differs := false
	for i, p := range byTable["tc27x/respin"] {
		if p.FTC.WCET() != classic[i].FTC.WCET() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("respin table produced identical verdicts everywhere")
	}
}

func TestSweepTableErrors(t *testing.T) {
	if _, err := defaultRunner.Sweep(context.Background(), lat, Grid{Tables: []string{"x"}}); err == nil || !strings.Contains(err.Error(), "Grid.Store is nil") {
		t.Fatalf("tables without store: %v", err)
	}
	store, _ := tabstore.Open("")
	if _, err := defaultRunner.Sweep(context.Background(), lat, Grid{Tables: []string{"nope"}, Store: store}); err == nil || !strings.Contains(err.Error(), "unknown table ref") {
		t.Fatalf("dangling ref: %v", err)
	}
}

// The sweep must show the paper's qualitative DSE payoff somewhere in the
// space: a budget that fTC rejects but ILP-PTAC certifies.
func TestSweepExposesComposabilityGap(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range points {
		mid := (p.ILP.WCET() + p.FTC.WCET()) / 2
		if p.Judge(mid) == NeedsContenderInfo {
			found = true
		}
	}
	if !found {
		t.Error("no point where contender knowledge changes the verdict")
	}
}
