package experiments

import (
	"testing"
)

func TestSweepCoversTheDesignSpace(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points, want 6", len(points))
	}
	seen := map[[2]int]bool{}
	for _, p := range points {
		seen[[2]int{int(p.Scenario), int(p.Level)}] = true
		if p.ILP.WCET() <= p.IsolationCycles {
			t.Errorf("Sc%d %s: ILP WCET %d not above isolation %d", p.Scenario, p.Level, p.ILP.WCET(), p.IsolationCycles)
		}
		if p.FTC.WCET() < p.ILP.WCET() {
			t.Errorf("Sc%d %s: fTC below ILP", p.Scenario, p.Level)
		}
	}
	if len(seen) != 6 {
		t.Errorf("duplicate sweep points: %v", seen)
	}
}

func TestSweepVerdicts(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// A budget below the ILP bound rejects; between the bounds it
		// needs contender info; above fTC it is fully composable.
		if v := p.Judge(p.ILP.WCET() - 1); v != RejectedByBoth {
			t.Errorf("verdict below ILP = %v", v)
		}
		if p.FTC.WCET() > p.ILP.WCET() {
			if v := p.Judge(p.FTC.WCET() - 1); v != NeedsContenderInfo {
				t.Errorf("verdict between bounds = %v", v)
			}
		}
		if v := p.Judge(p.FTC.WCET()); v != FullyComposable {
			t.Errorf("verdict at fTC = %v", v)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	if RejectedByBoth.String() == "" || NeedsContenderInfo.String() == "" || FullyComposable.String() == "" {
		t.Error("empty verdict strings")
	}
	if Verdict(9).String() != "Verdict(9)" {
		t.Error("fallback verdict string")
	}
}

// The sweep must show the paper's qualitative DSE payoff somewhere in the
// space: a budget that fTC rejects but ILP-PTAC certifies.
func TestSweepExposesComposabilityGap(t *testing.T) {
	points, err := Sweep(lat, 100)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range points {
		mid := (p.ILP.WCET() + p.FTC.WCET()) / 2
		if p.Judge(mid) == NeedsContenderInfo {
			found = true
		}
	}
	if !found {
		t.Error("no point where contender knowledge changes the verdict")
	}
}
