// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated TC27x: the latency/stall calibration of
// Table 2, the counter readings of Table 6, and the model-vs-isolation
// predictions of Figure 4. The command-line tools, the benchmark harness
// and the integration tests all call through here so that the numbers
// reported anywhere come from one implementation.
//
// Every artefact is a campaign of independent measurement cells, so all of
// them run on the internal/campaign engine: cells fan out across a worker
// pool and isolation baselines (the application per scenario, contenders
// per sizing, calibration microbenchmarks per path) are memoized across
// cells and artefacts. The top-level functions (CalibrateTable2, Figure4,
// Sweep, ...) keep their historical serial signatures and delegate to a
// process-wide default Runner; callers that want their own worker count,
// cancellation or cache lifetime construct a Runner explicitly.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tricore"
	"repro/internal/workload"
	"repro/wcet"
)

// AnalysedCore and ContenderCore are the paper's placement: "Core 1 and
// Core 2 (TC-1.6P) host the application under analysis and a contender
// respectively".
const (
	AnalysedCore  = 1
	ContenderCore = 2
)

// Runner executes evaluation campaigns on a campaign engine. The zero
// value is not usable; use NewRunner.
type Runner struct {
	eng *campaign.Engine
}

// NewRunner returns a Runner backed by eng; a nil eng gets a fresh engine
// sized to the hardware (campaign.New(0)).
func NewRunner(eng *campaign.Engine) Runner {
	if eng == nil {
		eng = campaign.New(0)
	}
	return Runner{eng: eng}
}

// Engine exposes the underlying campaign engine (for stats reporting).
func (r Runner) Engine() *campaign.Engine { return r.eng }

// defaultRunner backs the engine-less top-level wrappers. One process-wide
// engine means repeated artefact regenerations (tests, benchmarks, the
// experiments command) share isolation baselines instead of recomputing
// them.
var defaultRunner = NewRunner(nil)

// Table2Row is one measured row of Table 2: per-access end-to-end latency
// (maximum and minimum) and minimum stall cycles for one SRI target,
// measured with calibration microbenchmarks in isolation, separately for
// code and data requests.
type Table2Row struct {
	Target platform.Target
	// LCo/LDa are measured worst-case end-to-end latencies per access
	// (prefetch buffers disabled, as after a discontinuity); -1 where
	// the access path does not exist (code on dfl).
	LCo, LDa int64
	// LMinCo/LMinDa are measured best-case latencies per access
	// (sequential stream with the flash prefetch buffers active — the
	// bracketed lmin row of Table 2); -1 where absent.
	LMinCo, LMinDa int64
	// CsCo/CsDa are measured stall cycles per access; -1 where absent.
	CsCo, CsDa int64
}

// CalibrateTable2 regenerates Table 2 on the default runner.
func CalibrateTable2(lat platform.LatencyTable) ([]Table2Row, error) {
	return defaultRunner.CalibrateTable2(context.Background(), lat)
}

// calibPath is the measured characterisation of one (target, op) path.
type calibPath struct {
	tgt            platform.Target
	op             platform.Op
	lMax, lMin, cs int64
}

// CalibrateTable2 reproduces the paper's Table 2 methodology: for every
// (target, op) path, run a microbenchmark with a known number of
// back-to-back SRI accesses in isolation and divide the CCNT and
// PMEM_STALL/DMEM_STALL deltas by the access count. The dispatch cycle
// each access spends in the pipeline before the transaction is issued is
// subtracted from the latency figure. Each path is measured twice: with
// the flash prefetch buffers off (worst case, lmax) and on with a
// sequential stream (best case, lmin). The paths are independent
// measurement cells and run in parallel on the engine.
func (r Runner) CalibrateTable2(ctx context.Context, lat platform.LatencyTable) ([]Table2Row, error) {
	const n = 1000
	var jobs []campaign.Job[calibPath]
	for _, tgt := range platform.Targets {
		for _, op := range platform.Ops {
			if !platform.CanAccess(tgt, op) {
				continue
			}
			jobs = append(jobs, func(ctx context.Context) (calibPath, error) {
				measure := func(prefetch bool) (perAccessLat, perAccessStall int64, err error) {
					key := fmt.Sprintf("microbench/%s/%s/n%d/tc16p", tgt, op, n)
					res, err := r.eng.Isolation(ctx, lat, AnalysedCore, key,
						sim.Config{FlashPrefetch: prefetch}, func() (sim.Task, error) {
							src, err := workload.Microbench(workload.MicrobenchConfig{
								Target: tgt, Op: op, N: n, Core: AnalysedCore,
							})
							if err != nil {
								return sim.Task{}, err
							}
							return sim.Task{Kind: tricore.TC16P, Src: src}, nil
						})
					if err != nil {
						return 0, 0, fmt.Errorf("calibrating %s/%s: %w", tgt, op, err)
					}
					rd := res.Readings[AnalysedCore]
					stall := rd.PS
					if op == platform.Data {
						stall = rd.DS
					}
					// One dispatch cycle per access is pipeline time, not
					// transaction latency.
					return rd.CCNT/n - 1, stall / n, nil
				}
				lMax, cs, err := measure(false)
				if err != nil {
					return calibPath{}, err
				}
				lMin, _, err := measure(true)
				if err != nil {
					return calibPath{}, err
				}
				return calibPath{tgt: tgt, op: op, lMax: lMax, lMin: lMin, cs: cs}, nil
			})
		}
	}
	paths, err := campaign.Collect(ctx, r.eng, jobs)
	if err != nil {
		return nil, err
	}

	rows := make([]Table2Row, 0, len(platform.Targets))
	for _, tgt := range platform.Targets {
		row := Table2Row{Target: tgt, LCo: -1, LDa: -1, LMinCo: -1, LMinDa: -1, CsCo: -1, CsDa: -1}
		for _, p := range paths {
			if p.tgt != tgt {
				continue
			}
			if p.op == platform.Code {
				row.LCo, row.LMinCo, row.CsCo = p.lMax, p.lMin, p.cs
			} else {
				row.LDa, row.LMinDa, row.CsDa = p.lMax, p.lMin, p.cs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AppIterations and the burst sizing below set the scale of the
// evaluation workloads: large enough for steady-state cache behaviour,
// small enough that the whole Figure 4 sweep runs in well under a second.
const AppIterations = 300

// buildApp constructs the analysed application for a scenario.
func buildApp(sc workload.Scenario, iterations int) (trace.Source, error) {
	return workload.ControlLoop(workload.AppConfig{
		Scenario:   sc,
		Core:       AnalysedCore,
		Iterations: iterations,
	})
}

// appIsolation measures the analysed application in isolation, memoized
// per (latency table, scenario, iteration count).
func (r Runner) appIsolation(ctx context.Context, lat platform.LatencyTable, sc workload.Scenario, iterations int) (dsu.Readings, error) {
	key := fmt.Sprintf("app/sc%d/iters%d/tc16p", sc, iterations)
	res, err := r.eng.Isolation(ctx, lat, AnalysedCore, key, sim.Config{}, func() (sim.Task, error) {
		src, err := buildApp(sc, iterations)
		if err != nil {
			return sim.Task{}, err
		}
		return sim.Task{Kind: tricore.TC16P, Src: src}, nil
	})
	if err != nil {
		return dsu.Readings{}, err
	}
	return res.Readings[AnalysedCore], nil
}

// coreScenario maps the workload scenario tag to the model's tailoring.
func coreScenario(sc workload.Scenario) core.Scenario {
	if sc == workload.Scenario2 {
		return core.Scenario2()
	}
	return core.Scenario1()
}

// analyzerKey identifies one shared Analyzer: the cell's (possibly
// perturbed) latency table — a comparable value type, the same property
// the campaign memo cache relies on — and the registry it resolves models
// against. Scenario is deliberately not part of the key: cells pass their
// tailoring per request (Request.Scenario), so both scenarios of a sweep
// share one Analyzer and one estimate cache.
type analyzerKey struct {
	lat     platform.LatencyTable
	reg     *wcet.Registry
	workers int
}

// solverWorkers is the process-wide branch & bound worker count for the
// artefact campaigns' ILP solves, set once at startup (cmd/experiments
// -solver-workers) before any campaign runs. Bounds are worker-count
// independent, so artefacts are identical whatever the setting.
var solverWorkers atomic.Int32

// SetSolverWorkers configures how many branch & bound workers the
// campaigns' ILP-based models solve with; n <= 1 keeps solves sequential.
func SetSolverWorkers(n int) {
	if n < 1 {
		n = 1
	}
	solverWorkers.Store(int32(n))
}

// analyzers caches one Analyzer per (latency table, registry) across all
// campaign cells and artefact regenerations. An Analyzer is immutable and
// safe for concurrent use, so grid cells share it instead of constructing
// their own — which is what lets a sweep amortize solver state: every
// cell's ILP solves draw from the same pooled tableaux, and identical
// (model, input) cells across repeated regenerations hit the shared
// estimate cache instead of re-solving.
var analyzers sync.Map // analyzerKey -> *wcet.Analyzer

// analyzerEstimateCache sizes each shared Analyzer's (model, input) LRU.
// A full default grid is 2 scenarios x 3 loads x 2 models = 12 cells;
// 256 entries keep several perturbation sweeps and repeated test
// regenerations resident without unbounded growth.
const analyzerEstimateCache = 256

// analyzerFor returns the shared SDK facade for a cell's latency table on
// the given registry (nil selects the shared default). Callers pass the
// scenario tailoring per request.
func analyzerFor(lat platform.LatencyTable, reg *wcet.Registry) (*wcet.Analyzer, error) {
	sw := int(solverWorkers.Load())
	if sw < 1 {
		sw = 1
	}
	key := analyzerKey{lat: lat, reg: reg, workers: sw}
	if an, ok := analyzers.Load(key); ok {
		return an.(*wcet.Analyzer), nil
	}
	// Concurrency 1: a cell already occupies one campaign-engine worker
	// slot, so intra-cell model fan-out would overrun the -workers bound
	// (the same reasoning as the server's analyzer).
	opts := []wcet.Option{
		wcet.WithLatencyTable(lat),
		wcet.WithConcurrency(1),
		wcet.WithCache(analyzerEstimateCache),
		wcet.WithSolverWorkers(sw),
	}
	if reg != nil {
		opts = append(opts, wcet.WithRegistry(reg))
	}
	an, err := wcet.NewAnalyzer(opts...)
	if err != nil {
		return nil, err
	}
	// Two cells may race to construct; keep the first stored one so every
	// later cell shares its estimate cache.
	actual, _ := analyzers.LoadOrStore(key, an)
	return actual.(*wcet.Analyzer), nil
}

// Table6Readings regenerates Table 6 for one scenario on the default
// runner.
func Table6Readings(lat platform.LatencyTable, sc workload.Scenario) (app, contender dsu.Readings, err error) {
	return defaultRunner.Table6Readings(context.Background(), lat, sc)
}

// Table6Readings reproduces Table 6 for one scenario: the debug-counter
// readings of the analysed application (core 1) and the H-Load contender
// (core 2), each measured in isolation.
func (r Runner) Table6Readings(ctx context.Context, lat platform.LatencyTable, sc workload.Scenario) (app, contender dsu.Readings, err error) {
	appR, err := r.appIsolation(ctx, lat, sc, AppIterations)
	if err != nil {
		return dsu.Readings{}, dsu.Readings{}, err
	}
	contR, err := r.contenderReadings(ctx, lat, sc, workload.HLoad, contenderBursts(lat, workload.HLoad, appR))
	if err != nil {
		return dsu.Readings{}, dsu.Readings{}, err
	}
	return appR, contR, nil
}

// contenderBursts sizes a contender for a load level: its total SRI
// request count is the level's fraction of the application's
// (over-approximated from its stall readings).
func contenderBursts(lat platform.LatencyTable, lv workload.Level, appR dsu.Readings) int {
	nCo, nDa := core.AccessBounds(appR, &lat)
	target := lv.LoadFraction() * float64(nCo+nDa)
	return int(target)/lv.AccessesPerBurst() + 1
}

// buildContender constructs the contender trace for a sizing; isolation
// measurement and co-scheduling both build from the same config, so the
// co-run replays exactly the measured trace.
func buildContender(sc workload.Scenario, lv workload.Level, bursts int) (trace.Source, error) {
	return workload.Contender(workload.ContenderConfig{
		Level: lv, Scenario: sc, Core: ContenderCore, Bursts: bursts,
	})
}

// contenderReadings measures the sized contender in isolation, memoized
// per (latency table, scenario, level, burst count). The contender
// executes exactly this trace in the co-scheduled run, so its isolation
// readings bound the load it injects into the analysis window — the
// condition under which the ILP-PTAC contender constraints (Eq. 22-23)
// are sound.
func (r Runner) contenderReadings(ctx context.Context, lat platform.LatencyTable, sc workload.Scenario, lv workload.Level, bursts int) (dsu.Readings, error) {
	key := fmt.Sprintf("cont/sc%d/%s/bursts%d/tc16p", sc, lv, bursts)
	res, err := r.eng.Isolation(ctx, lat, ContenderCore, key, sim.Config{}, func() (sim.Task, error) {
		src, err := buildContender(sc, lv, bursts)
		if err != nil {
			return sim.Task{}, err
		}
		return sim.Task{Kind: tricore.TC16P, Src: src}, nil
	})
	if err != nil {
		return dsu.Readings{}, err
	}
	return res.Readings[ContenderCore], nil
}

// sizeContender returns both the contender's isolation readings and a
// fresh source replaying exactly the measured trace, for cells that go on
// to co-schedule it (Figure 4). The generators are deterministic, so the
// rebuilt source is identical to the one the (possibly cached) isolation
// measurement executed.
func (r Runner) sizeContender(ctx context.Context, lat platform.LatencyTable, sc workload.Scenario, lv workload.Level, appR dsu.Readings) (trace.Source, dsu.Readings, error) {
	bursts := contenderBursts(lat, lv, appR)
	contR, err := r.contenderReadings(ctx, lat, sc, lv, bursts)
	if err != nil {
		return nil, dsu.Readings{}, err
	}
	src, err := buildContender(sc, lv, bursts)
	if err != nil {
		return nil, dsu.Readings{}, err
	}
	return src, contR, nil
}

// sizeContender keeps the historical in-package helper signature alive for
// the soundness tests; it delegates to the default runner.
func sizeContender(lat platform.LatencyTable, sc workload.Scenario, lv workload.Level, appR dsu.Readings) (trace.Source, dsu.Readings, error) {
	return defaultRunner.sizeContender(context.Background(), lat, sc, lv, appR)
}

// Figure4Row is one bar group of Figure 4: for a scenario and contender
// load, the observed behaviour and each model's prediction, all normalised
// to execution time in isolation.
type Figure4Row struct {
	Scenario workload.Scenario
	Level    workload.Level

	// IsolationCycles is the application's observed time in isolation.
	IsolationCycles int64
	// ObservedCycles is its observed time co-running with the contender.
	ObservedCycles int64

	FTC core.Estimate
	ILP core.Estimate

	// TrueContention is the simulator ground truth: arbitration wait
	// cycles the application actually suffered (not observable on real
	// hardware).
	TrueContention int64
}

// ObservedRatio is observed multicore time over isolation time.
func (r Figure4Row) ObservedRatio() float64 {
	return float64(r.ObservedCycles) / float64(r.IsolationCycles)
}

// Figure4 regenerates the full Figure 4 sweep on the default runner.
func Figure4(lat platform.LatencyTable) ([]Figure4Row, error) {
	return defaultRunner.Figure4(context.Background(), lat)
}

// Figure4 runs the full evaluation sweep: both deployment scenarios
// against all three contender loads, one engine cell per (scenario, load)
// pair. The application's isolation baseline is measured once per scenario
// and shared by its three cells through the engine's memo cache.
func (r Runner) Figure4(ctx context.Context, lat platform.LatencyTable) ([]Figure4Row, error) {
	var jobs []campaign.Job[Figure4Row]
	for _, sc := range []workload.Scenario{workload.Scenario1, workload.Scenario2} {
		for _, lv := range workload.Levels {
			jobs = append(jobs, func(ctx context.Context) (Figure4Row, error) {
				row, err := r.Figure4Cell(ctx, lat, sc, lv)
				if err != nil {
					return Figure4Row{}, fmt.Errorf("experiments: scenario %d %s: %w", sc, lv, err)
				}
				return row, nil
			})
		}
	}
	return campaign.Collect(ctx, r.eng, jobs)
}

// Figure4Cell regenerates one Figure 4 cell on the default runner.
func Figure4Cell(lat platform.LatencyTable, sc workload.Scenario, lv workload.Level) (Figure4Row, error) {
	return defaultRunner.Figure4Cell(context.Background(), lat, sc, lv)
}

// Figure4Cell measures one (scenario, load) cell of Figure 4.
func (r Runner) Figure4Cell(ctx context.Context, lat platform.LatencyTable, sc workload.Scenario, lv workload.Level) (Figure4Row, error) {
	// Step 1: the application in isolation (the pre-integration
	// measurement an SWP can take).
	appR, err := r.appIsolation(ctx, lat, sc, AppIterations)
	if err != nil {
		return Figure4Row{}, err
	}

	// Step 2: the contender at this load level, measured in isolation.
	contSrc, contR, err := r.sizeContender(ctx, lat, sc, lv, appR)
	if err != nil {
		return Figure4Row{}, err
	}

	// Step 3: model bounds, from isolation readings only, through the SDK
	// facade — the same invocation any integrator toolchain makes.
	an, err := analyzerFor(lat, nil)
	if err != nil {
		return Figure4Row{}, err
	}
	res, err := an.Analyze(ctx, wcet.Request{
		Analysed:   appR,
		Contenders: []dsu.Readings{contR},
		Scenario:   coreScenario(sc),
		Models:     []string{"ilpPtac", "ftc"},
	})
	if err != nil {
		return Figure4Row{}, err
	}
	ilpEst, _ := res.Estimate("ilpPtac")
	ftcEst, _ := res.Estimate("ftc")

	// Step 4: the deployment-time truth the models must upper-bound —
	// both tasks co-running.
	appSrc, err := buildApp(sc, AppIterations)
	if err != nil {
		return Figure4Row{}, err
	}
	multiRes, err := r.eng.Run(ctx, lat, map[int]sim.Task{
		AnalysedCore:  {Kind: tricore.TC16P, Src: appSrc},
		ContenderCore: {Kind: tricore.TC16P, Src: contSrc},
	}, AnalysedCore, sim.Config{})
	if err != nil {
		return Figure4Row{}, err
	}

	return Figure4Row{
		Scenario:        sc,
		Level:           lv,
		IsolationCycles: appR.CCNT,
		ObservedCycles:  multiRes.Cycles,
		FTC:             ftcEst,
		ILP:             ilpEst,
		TrueContention:  multiRes.TotalWait(AnalysedCore),
	}, nil
}

// PaperFigure4 records the published Figure 4 ratios for side-by-side
// comparison in EXPERIMENTS.md: per scenario, the ILP-PTAC prediction
// range across L→H loads and the (load-insensitive) fTC prediction.
type PaperFigure4 struct {
	Scenario        workload.Scenario
	ILPLow, ILPHigh float64
	FTC             float64
}

// PaperFigure4Values are the ranges the paper reports in §4.2.
var PaperFigure4Values = []PaperFigure4{
	{Scenario: workload.Scenario1, ILPLow: 1.24, ILPHigh: 1.49, FTC: 1.95},
	{Scenario: workload.Scenario2, ILPLow: 1.34, ILPHigh: 1.67, FTC: 2.33},
}
